/**
 * @file
 * Ablation: Squash differencing on/off. Differencing exploits event
 * repetitiveness (paper §4.3.1): unchanged CSR/regfile words are not
 * retransmitted at fusion boundaries.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    std::printf("Ablation: differencing (XiangShan default, Palladium, "
                "Squash enabled)\n\n");
    TextTable table({"Workload", "Diff", "Speed", "Bytes/cycle",
                     "Snapshot bytes in->out"});
    workload::WorkloadOptions opts;
    opts.iterations = 1200;
    opts.bodyLength = 64;
    opts.seed = 2025;
    struct Row
    {
        const char *name;
        workload::Program program;
    } rows[] = {
        {"spec-like", workload::makeComputeLike(opts)},
        {"linux-boot", workload::makeBootLike(opts)},
    };
    for (Row &row : rows) {
        for (bool diff : {false, true}) {
            CosimConfig cfg = makeConfig(dut::xsDefaultConfig(),
                                         link::palladiumPlatform(),
                                         OptLevel::BNSD);
            cfg.differencing = diff;
            CosimResult r = runOrDie(cfg, row.program);
            u64 in = r.counters.get("squash.diff_bytes_in");
            u64 out = r.counters.get("squash.diff_bytes_out");
            std::string ratio =
                diff ? std::to_string(in) + " -> " + std::to_string(out)
                     : "-";
            table.addRow({row.name, diff ? "on" : "off",
                          fmtHz(r.simSpeedHz),
                          fmtDouble(r.bytesPerCycle, 0), ratio});
        }
    }
    table.print();
    return 0;
}
