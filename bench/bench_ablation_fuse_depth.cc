/**
 * @file
 * Ablation: Squash fusion-window depth sweep. Deeper windows cut more
 * data but grow the replay window (more buffered events, longer
 * reprocessing after a mismatch).
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();

    std::printf("Ablation: Squash fusion depth (XiangShan default, "
                "Palladium, full DiffTest-H)\n\n");
    TextTable table({"maxFuse", "Speed", "Bytes/cycle", "Fusion ratio",
                     "Flushes"});
    for (unsigned depth : {4u, 8u, 16u, 32u, 64u, 128u}) {
        CosimConfig cfg = makeConfig(dut::xsDefaultConfig(),
                                     link::palladiumPlatform(),
                                     OptLevel::BNSD);
        cfg.maxFuse = depth;
        CosimResult r = runOrDie(cfg, linux_boot);
        table.addRow({std::to_string(depth), fmtHz(r.simSpeedHz),
                      fmtDouble(r.bytesPerCycle, 0),
                      fmtDouble(r.fusionRatio, 1),
                      std::to_string(r.counters.get("squash.flushes"))});
    }
    table.print();
    return 0;
}
