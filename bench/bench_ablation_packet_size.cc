/**
 * @file
 * Ablation: Batch transmission-packet size sweep (DESIGN.md §4). Larger
 * packets amortize the startup handshake but add buffering latency and
 * hardware area; the sweep shows where the startup term stops mattering.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();

    std::printf("Ablation: Batch packet size (XiangShan default, "
                "Palladium, +Batch+NonBlock)\n\n");
    TextTable table({"Packet bytes", "Speed", "Transfers/cycle",
                     "Packet utilization"});
    for (unsigned bytes : {3072u, 4096u, 8192u, 16384u, 32768u, 65536u}) {
        CosimConfig cfg = makeConfig(dut::xsDefaultConfig(),
                                     link::palladiumPlatform(),
                                     OptLevel::BN);
        cfg.packetBytes = bytes;
        CosimResult r = runOrDie(cfg, linux_boot);
        table.addRow({std::to_string(bytes), fmtHz(r.simSpeedHz),
                      fmtDouble(r.invokesPerCycle, 3),
                      fmtPercent(r.packetUtilization)});
    }
    table.print();
    return 0;
}
