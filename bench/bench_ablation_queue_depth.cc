/**
 * @file
 * Ablation: non-blocking queue depth (paper §4.5). Shallow queues cause
 * backpressure stalls when software processing bursts; deep queues hide
 * them at the cost of buffering.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();

    std::printf("Ablation: non-blocking queue depth (XiangShan default, "
                "Palladium, +Batch+NonBlock)\n\n");
    TextTable table({"Queue depth", "Speed", "Stall share"});
    for (unsigned depth : {1u, 2u, 4u, 16u, 64u, 256u}) {
        CosimConfig cfg = makeConfig(dut::xsDefaultConfig(),
                                     link::palladiumPlatform(),
                                     OptLevel::BN);
        cfg.platform.queueDepth = depth;
        CosimResult r = runOrDie(cfg, linux_boot);
        table.addRow({std::to_string(depth), fmtHz(r.simSpeedHz),
                      fmtPercent(r.timing.stallSec /
                                 r.timing.totalSec)});
    }
    table.print();
    return 0;
}
