/**
 * @file
 * Paper Fig. 10 / §4.4: debugging schemes after fusion. Snapshot-based
 * debugging (DESSERT-style) periodically checkpoints the entire DUT and
 * re-executes from the nearest checkpoint to recover per-instruction
 * detail; Replay only buffers the unfused events in hardware and
 * retransmits the faulty window. The Replay side is *measured* (a real
 * injected bug, detection, rollback, reprocessing); the snapshot side
 * is modeled from the same platform constants.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    // ---- Measured: Replay on a real injected bug -----------------------
    workload::WorkloadOptions opts;
    opts.seed = 5;
    opts.iterations = 4000;
    opts.bodyLength = 48;
    workload::Program p = workload::makeBootLike(opts);
    CosimConfig cfg = makeConfig(dut::xsDefaultConfig(),
                                 link::palladiumPlatform(),
                                 OptLevel::BNSD);
    CoSimulator sim(cfg, p);
    dut::FaultSpec fault;
    fault.archetype = dut::BugArchetype::WrongRdValue;
    fault.triggerSeq = 50000;
    sim.armFault(fault);
    CosimResult r = sim.run(4'000'000);
    if (r.verified || !r.replayRan) {
        std::fprintf(stderr, "expected a replayed mismatch\n");
        return 1;
    }

    const link::Platform pldm = link::palladiumPlatform();
    u64 retx_bytes = r.counters.get("replay.retransmit_bytes");
    u64 retx_events = r.counters.get("replay.retransmit_events");
    u64 buffered = r.counters.get("replay.buffered_bytes");
    double replay_time =
        pldm.tSyncSec + retx_bytes / pldm.bwBytesPerSec +
        retx_events * pldm.swPerEventSec +
        (r.mismatch.windowLastSeq - r.mismatch.windowFirstSeq + 1) *
            pldm.swPerInstrSec;

    std::printf("Debugging schemes after fusion (XiangShan default, "
                "Palladium)\n\n");
    std::printf("Measured Replay on an injected writeback bug:\n");
    TextTable rep({"Quantity", "Value"});
    rep.addRow({"bug injected at instruction",
                std::to_string(sim.dutModel().faultOutcome().firedSeq)});
    rep.addRow({"localized instruction",
                std::to_string(r.mismatch.seq)});
    rep.addRow({"hardware buffer occupancy", std::to_string(buffered) +
                " bytes (SRAM ring)"});
    rep.addRow({"retransmitted", std::to_string(retx_bytes) +
                " bytes / " + std::to_string(retx_events) + " events"});
    rep.addRow({"replay turnaround (modeled link)",
                fmtSeconds(replay_time)});
    rep.print();

    // ---- Modeled: snapshot-and-rerun baseline --------------------------
    // A full-DUT checkpoint streams architectural + microarchitectural
    // state; re-execution from the nearest checkpoint runs with unfused
    // per-instruction events (the baseline speed) to recover detail.
    const double snapshot_bytes = 8.0e6; // caches+arrays of a 57.6M-gate DUT
    double base_speed = runOrDie(makeConfig(dut::xsDefaultConfig(), pldm,
                                            OptLevel::Z),
                                 linuxBootWorkload())
                            .simSpeedHz;

    std::printf("\nModeled snapshot-and-rerun baseline (DESSERT-style):\n");
    TextTable snap({"Checkpoint period", "Runtime overhead",
                    "Avg rerun distance", "Rerun time (unfused)",
                    "vs Replay"});
    for (double period : {1e5, 1e6, 1e7}) {
        double per_checkpoint =
            pldm.tSyncSec + snapshot_bytes / pldm.bwBytesPerSec;
        double runtime_overhead_frac =
            per_checkpoint / (period / pldm.dutOnlyHz(57.6));
        double rerun_cycles = period / 2;
        double rerun_time = rerun_cycles / base_speed;
        char label[32];
        std::snprintf(label, sizeof(label), "%.0e cycles", period);
        snap.addRow({label, fmtPercent(runtime_overhead_frac),
                     fmtDouble(rerun_cycles, 0) + " cycles",
                     fmtSeconds(rerun_time),
                     fmtSpeedup(rerun_time / replay_time)});
    }
    snap.print();
    std::printf("\nReplay reprocesses only the buffered unfused events "
                "around the failure instead of re-running the DUT\n"
                "(paper §4.4: snapshots incur considerable resource and "
                "time overhead).\n");
    return 0;
}
