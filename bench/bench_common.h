/**
 * @file
 * Shared support for the paper-reproduction benchmark harnesses: the
 * standard workloads, run helpers and formatting.
 */

#ifndef DTH_BENCH_BENCH_COMMON_H_
#define DTH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "common/table.h"
#include "cosim/cosim.h"
#include "link/platform.h"
#include "workload/generators.h"

namespace dth::bench {

/** The Linux-boot-like workload used by the headline evaluations. */
inline workload::Program
linuxBootWorkload(u64 seed = 2025, unsigned iterations = 1500)
{
    workload::WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = iterations;
    opts.bodyLength = 64;
    return workload::makeBootLike(opts);
}

inline workload::Program
microbenchWorkload(u64 seed = 2025, unsigned iterations = 1500)
{
    workload::WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = iterations;
    opts.bodyLength = 64;
    return workload::makeMicrobench(opts);
}

/** Build a config for one platform/DUT/level combination. */
inline cosim::CosimConfig
makeConfig(const dut::DutConfig &dut_config, const link::Platform &platform,
           cosim::OptLevel level)
{
    cosim::CosimConfig cfg;
    cfg.dut = dut_config;
    cfg.platform = platform;
    cfg.applyOptLevel(level);
    return cfg;
}

/** Run a co-simulation; fails loudly if verification fails. */
inline cosim::CosimResult
runOrDie(const cosim::CosimConfig &cfg, const workload::Program &program,
         u64 max_cycles = 400000)
{
    cosim::CoSimulator sim(cfg, program);
    cosim::CosimResult r = sim.run(max_cycles);
    if (!r.verified) {
        std::fprintf(stderr, "UNEXPECTED MISMATCH: %s\n",
                     r.mismatch.describe().c_str());
        std::exit(1);
    }
    return r;
}

inline std::string
fmtSpeedup(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", value);
    return buf;
}

} // namespace dth::bench

#endif // DTH_BENCH_BENCH_COMMON_H_
