/**
 * @file
 * Paper Fig. 13: co-simulation speed across DUT scales, comparing
 * 16-thread Verilator, the unoptimized Palladium baseline, DiffTest-H,
 * and the DUT-only Palladium ceiling.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();
    link::Platform pldm = link::palladiumPlatform();

    std::printf("Figure 13: Performance comparison (Linux-boot-like "
                "workload, Palladium)\n\n");
    TextTable table({"DUT", "Verilator 16T", "Baseline DiffTest",
                     "DiffTest-H", "DUT-only", "H/base", "H/verilator"});

    for (const dut::DutConfig &dut_config : dut::allDutConfigs()) {
        double verilator = link::verilatorHz(dut_config.gatesMillions, 16);
        CosimResult base = runOrDie(
            makeConfig(dut_config, pldm, OptLevel::Z), linux_boot);
        CosimResult full = runOrDie(
            makeConfig(dut_config, pldm, OptLevel::BNSD), linux_boot);
        double dut_only = pldm.dutOnlyHz(dut_config.gatesMillions);
        table.addRow({dut_config.name, fmtHz(verilator),
                      fmtHz(base.simSpeedHz), fmtHz(full.simSpeedHz),
                      fmtHz(dut_only),
                      fmtSpeedup(full.simSpeedHz / base.simSpeedHz),
                      fmtSpeedup(full.simSpeedHz / verilator)});
    }
    table.print();
    std::printf("\nPaper reference (XiangShan default): 80x over "
                "baseline, 119x over 16-thread Verilator, approaching "
                "the DUT-only ceiling.\n");
    return 0;
}
