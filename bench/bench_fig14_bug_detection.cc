/**
 * @file
 * Paper Fig. 14 + Table 6: bug-detection time. Part 1 exercises the
 * detection + Replay machinery end-to-end for every bug archetype
 * (real runs with injected faults). Part 2 projects detection time for
 * bugs that manifest after millions-to-billions of cycles, using the
 * measured co-simulation speeds (paper: up to 2 months under Verilator
 * vs 11 hours under DiffTest-H on Palladium).
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    // ---- Part 1: live detection + localization ------------------------
    struct BugCase
    {
        dut::BugArchetype archetype;
        const char *workload;
    } cases[] = {
        {dut::BugArchetype::WrongRdValue, "boot"},
        {dut::BugArchetype::CsrCorruption, "boot"},
        {dut::BugArchetype::StoreDataCorruption, "boot"},
        {dut::BugArchetype::RefillCorruption, "compute"},
        {dut::BugArchetype::VectorLaneCorruption, "vector"},
        {dut::BugArchetype::VtypeCorruption, "vector"},
        {dut::BugArchetype::LostInterrupt, "boot"},
    };

    std::printf("Table 6 / Fig. 14 part 1: live bug detection with "
                "DiffTest-H (Squash + Replay active)\n\n");
    TextTable live({"Bug archetype", "Category", "Injected@",
                    "Detected@", "Replay", "Localized field"});
    for (const BugCase &bc : cases) {
        workload::WorkloadOptions opts;
        opts.seed = 5;
        opts.iterations = 2500;
        opts.bodyLength = 48;
        workload::Program p;
        std::string kind = bc.workload;
        if (kind == "boot")
            p = workload::makeBootLike(opts);
        else if (kind == "compute")
            p = workload::makeComputeLike(opts);
        else
            p = workload::makeVectorLike(opts);

        CosimConfig cfg = makeConfig(dut::xsDefaultConfig(),
                                     link::palladiumPlatform(),
                                     OptLevel::BNSD);
        CoSimulator sim(cfg, p);
        dut::FaultSpec fault;
        fault.archetype = bc.archetype;
        fault.triggerSeq = 20000;
        sim.armFault(fault);
        CosimResult r = sim.run(4'000'000);
        const dut::FaultOutcome &fo = sim.dutModel().faultOutcome();
        if (!fo.fired || r.verified) {
            std::fprintf(stderr, "bug %s escaped detection!\n",
                         dut::bugArchetypeName(bc.archetype));
            return 1;
        }
        live.addRow({dut::bugArchetypeName(bc.archetype),
                     dut::bugCategory(bc.archetype),
                     std::to_string(fo.firedSeq),
                     std::to_string(r.mismatch.seq),
                     r.replayRan ? "ran" : "-", r.mismatch.field});
    }
    live.print();

    // ---- Part 2: projected detection times ----------------------------
    workload::Program linux_boot = linuxBootWorkload();
    link::Platform pldm = link::palladiumPlatform();
    dut::DutConfig xs = dut::xsDefaultConfig();
    double verilator = link::verilatorHz(xs.gatesMillions, 16);
    double baseline =
        runOrDie(makeConfig(xs, pldm, OptLevel::Z), linux_boot).simSpeedHz;
    double difftest_h =
        runOrDie(makeConfig(xs, pldm, OptLevel::BNSD), linux_boot)
            .simSpeedHz;

    std::printf("\nFig. 14 part 2: projected time to reach the "
                "manifestation cycle of deep bugs\n(measured speeds: "
                "Verilator16 %s, baseline %s, DiffTest-H %s)\n\n",
                fmtHz(verilator).c_str(), fmtHz(baseline).c_str(),
                fmtHz(difftest_h).c_str());
    TextTable proj({"Bug manifests at", "Verilator 16T",
                    "Baseline DiffTest", "DiffTest-H (PLDM)", "Speedup"});
    const double cycle_counts[] = {1e8, 1e9, 5e9, 1.9e10};
    for (double cycles : cycle_counts) {
        char label[32];
        std::snprintf(label, sizeof(label), "%.1e cycles", cycles);
        proj.addRow({label, fmtSeconds(cycles / verilator),
                     fmtSeconds(cycles / baseline),
                     fmtSeconds(cycles / difftest_h),
                     fmtSpeedup(difftest_h / verilator)});
    }
    proj.print();
    std::printf("\nPaper: bugs needing up to 2 months under Verilator "
                "are detected within 11 hours by DiffTest-H on "
                "Palladium.\n");
    return 0;
}
