/**
 * @file
 * Paper Fig. 15: resource usage of the DiffTest-H instrumentation on
 * the XiangShan configurations, with and without the Batch packer
 * (paper: ~6% without Batch, ~25% with Batch).
 */

#include <cstdio>

#include "area/area.h"
#include "common/table.h"

using namespace dth;
using namespace dth::area;

int
main()
{
    std::printf("Figure 15: Resource usage (million gates, analytical "
                "model calibrated to Palladium estimates)\n\n");
    TextTable table({"DUT", "DUT gates", "DiffTest-H w/o Batch",
                     "Overhead", "DiffTest-H w/ Batch", "Overhead"});

    for (const dut::DutConfig &cfg : dut::allDutConfigs()) {
        if (cfg.name == "NutShell")
            continue; // Fig. 15 covers the XiangShan configurations
        AreaEstimate without = estimateArea(cfg, false);
        AreaEstimate with = estimateArea(cfg, true);
        table.addRow({cfg.name, fmtDouble(cfg.gatesMillions, 1),
                      fmtDouble(without.difftestGatesM(), 2),
                      fmtPercent(without.overheadFraction()),
                      fmtDouble(with.difftestGatesM(), 2),
                      fmtPercent(with.overheadFraction())});
    }
    table.print();

    dut::DutConfig xs = dut::xsDefaultConfig();
    AreaEstimate with = estimateArea(xs, true);
    std::printf("\nBreakdown for %s (with Batch):\n", xs.name.c_str());
    TextTable parts({"Unit", "Mgates"});
    parts.addRow({"monitor probes (128/core)", fmtDouble(with.probesM, 2)});
    parts.addRow({"event buffers", fmtDouble(with.eventBuffersM, 2)});
    parts.addRow({"Squash unit", fmtDouble(with.squashUnitM, 2)});
    parts.addRow({"Replay buffer SRAM", fmtDouble(with.replayBufferM, 2)});
    parts.addRow({"Batch packer network", fmtDouble(with.batchPackerM, 2)});
    parts.print();

    std::printf("\nPaper: ~6%% area overhead without Batch; ~25%% "
                "average (26%% max) with Batch enabled.\n");
    return 0;
}
