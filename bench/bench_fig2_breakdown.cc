/**
 * @file
 * Paper Fig. 2: communication-overhead breakdown (startup / data
 * transmission / software processing) of unoptimized co-simulation
 * across DUTs and platforms, plus the Table 2 platform comparison.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();

    struct Setup
    {
        const char *name;
        dut::DutConfig dut;
        link::Platform platform;
    } setups[] = {
        {"NutShell / Palladium", dut::nutshellConfig(),
         link::palladiumPlatform()},
        {"XiangShan / Palladium", dut::xsDefaultConfig(),
         link::palladiumPlatform()},
        {"XiangShan / FPGA", dut::xsDefaultConfig(),
         link::fpgaPlatform()},
    };

    std::printf("Figure 2: Overhead breakdown across DUTs and platforms "
                "(baseline DiffTest, blocking)\n\n");
    TextTable table({"Setup", "DUT emulation", "Comm. startup",
                     "Data transmission", "SW processing",
                     "Comm. share"});
    for (const Setup &s : setups) {
        CosimConfig cfg = makeConfig(s.dut, s.platform, OptLevel::Z);
        CosimResult r = runOrDie(cfg, linux_boot);
        const link::LinkResult &t = r.timing;
        double total = t.totalSec;
        table.addRow({s.name, fmtPercent(t.hwEmulationSec / total),
                      fmtPercent(t.startupSec / total),
                      fmtPercent(t.transmitSec / total),
                      fmtPercent(t.softwareSec / total),
                      fmtPercent(t.communicationFraction())});
    }
    table.print();
    std::printf("\nPaper claims: communication >98%% of co-simulation "
                "time; XiangShan has more transmission+software than "
                "NutShell;\nFPGA shows relatively more startup and less "
                "transmission than Palladium's internal link.\n");

    std::printf("\nTable 2: Co-simulation platform comparison\n\n");
    TextTable t2({"Platform", "Debuggability", "Cost", "Optimal speed"});
    t2.addRow({"RTL simulator (Verilator 16T)", "Full visibility", "Free",
               fmtHz(link::verilatorHz(57.6, 16))});
    t2.addRow({"Emulator (Palladium)", "Waveform", "Expensive",
               fmtHz(link::palladiumPlatform().dutOnlyHz(57.6))});
    t2.addRow({"FPGA (VU19P)", "Limited", "Affordable",
               fmtHz(link::fpgaPlatform().dutOnlyHz(57.6))});
    t2.print();
    return 0;
}
