/**
 * @file
 * Paper Fig. 4: verification-event size and invocation frequency in
 * baseline DiffTest, measured on the XiangShan-default DUT running the
 * Linux-boot-like workload. Event ids are ordered by increasing size.
 */

#include <algorithm>

#include "bench/bench_common.h"
#include "dut/dut.h"

using namespace dth;
using namespace dth::bench;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();
    dut::DutModel dm(dut::xsDefaultConfig(), linux_boot);

    std::array<u64, kNumEventTypes> invocations{};
    while (!dm.done() && dm.cycles() < 300000) {
        CycleEvents ce = dm.cycle();
        for (const Event &e : ce.events)
            ++invocations[static_cast<unsigned>(e.type)];
    }
    u64 cycles = dm.cycles();

    std::vector<unsigned> order(kNumEventTypes);
    for (unsigned i = 0; i < kNumEventTypes; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [](unsigned a, unsigned b) {
        return eventInfo(a).bytesPerEntry < eventInfo(b).bytesPerEntry;
    });

    std::printf("Figure 4: Event size and invocations per cycle "
                "(baseline DiffTest, XiangShan default, %llu cycles)\n\n",
                (unsigned long long)cycles);
    TextTable table({"Rank", "Type", "Bytes/entry", "Invocations/cycle"});
    for (unsigned rank = 0; rank < kNumEventTypes; ++rank) {
        unsigned t = order[rank];
        double rate = static_cast<double>(invocations[t]) / cycles;
        table.addRow({std::to_string(rank), eventInfo(t).name,
                      std::to_string(eventInfo(t).bytesPerEntry),
                      fmtDouble(rate, 4)});
    }
    table.print();

    u64 total_events = 0, total_bytes = 0;
    for (unsigned t = 0; t < kNumEventTypes; ++t) {
        total_events += invocations[t];
        total_bytes += invocations[t] * eventInfo(t).bytesPerEntry;
    }
    std::printf("\nTotals: %.2f events/cycle, %.0f bytes/cycle "
                "(paper §2.2: ~15 communications, ~1.2 KB per cycle)\n",
                static_cast<double>(total_events) / cycles,
                static_cast<double>(total_bytes) / cycles);
    std::printf("Size range across types: %.0fx (paper: up to 170x)\n",
                structuralSizeRange());
    return 0;
}
