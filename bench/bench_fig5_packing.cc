/**
 * @file
 * Paper Fig. 5 / §4.2.1: fixed-offset packing vs Batch tight packing.
 * Fixed-offset packing pads invalid entries with bubbles to preserve
 * offsets (paper: >60% bubbles, 1.67x more communications for the same
 * valid events); Batch computes offsets from prefix length sums and
 * transmits no bubbles.
 */

#include "bench/bench_common.h"
#include "dut/dut.h"
#include "pack/packer.h"

using namespace dth;
using namespace dth::bench;

namespace {

struct PackOutcome
{
    u64 transfers = 0;
    u64 bytes = 0;
    double bubbleFraction = 0;
    double utilization = 0;
};

PackOutcome
measure(Packer &packer, const std::vector<CycleEvents> &stream)
{
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream)
        packer.packCycle(ce, transfers);
    packer.flush(transfers);
    PackOutcome out;
    out.transfers = transfers.size();
    for (const Transfer &t : transfers)
        out.bytes += t.size();
    u64 bubble = packer.counters().get("pack.bubble_bytes");
    u64 valid = packer.counters().get("pack.valid_bytes");
    if (bubble + valid)
        out.bubbleFraction = double(bubble) / (bubble + valid);
    u64 samples = packer.counters().get("pack.utilization_samples");
    if (samples)
        out.utilization =
            packer.counters().getReal("pack.utilization_sum") / samples;
    return out;
}

} // namespace

int
main()
{
    // Capture the monitor event stream of the XiangShan DUT.
    workload::Program linux_boot = linuxBootWorkload();
    dut::DutConfig xs = dut::xsDefaultConfig();
    dut::DutModel dm(xs, linux_boot);
    std::vector<CycleEvents> stream;
    u64 emit = 0;
    while (!dm.done() && dm.cycles() < 120000) {
        CycleEvents ce = dm.cycle();
        for (Event &e : ce.events)
            e.emitSeq = emit++;
        stream.push_back(std::move(ce));
    }
    u64 valid_bytes = 0, valid_events = 0;
    for (const CycleEvents &ce : stream) {
        valid_events += ce.count();
        valid_bytes += ce.totalBytes();
    }

    std::printf("Figure 5: Packing scheme comparison (XiangShan default, "
                "%zu cycles, %llu valid events, %llu valid bytes)\n\n",
                stream.size(), (unsigned long long)valid_events,
                (unsigned long long)valid_bytes);

    FixedOffsetPacker fixed(xs.eventEnabled, xs.cores, 4096);
    PackOutcome fo = measure(fixed, stream);
    BatchPacker batch(4096);
    PackOutcome bo = measure(batch, stream);

    TextTable table({"Scheme", "Transfers", "Bytes on wire",
                     "Bubble share", "Packet utilization"});
    table.addRow({"Fixed-offset (prior work)", std::to_string(fo.transfers),
                  std::to_string(fo.bytes), fmtPercent(fo.bubbleFraction),
                  "-"});
    table.addRow({"Batch (tight, DiffTest-H)", std::to_string(bo.transfers),
                  std::to_string(bo.bytes), fmtPercent(bo.bubbleFraction),
                  fmtPercent(bo.utilization)});
    table.print();

    std::printf("\nFixed-offset needs %.2fx more communications than "
                "Batch for the same valid events\n"
                "(paper: >60%% bubbles, 1.67x more communications).\n",
                static_cast<double>(fo.transfers) / bo.transfers);
    return 0;
}
