/**
 * @file
 * Paper Fig. 8 / §4.3.1: order-coupled fusion (prior work) breaks the
 * fusion window at every NDE, while Squash transmits NDEs ahead with
 * order tags and keeps fusing. Measured across workloads with rising
 * NDE density (compute -> boot -> io-heavy).
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    struct Row
    {
        const char *name;
        workload::Program program;
    };
    workload::WorkloadOptions opts;
    opts.iterations = 1200;
    opts.bodyLength = 64;
    opts.seed = 2025;
    Row rows[] = {
        {"SPEC-like (rare NDEs)", workload::makeComputeLike(opts)},
        {"Linux-boot-like", workload::makeBootLike(opts)},
        {"I/O-heavy driver loop", workload::makeIoHeavy(opts)},
    };

    std::printf("Figure 8: Fusion scheme comparison (XiangShan default, "
                "Palladium, maxFuse=32)\n\n");
    TextTable table({"Workload", "NDEs/kInstr", "Coupled fusion ratio",
                     "Squash fusion ratio", "Coupled B/cyc",
                     "Squash B/cyc", "Coupled KHz", "Squash KHz"});

    for (Row &row : rows) {
        CosimConfig decoupled = makeConfig(
            dut::xsDefaultConfig(), link::palladiumPlatform(),
            OptLevel::BNSD);
        CosimConfig coupled = decoupled;
        coupled.orderCoupledFusion = true;

        CosimResult rd = runOrDie(decoupled, row.program);
        CosimResult rc = runOrDie(coupled, row.program);
        double nde_rate =
            1000.0 * rd.counters.get("squash.nde_ahead") / rd.instrs;
        table.addRow({row.name, fmtDouble(nde_rate, 1),
                      fmtDouble(rc.fusionRatio, 1),
                      fmtDouble(rd.fusionRatio, 1),
                      fmtDouble(rc.bytesPerCycle, 0),
                      fmtDouble(rd.bytesPerCycle, 0),
                      fmtDouble(rc.simSpeedHz / 1e3, 0),
                      fmtDouble(rd.simSpeedHz / 1e3, 0)});
    }
    table.print();
    std::printf("\nPaper claim: order-coupled fusion suffers frequent "
                "breaks under device interaction and exceptions;\n"
                "order-decoupled Squash sustains the fusion ratio and "
                "transmits less data.\n");
    return 0;
}
