/**
 * @file
 * Fleet scaling harness: runs a 16-job campaign (15 clean jobs across
 * the workload families plus one quarantine/retry-recovery job) at 1,
 * 2, 4 and 8 workers, verifies the determinism contract (per-job
 * verdicts and checked-stream digests identical at every worker count
 * and against solo reference runs), and writes BENCH_fleet.json with
 * the measured throughput.
 *
 * Speedup is wall-clock and therefore tracks min(workers, cores): on a
 * single-core host every worker count measures ~1x (the campaign is
 * CPU-bound), while the determinism columns still exercise the full
 * concurrent machinery. EXPERIMENTS.md discusses the scaling model.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "fleet/campaign.h"
#include "fleet/report.h"
#include "fleet/scheduler.h"
#include "obs/json.h"

namespace {

using namespace dth;
using namespace dth::fleet;

Campaign
scalingCampaign()
{
    MatrixSpec matrix;
    matrix.name = "scaling16";
    matrix.workloads = {WorkloadKind::Microbench, WorkloadKind::ComputeLike,
                        WorkloadKind::VectorLike, WorkloadKind::IoHeavy,
                        WorkloadKind::BootLike};
    matrix.seeds = {1, 2, 3};
    matrix.base.workloadOptions.iterations = 300;
    matrix.base.workloadOptions.bodyLength = 48;
    Campaign campaign = expandMatrix(matrix);
    // Job 15: collapses its link on attempt 0, recovers on the damped
    // retry — the determinism contract must hold through quarantine.
    JobSpec flaky;
    flaky.name = "flaky-recovery";
    flaky.workload = WorkloadKind::Microbench;
    flaky.workloadOptions.seed = 99;
    flaky.workloadOptions.iterations = 300;
    flaky.workloadOptions.bodyLength = 48;
    flaky.config.linkFaults.enabled = true;
    flaky.config.linkFaults.stallRate = 1.0;
    flaky.config.linkFaults.maxAttempts = 2;
    flaky.config.linkFaults.unrecoverableBudget = 3;
    flaky.maxRetries = 2;
    flaky.retryFaultDamping = 0.0;
    campaign.add(std::move(flaky));
    return campaign;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

int
main()
{
    Campaign campaign = scalingCampaign();
    std::printf("fleet scaling: %zu jobs\n", campaign.jobs.size());

    // Solo reference runs: the digests every fleet shape must match.
    std::vector<JobResult> solo;
    for (size_t i = 0; i < campaign.jobs.size(); ++i)
        solo.push_back(runJobSolo(campaign.jobs[i],
                                  static_cast<unsigned>(i)));

    struct Point
    {
        unsigned workers;
        double wallSec;
        double jobsPerSec;
        double checkedInstrsPerSec;
        u64 steals;
    };
    std::vector<Point> points;
    bool deterministic = true;
    std::string reference_report;
    double wall1 = 0;

    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        FleetConfig cfg;
        cfg.workers = workers;
        CampaignResult r = FleetScheduler(cfg).run(campaign);
        if (!r.allPassed()) {
            std::fprintf(stderr, "campaign failed: %s\n",
                         r.summary().c_str());
            return 1;
        }
        u64 instrs = 0;
        for (size_t i = 0; i < r.jobs.size(); ++i) {
            instrs += r.jobs[i].instrs;
            if (r.jobs[i].digest != solo[i].digest ||
                r.jobs[i].outcome != solo[i].outcome ||
                r.jobs[i].attempts != solo[i].attempts) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: job %zu @%u workers\n",
                             i, workers);
                deterministic = false;
            }
        }
        std::string report = campaignReportJson(r);
        if (reference_report.empty())
            reference_report = report;
        else if (report != reference_report) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: report differs @%u\n",
                         workers);
            deterministic = false;
        }
        if (workers == 1)
            wall1 = r.wallSec;
        Point p;
        p.workers = workers;
        p.wallSec = r.wallSec;
        p.jobsPerSec = r.wallSec > 0 ? r.jobs.size() / r.wallSec : 0;
        p.checkedInstrsPerSec = r.wallSec > 0 ? instrs / r.wallSec : 0;
        p.steals = r.steals;
        points.push_back(p);
        std::printf(
            "  %u workers: %.2fs wall, %.1f jobs/s, %.0f instrs/s, "
            "speedup %.2fx, %llu steals\n",
            workers, p.wallSec, p.jobsPerSec, p.checkedInstrsPerSec,
            wall1 > 0 ? wall1 / p.wallSec : 0.0,
            (unsigned long long)p.steals);
    }
    if (!deterministic)
        return 1;
    std::printf("  verdicts + digests identical at every worker count "
                "and vs solo\n");

    std::string json;
    json += "{\n  \"schema\": \"dth-fleet-bench-v1\",\n";
    json += "  \"campaign\": \"scaling16\",\n  \"jobs\": " +
            std::to_string(campaign.jobs.size()) + ",\n";
    json += "  \"deterministic\": true,\n  \"scaling\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        json += "    {\"workers\": " + std::to_string(p.workers) +
                ", \"wall_sec\": " + fmt(p.wallSec) +
                ", \"jobs_per_sec\": " + fmt(p.jobsPerSec) +
                ", \"checked_instrs_per_sec\": " +
                fmt(p.checkedInstrsPerSec) +
                ", \"speedup_x\": " +
                fmt(wall1 > 0 && p.wallSec > 0 ? wall1 / p.wallSec : 0) +
                ", \"steals\": " + std::to_string(p.steals) + "}";
        json += i + 1 < points.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    if (!obs::writeFile("BENCH_fleet.json", json)) {
        std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
        return 1;
    }
    std::printf("BENCH_fleet.json written\n");
    return 0;
}
