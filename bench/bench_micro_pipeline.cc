/**
 * @file
 * google-benchmark microbenchmarks for the host-side hot paths: the
 * REF interpreter step rate, Batch packing/unpacking throughput,
 * differencing, digest folding, and the mux-tree primitive. These bound
 * the *host* cost of running the co-simulation itself (distinct from
 * the modeled link timing).
 *
 * BM_CosimPipelineBNSD additionally measures real end-to-end host
 * throughput (retired instructions per wall-clock second) of a full
 * BNSD run, serial (hostThreads=0) vs the threaded two-stage pipeline
 * (hostThreads=2). The best observed rates and their ratio are written
 * to BENCH_pipeline.json in the working directory on exit.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cosim/cosim.h"
#include "pack/muxtree.h"
#include "pack/packer.h"
#include "riscv/core.h"
#include "squash/fused_views.h"
#include "workload/generators.h"

namespace dth {
namespace {

void
BM_RefStepRate(benchmark::State &state)
{
    workload::WorkloadOptions opts;
    opts.iterations = 1000000; // effectively endless for the bench
    opts.bodyLength = 64;
    workload::Program p = workload::makeComputeLike(opts);
    riscv::Soc soc(riscv::CoreConfig{.resetPc = p.base});
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    for (auto _ : state) {
        benchmark::DoNotOptimize(soc.core.step());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefStepRate);

std::vector<CycleEvents>
syntheticStream(unsigned cycles)
{
    Rng rng(7);
    std::vector<CycleEvents> stream;
    u64 emit = 0;
    for (unsigned c = 0; c < cycles; ++c) {
        CycleEvents ce;
        ce.cycle = c;
        for (unsigned i = 0; i < 6; ++i) {
            Event e = Event::make(
                static_cast<EventType>(rng.nextBelow(kNumEventTypes)), 0,
                static_cast<u8>(i), c * 4 + i);
            e.emitSeq = emit++;
            for (auto &b : e.payload)
                b = static_cast<u8>(rng.next());
            ce.events.push_back(std::move(e));
        }
        stream.push_back(std::move(ce));
    }
    return stream;
}

void
BM_BatchPack(benchmark::State &state)
{
    auto stream = syntheticStream(64);
    u64 bytes = 0;
    for (auto _ : state) {
        BatchPacker packer(4096);
        std::vector<Transfer> transfers;
        for (const CycleEvents &ce : stream)
            packer.packCycle(ce, transfers);
        packer.flush(transfers);
        for (const Transfer &t : transfers)
            bytes += t.size();
        benchmark::DoNotOptimize(transfers);
    }
    state.SetBytesProcessed(static_cast<i64>(bytes));
}
BENCHMARK(BM_BatchPack);

void
BM_BatchUnpack(benchmark::State &state)
{
    auto stream = syntheticStream(64);
    BatchPacker packer(4096);
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream)
        packer.packCycle(ce, transfers);
    packer.flush(transfers);
    u64 bytes = 0;
    for (auto _ : state) {
        BatchUnpacker unpacker;
        for (const Transfer &t : transfers) {
            auto events = unpacker.unpack(t);
            benchmark::DoNotOptimize(events);
            bytes += t.size();
        }
    }
    state.SetBytesProcessed(static_cast<i64>(bytes));
}
BENCHMARK(BM_BatchUnpack);

void
BM_Differencing(benchmark::State &state)
{
    Rng rng(9);
    std::vector<u8> prev(968), cur(968);
    for (auto &b : prev)
        b = static_cast<u8>(rng.next());
    cur = prev;
    for (int i = 0; i < 5; ++i)
        storeU64(cur, rng.nextBelow(121) * 8, rng.next());
    u64 bytes = 0;
    for (auto _ : state) {
        auto diff = diffSnapshot(EventType::CsrState, prev, cur);
        benchmark::DoNotOptimize(diff);
        bytes += prev.size();
    }
    state.SetBytesProcessed(static_cast<i64>(bytes));
}
BENCHMARK(BM_Differencing);

void
BM_DigestFold(benchmark::State &state)
{
    u64 acc = 0;
    u64 i = 0;
    for (auto _ : state) {
        acc ^= commitDigestTerm(0x80000000 + i * 4, 0x13 + i, i * 7);
        ++i;
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DigestFold);

void
BM_MuxTreeCompaction(benchmark::State &state)
{
    Rng rng(11);
    std::vector<bool> valid(64);
    for (size_t i = 0; i < valid.size(); ++i)
        valid[i] = rng.chance(0.4);
    for (auto _ : state) {
        auto out = compactValidIndices(valid);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MuxTreeCompaction);

// ---- end-to-end host pipeline throughput -------------------------------

struct PipelineThroughput
{
    double bestInstrsPerSec = 0;
    double bestCyclesPerSec = 0;
    u64 instrs = 0;
    u64 cycles = 0;
};

PipelineThroughput g_serial;
PipelineThroughput g_threaded;

void
writePipelineJson()
{
    if (g_serial.bestInstrsPerSec <= 0 || g_threaded.bestInstrsPerSec <= 0)
        return;
    std::FILE *f = std::fopen("BENCH_pipeline.json", "w");
    if (!f)
        return;
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"cosim_host_pipeline\",\n"
        "  \"workload\": \"compute\",\n"
        "  \"opt_level\": \"BNSD\",\n"
        "  \"serial\": {\n"
        "    \"host_threads\": 1,\n"
        "    \"instrs\": %llu,\n"
        "    \"dut_cycles\": %llu,\n"
        "    \"instrs_per_sec\": %.1f,\n"
        "    \"dut_cycles_per_sec\": %.1f\n"
        "  },\n"
        "  \"threaded\": {\n"
        "    \"host_threads\": 2,\n"
        "    \"instrs\": %llu,\n"
        "    \"dut_cycles\": %llu,\n"
        "    \"instrs_per_sec\": %.1f,\n"
        "    \"dut_cycles_per_sec\": %.1f\n"
        "  },\n"
        "  \"threaded_speedup\": %.3f\n"
        "}\n",
        (unsigned long long)g_serial.instrs,
        (unsigned long long)g_serial.cycles, g_serial.bestInstrsPerSec,
        g_serial.bestCyclesPerSec, (unsigned long long)g_threaded.instrs,
        (unsigned long long)g_threaded.cycles,
        g_threaded.bestInstrsPerSec, g_threaded.bestCyclesPerSec,
        g_threaded.bestInstrsPerSec / g_serial.bestInstrsPerSec);
    std::fclose(f);
}

struct PipelineJsonAtExit
{
    PipelineJsonAtExit() { std::atexit(writePipelineJson); }
} g_pipelineJsonAtExit;

void
BM_CosimPipelineBNSD(benchmark::State &state)
{
    auto host_threads = static_cast<unsigned>(state.range(0));
    workload::WorkloadOptions opts;
    opts.seed = 42;
    opts.iterations = 2000;
    opts.bodyLength = 48;
    workload::Program p = workload::makeComputeLike(opts);
    cosim::CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);
    cfg.hostThreads = host_threads;

    PipelineThroughput &acc = host_threads >= 2 ? g_threaded : g_serial;
    u64 instrs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        cosim::CoSimulator sim(cfg, p);
        state.ResumeTiming();
        auto t0 = std::chrono::steady_clock::now();
        cosim::CosimResult r = sim.run(20'000'000);
        double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        if (sec > 0) {
            acc.bestInstrsPerSec =
                std::max(acc.bestInstrsPerSec, r.instrs / sec);
            acc.bestCyclesPerSec =
                std::max(acc.bestCyclesPerSec, r.cycles / sec);
        }
        acc.instrs = r.instrs;
        acc.cycles = r.cycles;
        instrs += r.instrs;
        benchmark::DoNotOptimize(r);
    }
    // items/sec in the report == host-side retired instructions/sec.
    state.SetItemsProcessed(static_cast<i64>(instrs));
    state.counters["instrs_per_sec_best"] = acc.bestInstrsPerSec;
}
BENCHMARK(BM_CosimPipelineBNSD)
    ->Arg(0)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
} // namespace dth
