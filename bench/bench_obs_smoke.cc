/**
 * @file
 * Observability smoke harness: runs a small BNSD workload serially and
 * threaded, proves the non-host stats are bit-identical across the two
 * drivers, and emits the machine-readable artifacts CI gates on —
 * BENCH_obs.json (dth-obs-v1 snapshot, pretty-printable/diffable with
 * tools/dth_stats) and BENCH_timeline.json (Chrome trace_event timeline
 * of the host pipeline; load in chrome://tracing or ui.perfetto.dev).
 *
 * A small fleet campaign rides along and its aggregate is merged into
 * BENCH_obs.json (obs::mergeSnapshots — the dth_stats --merge path), so
 * the checked-in schema golden also covers the fleet.* stats.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "fleet/campaign.h"
#include "fleet/scheduler.h"
#include "obs/json.h"

namespace {

using namespace dth;
using namespace dth::cosim;

bool
isHostCounter(const std::string &name)
{
    return name.rfind("host.", 0) == 0;
}

/** Exit loudly if any deterministic stat differs between the drivers. */
void
requireSameStats(const obs::StatSnapshot &serial,
                 const obs::StatSnapshot &threaded)
{
    unsigned bad = 0;
    auto mismatch = [&](const std::string &name) {
        std::fprintf(stderr, "stat mismatch: %s\n", name.c_str());
        ++bad;
    };
    for (const auto &[name, value] : serial.integers()) {
        if (!isHostCounter(name) &&
            (!threaded.has(name) || threaded.get(name) != value))
            mismatch(name);
    }
    for (const auto &[name, value] : threaded.integers()) {
        (void)value;
        if (!isHostCounter(name) && !serial.has(name))
            mismatch(name);
    }
    for (const auto &[name, value] : serial.reals()) {
        if (!isHostCounter(name) && threaded.getReal(name) != value)
            mismatch(name);
    }
    for (const auto &[name, h] : serial.hists()) {
        if (isHostCounter(name))
            continue;
        auto it = threaded.hists().find(name);
        if (it == threaded.hists().end() || !(it->second == h))
            mismatch(name);
    }
    if (bad != 0) {
        std::fprintf(stderr,
                     "serial/threaded stat divergence (%u keys)\n", bad);
        std::exit(1);
    }
}

} // namespace

int
main()
{
    workload::Program program = bench::microbenchWorkload(7, 200);
    CosimConfig cfg = bench::makeConfig(
        dut::nutshellConfig(), link::palladiumPlatform(), OptLevel::BNSD);

    CosimResult serial = bench::runOrDie(cfg, program, 200000);

    cfg.hostThreads = 2;
    cfg.captureTimeline = true;
    CoSimulator threaded_sim(cfg, program);
    CosimResult threaded = threaded_sim.run(200000);
    if (!threaded.verified) {
        std::fprintf(stderr, "UNEXPECTED MISMATCH: %s\n",
                     threaded.mismatch.describe().c_str());
        return 1;
    }

    requireSameStats(serial.counters, threaded.counters);

    // A 4-job fleet campaign on 2 workers: its aggregate carries the
    // fleet.* stats into the snapshot (and the schema golden).
    fleet::Campaign campaign;
    campaign.name = "obs-smoke";
    for (u64 seed = 1; seed <= 4; ++seed) {
        fleet::JobSpec job;
        job.workload = fleet::WorkloadKind::Microbench;
        job.workloadOptions.seed = seed;
        job.workloadOptions.iterations = 150;
        job.workloadOptions.bodyLength = 32;
        job.config.dut = dut::nutshellConfig();
        campaign.add(std::move(job));
    }
    fleet::FleetConfig fleet_cfg;
    fleet_cfg.workers = 2;
    fleet::CampaignResult fleet_result =
        fleet::FleetScheduler(fleet_cfg).run(campaign);
    if (!fleet_result.allPassed()) {
        std::fprintf(stderr, "fleet smoke failed: %s\n",
                     fleet_result.summary().c_str());
        return 1;
    }
    obs::StatSnapshot combined;
    std::string merge_err;
    if (!obs::mergeSnapshots(
            &combined, {&threaded.counters, &fleet_result.aggregate},
            &merge_err)) {
        std::fprintf(stderr, "snapshot merge failed: %s\n",
                     merge_err.c_str());
        return 1;
    }

    if (!obs::writeFile("BENCH_obs.json",
                        obs::snapshotToJson(combined))) {
        std::fprintf(stderr, "cannot write BENCH_obs.json\n");
        return 1;
    }
    std::string timeline = threaded_sim.chromeTraceJson();
    if (timeline.empty() ||
        !obs::writeFile("BENCH_timeline.json", timeline)) {
        std::fprintf(stderr, "cannot write BENCH_timeline.json\n");
        return 1;
    }

    std::printf("obs smoke: %llu cycles serial == threaded; "
                "BENCH_obs.json + BENCH_timeline.json written\n",
                (unsigned long long)serial.cycles);
    return 0;
}
