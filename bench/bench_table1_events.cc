/**
 * @file
 * Paper Table 1 + §2.2: the 32 verification event types by category,
 * with per-entry sizes, the aggregate interface size (~11.5 KB) and the
 * structural size range (~170x, §4.2.1).
 */

#include <cstdio>

#include "common/table.h"
#include "event/event_type.h"

using namespace dth;

int
main()
{
    std::printf("Table 1: Verification events in DiffTest-H\n\n");
    TextTable table({"Category", "Types", "Examples (type: bytes/entry x "
                     "entries)"});

    for (EventCategory cat :
         {EventCategory::ControlFlow, EventCategory::RegisterUpdate,
          EventCategory::MemoryAccess, EventCategory::MemoryHierarchy,
          EventCategory::Extension}) {
        unsigned count = 0;
        std::string examples;
        for (unsigned i = 0; i < kNumEventTypes; ++i) {
            const EventTypeInfo &info = eventInfo(i);
            if (info.category != cat)
                continue;
            ++count;
            if (examples.size() < 48) {
                examples += std::string(info.name) + ": " +
                            std::to_string(info.bytesPerEntry) + "x" +
                            std::to_string(info.entriesPerCore) + "  ";
            }
        }
        table.addRow({categoryName(cat), std::to_string(count), examples});
    }
    table.print();

    std::printf("\nFull registry:\n");
    TextTable full({"Id", "Type", "Bytes", "Entries", "Fusible", "NDE",
                    "Component"});
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        const EventTypeInfo &info = eventInfo(i);
        full.addRow({std::to_string(i), info.name,
                     std::to_string(info.bytesPerEntry),
                     std::to_string(info.entriesPerCore),
                     info.fusible ? "yes" : "-", info.nde ? "NDE" : "-",
                     info.component});
    }
    full.print();

    std::printf("\nAggregate interface: %u bytes "
                "(paper §2.2: 11,496 bytes)\n",
                aggregateInterfaceBytes());
    std::printf("Structural size range: %.0fx (paper §4.2.1: up to "
                "170x)\n",
                structuralSizeRange());
    return 0;
}
