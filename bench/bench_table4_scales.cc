/**
 * @file
 * Paper Table 4: scales and verification coverage across DUTs — gate
 * counts, covered event types, and the measured average bytes of
 * verification state per retired instruction before optimization.
 */

#include "bench/bench_common.h"
#include "dut/dut.h"

using namespace dth;
using namespace dth::bench;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();

    std::printf("Table 4: Scales and verification coverage across DUTs "
                "(Linux-boot-like workload)\n\n");
    TextTable table({"DUT", "Gates (M)", "Event types",
                     "Avg bytes/instr", "Measured IPC"});

    for (const dut::DutConfig &cfg : dut::allDutConfigs()) {
        dut::DutModel dm(cfg, linux_boot);
        u64 bytes = 0;
        while (!dm.done() && dm.cycles() < 150000) {
            CycleEvents ce = dm.cycle();
            bytes += ce.totalBytes();
        }
        // Per-instruction volume, normalized to one core's instruction
        // stream (the dual-core interface carries both cores' events).
        double per_instr =
            static_cast<double>(bytes) / dm.instrsRetired(0);
        double ipc = static_cast<double>(dm.instrsRetired(0)) /
                     dm.cycles();
        table.addRow({cfg.name, fmtDouble(cfg.gatesMillions, 1),
                      std::to_string(cfg.enabledEventTypes()),
                      fmtDouble(per_instr, 0), fmtDouble(ipc, 2)});
    }
    table.print();
    std::printf("\nPaper reference: NutShell 0.6M/6/93; XS-Minimal "
                "39.4M/32/692; XS-Default 57.6M/32/1437; XS-2C "
                "111.8M/32/3025.\n");
    return 0;
}
