/**
 * @file
 * Paper Table 5: optimization breakdown across DUTs and platforms.
 * Rows: Baseline (Z), +Batch (B), +NonBlock (BN), +Squash (BNSD).
 * Columns: NutShell/Palladium, XiangShan/Palladium, XiangShan/FPGA.
 * Also reports the §6.3 communication-overhead reduction.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

namespace {

struct Column
{
    const char *title;
    dut::DutConfig dut;
    link::Platform platform;
};

struct Row
{
    OptLevel level;
    double speedHz[3];
    double commFraction[3];
};

} // namespace

int
main(int argc, char **argv)
{
    // Mirrors the artifact's `make pldm-run WORKLOAD=linux|microbench`.
    std::string workload_name = argc > 1 ? argv[1] : "linux";
    workload::Program linux_boot = workload_name == "microbench"
                                       ? microbenchWorkload()
                                       : linuxBootWorkload();

    Column columns[3] = {
        {"NutShell on Palladium", dut::nutshellConfig(),
         link::palladiumPlatform()},
        {"XiangShan on Palladium", dut::xsDefaultConfig(),
         link::palladiumPlatform()},
        {"XiangShan on FPGA", dut::xsDefaultConfig(),
         link::fpgaPlatform()},
    };

    const OptLevel levels[4] = {OptLevel::Z, OptLevel::B, OptLevel::BN,
                                OptLevel::BNSD};
    Row rows[4];

    for (unsigned c = 0; c < 3; ++c) {
        for (unsigned l = 0; l < 4; ++l) {
            CosimConfig cfg =
                makeConfig(columns[c].dut, columns[c].platform, levels[l]);
            CosimResult r = runOrDie(cfg, linux_boot);
            rows[l].level = levels[l];
            rows[l].speedHz[c] = r.simSpeedHz;
            rows[l].commFraction[c] = r.timing.communicationFraction();
        }
    }

    std::printf("Table 5: Optimization breakdown across DUTs and "
                "platforms (workload: %s)\n\n",
                linux_boot.name.c_str());
    TextTable table({"Setup", "NutShell/PLDM", "XiangShan/PLDM",
                     "XiangShan/FPGA"});
    for (unsigned l = 0; l < 4; ++l) {
        std::vector<std::string> cells{optLevelName(rows[l].level)};
        for (unsigned c = 0; c < 3; ++c) {
            std::string cell = fmtHz(rows[l].speedHz[c]);
            if (l > 0) {
                cell += " (" +
                        fmtSpeedup(rows[l].speedHz[c] /
                                   rows[0].speedHz[c]) +
                        ")";
            }
            cells.push_back(cell);
        }
        table.addRow(cells);
    }
    table.print();

    std::printf("\nPaper reference: NutShell/PLDM 14->102->389->1030 KHz "
                "(74x); XS/PLDM 6->24->71->478 KHz (80x);\n"
                "XS/FPGA 0.1->1.3->2.2->7.8 MHz (78x).\n");

    std::printf("\nCommunication overhead (share of total time):\n");
    TextTable comm({"Setup", "NutShell/PLDM", "XiangShan/PLDM",
                    "XiangShan/FPGA"});
    for (unsigned l = 0; l < 4; ++l) {
        std::vector<std::string> cells{optLevelName(rows[l].level)};
        for (unsigned c = 0; c < 3; ++c)
            cells.push_back(fmtPercent(rows[l].commFraction[c]));
        comm.addRow(cells);
    }
    comm.print();

    std::printf("\n");
    for (unsigned c = 0; c < 3; ++c) {
        double dut_only =
            columns[c].platform.dutOnlyHz(columns[c].dut.gatesMillions);
        double overhead_base = 1.0 / rows[0].speedHz[c] - 1.0 / dut_only;
        double overhead_full = 1.0 / rows[3].speedHz[c] - 1.0 / dut_only;
        double reduction = 1.0 - overhead_full / overhead_base;
        std::printf("%s: communication overhead reduced by %s "
                    "(paper: 99.8%% PLDM / 98.8%% FPGA)\n",
                    columns[c].title, fmtPercent(reduction, 2).c_str());
    }
    return 0;
}
