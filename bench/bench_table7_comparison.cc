/**
 * @file
 * Paper Table 7: comparison with prior hardware-accelerated
 * co-simulation frameworks. Prior-work rows carry the paper's reported
 * numbers (IBI-check on IBM AWAN, SBS-check estimated with gem5,
 * Fromajo on FireSim); DiffTest-H rows are measured on our models.
 */

#include "bench/bench_common.h"

using namespace dth;
using namespace dth::bench;
using namespace dth::cosim;

int
main()
{
    workload::Program linux_boot = linuxBootWorkload();
    dut::DutConfig xs = dut::xsDefaultConfig();

    CosimResult pldm = runOrDie(
        makeConfig(xs, link::palladiumPlatform(), OptLevel::BNSD),
        linux_boot);
    CosimResult fpga = runOrDie(
        makeConfig(xs, link::fpgaPlatform(), OptLevel::BNSD), linux_boot);

    double pldm_dut_only =
        link::palladiumPlatform().dutOnlyHz(xs.gatesMillions);
    double fpga_dut_only = link::fpgaPlatform().dutOnlyHz(xs.gatesMillions);

    std::printf("Table 7: Comparison of hardware-accelerated "
                "co-simulation frameworks\n"
                "(prior-work rows reproduce the paper's reported "
                "numbers; DiffTest-H rows are measured here)\n\n");
    TextTable table({"Work", "Platform", "States/Bytes", "Comm overhead",
                     "DUT-only", "Co-sim speed"});
    table.addRow({"IBI-check [8]", "IBM AWAN", "2 / 7", "20%", "100 KHz",
                  "80 KHz"});
    table.addRow({"SBS-check [19]", "gem5 estimate", "2 / 7", "2%",
                  "100 KHz", "98 KHz"});
    table.addRow(
        {"DiffTest-H (ours)", "Palladium model",
         "32 / " + std::to_string((int)pldm.rawBytesPerInstr),
         fmtPercent(1.0 - pldm.simSpeedHz / pldm_dut_only),
         fmtHz(pldm_dut_only), fmtHz(pldm.simSpeedHz)});
    table.addRow({"Fromajo [56,57]", "FireSim", "7 / 24", "99%",
                  "100 MHz", "1 MHz"});
    table.addRow(
        {"DiffTest-H (ours)", "VU19P model",
         "32 / " + std::to_string((int)fpga.rawBytesPerInstr),
         fmtPercent(1.0 - fpga.simSpeedHz / fpga_dut_only),
         fmtHz(fpga_dut_only), fmtHz(fpga.simSpeedHz)});
    table.print();

    std::printf("\nDiffTest-H vs Fromajo: %.1fx faster on FPGA "
                "(paper: 7.8x) with 32 vs 7 verification state types.\n",
                fpga.simSpeedHz / 1e6);
    std::printf("Paper reference: DiffTest-H 478 KHz (0.4%% overhead) on "
                "Palladium; 7.8 MHz (84%% overhead) on FPGA.\n");
    return 0;
}
