
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_differencing.cc" "bench/CMakeFiles/bench_ablation_differencing.dir/bench_ablation_differencing.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_differencing.dir/bench_ablation_differencing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dth_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_link.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_pack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_squash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_area.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_dut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
