file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_differencing.dir/bench_ablation_differencing.cc.o"
  "CMakeFiles/bench_ablation_differencing.dir/bench_ablation_differencing.cc.o.d"
  "bench_ablation_differencing"
  "bench_ablation_differencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_differencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
