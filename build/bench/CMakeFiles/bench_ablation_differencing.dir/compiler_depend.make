# Empty compiler generated dependencies file for bench_ablation_differencing.
# This may be replaced when dependencies are built.
