file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fuse_depth.dir/bench_ablation_fuse_depth.cc.o"
  "CMakeFiles/bench_ablation_fuse_depth.dir/bench_ablation_fuse_depth.cc.o.d"
  "bench_ablation_fuse_depth"
  "bench_ablation_fuse_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fuse_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
