# Empty dependencies file for bench_ablation_fuse_depth.
# This may be replaced when dependencies are built.
