# Empty dependencies file for bench_ablation_queue_depth.
# This may be replaced when dependencies are built.
