file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_replay_debug.dir/bench_ablation_replay_debug.cc.o"
  "CMakeFiles/bench_ablation_replay_debug.dir/bench_ablation_replay_debug.cc.o.d"
  "bench_ablation_replay_debug"
  "bench_ablation_replay_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replay_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
