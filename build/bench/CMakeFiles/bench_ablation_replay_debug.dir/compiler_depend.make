# Empty compiler generated dependencies file for bench_ablation_replay_debug.
# This may be replaced when dependencies are built.
