file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_bug_detection.dir/bench_fig14_bug_detection.cc.o"
  "CMakeFiles/bench_fig14_bug_detection.dir/bench_fig14_bug_detection.cc.o.d"
  "bench_fig14_bug_detection"
  "bench_fig14_bug_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_bug_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
