# Empty dependencies file for bench_fig14_bug_detection.
# This may be replaced when dependencies are built.
