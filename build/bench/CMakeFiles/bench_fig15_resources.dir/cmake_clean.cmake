file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_resources.dir/bench_fig15_resources.cc.o"
  "CMakeFiles/bench_fig15_resources.dir/bench_fig15_resources.cc.o.d"
  "bench_fig15_resources"
  "bench_fig15_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
