file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_event_profile.dir/bench_fig4_event_profile.cc.o"
  "CMakeFiles/bench_fig4_event_profile.dir/bench_fig4_event_profile.cc.o.d"
  "bench_fig4_event_profile"
  "bench_fig4_event_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_event_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
