# Empty compiler generated dependencies file for bench_fig4_event_profile.
# This may be replaced when dependencies are built.
