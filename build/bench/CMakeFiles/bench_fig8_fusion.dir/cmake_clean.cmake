file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fusion.dir/bench_fig8_fusion.cc.o"
  "CMakeFiles/bench_fig8_fusion.dir/bench_fig8_fusion.cc.o.d"
  "bench_fig8_fusion"
  "bench_fig8_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
