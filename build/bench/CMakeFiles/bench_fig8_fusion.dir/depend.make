# Empty dependencies file for bench_fig8_fusion.
# This may be replaced when dependencies are built.
