file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_events.dir/bench_table1_events.cc.o"
  "CMakeFiles/bench_table1_events.dir/bench_table1_events.cc.o.d"
  "bench_table1_events"
  "bench_table1_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
