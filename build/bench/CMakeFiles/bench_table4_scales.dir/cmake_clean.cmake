file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_scales.dir/bench_table4_scales.cc.o"
  "CMakeFiles/bench_table4_scales.dir/bench_table4_scales.cc.o.d"
  "bench_table4_scales"
  "bench_table4_scales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_scales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
