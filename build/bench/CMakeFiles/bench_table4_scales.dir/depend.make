# Empty dependencies file for bench_table4_scales.
# This may be replaced when dependencies are built.
