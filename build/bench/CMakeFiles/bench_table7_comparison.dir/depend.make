# Empty dependencies file for bench_table7_comparison.
# This may be replaced when dependencies are built.
