file(REMOVE_RECURSE
  "CMakeFiles/custom_dut.dir/custom_dut.cc.o"
  "CMakeFiles/custom_dut.dir/custom_dut.cc.o.d"
  "custom_dut"
  "custom_dut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
