# Empty dependencies file for custom_dut.
# This may be replaced when dependencies are built.
