file(REMOVE_RECURSE
  "CMakeFiles/platform_tuning.dir/platform_tuning.cc.o"
  "CMakeFiles/platform_tuning.dir/platform_tuning.cc.o.d"
  "platform_tuning"
  "platform_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
