# Empty compiler generated dependencies file for platform_tuning.
# This may be replaced when dependencies are built.
