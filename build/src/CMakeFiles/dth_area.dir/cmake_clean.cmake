file(REMOVE_RECURSE
  "CMakeFiles/dth_area.dir/area/area.cc.o"
  "CMakeFiles/dth_area.dir/area/area.cc.o.d"
  "libdth_area.a"
  "libdth_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
