file(REMOVE_RECURSE
  "libdth_area.a"
)
