# Empty dependencies file for dth_area.
# This may be replaced when dependencies are built.
