file(REMOVE_RECURSE
  "CMakeFiles/dth_checker.dir/checker/checker.cc.o"
  "CMakeFiles/dth_checker.dir/checker/checker.cc.o.d"
  "libdth_checker.a"
  "libdth_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
