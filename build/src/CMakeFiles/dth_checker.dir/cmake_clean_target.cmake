file(REMOVE_RECURSE
  "libdth_checker.a"
)
