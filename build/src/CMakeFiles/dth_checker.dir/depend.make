# Empty dependencies file for dth_checker.
# This may be replaced when dependencies are built.
