file(REMOVE_RECURSE
  "CMakeFiles/dth_common.dir/common/logging.cc.o"
  "CMakeFiles/dth_common.dir/common/logging.cc.o.d"
  "CMakeFiles/dth_common.dir/common/table.cc.o"
  "CMakeFiles/dth_common.dir/common/table.cc.o.d"
  "libdth_common.a"
  "libdth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
