file(REMOVE_RECURSE
  "libdth_common.a"
)
