# Empty dependencies file for dth_common.
# This may be replaced when dependencies are built.
