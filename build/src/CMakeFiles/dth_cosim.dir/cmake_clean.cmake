file(REMOVE_RECURSE
  "CMakeFiles/dth_cosim.dir/cosim/cosim.cc.o"
  "CMakeFiles/dth_cosim.dir/cosim/cosim.cc.o.d"
  "libdth_cosim.a"
  "libdth_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
