file(REMOVE_RECURSE
  "libdth_cosim.a"
)
