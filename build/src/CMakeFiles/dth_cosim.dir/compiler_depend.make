# Empty compiler generated dependencies file for dth_cosim.
# This may be replaced when dependencies are built.
