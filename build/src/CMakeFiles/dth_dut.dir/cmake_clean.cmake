file(REMOVE_RECURSE
  "CMakeFiles/dth_dut.dir/dut/config.cc.o"
  "CMakeFiles/dth_dut.dir/dut/config.cc.o.d"
  "CMakeFiles/dth_dut.dir/dut/dut.cc.o"
  "CMakeFiles/dth_dut.dir/dut/dut.cc.o.d"
  "CMakeFiles/dth_dut.dir/dut/fault.cc.o"
  "CMakeFiles/dth_dut.dir/dut/fault.cc.o.d"
  "CMakeFiles/dth_dut.dir/dut/texture.cc.o"
  "CMakeFiles/dth_dut.dir/dut/texture.cc.o.d"
  "libdth_dut.a"
  "libdth_dut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_dut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
