file(REMOVE_RECURSE
  "libdth_dut.a"
)
