# Empty dependencies file for dth_dut.
# This may be replaced when dependencies are built.
