file(REMOVE_RECURSE
  "CMakeFiles/dth_event.dir/event/event.cc.o"
  "CMakeFiles/dth_event.dir/event/event.cc.o.d"
  "CMakeFiles/dth_event.dir/event/event_type.cc.o"
  "CMakeFiles/dth_event.dir/event/event_type.cc.o.d"
  "libdth_event.a"
  "libdth_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
