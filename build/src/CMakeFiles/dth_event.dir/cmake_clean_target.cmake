file(REMOVE_RECURSE
  "libdth_event.a"
)
