# Empty compiler generated dependencies file for dth_event.
# This may be replaced when dependencies are built.
