file(REMOVE_RECURSE
  "CMakeFiles/dth_link.dir/link/link_sim.cc.o"
  "CMakeFiles/dth_link.dir/link/link_sim.cc.o.d"
  "CMakeFiles/dth_link.dir/link/platform.cc.o"
  "CMakeFiles/dth_link.dir/link/platform.cc.o.d"
  "libdth_link.a"
  "libdth_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
