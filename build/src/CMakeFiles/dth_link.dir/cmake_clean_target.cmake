file(REMOVE_RECURSE
  "libdth_link.a"
)
