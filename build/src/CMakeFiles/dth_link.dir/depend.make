# Empty dependencies file for dth_link.
# This may be replaced when dependencies are built.
