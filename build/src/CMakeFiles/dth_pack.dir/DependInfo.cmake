
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pack/muxtree.cc" "src/CMakeFiles/dth_pack.dir/pack/muxtree.cc.o" "gcc" "src/CMakeFiles/dth_pack.dir/pack/muxtree.cc.o.d"
  "/root/repo/src/pack/packer.cc" "src/CMakeFiles/dth_pack.dir/pack/packer.cc.o" "gcc" "src/CMakeFiles/dth_pack.dir/pack/packer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dth_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
