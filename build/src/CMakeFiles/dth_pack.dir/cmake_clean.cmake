file(REMOVE_RECURSE
  "CMakeFiles/dth_pack.dir/pack/muxtree.cc.o"
  "CMakeFiles/dth_pack.dir/pack/muxtree.cc.o.d"
  "CMakeFiles/dth_pack.dir/pack/packer.cc.o"
  "CMakeFiles/dth_pack.dir/pack/packer.cc.o.d"
  "libdth_pack.a"
  "libdth_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
