file(REMOVE_RECURSE
  "libdth_pack.a"
)
