# Empty dependencies file for dth_pack.
# This may be replaced when dependencies are built.
