
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replay/buffer.cc" "src/CMakeFiles/dth_replay.dir/replay/buffer.cc.o" "gcc" "src/CMakeFiles/dth_replay.dir/replay/buffer.cc.o.d"
  "/root/repo/src/replay/undo_log.cc" "src/CMakeFiles/dth_replay.dir/replay/undo_log.cc.o" "gcc" "src/CMakeFiles/dth_replay.dir/replay/undo_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dth_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
