file(REMOVE_RECURSE
  "CMakeFiles/dth_replay.dir/replay/buffer.cc.o"
  "CMakeFiles/dth_replay.dir/replay/buffer.cc.o.d"
  "CMakeFiles/dth_replay.dir/replay/undo_log.cc.o"
  "CMakeFiles/dth_replay.dir/replay/undo_log.cc.o.d"
  "libdth_replay.a"
  "libdth_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
