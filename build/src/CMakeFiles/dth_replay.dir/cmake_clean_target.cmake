file(REMOVE_RECURSE
  "libdth_replay.a"
)
