# Empty compiler generated dependencies file for dth_replay.
# This may be replaced when dependencies are built.
