
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/riscv/core.cc" "src/CMakeFiles/dth_riscv.dir/riscv/core.cc.o" "gcc" "src/CMakeFiles/dth_riscv.dir/riscv/core.cc.o.d"
  "/root/repo/src/riscv/devices.cc" "src/CMakeFiles/dth_riscv.dir/riscv/devices.cc.o" "gcc" "src/CMakeFiles/dth_riscv.dir/riscv/devices.cc.o.d"
  "/root/repo/src/riscv/instr.cc" "src/CMakeFiles/dth_riscv.dir/riscv/instr.cc.o" "gcc" "src/CMakeFiles/dth_riscv.dir/riscv/instr.cc.o.d"
  "/root/repo/src/riscv/mem.cc" "src/CMakeFiles/dth_riscv.dir/riscv/mem.cc.o" "gcc" "src/CMakeFiles/dth_riscv.dir/riscv/mem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
