file(REMOVE_RECURSE
  "CMakeFiles/dth_riscv.dir/riscv/core.cc.o"
  "CMakeFiles/dth_riscv.dir/riscv/core.cc.o.d"
  "CMakeFiles/dth_riscv.dir/riscv/devices.cc.o"
  "CMakeFiles/dth_riscv.dir/riscv/devices.cc.o.d"
  "CMakeFiles/dth_riscv.dir/riscv/instr.cc.o"
  "CMakeFiles/dth_riscv.dir/riscv/instr.cc.o.d"
  "CMakeFiles/dth_riscv.dir/riscv/mem.cc.o"
  "CMakeFiles/dth_riscv.dir/riscv/mem.cc.o.d"
  "libdth_riscv.a"
  "libdth_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
