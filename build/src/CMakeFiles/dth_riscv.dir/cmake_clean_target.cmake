file(REMOVE_RECURSE
  "libdth_riscv.a"
)
