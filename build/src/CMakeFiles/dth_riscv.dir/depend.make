# Empty dependencies file for dth_riscv.
# This may be replaced when dependencies are built.
