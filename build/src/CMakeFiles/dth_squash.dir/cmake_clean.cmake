file(REMOVE_RECURSE
  "CMakeFiles/dth_squash.dir/squash/fused_views.cc.o"
  "CMakeFiles/dth_squash.dir/squash/fused_views.cc.o.d"
  "CMakeFiles/dth_squash.dir/squash/squash.cc.o"
  "CMakeFiles/dth_squash.dir/squash/squash.cc.o.d"
  "libdth_squash.a"
  "libdth_squash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_squash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
