file(REMOVE_RECURSE
  "libdth_squash.a"
)
