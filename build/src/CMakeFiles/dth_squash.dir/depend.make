# Empty dependencies file for dth_squash.
# This may be replaced when dependencies are built.
