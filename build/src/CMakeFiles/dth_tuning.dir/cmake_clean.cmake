file(REMOVE_RECURSE
  "CMakeFiles/dth_tuning.dir/tuning/analysis.cc.o"
  "CMakeFiles/dth_tuning.dir/tuning/analysis.cc.o.d"
  "CMakeFiles/dth_tuning.dir/tuning/placeholder.cc.o"
  "CMakeFiles/dth_tuning.dir/tuning/placeholder.cc.o.d"
  "CMakeFiles/dth_tuning.dir/tuning/sweep.cc.o"
  "CMakeFiles/dth_tuning.dir/tuning/sweep.cc.o.d"
  "CMakeFiles/dth_tuning.dir/tuning/trace.cc.o"
  "CMakeFiles/dth_tuning.dir/tuning/trace.cc.o.d"
  "libdth_tuning.a"
  "libdth_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
