file(REMOVE_RECURSE
  "libdth_tuning.a"
)
