# Empty dependencies file for dth_tuning.
# This may be replaced when dependencies are built.
