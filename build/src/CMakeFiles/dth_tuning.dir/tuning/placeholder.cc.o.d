src/CMakeFiles/dth_tuning.dir/tuning/placeholder.cc.o: \
 /root/repo/src/tuning/placeholder.cc /usr/include/stdc-predef.h
