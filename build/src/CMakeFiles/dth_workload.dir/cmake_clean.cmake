file(REMOVE_RECURSE
  "CMakeFiles/dth_workload.dir/workload/asm.cc.o"
  "CMakeFiles/dth_workload.dir/workload/asm.cc.o.d"
  "CMakeFiles/dth_workload.dir/workload/generators.cc.o"
  "CMakeFiles/dth_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/dth_workload.dir/workload/program.cc.o"
  "CMakeFiles/dth_workload.dir/workload/program.cc.o.d"
  "libdth_workload.a"
  "libdth_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dth_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
