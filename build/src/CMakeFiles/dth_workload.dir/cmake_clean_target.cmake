file(REMOVE_RECURSE
  "libdth_workload.a"
)
