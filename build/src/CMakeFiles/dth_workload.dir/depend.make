# Empty dependencies file for dth_workload.
# This may be replaced when dependencies are built.
