file(REMOVE_RECURSE
  "CMakeFiles/cosim_soak_test.dir/cosim_soak_test.cc.o"
  "CMakeFiles/cosim_soak_test.dir/cosim_soak_test.cc.o.d"
  "cosim_soak_test"
  "cosim_soak_test.pdb"
  "cosim_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
