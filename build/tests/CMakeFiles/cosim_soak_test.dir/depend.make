# Empty dependencies file for cosim_soak_test.
# This may be replaced when dependencies are built.
