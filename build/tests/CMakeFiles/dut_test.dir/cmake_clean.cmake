file(REMOVE_RECURSE
  "CMakeFiles/dut_test.dir/dut_test.cc.o"
  "CMakeFiles/dut_test.dir/dut_test.cc.o.d"
  "dut_test"
  "dut_test.pdb"
  "dut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
