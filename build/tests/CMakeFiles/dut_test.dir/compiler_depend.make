# Empty compiler generated dependencies file for dut_test.
# This may be replaced when dependencies are built.
