file(REMOVE_RECURSE
  "CMakeFiles/riscv_asm_test.dir/riscv_asm_test.cc.o"
  "CMakeFiles/riscv_asm_test.dir/riscv_asm_test.cc.o.d"
  "riscv_asm_test"
  "riscv_asm_test.pdb"
  "riscv_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
