# Empty dependencies file for riscv_asm_test.
# This may be replaced when dependencies are built.
