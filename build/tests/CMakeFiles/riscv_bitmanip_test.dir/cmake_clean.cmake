file(REMOVE_RECURSE
  "CMakeFiles/riscv_bitmanip_test.dir/riscv_bitmanip_test.cc.o"
  "CMakeFiles/riscv_bitmanip_test.dir/riscv_bitmanip_test.cc.o.d"
  "riscv_bitmanip_test"
  "riscv_bitmanip_test.pdb"
  "riscv_bitmanip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_bitmanip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
