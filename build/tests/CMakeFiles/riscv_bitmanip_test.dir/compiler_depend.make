# Empty compiler generated dependencies file for riscv_bitmanip_test.
# This may be replaced when dependencies are built.
