file(REMOVE_RECURSE
  "CMakeFiles/riscv_core_test.dir/riscv_core_test.cc.o"
  "CMakeFiles/riscv_core_test.dir/riscv_core_test.cc.o.d"
  "riscv_core_test"
  "riscv_core_test.pdb"
  "riscv_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
