# Empty dependencies file for riscv_core_test.
# This may be replaced when dependencies are built.
