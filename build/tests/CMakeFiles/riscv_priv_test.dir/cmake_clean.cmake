file(REMOVE_RECURSE
  "CMakeFiles/riscv_priv_test.dir/riscv_priv_test.cc.o"
  "CMakeFiles/riscv_priv_test.dir/riscv_priv_test.cc.o.d"
  "riscv_priv_test"
  "riscv_priv_test.pdb"
  "riscv_priv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_priv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
