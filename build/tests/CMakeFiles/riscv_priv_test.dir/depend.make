# Empty dependencies file for riscv_priv_test.
# This may be replaced when dependencies are built.
