file(REMOVE_RECURSE
  "CMakeFiles/riscv_smode_test.dir/riscv_smode_test.cc.o"
  "CMakeFiles/riscv_smode_test.dir/riscv_smode_test.cc.o.d"
  "riscv_smode_test"
  "riscv_smode_test.pdb"
  "riscv_smode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_smode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
