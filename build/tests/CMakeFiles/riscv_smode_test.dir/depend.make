# Empty dependencies file for riscv_smode_test.
# This may be replaced when dependencies are built.
