file(REMOVE_RECURSE
  "CMakeFiles/squash_test.dir/squash_test.cc.o"
  "CMakeFiles/squash_test.dir/squash_test.cc.o.d"
  "squash_test"
  "squash_test.pdb"
  "squash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
