# Empty dependencies file for squash_test.
# This may be replaced when dependencies are built.
