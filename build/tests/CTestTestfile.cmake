# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_soak_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_test[1]_include.cmake")
include("/root/repo/build/tests/dut_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/pack_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_asm_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_bitmanip_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_core_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_priv_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_smode_test[1]_include.cmake")
include("/root/repo/build/tests/squash_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
