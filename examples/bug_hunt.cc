/**
 * @file
 * Bug hunting with Replay: inject each of the paper's bug archetypes
 * (Table 6 categories) into the DUT, detect the mismatch at fused
 * granularity, and let Replay roll the REF back and reprocess the
 * buffered unfused events to pinpoint the exact faulty instruction and
 * microarchitectural component.
 *
 *   $ ./bug_hunt
 */

#include <cstdio>

#include "cosim/cosim.h"
#include "workload/generators.h"

using namespace dth;

namespace {

workload::Program
workloadFor(dut::BugArchetype archetype)
{
    workload::WorkloadOptions opts;
    opts.seed = 7;
    opts.iterations = 3000;
    opts.bodyLength = 48;
    switch (archetype) {
      case dut::BugArchetype::VectorLaneCorruption:
      case dut::BugArchetype::VtypeCorruption:
        return workload::makeVectorLike(opts);
      case dut::BugArchetype::RefillCorruption:
        return workload::makeComputeLike(opts);
      default:
        return workload::makeBootLike(opts);
    }
}

} // namespace

int
main()
{
    const dut::BugArchetype archetypes[] = {
        dut::BugArchetype::WrongRdValue,
        dut::BugArchetype::CsrCorruption,
        dut::BugArchetype::StoreDataCorruption,
        dut::BugArchetype::RefillCorruption,
        dut::BugArchetype::VectorLaneCorruption,
        dut::BugArchetype::VtypeCorruption,
        dut::BugArchetype::LostInterrupt,
    };

    int found = 0;
    for (dut::BugArchetype archetype : archetypes) {
        workload::Program program = workloadFor(archetype);
        cosim::CosimConfig cfg;
        cfg.dut = dut::xsDefaultConfig();
        cfg.platform = link::palladiumPlatform();
        cfg.applyOptLevel(cosim::OptLevel::BNSD); // fusion active

        cosim::CoSimulator sim(cfg, program);
        dut::FaultSpec fault;
        fault.archetype = archetype;
        fault.triggerSeq = 25000;
        sim.armFault(fault);

        cosim::CosimResult r = sim.run(4'000'000);
        const dut::FaultOutcome &outcome = sim.dutModel().faultOutcome();

        std::printf("=== %s (%s)\n", dut::bugArchetypeName(archetype),
                    dut::bugCategory(archetype));
        if (!outcome.fired) {
            std::printf("    fault never became eligible; skipped\n");
            continue;
        }
        std::printf("    injected : #%llu (%s)\n",
                    (unsigned long long)outcome.firedSeq,
                    outcome.description.c_str());
        if (r.verified) {
            std::printf("    ESCAPED detection!\n");
            return 1;
        }
        std::printf("    detected : #%llu via %s\n",
                    (unsigned long long)r.mismatch.seq,
                    eventInfo(r.mismatch.eventType).name);
        if (r.replayRan) {
            std::printf("    replay   : reverted REF via compensation "
                        "log, reprocessed unfused window\n");
            const auto &transcript =
                sim.coreChecker(r.mismatch.core).replayTranscript();
            size_t start =
                transcript.size() > 4 ? transcript.size() - 4 : 0;
            for (size_t i = start; i < transcript.size(); ++i)
                std::printf("      | %s\n", transcript[i].c_str());
        }
        std::printf("    verdict  : %s\n", r.mismatch.describe().c_str());
        ++found;
    }
    std::printf("\n%d/%zu bugs detected and localized.\n", found,
                std::size(archetypes));
    return found == static_cast<int>(std::size(archetypes)) ? 0 : 1;
}
