/**
 * @file
 * Bring your own design: define a custom DUT configuration (a 4-wide
 * core with a reduced monitor set) and a custom workload mix, then
 * evaluate which DiffTest-H optimizations matter for it on both
 * platform models. This is the downstream-integration path: a real
 * deployment replaces the DutModel with probes in its RTL, but the
 * communication stack, checker, link model and tuning flow are used
 * exactly as here.
 *
 *   $ ./custom_dut
 */

#include <cstdio>

#include "common/table.h"
#include "cosim/cosim.h"
#include "workload/generators.h"

using namespace dth;

namespace {

/** A hypothetical 4-wide core: no vector/hypervisor units, smaller
 *  caches, and a monitor set restricted to what it implements. */
dut::DutConfig
myCoreConfig()
{
    dut::DutConfig cfg;
    cfg.name = "MyCore (4-wide)";
    cfg.cores = 1;
    cfg.commitWidth = 4;
    cfg.gatesMillions = 21.0;
    cfg.commitCycleProb = 0.42;
    cfg.fullRegState = true;
    // Enable exactly the events the design has monitors for.
    const EventType monitored[] = {
        EventType::InstrCommit,    EventType::Trap,
        EventType::ArchEvent,      EventType::BranchEvent,
        EventType::ArchIntRegState, EventType::ArchFpRegState,
        EventType::CsrState,       EventType::FpCsrState,
        EventType::LoadEvent,      EventType::StoreEvent,
        EventType::AtomicEvent,    EventType::L1DRefill,
        EventType::L1IRefill,      EventType::L2Refill,
        EventType::L1TlbEvent,     EventType::LrScEvent,
        EventType::MmioEvent,      EventType::UartIoEvent,
    };
    for (EventType t : monitored)
        cfg.eventEnabled[static_cast<unsigned>(t)] = true;
    cfg.l1dSets = 64;
    cfg.l1dWays = 2;
    cfg.l2Sets = 256;
    cfg.l2Ways = 8;
    cfg.sbufferThreshold = 0; // no store-buffer monitor
    cfg.extIrqInterval = 25000;
    return cfg;
}

} // namespace

int
main()
{
    // A custom workload mix: a kernel-ish profile with atomics and
    // moderate device traffic.
    workload::WorkloadMix mix;
    mix.alu = 0.40;
    mix.mulDiv = 0.05;
    mix.load = 0.20;
    mix.store = 0.12;
    mix.amo = 0.06;
    mix.mmio = 0.05;
    mix.csr = 0.05;
    mix.branch = 0.06;
    mix.ecall = 0.01;
    workload::WorkloadOptions opts;
    opts.seed = 77;
    opts.iterations = 1500;
    opts.bodyLength = 64;
    opts.timerInterrupts = true;
    workload::Program program =
        workload::generate("my-kernel", mix, opts);

    dut::DutConfig my_core = myCoreConfig();
    std::printf("DUT: %s — %u monitored event types, %.1f M gates\n\n",
                my_core.name.c_str(), my_core.enabledEventTypes(),
                my_core.gatesMillions);

    TextTable table({"Platform", "Level", "Speed", "Comm share",
                     "Bytes/cycle"});
    for (const link::Platform &platform :
         {link::palladiumPlatform(), link::fpgaPlatform()}) {
        for (cosim::OptLevel level :
             {cosim::OptLevel::Z, cosim::OptLevel::BN,
              cosim::OptLevel::BNSD}) {
            cosim::CosimConfig cfg;
            cfg.dut = my_core;
            cfg.platform = platform;
            cfg.applyOptLevel(level);
            cosim::CoSimulator sim(cfg, program);
            cosim::CosimResult r = sim.run(3'000'000);
            if (!r.goodTrap) {
                std::fprintf(stderr, "verification failed: %s\n",
                             r.mismatch.describe().c_str());
                return 1;
            }
            table.addRow({platform.name, optLevelName(level),
                          fmtHz(r.simSpeedHz),
                          fmtPercent(r.timing.communicationFraction()),
                          fmtDouble(r.bytesPerCycle, 0)});
        }
    }
    table.print();

    std::printf("\nThe same API drives verification with an injected "
                "bug:\n");
    cosim::CosimConfig cfg;
    cfg.dut = my_core;
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);
    cosim::CoSimulator sim(cfg, program);
    dut::FaultSpec fault;
    fault.archetype = dut::BugArchetype::StoreDataCorruption;
    fault.triggerSeq = 30000;
    sim.armFault(fault);
    cosim::CosimResult r = sim.run(3'000'000);
    if (r.verified) {
        std::fprintf(stderr, "bug escaped!\n");
        return 1;
    }
    std::printf("%s\n", r.mismatch.describe().c_str());
    return 0;
}
