/**
 * @file
 * Platform tuning with the toolkit (paper §5): capture a DUT trace
 * once, analyze event volume/frequency/repetitiveness offline (the
 * "SQL analysis" backend), then sweep Squash/Batch parameters over the
 * trace — without re-running the DUT — and verify the chosen
 * configuration end-to-end on both platform models.
 *
 *   $ ./platform_tuning
 */

#include <cstdio>

#include "common/table.h"
#include "cosim/cosim.h"
#include "tuning/analysis.h"
#include "workload/generators.h"

using namespace dth;

int
main()
{
    // 1. Capture the monitor stream of one Linux-boot-like run.
    workload::WorkloadOptions opts;
    opts.seed = 11;
    opts.iterations = 1200;
    opts.bodyLength = 64;
    workload::Program program = workload::makeBootLike(opts);

    cosim::CosimConfig capture_cfg;
    capture_cfg.dut = dut::xsDefaultConfig();
    capture_cfg.platform = link::palladiumPlatform();
    capture_cfg.applyOptLevel(cosim::OptLevel::BNSD);

    tuning::DutTrace trace;
    trace.workloadName = program.name;
    {
        cosim::CoSimulator sim(capture_cfg, program);
        sim.setMonitorTap([&trace](const CycleEvents &ce) {
            trace.cycles.push_back(ce);
        });
        cosim::CosimResult r = sim.run(2'000'000);
        if (!r.goodTrap) {
            std::fprintf(stderr, "capture run failed: %s\n",
                         r.mismatch.describe().c_str());
            return 1;
        }
    }
    std::printf("captured trace: %zu cycles, %llu events, %llu bytes\n\n",
                trace.cycles.size(),
                (unsigned long long)trace.totalEvents(),
                (unsigned long long)trace.totalBytes());

    // 2. Offline analysis: who talks, how often, how repetitive?
    tuning::TraceAnalysis analysis = tuning::analyzeTrace(trace);
    std::printf("per-type transmission statistics (CSV excerpt):\n%s\n",
                analysis.toCsv().c_str());

    // 3. Sweep fusion depth and packet size over the trace only.
    std::printf("offline pipeline sweep (no DUT re-run):\n\n");
    TextTable sweep({"maxFuse", "packet", "wire bytes", "transfers",
                     "fusion ratio"});
    unsigned best_fuse = 8;
    unsigned best_packet = 4096;
    u64 best_bytes = ~0ULL;
    for (unsigned fuse : {8u, 32u, 128u}) {
        for (unsigned packet : {4096u, 16384u}) {
            SquashConfig sc;
            sc.maxFuse = fuse;
            tuning::PipelineVolume v =
                tuning::simulatePipeline(trace, sc, packet);
            sweep.addRow({std::to_string(fuse), std::to_string(packet),
                          std::to_string(v.wireBytes),
                          std::to_string(v.transfers),
                          fmtDouble(v.fusionRatio, 1)});
            if (v.wireBytes < best_bytes) {
                best_bytes = v.wireBytes;
                best_fuse = fuse;
                best_packet = packet;
            }
        }
    }
    sweep.print();
    std::printf("\nselected: maxFuse=%u, packetBytes=%u\n\n", best_fuse,
                best_packet);

    // 4. Confirm the tuned configuration end-to-end on both platforms.
    for (const link::Platform &platform :
         {link::palladiumPlatform(), link::fpgaPlatform()}) {
        cosim::CosimConfig cfg = capture_cfg;
        cfg.platform = platform;
        cfg.maxFuse = best_fuse;
        cfg.packetBytes = best_packet;
        cosim::CoSimulator sim(cfg, program);
        cosim::CosimResult r = sim.run(2'000'000);
        if (!r.goodTrap) {
            std::fprintf(stderr, "tuned run failed on %s\n",
                         platform.name.c_str());
            return 1;
        }
        std::printf("%-22s %s\n", platform.name.c_str(),
                    r.summary().c_str());
    }
    return 0;
}
