/**
 * @file
 * Quickstart: verify a RISC-V DUT against the REF with full DiffTest-H
 * acceleration (Batch + NonBlock + Squash + Replay).
 *
 *   $ ./quickstart
 *
 * The flow mirrors the paper's Fig. 3: a workload is generated and
 * loaded into the DUT model (standing in for XiangShan on Palladium),
 * the monitor event stream crosses the modeled link, and the software
 * checker drives a golden REF core, comparing architectural state
 * instruction by instruction.
 */

#include <cstdio>

#include "cosim/cosim.h"
#include "workload/generators.h"

using namespace dth;

int
main()
{
    // 1. A workload: Linux-boot-like (device MMIO, timer interrupts,
    //    exceptions) — the paper's headline benchmark.
    workload::WorkloadOptions opts;
    opts.seed = 42;
    opts.iterations = 2000;
    opts.bodyLength = 64;
    workload::Program program = workload::makeBootLike(opts);
    std::printf("workload: %s (%zu instructions of text)\n",
                program.name.c_str(), program.instrCount());

    // 2. A co-simulation: XiangShan-default on the Palladium platform
    //    model, with every DiffTest-H optimization enabled.
    cosim::CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);

    cosim::CoSimulator sim(cfg, program);
    cosim::CosimResult result = sim.run(/*max_cycles=*/2'000'000);

    // 3. The verdict and the performance report.
    if (result.goodTrap) {
        std::printf("Core 0: HIT GOOD TRAP at instruction %llu\n",
                    (unsigned long long)result.instrs);
    } else if (!result.verified) {
        std::printf("MISMATCH: %s\n", result.mismatch.describe().c_str());
        return 1;
    }
    std::printf("Simulation speed: %.2f KHz\n",
                result.simSpeedHz / 1e3);
    std::printf("  cycles: %llu, instructions: %llu (IPC %.2f)\n",
                (unsigned long long)result.cycles,
                (unsigned long long)result.instrs,
                double(result.instrs) / result.cycles);
    std::printf("  communication: %.2f%% of co-simulation time\n",
                result.timing.communicationFraction() * 100);
    std::printf("  wire traffic: %.2f transfers/cycle, %.0f bytes/cycle "
                "(raw monitor volume: %.0f bytes/instr)\n",
                result.invokesPerCycle, result.bytesPerCycle,
                result.rawBytesPerInstr);
    std::printf("  Squash fusion ratio: %.1f commits/window\n",
                result.fusionRatio);
    return 0;
}
