/**
 * @file
 * Iterative debugging with DUT traces (paper §5): dump the original
 * verification events during one run, then iterate on verification
 * logic by reloading the trace — no DUT compilation or execution in the
 * loop. The example also shows that a corrupted trace event is caught
 * by trace-driven verification exactly like a live mismatch.
 *
 *   $ ./trace_debug [trace-file]
 */

#include <cstdio>

#include "cosim/cosim.h"
#include "tuning/analysis.h"
#include "tuning/trace.h"
#include "workload/generators.h"

using namespace dth;

int
main(int argc, char **argv)
{
    std::string path = argc > 1 ? argv[1] : "/tmp/dth_dut_trace.bin";

    workload::WorkloadOptions opts;
    opts.seed = 23;
    opts.iterations = 800;
    opts.bodyLength = 48;
    workload::Program program = workload::makeBootLike(opts);

    // First (and only) DUT run: capture and dump the trace.
    cosim::CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);

    tuning::DutTrace trace;
    trace.workloadName = program.name;
    {
        cosim::CoSimulator sim(cfg, program);
        sim.setMonitorTap([&trace](const CycleEvents &ce) {
            trace.cycles.push_back(ce);
        });
        if (!sim.run(2'000'000).goodTrap) {
            std::fprintf(stderr, "capture run failed\n");
            return 1;
        }
    }
    if (!tuning::saveTrace(trace, path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("dumped DUT trace to %s (%zu cycles, %llu events)\n",
                path.c_str(), trace.cycles.size(),
                (unsigned long long)trace.totalEvents());

    // Iteration loop: reload and verify against the REF, DUT-free.
    tuning::DutTrace reloaded;
    if (!tuning::loadTrace(&reloaded, path)) {
        std::fprintf(stderr, "cannot reload %s\n", path.c_str());
        return 1;
    }
    checker::MismatchReport report;
    bool clean = tuning::verifyTrace(reloaded, program, cfg.dut.cores,
                                     true, &report);
    std::printf("trace-driven verification: %s\n",
                clean ? "clean" : report.describe().c_str());
    if (!clean)
        return 1;

    // A corrupted trace event is caught like a live mismatch.
    for (CycleEvents &ce : reloaded.cycles) {
        bool done = false;
        for (Event &e : ce.events) {
            if (e.type == EventType::StoreEvent && e.commitSeq > 5000) {
                StoreView v(e);
                v.set_data(v.data() ^ 0x1);
                done = true;
                break;
            }
        }
        if (done)
            break;
    }
    clean = tuning::verifyTrace(reloaded, program, cfg.dut.cores, true,
                                &report);
    std::printf("after tampering with one store event: %s\n",
                clean ? "NOT DETECTED (bug!)" : report.describe().c_str());
    return clean ? 1 : 0;
}
