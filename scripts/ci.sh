#!/usr/bin/env bash
# CI entry point: normal build + full test suite, then a ThreadSanitizer
# build running the concurrency tests (the SPSC ring and the threaded
# cosim runtime). Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> normal build + full ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build + concurrency tests"
cmake -B build-tsan -S . -DDTH_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target host_pipeline_test
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/host_pipeline_test \
    --gtest_filter='SpscRing.*:*ThreadedEquivalence*'

echo "==> CI OK"
