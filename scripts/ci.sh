#!/usr/bin/env bash
# CI entry point, mirroring the GitHub Actions matrix:
#   1. warnings-as-errors build + dth_lint protocol gate + full ctest
#      + observability bench smoke (serial/threaded stat equivalence,
#      BENCH_obs.json schema drift gate)
#   2. AddressSanitizer+UBSan build + full ctest (UB reports are fatal)
#   3. chaos: link fault-injection soak under ASan+UBSan, gated on zero
#      unrecovered faults and fault-free-identical verdicts
#   4. ThreadSanitizer build + concurrency tests (SPSC ring, threaded
#      cosim runtime, stat registry, fleet scheduler)
# Plus the fleet campaign smoke: a 6-job campaign (incl. a seeded
# link-fault job that must recover via quarantine/retry and a forced
# cycle-budget timeout) whose report must be byte-identical across
# worker counts, run in both the werror and ASan+UBSan builds.
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> warnings-as-errors build + protocol lint + full ctest"
cmake -B build -S . -DDTH_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
# Blocking gate: the protocol tables must satisfy the full invariant
# catalogue before any simulation-based test is worth running.
./build/tools/dth_lint --verbose
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> observability bench smoke + snapshot schema gate"
# Runs a small BNSD workload serially and threaded, requires identical
# deterministic stats, and emits BENCH_obs.json + BENCH_timeline.json.
(cd build && ./bench/bench_obs_smoke)
./build/tools/dth_stats build/BENCH_obs.json >/dev/null
./build/tools/dth_stats --diff build/BENCH_obs.json build/BENCH_obs.json
# Schema drift gate: the stat names/kinds the smoke workload emits must
# match the checked-in golden list (bench/BENCH_obs.schema.txt).
./build/tools/dth_stats --schema build/BENCH_obs.json \
    | diff -u bench/BENCH_obs.schema.txt -

echo "==> fleet campaign smoke (deterministic across worker counts)"
# The campaign intentionally contains one forced-timeout job, so
# dth_fleet must exit 1 (failures present) — any other status is a bug.
run_fleet_smoke() { # <build-dir> <workers> <report>
    local rc=0
    "$1/tools/dth_fleet" --spec bench/fleet_smoke.json \
        --workers "$2" --report "$3" --quiet || rc=$?
    [ "$rc" -eq 1 ]
}
run_fleet_smoke build 4 build/FLEET_report_w4.json
run_fleet_smoke build 1 build/FLEET_report_w1.json
# Byte-identical verdicts/digests regardless of scheduling.
cmp build/FLEET_report_w4.json build/FLEET_report_w1.json
# The aggregate snapshot is a valid dth-obs-v1 merge input.
"./build/tools/dth_stats" --merge build/BENCH_obs.json \
    build/BENCH_obs.json >/dev/null

echo "==> ASan+UBSan build + full ctest"
cmake -B build-asan -S . -DDTH_SANITIZE=address,undefined \
      -DDTH_WERROR=ON >/dev/null
cmake --build build-asan -j "$JOBS"
./build-asan/tools/dth_lint
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
# Fleet smoke under the sanitizers: concurrent sessions over shared
# immutable tables/programs with quarantine/retry and timeout paths.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    run_fleet_smoke build-asan 4 build-asan/FLEET_report_w4.json

echo "==> chaos: link fault-injection soak under ASan+UBSan"
# Every fault kind active at fixed seeds. The gate is zero
# budget-exceeding unrecovered faults: the chaos suite fails unless
# every run recovers and its verdict + checked-event stream are
# bit-identical to the fault-free run's, in both host runtimes.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/frame_test
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/cosim_chaos_test

echo "==> ThreadSanitizer build + concurrency tests"
cmake -B build-tsan -S . -DDTH_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target host_pipeline_test \
    --target fleet_test
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/host_pipeline_test \
    --gtest_filter='SpscRing.*:*ThreadedEquivalence*:StatRegistry.*'
# Fleet worker pool racing over one SharedTables + program library.
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/fleet_test --gtest_filter='FleetConcurrency.*'

echo "==> CI OK"
