#!/usr/bin/env bash
# CI entry point, mirroring the GitHub Actions matrix:
#   1. warnings-as-errors build + dth_lint protocol gate + full ctest
#   2. AddressSanitizer+UBSan build + full ctest (UB reports are fatal)
#   3. ThreadSanitizer build + concurrency tests (SPSC ring, threaded
#      cosim runtime)
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> warnings-as-errors build + protocol lint + full ctest"
cmake -B build -S . -DDTH_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
# Blocking gate: the protocol tables must satisfy the full invariant
# catalogue before any simulation-based test is worth running.
./build/tools/dth_lint --verbose
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> ASan+UBSan build + full ctest"
cmake -B build-asan -S . -DDTH_SANITIZE=address,undefined \
      -DDTH_WERROR=ON >/dev/null
cmake --build build-asan -j "$JOBS"
./build-asan/tools/dth_lint
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build + concurrency tests"
cmake -B build-tsan -S . -DDTH_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target host_pipeline_test
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/host_pipeline_test \
    --gtest_filter='SpscRing.*:*ThreadedEquivalence*'

echo "==> CI OK"
