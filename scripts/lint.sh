#!/usr/bin/env bash
# Static-analysis entry point: the dth_lint protocol gate, clang-tidy
# over the sources, and a clang-format check. clang tools are optional
# locally (skipped with a notice when absent); CI installs them, so a
# skip here never hides a CI failure. Usage: scripts/lint.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
status=0

echo "==> dth_lint: protocol invariant catalogue"
if [ ! -x build/tools/dth_lint ]; then
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" --target dth_lint
fi
./build/tools/dth_lint || status=1

sources=$(git ls-files 'src/*.cc' 'src/*.h' 'tools/*.cc' 'tests/*.cc')

echo "==> clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    # The compilation database drives include paths and the C++ level.
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    if command -v run-clang-tidy >/dev/null 2>&1; then
        # shellcheck disable=SC2086
        run-clang-tidy -p build -quiet -j "$JOBS" $sources || status=1
    else
        # shellcheck disable=SC2086
        clang-tidy -p build $sources || status=1
    fi
else
    echo "clang-tidy not installed; skipping (CI runs it)"
fi

echo "==> clang-format check"
if command -v clang-format >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    if ! clang-format --dry-run --Werror $sources; then
        echo "formatting drift: run clang-format -i on the files above"
        status=1
    fi
else
    echo "clang-format not installed; skipping (CI runs it)"
fi

if [ "$status" -eq 0 ]; then
    echo "==> lint OK"
else
    echo "==> lint FAILED"
fi
exit "$status"
