#include "analysis/layout_audit.h"

namespace dth::analysis {

namespace {

constexpr unsigned
id(EventType type)
{
    return static_cast<unsigned>(type);
}

constexpr LayoutFact kFacts[] = {
    {id(EventType::InstrCommit), InstrCommitView::kPayloadBytes,
     "InstrCommitView"},
    {id(EventType::Trap), TrapView::kPayloadBytes, "TrapView"},
    {id(EventType::ArchEvent), ArchEventView::kPayloadBytes,
     "ArchEventView"},
    {id(EventType::BranchEvent), BranchView::kPayloadBytes, "BranchView"},
    {id(EventType::ArchIntRegState), RegFileView::kPayloadBytes,
     "RegFileView"},
    {id(EventType::ArchFpRegState), RegFileView::kPayloadBytes,
     "RegFileView"},
    {id(EventType::CsrState), CsrStateView::kPayloadBytes,
     "CsrStateView"},
    {id(EventType::FpCsrState), FpCsrView::kPayloadBytes, "FpCsrView"},
    {id(EventType::ArchVecRegState), VecRegView::kPayloadBytes,
     "VecRegView"},
    {id(EventType::VecCsrState), VecCsrView::kPayloadBytes, "VecCsrView"},
    {id(EventType::LoadEvent), LoadView::kPayloadBytes, "LoadView"},
    {id(EventType::StoreEvent), StoreView::kPayloadBytes, "StoreView"},
    {id(EventType::AtomicEvent), AtomicView::kPayloadBytes, "AtomicView"},
    {id(EventType::SbufferEvent), SbufferView::kPayloadBytes,
     "SbufferView"},
    {id(EventType::L1DRefill), RefillView::kPayloadBytes, "RefillView"},
    {id(EventType::L1IRefill), RefillView::kPayloadBytes, "RefillView"},
    {id(EventType::L2Refill), RefillView::kPayloadBytes, "RefillView"},
    {id(EventType::L1TlbEvent), TlbView::kL1PayloadBytes, "TlbView(L1)"},
    {id(EventType::L2TlbEvent), TlbView::kL2PayloadBytes, "TlbView(L2)"},
    {id(EventType::LrScEvent), LrScView::kPayloadBytes, "LrScView"},
    {id(EventType::MmioEvent), MmioView::kPayloadBytes, "MmioView"},
    {id(EventType::VtypeEvent), VtypeView::kPayloadBytes, "VtypeView"},
    {id(EventType::UartIoEvent), UartIoView::kPayloadBytes, "UartIoView"},
    {id(EventType::FusedCommit), FusedCommitView::kPayloadBytes,
     "FusedCommitView"},
    {id(EventType::FusedDigest), FusedDigestView::kPayloadBytes,
     "FusedDigestView"},
};

} // namespace

std::span<const LayoutFact>
payloadLayoutFacts()
{
    return kFacts;
}

} // namespace dth::analysis
