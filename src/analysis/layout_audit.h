/**
 * @file
 * Layout audit: the bridge between the typed payload views
 * (src/event/payloads.h, src/squash/fused_views.h) and the protocol
 * metadata table (src/event/event_table.h). Each fact pairs an event
 * type id with the wire size its view encodes; the static_asserts below
 * prove table/view agreement at compile time, and dth_lint re-checks the
 * same facts against (possibly mutated) table copies at runtime.
 */

#ifndef DTH_ANALYSIS_LAYOUT_AUDIT_H_
#define DTH_ANALYSIS_LAYOUT_AUDIT_H_

#include <span>

#include "event/event_table.h"
#include "event/payloads.h"
#include "squash/fused_views.h"

namespace dth::analysis {

/** One audited payload layout: type id -> view-declared wire size. */
struct LayoutFact
{
    unsigned typeId;
    size_t viewBytes;
    const char *viewName;
};

/**
 * Every type with a typed payload view. Types absent here (hcsr_state,
 * debug_csr, trigger_csr, debug_mode, vec_writeback, hyp_ldst,
 * guest_ptw, runahead, aia) are raw word arrays; dth_lint still checks
 * their alignment and packet-budget fit.
 */
std::span<const LayoutFact> payloadLayoutFacts();

/** Largest fixed serialized size in the table (the packet floor). */
constexpr size_t
maxFixedPayloadBytes()
{
    size_t best = 0;
    for (const EventTypeInfo &info : kEventTable)
        if (info.bytesPerEntry > best)
            best = info.bytesPerEntry;
    return best;
}

// ---------------------------------------------------------------------------
// Compile-time table/view agreement proofs. A size drift between a view
// and its table row fails the build here; dth_lint reports the same
// violation class (LintCheck::LayoutMismatch) for runtime table copies.
// ---------------------------------------------------------------------------

namespace audit_detail {

constexpr size_t
tableBytes(EventType type)
{
    return kEventTable[static_cast<unsigned>(type)].bytesPerEntry;
}

} // namespace audit_detail

static_assert(audit_detail::tableBytes(EventType::InstrCommit) ==
              InstrCommitView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::Trap) ==
              TrapView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::ArchEvent) ==
              ArchEventView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::BranchEvent) ==
              BranchView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::ArchIntRegState) ==
              RegFileView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::ArchFpRegState) ==
              RegFileView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::CsrState) ==
              CsrStateView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::FpCsrState) ==
              FpCsrView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::LoadEvent) ==
              LoadView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::StoreEvent) ==
              StoreView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::AtomicEvent) ==
              AtomicView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::SbufferEvent) ==
              SbufferView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::L1DRefill) ==
              RefillView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::L1IRefill) ==
              RefillView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::L2Refill) ==
              RefillView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::L1TlbEvent) ==
              TlbView::kL1PayloadBytes);
static_assert(audit_detail::tableBytes(EventType::L2TlbEvent) ==
              TlbView::kL2PayloadBytes);
static_assert(audit_detail::tableBytes(EventType::LrScEvent) ==
              LrScView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::MmioEvent) ==
              MmioView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::ArchVecRegState) ==
              VecRegView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::VecCsrState) ==
              VecCsrView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::VtypeEvent) ==
              VtypeView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::UartIoEvent) ==
              UartIoView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::FusedCommit) ==
              FusedCommitView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::FusedDigest) ==
              FusedDigestView::kPayloadBytes);
static_assert(audit_detail::tableBytes(EventType::DiffState) == 0,
              "DiffState is the only variable-length wire type");

/** The structurally largest event must be the vector register file. */
static_assert(maxFixedPayloadBytes() == VecRegView::kPayloadBytes);

} // namespace dth::analysis

#endif // DTH_ANALYSIS_LAYOUT_AUDIT_H_
