#include "analysis/protocol_lint.h"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <string>

#include "analysis/layout_audit.h"
#include "common/logging.h"
#include "link/channel.h"
#include "link/frame.h"
#include "pack/muxtree.h"
#include "pack/packer.h"
#include "pack/wire.h"
#include "squash/squash.h"

namespace dth::analysis {

namespace {

std::string
formatv(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

#define DTH_LINT_MSG(...) formatv(__VA_ARGS__)

class Linter
{
  public:
    explicit Linter(const ProtocolTables &tables) : t_(tables) {}

    LintReport
    run()
    {
        checkTableConsistency();
        checkWireFormat();
        checkMuxTree();
        checkSquashSafety();
        checkReplayCoverage();
        checkFrameTransport();
        return std::move(report_);
    }

  private:
    void
    finding(LintCheck check, int type_id, std::string message)
    {
        report_.findings.push_back(
            LintFinding{check, type_id, std::move(message)});
    }

    /** Evaluate one invariant instance; record a finding on failure. */
    bool
    expect(bool ok, LintCheck check, int type_id, std::string message)
    {
        ++report_.checksRun;
        if (!ok)
            finding(check, type_id, std::move(message));
        return ok;
    }

    const char *
    typeName(unsigned id) const
    {
        return id < t_.events.size() && t_.events[id].name
                   ? t_.events[id].name
                   : "<unknown>";
    }

    void checkTableConsistency();
    void checkWireFormat();
    void checkMuxTree();
    void checkSquashSafety();
    void checkReplayCoverage();
    void checkFrameTransport();

    const ProtocolTables &t_;
    LintReport report_;
};

// ---------------------------------------------------------------------------
// 1. Event-type table consistency.
// ---------------------------------------------------------------------------

void
Linter::checkTableConsistency()
{
    expect(t_.events.size() == t_.numWireTypes, LintCheck::IdDensity, -1,
           DTH_LINT_MSG("table has %zu rows but %u wire types declared",
                        t_.events.size(), t_.numWireTypes));
    expect(t_.numEventTypes <= t_.numWireTypes, LintCheck::IdDensity, -1,
           DTH_LINT_MSG("%u monitor types exceed %u wire types",
                        t_.numEventTypes, t_.numWireTypes));

    std::set<std::string> names;
    for (unsigned i = 0; i < t_.events.size(); ++i) {
        const EventTypeInfo &row = t_.events[i];
        int id = static_cast<int>(i);
        expect(static_cast<unsigned>(row.type) == i, LintCheck::IdDensity,
               id,
               DTH_LINT_MSG("row %u declares stable id %u: ids must be "
                            "dense and in table order",
                            i, static_cast<unsigned>(row.type)));
        bool named = expect(row.name && row.name[0] != '\0',
                            LintCheck::EmptyName, id,
                            DTH_LINT_MSG("row %u has no wire name", i));
        if (named) {
            expect(names.insert(row.name).second, LintCheck::DuplicateName,
                   id,
                   DTH_LINT_MSG("wire name '%s' used by more than one type",
                                row.name));
        }
        expect(row.component && row.component[0] != '\0',
               LintCheck::EmptyName, id,
               DTH_LINT_MSG("type %s maps to no microarchitectural "
                            "component",
                            typeName(i)));
        expect(static_cast<unsigned>(row.category) <=
                   static_cast<unsigned>(EventCategory::Extension),
               LintCheck::BadCategory, id,
               DTH_LINT_MSG("type %s has category %u outside the "
                            "catalogue",
                            typeName(i),
                            static_cast<unsigned>(row.category)));
        expect(row.entriesPerCore >= 1, LintCheck::BadEntriesPerCore, id,
               DTH_LINT_MSG("type %s allows zero entries per cycle",
                            typeName(i)));
        if (i < t_.numEventTypes) {
            expect(row.bytesPerEntry != 0,
                   LintCheck::VariableLengthMonitor, id,
                   DTH_LINT_MSG("monitor type %s is variable-length; "
                                "only wire pseudo-types may be",
                                typeName(i)));
        }
        expect(row.bytesPerEntry % 8 == 0, LintCheck::MisalignedPayload,
               id,
               DTH_LINT_MSG("type %s payload (%u B) is not u64-aligned",
                            typeName(i), row.bytesPerEntry));
    }

    // The typed payload views are the layout ground truth: a table row
    // disagreeing with its view means the wire stream and the parser
    // read different layouts.
    for (const LayoutFact &fact : payloadLayoutFacts()) {
        if (fact.typeId >= t_.events.size())
            continue;
        const EventTypeInfo &row = t_.events[fact.typeId];
        expect(row.bytesPerEntry == fact.viewBytes,
               LintCheck::LayoutMismatch, static_cast<int>(fact.typeId),
               DTH_LINT_MSG("type %s: table serializedSize %u B != %zu B "
                            "encoded by %s",
                            typeName(fact.typeId), row.bytesPerEntry,
                            fact.viewBytes, fact.viewName));
    }
}

// ---------------------------------------------------------------------------
// 2. Wire-format soundness: packet budget + encode-probe round-trips.
//
// The probes always drive the *real* encoders with events built from the
// real in-tree table, then compare measured sizes and reconstructed
// events against the snapshot's constants, so a stale constant in the
// snapshot (or a drifted encoder) is reported rather than crashing.
// ---------------------------------------------------------------------------

namespace {

/** A probe event with a recognizable payload pattern. */
Event
probeEvent(EventType type, u8 core, u8 index, u64 seq, u64 emit)
{
    Event e = Event::make(type, core, index, seq);
    e.emitSeq = emit;
    for (size_t i = 0; i < e.payload.size(); ++i)
        e.payload[i] = static_cast<u8>(0xA5u ^ (i * 31u) ^ seq);
    return e;
}

} // namespace

void
Linter::checkWireFormat()
{
    expect(t_.numWireTypes == kNumWireTypes, LintCheck::WireTypeCount, -1,
           DTH_LINT_MSG("snapshot declares %u wire types, build has %u: "
                        "kNumWireTypes must cover every split/fused tag",
                        t_.numWireTypes, kNumWireTypes));
    expect(t_.numWireTypes > t_.numEventTypes, LintCheck::WireTypeCount,
           -1,
           DTH_LINT_MSG("no wire ids reserved for Squash pseudo-types "
                        "(%u monitor vs %u wire)",
                        t_.numEventTypes, t_.numWireTypes));

    // Per-event wire cost must fit one packet after the Batch header and
    // one metadata entry; otherwise BatchPacker can never emit it.
    for (unsigned i = 0; i < t_.events.size(); ++i) {
        const EventTypeInfo &row = t_.events[i];
        size_t need = t_.batchPacketHeaderBytes + t_.batchMetaBytes +
                      t_.eventWireHeaderBytes + row.bytesPerEntry +
                      (row.bytesPerEntry == 0 ? t_.wireLengthPrefixBytes
                                              : 0);
        expect(need <= t_.packetBytes, LintCheck::PacketBudget,
               static_cast<int>(i),
               DTH_LINT_MSG("type %s needs %zu B on the wire but the "
                            "packet budget is %u B",
                            typeName(i), need, t_.packetBytes));
    }

    // Probe A: fixed-size header cost vs kEventWireHeaderBytes.
    {
        Event e = probeEvent(EventType::InstrCommit, 0, 3, 0x1234, 7);
        ByteWriter w;
        writeEventBody(w, e);
        size_t measured = w.size() - e.payload.size();
        expect(measured == t_.eventWireHeaderBytes,
               LintCheck::StaleHeaderConstant, -1,
               DTH_LINT_MSG("writeEventBody emits a %zu B header but "
                            "kEventWireHeaderBytes says %zu",
                            measured, t_.eventWireHeaderBytes));
    }

    // Probe B: variable-length types must carry the length prefix.
    {
        Event e;
        e.type = EventType::DiffState;
        e.commitSeq = 5;
        e.emitSeq = 1;
        e.payload.assign(24, 0x5Au);
        ByteWriter w;
        writeEventBody(w, e);
        size_t measured = w.size() - e.payload.size();
        expect(measured ==
                   t_.eventWireHeaderBytes + t_.wireLengthPrefixBytes,
               LintCheck::StaleHeaderConstant, -1,
               DTH_LINT_MSG("variable-length wire overhead is %zu B but "
                            "header+prefix constants say %zu",
                            measured,
                            t_.eventWireHeaderBytes +
                                t_.wireLengthPrefixBytes));
        ByteReader r(w.bytes());
        Event back = readEventBody(r, EventType::DiffState, 0);
        expect(r.atEnd() && back.payload == e.payload &&
                   back.commitSeq == e.commitSeq,
               LintCheck::RoundTripMismatch, -1,
               "variable-length event did not survive a wire round-trip");
    }

    // Probe C: every monitor type round-trips bit-exactly.
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        auto type = static_cast<EventType>(i);
        Event e = probeEvent(type, 1, 2, 0xBEEF + i, 40 + i);
        ByteWriter w;
        writeEventBody(w, e);
        ByteReader r(w.bytes());
        Event back = readEventBody(r, type, 1);
        expect(r.atEnd() && back == e, LintCheck::RoundTripMismatch,
               static_cast<int>(i),
               DTH_LINT_MSG("type %s did not survive a wire round-trip",
                            typeName(i)));
    }

    // Probe D: a real Batch packet's overhead must match the header and
    // per-meta constants, and unpacking must reproduce the events.
    if (t_.packetBytes >= 64) {
        CycleEvents cycle;
        cycle.cycle = 9;
        cycle.events.push_back(
            probeEvent(EventType::InstrCommit, 0, 0, 100, 0));
        cycle.events.push_back(
            probeEvent(EventType::StoreEvent, 0, 1, 100, 1));
        BatchPacker packer(t_.packetBytes);
        std::vector<Transfer> transfers;
        packer.packCycle(cycle, transfers);
        packer.flush(transfers);
        bool emitted = expect(transfers.size() == 1 &&
                                  !transfers[0].bytes.empty(),
                              LintCheck::StaleHeaderConstant, -1,
                              "Batch probe produced no packet");
        if (emitted) {
            size_t wire = 0;
            for (const Event &e : cycle.events)
                wire += eventWireBytes(e);
            size_t overhead = transfers[0].size() - wire;
            size_t expected = t_.batchPacketHeaderBytes +
                              cycle.events.size() * t_.batchMetaBytes;
            expect(overhead == expected, LintCheck::StaleHeaderConstant,
                   -1,
                   DTH_LINT_MSG("Batch packet overhead is %zu B but "
                                "header/meta constants predict %zu",
                                overhead, expected));
            BatchUnpacker unpacker;
            std::vector<Event> back;
            bool parsed = unpacker.unpackInto(transfers[0], back);
            expect(parsed && back.size() == cycle.events.size() &&
                       std::equal(back.begin(), back.end(),
                                  cycle.events.begin()),
                   LintCheck::RoundTripMismatch, -1,
                   "Batch packet did not survive a pack/unpack "
                   "round-trip");
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Mux-tree coverage.
// ---------------------------------------------------------------------------

void
Linter::checkMuxTree()
{
    // Slot table: every fusible type reaches exactly one slot, no slot
    // serves two types, and each slot is wide enough for its payload.
    std::vector<unsigned> slots_of_type(t_.events.size(), 0);
    std::set<unsigned> used_slots;
    for (const MuxSlot &slot : t_.muxSlots) {
        if (slot.typeId < slots_of_type.size())
            ++slots_of_type[slot.typeId];
        expect(used_slots.insert(slot.slot).second,
               LintCheck::MuxSlotAlias, static_cast<int>(slot.typeId),
               DTH_LINT_MSG("mux slot %u claimed by %s and another type",
                            slot.slot, typeName(slot.typeId)));
        if (slot.typeId < t_.events.size()) {
            const EventTypeInfo &row = t_.events[slot.typeId];
            expect(slot.widthBytes >= row.bytesPerEntry,
                   LintCheck::MuxWidthUnderflow,
                   static_cast<int>(slot.typeId),
                   DTH_LINT_MSG("mux slot %u is %zu B wide but %s "
                                "payloads are %u B",
                                slot.slot, slot.widthBytes,
                                typeName(slot.typeId), row.bytesPerEntry));
            expect(slot.lanes >= row.entriesPerCore,
                   LintCheck::MuxLaneUnderflow,
                   static_cast<int>(slot.typeId),
                   DTH_LINT_MSG("mux slot %u has %u lanes but %s emits "
                                "up to %u entries per cycle",
                                slot.slot, slot.lanes,
                                typeName(slot.typeId),
                                row.entriesPerCore));
        }
    }
    for (unsigned i = 0; i < t_.numEventTypes && i < t_.events.size();
         ++i) {
        if (!t_.events[i].fusible)
            continue;
        expect(slots_of_type[i] >= 1, LintCheck::MuxMissingSlot,
               static_cast<int>(i),
               DTH_LINT_MSG("fusible type %s reaches no mux slot",
                            typeName(i)));
        expect(slots_of_type[i] <= 1, LintCheck::MuxDuplicateSlot,
               static_cast<int>(i),
               DTH_LINT_MSG("fusible type %s claims %u mux slots",
                            typeName(i), slots_of_type[i]));
    }

    // The compaction primitive itself: exhaustively prove the hardware
    // selection rule (input i drives output k iff valid[i] and exactly k
    // valid entries precede i) for every valid mask up to 8 lanes — the
    // widest entriesPerCore in the table.
    bool compaction_ok = true;
    for (unsigned lanes = 1; lanes <= 8 && compaction_ok; ++lanes) {
        for (unsigned mask = 0; mask < (1u << lanes); ++mask) {
            std::vector<bool> valid(lanes);
            for (unsigned i = 0; i < lanes; ++i)
                valid[i] = (mask >> i) & 1;
            std::vector<unsigned> prefix = prefixValidCounts(valid);
            std::vector<unsigned> chosen = compactValidIndices(valid);
            unsigned pop = std::popcount(mask);
            if (chosen.size() != pop) {
                compaction_ok = false;
                break;
            }
            unsigned running = 0;
            for (unsigned i = 0; i < lanes; ++i) {
                if (prefix[i] != running) {
                    compaction_ok = false;
                    break;
                }
                if (valid[i]) {
                    // Output `running` must select input i.
                    if (chosen[running] != i) {
                        compaction_ok = false;
                        break;
                    }
                    ++running;
                }
            }
            if (!compaction_ok)
                break;
        }
    }
    expect(compaction_ok, LintCheck::MuxCompactionBroken, -1,
           "mux-tree compaction violates the prefix-counter selection "
           "rule");
}

// ---------------------------------------------------------------------------
// 4. Squash/NDE safety.
// ---------------------------------------------------------------------------

void
Linter::checkSquashSafety()
{
    for (unsigned i = 0; i < t_.numEventTypes && i < t_.events.size();
         ++i) {
        const EventTypeInfo &row = t_.events[i];
        // An NDE must never be fused: fusion erases the per-event order
        // tag the REF synchronizes on.
        if (!expect(!(row.fusible && row.nde), LintCheck::FusibleNde,
                    static_cast<int>(i),
                    DTH_LINT_MSG("NDE type %s is marked fusible: fusion "
                                 "would erase its order tag",
                                 typeName(i)))) {
            continue; // the class cross-check would double-report
        }
        // The SquashUnit's routing must agree with the table flags.
        SquashClass cls = squashClassOf(static_cast<EventType>(i));
        bool fused = cls == SquashClass::CommitFuse ||
                     cls == SquashClass::SnapshotReduce ||
                     cls == SquashClass::AuxFuse;
        expect(row.fusible == fused, LintCheck::SquashClassMismatch,
               static_cast<int>(i),
               DTH_LINT_MSG("type %s: table fusible=%d but the "
                            "SquashUnit %s it",
                            typeName(i), row.fusible ? 1 : 0,
                            fused ? "fuses" : "does not fuse"));
        expect(row.nde == (cls == SquashClass::NdeAhead),
               LintCheck::SquashClassMismatch, static_cast<int>(i),
               DTH_LINT_MSG("type %s: table nde=%d but the SquashUnit "
                            "%s it ahead",
                            typeName(i), row.nde ? 1 : 0,
                            cls == SquashClass::NdeAhead
                                ? "schedules"
                                : "does not schedule"));
    }

    // Every NDE keeps a lossless order-tag path: the tag survives the
    // wire round-trip and the checking order applies the oracle before
    // the REF executes the tagged instruction (ArchEvent is the
    // documented exception: interrupts/exceptions apply after it).
    for (unsigned i = 0; i < t_.numEventTypes && i < t_.events.size();
         ++i) {
        if (!t_.events[i].nde || i >= kNumEventTypes)
            continue;
        auto type = static_cast<EventType>(i);
        u64 max_tag = (u64(1) << kWireOrderTagBits) - 1;
        Event e = probeEvent(type, 0, 0, max_tag, 3);
        ByteWriter w;
        writeEventBody(w, e);
        ByteReader r(w.bytes());
        Event back = readEventBody(r, type, 0);
        bool tag_ok = back.commitSeq == e.commitSeq;
        int prio = checkingPriority(back);
        bool prio_ok = prio == 0 || type == EventType::ArchEvent;
        expect(tag_ok && prio_ok && prio >= 0 && prio <= 3,
               LintCheck::NdeOrderTagPath, static_cast<int>(i),
               DTH_LINT_MSG("NDE type %s loses its order-tag path "
                            "(tag %s, priority %d)",
                            typeName(i), tag_ok ? "kept" : "lost", prio));
    }

    // Fuse-depth arithmetic: a full window's count must fit the digest
    // count field, and its span must fit the u32 wire order tag.
    expect(t_.maxFuseDepth >= 1, LintCheck::FuseDepthOverflow, -1,
           "fuse depth ceiling is zero");
    u64 count_limit = (u64(1) << t_.digestCountBits) - 1;
    expect(t_.maxFuseDepth <= count_limit, LintCheck::FuseDepthOverflow,
           -1,
           DTH_LINT_MSG("fuse depth %u overflows the %u-bit digest "
                        "count field (max %llu)",
                        t_.maxFuseDepth, t_.digestCountBits,
                        static_cast<unsigned long long>(count_limit)));
    u64 tag_limit = t_.wireOrderTagBits >= 64
                        ? ~u64(0)
                        : (u64(1) << t_.wireOrderTagBits) - 1;
    expect(t_.maxFuseDepth <= tag_limit, LintCheck::FuseDepthOverflow, -1,
           DTH_LINT_MSG("a fused window of %u commits cannot be spanned "
                        "by %u-bit order tags",
                        t_.maxFuseDepth, t_.wireOrderTagBits));
}

// ---------------------------------------------------------------------------
// 5. Replay coverage.
// ---------------------------------------------------------------------------

void
Linter::checkReplayCoverage()
{
    std::set<replay::UndoKind> recorded(t_.undoKinds.begin(),
                                        t_.undoKinds.end());
    for (const TypeMutation &mut : t_.refMutations) {
        for (replay::UndoKind domain : mut.domains) {
            expect(recorded.count(domain) != 0,
                   LintCheck::MissingUndoKind,
                   static_cast<int>(mut.typeId),
                   DTH_LINT_MSG("checking %s mutates REF %s state but "
                                "the undo log records no %s entries: "
                                "rollback would corrupt the REF",
                                typeName(mut.typeId),
                                replay::undoKindName(domain),
                                replay::undoKindName(domain)));
        }
    }
}

// ---------------------------------------------------------------------------
// 6. Frame transport: the resilient link's layout and detection power.
//
// Like the wire-format probes, these drive the *real* encoder/decoder
// (link/frame.h) with a probe transfer and compare against the
// snapshot's constants, then exhaustively corrupt the encoded frame —
// every single-bit flip and every truncation length — and require the
// decoder to classify each mutation as a fault. CRC32 detects all
// 1-bit errors by construction; a flip that slips through means the
// trailer is not covering what the layout says it covers.
// ---------------------------------------------------------------------------

void
Linter::checkFrameTransport()
{
    // Snapshot constants vs the build.
    expect(t_.frameHeaderBytes == link::kFrameHeaderBytes &&
               t_.frameTrailerBytes == link::kFrameTrailerBytes &&
               t_.frameMagic == link::kFrameMagic,
           LintCheck::FrameLayoutMismatch, -1,
           DTH_LINT_MSG("snapshot frame layout (%zu B header, %zu B "
                        "trailer, magic %08x) != build (%zu, %zu, %08x)",
                        t_.frameHeaderBytes, t_.frameTrailerBytes,
                        t_.frameMagic, link::kFrameHeaderBytes,
                        link::kFrameTrailerBytes, link::kFrameMagic));

    // Encode probe: measured overhead and the on-wire magic must match
    // the snapshot constants.
    Transfer probe;
    probe.issueCycle = 0x1122334455667788ull;
    for (unsigned i = 0; i < 37; ++i)
        probe.bytes.push_back(static_cast<u8>(0xC3u ^ (i * 29u)));
    std::vector<u8> wire;
    link::FrameEncoder::encodeAs(probe, 11, wire);
    expect(wire.size() ==
               probe.bytes.size() + t_.frameHeaderBytes +
                   t_.frameTrailerBytes,
           LintCheck::FrameLayoutMismatch, -1,
           DTH_LINT_MSG("encoder emits %zu B for a %zu B payload but the "
                        "layout constants predict %zu",
                        wire.size(), probe.bytes.size(),
                        probe.bytes.size() + t_.frameHeaderBytes +
                            t_.frameTrailerBytes));
    if (wire.size() >= 4) {
        u32 magic = 0;
        for (unsigned i = 0; i < 4; ++i)
            magic |= static_cast<u32>(wire[i]) << (8 * i);
        expect(magic == t_.frameMagic, LintCheck::FrameLayoutMismatch, -1,
               DTH_LINT_MSG("frame begins with %08x, snapshot magic is "
                            "%08x",
                            magic, t_.frameMagic));
    }

    // Round trip: the decoder must reproduce the transfer bit-exactly.
    {
        Transfer back;
        u32 seq = 0;
        link::FaultReport rep =
            link::FrameDecoder::decodeFrame(wire, back, &seq);
        expect(rep.ok() && seq == 11 && back.bytes == probe.bytes &&
                   back.issueCycle == probe.issueCycle,
               LintCheck::FrameRoundTrip, -1,
               DTH_LINT_MSG("frame did not survive an encode/decode "
                            "round-trip (%s)",
                            rep.describe().c_str()));
    }

    // Corruption probes: every single-bit flip and every truncation of
    // the probe frame must be classified as a fault — silently accepting
    // a mutated frame would defeat the whole recovery protocol.
    {
        bool all_flips_caught = true;
        std::vector<u8> mutated = wire;
        for (size_t bit = 0; bit < wire.size() * 8 && all_flips_caught;
             ++bit) {
            mutated[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
            Transfer back;
            link::FaultReport rep =
                link::FrameDecoder::decodeFrame(mutated, back, nullptr);
            if (rep.ok())
                all_flips_caught = false;
            mutated[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        }
        expect(all_flips_caught, LintCheck::FrameCorruptionUndetected, -1,
               "a single-bit flip passed the frame decoder undetected");

        bool all_truncations_caught = true;
        for (size_t len = 0; len < wire.size(); ++len) {
            Transfer back;
            link::FaultReport rep = link::FrameDecoder::decodeFrame(
                std::span<const u8>(wire.data(), len), back, nullptr);
            if (rep.ok()) {
                all_truncations_caught = false;
                break;
            }
        }
        expect(all_truncations_caught,
               LintCheck::FrameCorruptionUndetected, -1,
               "a truncated frame passed the frame decoder undetected");
    }

    // Retransmit-window bounds: the window must hold at least the one
    // in-flight frame of the stop-and-wait recovery protocol, and the
    // frame format's payload bound must cover the packet budget (else a
    // legitimate full packet is indistinguishable from a corrupt length
    // field).
    expect(t_.retxWindowFrames >= 1, LintCheck::RetxWindowBounds, -1,
           DTH_LINT_MSG("retransmit window of %zu frames cannot hold the "
                        "in-flight frame",
                        t_.retxWindowFrames));
    expect(t_.maxFramePayloadBytes >= t_.packetBytes,
           LintCheck::RetxWindowBounds, -1,
           DTH_LINT_MSG("frame payload bound (%zu B) is below the packet "
                        "budget (%u B): full packets would be rejected "
                        "as corrupt",
                        t_.maxFramePayloadBytes, t_.packetBytes));
}

} // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const char *
lintCheckName(LintCheck check)
{
    switch (check) {
      case LintCheck::IdDensity: return "id-density";
      case LintCheck::DuplicateName: return "duplicate-name";
      case LintCheck::EmptyName: return "empty-name";
      case LintCheck::BadCategory: return "bad-category";
      case LintCheck::BadEntriesPerCore: return "bad-entries-per-core";
      case LintCheck::VariableLengthMonitor:
        return "variable-length-monitor";
      case LintCheck::MisalignedPayload: return "misaligned-payload";
      case LintCheck::LayoutMismatch: return "layout-mismatch";
      case LintCheck::WireTypeCount: return "wire-type-count";
      case LintCheck::PacketBudget: return "packet-budget";
      case LintCheck::StaleHeaderConstant: return "stale-header-constant";
      case LintCheck::RoundTripMismatch: return "round-trip-mismatch";
      case LintCheck::MuxMissingSlot: return "mux-missing-slot";
      case LintCheck::MuxDuplicateSlot: return "mux-duplicate-slot";
      case LintCheck::MuxSlotAlias: return "mux-slot-alias";
      case LintCheck::MuxWidthUnderflow: return "mux-width-underflow";
      case LintCheck::MuxLaneUnderflow: return "mux-lane-underflow";
      case LintCheck::MuxCompactionBroken: return "mux-compaction-broken";
      case LintCheck::FusibleNde: return "fusible-nde";
      case LintCheck::SquashClassMismatch: return "squash-class-mismatch";
      case LintCheck::NdeOrderTagPath: return "nde-order-tag-path";
      case LintCheck::FuseDepthOverflow: return "fuse-depth-overflow";
      case LintCheck::MissingUndoKind: return "missing-undo-kind";
      case LintCheck::FrameLayoutMismatch: return "frame-layout-mismatch";
      case LintCheck::FrameRoundTrip: return "frame-round-trip";
      case LintCheck::FrameCorruptionUndetected:
        return "frame-corruption-undetected";
      case LintCheck::RetxWindowBounds: return "retx-window-bounds";
    }
    return "?";
}

bool
LintReport::has(LintCheck check) const
{
    return count(check) != 0;
}

unsigned
LintReport::count(LintCheck check) const
{
    unsigned n = 0;
    for (const LintFinding &f : findings)
        if (f.check == check)
            ++n;
    return n;
}

std::string
LintReport::summary() const
{
    if (passed())
        return formatv("protocol lint: %u checks, no violations",
                       checksRun);
    return formatv("protocol lint: %u checks, %zu violation%s", checksRun,
                   findings.size(), findings.size() == 1 ? "" : "s");
}

std::vector<MuxSlot>
buildMuxSlots(const std::vector<EventTypeInfo> &events,
              unsigned num_event_types)
{
    std::vector<MuxSlot> slots;
    slots.reserve(num_event_types);
    for (unsigned i = 0; i < num_event_types && i < events.size(); ++i) {
        slots.push_back(MuxSlot{i, i, events[i].entriesPerCore,
                                events[i].bytesPerEntry});
    }
    return slots;
}

ProtocolTables
currentTables()
{
    ProtocolTables t;
    t.events.assign(kEventTable.begin(), kEventTable.end());
    t.numEventTypes = kNumEventTypes;
    t.numWireTypes = kNumWireTypes;
    t.eventWireHeaderBytes = kEventWireHeaderBytes;
    t.wireLengthPrefixBytes = kWireLengthPrefixBytes;
    t.batchPacketHeaderBytes = kBatchPacketHeaderBytes;
    t.batchMetaBytes = kBatchMetaBytes;
    t.wireOrderTagBits = kWireOrderTagBits;
    t.packetBytes = 4096; // BatchPacker's default transmission budget
    t.frameMagic = link::kFrameMagic;
    t.frameHeaderBytes = link::kFrameHeaderBytes;
    t.frameTrailerBytes = link::kFrameTrailerBytes;
    t.maxFramePayloadBytes = link::kMaxFramePayloadBytes;
    t.retxWindowFrames = link::kDefaultRetxWindowFrames;
    t.maxFuseDepth = kMaxFuseDepth;
    t.digestCountBits = FusedDigestView::kCountBits;
    t.muxSlots = buildMuxSlots(t.events, t.numEventTypes);

    // The analyzer's checking model: REF state domains each event type
    // mutates when the checker processes it. Stepping (and therefore
    // every domain) is attributed to the commit types that drive it;
    // NDE oracles are attributed to the state their synchronization
    // touches when the REF consumes them.
    using replay::UndoKind;
    auto all = std::vector<UndoKind>{
        UndoKind::XReg, UndoKind::FReg, UndoKind::VReg, UndoKind::Csr,
        UndoKind::Mem,  UndoKind::Pc,   UndoKind::Reservation};
    t.refMutations = {
        {static_cast<unsigned>(EventType::InstrCommit), all},
        {static_cast<unsigned>(EventType::FusedCommit), all},
        {static_cast<unsigned>(EventType::ArchEvent),
         {UndoKind::Pc, UndoKind::Csr}},
        {static_cast<unsigned>(EventType::LrScEvent),
         {UndoKind::Reservation}},
        {static_cast<unsigned>(EventType::MmioEvent),
         {UndoKind::XReg, UndoKind::Mem}},
    };

    auto kinds = replay::UndoLog::recordedKinds();
    t.undoKinds.assign(kinds.begin(), kinds.end());
    return t;
}

LintReport
runProtocolLint(const ProtocolTables &tables)
{
    return Linter(tables).run();
}

} // namespace dth::analysis
