/**
 * @file
 * Protocol-invariant static analyzer (the dth_lint core). It captures
 * every hand-maintained metadata table — the event-type table, the wire
 * and Batch header constants, the mux-tree slot assignment, the Squash
 * fusibility/NDE classification and the Replay undo-log coverage — into
 * one ProtocolTables snapshot and proves a catalogue of invariants over
 * it *before any simulation runs*:
 *
 *  1. Event-type table consistency: ids dense, names unique, sizes match
 *     the typed payload views, variable length only for wire
 *     pseudo-types, categories/components total.
 *  2. Wire-format soundness: every event (+meta) fits the packet budget
 *     and the header constants agree with the actual encoders, verified
 *     by encode-probe round-trips through writeEventBody/BatchPacker.
 *  3. Mux-tree coverage: every fusible type reaches exactly one slot, no
 *     two types alias a slot, slot widths cover the payload, and the
 *     compaction primitive is exhaustively correct up to 8 lanes.
 *  4. Squash/NDE safety: no fusible NDE, the SquashUnit's classification
 *     matches the table flags, NDEs keep a lossless order-tag path, and
 *     the fuse depth fits both the digest count field and the u32 wire
 *     order tag.
 *  5. Replay coverage: every event type whose checking mutates REF state
 *     maps onto undo-log entry kinds the compensation log records.
 *  6. Frame transport: the resilient link's frame layout constants match
 *     the real encoder, frames round-trip bit-exactly, every single-bit
 *     flip and every truncation is caught by the magic/length/CRC
 *     checks, and the retransmit-window bounds cover the packet budget.
 *
 * Tests seed violations into a mutated ProtocolTables copy and assert
 * the analyzer reports exactly that class; `tools/dth_lint.cc` runs the
 * same catalogue over the in-tree tables as a blocking CI step.
 */

#ifndef DTH_ANALYSIS_PROTOCOL_LINT_H_
#define DTH_ANALYSIS_PROTOCOL_LINT_H_

#include <string>
#include <vector>

#include "event/event_type.h"
#include "replay/undo_log.h"

namespace dth::analysis {

/** Violation classes the analyzer can report. */
enum class LintCheck : u8 {
    // 1. Event-type table consistency.
    IdDensity,            //!< row index != stable type id / bad row count
    DuplicateName,        //!< two types share a wire name
    EmptyName,            //!< missing name or component string
    BadCategory,          //!< category outside the paper's five
    BadEntriesPerCore,    //!< zero entries per core per cycle
    VariableLengthMonitor, //!< monitor type without a fixed size
    MisalignedPayload,    //!< fixed size not u64-word aligned
    LayoutMismatch,       //!< table size != typed view's encoded size
    // 2. Wire-format soundness.
    WireTypeCount,        //!< kNumWireTypes doesn't cover the table
    PacketBudget,         //!< header+meta+event exceeds the packet bytes
    StaleHeaderConstant,  //!< header constant != what the encoder emits
    RoundTripMismatch,    //!< readEventBody(writeEventBody(e)) != e
    // 3. Mux-tree coverage.
    MuxMissingSlot,       //!< fusible type reaches no slot
    MuxDuplicateSlot,     //!< one type claims two slots
    MuxSlotAlias,         //!< two types claim the same slot
    MuxWidthUnderflow,    //!< slot narrower than the payload it carries
    MuxLaneUnderflow,     //!< fewer mux lanes than entries per cycle
    MuxCompactionBroken,  //!< prefix-counter selection rule violated
    // 4. Squash/NDE safety.
    FusibleNde,           //!< type flagged both fusible and NDE
    SquashClassMismatch,  //!< SquashUnit path disagrees with table flags
    NdeOrderTagPath,      //!< NDE loses its order tag on the wire
    FuseDepthOverflow,    //!< fuse depth overflows count/order-tag width
    // 5. Replay coverage.
    MissingUndoKind,      //!< mutating type without an undo-log kind
    // 6. Frame transport (resilient link).
    FrameLayoutMismatch,  //!< frame constants != what the encoder emits
    FrameRoundTrip,       //!< decode(encode(t)) does not reproduce t
    FrameCorruptionUndetected, //!< a bit flip/truncation passes the CRC
    RetxWindowBounds,     //!< retransmit window/payload bounds broken
};

const char *lintCheckName(LintCheck check);

/** One reported violation. */
struct LintFinding
{
    LintCheck check;
    /** Wire type id the finding is about, or -1 for table-wide. */
    int typeId;
    std::string message;
};

/** Result of one analyzer run. */
struct LintReport
{
    std::vector<LintFinding> findings;
    /** Individual invariant evaluations performed. */
    unsigned checksRun = 0;

    bool passed() const { return findings.empty(); }
    bool has(LintCheck check) const;
    unsigned count(LintCheck check) const;
    std::string summary() const;
};

/** One slot of the Batch mux-tree crossbar (type-level compaction). */
struct MuxSlot
{
    unsigned slot;      //!< slot index in the crossbar
    unsigned typeId;    //!< event type the slot serves
    unsigned lanes;     //!< mux-tree inputs (entries per core per cycle)
    size_t widthBytes;  //!< slot width; must cover the payload
};

/** REF state domains checking an event type may mutate. */
struct TypeMutation
{
    unsigned typeId;
    std::vector<replay::UndoKind> domains;
};

/**
 * Snapshot of every protocol metadata table. `currentTables()` captures
 * the in-tree definitions; tests mutate copies to seed violations.
 */
struct ProtocolTables
{
    /** One row per wire type; index must equal the stable id. */
    std::vector<EventTypeInfo> events;
    unsigned numEventTypes = 0;
    unsigned numWireTypes = 0;
    // Wire/Batch layout constants (pack/wire.h, pack/packer.h).
    size_t eventWireHeaderBytes = 0;
    size_t wireLengthPrefixBytes = 0;
    size_t batchPacketHeaderBytes = 0;
    size_t batchMetaBytes = 0;
    unsigned wireOrderTagBits = 0;
    /** Transmission packet budget the wire costs must fit. */
    unsigned packetBytes = 0;
    /** Squash fusion-depth ceiling (squash.h kMaxFuseDepth). */
    unsigned maxFuseDepth = 0;
    /** Width of the FusedDigest count field in bits. */
    unsigned digestCountBits = 0;
    // Resilient-link frame layout and recovery bounds (link/frame.h,
    // link/channel.h).
    u32 frameMagic = 0;
    size_t frameHeaderBytes = 0;
    size_t frameTrailerBytes = 0;
    size_t maxFramePayloadBytes = 0;
    size_t retxWindowFrames = 0;
    /** Mux-tree slot assignment (type-level compaction crossbar). */
    std::vector<MuxSlot> muxSlots;
    /** Per-type REF mutation domains (the analyzer's checking model). */
    std::vector<TypeMutation> refMutations;
    /** Undo-log kinds the compensation log records. */
    std::vector<replay::UndoKind> undoKinds;
};

/**
 * Canonical mux-slot derivation: one slot per monitor type, slot index =
 * stable type id, lanes = entriesPerCore, width = serialized size.
 */
std::vector<MuxSlot> buildMuxSlots(const std::vector<EventTypeInfo> &events,
                                   unsigned num_event_types);

/** Capture the in-tree metadata tables. */
ProtocolTables currentTables();

/** Run the full invariant catalogue over @p tables. */
LintReport runProtocolLint(const ProtocolTables &tables);

} // namespace dth::analysis

#endif // DTH_ANALYSIS_PROTOCOL_LINT_H_
