#include "area/area.h"

#include <cmath>

namespace dth::area {

unsigned
probesPerCore(const dut::DutConfig &config)
{
    return 4 * config.enabledEventTypes();
}

double
interfaceBytesPerCore(const dut::DutConfig &config)
{
    double bytes = 0;
    for (unsigned t = 0; t < kNumEventTypes; ++t) {
        if (!config.eventEnabled[t])
            continue;
        const EventTypeInfo &info = eventInfo(t);
        // Commit-slot-indexed monitors shrink with the commit width.
        double entries = info.entriesPerCore;
        if (info.entriesPerCore > 1)
            entries = std::ceil(entries * config.commitWidth / 6.0);
        bytes += info.bytesPerEntry * entries;
    }
    return bytes;
}

AreaEstimate
estimateArea(const dut::DutConfig &config, bool with_batch)
{
    // Calibrated constants (gates).
    constexpr double kGatesPerProbe = 11000;
    constexpr double kBufferGatesPerByte = 30; // double-buffered regs
    constexpr double kSquashPerCore = 350e3;
    constexpr double kReplaySramGatesPerByte = 5.2;
    constexpr double kReplayBufferBytes = 256 * 1024;
    constexpr double kBatchGatesPerInterfaceBit = 105;

    AreaEstimate a;
    a.dutGatesM = config.gatesMillions;
    double iface = interfaceBytesPerCore(config);
    double cores = config.cores;
    a.probesM = cores * probesPerCore(config) * kGatesPerProbe / 1e6;
    a.eventBuffersM = cores * iface * kBufferGatesPerByte / 1e6;
    a.squashUnitM = cores * kSquashPerCore / 1e6;
    a.replayBufferM =
        cores * kReplayBufferBytes * kReplaySramGatesPerByte / 1e6;
    if (with_batch)
        a.batchPackerM =
            cores * iface * 8 * kBatchGatesPerInterfaceBit / 1e6;
    return a;
}

} // namespace dth::area
