/**
 * @file
 * Analytical gate-count model for the DiffTest-H hardware units
 * (paper Fig. 15). The DUT's own gate count comes from its
 * configuration (Table 4); the verification logic is decomposed into
 * monitor probes, event buffers, the Squash unit, the Replay buffer
 * SRAM, and — dominating when enabled — the Batch packer's wide
 * mux/offset network, whose size scales with the packed interface
 * width. Constants are calibrated to the paper's ~6% (without Batch)
 * and ~25% (with Batch) overheads on XiangShan.
 */

#ifndef DTH_AREA_AREA_H_
#define DTH_AREA_AREA_H_

#include "dut/config.h"

namespace dth::area {

/** Breakdown of DiffTest-H gate counts (million gates). */
struct AreaEstimate
{
    double dutGatesM = 0;
    double probesM = 0;
    double eventBuffersM = 0;
    double squashUnitM = 0;
    double replayBufferM = 0;
    double batchPackerM = 0; //!< zero when Batch is disabled

    double
    difftestGatesM() const
    {
        return probesM + eventBuffersM + squashUnitM + replayBufferM +
               batchPackerM;
    }

    double
    overheadFraction() const
    {
        return dutGatesM > 0 ? difftestGatesM() / dutGatesM : 0;
    }

    double totalM() const { return dutGatesM + difftestGatesM(); }
};

/** Monitor probes instantiated per core (4 per covered event type;
 *  XiangShan's 32 types give the paper's 128 probes per core). */
unsigned probesPerCore(const dut::DutConfig &config);

/** Width-scaled monitored interface bytes per core. */
double interfaceBytesPerCore(const dut::DutConfig &config);

/** Estimate the area of DiffTest-H instrumentation on @p config. */
AreaEstimate estimateArea(const dut::DutConfig &config, bool with_batch);

} // namespace dth::area

#endif // DTH_AREA_AREA_H_
