#include "checker/checker.h"

#include <algorithm>
#include <cstdio>

#include "common/bits.h"
#include "common/logging.h"
#include "squash/squash.h"

namespace dth::checker {

using riscv::StepResult;

std::string
MismatchReport::describe() const
{
    if (!valid)
        return "no mismatch";
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "[core %u] %s mismatch at instruction #%llu (pc 0x%llx): "
        "%s expected 0x%llx, got 0x%llx -> component: %s%s",
        core, eventInfo(eventType).name, (unsigned long long)seq,
        (unsigned long long)refPc, field.c_str(),
        (unsigned long long)expected, (unsigned long long)actual,
        component.c_str(),
        fused ? " (fused window; run Replay for instruction detail)"
              : (replayed ? " (localized by Replay)" : ""));
    return buf;
}

CoreChecker::CoreChecker(unsigned core_id, const workload::Program &program,
                         bool mmio_sync)
    : coreId_(core_id), mmioSync_(mmio_sync)
{
    // The REF has RAM but no devices: device values come from oracles.
    bus_ = std::make_unique<riscv::Bus>();
    riscv::CoreConfig cc;
    cc.resetPc = program.base;
    cc.autoInterrupts = false;
    cc.hartId = core_id;
    ref_ = std::make_unique<riscv::Core>(*bus_, cc);
    bus_->ram().load(program.base, program.image.data(),
                     program.image.size());
    undo_ = std::make_unique<replay::UndoLog>(*ref_);
    ref_->setObserver(undo_.get());

    stat_.mismatches = counters_.sum("checker.mismatches");
    stat_.events = counters_.sum("checker.events");
    stat_.mmioFills = counters_.sum("checker.mmio_fills");
    stat_.mmioStores = counters_.sum("checker.mmio_stores");
    stat_.scOutcomes = counters_.sum("checker.sc_outcomes");
    stat_.uartIo = counters_.sum("checker.uart_io");
    stat_.informational = counters_.sum("checker.informational");
    stat_.skippedCommits = counters_.sum("checker.skipped_commits");
    stat_.commits = counters_.sum("checker.commits");
    stat_.fusedCommits = counters_.sum("checker.fused_commits");
    stat_.fusedInstrs = counters_.sum("checker.fused_instrs");
    stat_.fusedDigests = counters_.sum("checker.fused_digests");
    stat_.traps = counters_.sum("checker.traps");
    stat_.interrupts = counters_.sum("checker.interrupts");
    stat_.exceptions = counters_.sum("checker.exceptions");
    stat_.loads = counters_.sum("checker.loads");
    stat_.stores = counters_.sum("checker.stores");
    stat_.atomics = counters_.sum("checker.atomics");
    stat_.refills = counters_.sum("checker.refills");
    stat_.sbuffer = counters_.sum("checker.sbuffer");
    stat_.tlb = counters_.sum("checker.tlb");
    stat_.regstates = counters_.sum("checker.regstates");
    stat_.csrStates = counters_.sum("checker.csr_states");
    stat_.replays = counters_.sum("checker.replays");
}

bool
CoreChecker::fail(const Event &event, const char *field, u64 expected,
                  u64 actual)
{
    failed_ = true;
    report_.valid = true;
    report_.core = coreId_;
    report_.seq = event.commitSeq;
    report_.refPc = lastStep_ ? lastStep_->pc : ref_->pc();
    report_.eventType = event.type;
    report_.field = field;
    report_.expected = expected;
    report_.actual = actual;
    report_.component = event.info().component;
    report_.fused = false;
    report_.replayed = replayMode_;
    counters_.add(stat_.mismatches);
    return false;
}

bool
CoreChecker::failFused(const Event &event, const char *field, u64 expected,
                       u64 actual, u64 first_seq, u64 last_seq)
{
    fail(event, field, expected, actual);
    report_.fused = true;
    report_.replayed = false;
    report_.windowFirstSeq = first_seq;
    report_.windowLastSeq = last_seq;
    return false;
}

StepResult
CoreChecker::stepOnce()
{
    StepResult r = ref_->step();
    if (r.retired) {
        ++instrsStepped_;
        foldStepDigests(r);
        lastStep_ = r;
    }
    return r;
}

void
CoreChecker::foldStepDigests(const StepResult &r)
{
    commitWindowDigest_ ^= commitDigestTerm(r.pc, r.instr, r.rdVal);
    ++commitWindowCount_;
    auto fold = [&](EventType t, u64 term) {
        auxDigest_[static_cast<unsigned>(t)] ^= term;
        ++auxCount_[static_cast<unsigned>(t)];
    };
    for (unsigned i = 0; i < r.memCount; ++i) {
        const riscv::MemAccessInfo &m = r.mem[i];
        if (!m.valid || m.mmio)
            continue;
        if (m.store) {
            fold(EventType::StoreEvent,
                 storeDigestTerm(m.addr, m.data,
                                 byteMask(1u << m.sizeLog2)));
        } else if (!m.atomic) {
            fold(EventType::LoadEvent,
                 loadDigestTerm(m.addr, m.data, r.seqNo));
        }
    }
    if (r.isBranch) {
        fold(EventType::BranchEvent,
             branchDigestTerm(r.pc, r.branchTaken ? 1 : 0, r.nextPc));
    }
    if (r.vecWen) {
        fold(EventType::VecWriteback,
             vecDigestTerm(r.vrd, r.vecVal[0], r.vecVal[1]));
    }
    if (r.isVecConfig) {
        fold(EventType::VtypeEvent,
             branchDigestTerm(ref_->csrs().vtype, ref_->csrs().vl,
                              r.seqNo));
    }
}

bool
CoreChecker::ensureSteppedTo(u64 seq, const Event &context)
{
    while (ref_->seqNo() < seq) {
        if (ref_->halted())
            return fail(context, "ref-halted-early", seq, ref_->seqNo());
        StepResult r = stepOnce();
        if (r.interrupt) {
            return fail(context, "unexpected-ref-interrupt", 0, r.cause);
        }
        if (!r.retired && !r.halted) {
            return fail(context, "ref-stuck", seq, ref_->seqNo());
        }
    }
    return true;
}

bool
CoreChecker::processEvent(const Event &event)
{
    if (failed_)
        return false;
    ++eventsChecked_;
    counters_.add(stat_.events);

    switch (event.type) {
      case EventType::InstrCommit: return checkInstrCommit(event);
      case EventType::FusedCommit: return checkFusedCommit(event);
      case EventType::FusedDigest: return checkFusedDigest(event);
      case EventType::Trap: return checkTrap(event);
      case EventType::ArchEvent: return checkArchEvent(event);
      case EventType::LoadEvent: return checkLoad(event);
      case EventType::StoreEvent: return checkStore(event);
      case EventType::AtomicEvent: return checkAtomic(event);
      case EventType::L1DRefill:
      case EventType::L1IRefill:
      case EventType::L2Refill: return checkRefill(event);
      case EventType::SbufferEvent: return checkSbuffer(event);
      case EventType::L1TlbEvent:
      case EventType::L2TlbEvent: return checkTlb(event);
      case EventType::ArchIntRegState: return checkIntRegState(event);
      case EventType::ArchFpRegState: return checkFpRegState(event);
      case EventType::CsrState: return checkCsrState(event);
      case EventType::FpCsrState: return checkFpCsr(event);
      case EventType::ArchVecRegState: return checkVecRegState(event);
      case EventType::VecCsrState: return checkVecCsr(event);
      case EventType::HCsrState:
      case EventType::DebugCsrState:
      case EventType::TriggerCsrState: return checkZeroSnapshot(event);

      case EventType::MmioEvent: {
        MmioView v(event);
        if (v.isLoad()) {
            ref_->pushMmioFill(v.addr(), v.data());
            counters_.add(stat_.mmioFills);
        } else {
            counters_.add(stat_.mmioStores);
        }
        return true;
      }
      case EventType::LrScEvent: {
        LrScView v(event);
        ref_->pushScOutcome(v.success() != 0);
        counters_.add(stat_.scOutcomes);
        return true;
      }

      case EventType::BranchEvent: {
        if (!ensureSteppedTo(event.commitSeq, event))
            return false;
        PayloadView v(event);
        if (lastStep_ && lastStep_->seqNo == event.commitSeq &&
            lastStep_->isBranch) {
            u64 taken = lastStep_->branchTaken ? 1 : 0;
            if (v.word(8) != taken)
                return fail(event, "branch-taken", taken, v.word(8));
            if (v.word(16) != lastStep_->nextPc)
                return fail(event, "branch-target", lastStep_->nextPc,
                            v.word(16));
        }
        return true;
      }
      case EventType::VecWriteback: {
        if (!ensureSteppedTo(event.commitSeq, event))
            return false;
        PayloadView v(event);
        if (lastStep_ && lastStep_->seqNo == event.commitSeq &&
            lastStep_->vecWen) {
            if (v.word(8) != lastStep_->vecVal[0])
                return fail(event, "vec-lane0", lastStep_->vecVal[0],
                            v.word(8));
            if (v.word(16) != lastStep_->vecVal[1])
                return fail(event, "vec-lane1", lastStep_->vecVal[1],
                            v.word(16));
        }
        return true;
      }
      case EventType::VtypeEvent: {
        if (!ensureSteppedTo(event.commitSeq, event))
            return false;
        VtypeView v(event);
        if (v.vl() != ref_->csrs().vl)
            return fail(event, "vl", ref_->csrs().vl, v.vl());
        if (v.vtype() != ref_->csrs().vtype)
            return fail(event, "vtype", ref_->csrs().vtype, v.vtype());
        return true;
      }

      // Informational / structural-only events.
      case EventType::UartIoEvent:
        counters_.add(stat_.uartIo);
        return true;
      case EventType::AiaEvent:
      case EventType::RunaheadEvent:
      case EventType::GuestPtwEvent:
      case EventType::HldStEvent:
      case EventType::DebugMode:
        counters_.add(stat_.informational);
        return true;

      case EventType::DiffState:
        dth_panic("DiffState must be completed before checking");
    }
    return true;
}

bool
CoreChecker::checkInstrCommit(const Event &event)
{
    InstrCommitView v(event);
    u64 seq = v.seqNo();
    if (!ensureSteppedTo(seq - 1, event))
        return false;
    if (ref_->seqNo() < seq) {
        StepResult r = stepOnce();
        if (r.interrupt)
            return fail(event, "unexpected-ref-interrupt", 0, r.cause);
        if (!r.retired)
            return fail(event, "ref-did-not-retire", seq, ref_->seqNo());
    }
    dth_assert(lastStep_ && lastStep_->seqNo == seq,
               "commit/step misalignment: event %llu ref %llu",
               (unsigned long long)seq,
               (unsigned long long)ref_->seqNo());
    const StepResult &r = *lastStep_;
    if (v.pc() != r.pc)
        return fail(event, "pc", r.pc, v.pc());
    if (v.instr() != r.instr)
        return fail(event, "instr", r.instr, v.instr());
    if (v.skip()) {
        // DiffTest skip semantics: copy the DUT result into the REF.
        if (v.rfWen())
            ref_->setXReg(v.rd(), v.rdVal());
        counters_.add(stat_.skippedCommits);
        return true;
    }
    if (v.nextPc() != r.nextPc)
        return fail(event, "next-pc", r.nextPc, v.nextPc());
    if (v.rfWen() != (r.rfWen ? 1 : 0))
        return fail(event, "rf-wen", r.rfWen, v.rfWen());
    if (v.rfWen()) {
        if (v.rd() != r.rd)
            return fail(event, "rd", r.rd, v.rd());
        if (v.rdVal() != r.rdVal)
            return fail(event, "rd-value", r.rdVal, v.rdVal());
    }
    if (v.fpWen() && v.frdVal() != r.frdVal)
        return fail(event, "frd-value", r.frdVal, v.frdVal());
    counters_.add(stat_.commits);
    return true;
}

bool
CoreChecker::checkFusedCommit(const Event &event)
{
    FusedCommitView v(event);
    u64 first = v.firstSeq();
    u64 last = v.lastSeq();
    if (!ensureSteppedTo(last, event))
        return false;
    dth_assert(lastStep_, "fused commit before any step");
    if (commitWindowCount_ != v.count()) {
        return failFused(event, "fused-count", commitWindowCount_,
                         v.count(), first, last);
    }
    if (lastStep_->pc != v.lastPc()) {
        return failFused(event, "fused-last-pc", lastStep_->pc, v.lastPc(),
                         first, last);
    }
    if (lastStep_->nextPc != v.nextPc()) {
        return failFused(event, "fused-next-pc", lastStep_->nextPc,
                         v.nextPc(), first, last);
    }
    if (commitWindowDigest_ != v.digest()) {
        return failFused(event, "fused-digest", commitWindowDigest_,
                         v.digest(), first, last);
    }
    // Window verified: advance the compensation-log checkpoint (the log
    // retains two windows; see lastMarkSeq()).
    commitWindowDigest_ = 0;
    commitWindowCount_ = 0;
    undo_->mark();
    markSeqPrev_ = markSeq_;
    markSeq_ = last;
    counters_.add(stat_.fusedCommits);
    counters_.add(stat_.fusedInstrs, v.count());
    return true;
}

bool
CoreChecker::checkFusedDigest(const Event &event)
{
    FusedDigestView v(event);
    if (!ensureSteppedTo(v.lastSeq(), event))
        return false;
    unsigned t = v.baseType();
    dth_assert(t < kNumEventTypes, "bad digest base type %u", t);
    if (auxCount_[t] != v.count()) {
        return failFused(event, "digest-count", auxCount_[t], v.count(),
                         v.firstSeq(), v.lastSeq());
    }
    if (auxDigest_[t] != v.digest()) {
        Event base = event;
        base.type = static_cast<EventType>(t); // report the base component
        failFused(base, "window-digest", auxDigest_[t], v.digest(),
                  v.firstSeq(), v.lastSeq());
        return false;
    }
    auxDigest_[t] = 0;
    auxCount_[t] = 0;
    counters_.add(stat_.fusedDigests);
    return true;
}

bool
CoreChecker::checkTrap(const Event &event)
{
    TrapView v(event);
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    if (!ref_->halted())
        return fail(event, "trap-without-ref-halt", 1, 0);
    if (v.code() != ref_->haltCode())
        return fail(event, "trap-code", ref_->haltCode(), v.code());
    sawTrap_ = true;
    trapCode_ = v.code();
    counters_.add(stat_.traps);
    return true;
}

bool
CoreChecker::checkArchEvent(const Event &event)
{
    ArchEventView v(event);
    if (v.isInterrupt()) {
        // NDE synchronization: the DUT took this interrupt after
        // instruction seqNo(); force the REF to do the same.
        if (!ensureSteppedTo(v.seqNo(), event))
            return false;
        ref_->forceInterrupt(v.cause());
        StepResult r = ref_->step();
        if (!r.interrupt)
            return fail(event, "ref-missed-interrupt", v.cause(), 0);
        if (r.cause != v.cause())
            return fail(event, "interrupt-cause", r.cause, v.cause());
        counters_.add(stat_.interrupts);
        return true;
    }
    if (v.isException()) {
        if (!ensureSteppedTo(v.seqNo(), event))
            return false;
        if (!lastStep_ || lastStep_->seqNo != v.seqNo() ||
            !lastStep_->exception) {
            return fail(event, "ref-missed-exception", v.cause(), 0);
        }
        if (lastStep_->cause != v.cause())
            return fail(event, "exception-cause", lastStep_->cause,
                        v.cause());
        counters_.add(stat_.exceptions);
        return true;
    }
    return true;
}

bool
CoreChecker::checkLoad(const Event &event)
{
    LoadView v(event);
    if (!ensureSteppedTo(v.seqNo(), event))
        return false;
    unsigned nbytes = 1u << v.size();
    u64 ref_val = bus_->ram().read(v.paddr(), nbytes);
    u64 got = v.data() & byteMask(nbytes);
    if ((ref_val & byteMask(nbytes)) != got)
        return fail(event, "load-data", ref_val & byteMask(nbytes), got);
    counters_.add(stat_.loads);
    return true;
}

bool
CoreChecker::checkStore(const Event &event)
{
    StoreView v(event);
    if (!ensureSteppedTo(v.seqNo(), event))
        return false;
    unsigned nbytes = 1u << v.size();
    u64 ref_val = bus_->ram().read(v.addr(), nbytes) & byteMask(nbytes);
    if (ref_val != (v.data() & byteMask(nbytes)))
        return fail(event, "store-data", ref_val, v.data());
    counters_.add(stat_.stores);
    return true;
}

bool
CoreChecker::checkAtomic(const Event &event)
{
    AtomicView v(event);
    if (!ensureSteppedTo(v.seqNo(), event))
        return false;
    if (lastStep_ && lastStep_->seqNo == v.seqNo() &&
        lastStep_->mem[0].valid) {
        if (v.loadedValue() != lastStep_->mem[0].data)
            return fail(event, "amo-loaded-value", lastStep_->mem[0].data,
                        v.loadedValue());
    }
    counters_.add(stat_.atomics);
    return true;
}

bool
CoreChecker::checkRefill(const Event &event)
{
    RefillView v(event);
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    for (unsigned w = 0; w < 8; ++w) {
        u64 ref_word = bus_->ram().read(v.addr() + 8 * w, 8);
        if (v.lineWord(w) != ref_word)
            return fail(event, "refill-line-data", ref_word,
                        v.lineWord(w));
    }
    counters_.add(stat_.refills);
    return true;
}

bool
CoreChecker::checkSbuffer(const Event &event)
{
    SbufferView v(event);
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    for (unsigned w = 0; w < 8; ++w) {
        u64 ref_word = bus_->ram().read(v.addr() + 8 * w, 8);
        if (v.dataWord(w) != ref_word)
            return fail(event, "sbuffer-line-data", ref_word,
                        v.dataWord(w));
    }
    counters_.add(stat_.sbuffer);
    return true;
}

bool
CoreChecker::checkTlb(const Event &event)
{
    TlbView v(event);
    // Bare-metal identity mapping: a fill whose ppn differs from its vpn
    // indicates a TLB bug.
    if (v.ppn() != v.vpn())
        return fail(event, "tlb-ppn", v.vpn(), v.ppn());
    counters_.add(stat_.tlb);
    return true;
}

bool
CoreChecker::checkIntRegState(const Event &event)
{
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    RegFileView v(event);
    for (unsigned i = 0; i < 32; ++i) {
        if (v.reg(i) != ref_->xreg(i))
            return fail(event, ("x" + std::to_string(i)).c_str(),
                        ref_->xreg(i), v.reg(i));
    }
    counters_.add(stat_.regstates);
    return true;
}

bool
CoreChecker::checkFpRegState(const Event &event)
{
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    RegFileView v(event);
    for (unsigned i = 0; i < 32; ++i) {
        if (v.reg(i) != ref_->freg(i))
            return fail(event, ("f" + std::to_string(i)).c_str(),
                        ref_->freg(i), v.reg(i));
    }
    return true;
}

bool
CoreChecker::checkCsrState(const Event &event)
{
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    CsrStateView v(event);
    const riscv::CsrFile &c = ref_->csrs();
    struct NamedCsr
    {
        CsrSlot slot;
        const char *name;
        u64 ref_val;
    };
    const NamedCsr named[] = {
        {CsrSlot::PrivilegeMode, "priv", c.priv},
        {CsrSlot::Mstatus, "mstatus", c.mstatus},
        {CsrSlot::Misa, "misa", c.misa},
        {CsrSlot::Mie, "mie", c.mie},
        {CsrSlot::Mtvec, "mtvec", c.mtvec},
        {CsrSlot::Mscratch, "mscratch", c.mscratch},
        {CsrSlot::Mepc, "mepc", c.mepc},
        {CsrSlot::Mcause, "mcause", c.mcause},
        {CsrSlot::Mtval, "mtval", c.mtval},
        {CsrSlot::Minstret, "minstret", c.minstret},
        {CsrSlot::Satp, "satp", c.satp},
        {CsrSlot::Medeleg, "medeleg", c.medeleg},
        {CsrSlot::Mideleg, "mideleg", c.mideleg},
        {CsrSlot::Stvec, "stvec", c.stvec},
        {CsrSlot::Sscratch, "sscratch", c.sscratch},
        {CsrSlot::Sepc, "sepc", c.sepc},
        {CsrSlot::Scause, "scause", c.scause},
        {CsrSlot::Stval, "stval", c.stval},
        {CsrSlot::Mhartid, "mhartid", c.mhartid},
    };
    for (const NamedCsr &n : named) {
        if (v.csr(n.slot) != n.ref_val)
            return fail(event, n.name, n.ref_val, v.csr(n.slot));
    }
    counters_.add(stat_.csrStates);
    return true;
}

bool
CoreChecker::checkFpCsr(const Event &event)
{
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    FpCsrView v(event);
    if (v.fcsr() != ref_->csrs().fcsr)
        return fail(event, "fcsr", ref_->csrs().fcsr, v.fcsr());
    return true;
}

bool
CoreChecker::checkVecRegState(const Event &event)
{
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    VecRegView v(event);
    for (unsigned r = 0; r < riscv::kNumVregs; ++r) {
        for (unsigned l = 0; l < riscv::kVLanes64; ++l) {
            if (v.lane(r, l) != ref_->vregLane(r, l)) {
                return fail(event,
                            ("v" + std::to_string(r) + "[" +
                             std::to_string(l) + "]")
                                .c_str(),
                            ref_->vregLane(r, l), v.lane(r, l));
            }
        }
    }
    return true;
}

bool
CoreChecker::checkVecCsr(const Event &event)
{
    if (!ensureSteppedTo(event.commitSeq, event))
        return false;
    VecCsrView v(event);
    const riscv::CsrFile &c = ref_->csrs();
    if (v.vl() != c.vl)
        return fail(event, "vl", c.vl, v.vl());
    if (v.vtype() != c.vtype)
        return fail(event, "vtype", c.vtype, v.vtype());
    if (v.vstart() != c.vstart)
        return fail(event, "vstart", c.vstart, v.vstart());
    return true;
}

bool
CoreChecker::checkZeroSnapshot(const Event &event)
{
    // Hypervisor/debug/trigger CSR files are architecturally untouched by
    // the workloads; any nonzero word is a monitor or transport bug.
    PayloadView v(event);
    for (size_t off = 0; off + 8 <= event.payload.size(); off += 8) {
        if (v.word(off) != 0)
            return fail(event, "nonzero-static-csr", 0, v.word(off));
    }
    return true;
}

bool
CoreChecker::replayOriginalEvents(std::vector<Event> originals)
{
    dth_assert(failed_, "replay requires a detected mismatch");
    counters_.add(stat_.replays);

    // Revert the REF to the last verified checkpoint (compensation
    // log). Queued NDE oracles belong to the aborted timeline; the
    // retransmitted originals re-supply the window's synchronization.
    undo_->revertToMark();
    ref_->clearOracles();
    lastStep_.reset();
    replayMode_ = true;
    failed_ = false;
    replayTranscript_.clear();
    MismatchReport fusedReport = report_;
    report_ = MismatchReport{};

    // Restore checking order among the retransmitted original events.
    std::stable_sort(originals.begin(), originals.end(),
                     checkingOrderLess);

    char line[192];
    std::snprintf(line, sizeof(line),
                  "REF reverted to checkpoint #%llu; reprocessing %zu "
                  "original events",
                  (unsigned long long)markSeqPrev_, originals.size());
    replayTranscript_.push_back(line);
    for (const Event &e : originals) {
        bool ok = processEvent(e);
        if (e.type == EventType::InstrCommit) {
            InstrCommitView v(e);
            std::snprintf(line, sizeof(line),
                          "#%-8llu pc 0x%llx instr 0x%08llx%s%s",
                          (unsigned long long)v.seqNo(),
                          (unsigned long long)v.pc(),
                          (unsigned long long)v.instr(),
                          v.rfWen() ? (" -> x" + std::to_string(v.rd()))
                                          .c_str()
                                    : "",
                          ok ? "" : "   <-- MISMATCH");
            replayTranscript_.push_back(line);
        } else if (!ok) {
            std::snprintf(line, sizeof(line),
                          "#%-8llu %s   <-- MISMATCH",
                          (unsigned long long)e.commitSeq,
                          e.describe().c_str());
            replayTranscript_.push_back(line);
        }
        if (!ok)
            break;
    }
    replayMode_ = false;
    if (!failed_) {
        // The per-event stream passed but the fused compare failed: the
        // corruption must live in the fusion/transport layer itself.
        report_ = fusedReport;
        failed_ = true;
        return false;
    }
    report_.replayed = true;
    report_.windowFirstSeq = fusedReport.windowFirstSeq;
    report_.windowLastSeq = fusedReport.windowLastSeq;
    return true;
}

} // namespace dth::checker
