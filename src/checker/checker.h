/**
 * @file
 * The ISA checker (paper §2.2, §4.6): drives the REF model from the
 * verification-event stream, synchronizes non-deterministic events
 * through the Core's oracles, and compares architectural state. It
 * accepts both unfused streams (per-instruction commits) and Squash
 * output (FusedCommit/FusedDigest/DiffState), and implements the
 * software half of Replay: compensation-log checkpoints at fused-window
 * boundaries, rollback, and instruction-level reprocessing of the
 * retransmitted original events.
 */

#ifndef DTH_CHECKER_CHECKER_H_
#define DTH_CHECKER_CHECKER_H_

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "event/payloads.h"
#include "obs/stats.h"
#include "replay/undo_log.h"
#include "riscv/core.h"
#include "squash/fused_views.h"
#include "workload/program.h"

namespace dth::checker {

/** A verification failure with its behavioural-semantics localization. */
struct MismatchReport
{
    bool valid = false;
    unsigned core = 0;
    u64 seq = 0;   //!< order tag at which the mismatch was detected
    u64 refPc = 0; //!< REF pc at detection
    EventType eventType = EventType::InstrCommit;
    std::string field;
    u64 expected = 0;
    u64 actual = 0;
    /** Microarchitectural component implicated (behavioural semantics). */
    std::string component;
    /** True if detected at fused granularity (pre-Replay). */
    bool fused = false;
    u64 windowFirstSeq = 0;
    u64 windowLastSeq = 0;
    /** Replay refined this report to instruction granularity. */
    bool replayed = false;

    std::string describe() const;
};

/** Checker for one core: REF + comparison logic. */
class CoreChecker
{
  public:
    /**
     * @param core_id which DUT core this checker mirrors
     * @param program workload image loaded into the REF's private memory
     * @param mmio_sync MMIO values are synchronized via MmioEvent
     *        oracles; when false, commits flagged `skip` copy the DUT
     *        value into the REF instead of comparing
     */
    CoreChecker(unsigned core_id, const workload::Program &program,
                bool mmio_sync = true);

    /**
     * Process one event (already completed and in checking order).
     * Returns false once verification has failed.
     */
    bool processEvent(const Event &event);

    bool failed() const { return failed_; }
    const MismatchReport &report() const { return report_; }

    /** Trap observed with code 0 ("HIT GOOD TRAP"). */
    bool sawGoodTrap() const { return sawTrap_ && trapCode_ == 0; }
    bool sawTrap() const { return sawTrap_; }
    u64 trapCode() const { return trapCode_; }

    // ---- Replay (software half) ----------------------------------------
    /**
     * The rollback boundary: the start of the older retained window.
     * Content checks of the last verified window may still fail after
     * its boundary passed, so the compensation log keeps two windows.
     */
    u64 lastMarkSeq() const { return markSeqPrev_; }

    /**
     * Roll the REF back to the last checkpoint and reprocess the
     * retransmitted original events; refines report() to instruction
     * granularity. Returns true if the failure was re-localized.
     */
    bool replayOriginalEvents(std::vector<Event> originals);

    /**
     * Instruction-level transcript of the last replay (the paper's
     * "detailed debugging report", Fig. 12 step 8): one line per
     * reprocessed commit and per checked event, ending at the failure.
     */
    const std::vector<std::string> &replayTranscript() const
    {
        return replayTranscript_;
    }

    // ---- Introspection and work accounting ------------------------------
    riscv::Core &ref() { return *ref_; }
    u64 refSeq() const { return ref_->seqNo(); }
    u64 instrsStepped() const { return instrsStepped_; }
    u64 eventsChecked() const { return eventsChecked_; }
    obs::StatSheet &counters() { return counters_; }

  private:
    bool fail(const Event &event, const char *field, u64 expected,
              u64 actual);
    bool failFused(const Event &event, const char *field, u64 expected,
                   u64 actual, u64 first_seq, u64 last_seq);
    bool ensureSteppedTo(u64 seq, const Event &context);
    riscv::StepResult stepOnce();
    void foldStepDigests(const riscv::StepResult &r);

    bool checkInstrCommit(const Event &event);
    bool checkFusedCommit(const Event &event);
    bool checkFusedDigest(const Event &event);
    bool checkTrap(const Event &event);
    bool checkArchEvent(const Event &event);
    bool checkLoad(const Event &event);
    bool checkStore(const Event &event);
    bool checkAtomic(const Event &event);
    bool checkRefill(const Event &event);
    bool checkSbuffer(const Event &event);
    bool checkTlb(const Event &event);
    bool checkIntRegState(const Event &event);
    bool checkFpRegState(const Event &event);
    bool checkCsrState(const Event &event);
    bool checkFpCsr(const Event &event);
    bool checkVecRegState(const Event &event);
    bool checkVecCsr(const Event &event);
    bool checkZeroSnapshot(const Event &event);

    unsigned coreId_;
    bool mmioSync_;
    std::unique_ptr<riscv::Bus> bus_;
    std::unique_ptr<riscv::Core> ref_;
    std::unique_ptr<replay::UndoLog> undo_;

    std::optional<riscv::StepResult> lastStep_;

    // Fused-window digest accumulators (commit window + per aux type).
    u64 commitWindowDigest_ = 0;
    u64 commitWindowCount_ = 0;
    std::array<u64, kNumEventTypes> auxDigest_{};
    std::array<u64, kNumEventTypes> auxCount_{};

    u64 markSeq_ = 0;
    u64 markSeqPrev_ = 0;
    bool replayMode_ = false;
    std::vector<std::string> replayTranscript_;

    bool failed_ = false;
    MismatchReport report_;
    bool sawTrap_ = false;
    u64 trapCode_ = 0;

    u64 instrsStepped_ = 0;
    u64 eventsChecked_ = 0;
    obs::StatSheet counters_;
    struct
    {
        obs::StatId mismatches;
        obs::StatId events;
        obs::StatId mmioFills;
        obs::StatId mmioStores;
        obs::StatId scOutcomes;
        obs::StatId uartIo;
        obs::StatId informational;
        obs::StatId skippedCommits;
        obs::StatId commits;
        obs::StatId fusedCommits;
        obs::StatId fusedInstrs;
        obs::StatId fusedDigests;
        obs::StatId traps;
        obs::StatId interrupts;
        obs::StatId exceptions;
        obs::StatId loads;
        obs::StatId stores;
        obs::StatId atomics;
        obs::StatId refills;
        obs::StatId sbuffer;
        obs::StatId tlb;
        obs::StatId regstates;
        obs::StatId csrStates;
        obs::StatId replays;
    } stat_;
};

} // namespace dth::checker

#endif // DTH_CHECKER_CHECKER_H_
