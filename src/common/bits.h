/**
 * @file
 * Bit-manipulation helpers shared by the ISA model and the packers.
 */

#ifndef DTH_COMMON_BITS_H_
#define DTH_COMMON_BITS_H_

#include "common/types.h"

namespace dth {

/** Extract bits [hi:lo] (inclusive) from a 64-bit value. */
constexpr u64
bits(u64 value, unsigned hi, unsigned lo)
{
    return (value >> lo) & ((hi - lo == 63) ? ~0ULL
                                            : ((1ULL << (hi - lo + 1)) - 1));
}

/** Extract a single bit. */
constexpr u64
bit(u64 value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr i64
sext(u64 value, unsigned width)
{
    unsigned shift = 64 - width;
    return static_cast<i64>(value << shift) >> shift;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr u64
alignUp(u64 value, u64 align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (a power of two). */
constexpr u64
alignDown(u64 value, u64 align)
{
    return value & ~(align - 1);
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPow2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** A byte mask with the low @p nbytes bytes set. */
constexpr u64
byteMask(unsigned nbytes)
{
    return nbytes >= 8 ? ~0ULL : ((1ULL << (nbytes * 8)) - 1);
}

} // namespace dth

#endif // DTH_COMMON_BITS_H_
