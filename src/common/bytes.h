/**
 * @file
 * Little-endian byte-stream writer/reader used for event serialization and
 * packet assembly. All cross-"interface" data in DiffTest-H moves through
 * these streams so the software side genuinely parses what the hardware
 * side emitted.
 */

#ifndef DTH_COMMON_BYTES_H_
#define DTH_COMMON_BYTES_H_

#include <cstring>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace dth {

/** Appends little-endian scalars and raw bytes to a growable buffer. */
class ByteWriter
{
  public:
    ByteWriter() = default;
    explicit ByteWriter(std::vector<u8> *out) : external_(out) {}

    /** Pre-size the buffer for @p n further bytes (known-size frames). */
    void
    reserve(size_t n)
    {
        auto &b = buf();
        b.reserve(b.size() + n);
    }

    void putU8(u8 v) { put(&v, 1); }
    void putU16(u16 v) { putLe(v, 2); }
    void putU32(u32 v) { putLe(v, 4); }
    void putU64(u64 v) { putLe(v, 8); }

    void
    putBytes(const u8 *data, size_t n)
    {
        put(data, n);
    }

    void
    putBytes(std::span<const u8> data)
    {
        put(data.data(), data.size());
    }

    /** Append @p n zero bytes (padding). */
    void
    putZeros(size_t n)
    {
        buf().insert(buf().end(), n, 0);
    }

    size_t size() const { return bufConst().size(); }
    const std::vector<u8> &bytes() const { return bufConst(); }
    std::vector<u8> take() { return std::move(buf()); }

  private:
    std::vector<u8> &buf() { return external_ ? *external_ : owned_; }
    const std::vector<u8> &
    bufConst() const
    {
        return external_ ? *external_ : owned_;
    }

    void
    putLe(u64 v, unsigned nbytes)
    {
        u8 tmp[8];
        for (unsigned i = 0; i < nbytes; ++i)
            tmp[i] = static_cast<u8>(v >> (8 * i));
        put(tmp, nbytes);
    }

    void
    put(const u8 *data, size_t n)
    {
        buf().insert(buf().end(), data, data + n);
    }

    std::vector<u8> owned_;
    std::vector<u8> *external_ = nullptr;
};

/**
 * Consumes little-endian scalars from a byte span.
 *
 * Underrun policy: internal wire formats (packets the packers just
 * built) use the default Panic mode, where a short read is a protocol
 * bug and aborts. Parsers of external, untrusted input — trace files
 * from disk — construct the reader with OnUnderrun::Fail: a short read
 * sets a sticky failure flag and yields zeros/empty spans, so the
 * parser can unwind and return false instead of killing the process.
 */
class ByteReader
{
  public:
    enum class OnUnderrun : u8 {
        Panic, //!< dth_assert (internal streams; malformed = bug)
        Fail,  //!< sticky failed() flag, zero-filled reads (untrusted)
    };

    explicit ByteReader(std::span<const u8> data,
                        OnUnderrun mode = OnUnderrun::Panic)
        : data_(data), mode_(mode)
    {}

    u8 getU8() { return static_cast<u8>(get(1)); }
    u16 getU16() { return static_cast<u16>(get(2)); }
    u32 getU32() { return static_cast<u32>(get(4)); }
    u64 getU64() { return get(8); }

    /** Read @p n raw bytes. In Fail mode a short read returns an empty
     *  span and marks the reader failed. */
    std::span<const u8>
    getBytes(size_t n)
    {
        if (failed_ || n > data_.size() - pos_) {
            if (mode_ == OnUnderrun::Panic) {
                dth_assert(false,
                           "byte stream underrun: need %zu at %zu/%zu", n,
                           pos_, data_.size());
            }
            failed_ = true;
            return {};
        }
        auto out = data_.subspan(pos_, n);
        pos_ += n;
        return out;
    }

    void
    skip(size_t n)
    {
        (void)getBytes(n);
    }

    size_t remaining() const { return data_.size() - pos_; }
    size_t position() const { return pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** A Fail-mode read ran past the end (sticky). */
    bool failed() const { return failed_; }
    bool ok() const { return !failed_; }

  private:
    u64
    get(unsigned nbytes)
    {
        auto raw = getBytes(nbytes);
        u64 v = 0;
        for (unsigned i = 0; i < raw.size(); ++i)
            v |= static_cast<u64>(raw[i]) << (8 * i);
        return v;
    }

    std::span<const u8> data_;
    size_t pos_ = 0;
    OnUnderrun mode_;
    bool failed_ = false;
};

} // namespace dth

#endif // DTH_COMMON_BYTES_H_
