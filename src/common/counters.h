/**
 * @file
 * Named performance counters. Both "hardware" and "software" sides of the
 * co-simulation register counters here (paper §5: the tuning toolkit's
 * performance-evaluation support), e.g. transmission counts, data volume,
 * Squash fusion ratio, Batch packet utilization.
 */

#ifndef DTH_COMMON_COUNTERS_H_
#define DTH_COMMON_COUNTERS_H_

#include <map>
#include <string>

#include "common/types.h"

namespace dth {

/** A flat map of named monotonically increasing counters. */
class PerfCounters
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, u64 delta = 1)
    {
        counters_[name] += delta;
    }

    /** Add to a floating-point accumulator (for time/ratio sums). */
    void
    addReal(const std::string &name, double delta)
    {
        reals_[name] += delta;
    }

    /** Track the maximum seen for @p name. */
    void
    trackMax(const std::string &name, u64 value)
    {
        u64 &slot = counters_[name];
        if (value > slot)
            slot = value;
    }

    u64
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    double
    getReal(const std::string &name) const
    {
        auto it = reals_.find(name);
        return it == reals_.end() ? 0.0 : it->second;
    }

    /** Ratio of two integer counters; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        u64 d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    const std::map<std::string, u64> &integers() const { return counters_; }
    const std::map<std::string, double> &reals() const { return reals_; }

    void
    clear()
    {
        counters_.clear();
        reals_.clear();
    }

    /** Merge another counter set into this one. */
    void
    merge(const PerfCounters &other)
    {
        for (const auto &[k, v] : other.counters_)
            counters_[k] += v;
        for (const auto &[k, v] : other.reals_)
            reals_[k] += v;
    }

  private:
    std::map<std::string, u64> counters_;
    std::map<std::string, double> reals_;
};

} // namespace dth

#endif // DTH_COMMON_COUNTERS_H_
