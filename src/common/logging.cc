#include "common/logging.h"

#include <cstdarg>

namespace dth {

namespace {
LogLevel gLogLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(len > 0 ? static_cast<size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

[[noreturn]] void
panicImpl(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(std::string msg)
{
    if (gLogLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(std::string msg)
{
    if (gLogLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace dth
