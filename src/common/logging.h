/**
 * @file
 * Status and error reporting, following the gem5 panic/fatal idiom:
 * panic() is an internal invariant violation (a DiffTest-H bug), fatal()
 * is a user/configuration error, warn()/inform() are advisory.
 */

#ifndef DTH_COMMON_LOGGING_H_
#define DTH_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dth {

/** Verbosity levels for advisory output. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Global verbosity; benches lower this to keep output clean. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, std::string msg);
[[noreturn]] void fatalImpl(const char *file, int line, std::string msg);
void warnImpl(std::string msg);
void informImpl(std::string msg);
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace dth

/** Abort on an internal invariant violation (DiffTest-H bug). */
#define dth_panic(...)                                                      \
    ::dth::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::dth::detail::formatMessage(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define dth_fatal(...)                                                      \
    ::dth::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::dth::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning about suspicious conditions. */
#define dth_warn(...)                                                       \
    ::dth::detail::warnImpl(::dth::detail::formatMessage(__VA_ARGS__))

/** Informational status message. */
#define dth_inform(...)                                                     \
    ::dth::detail::informImpl(::dth::detail::formatMessage(__VA_ARGS__))

/** Panic unless a condition holds. */
#define dth_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            dth_panic("assertion failed: %s -- %s", #cond,                  \
                      ::dth::detail::formatMessage(__VA_ARGS__).c_str());   \
        }                                                                   \
    } while (0)

#endif // DTH_COMMON_LOGGING_H_
