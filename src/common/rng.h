/**
 * @file
 * Deterministic xorshift random number generator. All stochastic behaviour
 * in DiffTest-H (workload generation, microarchitectural texture, fault
 * injection) flows from seeded instances of this class so that every
 * simulation is exactly reproducible.
 */

#ifndef DTH_COMMON_RNG_H_
#define DTH_COMMON_RNG_H_

#include "common/types.h"

namespace dth {

/** xorshift64* generator; small, fast and deterministic across hosts. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ULL)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit sample. */
    u64
    next()
    {
        u64 x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1DULL;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64 nextBelow(u64 bound) { return next() % bound; }

    /** Uniform integer in [lo, hi] inclusive. */
    u64 nextRange(u64 lo, u64 hi) { return lo + nextBelow(hi - lo + 1); }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

    /** Derive an independent child stream (for per-module determinism). */
    Rng fork() { return Rng(next() ^ 0xA24BAED4963EE407ULL); }

  private:
    u64 state_;
};

} // namespace dth

#endif // DTH_COMMON_RNG_H_
