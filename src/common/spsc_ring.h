/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring used to back
 * the NonBlock hardware/software pipeline with a *real* concurrent
 * queue (DESIGN.md §5.6). The hardware-side producer thread publishes
 * fixed slots in place (so slot-owned buffers are reused across laps
 * instead of reallocated), the software-side consumer processes them in
 * place and retires them; capacity is the run-ahead bound and full
 * slots are the backpressure condition, mirroring the bounded
 * speculative queue of the paper's NonBlock (§4.5).
 *
 * Memory ordering is the classic Lamport queue: the producer's
 * release-store of head publishes the slot contents to the consumer's
 * acquire-load; the consumer's release-store of tail returns the slot
 * (and whatever buffers it still owns) to the producer. head and tail
 * live on separate cache lines; each side additionally keeps a local
 * cache of the opposite index so the uncontended fast path touches only
 * its own line.
 */

#ifndef DTH_COMMON_SPSC_RING_H_
#define DTH_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace dth {

/** Bounded SPSC ring of in-place slots. Exactly one producer thread may
 *  call the push side and exactly one consumer thread the pop side. */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity slot count; rounded up to a power of two. */
    explicit SpscRing(size_t capacity)
    {
        dth_assert(capacity >= 2, "ring needs at least 2 slots");
        size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    // ---- producer side --------------------------------------------------

    /** Claim the next slot for in-place filling; nullptr when full. The
     *  slot keeps whatever buffers it held on the previous lap. */
    T *
    tryBeginPush()
    {
        size_t head = head_.load(std::memory_order_relaxed);
        if (head - tailCache_ > mask_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head - tailCache_ > mask_)
                return nullptr;
        }
        return &slots_[head & mask_];
    }

    /** Publish the slot claimed by the last tryBeginPush(). */
    void
    commitPush()
    {
        head_.store(head_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
    }

    /** Producer signals end of stream (no further pushes). */
    void close() { closed_.store(true, std::memory_order_release); }

    // ---- consumer side --------------------------------------------------

    /** Peek the oldest unconsumed slot; nullptr when empty. */
    T *
    tryFront()
    {
        size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == headCache_) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (tail == headCache_)
                return nullptr;
        }
        return &slots_[tail & mask_];
    }

    /** Retire the slot returned by the last tryFront(). */
    void
    pop()
    {
        tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
    }

    /** True once the producer closed AND everything was consumed. */
    bool
    drained()
    {
        return closed_.load(std::memory_order_acquire) &&
               tryFront() == nullptr;
    }

    // ---- either side ----------------------------------------------------

    bool closed() const { return closed_.load(std::memory_order_acquire); }
    size_t capacity() const { return mask_ + 1; }

    /** Approximate occupancy (exact only from a quiesced thread). */
    size_t
    size() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

  private:
    alignas(64) std::atomic<size_t> head_{0};
    alignas(64) size_t tailCache_ = 0; //!< producer-owned
    alignas(64) std::atomic<size_t> tail_{0};
    alignas(64) size_t headCache_ = 0; //!< consumer-owned
    alignas(64) std::atomic<bool> closed_{false};

    size_t mask_ = 0;
    std::vector<T> slots_;
};

/**
 * Spin-then-yield helper for the ring's blocking call sites: spins a
 * short budget, then yields the CPU so a single-core host still makes
 * progress. Returns false once @p abort becomes true.
 */
template <typename TryFn, typename AbortFn>
bool
spscWait(TryFn &&ready, AbortFn &&abort)
{
    for (unsigned spin = 0;; ++spin) {
        if (ready())
            return true;
        if (abort())
            return false;
        if (spin >= 64) {
            std::this_thread::yield();
        }
    }
}

} // namespace dth

#endif // DTH_COMMON_SPSC_RING_H_
