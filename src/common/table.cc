#include "common/table.h"

#include <cstdio>

#include "common/logging.h"

namespace dth {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    dth_assert(cells.size() == header_.size(),
               "row arity %zu != header arity %zu", cells.size(),
               header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += std::string(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = emit_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TextTable::renderCsv() const
{
    auto emit = [](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += ',';
        }
        return line + '\n';
    };
    std::string out = emit(header_);
    for (const auto &row : rows_)
        out += emit(row);
    return out;
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
fmtHz(double hz)
{
    char buf[64];
    if (hz >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f MHz", hz / 1e6);
    else if (hz >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1f KHz", hz / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.1f Hz", hz);
    return buf;
}

std::string
fmtSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 86400 * 2)
        std::snprintf(buf, sizeof(buf), "%.1f days", seconds / 86400);
    else if (seconds >= 3600)
        std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600);
    else if (seconds >= 60)
        std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60);
    else if (seconds >= 1)
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    else
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    return buf;
}

} // namespace dth
