/**
 * @file
 * Minimal aligned text-table printer used by the benchmark harnesses to
 * print the paper's tables and figure series.
 */

#ifndef DTH_COMMON_TABLE_H_
#define DTH_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dth {

/** Collects rows of strings and prints them with aligned columns. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (header, rule, rows) to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Render as comma-separated values (for offline analysis). */
    std::string renderCsv() const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting helpers for table cells. */
std::string fmtDouble(double v, int precision = 2);
std::string fmtPercent(double fraction, int precision = 1);

/** Human-readable frequency, e.g. 478000 -> "478.0 KHz". */
std::string fmtHz(double hz);

/** Human-readable duration, e.g. 39600 -> "11.0 h". */
std::string fmtSeconds(double seconds);

} // namespace dth

#endif // DTH_COMMON_TABLE_H_
