/**
 * @file
 * Fixed-width integer aliases used throughout DiffTest-H.
 */

#ifndef DTH_COMMON_TYPES_H_
#define DTH_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace dth {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

} // namespace dth

#endif // DTH_COMMON_TYPES_H_
