#include "cosim/cosim.h"

#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "cosim/session.h"

namespace dth::cosim {

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::Z: return "Baseline";
      case OptLevel::B: return "+Batch";
      case OptLevel::BN: return "+NonBlock";
      case OptLevel::BNSD: return "+Squash";
    }
    return "?";
}

void
CosimConfig::applyOptLevel(OptLevel level)
{
    switch (level) {
      case OptLevel::Z:
        batch = false;
        nonBlocking = false;
        squash = false;
        break;
      case OptLevel::B:
        batch = true;
        nonBlocking = false;
        squash = false;
        break;
      case OptLevel::BN:
        batch = true;
        nonBlocking = true;
        squash = false;
        break;
      case OptLevel::BNSD:
        batch = true;
        nonBlocking = true;
        squash = true;
        break;
    }
}

std::string
CosimResult::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: %llu cycles, %llu instrs, %.2f KHz, comm %.1f%%",
                  goodTrap ? "HIT GOOD TRAP"
                           : (verified ? "ran clean" : "MISMATCH"),
                  (unsigned long long)cycles, (unsigned long long)instrs,
                  simSpeedHz / 1e3, timing.communicationFraction() * 100);
    return buf;
}

CoSimulator::CoSimulator(const CosimConfig &config,
                         const workload::Program &program)
    : CoSimulator(config,
                  std::make_shared<const workload::Program>(program))
{}

CoSimulator::CoSimulator(const CosimConfig &config,
                         std::shared_ptr<const workload::Program> program,
                         std::shared_ptr<const SharedTables> tables)
    : config_(config), program_(std::move(program)),
      tables_(std::move(tables))
{
    dth_assert(program_ != nullptr, "null workload program");
    if (tables_) {
        // Validate the session config against the shared lint-proven
        // tables once, up front — a fleet must not discover a config
        // that can't encode its own events mid-campaign.
        dth_assert(config_.packetBytes >= tables_->minPacketBytes(),
                   "packetBytes %u below the %zu-byte minimum the "
                   "protocol tables require",
                   config_.packetBytes, tables_->minPacketBytes());
        dth_assert(config_.maxFuse <= tables_->maxFuseDepth(),
                   "maxFuse %u exceeds the wire format's fuse-depth "
                   "ceiling %u",
                   config_.maxFuse, tables_->maxFuseDepth());
    }
    dut_ = std::make_unique<dut::DutModel>(config_.dut, program_,
                                           config_.seed);
    if (config_.squash) {
        SquashConfig sc;
        sc.maxFuse = config_.maxFuse;
        sc.differencing = config_.differencing;
        sc.orderCoupled = config_.orderCoupledFusion;
        sc.cores = config_.dut.cores;
        squash_ = std::make_unique<SquashUnit>(sc);
    }
    if (config_.fixedOffsetPacking) {
        dth_assert(!config_.squash,
                   "fixed-offset packing models prior work without Squash");
        packer_ = std::make_unique<FixedOffsetPacker>(
            config_.dut.eventEnabled, config_.dut.cores,
            config_.packetBytes);
        unpacker_ = std::make_unique<FixedOffsetUnpacker>(
            config_.dut.eventEnabled, config_.dut.cores);
    } else if (config_.batch) {
        packer_ = std::make_unique<BatchPacker>(config_.packetBytes);
        unpacker_ = std::make_unique<BatchUnpacker>();
    } else {
        packer_ = std::make_unique<PerEventPacker>();
        unpacker_ = std::make_unique<PerEventUnpacker>();
    }
    completer_ = std::make_unique<SquashCompleter>(config_.dut.cores);
    reorderer_ = std::make_unique<Reorderer>(config_.dut.cores);
    if (config_.enableReplay) {
        replayBuffer_ = std::make_unique<replay::ReplayBuffer>(
            config_.dut.cores, config_.replayBufferCapacity);
    }
    link_ = std::make_unique<link::LinkSimulator>(
        config_.platform,
        config_.platform.dutOnlyHz(config_.dut.gatesMillions),
        config_.nonBlocking);
    link::LinkFaultConfig faults = config_.linkFaults;
    if (faults.seed == 0) {
        // Derive a distinct, deterministic injector stream from the run
        // seed (golden-ratio mix; | 1 keeps the xorshift state nonzero).
        faults.seed = (config_.seed * 0x9E3779B97F4A7C15ull) | 1;
    }
    channel_ = std::make_unique<link::ResilientChannel>(faults,
                                                        link_.get());
    emitCounters_.assign(config_.dut.cores, 0);
    bool mmio_sync = config_.dut.enabled(EventType::MmioEvent);
    for (unsigned c = 0; c < config_.dut.cores; ++c) {
        checkers_.push_back(std::make_unique<checker::CoreChecker>(
            c, *program_, mmio_sync));
    }

    hostStat_.threads = hostSheet_.gauge("host.threads");
    hostStat_.queueDepth = hostSheet_.gauge("host.queue_depth");
    hostStat_.runSec = hostSheet_.real("host.run_sec");
    hostStat_.hwLoopSec = hostSheet_.real("host.hw_loop_sec");
    hostStat_.hwWaitSec = hostSheet_.real("host.hw_wait_sec");
    hostStat_.hwWaits = hostSheet_.sum("host.hw_waits");
    hostStat_.hwBundles = hostSheet_.sum("host.hw_bundles");
    hostStat_.swLoopSec = hostSheet_.real("host.sw_loop_sec");
    hostStat_.swWaitSec = hostSheet_.real("host.sw_wait_sec");
    hostStat_.swWaits = hostSheet_.sum("host.sw_waits");
    hostStat_.swBundles = hostSheet_.sum("host.sw_bundles");
    hostStat_.ringOccupancy = hostSheet_.hist("host.ring_occupancy");
}

CoSimulator::~CoSimulator() = default;

checker::CoreChecker &
CoSimulator::coreChecker(unsigned core)
{
    return *checkers_[core];
}

void
CoSimulator::armFault(const dut::FaultSpec &spec)
{
    dut_->armFault(spec);
}

bool
CoSimulator::anyFailed() const
{
    for (const auto &c : checkers_)
        if (c->failed())
            return true;
    return false;
}

bool
CoSimulator::allGoodTrap() const
{
    for (const auto &c : checkers_)
        if (!c->sawGoodTrap())
            return false;
    return true;
}

void
CoSimulator::feedChecker(const Event &event)
{
    if (checkedTap_)
        checkedTap_(event);
    checker::CoreChecker &chk = *checkers_[event.core];
    if (chk.failed())
        return;
    if (!chk.processEvent(event)) {
        if (config_.enableReplay && replayBuffer_)
            runReplay(event.core);
    } else if (event.type == EventType::FusedCommit && replayBuffer_) {
        // Window verified: the hardware buffer can drop it.
        replayBuffer_->release(event.core, chk.lastMarkSeq());
    }
}

void
CoSimulator::runReplay(unsigned core)
{
    // NOTE: runs on the software side (the consumer thread in threaded
    // mode) — must not touch dut_/packer_/squash_ state.
    checker::CoreChecker &chk = *checkers_[core];
    const checker::MismatchReport &rep = chk.report();
    if (!config_.squash) {
        // Unfused streams are already instruction-granular.
        return;
    }
    replayRan_ = true;
    u64 first = chk.lastMarkSeq() + 1;
    u64 last = std::max(rep.seq, rep.windowLastSeq);
    bool complete = false;
    std::vector<Event> originals =
        replayBuffer_->request(core, first, last, &complete);
    replayComplete_ = complete;
    if (!complete) {
        dth_warn("replay window [%llu, %llu] partially evicted",
                 (unsigned long long)first, (unsigned long long)last);
    }
    // Retransmission crosses the link once more.
    size_t bytes = 0;
    for (const Event &e : originals)
        bytes += eventWireBytes(e);
    link::SoftwareWork work;
    work.eventsChecked = originals.size();
    work.instrsStepped = last - first + 1;
    work.bytesParsed = bytes;
    link_->onTransfer(swCycle_, bytes, work);
    replayBuffer_->countRetransmit(originals.size(), bytes);
    chk.replayOriginalEvents(std::move(originals));
}

void
CoSimulator::processTransfer(const Transfer &transfer)
{
    obs::ScopedSpan span(swTrace_, "sw_transfer");
    if (linkFailed_)
        return; // channel already failed: drop run-ahead transfers

    // Cross the resilient link: framing, fault injection and the whole
    // NAK/timeout/retransmit exchange run synchronously here, at the
    // HW->SW handoff, so serial and threaded runs see identical fault
    // patterns. On a fault-free link this is a frame+CRC round trip.
    if (!channel_->transmit(transfer, linkScratch_)) {
        // Unrecoverable-fault budget exhausted: stop with a structured
        // degraded result instead of aborting.
        dth_warn("link channel failed; stopping run: %s",
                 channel_->report().describe().c_str());
        linkFailed_ = true;
        return;
    }

    unpackScratch_.clear();
    if (!unpacker_->unpackInto(linkScratch_, unpackScratch_)) {
        // The channel delivered a CRC-intact frame that still failed to
        // parse: the payload was malformed at the source. Surface it as
        // a degraded run, not an abort.
        dth_warn("unpack of delivered transfer failed: %s",
                 unpacker_->error().c_str());
        linkFailed_ = true;
        return;
    }

    u64 instrs_before = 0, events_before = 0;
    for (const auto &c : checkers_) {
        instrs_before += c->instrsStepped();
        events_before += c->eventsChecked();
    }

    for (Event &e : unpackScratch_) {
        completer_->completeInPlace(e);
        reorderer_->push(std::move(e));
    }
    drainScratch_.clear();
    reorderer_->drainInto(drainScratch_);
    for (Event &e : drainScratch_)
        feedChecker(e);

    u64 instrs_after = 0, events_after = 0;
    for (const auto &c : checkers_) {
        instrs_after += c->instrsStepped();
        events_after += c->eventsChecked();
    }
    link::SoftwareWork work;
    work.instrsStepped = instrs_after - instrs_before;
    work.eventsChecked = events_after - events_before;
    work.bytesParsed = transfer.size();
    link_->onTransfer(transfer.issueCycle, transfer.size(), work);
}

void
CoSimulator::stampEmissionOrder(CycleEvents &cycle)
{
    for (Event &e : cycle.events)
        e.emitSeq = emitCounters_[e.core]++;
}

void
CoSimulator::hwPackCycle(CycleEvents &ce, std::vector<Transfer> &out)
{
    size_t before = out.size();
    if (squash_) {
        squash_->process(ce, squashScratch_);
        stampEmissionOrder(squashScratch_);
        packer_->packCycle(squashScratch_, out);
    } else {
        stampEmissionOrder(ce);
        packer_->packCycle(ce, out);
    }
    if (out.size() > before) {
        lastEmitCycle_ = dut_->cycles();
    } else if (dut_->cycles() - lastEmitCycle_ >=
               config_.packetFlushInterval) {
        packer_->flush(out);
        lastEmitCycle_ = dut_->cycles();
    }
}

CosimResult
CoSimulator::run(u64 max_cycles)
{
    lastEmitCycle_ = 0;
    swCycle_ = 0;
    // A channel that failed in a previous run stays dead (its endpoints
    // lost protocol state); a healthy one carries its sequence space on.
    linkFailed_ = channel_->failed();
    // Per-run reset: a reused CoSimulator must not accumulate host
    // telemetry across run() invocations (host.threads once read 2, 4,
    // 6... from a reused instance).
    hostSheet_.reset();
    hwTrace_.clear();
    swTrace_.clear();
    if (config_.captureTimeline) {
        auto epoch = obs::TraceClock::now();
        bool threaded = config_.hostThreads >= 2;
        hwTrace_.start(threaded ? "hw_producer" : "serial", 0, epoch,
                       config_.timelineCapacity);
        swTrace_.start(threaded ? "sw_consumer" : "serial_sw", 1, epoch,
                       config_.timelineCapacity);
    }
    if (config_.hostThreads >= 2)
        return runThreaded(max_cycles);
    return runSerial(max_cycles);
}

std::string
CoSimulator::chromeTraceJson() const
{
    if (!hwTrace_.enabled())
        return std::string();
    return obs::chromeTraceJson({&hwTrace_, &swTrace_});
}

CosimResult
CoSimulator::runSerial(u64 max_cycles)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::ScopedSpan span(hwTrace_, "serial_loop");
    std::vector<Transfer> transfers;

    while (!dut_->done() && dut_->cycles() < max_cycles && !anyFailed() &&
           !linkFailed_) {
        CycleEvents ce = dut_->cycle();
        swCycle_ = dut_->cycles();
        if (monitorTap_)
            monitorTap_(ce);
        if (replayBuffer_) {
            for (const Event &e : ce.events)
                replayBuffer_->record(e);
        }
        hwPackCycle(ce, transfers);
        for (const Transfer &t : transfers)
            processTransfer(t);
        transfers.clear();
    }

    // Drain: flush open fusion windows and partial packets, then feed
    // everything that is still buffered on the software side.
    if (!anyFailed() && !linkFailed_) {
        swCycle_ = dut_->cycles();
        if (squash_) {
            squash_->finish(squashScratch_);
            stampEmissionOrder(squashScratch_);
            packer_->packCycle(squashScratch_, transfers);
        }
        packer_->flush(transfers);
        for (const Transfer &t : transfers)
            processTransfer(t);
        transfers.clear();
        drainScratch_.clear();
        reorderer_->drainAllInto(drainScratch_);
        for (Event &e : drainScratch_)
            feedChecker(e);
    }

    hostSheet_.set(hostStat_.threads, 1);
    hostSheet_.addReal(
        hostStat_.runSec,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    return finishResult(dut_->cycles(), dut_->totalInstrsRetired(),
                        nullptr);
}

CosimResult
CoSimulator::finishResult(u64 cycles, u64 instrs,
                          const obs::StatSheet *hw_override)
{
    CosimResult result;
    result.cycles = cycles;
    result.instrs = instrs;
    result.timing = link_->finish(result.cycles);
    result.simSpeedHz =
        result.timing.totalSec > 0
            ? static_cast<double>(result.cycles) / result.timing.totalSec
            : 0;
    result.goodTrap = allGoodTrap();
    result.verified = !anyFailed();
    result.replayRan = replayRan_;
    result.replayComplete = replayComplete_;
    result.linkReport = channel_->report();
    result.linkDegradeLevel = result.linkReport.degradeLevel;
    result.linkDegraded = result.linkDegradeLevel >= 1 || linkFailed_;
    if (linkFailed_ || result.linkReport.failed()) {
        // A failed channel means the event stream was cut short: the
        // run cannot claim verification.
        result.verified = false;
        result.goodTrap = false;
    }
    for (const auto &c : checkers_) {
        if (c->failed()) {
            result.mismatch = c->report();
            break;
        }
    }

    // Merge counters (kind-aware: Sum adds, Max keeps the high-water
    // mark, Gauge takes the incoming value) and derive the
    // communication statistics. On a threaded mismatch the hardware
    // side has run ahead of the fatal transfer; hw_override is the
    // dut/pack/squash snapshot taken at the cycle boundary the serial
    // driver would have stopped at.
    obs::StatSheet merged;
    if (replayBuffer_)
        merged.merge(replayBuffer_->counters());
    if (hw_override) {
        merged.merge(*hw_override);
    } else {
        merged.merge(dut_->counters());
        merged.merge(packer_->counters());
        if (squash_)
            merged.merge(squash_->counters());
    }
    for (const auto &c : checkers_)
        merged.merge(c->counters());
    merged.merge(reorderer_->counters());
    merged.merge(link_->counters());
    merged.merge(channel_->counters());
    merged.merge(hostSheet_);
    result.counters = merged.snapshot();
    const obs::StatSnapshot &pc = result.counters;
    if (result.cycles > 0) {
        result.invokesPerCycle =
            static_cast<double>(result.timing.transfers) / result.cycles;
        result.bytesPerCycle =
            static_cast<double>(result.timing.bytes) / result.cycles;
    }
    u64 dut_instrs = pc.get("dut.instrs");
    if (dut_instrs > 0) {
        result.rawBytesPerInstr =
            static_cast<double>(pc.get("dut.bytes")) / dut_instrs;
    }
    result.fusionRatio = pc.ratio("squash.commits_absorbed",
                                  "squash.flushes");
    u64 bubble = pc.get("pack.bubble_bytes");
    u64 valid = pc.get("pack.valid_bytes");
    if (bubble + valid > 0) {
        result.bubbleFraction =
            static_cast<double>(bubble) / (bubble + valid);
    }
    u64 samples = pc.get("pack.utilization_samples");
    if (samples > 0) {
        result.packetUtilization =
            pc.getReal("pack.utilization_sum") / samples;
    }
    return result;
}

} // namespace dth::cosim
