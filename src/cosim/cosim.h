/**
 * @file
 * The DiffTest-H co-simulation framework top level (paper Fig. 3/12):
 * the DUT model's monitors feed the acceleration unit (Squash fusion +
 * differencing, Batch packing), transfers cross the modeled link
 * (blocking or non-blocking), and the software side unpacks, completes,
 * reorders and checks against per-core REF models. On a mismatch at
 * fused granularity, the Replay unit rolls the REF back via the
 * compensation log and reprocesses the buffered original events.
 *
 * Optimization levels mirror the artifact's DIFF_CONFIG options:
 *   Z      baseline DiffTest (per-event DPI, blocking)
 *   B      +Batch  (tight packing)
 *   BN     +NonBlock (speculative run-ahead)
 *   BNSD   +Squash+Differencing (full DiffTest-H)
 */

#ifndef DTH_COSIM_COSIM_H_
#define DTH_COSIM_COSIM_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "common/spsc_ring.h"
#include "cosim/host_pipeline.h"
#include "dut/dut.h"
#include "link/channel.h"
#include "link/link_sim.h"
#include "obs/stats.h"
#include "obs/trace_log.h"
#include "pack/packer.h"
#include "replay/buffer.h"
#include "squash/squash.h"

namespace dth::cosim {

/** Artifact-style optimization levels. */
enum class OptLevel { Z, B, BN, BNSD };

const char *optLevelName(OptLevel level);

/** Full co-simulation configuration. */
struct CosimConfig
{
    dut::DutConfig dut;
    link::Platform platform;

    // Optimization switches (set via applyOptLevel or individually).
    bool batch = true;
    bool nonBlocking = true;
    bool squash = true;
    bool differencing = true;
    /** Prior-work order-coupled fusion (Fig. 8 baseline). */
    bool orderCoupledFusion = false;
    /** Prior-work fixed-offset packing instead of Batch (Fig. 5). */
    bool fixedOffsetPacking = false;

    unsigned packetBytes = 4096;
    unsigned maxFuse = 32;
    bool enableReplay = true;
    size_t replayBufferCapacity = 16384;
    /** Flush a partially filled packet after this many idle cycles. */
    u64 packetFlushInterval = 1024;

    u64 seed = 0xD1FF;

    /**
     * Link fault injection and recovery knobs. Disabled by default;
     * when enabled, every transfer crosses the framed resilient channel
     * (CRC32 + sequence tracking, NAK/timeout retransmission, graceful
     * degradation — link/channel.h). A linkFaults.seed of 0 derives the
     * injector stream from the run seed.
     */
    link::LinkFaultConfig linkFaults;

    /**
     * Host execution model (orthogonal to the modeled-link `nonBlocking`
     * flag): 0 or 1 runs the whole pipeline serially on the calling
     * thread (the default); >= 2 runs a real two-stage pipeline — a
     * hardware-side producer thread (DUT + Squash + Pack) overlapped
     * with a software-side consumer thread (Unpack + Complete + Reorder
     * + Check + Replay) over a bounded lock-free SPSC ring. Threaded
     * runs are bit-deterministic with serial ones for the same seed,
     * except for the wall-clock host.* telemetry counters.
     */
    unsigned hostThreads = 0;
    /** SPSC ring depth in cycle bundles (run-ahead bound; power of 2). */
    unsigned hostQueueDepth = 256;

    /** Record a Chrome trace_event timeline of the host pipeline
     *  (ring waits, per-transfer software work); fetch it after run()
     *  with CoSimulator::chromeTraceJson(). */
    bool captureTimeline = false;
    /** Per-thread span capacity when capturing (bounds memory). */
    size_t timelineCapacity = 1 << 16;

    void applyOptLevel(OptLevel level);
};

/** Outcome of one co-simulation run. */
struct CosimResult
{
    bool verified = false; //!< no mismatch detected
    bool goodTrap = false; //!< all cores hit the good trap
    u64 cycles = 0;
    u64 instrs = 0;

    double simSpeedHz = 0;
    link::LinkResult timing;

    checker::MismatchReport mismatch;
    bool replayRan = false;
    bool replayComplete = false;

    // Link health (the resilient channel's verdict).
    /** The channel left nominal operation (fallback engaged or worse). */
    bool linkDegraded = false;
    /** 0 nominal, 1 blocking fallback engaged, 2 failed (run stopped). */
    unsigned linkDegradeLevel = 0;
    link::ChannelReport linkReport;

    // Communication statistics.
    double invokesPerCycle = 0;
    double bytesPerCycle = 0;
    double rawBytesPerInstr = 0; //!< pre-optimization volume (Table 4)
    double fusionRatio = 0;      //!< commits absorbed per flush
    double bubbleFraction = 0;   //!< fixed-offset padding share
    double packetUtilization = 0;

    obs::StatSnapshot counters;

    std::string summary() const;
};

class SharedTables; // cosim/session.h

/** The co-simulation driver. */
class CoSimulator
{
  public:
    CoSimulator(const CosimConfig &config,
                const workload::Program &program);

    /**
     * Campaign-style construction: the workload image and the
     * lint-proven protocol tables are shared immutably across sessions
     * instead of being copied/re-derived per instance (fleet sessions
     * are cheap to re-construct). When @p tables is set, the config is
     * validated against it up front: the packet budget must fit every
     * event and maxFuse must fit the wire format.
     */
    CoSimulator(const CosimConfig &config,
                std::shared_ptr<const workload::Program> program,
                std::shared_ptr<const SharedTables> tables = nullptr);

    ~CoSimulator();

    /** Arm a DUT fault before running. */
    void armFault(const dut::FaultSpec &spec);

    /** Observe the raw monitor stream (trace dumping, paper §5). */
    void
    setMonitorTap(std::function<void(const CycleEvents &)> tap)
    {
        monitorTap_ = std::move(tap);
    }

    /** Observe every event as it reaches the checkers, in checking
     *  order (the chaos equivalence tests digest this stream). Runs on
     *  the software side — the consumer thread in threaded mode. */
    void
    setCheckedTap(std::function<void(const Event &)> tap)
    {
        checkedTap_ = std::move(tap);
    }

    /** Run until trap, mismatch, or @p max_cycles. */
    CosimResult run(u64 max_cycles);

    dut::DutModel &dutModel() { return *dut_; }
    checker::CoreChecker &coreChecker(unsigned core);
    const CosimConfig &config() const { return config_; }

    /** The captured timeline of the last run (empty unless
     *  config.captureTimeline was set). */
    std::string chromeTraceJson() const;

  private:
    // ---- shared hardware-side per-cycle work (either mode) -------------
    /** Squash + stamp + pack one DUT cycle, appending emitted transfers;
     *  applies the idle-flush policy. @p ce may be consumed. */
    void hwPackCycle(CycleEvents &ce, std::vector<Transfer> &out);
    /** Snapshot dut/pack/squash statistics at the current boundary. */
    void snapshotHw(HwStatSnapshot &snap);
    void stampEmissionOrder(CycleEvents &cycle);

    // ---- software-side processing (consumer thread in threaded mode) ---
    void processTransfer(const Transfer &transfer);
    void feedChecker(const Event &event);
    void runReplay(unsigned core);
    bool anyFailed() const;
    bool allGoodTrap() const;

    // ---- run drivers ----------------------------------------------------
    CosimResult runSerial(u64 max_cycles);
    CosimResult runThreaded(u64 max_cycles);
    void hwProducerLoop(u64 max_cycles);
    void swConsumerLoop();
    /** Assemble the CosimResult; @p hw_override replaces the live
     *  dut/pack/squash counters (fatal-bundle snapshot on a threaded
     *  mismatch). */
    CosimResult finishResult(u64 cycles, u64 instrs,
                             const obs::StatSheet *hw_override);

    CosimConfig config_;
    /** Immutable workload image, possibly shared across sessions. */
    std::shared_ptr<const workload::Program> program_;
    /** Shared lint-proven protocol tables (may be null outside fleets). */
    std::shared_ptr<const SharedTables> tables_;

    std::unique_ptr<dut::DutModel> dut_;
    std::unique_ptr<SquashUnit> squash_;
    std::unique_ptr<Packer> packer_;
    std::unique_ptr<Unpacker> unpacker_;
    std::unique_ptr<SquashCompleter> completer_;
    std::unique_ptr<Reorderer> reorderer_;
    std::unique_ptr<replay::ReplayBuffer> replayBuffer_;
    std::unique_ptr<link::LinkSimulator> link_;
    std::unique_ptr<link::ResilientChannel> channel_;
    std::vector<std::unique_ptr<checker::CoreChecker>> checkers_;

    bool replayRan_ = false;
    bool replayComplete_ = false;
    std::vector<u64> emitCounters_;
    std::function<void(const CycleEvents &)> monitorTap_;
    std::function<void(const Event &)> checkedTap_;

    // Hardware-side state shared by both run drivers.
    u64 lastEmitCycle_ = 0;
    CycleEvents squashScratch_; //!< reused Squash output buffer

    // Software-side scratch (single software thread in either mode).
    std::vector<Event> unpackScratch_; //!< reused unpack output
    std::vector<Event> drainScratch_;  //!< reused reorderer drain output
    Transfer linkScratch_;             //!< channel delivery target
    /** The resilient channel failed (degrade level 2): the run stops
     *  with a structured degraded result. Software-side owned; the main
     *  thread reads it after the consumer joins. */
    bool linkFailed_ = false;
    /** The software side's view of "now": the snapshot cycle count of
     *  the bundle being processed (threaded) or dut_->cycles() (serial).
     *  Replay retransmissions are timed against this. */
    u64 swCycle_ = 0;

    // Threaded-mode plumbing (see host_pipeline.h for the contract).
    std::unique_ptr<SpscRing<CycleBundle>> ring_;
    std::atomic<bool> swFailed_{false};   //!< consumer -> producer stop
    std::atomic<bool> swCaughtUp_{false}; //!< consumer passed Barrier
    bool failSnapshotValid_ = false;      //!< consumer-written, read
    HwStatSnapshot failSnapshot_;         //!<   after thread join
    ThreadTelemetry hwTele_;              //!< producer-thread-owned
    ThreadTelemetry swTele_;              //!< consumer-thread-owned

    /** Wall-clock host telemetry (reset at the top of every run()). */
    obs::StatSheet hostSheet_;
    struct
    {
        obs::StatId threads;    //!< gauge
        obs::StatId queueDepth; //!< gauge
        obs::StatId runSec;
        obs::StatId hwLoopSec;
        obs::StatId hwWaitSec;
        obs::StatId hwWaits;
        obs::StatId hwBundles;
        obs::StatId swLoopSec;
        obs::StatId swWaitSec;
        obs::StatId swWaits;
        obs::StatId swBundles;
        obs::HistId ringOccupancy;
    } hostStat_;

    /** Chrome-trace timelines: producer (= caller) and consumer thread.
     *  hwTrace_ doubles as the serial driver's log. */
    obs::TraceLog hwTrace_;
    obs::TraceLog swTrace_;
};

} // namespace dth::cosim

#endif // DTH_COSIM_COSIM_H_
