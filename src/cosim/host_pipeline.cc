/**
 * @file
 * The threaded CoSimulator run driver: a hardware-side producer thread
 * (DUT step + Squash + Pack) overlapped with a software-side consumer
 * thread (Unpack + Complete + Reorder + Check + Replay control) over a
 * bounded SpscRing<CycleBundle>. See host_pipeline.h for the handoff
 * unit and the determinism contract, DESIGN.md §5.6 for the rationale.
 *
 * Thread ownership during a threaded run:
 *   producer only:  dut_, squash_, packer_, emitCounters_,
 *                   lastEmitCycle_, squashScratch_, hwTele_
 *   consumer only:  unpacker_, completer_, reorderer_, checkers_, link_,
 *                   channel_, linkScratch_, linkFailed_, replayBuffer_,
 *                   unpackScratch_, drainScratch_, swCycle_, replayRan_,
 *                   replayComplete_, failSnapshot_, failSnapshotValid_,
 *                   swTele_
 *   shared atomics: the ring, swFailed_, swCaughtUp_
 * The join() in runThreaded orders everything for the main thread's
 * result assembly.
 */

#include <chrono>
#include <thread>
#include <utility>

#include "cosim/cosim.h"

namespace dth::cosim {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

void
CoSimulator::snapshotHw(HwStatSnapshot &snap)
{
    snap.cycles = dut_->cycles();
    snap.instrs = dut_->totalInstrsRetired();
    // reset() zeroes in place; merge() reads the source sheets' own kind
    // bytes, so a reused slot's snapshot neither allocates nor touches
    // the schema lock on the hot path.
    snap.hw.reset();
    snap.hw.merge(dut_->counters());
    snap.hw.merge(packer_->counters());
    if (squash_)
        snap.hw.merge(squash_->counters());
}

void
CoSimulator::hwProducerLoop(u64 max_cycles)
{
    auto t0 = Clock::now();
    auto aborted = [this] {
        return swFailed_.load(std::memory_order_acquire);
    };
    // Claim the next ring slot, blocking on backpressure (full ring =
    // the run-ahead bound is exhausted). nullptr once the consumer has
    // reported a mismatch.
    auto acquire_slot = [&]() -> CycleBundle * {
        CycleBundle *slot = ring_->tryBeginPush();
        if (slot)
            return slot;
        ++hwTele_.waits;
        obs::ScopedSpan span(hwTrace_, "hw_ring_wait");
        auto w0 = Clock::now();
        spscWait(
            [&] { return (slot = ring_->tryBeginPush()) != nullptr; },
            aborted);
        hwTele_.waitSec += secondsSince(w0);
        return slot;
    };

    while (!dut_->done() && dut_->cycles() < max_cycles && !aborted()) {
        CycleBundle *slot = acquire_slot();
        if (!slot)
            break;
        slot->reset(CycleBundle::Kind::Cycle);
        CycleEvents ce = dut_->cycle();
        slot->cycle = ce.cycle;
        if (monitorTap_)
            monitorTap_(ce);
        // Ship the pre-fusion originals to the consumer, which owns the
        // replay buffer. Without Squash the packer path stamps emitSeq
        // into ce.events, so copy first (serial records pre-stamp); with
        // Squash the stamping happens on squashScratch_ and ce survives
        // untouched, so the originals can be moved out afterwards.
        if (replayBuffer_ && !squash_)
            slot->originals = ce.events;
        hwPackCycle(ce, slot->transfers);
        if (replayBuffer_ && squash_)
            slot->originals = std::move(ce.events);
        if (!slot->transfers.empty()) {
            slot->hasSnapshot = true;
            snapshotHw(slot->snapshot);
        }
        ++hwTele_.items;
        ring_->commitPush();
        // Run-ahead depth at each handoff: how full the bounded ring
        // runs in practice (host.* namespace: wall-clock-dependent).
        hostSheet_.observe(hostStat_.ringOccupancy, ring_->size());
    }

    if (aborted()) {
        hwTele_.loopSec = secondsSince(t0);
        return;
    }

    // Barrier handshake: the serial driver only runs the end-of-run
    // drain when no mismatch was found, and the drain mutates squash and
    // packer counters. Learn the consumer's verdict on every main-loop
    // bundle before deciding to emit it.
    CycleBundle *slot = acquire_slot();
    if (slot) {
        slot->reset(CycleBundle::Kind::Barrier);
        ++hwTele_.items;
        ring_->commitPush();
        auto w0 = Clock::now();
        ++hwTele_.waits;
        bool caught_up;
        {
            obs::ScopedSpan span(hwTrace_, "hw_barrier_wait");
            caught_up = spscWait(
                [this] {
                    return swCaughtUp_.load(std::memory_order_acquire);
                },
                aborted);
        }
        hwTele_.waitSec += secondsSince(w0);
        if (caught_up && (slot = acquire_slot()) != nullptr) {
            slot->reset(CycleBundle::Kind::Final);
            slot->cycle = dut_->cycles();
            if (squash_) {
                squash_->finish(squashScratch_);
                stampEmissionOrder(squashScratch_);
                packer_->packCycle(squashScratch_, slot->transfers);
            }
            packer_->flush(slot->transfers);
            slot->hasSnapshot = true;
            snapshotHw(slot->snapshot);
            ++hwTele_.items;
            ring_->commitPush();
        }
    }
    hwTele_.loopSec = secondsSince(t0);
}

void
CoSimulator::swConsumerLoop()
{
    auto t0 = Clock::now();
    for (;;) {
        CycleBundle *bundle = ring_->tryFront();
        if (!bundle) {
            if (ring_->drained())
                break;
            ++swTele_.waits;
            obs::ScopedSpan span(swTrace_, "sw_ring_wait");
            auto w0 = Clock::now();
            spscWait(
                [&] { return (bundle = ring_->tryFront()) != nullptr; },
                [this] { return ring_->drained(); });
            swTele_.waitSec += secondsSince(w0);
            if (!bundle)
                break;
        }

        if (bundle->kind == CycleBundle::Kind::Barrier) {
            // Everything the producer's main loop emitted has been
            // checked without a mismatch; let it drain.
            ring_->pop();
            ++swTele_.items;
            swCaughtUp_.store(true, std::memory_order_release);
            continue;
        }

        if (replayBuffer_) {
            for (const Event &e : bundle->originals)
                replayBuffer_->record(e);
        }
        if (bundle->hasSnapshot)
            swCycle_ = bundle->snapshot.cycles;
        for (const Transfer &t : bundle->transfers)
            processTransfer(t);
        if (bundle->kind == CycleBundle::Kind::Final) {
            // Mirrors the serial drain: release everything still held
            // by the reorderer (feedChecker skips failed checkers).
            drainScratch_.clear();
            reorderer_->drainAllInto(drainScratch_);
            for (Event &e : drainScratch_)
                feedChecker(e);
        }
        ++swTele_.items;

        bool final = bundle->kind == CycleBundle::Kind::Final;
        if (anyFailed() || linkFailed_) {
            // First failure — checker mismatch or resilient-channel
            // death: freeze the hardware statistics at the boundary
            // that emitted the fatal transfer (a failure can only
            // appear on a transfer-carrying bundle, which always has a
            // snapshot) and discard the run-ahead bundles behind this
            // one, exactly as the serial driver never creates them.
            if (bundle->hasSnapshot) {
                failSnapshot_ = bundle->snapshot;
                failSnapshotValid_ = true;
            }
            ring_->pop();
            swFailed_.store(true, std::memory_order_release);
            break;
        }
        ring_->pop();
        if (final)
            break;
    }
    swTele_.loopSec = secondsSince(t0);
}

CosimResult
CoSimulator::runThreaded(u64 max_cycles)
{
    unsigned depth = config_.hostQueueDepth < 2 ? 2 : config_.hostQueueDepth;
    ring_ = std::make_unique<SpscRing<CycleBundle>>(depth);
    swFailed_.store(false, std::memory_order_relaxed);
    swCaughtUp_.store(false, std::memory_order_relaxed);
    failSnapshotValid_ = false;
    hwTele_ = ThreadTelemetry{};
    swTele_ = ThreadTelemetry{};

    auto t0 = Clock::now();
    std::thread software([this] { swConsumerLoop(); });
    hwProducerLoop(max_cycles);
    ring_->close();
    software.join();

    hostSheet_.set(hostStat_.threads, 2);
    hostSheet_.set(hostStat_.queueDepth, ring_->capacity());
    hostSheet_.addReal(hostStat_.runSec, secondsSince(t0));
    hostSheet_.addReal(hostStat_.hwLoopSec, hwTele_.loopSec);
    hostSheet_.addReal(hostStat_.hwWaitSec, hwTele_.waitSec);
    hostSheet_.add(hostStat_.hwWaits, hwTele_.waits);
    hostSheet_.add(hostStat_.hwBundles, hwTele_.items);
    hostSheet_.addReal(hostStat_.swLoopSec, swTele_.loopSec);
    hostSheet_.addReal(hostStat_.swWaitSec, swTele_.waitSec);
    hostSheet_.add(hostStat_.swWaits, swTele_.waits);
    hostSheet_.add(hostStat_.swBundles, swTele_.items);

    if (failSnapshotValid_) {
        return finishResult(failSnapshot_.cycles, failSnapshot_.instrs,
                            &failSnapshot_.hw);
    }
    return finishResult(dut_->cycles(), dut_->totalInstrsRetired(),
                        nullptr);
}

} // namespace dth::cosim
