/**
 * @file
 * The threaded host runtime behind CoSimulator's hostThreads knob: the
 * unit of hardware→software handoff (CycleBundle) and the snapshot that
 * keeps threaded runs bit-deterministic with serial ones.
 *
 * One CycleBundle is produced per DUT cycle by the hardware-side thread
 * (DUT step + Squash + Pack) and consumed in order by the software-side
 * thread (Unpack + Complete + Reorder + Check + Replay control). The
 * bundles travel through a bounded SpscRing<CycleBundle> whose slots are
 * reused in place, so the steady-state handoff allocates nothing; the
 * ring bound is the real run-ahead window (NonBlock's bounded
 * speculative queue), and a full ring is backpressure on the DUT.
 *
 * Determinism contract: a mismatch can only be detected while the
 * software side processes a transfer, and the serial driver stops the
 * DUT at the cycle boundary that emitted the fatal transfer. A threaded
 * producer has already run ahead by then, so every transfer-carrying
 * bundle carries a snapshot of the hardware-side statistics (DUT
 * cycles/instructions and the dut/pack/squash counters) taken at that
 * boundary; on failure the result is assembled from the fatal bundle's
 * snapshot and is bit-identical to the serial run. Wall-clock host.*
 * telemetry is the one documented exception (DESIGN.md §5.6).
 */

#ifndef DTH_COSIM_HOST_PIPELINE_H_
#define DTH_COSIM_HOST_PIPELINE_H_

#include <vector>

#include "event/event.h"
#include "obs/stats.h"
#include "pack/wire.h"

namespace dth::cosim {

/** Hardware-side statistics at one cycle boundary (see file comment). */
struct HwStatSnapshot
{
    u64 cycles = 0; //!< dut_->cycles() after this cycle
    u64 instrs = 0; //!< dut_->totalInstrsRetired() after this cycle
    /** dut + packer + squash counters at this boundary. The sheet is
     *  reset-and-merged in place, so a reused ring slot's snapshot
     *  allocates nothing steady state. */
    obs::StatSheet hw;
};

/**
 * Per-thread wall-clock telemetry, reported as host.* counters in the
 * run result. These are the one documented exception to the threaded ==
 * serial bit-determinism contract.
 */
struct ThreadTelemetry
{
    double loopSec = 0; //!< wall time inside the stage loop
    double waitSec = 0; //!< wall time blocked on the ring
    u64 waits = 0;      //!< blocking episodes (full/empty ring)
    u64 items = 0;      //!< bundles produced/consumed
};

/** One DUT cycle's worth of hardware→software handoff. */
struct CycleBundle
{
    enum class Kind : u8 {
        Cycle,   //!< ordinary per-cycle bundle
        Barrier, //!< producer main loop done; consumer acks catch-up
        Final,   //!< end-of-run drain (squash finish + packet flush)
    };

    Kind kind = Kind::Cycle;
    u64 cycle = 0;
    /** Transfers emitted while packing this cycle (often empty). */
    std::vector<Transfer> transfers;
    /** Original pre-fusion events for the replay buffer (only when
     *  replay is enabled); recorded by the consumer so the replay
     *  buffer stays single-owner and eviction order matches serial. */
    std::vector<Event> originals;
    /** Present on transfer-carrying and Final bundles. */
    bool hasSnapshot = false;
    HwStatSnapshot snapshot;

    /** Reset for slot reuse; keeps vector capacity. */
    void
    reset(Kind k)
    {
        kind = k;
        cycle = 0;
        transfers.clear();
        originals.clear();
        hasSnapshot = false;
    }
};

} // namespace dth::cosim

#endif // DTH_COSIM_HOST_PIPELINE_H_
