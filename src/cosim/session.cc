#include "cosim/session.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace dth::cosim {

namespace {

/** FNV-1a accumulator over heterogeneous fields. */
struct Fnv
{
    u64 hash = 0xCBF29CE484222325ull;

    void
    bytes(const void *data, size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            hash ^= p[i];
            hash *= 0x100000001B3ull;
        }
    }

    void u(u64 v) { bytes(&v, sizeof(v)); }

    void
    str(const char *s)
    {
        // Hash contents, not pointers: the digest must be stable across
        // processes and ASLR.
        bytes(s, s ? std::strlen(s) + 1 : 0);
    }
};

} // namespace

u64
SharedTables::digestOf(const analysis::ProtocolTables &t)
{
    Fnv f;
    f.u(t.numEventTypes);
    f.u(t.numWireTypes);
    for (const EventTypeInfo &e : t.events) {
        f.u(static_cast<u64>(e.type));
        f.str(e.name);
        f.u(e.bytesPerEntry);
        f.u(e.entriesPerCore);
        f.u(e.fusible);
        f.u(e.nde);
        f.u(static_cast<u64>(e.category));
        f.str(e.component);
    }
    f.u(t.eventWireHeaderBytes);
    f.u(t.wireLengthPrefixBytes);
    f.u(t.batchPacketHeaderBytes);
    f.u(t.batchMetaBytes);
    f.u(t.wireOrderTagBits);
    f.u(t.packetBytes);
    f.u(t.maxFuseDepth);
    f.u(t.digestCountBits);
    f.u(t.frameMagic);
    f.u(t.frameHeaderBytes);
    f.u(t.frameTrailerBytes);
    f.u(t.maxFramePayloadBytes);
    f.u(t.retxWindowFrames);
    for (const analysis::MuxSlot &s : t.muxSlots) {
        f.u(s.slot);
        f.u(s.typeId);
        f.u(s.lanes);
        f.u(s.widthBytes);
    }
    for (const analysis::TypeMutation &m : t.refMutations) {
        f.u(m.typeId);
        for (replay::UndoKind k : m.domains)
            f.u(static_cast<u64>(k));
    }
    for (replay::UndoKind k : t.undoKinds)
        f.u(static_cast<u64>(k));
    return f.hash;
}

SharedTables::SharedTables() : tables_(analysis::currentTables())
{
    analysis::LintReport report = analysis::runProtocolLint(tables_);
    dth_assert(report.passed(),
               "shared session tables failed protocol lint: %s",
               report.summary().c_str());
    checksProven_ = report.checksRun;
    digest_ = digestOf(tables_);

    // Largest enabled-event wire cost: header + body (+ variable-length
    // prefix); plus the Batch packet/meta overhead gives the smallest
    // viable packet budget.
    size_t worst_event = 0;
    for (const EventTypeInfo &e : tables_.events) {
        size_t body = e.bytesPerEntry
                          ? e.bytesPerEntry
                          : tables_.wireLengthPrefixBytes + 64;
        worst_event = std::max(worst_event,
                               tables_.eventWireHeaderBytes + body);
    }
    minPacketBytes_ = tables_.batchPacketHeaderBytes +
                      tables_.batchMetaBytes + worst_event;
}

void
SharedTables::assertUnchanged() const
{
    u64 now = digestOf(tables_);
    dth_assert(now == digest_,
               "shared session tables mutated: digest 0x%llx -> 0x%llx "
               "(a concurrent session raced on immutable state)",
               (unsigned long long)digest_, (unsigned long long)now);
}

std::shared_ptr<const SharedTables>
SharedTables::acquire()
{
    static std::mutex mu;
    static std::weak_ptr<const SharedTables> cached;
    std::lock_guard<std::mutex> lock(mu);
    std::shared_ptr<const SharedTables> live = cached.lock();
    if (!live) {
        live = std::make_shared<const SharedTables>();
        cached = live;
    }
    return live;
}

} // namespace dth::cosim
