/**
 * @file
 * Shared immutable per-session constants. A CoSimulator historically
 * captured every protocol table it needed implicitly (the constexpr
 * event table) and copied the rest per instance (the workload image).
 * A verification campaign runs many sessions concurrently on one host,
 * so the per-session constants move into one lint-proven, immutable
 * SharedTables snapshot that every session of the process shares:
 *
 *  - the full analysis::ProtocolTables capture (event table, wire and
 *    Batch layout constants, mux slots, replay coverage, frame
 *    transport bounds), validated ONCE by the dth_lint invariant
 *    catalogue instead of being re-trusted per session;
 *  - a content digest taken at capture time; assertUnchanged()
 *    recomputes it so concurrent sessions (and the fleet scheduler at
 *    campaign teardown) can prove nobody raced on the shared state.
 *
 * Workload Programs are shared the same way: CoSimulator and DutModel
 * accept std::shared_ptr<const workload::Program>, so a campaign that
 * runs the same workload image across many seeds/configs builds it
 * once and constructs sessions cheaply (no image copies).
 */

#ifndef DTH_COSIM_SESSION_H_
#define DTH_COSIM_SESSION_H_

#include <memory>

#include "analysis/protocol_lint.h"

namespace dth::cosim {

/** One lint-proven, immutable protocol-table snapshot shared by every
 *  concurrent session. Thread-safe by construction: all state is set in
 *  the constructor and never written again. */
class SharedTables
{
  public:
    /** Capture the in-tree tables and prove the full invariant
     *  catalogue over them (fatal on any violation: a campaign must not
     *  start on broken tables). */
    SharedTables();

    /** The process-wide instance, created on first use and shared until
     *  the last holder drops it. */
    static std::shared_ptr<const SharedTables> acquire();

    const analysis::ProtocolTables &tables() const { return tables_; }

    /** Content digest taken at capture time (FNV-1a over a canonical
     *  serialization). */
    u64 digest() const { return digest_; }

    /** Invariant checks the validating lint run performed. */
    unsigned checksProven() const { return checksProven_; }

    /** Smallest packetBytes budget that fits every enabled event plus
     *  the Batch header/meta overhead. */
    size_t minPacketBytes() const { return minPacketBytes_; }

    /** Squash fusion-depth ceiling the wire format supports. */
    unsigned maxFuseDepth() const { return tables_.maxFuseDepth; }

    /** Recompute the digest over the live tables and panic on any
     *  difference: proof that no concurrent session mutated the shared
     *  snapshot. */
    void assertUnchanged() const;

    /** Canonical content digest of @p tables. */
    static u64 digestOf(const analysis::ProtocolTables &tables);

  private:
    analysis::ProtocolTables tables_;
    u64 digest_ = 0;
    unsigned checksProven_ = 0;
    size_t minPacketBytes_ = 0;
};

} // namespace dth::cosim

#endif // DTH_COSIM_SESSION_H_
