#include "dut/config.h"

namespace dth::dut {

unsigned
DutConfig::enabledEventTypes() const
{
    unsigned n = 0;
    for (bool e : eventEnabled)
        n += e ? 1 : 0;
    return n;
}

namespace {

std::array<bool, kNumEventTypes>
allEvents()
{
    std::array<bool, kNumEventTypes> e{};
    e.fill(true);
    return e;
}

} // namespace

DutConfig
nutshellConfig()
{
    DutConfig c;
    c.name = "NutShell";
    c.cores = 1;
    c.commitWidth = 1;
    c.gatesMillions = 0.6;
    c.commitCycleProb = 0.55;
    c.fullRegState = false; // reg state only on traps
    // Paper Table 4: NutShell monitors 6 event types. MmioEvent is one of
    // them so the REF can synchronize device reads.
    c.eventEnabled[static_cast<unsigned>(EventType::InstrCommit)] = true;
    c.eventEnabled[static_cast<unsigned>(EventType::Trap)] = true;
    c.eventEnabled[static_cast<unsigned>(EventType::ArchEvent)] = true;
    c.eventEnabled[static_cast<unsigned>(EventType::ArchIntRegState)] = true;
    c.eventEnabled[static_cast<unsigned>(EventType::CsrState)] = true;
    c.eventEnabled[static_cast<unsigned>(EventType::MmioEvent)] = true;
    c.l1dSets = 32;
    c.l1dWays = 2;
    c.sbufferThreshold = 0; // no store buffer monitor
    return c;
}

DutConfig
xsMinimalConfig()
{
    DutConfig c;
    c.name = "XiangShan (Minimal)";
    c.cores = 1;
    c.commitWidth = 2;
    c.gatesMillions = 39.4;
    c.commitCycleProb = 0.52;
    c.fullRegState = true;
    // The 2-wide configuration samples the register-state monitors at a
    // lower rate, matching its smaller per-instruction verification
    // volume (paper Table 4).
    c.regStateInterval = 3;
    c.eventEnabled = allEvents();
    c.l1dSets = 32;
    c.l1dWays = 4;
    c.l2Sets = 256;
    c.extIrqInterval = 40000;
    return c;
}

DutConfig
xsDefaultConfig()
{
    DutConfig c;
    c.name = "XiangShan (Default)";
    c.cores = 1;
    c.commitWidth = 6;
    c.gatesMillions = 57.6;
    c.commitCycleProb = 0.34; // ~1.2 IPC with E[k|commit] ~ 3.5
    c.fullRegState = true;
    c.eventEnabled = allEvents();
    c.extIrqInterval = 40000;
    return c;
}

DutConfig
xsDualConfig()
{
    DutConfig c = xsDefaultConfig();
    c.name = "XiangShan (Default, 2C)";
    c.cores = 2;
    c.gatesMillions = 111.8;
    return c;
}

std::array<DutConfig, 4>
allDutConfigs()
{
    return {nutshellConfig(), xsMinimalConfig(), xsDefaultConfig(),
            xsDualConfig()};
}

} // namespace dth::dut
