/**
 * @file
 * DUT configurations (paper Table 3/4): NutShell (scalar in-order),
 * XiangShan Minimal (2-wide OoO), XiangShan Default (6-wide OoO), and the
 * dual-core XiangShan Default. A configuration fixes the commit width,
 * the enabled verification-event set, the microarchitectural texture
 * rates and the gate count used by the area/Verilator models.
 */

#ifndef DTH_DUT_CONFIG_H_
#define DTH_DUT_CONFIG_H_

#include <array>
#include <string>

#include "event/event_type.h"

namespace dth::dut {

/** Static description of a DUT configuration. */
struct DutConfig
{
    std::string name;
    unsigned cores = 1;
    unsigned commitWidth = 1;
    /** Logic scale in million gates (paper Table 4). */
    double gatesMillions = 1.0;
    /** Probability a cycle commits at least one instruction. */
    double commitCycleProb = 0.5;

    /** Emit the full register-update family every commit cycle. */
    bool fullRegState = true;
    /** Emit the register-update family every Nth commit cycle. */
    unsigned regStateInterval = 1;
    /** Which of the 32 event types this DUT's monitors cover. */
    std::array<bool, kNumEventTypes> eventEnabled{};

    // Microarchitectural texture rates (events per cycle per core).
    double l1dSets = 64, l1dWays = 4;
    double l1iSets = 64, l1iWays = 4;
    double l2Sets = 512, l2Ways = 8;
    double tlbEntries = 32;
    double l2TlbEntries = 256;
    /** Store-buffer flush threshold (stores per flush). */
    unsigned sbufferThreshold = 8;
    /** External-interrupt pulse interval in cycles (0 = never). */
    u64 extIrqInterval = 0;

    unsigned enabledEventTypes() const;
    bool enabled(EventType t) const
    {
        return eventEnabled[static_cast<unsigned>(t)];
    }
};

/** NutShell: scalar in-order, 0.6 M gates, 6 event types. */
DutConfig nutshellConfig();

/** XiangShan Minimal: 2-wide OoO, 39.4 M gates, 32 event types. */
DutConfig xsMinimalConfig();

/** XiangShan Default: 6-wide OoO, 57.6 M gates, 32 event types. */
DutConfig xsDefaultConfig();

/** XiangShan Default dual-core: 111.8 M gates. */
DutConfig xsDualConfig();

/** All four paper configurations, smallest first. */
std::array<DutConfig, 4> allDutConfigs();

} // namespace dth::dut

#endif // DTH_DUT_CONFIG_H_
