#include "dut/dut.h"

#include "common/bits.h"
#include "common/logging.h"

namespace dth::dut {

using riscv::StepResult;

DutModel::CoreCtx::CoreCtx(const riscv::CoreConfig &cc, const DutConfig &dc)
    : soc(cc),
      l1d(static_cast<unsigned>(dc.l1dSets),
          static_cast<unsigned>(dc.l1dWays)),
      l1i(static_cast<unsigned>(dc.l1iSets),
          static_cast<unsigned>(dc.l1iWays)),
      l2(static_cast<unsigned>(dc.l2Sets), static_cast<unsigned>(dc.l2Ways)),
      l1tlb(static_cast<unsigned>(dc.tlbEntries)),
      l2tlb(static_cast<unsigned>(dc.l2TlbEntries)),
      sbuf(dc.sbufferThreshold)
{}

DutModel::DutModel(const DutConfig &config, const workload::Program &program,
                   u64 seed)
    : DutModel(config,
               std::make_shared<const workload::Program>(program), seed)
{}

DutModel::DutModel(const DutConfig &config,
                   std::shared_ptr<const workload::Program> program_arg,
                   u64 seed)
    : config_(config), program_(std::move(program_arg)), rng_(seed)
{
    dth_assert(program_ != nullptr, "null workload program");
    const workload::Program &program = *program_;
    stat_.events = counters_.sum("dut.events");
    stat_.bytes = counters_.sum("dut.bytes");
    stat_.instrs = counters_.sum("dut.instrs");
    for (unsigned c = 0; c < config_.cores; ++c) {
        riscv::CoreConfig cc;
        cc.resetPc = program.base;
        cc.autoInterrupts = true;
        cc.spuriousScFailRate =
            config_.enabled(EventType::LrScEvent) ? 0.03 : 0.0;
        cc.rngSeed = seed + 101 * c + 7;
        cc.hartId = c;
        auto ctx = std::make_unique<CoreCtx>(cc, config_);
        ctx->soc.bus.ram().load(program.base, program.image.data(),
                                program.image.size());
        ctxs_.push_back(std::move(ctx));
    }
}

bool
DutModel::done() const
{
    for (const auto &ctx : ctxs_)
        if (!ctx->done)
            return false;
    return true;
}

u64
DutModel::instrsRetired(unsigned core) const
{
    return ctxs_[core]->soc.core.seqNo();
}

u64
DutModel::totalInstrsRetired() const
{
    u64 n = 0;
    for (const auto &ctx : ctxs_)
        n += ctx->soc.core.seqNo();
    return n;
}

void
DutModel::armFault(const FaultSpec &spec)
{
    dth_assert(fault_.archetype == BugArchetype::None,
               "only one fault per run");
    fault_ = spec;
}

bool
DutModel::faultArmedFor(BugArchetype a, unsigned core_id, u64 seq) const
{
    return fault_.archetype == a && !faultOutcome_.fired &&
           fault_.core == core_id && seq >= fault_.triggerSeq;
}

void
DutModel::markFired(u64 seq, const std::string &what)
{
    faultOutcome_.fired = true;
    faultOutcome_.firedSeq = seq;
    faultOutcome_.firedCycle = cycle_;
    faultOutcome_.description = what;
}

void
DutModel::push(CycleEvents &out, Event event)
{
    if (!config_.enabled(event.type))
        return;
    counters_.add(stat_.events);
    counters_.add(stat_.bytes, event.wireBytes());
    out.events.push_back(std::move(event));
}

CycleEvents
DutModel::cycle()
{
    CycleEvents out;
    out.cycle = cycle_;
    for (unsigned c = 0; c < config_.cores; ++c)
        cycleCore(c, out);
    ++cycle_;
    return out;
}

void
DutModel::cycleCore(unsigned core_id, CycleEvents &out)
{
    CoreCtx &ctx = *ctxs_[core_id];
    if (ctx.done)
        return;
    ctx.soc.clint.tick();
    if (config_.extIrqInterval > 0 &&
        cycle_ % config_.extIrqInterval == config_.extIrqInterval - 1) {
        ctx.soc.core.setExternalInterrupt(true);
    }

    unsigned target = 0;
    if (rng_.chance(config_.commitCycleProb))
        target = 1 + static_cast<unsigned>(
                         rng_.nextBelow(config_.commitWidth));

    unsigned committed = 0;
    bool vecThisCycle = false;
    bool interruptThisCycle = false;
    while (committed < target && !ctx.done) {
        emitTexture(core_id, ctx.soc.core.pc(), true, out);
        StepResult r = ctx.soc.core.step();

        if (r.interrupt) {
            interruptThisCycle = true;
            ctx.soc.core.setExternalInterrupt(false);
            u64 seq = ctx.soc.core.seqNo();
            if (faultArmedFor(BugArchetype::LostInterrupt, core_id, seq)) {
                markFired(seq, "suppressed interrupt ArchEvent");
            } else {
                Event e = Event::make(EventType::ArchEvent,
                                      static_cast<u8>(core_id), 0, seq);
                ArchEventView v(e);
                v.set_kind(1);
                v.set_cause(r.cause);
                v.set_exceptionPc(r.pc);
                v.set_seqNo(seq);
                push(out, std::move(e));
                if (r.cause == riscv::kIntExternal) {
                    Event aia = Event::make(EventType::AiaEvent,
                                            static_cast<u8>(core_id), 0,
                                            seq);
                    storeU64(aia.payload, 0, r.cause);
                    storeU64(aia.payload, 8, seq);
                    push(out, std::move(aia));
                }
            }
            if (faultArmedFor(BugArchetype::CsrCorruption, core_id, seq)) {
                ctx.soc.core.writeCsr(riscv::kCsrMepc,
                                      ctx.soc.core.csrs().mepc ^
                                          fault_.xorMask);
                markFired(seq, "corrupted mepc on interrupt entry");
            }
            break; // redirect consumes the remaining commit slots
        }

        if (r.halted) {
            Event e = Event::make(EventType::Trap, static_cast<u8>(core_id),
                                  0, r.seqNo);
            TrapView v(e);
            v.set_hasTrap(1);
            v.set_pc(r.pc);
            v.set_code(r.haltCode);
            v.set_cycle(cycle_);
            v.set_instrCount(ctx.soc.core.seqNo());
            push(out, std::move(e));
            ctx.done = true;
            break;
        }

        // Fault hooks that alter the retired result / DUT state.
        if (maybeCorruptRd(core_id, r))
            markFired(r.seqNo, "corrupted rd writeback value");
        if (r.exception &&
            faultArmedFor(BugArchetype::CsrCorruption, core_id, r.seqNo)) {
            maybeCorruptTrapCsr(core_id, r);
            markFired(r.seqNo, "corrupted mepc on exception entry");
        }
        if (maybeCorruptStore(core_id, r))
            markFired(r.seqNo, "flipped bit behind a committed store");
        if (maybeCorruptVector(core_id, r))
            markFired(r.seqNo, "flipped a vector register lane");

        // NDE oracles (MMIO values, SC outcomes) must precede the commit
        // they synchronize on the wire, so the REF sees them before it
        // executes the tagged instruction.
        emitMemEvents(core_id, r, out);
        emitCommit(core_id, r, committed, out);

        if (r.exception) {
            Event e = Event::make(EventType::ArchEvent,
                                  static_cast<u8>(core_id), 0, r.seqNo);
            ArchEventView v(e);
            v.set_kind(2);
            v.set_cause(r.cause);
            v.set_exceptionPc(r.pc);
            v.set_exceptionInst(r.instr);
            v.set_seqNo(r.seqNo);
            push(out, std::move(e));
        }

        if (r.isBranch) {
            Event e = Event::make(EventType::BranchEvent,
                                  static_cast<u8>(core_id),
                                  static_cast<u8>(committed), r.seqNo);
            storeU64(e.payload, 0, r.pc);
            storeU64(e.payload, 8, r.branchTaken);
            storeU64(e.payload, 16, r.nextPc);
            storeU64(e.payload, 24, r.seqNo);
            push(out, std::move(e));
            if (rng_.chance(0.01)) {
                Event ra = Event::make(EventType::RunaheadEvent,
                                       static_cast<u8>(core_id), 0,
                                       r.seqNo);
                storeU64(ra.payload, 0, r.pc);
                storeU64(ra.payload, 8, r.seqNo);
                push(out, std::move(ra));
            }
        }

        if (r.vecWen) {
            vecThisCycle = true;
            ctx.vecTouched = true;
            Event e = Event::make(EventType::VecWriteback,
                                  static_cast<u8>(core_id),
                                  static_cast<u8>(committed), r.seqNo);
            storeU64(e.payload, 0, r.vrd);
            storeU64(e.payload, 8, r.vecVal[0]);
            storeU64(e.payload, 16, r.vecVal[1]);
            storeU64(e.payload, 24, r.seqNo);
            push(out, std::move(e));
        }
        if (r.isVecConfig) {
            Event e = Event::make(EventType::VtypeEvent,
                                  static_cast<u8>(core_id), 0, r.seqNo);
            VtypeView v(e);
            v.set_vtype(ctx.soc.core.csrs().vtype);
            v.set_vl(ctx.soc.core.csrs().vl);
            v.set_seqNo(r.seqNo);
            push(out, std::move(e));
        }

        ++committed;
    }

    emitPendingLineEvents(core_id, out);

    // A mid-cycle interrupt redirect leaves the architectural state
    // post-trap; a snapshot would be tagged with the pre-trap order tag
    // and mismatch. Real monitors gate the snapshot the same way.
    if (committed > 0)
        ++ctx.commitCycles;
    if (committed > 0 && config_.fullRegState && !interruptThisCycle &&
        ctx.commitCycles % std::max(1u, config_.regStateInterval) == 0) {
        emitRegState(core_id, out);
    }
    if (vecThisCycle && !interruptThisCycle &&
        config_.enabled(EventType::ArchVecRegState)) {
        CoreCtx &cc = *ctxs_[core_id];
        Event e = Event::make(EventType::ArchVecRegState,
                              static_cast<u8>(core_id), 0,
                              cc.soc.core.seqNo());
        VecRegView v(e);
        v.set_vstart(cc.soc.core.csrs().vstart);
        v.set_vl(cc.soc.core.csrs().vl);
        v.set_vtype(cc.soc.core.csrs().vtype);
        for (unsigned reg = 0; reg < riscv::kNumVregs; ++reg)
            for (unsigned lane = 0; lane < riscv::kVLanes64; ++lane)
                v.setLane(reg, lane, cc.soc.core.vregLane(reg, lane));
        push(out, std::move(e));
    }
    counters_.add(stat_.instrs, committed);
}

void
DutModel::emitCommit(unsigned core_id, const StepResult &r, unsigned slot,
                     CycleEvents &out)
{
    bool mmio_touch = false;
    for (unsigned i = 0; i < r.memCount; ++i)
        mmio_touch |= r.mem[i].valid && r.mem[i].mmio;

    Event e = Event::make(EventType::InstrCommit, static_cast<u8>(core_id),
                          static_cast<u8>(slot), r.seqNo);
    InstrCommitView v(e);
    v.set_pc(r.pc);
    v.set_instr(r.instr);
    v.set_rdVal(r.rdVal);
    v.set_seqNo(r.seqNo);
    v.set_rd(r.rd);
    v.set_rfWen(r.rfWen ? 1 : 0);
    v.set_fpWen(r.fpWen ? 1 : 0);
    v.set_vecWen(r.vecWen ? 1 : 0);
    v.set_isLoad(r.memCount > 0 && !r.mem[0].store ? 1 : 0);
    v.set_isStore(r.memCount > 0 && r.mem[0].store ? 1 : 0);
    v.set_isBranch(r.isBranch ? 1 : 0);
    v.set_taken(r.branchTaken ? 1 : 0);
    v.set_frd(r.frd);
    v.set_vrd(r.vrd);
    v.set_frdVal(r.frdVal);
    v.set_nextPc(r.nextPc);
    // When the MMIO event stream is not monitored (small DUTs), the REF
    // cannot synchronize device values; DiffTest-style "skip" tells the
    // checker to copy the DUT value instead of comparing.
    bool can_sync = config_.enabled(EventType::MmioEvent);
    v.set_skip(mmio_touch && !can_sync ? 1 : 0);
    push(out, std::move(e));
}

void
DutModel::emitMemEvents(unsigned core_id, const StepResult &r,
                        CycleEvents &out)
{
    CoreCtx &ctx = *ctxs_[core_id];
    u8 cid = static_cast<u8>(core_id);

    if (r.scEvent) {
        Event e = Event::make(EventType::LrScEvent, cid, 0, r.seqNo);
        LrScView v(e);
        v.set_addr(r.memCount ? r.mem[0].addr : 0);
        v.set_success(r.scSuccess ? 1 : 0);
        v.set_seqNo(r.seqNo);
        push(out, std::move(e));
    }

    bool atomic = false;
    for (unsigned i = 0; i < r.memCount; ++i)
        atomic |= r.mem[i].atomic;
    if (atomic && !r.scEvent && r.memCount >= 1) {
        const auto &m0 = r.mem[0];
        Event e = Event::make(EventType::AtomicEvent, cid, 0, r.seqNo);
        AtomicView v(e);
        v.set_addr(m0.addr);
        v.set_loadedValue(m0.data);
        v.set_storedValue(r.memCount > 1 ? r.mem[1].data : 0);
        v.set_mask(byteMask(1u << m0.sizeLog2));
        v.set_seqNo(r.seqNo);
        push(out, std::move(e));
    }

    u8 load_slot = 0, store_slot = 0;
    for (unsigned i = 0; i < r.memCount; ++i) {
        const riscv::MemAccessInfo &m = r.mem[i];
        if (!m.valid)
            continue;
        if (m.mmio) {
            Event e = Event::make(EventType::MmioEvent, cid,
                                  static_cast<u8>(i), r.seqNo);
            MmioView v(e);
            v.set_addr(m.addr);
            v.set_data(m.data);
            v.set_seqNo(r.seqNo);
            v.set_isLoad(m.store ? 0 : 1);
            v.set_size(m.sizeLog2);
            push(out, std::move(e));
            if (m.store &&
                m.addr == riscv::kUartBase + riscv::kUartData) {
                Event io = Event::make(EventType::UartIoEvent, cid, 0,
                                       r.seqNo);
                UartIoView uv(io);
                uv.set_ch(m.data);
                uv.set_flags(1);
                push(out, std::move(io));
            }
            continue;
        }

        emitTexture(core_id, m.addr, false, out);

        if (m.store) {
            Event e = Event::make(EventType::StoreEvent, cid, store_slot++,
                                  r.seqNo);
            StoreView v(e);
            v.set_addr(m.addr);
            v.set_data(m.data);
            v.set_mask(byteMask(1u << m.sizeLog2));
            v.set_seqNo(r.seqNo);
            v.set_size(m.sizeLog2);
            push(out, std::move(e));
            u64 flushed = 0;
            if (ctx.sbuf.store(m.addr, &flushed))
                pendingFlushes_.push_back(flushed);
        } else if (!m.atomic) {
            Event e = Event::make(EventType::LoadEvent, cid, load_slot++,
                                  r.seqNo);
            LoadView v(e);
            v.set_paddr(m.addr);
            v.set_vaddr(m.addr);
            v.set_data(m.data);
            v.set_seqNo(r.seqNo);
            v.set_size(m.sizeLog2);
            v.set_isMmio(0);
            push(out, std::move(e));
        }
    }
}

void
DutModel::emitTexture(unsigned core_id, u64 addr, bool is_fetch,
                      CycleEvents &out)
{
    CoreCtx &ctx = *ctxs_[core_id];
    if (!ctx.soc.bus.isRam(addr))
        return;
    (void)out;
    if (is_fetch) {
        if (!ctx.l1i.access(addr)) {
            pendingRefills_.emplace_back(EventType::L1IRefill,
                                         ctx.l1i.lineAddr(addr));
            if (!ctx.l2.access(addr))
                pendingRefills_.emplace_back(EventType::L2Refill,
                                             ctx.l2.lineAddr(addr));
        }
        return;
    }

    u64 seq = ctx.soc.core.seqNo();
    if (!ctx.l1tlb.access(addr)) {
        Event e = Event::make(EventType::L1TlbEvent,
                              static_cast<u8>(core_id), 0, seq);
        TlbView v(e);
        v.set_vpn(addr >> 12);
        v.set_ppn(addr >> 12);
        v.set_perm(0xF);
        v.set_level(1);
        push(out, std::move(e));
        if (!ctx.l2tlb.access(addr)) {
            Event e2 = Event::make(EventType::L2TlbEvent,
                                   static_cast<u8>(core_id), 0, seq);
            TlbView v2(e2);
            v2.set_vpn(addr >> 12);
            v2.set_ppn(addr >> 12);
            v2.set_perm(0xF);
            v2.set_level(2);
            push(out, std::move(e2));
            Event ptw = Event::make(EventType::GuestPtwEvent,
                                    static_cast<u8>(core_id), 0, seq);
            storeU64(ptw.payload, 0, addr >> 12);
            storeU64(ptw.payload, 8, seq);
            push(out, std::move(ptw));
        }
    }
    if (!ctx.l1d.access(addr)) {
        pendingRefills_.emplace_back(EventType::L1DRefill,
                                     ctx.l1d.lineAddr(addr));
        if (!ctx.l2.access(addr))
            pendingRefills_.emplace_back(EventType::L2Refill,
                                         ctx.l2.lineAddr(addr));
    }
}

void
DutModel::emitPendingLineEvents(unsigned core_id, CycleEvents &out)
{
    CoreCtx &ctx = *ctxs_[core_id];
    for (const auto &[type, line] : pendingRefills_)
        emitRefill(core_id, type, line, out);
    pendingRefills_.clear();
    for (u64 flushed : pendingFlushes_) {
        if (!config_.enabled(EventType::SbufferEvent))
            continue;
        Event sb = Event::make(EventType::SbufferEvent,
                               static_cast<u8>(core_id), 0,
                               ctx.soc.core.seqNo());
        SbufferView sv(sb);
        sv.set_addr(flushed);
        sv.set_mask(~0ULL);
        for (unsigned w = 0; w < 8; ++w)
            sv.setDataWord(w, ctx.soc.bus.ram().read(flushed + 8 * w, 8));
        push(out, std::move(sb));
    }
    pendingFlushes_.clear();
}

void
DutModel::emitRefill(unsigned core_id, EventType type, u64 line_addr,
                     CycleEvents &out)
{
    CoreCtx &ctx = *ctxs_[core_id];
    Event e = Event::make(type, static_cast<u8>(core_id), 0,
                          ctx.soc.core.seqNo());
    RefillView v(e);
    v.set_addr(line_addr);
    for (unsigned w = 0; w < 8; ++w)
        v.setLineWord(w, ctx.soc.bus.ram().read(line_addr + 8 * w, 8));
    v.set_way(0);
    v.set_setIndex(ctx.l1d.setIndexOf(line_addr));
    if (type == EventType::L1DRefill &&
        faultArmedFor(BugArchetype::RefillCorruption, core_id,
                      ctx.soc.core.seqNo())) {
        v.setLineWord(0, v.lineWord(0) ^ fault_.xorMask);
        markFired(ctx.soc.core.seqNo(), "corrupted L1D refill line data");
    }
    push(out, std::move(e));
}

void
DutModel::emitRegState(unsigned core_id, CycleEvents &out)
{
    CoreCtx &ctx = *ctxs_[core_id];
    riscv::Core &core = ctx.soc.core;
    u8 cid = static_cast<u8>(core_id);
    u64 seq = core.seqNo();

    {
        Event e = Event::make(EventType::ArchIntRegState, cid, 0, seq);
        RegFileView v(e);
        for (unsigned i = 0; i < 32; ++i)
            v.setReg(i, core.xreg(i));
        push(out, std::move(e));
    }
    {
        Event e = Event::make(EventType::ArchFpRegState, cid, 0, seq);
        RegFileView v(e);
        for (unsigned i = 0; i < 32; ++i)
            v.setReg(i, core.freg(i));
        push(out, std::move(e));
    }
    {
        Event e = Event::make(EventType::CsrState, cid, 0, seq);
        CsrStateView v(e);
        const riscv::CsrFile &c = core.csrs();
        v.setCsr(CsrSlot::PrivilegeMode, c.priv);
        v.setCsr(CsrSlot::Mstatus, c.mstatus);
        v.setCsr(CsrSlot::Misa, c.misa);
        v.setCsr(CsrSlot::Mie, c.mie);
        v.setCsr(CsrSlot::Mtvec, c.mtvec);
        v.setCsr(CsrSlot::Mscratch, c.mscratch);
        v.setCsr(CsrSlot::Mepc, c.mepc);
        v.setCsr(CsrSlot::Mcause, c.mcause);
        v.setCsr(CsrSlot::Mtval, c.mtval);
        v.setCsr(CsrSlot::Minstret, c.minstret);
        v.setCsr(CsrSlot::Satp, c.satp);
        v.setCsr(CsrSlot::Medeleg, c.medeleg);
        v.setCsr(CsrSlot::Mideleg, c.mideleg);
        v.setCsr(CsrSlot::Stvec, c.stvec);
        v.setCsr(CsrSlot::Sscratch, c.sscratch);
        v.setCsr(CsrSlot::Sepc, c.sepc);
        v.setCsr(CsrSlot::Scause, c.scause);
        v.setCsr(CsrSlot::Stval, c.stval);
        v.setCsr(CsrSlot::Mhartid, c.mhartid);
        push(out, std::move(e));
    }
    {
        Event e = Event::make(EventType::FpCsrState, cid, 0, seq);
        FpCsrView v(e);
        v.set_fcsr(core.csrs().fcsr);
        push(out, std::move(e));
    }
    // Hypervisor/debug/trigger CSR monitors exist on XiangShan but the
    // workloads never touch them; their snapshots are constant zero.
    push(out, Event::make(EventType::HCsrState, cid, 0, seq));
    push(out, Event::make(EventType::DebugCsrState, cid, 0, seq));
    push(out, Event::make(EventType::TriggerCsrState, cid, 0, seq));
    {
        Event e = Event::make(EventType::VecCsrState, cid, 0, seq);
        VecCsrView v(e);
        const riscv::CsrFile &c = core.csrs();
        v.set_vstart(c.vstart);
        v.set_vxsat(c.vxsat);
        v.set_vxrm(c.vxrm);
        v.set_vcsr((c.vxrm << 1) | c.vxsat);
        u64 vl = c.vl;
        // A vector-config monitor bug corrupts every snapshot from the
        // trigger point on (a transient corruption in a mid-window
        // snapshot would be dropped by Squash, as in real hardware).
        if (fault_.archetype == BugArchetype::VtypeCorruption &&
            fault_.core == core_id && seq >= fault_.triggerSeq) {
            vl ^= fault_.xorMask;
            if (!faultOutcome_.fired)
                markFired(seq, "VecCsr events report wrong vl");
        }
        v.set_vl(vl);
        v.set_vtype(c.vtype);
        v.set_vlenb(riscv::kVlenBits / 8);
        push(out, std::move(e));
    }
}

bool
DutModel::maybeCorruptRd(unsigned core_id, StepResult &r)
{
    if (!faultArmedFor(BugArchetype::WrongRdValue, core_id, r.seqNo) ||
        !r.rfWen) {
        return false;
    }
    riscv::Core &core = ctxs_[core_id]->soc.core;
    u64 bad = r.rdVal ^ fault_.xorMask;
    core.setXReg(r.rd, bad);
    r.rdVal = bad;
    return true;
}

bool
DutModel::maybeCorruptTrapCsr(unsigned core_id, const StepResult &)
{
    riscv::Core &core = ctxs_[core_id]->soc.core;
    core.writeCsr(riscv::kCsrMepc, core.csrs().mepc ^ fault_.xorMask);
    return true;
}

bool
DutModel::maybeCorruptStore(unsigned core_id, const StepResult &r)
{
    if (!faultArmedFor(BugArchetype::StoreDataCorruption, core_id, r.seqNo))
        return false;
    for (unsigned i = 0; i < r.memCount; ++i) {
        const riscv::MemAccessInfo &m = r.mem[i];
        if (m.valid && m.store && !m.mmio) {
            riscv::PhysMem &ram = ctxs_[core_id]->soc.bus.ram();
            unsigned nbytes = 1u << m.sizeLog2;
            u64 cur = ram.read(m.addr, nbytes);
            ram.write(m.addr, nbytes, cur ^ (fault_.xorMask & 0xFF));
            return true;
        }
    }
    return false;
}

bool
DutModel::maybeCorruptVector(unsigned core_id, StepResult &r)
{
    if (!faultArmedFor(BugArchetype::VectorLaneCorruption, core_id,
                       r.seqNo) ||
        !r.vecWen) {
        return false;
    }
    riscv::Core &core = ctxs_[core_id]->soc.core;
    u64 bad = core.vregLane(r.vrd, 0) ^ fault_.xorMask;
    core.setVRegLane(r.vrd, 0, bad);
    r.vecVal[0] = bad;
    return true;
}

} // namespace dth::dut
