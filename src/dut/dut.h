/**
 * @file
 * The DUT model: stands in for the XiangShan/NutShell RTL running on an
 * emulator or FPGA. Each core wraps a private RISC-V core (the same ISA
 * semantics as the REF) in a cycle-driven commit-stage model with
 * monitor probes that emit the full verification-event stream, plus
 * cache/TLB/store-buffer texture and device-driven non-determinism
 * (CLINT timer, external interrupt pulses, UART jitter, spurious SC
 * failures). A FaultInjector can introduce the paper's bug archetypes.
 *
 * In a multi-core configuration each core runs a private memory image of
 * the workload (cores do not share memory), so per-core checking against
 * a per-core REF stays exact; cross-core coherence traffic is
 * represented by the L2 refill texture. See DESIGN.md §2.
 */

#ifndef DTH_DUT_DUT_H_
#define DTH_DUT_DUT_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "dut/config.h"
#include "dut/fault.h"
#include "dut/texture.h"
#include "event/event.h"
#include "event/payloads.h"
#include "obs/stats.h"
#include "riscv/core.h"
#include "workload/program.h"

namespace dth::dut {

/** The emulated design under test. */
class DutModel
{
  public:
    DutModel(const DutConfig &config, const workload::Program &program,
             u64 seed = 0xD07);

    /** Campaign-style construction: the workload image is shared
     *  immutably with other sessions instead of copied per DUT. */
    DutModel(const DutConfig &config,
             std::shared_ptr<const workload::Program> program,
             u64 seed = 0xD07);

    /** Advance one hardware cycle; returns the cycle's events. */
    CycleEvents cycle();

    /** All cores have hit their trap instruction. */
    bool done() const;

    u64 cycles() const { return cycle_; }
    u64 instrsRetired(unsigned core = 0) const;
    u64 totalInstrsRetired() const;

    /** Arm a fault; at most one per run. */
    void armFault(const FaultSpec &spec);
    const FaultOutcome &faultOutcome() const { return faultOutcome_; }

    const DutConfig &config() const { return config_; }
    riscv::Core &core(unsigned i) { return ctxs_[i]->soc.core; }
    const workload::Program &program() const { return *program_; }
    obs::StatSheet &counters() { return counters_; }

  private:
    struct CoreCtx
    {
        explicit CoreCtx(const riscv::CoreConfig &cc, const DutConfig &dc);

        riscv::Soc soc;
        CacheModel l1d;
        CacheModel l1i;
        CacheModel l2;
        TlbModel l1tlb;
        TlbModel l2tlb;
        SbufferModel sbuf;
        bool done = false;
        bool vecTouched = false;
        u64 commitCycles = 0;
    };

    void cycleCore(unsigned core_id, CycleEvents &out);
    void emitPendingLineEvents(unsigned core_id, CycleEvents &out);
    void emitCommit(unsigned core_id, const riscv::StepResult &r,
                    unsigned slot, CycleEvents &out);
    void emitMemEvents(unsigned core_id, const riscv::StepResult &r,
                       CycleEvents &out);
    void emitRegState(unsigned core_id, CycleEvents &out);
    void emitRefill(unsigned core_id, EventType type, u64 line_addr,
                    CycleEvents &out);
    void emitTexture(unsigned core_id, u64 addr, bool is_fetch,
                     CycleEvents &out);
    void push(CycleEvents &out, Event event);

    // Fault hooks; each returns true if the fault fired here.
    bool maybeCorruptRd(unsigned core_id, riscv::StepResult &r);
    bool maybeCorruptTrapCsr(unsigned core_id, const riscv::StepResult &r);
    bool maybeCorruptStore(unsigned core_id, const riscv::StepResult &r);
    bool maybeCorruptVector(unsigned core_id, riscv::StepResult &r);
    bool faultArmedFor(BugArchetype a, unsigned core_id, u64 seq) const;
    void markFired(u64 seq, const std::string &what);

    DutConfig config_;
    std::shared_ptr<const workload::Program> program_;
    Rng rng_;
    std::vector<std::unique_ptr<CoreCtx>> ctxs_;
    u64 cycle_ = 0;

    FaultSpec fault_;
    FaultOutcome faultOutcome_;

    // Memory-content texture events (refills, store-buffer flushes) are
    // deferred to the end of the cycle so their order tag matches the
    // memory state their payload was captured at.
    std::vector<std::pair<EventType, u64>> pendingRefills_;
    std::vector<u64> pendingFlushes_;

    obs::StatSheet counters_;
    struct
    {
        obs::StatId events;
        obs::StatId bytes;
        obs::StatId instrs;
    } stat_;
};

} // namespace dth::dut

#endif // DTH_DUT_DUT_H_
