#include "dut/fault.h"

namespace dth::dut {

const char *
bugArchetypeName(BugArchetype archetype)
{
    switch (archetype) {
      case BugArchetype::None: return "none";
      case BugArchetype::WrongRdValue: return "wrong-rd-value";
      case BugArchetype::CsrCorruption: return "csr-corruption";
      case BugArchetype::StoreDataCorruption: return "store-corruption";
      case BugArchetype::RefillCorruption: return "refill-corruption";
      case BugArchetype::VectorLaneCorruption: return "vector-lane";
      case BugArchetype::VtypeCorruption: return "vtype-corruption";
      case BugArchetype::LostInterrupt: return "lost-interrupt";
    }
    return "?";
}

const char *
bugCategory(BugArchetype archetype)
{
    switch (archetype) {
      case BugArchetype::CsrCorruption:
      case BugArchetype::LostInterrupt:
        return "exception/interrupt handling";
      case BugArchetype::StoreDataCorruption:
      case BugArchetype::RefillCorruption:
        return "memory hierarchy and coherence";
      case BugArchetype::WrongRdValue:
      case BugArchetype::VectorLaneCorruption:
      case BugArchetype::VtypeCorruption:
        return "vector and control logic";
      case BugArchetype::None:
        break;
    }
    return "none";
}

} // namespace dth::dut
