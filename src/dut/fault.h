/**
 * @file
 * Fault injection: bug archetypes mirroring the paper's three categories
 * of XiangShan bugs (Table 6): exception/interrupt handling errors,
 * memory hierarchy and coherence issues, and vector/control logic
 * errors. A fault either corrupts the DUT's architectural state (a real
 * divergence the checker must catch) or only the emitted verification
 * event (a monitor-visible bug).
 */

#ifndef DTH_DUT_FAULT_H_
#define DTH_DUT_FAULT_H_

#include <string>

#include "common/types.h"

namespace dth::dut {

/** Bug archetypes; see Table 6 in the paper. */
enum class BugArchetype {
    None,
    /** Writeback bug: committed rd value (and DUT state) is wrong. */
    WrongRdValue,
    /** Exception handling: mepc corrupted when a trap is taken. */
    CsrCorruption,
    /** Memory hierarchy: a store silently flips a bit in DUT memory. */
    StoreDataCorruption,
    /** Memory hierarchy: a refill event carries a corrupted line. */
    RefillCorruption,
    /** Vector logic: a vector register lane is flipped. */
    VectorLaneCorruption,
    /** Vector config: the VecCsr event reports the wrong vl. */
    VtypeCorruption,
    /** Interrupt handling: an interrupt's ArchEvent is never emitted. */
    LostInterrupt,
};

const char *bugArchetypeName(BugArchetype archetype);

/** Which paper bug category an archetype belongs to. */
const char *bugCategory(BugArchetype archetype);

/** A single armed fault. */
struct FaultSpec
{
    BugArchetype archetype = BugArchetype::None;
    /** Fires at the first eligible instruction with seqNo >= this. */
    u64 triggerSeq = 0;
    unsigned core = 0;
    /** Bits to flip in the corrupted value. */
    u64 xorMask = 0x10;
};

/** Records when/where an armed fault actually fired. */
struct FaultOutcome
{
    bool fired = false;
    u64 firedSeq = 0;
    u64 firedCycle = 0;
    std::string description;
};

} // namespace dth::dut

#endif // DTH_DUT_FAULT_H_
