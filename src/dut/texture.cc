#include "dut/texture.h"

#include "common/bits.h"
#include "common/logging.h"

namespace dth::dut {

CacheModel::CacheModel(unsigned sets, unsigned ways, unsigned line_bytes)
    : sets_(sets), numWays_(ways), lineBytes_(line_bytes)
{
    dth_assert(isPow2(sets) && ways >= 1, "bad cache geometry %ux%u", sets,
               ways);
    ways_.resize(size_t(sets) * ways);
}

unsigned
CacheModel::setIndexOf(u64 addr) const
{
    return static_cast<unsigned>((addr / lineBytes_) % sets_);
}

bool
CacheModel::access(u64 addr)
{
    ++accesses_;
    ++clock_;
    u64 tag = addr / lineBytes_ / sets_;
    unsigned set = setIndexOf(addr);
    Way *base = &ways_[size_t(set) * numWays_];
    Way *victim = base;
    for (unsigned w = 0; w < numWays_; ++w) {
        if (base[w].tag == tag) {
            base[w].stamp = clock_;
            return true;
        }
        if (base[w].stamp < victim->stamp)
            victim = &base[w];
    }
    ++misses_;
    victim->tag = tag;
    victim->stamp = clock_;
    return false;
}

TlbModel::TlbModel(unsigned entries) : entries_(entries)
{
    pages_.assign(entries, ~0ULL);
}

bool
TlbModel::access(u64 vaddr)
{
    u64 page = vaddr >> 12;
    size_t slot = page % entries_;
    if (pages_[slot] == page)
        return true;
    ++misses_;
    pages_[slot] = page;
    return false;
}

bool
SbufferModel::store(u64 addr, u64 *flushed_line)
{
    if (threshold_ == 0)
        return false;
    u64 line = alignDown(addr, 64);
    if (line != currentLine_ && pending_ > 0) {
        *flushed_line = currentLine_;
        currentLine_ = line;
        pending_ = 1;
        return true;
    }
    currentLine_ = line;
    if (++pending_ >= threshold_) {
        *flushed_line = currentLine_;
        pending_ = 0;
        return true;
    }
    return false;
}

} // namespace dth::dut
