/**
 * @file
 * Microarchitectural texture models: small set-associative cache and TLB
 * models plus a store-buffer model. They are driven by the real address
 * stream of the DUT core and produce the memory-hierarchy verification
 * events (refills, TLB fills, store-buffer flushes) whose payloads are
 * read back from the DUT's actual memory — so the checker can verify
 * them against the REF.
 */

#ifndef DTH_DUT_TEXTURE_H_
#define DTH_DUT_TEXTURE_H_

#include <vector>

#include "common/types.h"

namespace dth::dut {

/** Set-associative LRU cache model; tracks tags only. */
class CacheModel
{
  public:
    CacheModel(unsigned sets, unsigned ways, unsigned line_bytes = 64);

    /** Access @p addr; returns true on hit (false = miss -> refill). */
    bool access(u64 addr);

    u64 lineAddr(u64 addr) const { return addr & ~(u64(lineBytes_) - 1); }
    unsigned setIndexOf(u64 addr) const;
    u64 accesses() const { return accesses_; }
    u64 misses() const { return misses_; }

  private:
    unsigned sets_;
    unsigned numWays_;
    unsigned lineBytes_;
    // numWays_ entries per set: tag plus LRU stamp.
    struct Way
    {
        u64 tag = ~0ULL;
        u64 stamp = 0;
    };
    std::vector<Way> ways_;
    u64 clock_ = 0;
    u64 accesses_ = 0;
    u64 misses_ = 0;
};

/** Fully-associative-by-hash TLB model over 4 KiB pages. */
class TlbModel
{
  public:
    explicit TlbModel(unsigned entries);

    /** Access the page of @p vaddr; returns true on hit. */
    bool access(u64 vaddr);

    u64 misses() const { return misses_; }

  private:
    unsigned entries_;
    std::vector<u64> pages_;
    u64 misses_ = 0;
};

/** Store-buffer model: coalesces stores per 64 B line, flushes when the
 *  configured number of stores have accumulated or the line changes. */
class SbufferModel
{
  public:
    explicit SbufferModel(unsigned threshold) : threshold_(threshold) {}

    /**
     * Record a store; returns true when a flush should be emitted for
     * @p flushed_line (the line address to flush).
     */
    bool store(u64 addr, u64 *flushed_line);

    bool active() const { return threshold_ > 0; }

  private:
    unsigned threshold_;
    u64 currentLine_ = ~0ULL;
    unsigned pending_ = 0;
};

} // namespace dth::dut

#endif // DTH_DUT_TEXTURE_H_
