#include "event/event.h"

#include <cstdio>

namespace dth {

std::string
Event::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s[core %u, idx %u, seq %llu, %u B]%s", info().name,
                  core, index,
                  static_cast<unsigned long long>(commitSeq),
                  info().bytesPerEntry, isNde() ? " (NDE)" : "");
    return buf;
}

} // namespace dth
