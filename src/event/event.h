/**
 * @file
 * The verification event container. An Event is what a hardware monitor
 * probe emits: a type tag, the producing core and entry index, an order
 * tag (the global commit sequence number the event is bound to — the
 * paper's "order semantics"), and the raw payload bytes, which are the
 * exact on-wire representation.
 */

#ifndef DTH_EVENT_EVENT_H_
#define DTH_EVENT_EVENT_H_

#include <span>
#include <string>
#include <vector>

#include "event/event_type.h"

namespace dth {

/** One verification event instance. */
struct Event
{
    EventType type = EventType::InstrCommit;
    u8 core = 0;
    /** Entry index within the cycle (e.g. commit slot 0..5). */
    u8 index = 0;
    /**
     * Order tag: global instruction sequence number this event must be
     * checked after. For an InstrCommit this is the committed
     * instruction's own sequence number; for an NDE it identifies the
     * instruction boundary at which the REF must synchronize.
     */
    u64 commitSeq = 0;
    /**
     * Per-core emission index, assigned when the event enters the
     * communication unit. Batch may permute events of one cycle into
     * type groups and split them across packets; the software side uses
     * this index to re-establish a contiguous emission prefix before
     * events are released to the checker.
     */
    u64 emitSeq = 0;
    /** Payload bytes; always exactly eventInfo(type).bytesPerEntry long. */
    std::vector<u8> payload;

    Event() = default;

    /** Construct with a zero-filled payload of the correct length. */
    static Event
    make(EventType type, u8 core = 0, u8 index = 0, u64 commit_seq = 0)
    {
        Event e;
        e.type = type;
        e.core = core;
        e.index = index;
        e.commitSeq = commit_seq;
        e.payload.assign(eventInfo(type).bytesPerEntry, 0);
        return e;
    }

    const EventTypeInfo &info() const { return eventInfo(type); }
    bool isNde() const { return info().nde; }
    bool isFusible() const { return info().fusible; }
    size_t wireBytes() const { return payload.size(); }

    bool
    operator==(const Event &other) const
    {
        return type == other.type && core == other.core &&
               index == other.index && commitSeq == other.commitSeq &&
               emitSeq == other.emitSeq && payload == other.payload;
    }

    /** Short human-readable description for debug reports. */
    std::string describe() const;
};

/** All events produced by the DUT in one hardware cycle. */
struct CycleEvents
{
    u64 cycle = 0;
    std::vector<Event> events;

    bool empty() const { return events.empty(); }
    size_t count() const { return events.size(); }

    /** Total payload bytes of all events in the cycle. */
    size_t
    totalBytes() const
    {
        size_t n = 0;
        for (const Event &e : events)
            n += e.wireBytes();
        return n;
    }
};

/** Little-endian field accessors into a payload buffer. */
inline u64
loadU64(std::span<const u8> payload, size_t offset)
{
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<u64>(payload[offset + i]) << (8 * i);
    return v;
}

inline void
storeU64(std::span<u8> payload, size_t offset, u64 v)
{
    for (unsigned i = 0; i < 8; ++i)
        payload[offset + i] = static_cast<u8>(v >> (8 * i));
}

} // namespace dth

#endif // DTH_EVENT_EVENT_H_
