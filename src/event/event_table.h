/**
 * @file
 * The in-tree protocol metadata table as a constexpr object: one row per
 * monitor event type (paper Table 1) plus the Squash wire-level
 * pseudo-types, indexed by the stable on-wire type id. Keeping the table
 * constexpr lets the layout audit (src/analysis/layout_audit.h) prove
 * structural invariants with static_assert, so a violation fails the
 * build rather than the dth_lint run.
 */

#ifndef DTH_EVENT_EVENT_TABLE_H_
#define DTH_EVENT_EVENT_TABLE_H_

#include <array>

#include "event/event_type.h"

namespace dth {

namespace detail {

constexpr EventCategory kCF = EventCategory::ControlFlow;
constexpr EventCategory kRU = EventCategory::RegisterUpdate;
constexpr EventCategory kMA = EventCategory::MemoryAccess;
constexpr EventCategory kMH = EventCategory::MemoryHierarchy;
constexpr EventCategory kEX = EventCategory::Extension;

} // namespace detail

/**
 * One row per wire type id. Sizes are calibrated so the aggregate
 * interface is ~11.5 KB and the structural size range is 170x (paper
 * §2.2, §4.2.1). Rows 32..34 are the Squash pseudo-types: produced by
 * the acceleration unit, never by a monitor probe.
 */
inline constexpr std::array<EventTypeInfo, kNumWireTypes> kEventTable = {{
    {EventType::InstrCommit, "instr_commit", 128, 6, true, false,
     detail::kCF, "ROB/commit stage"},
    {EventType::Trap, "trap", 80, 1, false, false, detail::kCF,
     "trap unit"},
    {EventType::ArchEvent, "arch_event", 48, 1, false, true, detail::kCF,
     "exception/interrupt unit"},
    {EventType::BranchEvent, "branch", 32, 6, true, false, detail::kCF,
     "branch unit/BPU"},
    {EventType::DebugMode, "debug_mode", 32, 1, false, false, detail::kCF,
     "debug module"},

    {EventType::ArchIntRegState, "int_regfile", 256, 1, true, false,
     detail::kRU, "integer register file"},
    {EventType::ArchFpRegState, "fp_regfile", 256, 1, true, false,
     detail::kRU, "floating-point register file"},
    {EventType::CsrState, "csr_state", 968, 1, true, false, detail::kRU,
     "CSR file"},
    {EventType::FpCsrState, "fcsr_state", 16, 1, true, false, detail::kRU,
     "FCSR"},
    {EventType::HCsrState, "hcsr_state", 304, 1, true, false, detail::kRU,
     "hypervisor CSR file"},
    {EventType::DebugCsrState, "debug_csr", 80, 1, true, false,
     detail::kRU, "debug CSRs"},
    {EventType::TriggerCsrState, "trigger_csr", 128, 1, true, false,
     detail::kRU, "trigger CSRs"},
    {EventType::ArchVecRegState, "vec_regfile", 2720, 1, true, false,
     detail::kRU, "vector register file"},
    {EventType::VecCsrState, "vec_csr", 136, 1, true, false, detail::kRU,
     "vector CSRs"},

    {EventType::LoadEvent, "load", 112, 6, true, false, detail::kMA,
     "LSU load pipeline"},
    {EventType::StoreEvent, "store", 48, 2, true, false, detail::kMA,
     "store queue"},
    {EventType::AtomicEvent, "atomic", 96, 1, false, false, detail::kMA,
     "AMO unit"},

    {EventType::SbufferEvent, "sbuffer", 208, 4, false, false, detail::kMH,
     "store buffer"},
    {EventType::L1DRefill, "l1d_refill", 136, 1, false, false, detail::kMH,
     "L1D cache"},
    {EventType::L1IRefill, "l1i_refill", 136, 1, false, false, detail::kMH,
     "L1I cache"},
    {EventType::L2Refill, "l2_refill", 136, 1, false, false, detail::kMH,
     "L2 cache"},
    {EventType::L1TlbEvent, "l1_tlb", 96, 8, false, false, detail::kMH,
     "L1 TLB"},
    {EventType::L2TlbEvent, "l2_tlb", 176, 2, false, false, detail::kMH,
     "L2 TLB/PTW"},

    {EventType::LrScEvent, "lr_sc", 48, 1, false, true, detail::kEX,
     "LR/SC monitor"},
    {EventType::MmioEvent, "mmio", 80, 2, false, true, detail::kEX,
     "MMIO bridge"},
    {EventType::VecWriteback, "vec_writeback", 256, 6, true, false,
     detail::kEX, "vector execution unit"},
    {EventType::VtypeEvent, "vtype", 48, 1, true, false, detail::kEX,
     "vector config unit"},
    {EventType::HldStEvent, "hyp_ldst", 112, 1, false, false, detail::kEX,
     "hypervisor load/store unit"},
    {EventType::GuestPtwEvent, "guest_ptw", 224, 1, false, false,
     detail::kEX, "two-stage PTW"},
    {EventType::AiaEvent, "aia", 64, 1, false, true, detail::kEX,
     "AIA/IMSIC"},
    {EventType::RunaheadEvent, "runahead", 64, 1, false, false,
     detail::kEX, "runahead checkpoint unit"},
    {EventType::UartIoEvent, "uart_io", 16, 1, false, true, detail::kEX,
     "UART/device bridge"},

    {EventType::FusedCommit, "fused_commit", 48, 1, false, false,
     detail::kCF, "ROB/commit stage"},
    {EventType::DiffState, "diff_state", 0, 1, false, false, detail::kRU,
     "register state"},
    {EventType::FusedDigest, "fused_digest", 32, 1, false, false,
     detail::kCF, "fused event window"},
}};

// ---------------------------------------------------------------------------
// Compile-time table proofs. These mirror the dth_lint table-consistency
// catalogue for the properties that are provable without probing the
// encoders; dth_lint re-checks them at runtime so mutated table copies
// (tests, future dynamically-loaded tables) get the same diagnostics.
// ---------------------------------------------------------------------------

namespace detail {

/** Stable ids are dense: row i describes wire type id i. */
constexpr bool
tableIdsDense()
{
    for (unsigned i = 0; i < kNumWireTypes; ++i)
        if (static_cast<unsigned>(kEventTable[i].type) != i)
            return false;
    return true;
}

/** An NDE carries its own order tag and is never fused (paper §4.3). */
constexpr bool
noFusibleNde()
{
    for (const EventTypeInfo &info : kEventTable)
        if (info.fusible && info.nde)
            return false;
    return true;
}

/** Fixed-size payloads are u64-word aligned (PayloadView contract). */
constexpr bool
fixedPayloadsWordAligned()
{
    for (const EventTypeInfo &info : kEventTable)
        if (info.bytesPerEntry % 8 != 0)
            return false;
    return true;
}

/** Only wire-level pseudo-types may be variable-length. */
constexpr bool
monitorTypesFixedSize()
{
    for (unsigned i = 0; i < kNumEventTypes; ++i)
        if (kEventTable[i].bytesPerEntry == 0)
            return false;
    return true;
}

} // namespace detail

static_assert(kNumWireTypes == kEventTable.size(),
              "kNumWireTypes must cover every table row");
static_assert(detail::tableIdsDense(),
              "event table out of order: row index must equal type id");
static_assert(detail::noFusibleNde(),
              "a non-deterministic event type must not be fusible");
static_assert(detail::fixedPayloadsWordAligned(),
              "payload sizes must be multiples of 8 bytes");
static_assert(detail::monitorTypesFixedSize(),
              "monitor event types must have a fixed serialized size");

} // namespace dth

#endif // DTH_EVENT_EVENT_TABLE_H_
