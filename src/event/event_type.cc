#include "event/event_type.h"

#include <algorithm>

#include "common/logging.h"
#include "event/event_table.h"

namespace dth {

const EventTypeInfo &
eventInfo(EventType type)
{
    return eventInfo(static_cast<unsigned>(type));
}

const EventTypeInfo &
eventInfo(unsigned id)
{
    dth_assert(id < kNumWireTypes, "bad event type id %u", id);
    // Row order is proven at compile time (event_table.h static_asserts).
    return kEventTable[id];
}

const char *
categoryName(EventCategory category)
{
    switch (category) {
      case EventCategory::ControlFlow: return "Control Flow";
      case EventCategory::RegisterUpdate: return "Register Updates";
      case EventCategory::MemoryAccess: return "Memory Access";
      case EventCategory::MemoryHierarchy: return "Memory Hierarchy";
      case EventCategory::Extension: return "RISC-V Extensions";
    }
    return "?";
}

u32
aggregateInterfaceBytes()
{
    u32 total = 0;
    for (unsigned i = 0; i < kNumEventTypes; ++i)
        total += u32(kEventTable[i].bytesPerEntry) *
                 kEventTable[i].entriesPerCore;
    return total;
}

double
structuralSizeRange()
{
    u16 minSize = kEventTable[0].bytesPerEntry;
    u16 maxSize = minSize;
    for (unsigned i = 1; i < kNumEventTypes; ++i) {
        minSize = std::min(minSize, kEventTable[i].bytesPerEntry);
        maxSize = std::max(maxSize, kEventTable[i].bytesPerEntry);
    }
    return static_cast<double>(maxSize) / minSize;
}

} // namespace dth
