#include "event/event_type.h"

#include "common/logging.h"

namespace dth {

namespace {

constexpr EventCategory CF = EventCategory::ControlFlow;
constexpr EventCategory RU = EventCategory::RegisterUpdate;
constexpr EventCategory MA = EventCategory::MemoryAccess;
constexpr EventCategory MH = EventCategory::MemoryHierarchy;
constexpr EventCategory EX = EventCategory::Extension;

// One row per event type. Sizes are calibrated so the aggregate interface
// is ~11.5 KB and the structural size range is 170x (paper §2.2, §4.2.1).
const EventTypeInfo kEventTable[kNumEventTypes] = {
    {EventType::InstrCommit, "instr_commit", 128, 6, true, false, CF,
     "ROB/commit stage"},
    {EventType::Trap, "trap", 80, 1, false, false, CF, "trap unit"},
    {EventType::ArchEvent, "arch_event", 48, 1, false, true, CF,
     "exception/interrupt unit"},
    {EventType::BranchEvent, "branch", 32, 6, true, false, CF,
     "branch unit/BPU"},
    {EventType::DebugMode, "debug_mode", 32, 1, false, false, CF,
     "debug module"},

    {EventType::ArchIntRegState, "int_regfile", 256, 1, true, false, RU,
     "integer register file"},
    {EventType::ArchFpRegState, "fp_regfile", 256, 1, true, false, RU,
     "floating-point register file"},
    {EventType::CsrState, "csr_state", 968, 1, true, false, RU,
     "CSR file"},
    {EventType::FpCsrState, "fcsr_state", 16, 1, true, false, RU,
     "FCSR"},
    {EventType::HCsrState, "hcsr_state", 304, 1, true, false, RU,
     "hypervisor CSR file"},
    {EventType::DebugCsrState, "debug_csr", 80, 1, true, false, RU,
     "debug CSRs"},
    {EventType::TriggerCsrState, "trigger_csr", 128, 1, true, false, RU,
     "trigger CSRs"},
    {EventType::ArchVecRegState, "vec_regfile", 2720, 1, true, false, RU,
     "vector register file"},
    {EventType::VecCsrState, "vec_csr", 136, 1, true, false, RU,
     "vector CSRs"},

    {EventType::LoadEvent, "load", 112, 6, true, false, MA,
     "LSU load pipeline"},
    {EventType::StoreEvent, "store", 48, 2, true, false, MA,
     "store queue"},
    {EventType::AtomicEvent, "atomic", 96, 1, false, false, MA,
     "AMO unit"},

    {EventType::SbufferEvent, "sbuffer", 208, 4, false, false, MH,
     "store buffer"},
    {EventType::L1DRefill, "l1d_refill", 136, 1, false, false, MH,
     "L1D cache"},
    {EventType::L1IRefill, "l1i_refill", 136, 1, false, false, MH,
     "L1I cache"},
    {EventType::L2Refill, "l2_refill", 136, 1, false, false, MH,
     "L2 cache"},
    {EventType::L1TlbEvent, "l1_tlb", 96, 8, false, false, MH,
     "L1 TLB"},
    {EventType::L2TlbEvent, "l2_tlb", 176, 2, false, false, MH,
     "L2 TLB/PTW"},

    {EventType::LrScEvent, "lr_sc", 48, 1, false, true, EX,
     "LR/SC monitor"},
    {EventType::MmioEvent, "mmio", 80, 2, false, true, EX,
     "MMIO bridge"},
    {EventType::VecWriteback, "vec_writeback", 256, 6, true, false, EX,
     "vector execution unit"},
    {EventType::VtypeEvent, "vtype", 48, 1, true, false, EX,
     "vector config unit"},
    {EventType::HldStEvent, "hyp_ldst", 112, 1, false, false, EX,
     "hypervisor load/store unit"},
    {EventType::GuestPtwEvent, "guest_ptw", 224, 1, false, false, EX,
     "two-stage PTW"},
    {EventType::AiaEvent, "aia", 64, 1, false, true, EX,
     "AIA/IMSIC"},
    {EventType::RunaheadEvent, "runahead", 64, 1, false, false, EX,
     "runahead checkpoint unit"},
    {EventType::UartIoEvent, "uart_io", 16, 1, false, true, EX,
     "UART/device bridge"},
};

// Squash wire-level pseudo-types (ids 32..34).
const EventTypeInfo kWireTable[kNumWireTypes - kNumEventTypes] = {
    {EventType::FusedCommit, "fused_commit", 48, 1, false, false, CF,
     "ROB/commit stage"},
    {EventType::DiffState, "diff_state", 0, 1, false, false, RU,
     "register state"},
    {EventType::FusedDigest, "fused_digest", 32, 1, false, false, CF,
     "fused event window"},
};

} // namespace

const EventTypeInfo &
eventInfo(EventType type)
{
    return eventInfo(static_cast<unsigned>(type));
}

const EventTypeInfo &
eventInfo(unsigned id)
{
    dth_assert(id < kNumWireTypes, "bad event type id %u", id);
    const EventTypeInfo &info = id < kNumEventTypes
                                    ? kEventTable[id]
                                    : kWireTable[id - kNumEventTypes];
    dth_assert(static_cast<unsigned>(info.type) == id,
               "event table out of order at %u", id);
    return info;
}

const char *
categoryName(EventCategory category)
{
    switch (category) {
      case EventCategory::ControlFlow: return "Control Flow";
      case EventCategory::RegisterUpdate: return "Register Updates";
      case EventCategory::MemoryAccess: return "Memory Access";
      case EventCategory::MemoryHierarchy: return "Memory Hierarchy";
      case EventCategory::Extension: return "RISC-V Extensions";
    }
    return "?";
}

u32
aggregateInterfaceBytes()
{
    u32 total = 0;
    for (unsigned i = 0; i < kNumEventTypes; ++i)
        total += u32(kEventTable[i].bytesPerEntry) *
                 kEventTable[i].entriesPerCore;
    return total;
}

double
structuralSizeRange()
{
    u16 minSize = kEventTable[0].bytesPerEntry;
    u16 maxSize = minSize;
    for (unsigned i = 1; i < kNumEventTypes; ++i) {
        minSize = std::min(minSize, kEventTable[i].bytesPerEntry);
        maxSize = std::max(maxSize, kEventTable[i].bytesPerEntry);
    }
    return static_cast<double>(maxSize) / minSize;
}

} // namespace dth
