/**
 * @file
 * The 32 verification event types covered by DiffTest-H (paper Table 1),
 * with their structural metadata: serialized size, entries per core and
 * cycle, fusibility (Squash), non-determinism (NDE), category, and the
 * microarchitectural component each type's behavioural semantics map to
 * (used by Replay's localization report).
 */

#ifndef DTH_EVENT_EVENT_TYPE_H_
#define DTH_EVENT_EVENT_TYPE_H_

#include <span>
#include <string>

#include "common/types.h"

namespace dth {

/** Paper Table 1 categories. */
enum class EventCategory : u8 {
    ControlFlow,
    RegisterUpdate,
    MemoryAccess,
    MemoryHierarchy,
    Extension,
};

/**
 * The 32 verification event types. IDs are stable: they are the on-wire
 * type tags used by Batch metadata and the trace format.
 */
enum class EventType : u8 {
    // Control flow (5)
    InstrCommit = 0,
    Trap = 1,
    ArchEvent = 2, //!< exceptions and external interrupts (NDE)
    BranchEvent = 3,
    DebugMode = 4,
    // Register updates (9)
    ArchIntRegState = 5,
    ArchFpRegState = 6,
    CsrState = 7,
    FpCsrState = 8,
    HCsrState = 9,
    DebugCsrState = 10,
    TriggerCsrState = 11,
    ArchVecRegState = 12,
    VecCsrState = 13,
    // Memory access (3)
    LoadEvent = 14,
    StoreEvent = 15,
    AtomicEvent = 16,
    // Memory hierarchy (6)
    SbufferEvent = 17,
    L1DRefill = 18,
    L1IRefill = 19,
    L2Refill = 20,
    L1TlbEvent = 21,
    L2TlbEvent = 22,
    // RISC-V extensions and DUT-specific non-determinism (9)
    LrScEvent = 23, //!< SC success/failure outcome (NDE)
    MmioEvent = 24, //!< MMIO access with observed value (NDE)
    VecWriteback = 25,
    VtypeEvent = 26,
    HldStEvent = 27,
    GuestPtwEvent = 28,
    AiaEvent = 29, //!< AIA/IMSIC interrupt file update (NDE)
    RunaheadEvent = 30,
    UartIoEvent = 31, //!< device-side I/O notification (NDE)

    // Squash wire-level pseudo-types: produced by the acceleration unit,
    // never by a monitor probe. They share the Batch wire format.
    FusedCommit = 32, //!< N instruction commits fused into one event
    DiffState = 33,   //!< differenced register-state snapshot (variable)
    FusedDigest = 34, //!< digest of a fused window of same-type events
};

/** Number of distinct monitor event types (paper Table 1). */
inline constexpr unsigned kNumEventTypes = 32;

/** Monitor types plus the Squash wire-level pseudo-types. */
inline constexpr unsigned kNumWireTypes = 35;

/** Structural metadata for one event type (the "structural semantics"). */
struct EventTypeInfo
{
    EventType type;
    const char *name;
    /**
     * Serialized payload size in bytes; the on-wire event body.
     * Zero means variable-length: the wire carries a u16 length prefix
     * (only the DiffState pseudo-type uses this).
     */
    u16 bytesPerEntry;
    /** Maximum valid entries per core per cycle (full-width DUT). */
    u8 entriesPerCore;
    /** May Squash fuse instances of this type across instructions? */
    bool fusible;
    /** Is this a non-deterministic event requiring REF synchronization? */
    bool nde;
    EventCategory category;
    /** Behavioural semantics: the microarchitectural component checked. */
    const char *component;
};

/** Metadata lookup; @p type must be a valid EventType or wire type. */
const EventTypeInfo &eventInfo(EventType type);

/** Metadata by integer id (0..34; 32+ are wire-level pseudo-types). */
const EventTypeInfo &eventInfo(unsigned id);

/** True for variable-length wire types (length-prefixed payload). */
inline bool
isVariableLength(EventType type)
{
    return eventInfo(type).bytesPerEntry == 0;
}

/** Printable category name. */
const char *categoryName(EventCategory category);

/**
 * Aggregate interface size: sum over all types of
 * bytesPerEntry * entriesPerCore. The paper reports 11,496 bytes for the
 * 32-type DiffTest interface (§2.2); ours is calibrated to the same scale.
 */
u32 aggregateInterfaceBytes();

/** Largest / smallest bytesPerEntry, the "170x" structural range. */
double structuralSizeRange();

} // namespace dth

#endif // DTH_EVENT_EVENT_TYPE_H_
