/**
 * @file
 * Typed views over event payload bytes. The payload vector is the exact
 * on-wire representation (as a DPI-C struct would be); these views give
 * named field access at fixed offsets without a separate
 * serialize/deserialize step, so whatever the monitor writes is literally
 * what the software parser reads after Batch/Squash processing.
 */

#ifndef DTH_EVENT_PAYLOADS_H_
#define DTH_EVENT_PAYLOADS_H_

#include "common/logging.h"
#include "event/event.h"

namespace dth {

/** Base for payload views: bounds-checked u64/u8 field access. */
class PayloadView
{
  public:
    explicit PayloadView(Event &event)
        : ro_(event.payload), rw_(event.payload)
    {}

    explicit PayloadView(const Event &event) : ro_(event.payload) {}

    u64
    word(size_t offset) const
    {
        dth_assert(offset + 8 <= ro_.size(), "payload read oob %zu", offset);
        return loadU64(ro_, offset);
    }

    u8
    byte(size_t offset) const
    {
        dth_assert(offset < ro_.size(), "payload read oob %zu", offset);
        return ro_[offset];
    }

    void
    setWord(size_t offset, u64 v)
    {
        dth_assert(!rw_.empty(), "writing through a read-only view");
        dth_assert(offset + 8 <= rw_.size(), "payload write oob %zu",
                   offset);
        storeU64(rw_, offset, v);
    }

    void
    setByte(size_t offset, u8 v)
    {
        dth_assert(!rw_.empty(), "writing through a read-only view");
        dth_assert(offset < rw_.size(), "payload write oob %zu", offset);
        rw_[offset] = v;
    }

  protected:
    std::span<const u8> ro_;
    std::span<u8> rw_;
};

/** Convenience macros for declaring fixed-offset fields. */
#define DTH_FIELD_U64(name, offset)                                        \
    u64 name() const { return word(offset); }                              \
    void set_##name(u64 v) { setWord(offset, v); }

#define DTH_FIELD_U8(name, offset)                                         \
    u8 name() const { return byte(offset); }                               \
    void set_##name(u8 v) { setByte(offset, v); }

/**
 * Every typed view declares its wire contract as compile-time constants:
 * kPayloadBytes is the serialized size the event table must agree with
 * (checked by static_assert in src/analysis/layout_audit.h and at runtime
 * by dth_lint), and kFieldsEndBytes is one past the last declared field,
 * which must fit inside the payload (checked right below each view).
 */
#define DTH_VIEW_LAYOUT(payload_bytes, fields_end)                         \
    static constexpr size_t kPayloadBytes = payload_bytes;                 \
    static constexpr size_t kFieldsEndBytes = fields_end;

/** InstrCommit (128 B): one retired instruction. */
class InstrCommitView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(128, 64)
    DTH_FIELD_U64(pc, 0)
    DTH_FIELD_U64(instr, 8) //!< raw 32-bit encoding in low bits
    DTH_FIELD_U64(rdVal, 16)
    DTH_FIELD_U64(seqNo, 24)
    DTH_FIELD_U8(rd, 32)
    DTH_FIELD_U8(rfWen, 33)
    DTH_FIELD_U8(fpWen, 34)
    DTH_FIELD_U8(vecWen, 35)
    DTH_FIELD_U8(isLoad, 36)
    DTH_FIELD_U8(isStore, 37)
    DTH_FIELD_U8(isBranch, 38)
    DTH_FIELD_U8(taken, 39)
    DTH_FIELD_U8(frd, 40)
    DTH_FIELD_U8(skip, 41) //!< MMIO-touching instruction: REF skips compare
    DTH_FIELD_U8(vrd, 42)
    DTH_FIELD_U64(frdVal, 48)
    DTH_FIELD_U64(nextPc, 56)
};

/** Trap (80 B): good/bad trap terminating the workload. */
class TrapView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(80, 40)
    DTH_FIELD_U64(hasTrap, 0)
    DTH_FIELD_U64(pc, 8)
    DTH_FIELD_U64(code, 16)
    DTH_FIELD_U64(cycle, 24)
    DTH_FIELD_U64(instrCount, 32)
};

/** ArchEvent (48 B): exception taken or external interrupt (NDE). */
class ArchEventView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(48, 40)
    /** bit0: interrupt, bit1: exception. */
    DTH_FIELD_U64(kind, 0)
    DTH_FIELD_U64(cause, 8)
    DTH_FIELD_U64(exceptionPc, 16)
    DTH_FIELD_U64(exceptionInst, 24)
    DTH_FIELD_U64(seqNo, 32)

    bool isInterrupt() const { return kind() & 1; }
    bool isException() const { return kind() & 2; }
};

/** BranchEvent (32 B): one resolved branch. */
class BranchView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(32, 32)
    DTH_FIELD_U64(pc, 0)
    DTH_FIELD_U64(taken, 8)
    DTH_FIELD_U64(target, 16)
    DTH_FIELD_U64(seqNo, 24)
};

/** Full 32-entry register file snapshot (256 B); int and fp share it. */
class RegFileView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(32 * 8, 32 * 8)
    u64 reg(unsigned i) const { return word(i * 8); }
    void setReg(unsigned i, u64 v) { setWord(i * 8, v); }
};

/** Named CSR slots within the 121-word CsrState payload. */
enum class CsrSlot : u8 {
    PrivilegeMode = 0,
    Mstatus,
    Misa,
    Mie,
    Mip,
    Mtvec,
    Mscratch,
    Mepc,
    Mcause,
    Mtval,
    Mcycle,
    Minstret,
    Satp,
    Medeleg,
    Mideleg,
    Stvec,
    Sscratch,
    Sepc,
    Scause,
    Stval,
    Mhartid,
    Mtimecmp,
    NumNamed,
};

/** CsrState (968 B = 121 u64 slots): architectural CSR snapshot. */
class CsrStateView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    static constexpr unsigned kSlots = 121;
    DTH_VIEW_LAYOUT(kSlots * 8, kSlots * 8)

    u64 slot(unsigned i) const { return word(i * 8); }
    void setSlot(unsigned i, u64 v) { setWord(i * 8, v); }

    u64
    csr(CsrSlot s) const
    {
        return slot(static_cast<unsigned>(s));
    }

    void
    setCsr(CsrSlot s, u64 v)
    {
        setSlot(static_cast<unsigned>(s), v);
    }
};

/** FpCsrState (16 B). */
class FpCsrView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(16, 8)
    DTH_FIELD_U64(fcsr, 0)
};

/** LoadEvent (112 B): retired load with the observed value. */
class LoadView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(112, 35)
    DTH_FIELD_U64(paddr, 0)
    DTH_FIELD_U64(vaddr, 8)
    DTH_FIELD_U64(data, 16)
    DTH_FIELD_U64(seqNo, 24)
    DTH_FIELD_U8(size, 32) //!< log2 bytes
    DTH_FIELD_U8(isMmio, 33)
    DTH_FIELD_U8(fuType, 34)
};

/** StoreEvent (48 B): committed store (address/data/mask). */
class StoreView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(48, 33)
    DTH_FIELD_U64(addr, 0)
    DTH_FIELD_U64(data, 8)
    DTH_FIELD_U64(mask, 16)
    DTH_FIELD_U64(seqNo, 24)
    DTH_FIELD_U8(size, 32)
};

/** AtomicEvent (96 B). */
class AtomicView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(96, 49)
    DTH_FIELD_U64(addr, 0)
    DTH_FIELD_U64(operand, 8)
    DTH_FIELD_U64(mask, 16)
    DTH_FIELD_U64(loadedValue, 24)
    DTH_FIELD_U64(storedValue, 32)
    DTH_FIELD_U64(seqNo, 40)
    DTH_FIELD_U8(funct, 48)
};

/** MmioEvent (80 B, NDE): observed device access and value. */
class MmioView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(80, 26)
    DTH_FIELD_U64(addr, 0)
    DTH_FIELD_U64(data, 8)
    DTH_FIELD_U64(seqNo, 16) //!< order tag
    DTH_FIELD_U8(isLoad, 24)
    DTH_FIELD_U8(size, 25)
};

/** LrScEvent (48 B, NDE): SC outcome decided by the DUT. */
class LrScView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(48, 24)
    DTH_FIELD_U64(addr, 0)
    DTH_FIELD_U64(success, 8)
    DTH_FIELD_U64(seqNo, 16)
};

/** Cache refill (136 B): address + 64 B line. */
class RefillView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(136, 88)
    DTH_FIELD_U64(addr, 0)
    u64 lineWord(unsigned i) const { return word(8 + i * 8); }
    void setLineWord(unsigned i, u64 v) { setWord(8 + i * 8, v); }
    DTH_FIELD_U64(way, 72)
    DTH_FIELD_U64(setIndex, 80)
};

/** SbufferEvent (208 B): store-buffer flush of a 64 B line. */
class SbufferView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(208, 80)
    DTH_FIELD_U64(addr, 0)
    DTH_FIELD_U64(mask, 8)
    u64 dataWord(unsigned i) const { return word(16 + i * 8); }
    void setDataWord(unsigned i, u64 v) { setWord(16 + i * 8, v); }
};

/** TLB fill (96 B for L1, 176 B for L2; shared leading fields). */
class TlbView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    /** Shared leading fields; per-level payload sizes differ. */
    static constexpr size_t kL1PayloadBytes = 96;
    static constexpr size_t kL2PayloadBytes = 176;
    static constexpr size_t kFieldsEndBytes = 40;
    DTH_FIELD_U64(vpn, 0)
    DTH_FIELD_U64(ppn, 8)
    DTH_FIELD_U64(perm, 16)
    DTH_FIELD_U64(level, 24)
    DTH_FIELD_U64(satp, 32)
};

/** Vector CSR snapshot (136 B). */
class VecCsrView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(136, 56)
    DTH_FIELD_U64(vstart, 0)
    DTH_FIELD_U64(vxsat, 8)
    DTH_FIELD_U64(vxrm, 16)
    DTH_FIELD_U64(vcsr, 24)
    DTH_FIELD_U64(vl, 32)
    DTH_FIELD_U64(vtype, 40)
    DTH_FIELD_U64(vlenb, 48)
};

/**
 * Vector register file snapshot (2720 B): a 160 B header followed by 32
 * registers of 80 B each (64 B data + 8 B mask + 8 B meta). This is the
 * structurally largest event (the 170x extreme of Fig. 4).
 */
class VecRegView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    static constexpr size_t kHeaderBytes = 160;
    static constexpr size_t kBytesPerReg = 80;
    static constexpr unsigned kNumRegs = 32;
    DTH_VIEW_LAYOUT(kHeaderBytes + kNumRegs * kBytesPerReg,
                    kHeaderBytes + kNumRegs * kBytesPerReg)

    DTH_FIELD_U64(vstart, 0)
    DTH_FIELD_U64(vl, 8)
    DTH_FIELD_U64(vtype, 16)
    DTH_FIELD_U64(vcsr, 24)
    DTH_FIELD_U64(vlenb, 32)

    u64
    lane(unsigned reg, unsigned lane64) const
    {
        return word(kHeaderBytes + reg * kBytesPerReg + lane64 * 8);
    }

    void
    setLane(unsigned reg, unsigned lane64, u64 v)
    {
        setWord(kHeaderBytes + reg * kBytesPerReg + lane64 * 8, v);
    }
};

/** VtypeEvent (48 B): vset* configuration change. */
class VtypeView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(48, 24)
    DTH_FIELD_U64(vtype, 0)
    DTH_FIELD_U64(vl, 8)
    DTH_FIELD_U64(seqNo, 16)
};

/** UartIoEvent (16 B, NDE): device-side output notification. */
class UartIoView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    DTH_VIEW_LAYOUT(16, 16)
    DTH_FIELD_U64(ch, 0)
    DTH_FIELD_U64(flags, 8)
};

#undef DTH_FIELD_U64
#undef DTH_FIELD_U8
#undef DTH_VIEW_LAYOUT

// ---------------------------------------------------------------------------
// Compile-time layout proofs: every view's declared fields must fit its
// wire size. The table-vs-view size cross-check (serializedSize ==
// kPayloadBytes) lives in src/analysis/layout_audit.h, next to the other
// protocol invariants.
// ---------------------------------------------------------------------------

namespace payload_layout_detail {

template <typename View>
constexpr bool
fieldsFit()
{
    return View::kFieldsEndBytes <= View::kPayloadBytes;
}

static_assert(fieldsFit<InstrCommitView>(), "InstrCommit fields overflow");
static_assert(fieldsFit<TrapView>(), "Trap fields overflow");
static_assert(fieldsFit<ArchEventView>(), "ArchEvent fields overflow");
static_assert(fieldsFit<BranchView>(), "Branch fields overflow");
static_assert(fieldsFit<RegFileView>(), "RegFile fields overflow");
static_assert(fieldsFit<CsrStateView>(), "CsrState fields overflow");
static_assert(fieldsFit<FpCsrView>(), "FpCsr fields overflow");
static_assert(fieldsFit<LoadView>(), "Load fields overflow");
static_assert(fieldsFit<StoreView>(), "Store fields overflow");
static_assert(fieldsFit<AtomicView>(), "Atomic fields overflow");
static_assert(fieldsFit<MmioView>(), "Mmio fields overflow");
static_assert(fieldsFit<LrScView>(), "LrSc fields overflow");
static_assert(fieldsFit<RefillView>(), "Refill fields overflow");
static_assert(fieldsFit<SbufferView>(), "Sbuffer fields overflow");
static_assert(fieldsFit<VecCsrView>(), "VecCsr fields overflow");
static_assert(fieldsFit<VecRegView>(), "VecReg fields overflow");
static_assert(fieldsFit<VtypeView>(), "Vtype fields overflow");
static_assert(fieldsFit<UartIoView>(), "UartIo fields overflow");
static_assert(TlbView::kFieldsEndBytes <= TlbView::kL1PayloadBytes,
              "Tlb fields overflow the L1 payload");
static_assert(CsrStateView::kSlots >=
                  static_cast<unsigned>(CsrSlot::NumNamed),
              "named CSR slots exceed the CsrState payload");

} // namespace payload_layout_detail

} // namespace dth

#endif // DTH_EVENT_PAYLOADS_H_
