#include "fleet/campaign.h"

#include <cstdio>

#include "common/logging.h"
#include "obs/json.h"

namespace dth::fleet {

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Microbench: return "microbench";
      case WorkloadKind::BootLike: return "boot";
      case WorkloadKind::ComputeLike: return "compute";
      case WorkloadKind::VectorLike: return "vector";
      case WorkloadKind::IoHeavy: return "io";
    }
    return "?";
}

bool
workloadKindFromName(std::string_view name, WorkloadKind *out)
{
    for (WorkloadKind k :
         {WorkloadKind::Microbench, WorkloadKind::BootLike,
          WorkloadKind::ComputeLike, WorkloadKind::VectorLike,
          WorkloadKind::IoHeavy}) {
        if (name == workloadKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

cosim::CosimConfig
defaultJobConfig()
{
    cosim::CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);
    return cfg;
}

std::string
JobSpec::programKey() const
{
    char buf[128];
    const workload::WorkloadOptions &o = workloadOptions;
    std::snprintf(buf, sizeof(buf), "%s:%llu:%u:%u:%d:%llu:%d",
                  workloadKindName(workload),
                  (unsigned long long)o.seed, o.iterations, o.bodyLength,
                  o.timerInterrupts ? 1 : 0,
                  (unsigned long long)o.timerInterval,
                  o.supervisorMode ? 1 : 0);
    return buf;
}

void
Campaign::add(JobSpec spec)
{
    if (spec.name.empty()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "job%zu-%s-s%llu", jobs.size(),
                      workloadKindName(spec.workload),
                      (unsigned long long)spec.workloadOptions.seed);
        spec.name = buf;
    }
    // Job names key the report; collisions would make it ambiguous.
    for (const JobSpec &existing : jobs) {
        dth_assert(existing.name != spec.name,
                   "duplicate job name '%s'", spec.name.c_str());
    }
    jobs.push_back(std::move(spec));
}

Campaign
expandMatrix(const MatrixSpec &spec)
{
    Campaign campaign;
    campaign.name = spec.name;
    for (WorkloadKind workload : spec.workloads) {
        for (u64 seed : spec.seeds) {
            for (cosim::OptLevel level : spec.optLevels) {
                JobSpec job = spec.base;
                job.workload = workload;
                job.workloadOptions.seed = seed;
                job.config.applyOptLevel(level);
                // Decorrelate the session texture/NDE stream per matrix
                // point while keeping it a pure function of the spec.
                job.config.seed =
                    spec.base.config.seed ^
                    ((seed + 1) * 0x9E3779B97F4A7C15ull);
                char buf[96];
                std::snprintf(buf, sizeof(buf), "%s-s%llu-%s",
                              workloadKindName(workload),
                              (unsigned long long)seed,
                              cosim::optLevelName(level));
                job.name = buf;
                campaign.add(std::move(job));
            }
        }
    }
    return campaign;
}

workload::Program
buildWorkload(const JobSpec &spec)
{
    switch (spec.workload) {
      case WorkloadKind::Microbench:
        return workload::makeMicrobench(spec.workloadOptions);
      case WorkloadKind::BootLike:
        return workload::makeBootLike(spec.workloadOptions);
      case WorkloadKind::ComputeLike:
        return workload::makeComputeLike(spec.workloadOptions);
      case WorkloadKind::VectorLike:
        return workload::makeVectorLike(spec.workloadOptions);
      case WorkloadKind::IoHeavy:
        return workload::makeIoHeavy(spec.workloadOptions);
    }
    dth_panic("unknown workload kind %u",
              static_cast<unsigned>(spec.workload));
}

std::shared_ptr<const workload::Program>
ProgramLibrary::get(const JobSpec &spec)
{
    std::string key = spec.programKey();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++reuses_;
        return it->second;
    }
    auto program =
        std::make_shared<const workload::Program>(buildWorkload(spec));
    ++builds_;
    cache_.emplace(std::move(key), program);
    return program;
}

// ---------------------------------------------------------------------------
// JSON campaign spec
// ---------------------------------------------------------------------------

namespace {

using obs::JsonValue;

/** Field-application context: accumulates the first error. */
struct SpecErr
{
    std::string *err;
    bool failed = false;

    void
    fail(const std::string &msg)
    {
        if (!failed && err)
            *err = msg;
        failed = true;
    }
};

bool
dutByName(std::string_view name, dut::DutConfig *out)
{
    if (name == "nutshell")
        *out = dut::nutshellConfig();
    else if (name == "xs-minimal")
        *out = dut::xsMinimalConfig();
    else if (name == "xs-default")
        *out = dut::xsDefaultConfig();
    else if (name == "xs-dual")
        *out = dut::xsDualConfig();
    else
        return false;
    return true;
}

bool
optLevelByName(std::string_view name, cosim::OptLevel *out)
{
    if (name == "Z")
        *out = cosim::OptLevel::Z;
    else if (name == "B")
        *out = cosim::OptLevel::B;
    else if (name == "BN")
        *out = cosim::OptLevel::BN;
    else if (name == "BNSD")
        *out = cosim::OptLevel::BNSD;
    else
        return false;
    return true;
}

/** Apply one job-field object onto @p spec. Platform resolution is
 *  deferred so "verilator" can use the (possibly later-set) DUT size. */
struct PendingPlatform
{
    bool set = false;
    std::string name;
};

void
applyJobFields(const JsonValue &obj, JobSpec *spec,
               PendingPlatform *platform, SpecErr *e)
{
    for (const auto &[key, value] : obj.fields) {
        if (key == "name") {
            spec->name = value.text;
        } else if (key == "workload") {
            if (!workloadKindFromName(value.text, &spec->workload))
                e->fail("unknown workload '" + value.text + "'");
        } else if (key == "seed") {
            spec->workloadOptions.seed = value.asU64();
            spec->config.seed =
                0xD1FF ^ ((value.asU64() + 1) * 0x9E3779B97F4A7C15ull);
        } else if (key == "run_seed") {
            spec->config.seed = value.asU64();
        } else if (key == "iterations") {
            spec->workloadOptions.iterations =
                static_cast<unsigned>(value.asU64());
        } else if (key == "body_length") {
            spec->workloadOptions.bodyLength =
                static_cast<unsigned>(value.asU64());
        } else if (key == "timer_interrupts") {
            spec->workloadOptions.timerInterrupts = value.boolean;
        } else if (key == "supervisor") {
            spec->workloadOptions.supervisorMode = value.boolean;
        } else if (key == "dut") {
            if (!dutByName(value.text, &spec->config.dut))
                e->fail("unknown dut '" + value.text + "'");
        } else if (key == "platform") {
            platform->set = true;
            platform->name = value.text;
        } else if (key == "opt_level") {
            cosim::OptLevel level;
            if (!optLevelByName(value.text, &level))
                e->fail("unknown opt_level '" + value.text + "'");
            else
                spec->config.applyOptLevel(level);
        } else if (key == "host_threads") {
            spec->config.hostThreads =
                static_cast<unsigned>(value.asU64());
        } else if (key == "packet_bytes") {
            spec->config.packetBytes =
                static_cast<unsigned>(value.asU64());
        } else if (key == "max_fuse") {
            spec->config.maxFuse = static_cast<unsigned>(value.asU64());
        } else if (key == "max_cycles") {
            spec->maxCycles = value.asU64();
        } else if (key == "max_retries") {
            spec->maxRetries = static_cast<unsigned>(value.asU64());
        } else if (key == "retry_fault_damping") {
            spec->retryFaultDamping = value.asDouble();
        } else if (key == "wall_timeout_sec") {
            spec->wallTimeoutSec = value.asDouble();
        } else if (key == "fault_rate") {
            double rate = value.asDouble();
            u64 seed = spec->config.linkFaults.seed;
            unsigned attempts = spec->config.linkFaults.maxAttempts;
            unsigned budget =
                spec->config.linkFaults.unrecoverableBudget;
            spec->config.linkFaults =
                link::LinkFaultConfig::allKinds(rate, seed);
            spec->config.linkFaults.enabled = rate > 0;
            spec->config.linkFaults.maxAttempts = attempts;
            spec->config.linkFaults.unrecoverableBudget = budget;
        } else if (key == "stall_rate") {
            spec->config.linkFaults.enabled = true;
            spec->config.linkFaults.stallRate = value.asDouble();
        } else if (key == "fault_seed") {
            spec->config.linkFaults.seed = value.asU64();
        } else if (key == "fault_max_attempts") {
            spec->config.linkFaults.maxAttempts =
                static_cast<unsigned>(value.asU64());
        } else if (key == "fault_budget") {
            spec->config.linkFaults.unrecoverableBudget =
                static_cast<unsigned>(value.asU64());
        } else {
            e->fail("unknown job field '" + key + "'");
        }
        if (e->failed)
            return;
    }
}

void
resolvePlatform(const PendingPlatform &platform, JobSpec *spec,
                SpecErr *e)
{
    if (!platform.set)
        return;
    if (platform.name == "palladium")
        spec->config.platform = link::palladiumPlatform();
    else if (platform.name == "fpga")
        spec->config.platform = link::fpgaPlatform();
    else if (platform.name == "verilator")
        spec->config.platform =
            link::verilatorPlatform(spec->config.dut.gatesMillions);
    else
        e->fail("unknown platform '" + platform.name + "'");
}

} // namespace

bool
campaignFromJson(std::string_view text, Campaign *out, std::string *err)
{
    *out = Campaign{};
    SpecErr e{err};
    JsonValue root;
    if (!obs::parseJson(text, &root) ||
        root.type != JsonValue::Type::Object) {
        e.fail("malformed JSON");
        return false;
    }
    const JsonValue *schema = root.field("schema");
    if (!schema || schema->text != "dth-fleet-campaign-v1") {
        e.fail("missing or unsupported schema id "
               "(want dth-fleet-campaign-v1)");
        return false;
    }
    if (const JsonValue *name = root.field("name"))
        out->name = name->text;

    JobSpec defaults;
    PendingPlatform defaultPlatform;
    if (const JsonValue *d = root.field("defaults")) {
        if (d->type != JsonValue::Type::Object) {
            e.fail("'defaults' must be an object");
            return false;
        }
        applyJobFields(*d, &defaults, &defaultPlatform, &e);
        resolvePlatform(defaultPlatform, &defaults, &e);
        if (e.failed)
            return false;
        if (!defaults.name.empty()) {
            e.fail("'defaults' must not set a job name");
            return false;
        }
    }

    if (const JsonValue *m = root.field("matrix")) {
        if (m->type != JsonValue::Type::Object) {
            e.fail("'matrix' must be an object");
            return false;
        }
        MatrixSpec matrix;
        matrix.name = out->name;
        matrix.base = defaults;
        matrix.workloads.clear();
        matrix.seeds.clear();
        matrix.optLevels.clear();
        if (const JsonValue *w = m->field("workloads")) {
            for (const JsonValue &item : w->items) {
                WorkloadKind kind;
                if (!workloadKindFromName(item.text, &kind)) {
                    e.fail("unknown workload '" + item.text + "'");
                    return false;
                }
                matrix.workloads.push_back(kind);
            }
        }
        if (const JsonValue *s = m->field("seeds"))
            for (const JsonValue &item : s->items)
                matrix.seeds.push_back(item.asU64());
        if (const JsonValue *l = m->field("opt_levels")) {
            for (const JsonValue &item : l->items) {
                cosim::OptLevel level;
                if (!optLevelByName(item.text, &level)) {
                    e.fail("unknown opt_level '" + item.text + "'");
                    return false;
                }
                matrix.optLevels.push_back(level);
            }
        }
        if (matrix.workloads.empty() || matrix.seeds.empty()) {
            e.fail("'matrix' needs non-empty workloads and seeds");
            return false;
        }
        if (matrix.optLevels.empty())
            matrix.optLevels.push_back(cosim::OptLevel::BNSD);
        Campaign expanded = expandMatrix(matrix);
        for (JobSpec &job : expanded.jobs)
            out->add(std::move(job));
    }

    if (const JsonValue *jobs = root.field("jobs")) {
        if (jobs->type != JsonValue::Type::Array) {
            e.fail("'jobs' must be an array");
            return false;
        }
        for (const JsonValue &item : jobs->items) {
            if (item.type != JsonValue::Type::Object) {
                e.fail("each job must be an object");
                return false;
            }
            JobSpec job = defaults;
            PendingPlatform platform;
            applyJobFields(item, &job, &platform, &e);
            resolvePlatform(platform, &job, &e);
            if (e.failed)
                return false;
            // User input: report name collisions instead of asserting.
            for (const JobSpec &existing : out->jobs) {
                if (!job.name.empty() && existing.name == job.name) {
                    e.fail("duplicate job name '" + job.name + "'");
                    return false;
                }
            }
            out->add(std::move(job));
        }
    }

    if (out->jobs.empty()) {
        e.fail("campaign has no jobs (need 'matrix' and/or 'jobs')");
        return false;
    }
    return true;
}

} // namespace dth::fleet
