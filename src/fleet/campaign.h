/**
 * @file
 * Campaign specification for the verification fleet: the unit of work
 * the FleetScheduler executes is a JobSpec — one DUT<->REF session over
 * one (workload, seed, CosimConfig) point with a per-job cycle budget
 * and quarantine/retry policy — and a Campaign is an ordered list of
 * them with stable ids.
 *
 * Campaigns come from three places:
 *  - programmatic construction (tests, benches);
 *  - matrix expansion (workloads x seeds x opt levels, the regression
 *    sweep shape), expanded in a deterministic order so job ids are
 *    stable across hosts and worker counts;
 *  - a small JSON spec (tools/dth_fleet --spec), parsed with the same
 *    recursive-descent parser the dth-obs-v1 snapshots use.
 *
 * Every determinism guarantee downstream (solo == fleet verdicts,
 * reports identical across worker counts) starts here: a JobSpec fully
 * determines its session — nothing about scheduling leaks into the
 * simulated work.
 */

#ifndef DTH_FLEET_CAMPAIGN_H_
#define DTH_FLEET_CAMPAIGN_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cosim/cosim.h"
#include "dut/fault.h"
#include "workload/generators.h"

namespace dth::fleet {

/** Synthetic workload families a job can run. */
enum class WorkloadKind : u8 {
    Microbench,
    BootLike,
    ComputeLike,
    VectorLike,
    IoHeavy,
};

/** Lower-case spec name ("microbench", "boot", "compute", ...). */
const char *workloadKindName(WorkloadKind kind);

/** Parse a spec name; returns false if @p name is unknown. */
bool workloadKindFromName(std::string_view name, WorkloadKind *out);

/** A runnable starting point: XiangShan-default DUT on the Palladium
 *  platform model at full DiffTest-H optimization (a default-constructed
 *  CosimConfig has no DUT events enabled and would verify nothing). */
cosim::CosimConfig defaultJobConfig();

/** One schedulable session: everything that determines its outcome. */
struct JobSpec
{
    /** Unique within the campaign; derived from the matrix point when
     *  built by expandMatrix / the JSON loader. */
    std::string name;

    WorkloadKind workload = WorkloadKind::Microbench;
    /** Workload generator parameters (seed, iterations, bodyLength). */
    workload::WorkloadOptions workloadOptions;

    /** Full session configuration, including the run seed and the link
     *  fault-injection knobs. */
    cosim::CosimConfig config = defaultJobConfig();

    /** Per-attempt cycle budget: the deterministic timeout. A run that
     *  exhausts it without trapping or mismatching is TimedOut. */
    u64 maxCycles = 2'000'000;

    /**
     * Quarantine/retry policy for attempts that end in the structured
     * link-degraded state (degrade level 2): the job is quarantined and
     * re-run up to maxRetries more times. Each retry re-derives the
     * fault-injector seed and scales the fault rates by
     * retryFaultDamping (a transient-fault environment model), so
     * recovery is a pure function of the spec — a retried job recovers
     * (or not) identically solo and in any fleet.
     */
    unsigned maxRetries = 0;
    double retryFaultDamping = 0.5;

    /** Optional wall-clock safety net (0 = off). Non-deterministic by
     *  nature; excluded from every determinism guarantee. */
    double wallTimeoutSec = 0;

    /** Optional armed DUT fault (bug-hunt campaigns). */
    bool hasFault = false;
    dut::FaultSpec fault;

    /** Program-library key: jobs agreeing on it share one image. */
    std::string programKey() const;
};

/** An ordered set of jobs; the vector index is the stable job id. */
struct Campaign
{
    std::string name = "campaign";
    std::vector<JobSpec> jobs;

    /** Append @p spec, deriving a unique name if it has none. */
    void add(JobSpec spec);
};

/** Matrix shorthand: the cross product expanded in deterministic order
 *  (workload-major, then seed, then opt level). */
struct MatrixSpec
{
    std::string name = "matrix";
    std::vector<WorkloadKind> workloads{WorkloadKind::ComputeLike};
    std::vector<u64> seeds{1};
    std::vector<cosim::OptLevel> optLevels{cosim::OptLevel::BNSD};
    /** Template applied to every point (dut/platform/fault knobs). */
    JobSpec base;
};

Campaign expandMatrix(const MatrixSpec &spec);

/**
 * Parse a dth-fleet-campaign-v1 JSON spec. Returns false with @p err
 * set on malformed input; @p out is cleared first. See
 * tools/dth_fleet.cc --help or DESIGN.md section 10 for the format.
 */
bool campaignFromJson(std::string_view text, Campaign *out,
                      std::string *err);

/** Build the (deterministic) program image for @p spec. */
workload::Program buildWorkload(const JobSpec &spec);

/**
 * Immutable-program cache keyed by JobSpec::programKey(): a campaign
 * that sweeps seeds/configs over the same workload builds each image
 * once and shares it across concurrent sessions. Not thread-safe;
 * the scheduler populates it before the workers start.
 */
class ProgramLibrary
{
  public:
    std::shared_ptr<const workload::Program> get(const JobSpec &spec);

    size_t builds() const { return builds_; }
    size_t reuses() const { return reuses_; }

  private:
    std::map<std::string, std::shared_ptr<const workload::Program>,
             std::less<>>
        cache_;
    size_t builds_ = 0;
    size_t reuses_ = 0;
};

} // namespace dth::fleet

#endif // DTH_FLEET_CAMPAIGN_H_
