#include "fleet/report.h"

#include <cinttypes>
#include <cstdio>

namespace dth::fleet {

namespace {

/** Wall-clock-dependent stats excluded from the deterministic view. */
bool
isNondeterministic(std::string_view name)
{
    if (name.substr(0, 5) == "host.")
        return true;
    return name == "fleet.steals" || name == "fleet.workers" ||
           name == "fleet.queue_latency_us";
}

void
appendEscaped(std::string *out, std::string_view s)
{
    out->push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\r': *out += "\\r"; break;
          case '\t': *out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                *out += buf;
            } else {
                out->push_back(c);
            }
        }
    }
    out->push_back('"');
}

void
appendU64(std::string *out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    *out += buf;
}

void
appendHex(std::string *out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%016" PRIx64 "\"", v);
    *out += buf;
}

void
appendReal(std::string *out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    *out += buf;
}

struct Fnv
{
    u64 hash = 0xCBF29CE484222325ull;

    void
    u(u64 v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (i * 8)) & 0xFF;
            hash *= 0x100000001B3ull;
        }
    }

    void
    str(std::string_view s)
    {
        for (char c : s) {
            hash ^= static_cast<u8>(c);
            hash *= 0x100000001B3ull;
        }
        u(s.size());
    }
};

} // namespace

obs::StatSnapshot
deterministicAggregate(const obs::StatSnapshot &agg)
{
    obs::StatSnapshot out;
    for (const auto &[name, value] : agg.integers())
        if (!isNondeterministic(name))
            out.setInt(name, agg.kindOf(name), value);
    for (const auto &[name, data] : agg.hists())
        if (!isNondeterministic(name))
            out.setHist(name, data);
    // Reals are dropped wholesale: every Real in the registry today is
    // a wall-clock accumulator.
    return out;
}

u64
aggregateDigest(const obs::StatSnapshot &agg)
{
    obs::StatSnapshot det = deterministicAggregate(agg);
    Fnv fnv;
    for (const auto &[name, value] : det.integers()) {
        fnv.str(name);
        fnv.u(static_cast<u64>(det.kindOf(name)));
        fnv.u(value);
    }
    for (const auto &[name, data] : det.hists()) {
        fnv.str(name);
        fnv.u(data.count);
        fnv.u(data.sum);
        fnv.u(data.count ? data.min : 0);
        fnv.u(data.max);
        for (u64 b : data.buckets)
            fnv.u(b);
    }
    return fnv.hash;
}

std::string
campaignReportJson(const CampaignResult &result, const ReportOptions &opts)
{
    std::string out;
    out.reserve(4096 + result.jobs.size() * 256);
    out += "{\n  \"schema\": \"";
    out += kFleetReportSchemaId;
    out += "\",\n  \"campaign\": ";
    appendEscaped(&out, result.campaign);
    out += ",\n  \"counts\": {";
    out += "\"jobs\": ";
    appendU64(&out, result.jobs.size());
    out += ", \"passed\": ";
    appendU64(&out, result.count(JobOutcome::Passed));
    out += ", \"failed\": ";
    appendU64(&out, result.count(JobOutcome::Failed));
    out += ", \"degraded\": ";
    appendU64(&out, result.count(JobOutcome::Degraded));
    out += ", \"timed_out\": ";
    appendU64(&out, result.count(JobOutcome::TimedOut));
    u64 recovered = 0, attempts = 0;
    for (const JobResult &job : result.jobs) {
        recovered += job.recovered ? 1 : 0;
        attempts += job.attempts;
    }
    out += ", \"recovered\": ";
    appendU64(&out, recovered);
    out += ", \"attempts\": ";
    appendU64(&out, attempts);
    out += "},\n  \"jobs\": [\n";
    for (size_t i = 0; i < result.jobs.size(); ++i) {
        const JobResult &job = result.jobs[i];
        out += "    {\"id\": ";
        appendU64(&out, job.id);
        out += ", \"name\": ";
        appendEscaped(&out, job.name);
        out += ", \"workload\": \"";
        out += workloadKindName(job.workload);
        out += "\", \"workload_seed\": ";
        appendU64(&out, job.workloadSeed);
        out += ", \"outcome\": \"";
        out += jobOutcomeName(job.outcome);
        out += "\", \"attempts\": ";
        appendU64(&out, job.attempts);
        out += ", \"recovered\": ";
        out += job.recovered ? "true" : "false";
        out += ", \"cycles\": ";
        appendU64(&out, job.cycles);
        out += ", \"instrs\": ";
        appendU64(&out, job.instrs);
        out += ", \"checked_events\": ";
        appendU64(&out, job.checkedEvents);
        out += ", \"digest\": ";
        appendHex(&out, job.digest);
        out += ", \"degrade_level\": ";
        appendU64(&out, job.linkDegradeLevel);
        out += ", \"faults_injected\": ";
        appendU64(&out, job.faultsInjected);
        out += ", \"replay_ran\": ";
        out += job.replayRan ? "true" : "false";
        out += "}";
        out += i + 1 < result.jobs.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    if (opts.includeFailures) {
        out += "  \"failures\": [\n";
        bool first = true;
        for (const JobResult &job : result.jobs) {
            if (!job.artifacts)
                continue;
            if (!first)
                out += ",\n";
            first = false;
            out += "    {\"id\": ";
            appendU64(&out, job.id);
            out += ", \"name\": ";
            appendEscaped(&out, job.name);
            out += ", \"mismatch\": ";
            appendEscaped(&out, job.artifacts->mismatch);
            out += ", \"link_report\": ";
            appendEscaped(&out, job.artifacts->linkReport);
            out += ", \"replay_window\": [";
            for (size_t j = 0; j < job.artifacts->replayTranscript.size();
                 ++j) {
                if (j)
                    out += ", ";
                appendEscaped(&out, job.artifacts->replayTranscript[j]);
            }
            out += "]}";
        }
        out += first ? "  ],\n" : "\n  ],\n";
    }
    out += "  \"aggregate_digest\": ";
    appendHex(&out, aggregateDigest(result.aggregate));
    out += ",\n  \"tables_digest\": ";
    appendHex(&out, result.tablesDigest);
    if (opts.includeTiming) {
        out += ",\n  \"timing\": {";
        out += "\"workers\": ";
        appendU64(&out, result.workers);
        out += ", \"wall_sec\": ";
        appendReal(&out, result.wallSec);
        out += ", \"busy_sec\": ";
        appendReal(&out, result.busySec);
        out += ", \"speedup_x\": ";
        appendReal(&out, result.wallSec > 0
                             ? result.busySec / result.wallSec
                             : 0.0);
        out += ", \"steals\": ";
        appendU64(&out, result.steals);
        out += "}";
    }
    out += "\n}\n";
    return out;
}

} // namespace dth::fleet
