/**
 * @file
 * Machine-readable campaign report (dth-fleet-report-v1).
 *
 * The report is deterministic by construction: jobs are emitted in
 * stable job-id order regardless of completion order, every field in
 * the default report is a pure function of the campaign spec (verdicts,
 * digests, attempt histories, the filtered aggregate), and wall-clock
 * facts (latencies, steals, utilization) appear only in the optional
 * "timing" section. Two runs of the same campaign — at any worker
 * count, on any host — produce byte-identical default reports; the
 * fleet determinism suite and the CI smoke compare them directly.
 */

#ifndef DTH_FLEET_REPORT_H_
#define DTH_FLEET_REPORT_H_

#include <string>

#include "fleet/scheduler.h"
#include "obs/stats.h"

namespace dth::fleet {

/** Current report wire-format identifier. */
inline constexpr std::string_view kFleetReportSchemaId =
    "dth-fleet-report-v1";

struct ReportOptions
{
    /** Emit the wall-clock "timing" section (nondeterministic: the
     *  default report must be byte-identical across worker counts). */
    bool includeTiming = false;
    /** Emit retained failure artifacts (mismatch text, replay window,
     *  link report) in the "failures" section. */
    bool includeFailures = true;
};

/**
 * The deterministic view of a campaign aggregate: integer stats and
 * histograms minus everything wall-clock — the host.* telemetry, the
 * scheduling-dependent fleet stats (fleet.steals, fleet.workers,
 * fleet.queue_latency_us) and all Real accumulators. This is the part
 * of the aggregate guaranteed identical across worker counts.
 */
obs::StatSnapshot deterministicAggregate(const obs::StatSnapshot &agg);

/** FNV-1a digest over the deterministic aggregate (name, kind, value,
 *  histogram contents) — one number to compare across fleet shapes. */
u64 aggregateDigest(const obs::StatSnapshot &agg);

/** Serialize @p result as dth-fleet-report-v1 JSON. */
std::string campaignReportJson(const CampaignResult &result,
                               const ReportOptions &opts = {});

} // namespace dth::fleet

#endif // DTH_FLEET_REPORT_H_
