#include "fleet/scheduler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace dth::fleet {

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Passed: return "passed";
      case JobOutcome::Failed: return "failed";
      case JobOutcome::Degraded: return "degraded";
      case JobOutcome::TimedOut: return "timed-out";
    }
    return "?";
}

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Quarantined: return "quarantined";
      case JobState::Done: return "done";
    }
    return "?";
}

JobOutcome
classifyOutcome(const cosim::CosimResult &result, const JobSpec &spec)
{
    // Order matters: a failed link means the event stream was cut
    // short, so the (unverified) result is "degraded", not "failed" —
    // only degraded attempts are quarantine/retry candidates.
    if (result.linkDegradeLevel >= 2)
        return JobOutcome::Degraded;
    if (!result.verified)
        return JobOutcome::Failed;
    if (result.goodTrap)
        return JobOutcome::Passed;
    if (result.cycles >= spec.maxCycles)
        return JobOutcome::TimedOut;
    // Ran clean to a stop that was neither the good trap nor the cycle
    // budget: a bad trap code.
    return JobOutcome::Failed;
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** FNV-1a digest over the checked-event stream, order-sensitive (the
 *  same folding the chaos-equivalence suite uses). */
struct EventDigest
{
    u64 hash = 0xCBF29CE484222325ull;
    u64 events = 0;

    void
    mix(u64 v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (i * 8)) & 0xFF;
            hash *= 0x100000001B3ull;
        }
    }

    void
    operator()(const Event &e)
    {
        ++events;
        mix(static_cast<u64>(e.type));
        mix(e.core);
        mix(e.index);
        mix(e.commitSeq);
        mix(e.emitSeq);
        for (u8 b : e.payload)
            mix(b);
    }
};

/** Everything one attempt produced. */
struct AttemptOutput
{
    JobOutcome outcome = JobOutcome::Failed;
    cosim::CosimResult result;
    u64 digest = 0;
    u64 checkedEvents = 0;
    double runSec = 0;
    bool wallTimedOut = false;
    std::unique_ptr<FailureArtifacts> artifacts;
};

/**
 * Run attempt @p attempt of @p spec. Attempt 0 uses the spec verbatim;
 * retries re-derive the fault-injector seed and damp the fault rates
 * (transient-fault environment model) — both pure functions of (spec,
 * attempt), so solo and fleet executions see identical attempts.
 */
AttemptOutput
runAttempt(const JobSpec &spec,
           const std::shared_ptr<const workload::Program> &program,
           const std::shared_ptr<const cosim::SharedTables> &tables,
           unsigned attempt)
{
    cosim::CosimConfig cfg = spec.config;
    if (attempt > 0) {
        link::LinkFaultConfig &f = cfg.linkFaults;
        // Mirror CoSimulator's seed derivation so the attempt-0 stream
        // stays exactly what the spec describes, then decorrelate per
        // retry.
        u64 base = f.seed != 0
                       ? f.seed
                       : (cfg.seed * 0x9E3779B97F4A7C15ull) | 1;
        f.seed = (base ^ ((attempt + 1) * 0xA24BAED4963EE407ull)) | 1;
        double scale = 1.0;
        for (unsigned i = 0; i < attempt; ++i)
            scale *= spec.retryFaultDamping;
        f.bitFlipRate *= scale;
        f.truncateRate *= scale;
        f.dropRate *= scale;
        f.duplicateRate *= scale;
        f.reorderRate *= scale;
        f.stallRate *= scale;
    }

    cosim::CoSimulator sim(cfg, program, tables);
    if (spec.hasFault)
        sim.armFault(spec.fault);
    EventDigest digest;
    sim.setCheckedTap([&digest](const Event &e) { digest(e); });

    AttemptOutput out;
    Clock::time_point t0 = Clock::now();
    out.result = sim.run(spec.maxCycles);
    out.runSec = secondsSince(t0);
    out.digest = digest.hash;
    out.checkedEvents = digest.events;
    out.outcome = classifyOutcome(out.result, spec);
    if (spec.wallTimeoutSec > 0 && out.runSec > spec.wallTimeoutSec) {
        out.outcome = JobOutcome::TimedOut;
        out.wallTimedOut = true;
    }
    if (out.outcome != JobOutcome::Passed) {
        auto artifacts = std::make_unique<FailureArtifacts>();
        if (out.result.mismatch.valid) {
            artifacts->mismatch = out.result.mismatch.describe();
            artifacts->replayTranscript =
                sim.coreChecker(out.result.mismatch.core)
                    .replayTranscript();
        }
        artifacts->linkReport = out.result.linkReport.describe();
        out.artifacts = std::move(artifacts);
    }
    return out;
}

/** Fold one finished attempt into the job's record. */
void
applyAttempt(JobResult *job, AttemptOutput &&attempt)
{
    ++job->attempts;
    job->outcome = attempt.outcome;
    job->recovered =
        job->attempts > 1 && attempt.outcome == JobOutcome::Passed;
    job->wallTimedOut = attempt.wallTimedOut;
    job->cycles = attempt.result.cycles;
    job->instrs = attempt.result.instrs;
    job->checkedEvents = attempt.checkedEvents;
    job->digest = attempt.digest;
    job->linkDegradeLevel = attempt.result.linkDegradeLevel;
    job->faultsInjected = attempt.result.linkReport.faultsInjected;
    job->replayRan = attempt.result.replayRan;
    job->counters = std::move(attempt.result.counters);
    job->artifacts = std::move(attempt.artifacts);
    job->runSec += attempt.runSec;
}

} // namespace

unsigned
CampaignResult::count(JobOutcome outcome) const
{
    unsigned n = 0;
    for (const JobResult &job : jobs)
        n += job.outcome == outcome ? 1 : 0;
    return n;
}

bool
CampaignResult::allPassed() const
{
    for (const JobResult &job : jobs)
        if (!job.ok())
            return false;
    return true;
}

std::string
CampaignResult::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%s: %zu jobs on %u workers: %u passed, %u failed, %u degraded, "
        "%u timed out (%.2fs wall, %.2fs serial work, %.2fx)",
        campaign.c_str(), jobs.size(), workers, count(JobOutcome::Passed),
        count(JobOutcome::Failed), count(JobOutcome::Degraded),
        count(JobOutcome::TimedOut), wallSec, busySec,
        wallSec > 0 ? busySec / wallSec : 0.0);
    return buf;
}

FleetScheduler::FleetScheduler(const FleetConfig &config)
    : config_(config)
{
    dth_assert(config_.workers >= 1, "fleet needs at least one worker");
}

CampaignResult
FleetScheduler::run(const Campaign &campaign)
{
    const unsigned workers = config_.workers;
    const size_t n = campaign.jobs.size();

    // The scheduler's own shard of the obs registry.
    obs::StatSheet sheet;
    struct
    {
        obs::StatId jobs, passed, failed, degraded, timedOut;
        obs::StatId attempts, retries, quarantined, recovered;
        obs::StatId steals, programsBuilt, programsReused;
        obs::StatId artifactsRetained, artifactsDropped;
        obs::StatId workers;
        obs::StatId wallSec, busySec, speedup, utilization;
        obs::HistId queueLatencyUs, jobCycles;
    } S;
    S.jobs = sheet.sum("fleet.jobs");
    S.passed = sheet.sum("fleet.jobs_passed");
    S.failed = sheet.sum("fleet.jobs_failed");
    S.degraded = sheet.sum("fleet.jobs_degraded");
    S.timedOut = sheet.sum("fleet.jobs_timed_out");
    S.attempts = sheet.sum("fleet.attempts");
    S.retries = sheet.sum("fleet.retries");
    S.quarantined = sheet.sum("fleet.quarantined");
    S.recovered = sheet.sum("fleet.recovered");
    S.steals = sheet.sum("fleet.steals");
    S.programsBuilt = sheet.sum("fleet.programs_built");
    S.programsReused = sheet.sum("fleet.programs_reused");
    S.artifactsRetained = sheet.sum("fleet.failure_artifacts_retained");
    S.artifactsDropped = sheet.sum("fleet.failure_artifacts_dropped");
    S.workers = sheet.gauge("fleet.workers");
    S.wallSec = sheet.real("fleet.wall_sec");
    S.busySec = sheet.real("fleet.busy_sec");
    S.speedup = sheet.real("fleet.speedup_x");
    S.utilization = sheet.real("fleet.worker_utilization");
    S.queueLatencyUs = sheet.hist("fleet.queue_latency_us");
    S.jobCycles = sheet.hist("fleet.job_cycles");
    // Touch every counter so the campaign snapshot's schema does not
    // depend on which outcomes actually occurred.
    for (obs::StatId id : {S.jobs, S.passed, S.failed, S.degraded,
                           S.timedOut, S.attempts, S.retries,
                           S.quarantined, S.recovered, S.steals,
                           S.programsBuilt, S.programsReused,
                           S.artifactsRetained, S.artifactsDropped})
        sheet.add(id, 0);
    sheet.set(S.workers, workers);
    for (obs::StatId id : {S.wallSec, S.busySec, S.speedup,
                           S.utilization})
        sheet.addReal(id, 0);

    // Shared immutable per-session state: one lint-proven table
    // snapshot for every concurrent session, and one program image per
    // distinct workload point.
    std::shared_ptr<const cosim::SharedTables> tables =
        config_.shareTables ? cosim::SharedTables::acquire() : nullptr;
    ProgramLibrary library;
    std::vector<std::shared_ptr<const workload::Program>> programs;
    programs.reserve(n);
    for (const JobSpec &spec : campaign.jobs)
        programs.push_back(library.get(spec));
    sheet.add(S.programsBuilt, library.builds());
    sheet.add(S.programsReused, library.reuses());
    sheet.add(S.jobs, n);

    // Per-job runtime state and the initial round-robin partition of
    // jobs onto the per-worker deques (deterministic; stealing then
    // rebalances at run time).
    struct Slot
    {
        JobState state = JobState::Queued;
        JobResult result;
        bool dispatched = false;
    };
    std::vector<Slot> slots(n);
    for (size_t i = 0; i < n; ++i) {
        Slot &slot = slots[i];
        slot.result.id = static_cast<unsigned>(i);
        slot.result.name = campaign.jobs[i].name;
        slot.result.workload = campaign.jobs[i].workload;
        slot.result.workloadSeed =
            campaign.jobs[i].workloadOptions.seed;
    }
    std::vector<std::deque<unsigned>> queues(workers);
    std::deque<unsigned> quarantine;
    for (size_t i = 0; i < n; ++i)
        queues[i % workers].push_back(static_cast<unsigned>(i));

    std::vector<obs::TraceLog> traces(workers);
    auto epoch = obs::TraceClock::now();
    if (config_.captureTimeline) {
        for (unsigned w = 0; w < workers; ++w) {
            char name[32];
            std::snprintf(name, sizeof(name), "fleet_worker%u", w);
            traces[w].start(name, w, epoch, config_.timelineCapacity);
        }
    }

    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = n;
    u64 steals = 0;
    size_t artifactsDropped = 0;
    std::vector<unsigned> retained; //!< job ids with artifacts, sorted
    std::vector<double> busy(workers, 0.0);
    Clock::time_point t0 = Clock::now();

    // Pop policy: own deque front, then the quarantine queue, then
    // steal from the back of the fullest other deque.
    auto pick = [&](unsigned w, unsigned *idx, bool *stolen) {
        if (!queues[w].empty()) {
            *idx = queues[w].front();
            queues[w].pop_front();
            return true;
        }
        if (!quarantine.empty()) {
            *idx = quarantine.front();
            quarantine.pop_front();
            return true;
        }
        unsigned victim = w;
        size_t victim_size = 0;
        for (unsigned v = 0; v < workers; ++v) {
            if (v != w && queues[v].size() > victim_size) {
                victim = v;
                victim_size = queues[v].size();
            }
        }
        if (victim_size == 0)
            return false;
        *idx = queues[victim].back();
        queues[victim].pop_back();
        *stolen = true;
        return true;
    };

    auto workerLoop = [&](unsigned w) {
        std::unique_lock<std::mutex> lock(mu);
        while (remaining > 0) {
            unsigned idx = 0;
            bool stolen = false;
            if (!pick(w, &idx, &stolen)) {
                // Jobs are outstanding on other workers; one of them
                // may yet quarantine-requeue, so wait, don't exit.
                cv.wait(lock);
                continue;
            }
            Slot &slot = slots[idx];
            const JobSpec &spec = campaign.jobs[idx];
            if (stolen)
                ++steals;
            slot.state = JobState::Running;
            slot.result.worker = w;
            if (!slot.dispatched) {
                slot.dispatched = true;
                slot.result.queueLatencySec = secondsSince(t0);
                sheet.observe(
                    S.queueLatencyUs,
                    static_cast<u64>(slot.result.queueLatencySec * 1e6));
            }
            unsigned attempt = slot.result.attempts;
            lock.unlock();

            AttemptOutput out;
            {
                obs::ScopedSpan span(traces[w], spec.name.c_str());
                out = runAttempt(spec, programs[idx], tables, attempt);
            }
            busy[w] += out.runSec;

            lock.lock();
            sheet.add(S.attempts);
            bool retry = out.outcome == JobOutcome::Degraded &&
                         attempt < spec.maxRetries;
            applyAttempt(&slot.result, std::move(out));
            if (retry) {
                slot.state = JobState::Quarantined;
                quarantine.push_back(idx);
                sheet.add(S.quarantined);
                sheet.add(S.retries);
            } else {
                slot.state = JobState::Done;
                --remaining;
                switch (slot.result.outcome) {
                  case JobOutcome::Passed: sheet.add(S.passed); break;
                  case JobOutcome::Failed: sheet.add(S.failed); break;
                  case JobOutcome::Degraded:
                    sheet.add(S.degraded);
                    break;
                  case JobOutcome::TimedOut:
                    sheet.add(S.timedOut);
                    break;
                }
                if (slot.result.recovered)
                    sheet.add(S.recovered);
                sheet.observe(S.jobCycles, slot.result.cycles);
                // Bounded failure-artifact retention: lowest job ids
                // win, so the retained set is completion-order
                // independent.
                if (slot.result.artifacts) {
                    retained.insert(
                        std::lower_bound(retained.begin(),
                                         retained.end(), idx),
                        idx);
                    if (retained.size() > config_.maxRetainedFailures) {
                        unsigned evicted = retained.back();
                        retained.pop_back();
                        slots[evicted].result.artifacts.reset();
                        ++artifactsDropped;
                    }
                }
            }
            // Wake idle workers: new quarantine work or progress
            // toward campaign completion.
            cv.notify_all();
        }
        cv.notify_all();
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(workerLoop, w);
    for (std::thread &t : pool)
        t.join();

    double wall = secondsSince(t0);
    double busy_total = 0;
    for (double b : busy)
        busy_total += b;
    sheet.add(S.steals, steals);
    sheet.add(S.artifactsRetained, retained.size());
    sheet.add(S.artifactsDropped, artifactsDropped);
    sheet.addReal(S.wallSec, wall);
    sheet.addReal(S.busySec, busy_total);
    sheet.addReal(S.speedup, wall > 0 ? busy_total / wall : 0.0);
    sheet.addReal(S.utilization,
                  wall > 0 ? busy_total / (wall * workers) : 0.0);

    CampaignResult cr;
    cr.campaign = campaign.name;
    cr.workers = workers;
    cr.wallSec = wall;
    cr.busySec = busy_total;
    cr.steals = steals;
    cr.tablesDigest = tables ? tables->digest() : 0;
    cr.jobs.reserve(n);
    for (Slot &slot : slots)
        cr.jobs.push_back(std::move(slot.result));

    // Cross-session aggregation: every job's snapshot merged in job-id
    // order (so Gauge last-wins is deterministic) plus the fleet shard,
    // through the same kind-aware merge the live registry uses.
    obs::StatSnapshot fleet_snap = sheet.snapshot();
    std::vector<const obs::StatSnapshot *> parts;
    parts.reserve(n + 1);
    for (const JobResult &job : cr.jobs)
        parts.push_back(&job.counters);
    parts.push_back(&fleet_snap);
    std::string err;
    bool merged = obs::mergeSnapshots(&cr.aggregate, parts, &err);
    dth_assert(merged, "campaign aggregation failed: %s", err.c_str());

    if (config_.captureTimeline) {
        std::vector<const obs::TraceLog *> logs;
        for (const obs::TraceLog &log : traces)
            logs.push_back(&log);
        cr.timelineJson = obs::chromeTraceJson(logs);
    }

    // The whole campaign ran against one immutable table snapshot;
    // prove nobody raced on it.
    if (tables)
        tables->assertUnchanged();
    return cr;
}

JobResult
runJobSolo(const JobSpec &spec, unsigned id)
{
    ProgramLibrary library;
    std::shared_ptr<const workload::Program> program = library.get(spec);
    std::shared_ptr<const cosim::SharedTables> tables =
        cosim::SharedTables::acquire();
    JobResult job;
    job.id = id;
    job.name = spec.name.empty() ? "solo" : spec.name;
    job.workload = spec.workload;
    job.workloadSeed = spec.workloadOptions.seed;
    Clock::time_point t0 = Clock::now();
    for (unsigned attempt = 0;; ++attempt) {
        AttemptOutput out = runAttempt(spec, program, tables, attempt);
        bool retry = out.outcome == JobOutcome::Degraded &&
                     attempt < spec.maxRetries;
        applyAttempt(&job, std::move(out));
        if (!retry)
            break;
    }
    job.queueLatencySec = 0;
    job.runSec = secondsSince(t0);
    return job;
}

} // namespace dth::fleet
