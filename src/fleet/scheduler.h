/**
 * @file
 * The campaign fleet scheduler: runs a Campaign's sessions across a
 * bounded worker pool with work stealing, tracks each job through its
 * lifecycle (queued -> running -> passed/failed/degraded/timed-out,
 * with a quarantined detour for link-degraded attempts awaiting
 * retry), and aggregates every session's typed stat snapshot plus the
 * scheduler's own fleet.* stats into one campaign snapshot.
 *
 * Determinism contract (tests/fleet_test.cc, the CI fleet smoke): a
 * job's verdict, checked-stream digest, cycle/instruction counts and
 * attempt history are a pure function of its JobSpec — identical when
 * run solo, in a 1-worker fleet, or in an N-worker fleet, because
 * nothing about scheduling reaches the simulated work. Wall-clock
 * observations (queue latency, run time, steals, utilization) are
 * explicitly nondeterministic and carried separately.
 *
 * Memory contract: per-job retention is bounded. Every job keeps its
 * summary row and stat snapshot; full failure artifacts (mismatch
 * report, replay-window transcript, channel report) are kept only for
 * non-passing jobs, capped at FleetConfig::maxRetainedFailures with
 * lowest-job-id preference so the retained set is completion-order
 * independent.
 */

#ifndef DTH_FLEET_SCHEDULER_H_
#define DTH_FLEET_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "cosim/session.h"
#include "fleet/campaign.h"
#include "obs/stats.h"
#include "obs/trace_log.h"

namespace dth::fleet {

/** Final verdict of one job (after retries). */
enum class JobOutcome : u8 {
    Passed,   //!< verified, hit the good trap
    Failed,   //!< mismatch or bad trap
    Degraded, //!< resilient link failed (structured degraded state)
    TimedOut, //!< exhausted the cycle budget (or the wall safety net)
};

/** Lifecycle state while the campaign runs. */
enum class JobState : u8 { Queued, Running, Quarantined, Done };

const char *jobOutcomeName(JobOutcome outcome);
const char *jobStateName(JobState state);

/** Full failure evidence, retained only for non-passing jobs. */
struct FailureArtifacts
{
    /** checker::MismatchReport::describe() of the failing core. */
    std::string mismatch;
    /** Replay-window instruction transcript (paper Fig. 12 step 8). */
    std::vector<std::string> replayTranscript;
    /** link::ChannelReport::describe(). */
    std::string linkReport;
};

/** One job's record in the campaign report. */
struct JobResult
{
    unsigned id = 0;
    std::string name;
    WorkloadKind workload = WorkloadKind::Microbench;
    u64 workloadSeed = 0;

    JobOutcome outcome = JobOutcome::Failed;
    unsigned attempts = 0;
    /** A quarantined attempt degraded but a retry then passed. */
    bool recovered = false;
    /** The wall-clock safety net fired (nondeterministic path). */
    bool wallTimedOut = false;

    // Deterministic session facts (the solo==fleet guarantee).
    u64 cycles = 0;
    u64 instrs = 0;
    u64 checkedEvents = 0;
    /** FNV-1a digest over the checked-event stream, order-sensitive. */
    u64 digest = 0;
    unsigned linkDegradeLevel = 0;
    u64 faultsInjected = 0;
    bool replayRan = false;

    /** Final attempt's kind-tagged stat snapshot. */
    obs::StatSnapshot counters;

    /** Present only for non-passing jobs within the retention cap. */
    std::unique_ptr<FailureArtifacts> artifacts;

    // Wall-clock observations (excluded from determinism guarantees).
    double queueLatencySec = 0;
    double runSec = 0;
    unsigned worker = 0;

    bool ok() const { return outcome == JobOutcome::Passed; }
};

/** Fleet-wide knobs. */
struct FleetConfig
{
    /** Concurrent sessions; 1 degenerates to a serial campaign. */
    unsigned workers = 1;
    /** Share one lint-proven SharedTables across all sessions. */
    bool shareTables = true;
    /** Failure-artifact retention cap (lowest job ids win). */
    size_t maxRetainedFailures = 32;
    /** Record a per-worker Chrome trace_event timeline of the
     *  campaign (one span per attempt). */
    bool captureTimeline = false;
    size_t timelineCapacity = 1 << 12;
};

/** Everything the campaign produced. */
struct CampaignResult
{
    std::string campaign;
    unsigned workers = 1;
    /** Job-id order (== Campaign::jobs order), not completion order. */
    std::vector<JobResult> jobs;

    /** Kind-aware merge of every job's snapshot (in job-id order, so
     *  Gauge last-wins is deterministic) plus the fleet.* stats. */
    obs::StatSnapshot aggregate;

    /** Shared-tables digest, re-verified at campaign teardown. */
    u64 tablesDigest = 0;

    // Wall-clock facts (nondeterministic).
    double wallSec = 0;
    /** Summed worker busy time ~= the serial campaign cost. */
    double busySec = 0;
    u64 steals = 0;

    /** Chrome trace timeline (empty unless captureTimeline). */
    std::string timelineJson;

    unsigned count(JobOutcome outcome) const;
    bool allPassed() const;
    std::string summary() const;
};

/** Work-stealing campaign scheduler. */
class FleetScheduler
{
  public:
    explicit FleetScheduler(const FleetConfig &config);

    /** Run every job to completion and aggregate. @p campaign must
     *  outlive the call (job names feed the timeline). */
    CampaignResult run(const Campaign &campaign);

    const FleetConfig &config() const { return config_; }

  private:
    FleetConfig config_;
};

/**
 * Run one job alone, through exactly the attempt/quarantine policy the
 * fleet applies — the reference for the solo-vs-fleet determinism
 * suite and for reproducing a single campaign job at a debugger.
 */
JobResult runJobSolo(const JobSpec &spec, unsigned id = 0);

/** Outcome classification shared by the fleet and solo paths. */
JobOutcome classifyOutcome(const cosim::CosimResult &result,
                           const JobSpec &spec);

} // namespace dth::fleet

#endif // DTH_FLEET_SCHEDULER_H_
