#include "link/channel.h"

#include <algorithm>
#include <sstream>

namespace dth::link {

std::string
ChannelReport::describe() const
{
    std::ostringstream os;
    os << "link channel: degrade level " << degradeLevel << " ("
       << (degradeLevel == 0   ? "nominal"
           : degradeLevel == 1 ? "blocking fallback engaged"
                               : "failed")
       << "), " << frames << " frames, " << faultsInjected
       << " faults injected, " << naksSent << " NAKs, " << retxFrames
       << " retransmissions, " << timeouts << " timeouts, " << staleDiscards
       << " stale discards, " << fallbacks << " fallback deliveries, "
       << unrecovered << " unrecoverable";
    return os.str();
}

ResilientChannel::ResilientChannel(const LinkFaultConfig &config,
                                   LinkSimulator *timing,
                                   size_t retx_window_frames)
    : config_(config), timing_(timing), injector_(config),
      retx_(counters_, retx_window_frames)
{
    stat_.frames = counters_.sum("link.frames");
    stat_.frameBytes = counters_.sum("link.frame_bytes");
    stat_.faultInjected = counters_.sum("link.fault.injected");
    stat_.faultBitflip = counters_.sum("link.fault.bitflip");
    stat_.faultTruncate = counters_.sum("link.fault.truncate");
    stat_.faultDrop = counters_.sum("link.fault.drop");
    stat_.faultDuplicate = counters_.sum("link.fault.duplicate");
    stat_.faultReorder = counters_.sum("link.fault.reorder");
    stat_.faultStall = counters_.sum("link.fault.stall");
    stat_.nakSent = counters_.sum("link.nak.sent");
    stat_.retxFrames = counters_.sum("link.retx.frames");
    stat_.retxBytes = counters_.sum("link.retx.bytes");
    stat_.retxTimeouts = counters_.sum("link.retx.timeouts");
    stat_.retxFallbacks = counters_.sum("link.retx.fallbacks");
    stat_.retxUnrecovered = counters_.sum("link.retx.unrecovered");
    stat_.staleDiscards = counters_.sum("link.stale_discards");
    stat_.degradeLevel = counters_.gauge("link.degrade_level");
    stat_.retxAttempts = counters_.hist("link.retx.attempts");

    // Touch everything so the observability schema is independent of
    // which faults a given run happens to hit.
    counters_.add(stat_.frames, 0);
    counters_.add(stat_.frameBytes, 0);
    counters_.add(stat_.faultInjected, 0);
    counters_.add(stat_.faultBitflip, 0);
    counters_.add(stat_.faultTruncate, 0);
    counters_.add(stat_.faultDrop, 0);
    counters_.add(stat_.faultDuplicate, 0);
    counters_.add(stat_.faultReorder, 0);
    counters_.add(stat_.faultStall, 0);
    counters_.add(stat_.nakSent, 0);
    counters_.add(stat_.retxFrames, 0);
    counters_.add(stat_.retxBytes, 0);
    counters_.add(stat_.retxTimeouts, 0);
    counters_.add(stat_.retxFallbacks, 0);
    counters_.add(stat_.retxUnrecovered, 0);
    counters_.add(stat_.staleDiscards, 0);
    counters_.set(stat_.degradeLevel, 0);
}

double
ResilientChannel::timeoutSec(unsigned attempt) const
{
    unsigned exp = std::min(attempt, config_.maxBackoffExp);
    return config_.retxTimeoutSec * static_cast<double>(1ull << exp);
}

void
ResilientChannel::chargeDelay(double sec)
{
    if (timing_)
        timing_->onRecoveryDelay(sec);
}

void
ResilientChannel::setDegradeLevel(unsigned level)
{
    if (level <= degradeLevel_)
        return;
    degradeLevel_ = level;
    counters_.set(stat_.degradeLevel, level);
}

void
ResilientChannel::countInjection(const Injection &inj)
{
    if (!inj.any())
        return;
    if (inj.dropped) {
        counters_.add(stat_.faultDrop);
        counters_.add(stat_.faultInjected);
    }
    if (inj.stalled) {
        counters_.add(stat_.faultStall);
        counters_.add(stat_.faultInjected);
    }
    if (inj.reordered) {
        counters_.add(stat_.faultReorder);
        counters_.add(stat_.faultInjected);
    }
    if (inj.duplicated) {
        counters_.add(stat_.faultDuplicate);
        counters_.add(stat_.faultInjected);
    }
    if (inj.bitFlips > 0) {
        counters_.add(stat_.faultBitflip);
        counters_.add(stat_.faultInjected);
    }
    if (inj.truncatedTo > 0 || (inj.corrupted && inj.bitFlips == 0)) {
        counters_.add(stat_.faultTruncate);
        counters_.add(stat_.faultInjected);
    }
}

bool
ResilientChannel::transmit(const Transfer &in, Transfer &out)
{
    if (failed())
        return false;

    frameScratch_.clear();
    u32 seq = encoder_.encode(in, frameScratch_);
    retx_.record(seq, frameScratch_);
    counters_.add(stat_.frames);
    counters_.add(stat_.frameBytes, frameScratch_.size());

    for (unsigned attempt = 0; attempt < config_.maxAttempts; ++attempt) {
        if (attempt == 0) {
            attemptScratch_ = frameScratch_;
        } else {
            const std::vector<u8> *stored = retx_.request(seq);
            if (stored == nullptr)
                break; // evicted from the window: unrecoverable
            attemptScratch_ = *stored;
            counters_.add(stat_.retxFrames);
            counters_.add(stat_.retxBytes, stored->size());
            if (timing_)
                timing_->onRetransmit(stored->size());
        }

        Injection inj = injector_.mangle(attemptScratch_);
        countInjection(inj);

        if (inj.lost()) {
            // Nothing timely arrives: the receiver's per-transfer timer
            // fires after the (backed-off) timeout and we go again. A
            // reordered frame eventually arrives behind its successor
            // and is discarded as stale by the sequence tracker.
            counters_.add(stat_.retxTimeouts);
            chargeDelay(timeoutSec(attempt));
            if (inj.reordered)
                counters_.add(stat_.staleDiscards);
            continue;
        }

        FaultReport report = decoder_.accept(attemptScratch_, out);
        if (!report.ok()) {
            // Corrupt arrival: the receiver NAKs immediately, which is
            // much cheaper than waiting out the timeout.
            counters_.add(stat_.nakSent);
            chargeDelay(config_.nakSec);
            continue;
        }

        if (inj.duplicated) {
            // The second copy lands behind the now-advanced delivered
            // prefix; the sequence tracker classifies it stale.
            FaultReport dup = decoder_.accept(attemptScratch_, dupScratch_);
            if (dup.fault == FrameFault::SeqStale)
                counters_.add(stat_.staleDiscards);
        }

        retx_.release(seq);
        counters_.observe(stat_.retxAttempts, attempt);
        return true;
    }

    // Unrecoverable at the link level: maxAttempts exhausted or the
    // frame fell out of the retransmit window.
    counters_.add(stat_.retxUnrecovered);
    ++unrecovered_;
    const std::vector<u8> *stored = retx_.request(seq);
    if (unrecovered_ > config_.unrecoverableBudget || stored == nullptr) {
        setDegradeLevel(2);
        return false;
    }

    // Degraded blocking handshake: both endpoints drop to the verified
    // slow path and move the frame intact, at a heavy modeled-time
    // penalty (the full backed-off timeout ladder plus one exchange).
    setDegradeLevel(1);
    counters_.add(stat_.retxFallbacks);
    chargeDelay(timeoutSec(config_.maxBackoffExp) * 2.0);
    attemptScratch_ = *stored;
    FaultReport report = decoder_.accept(attemptScratch_, out);
    if (!report.ok()) {
        // The stored image itself fails validation — nothing left to
        // serve; the channel is dead.
        setDegradeLevel(2);
        return false;
    }
    retx_.release(seq);
    counters_.observe(stat_.retxAttempts, config_.maxAttempts);
    return true;
}

ChannelReport
ResilientChannel::report() const
{
    ChannelReport rep;
    rep.degradeLevel = degradeLevel_;
    rep.frames = counters_.value(stat_.frames);
    rep.faultsInjected = counters_.value(stat_.faultInjected);
    rep.naksSent = counters_.value(stat_.nakSent);
    rep.retxFrames = counters_.value(stat_.retxFrames);
    rep.timeouts = counters_.value(stat_.retxTimeouts);
    rep.staleDiscards = counters_.value(stat_.staleDiscards);
    rep.fallbacks = counters_.value(stat_.retxFallbacks);
    rep.unrecovered = counters_.value(stat_.retxUnrecovered);
    return rep;
}

} // namespace dth::link
