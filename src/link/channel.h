/**
 * @file
 * The resilient transport channel between the hardware-side packer and
 * the host-side unpacker. It models both link endpoints and the wire:
 *
 *   TX: frame (seq + CRC32, link/frame.h) -> retransmit window
 *       (replay/retransmit.h, the Replay token machinery over frames)
 *   wire: LinkFaultInjector mangles each transmission attempt
 *   RX: FrameDecoder validates magic/length/CRC and tracks sequence
 *       numbers; violations raise a NAK, silence raises a timeout
 *
 * Recovery ladder (DESIGN.md §9):
 *   1. NAK/timeout -> retransmit from the window, with per-transfer
 *      timeouts and capped exponential backoff, up to maxAttempts.
 *   2. A frame still undelivered after maxAttempts (or evicted from the
 *      window) is an *unrecoverable* link fault: the endpoints fall
 *      back to the verified blocking handshake, which delivers the
 *      frame intact at a large modeled time penalty (degrade level 1).
 *   3. More unrecoverable faults than the configured budget fail the
 *      channel (degrade level 2): transmit() returns false and the
 *      co-simulator surfaces a structured degraded result — never an
 *      abort.
 *
 * The whole exchange for one transfer runs synchronously at the
 * HW->SW handoff point (the consumer thread in the threaded runtime),
 * so a chaos run is bit-deterministic across host runtimes: the fault
 * pattern is a pure function of the seed and the transfer order, and a
 * recovered run's delivered stream is bit-identical to a fault-free
 * run's.
 */

#ifndef DTH_LINK_CHANNEL_H_
#define DTH_LINK_CHANNEL_H_

#include <string>
#include <vector>

#include "link/fault_injector.h"
#include "link/frame.h"
#include "link/link_sim.h"
#include "obs/stats.h"
#include "replay/retransmit.h"

namespace dth::link {

/** Un-acked frames the TX window retains. Must cover the in-flight
 *  bound (dth_lint: retx-window-bounds). */
inline constexpr size_t kDefaultRetxWindowFrames = 1024;

/** Structured channel health for the run result. */
struct ChannelReport
{
    /** 0 = nominal, 1 = blocking fallback engaged, 2 = failed. */
    unsigned degradeLevel = 0;
    u64 frames = 0;         //!< transfers framed and sent
    u64 faultsInjected = 0; //!< individual fault events fired
    u64 naksSent = 0;       //!< corrupt arrivals bounced back
    u64 retxFrames = 0;     //!< retransmissions served from the window
    u64 timeouts = 0;       //!< silent losses recovered by timeout
    u64 staleDiscards = 0;  //!< duplicate/late frames discarded
    u64 fallbacks = 0;      //!< degraded blocking-handshake deliveries
    u64 unrecovered = 0;    //!< frames past maxAttempts

    bool failed() const { return degradeLevel >= 2; }
    std::string describe() const;
};

/** The TX+wire+RX endpoint-pair model (see file comment). */
class ResilientChannel
{
  public:
    /**
     * @param config fault rates and recovery knobs
     * @param timing modeled-time ledger charged for retransmissions,
     *        timeouts and fallback handshakes (may be null in tests)
     * @param retx_window_frames TX retransmit-window bound
     */
    ResilientChannel(const LinkFaultConfig &config, LinkSimulator *timing,
                     size_t retx_window_frames = kDefaultRetxWindowFrames);

    /**
     * Move one packed transfer across the lossy link. On success @p out
     * is bit-identical to @p in (payload and issue cycle) and true is
     * returned. False means the channel has failed (degrade level 2):
     * the caller must stop the run and surface report().
     */
    bool transmit(const Transfer &in, Transfer &out);

    bool failed() const { return degradeLevel_ >= 2; }
    unsigned degradeLevel() const { return degradeLevel_; }

    ChannelReport report() const;
    obs::StatSheet &counters() { return counters_; }

  private:
    double timeoutSec(unsigned attempt) const;
    void chargeDelay(double sec);
    void setDegradeLevel(unsigned level);
    void countInjection(const Injection &inj);

    LinkFaultConfig config_;
    LinkSimulator *timing_;
    FrameEncoder encoder_;
    FrameDecoder decoder_;
    LinkFaultInjector injector_;

    obs::StatSheet counters_;
    replay::RetransmitBuffer retx_; //!< registers on counters_

    unsigned degradeLevel_ = 0;
    u64 unrecovered_ = 0;

    // Per-transfer scratch: the pristine frame and the mangled attempt
    // image (steady state allocates nothing).
    std::vector<u8> frameScratch_;
    std::vector<u8> attemptScratch_;
    Transfer dupScratch_; //!< duplicate-arrival decode target

    struct
    {
        obs::StatId frames;
        obs::StatId frameBytes;
        obs::StatId faultInjected;
        obs::StatId faultBitflip;
        obs::StatId faultTruncate;
        obs::StatId faultDrop;
        obs::StatId faultDuplicate;
        obs::StatId faultReorder;
        obs::StatId faultStall;
        obs::StatId nakSent;
        obs::StatId retxFrames;
        obs::StatId retxBytes;
        obs::StatId retxTimeouts;
        obs::StatId retxFallbacks;
        obs::StatId retxUnrecovered;
        obs::StatId staleDiscards;
        obs::StatId degradeLevel;
        obs::HistId retxAttempts;
    } stat_;
};

} // namespace dth::link

#endif // DTH_LINK_CHANNEL_H_
