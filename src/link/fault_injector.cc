#include "link/fault_injector.h"

#include <algorithm>

namespace dth::link {

LinkFaultConfig
LinkFaultConfig::allKinds(double rate, u64 seed)
{
    LinkFaultConfig cfg;
    cfg.enabled = true;
    cfg.bitFlipRate = rate;
    cfg.truncateRate = rate;
    cfg.dropRate = rate;
    cfg.duplicateRate = rate;
    cfg.reorderRate = rate;
    cfg.stallRate = rate;
    cfg.seed = seed;
    return cfg;
}

Injection
LinkFaultInjector::mangle(std::vector<u8> &wire)
{
    Injection inj;
    if (!config_.enabled || wire.empty())
        return inj;

    // Fixed draw order keeps the fault pattern a pure function of the
    // seed and the attempt index, independent of which faults fire.
    inj.dropped = rng_.chance(config_.dropRate);
    inj.stalled = rng_.chance(config_.stallRate);
    inj.reordered = rng_.chance(config_.reorderRate);
    inj.duplicated = rng_.chance(config_.duplicateRate);
    bool flip = rng_.chance(config_.bitFlipRate);
    bool truncate = rng_.chance(config_.truncateRate);

    if (inj.lost())
        return inj; // the wire image never reaches the receiver

    if (flip) {
        inj.bitFlips = 1 + static_cast<unsigned>(rng_.nextBelow(3));
        for (unsigned i = 0; i < inj.bitFlips; ++i) {
            size_t byte = rng_.nextBelow(wire.size());
            wire[byte] ^= static_cast<u8>(1u << rng_.nextBelow(8));
        }
        inj.corrupted = true;
    }
    if (truncate) {
        // Short DMA burst: keep a random prefix (possibly empty).
        size_t keep = rng_.nextBelow(wire.size());
        wire.resize(keep);
        inj.truncatedTo = keep;
        inj.corrupted = true;
    }
    return inj;
}

} // namespace dth::link
