/**
 * @file
 * Deterministic link-fault injection for the resilient transport. The
 * injector models the corruption modes real hardware links exhibit —
 * bit flips, truncated DMA bursts, dropped/duplicated/reordered
 * packets and stalled endpoints — as seeded Bernoulli draws per
 * transmission attempt, so any chaos run is exactly reproducible and
 * bit-identical between the serial and threaded host runtimes.
 */

#ifndef DTH_LINK_FAULT_INJECTOR_H_
#define DTH_LINK_FAULT_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dth::link {

/** Fault-injection and recovery-protocol knobs (CosimConfig::linkFaults). */
struct LinkFaultConfig
{
    /** Master switch; when false the link is perfect (frames still carry
     *  CRC + sequence numbers, nothing is ever corrupted). */
    bool enabled = false;

    // Per-attempt fault probabilities, drawn independently.
    double bitFlipRate = 0;   //!< flip 1-3 random bits in the frame
    double truncateRate = 0;  //!< short DMA burst: drop the frame's tail
    double dropRate = 0;      //!< frame vanishes entirely
    double duplicateRate = 0; //!< frame arrives twice
    double reorderRate = 0;   //!< frame overtaken by its successor
    double stallRate = 0;     //!< endpoint stops responding (timeout)

    /** Injector stream seed; 0 derives one from CosimConfig::seed. */
    u64 seed = 0;

    /** Delivery attempts per frame (first send + retransmissions)
     *  before the fault counts as unrecoverable. */
    unsigned maxAttempts = 8;
    /** Unrecoverable faults tolerated (served via the degraded blocking
     *  handshake) before the channel fails the run. */
    unsigned unrecoverableBudget = 4;
    /** Base retransmission timeout; backoff doubles it per attempt. */
    double retxTimeoutSec = 50e-6;
    /** Exponential-backoff cap: timeout <= base * 2^maxBackoffExp. */
    unsigned maxBackoffExp = 5;
    /** NAK turnaround cost (detected corruption, no timeout needed). */
    double nakSec = 5e-6;

    /** Convenience: enable every fault kind at @p rate. */
    static LinkFaultConfig allKinds(double rate, u64 seed);
};

/** One injection decision for a transmission attempt. */
struct Injection
{
    bool dropped = false;    //!< nothing arrives; receiver times out
    bool stalled = false;    //!< endpoint stall; receiver times out
    bool reordered = false;  //!< arrives late, behind its successor
    bool duplicated = false; //!< a second (stale) copy arrives
    unsigned bitFlips = 0;   //!< bits flipped in the wire image
    size_t truncatedTo = 0;  //!< wire size after truncation (0 = intact)
    bool corrupted = false;  //!< bitFlips or truncation applied

    /** The receiver never sees a timely, intact frame. */
    bool
    lost() const
    {
        return dropped || stalled || reordered;
    }

    bool
    any() const
    {
        return lost() || duplicated || corrupted;
    }
};

/**
 * Seeded fault source. mangle() mutates a framed wire image in place
 * and reports what it did; the draw order is fixed (drop, stall,
 * reorder, duplicate, bit flip, truncate) so one seed always yields one
 * fault pattern regardless of the host runtime.
 */
class LinkFaultInjector
{
  public:
    explicit LinkFaultInjector(const LinkFaultConfig &config)
        : config_(config), rng_(config.seed ? config.seed : 1)
    {}

    /** Decide and apply the faults for one transmission attempt. */
    Injection mangle(std::vector<u8> &wire);

    const LinkFaultConfig &config() const { return config_; }

  private:
    LinkFaultConfig config_;
    Rng rng_;
};

} // namespace dth::link

#endif // DTH_LINK_FAULT_INJECTOR_H_
