#include "link/frame.h"

#include <array>
#include <cstdio>

#include "common/bytes.h"

namespace dth::link {

namespace {

/** Reflected CRC-32 lookup table for poly 0xEDB88320. */
constexpr std::array<u32, 256>
makeCrcTable()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<u32, 256> kCrcTable = makeCrcTable();

} // namespace

u32
crc32(std::span<const u8> data)
{
    u32 c = 0xFFFFFFFFu;
    for (u8 byte : data)
        c = kCrcTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

const char *
frameFaultName(FrameFault fault)
{
    switch (fault) {
      case FrameFault::None: return "none";
      case FrameFault::Truncated: return "truncated";
      case FrameFault::BadMagic: return "bad-magic";
      case FrameFault::BadLength: return "bad-length";
      case FrameFault::BadCrc: return "bad-crc";
      case FrameFault::SeqGap: return "seq-gap";
      case FrameFault::SeqStale: return "seq-stale";
    }
    return "?";
}

std::string
FaultReport::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "frame fault %s (seq %u, %zu bytes)",
                  frameFaultName(fault), seq, wireBytes);
    return buf;
}

void
FrameEncoder::encodeAs(const Transfer &transfer, u32 seq,
                       std::vector<u8> &out)
{
    size_t base = out.size();
    ByteWriter w(&out);
    w.reserve(kFrameOverheadBytes + transfer.bytes.size());
    w.putU32(kFrameMagic);
    w.putU32(seq);
    w.putU32(static_cast<u32>(transfer.bytes.size()));
    w.putU64(transfer.issueCycle);
    w.putBytes(transfer.bytes.data(), transfer.bytes.size());
    // The CRC covers everything after the magic.
    u32 crc = crc32(std::span<const u8>(out.data() + base + 4,
                                        out.size() - base - 4));
    w.putU32(crc);
}

FaultReport
FrameDecoder::decodeFrame(std::span<const u8> wire, Transfer &out,
                          u32 *seq_out)
{
    FaultReport report;
    report.wireBytes = wire.size();
    if (seq_out)
        *seq_out = 0;
    if (wire.size() < kFrameOverheadBytes) {
        report.fault = FrameFault::Truncated;
        return report;
    }
    ByteReader r(wire, ByteReader::OnUnderrun::Fail);
    u32 magic = r.getU32();
    u32 seq = r.getU32();
    u32 len = r.getU32();
    u64 issue_cycle = r.getU64();
    report.seq = seq;
    if (seq_out)
        *seq_out = seq;
    if (magic != kFrameMagic) {
        report.fault = FrameFault::BadMagic;
        return report;
    }
    if (len > kMaxFramePayloadBytes) {
        report.fault = FrameFault::BadLength;
        return report;
    }
    if (wire.size() != kFrameOverheadBytes + len) {
        report.fault = FrameFault::Truncated;
        return report;
    }
    auto payload = r.getBytes(len);
    u32 wire_crc = r.getU32();
    u32 computed = crc32(wire.subspan(4, kFrameHeaderBytes - 4 + len));
    if (r.failed() || wire_crc != computed) {
        report.fault = FrameFault::BadCrc;
        return report;
    }
    out.issueCycle = issue_cycle;
    out.bytes.assign(payload.begin(), payload.end());
    return report;
}

FaultReport
FrameDecoder::accept(std::span<const u8> wire, Transfer &out)
{
    u32 seq = 0;
    FaultReport report = decodeFrame(wire, out, &seq);
    if (!report.ok())
        return report;
    // Sequence tracking against the delivered prefix. Comparisons are
    // wrap-safe: a frame is stale when it is at most half the sequence
    // space behind the expectation.
    if (seq != expected_) {
        i32 delta = static_cast<i32>(seq - expected_);
        report.fault =
            delta < 0 ? FrameFault::SeqStale : FrameFault::SeqGap;
        return report;
    }
    ++expected_;
    ++delivered_;
    return report;
}

} // namespace dth::link
