/**
 * @file
 * The resilient transport's framed link format. Every Transfer the
 * hardware-side packer emits is wrapped in one frame before it crosses
 * the modeled DMA/PCIe link:
 *
 *   offset  size  field
 *   0       4     magic (kFrameMagic, little-endian)
 *   4       4     sequence number (per-link, monotonically increasing)
 *   8       4     payload length in bytes
 *   12      8     issue cycle (the Transfer's hardware timestamp)
 *   20      len   payload (the packed Transfer bytes, verbatim)
 *   20+len  4     CRC32 trailer over bytes [4, 20+len)
 *
 * The CRC covers everything after the magic — sequence, length, issue
 * cycle and payload — so any bit flip or truncation that survives the
 * magic/length checks is caught by the trailer. Real Palladium/VU19P
 * deployments see exactly these corruptions (flipped bits, short DMA
 * bursts, duplicated and reordered transfers); the decoder classifies
 * each one as a FrameFault instead of aborting, and the recovery
 * protocol in link/channel.h turns the fault into a NAK/retransmit
 * exchange. tests/frame_test.cc fuzzes every single-bit flip and every
 * truncation length against the decoder.
 */

#ifndef DTH_LINK_FRAME_H_
#define DTH_LINK_FRAME_H_

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "pack/wire.h"

namespace dth::link {

/** Frame boundary marker; deliberately not byte-repetitive so a frame
 *  of zeros (a common truncated-DMA fill pattern) can never alias it. */
inline constexpr u32 kFrameMagic = 0xD1F7E57Au;

/** magic + seq + payloadLen + issueCycle. */
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 4 + 8;

/** CRC32 over [4, header+payload). */
inline constexpr size_t kFrameTrailerBytes = 4;

/** Frame overhead added to every transfer payload. */
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;

/** Payloads are length-prefixed with a u32; bound it well below that so
 *  a corrupt length field can never drive a multi-GB allocation. */
inline constexpr u32 kMaxFramePayloadBytes = 1u << 24;

/** CRC-32 (IEEE 802.3, reflected poly 0xEDB88320), the standard
 *  Ethernet/zlib checksum. crc32("123456789") == 0xCBF43926. */
u32 crc32(std::span<const u8> data);

/** How a received frame can be bad. */
enum class FrameFault : u8 {
    None = 0,
    Truncated,    //!< fewer bytes than header + declared payload + CRC
    BadMagic,     //!< frame boundary marker corrupted
    BadLength,    //!< declared payload length exceeds the sane bound
    BadCrc,       //!< CRC32 trailer mismatch (bit flip in transit)
    SeqGap,       //!< sequence jumped forward: frames were lost
    SeqStale,     //!< sequence at/behind the delivered prefix (duplicate)
};

const char *frameFaultName(FrameFault fault);

/** Structured verdict for one received frame. Corruption yields a
 *  report, never an abort (tests/frame_test.cc fuzzes this). */
struct FaultReport
{
    FrameFault fault = FrameFault::None;
    /** Sequence number involved, when one could be recovered. */
    u32 seq = 0;
    /** Bytes received. */
    size_t wireBytes = 0;

    bool ok() const { return fault == FrameFault::None; }
    std::string describe() const;
};

/**
 * Hardware-side frame writer: stamps consecutive sequence numbers and
 * appends the CRC32 trailer. encode() appends to @p out so callers can
 * reuse one wire buffer across frames (allocation-free steady state).
 */
class FrameEncoder
{
  public:
    /** Frame @p transfer as sequence number @p seq into @p out. */
    static void encodeAs(const Transfer &transfer, u32 seq,
                         std::vector<u8> &out);

    /** Frame @p transfer with the next sequence number (returned). */
    u32
    encode(const Transfer &transfer, std::vector<u8> &out)
    {
        u32 seq = nextSeq_++;
        encodeAs(transfer, seq, out);
        return seq;
    }

    u32 nextSeq() const { return nextSeq_; }

  private:
    u32 nextSeq_ = 0;
};

/**
 * Software-side frame parser. decodeFrame() is stateless: it validates
 * magic, length and CRC and reconstructs the Transfer. The decoder
 * object adds sequence tracking on top: accept() classifies each
 * structurally valid frame against the delivered prefix (gap, stale
 * duplicate, or next-in-order).
 */
class FrameDecoder
{
  public:
    /**
     * Validate @p wire and reconstruct the framed transfer into @p out.
     * Returns a structural verdict only (no sequence tracking); @p out
     * is valid iff the report is ok(). @p seq_out receives the frame's
     * sequence number when the header was readable.
     */
    static FaultReport decodeFrame(std::span<const u8> wire, Transfer &out,
                                   u32 *seq_out);

    /**
     * Full receive path: structural validation plus sequence tracking.
     * On None the delivered prefix advances to @p expected_ + 1.
     */
    FaultReport accept(std::span<const u8> wire, Transfer &out);

    /** Next sequence number the link expects. */
    u32 expectedSeq() const { return expected_; }

    /** Delivered frames so far. */
    u64 delivered() const { return delivered_; }

  private:
    u32 expected_ = 0;
    u64 delivered_ = 0;
};

} // namespace dth::link

#endif // DTH_LINK_FRAME_H_
