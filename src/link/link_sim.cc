#include "link/link_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace dth::link {

LinkSimulator::LinkSimulator(const Platform &platform, double dut_clock_hz,
                             bool non_blocking)
    : platform_(platform), clockHz_(dut_clock_hz),
      nonBlocking_(non_blocking)
{
    dth_assert(clockHz_ > 0, "bad clock");
    stat_.transfers = counters_.sum("link.transfers");
    stat_.bytes = counters_.sum("link.bytes");
    stat_.stallTransfers = counters_.sum("link.stall_transfers");
    stat_.errors = counters_.sum("link.errors");
    stat_.queueDepth = counters_.hist("link.queue_depth");
    counters_.add(stat_.errors, 0); // always present in snapshots
}

double
LinkSimulator::swCost(const SoftwareWork &work, size_t bytes) const
{
    return platform_.swPerTransferSec +
           work.instrsStepped * platform_.swPerInstrSec +
           work.eventsChecked * platform_.swPerEventSec +
           bytes * platform_.swPerByteSec;
}

void
LinkSimulator::onTransfer(u64 issue_cycle, size_t bytes,
                          const SoftwareWork &work)
{
    // Advance hardware emulation to the issuing cycle. A replay
    // retransmission can be accounted slightly after a transfer issued
    // earlier; clamp instead of rewinding.
    if (issue_cycle < lastCycle_)
        issue_cycle = lastCycle_;
    double emul = (issue_cycle - lastCycle_) / clockHz_;
    hwTime_ += emul;
    result_.hwEmulationSec += emul;
    lastCycle_ = issue_cycle;

    // Communication startup: a full handshake in step-and-compare mode;
    // a cheap streaming doorbell in non-blocking mode.
    double sync = platform_.tSyncSec *
                  (nonBlocking_ ? platform_.nonBlockSyncFactor : 1.0);
    hwTime_ += sync;
    result_.startupSec += sync;

    // Data transmission.
    double xmit = bytes / platform_.bwBytesPerSec;
    result_.transmitSec += xmit;

    double cost = swCost(work, bytes);
    result_.transfers += 1;
    result_.bytes += bytes;
    counters_.add(stat_.transfers);
    counters_.add(stat_.bytes, bytes);
    counters_.observe(stat_.queueDepth, inFlight_.size());

    if (!nonBlocking_) {
        // Step-and-compare: the emulator pauses for transmission and
        // until software finishes.
        hwTime_ += xmit + cost;
        result_.softwareSec += cost;
        swFree_ = hwTime_;
        return;
    }

    // Non-blocking: hardware, link and software form a pipeline.
    double arrival;
    if (platform_.hwPaysTransmission) {
        hwTime_ += xmit;
        arrival = hwTime_;
    } else {
        linkFree_ = std::max(linkFree_, hwTime_) + xmit;
        arrival = linkFree_;
    }
    swFree_ = std::max(swFree_, arrival) + cost;
    result_.softwareSec += cost;
    inFlight_.push_back(swFree_);

    // Bounded queue: backpressure stalls the hardware until the oldest
    // queued transfer has been drained by software.
    while (!inFlight_.empty() && inFlight_.front() <= hwTime_)
        inFlight_.pop_front();
    if (inFlight_.size() > platform_.queueDepth) {
        double resume = inFlight_.front();
        if (resume > hwTime_) {
            result_.stallSec += resume - hwTime_;
            hwTime_ = resume;
            counters_.add(stat_.stallTransfers);
        }
        inFlight_.pop_front();
    }
}

void
LinkSimulator::onRetransmit(size_t bytes)
{
    // The recovery path is stop-and-wait: the emulator holds while the
    // frame crosses the link again.
    double xmit = bytes / platform_.bwBytesPerSec;
    hwTime_ += xmit;
    result_.transmitSec += xmit;
    result_.recoverySec += xmit;
}

void
LinkSimulator::onRecoveryDelay(double sec)
{
    hwTime_ += sec;
    result_.recoverySec += sec;
}

LinkResult
LinkSimulator::finish(u64 total_cycles)
{
    if (total_cycles < lastCycle_) {
        // A cycle count that went backwards is a malformed run, not a
        // programming error in this ledger: record it as a structured
        // per-run error and clamp, so the caller can surface it in the
        // run result instead of the process aborting.
        dth_warn("link: cycle count went backwards (%llu < %llu); "
                 "clamping",
                 static_cast<unsigned long long>(total_cycles),
                 static_cast<unsigned long long>(lastCycle_));
        counters_.add(stat_.errors);
        result_.errors += 1;
        total_cycles = lastCycle_;
    }
    double emul = (total_cycles - lastCycle_) / clockHz_;
    hwTime_ += emul;
    result_.hwEmulationSec += emul;
    lastCycle_ = total_cycles;

    // Drain: the run ends when hardware, link and software are done.
    result_.totalSec = std::max({hwTime_, linkFree_, swFree_});
    return result_;
}

} // namespace dth::link
