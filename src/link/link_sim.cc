#include "link/link_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace dth::link {

LinkSimulator::LinkSimulator(const Platform &platform, double dut_clock_hz,
                             bool non_blocking)
    : platform_(platform), clockHz_(dut_clock_hz),
      nonBlocking_(non_blocking)
{
    dth_assert(clockHz_ > 0, "bad clock");
    stat_.transfers = counters_.sum("link.transfers");
    stat_.bytes = counters_.sum("link.bytes");
    stat_.stallTransfers = counters_.sum("link.stall_transfers");
    stat_.queueDepth = counters_.hist("link.queue_depth");
}

double
LinkSimulator::swCost(const SoftwareWork &work, size_t bytes) const
{
    return platform_.swPerTransferSec +
           work.instrsStepped * platform_.swPerInstrSec +
           work.eventsChecked * platform_.swPerEventSec +
           bytes * platform_.swPerByteSec;
}

void
LinkSimulator::onTransfer(u64 issue_cycle, size_t bytes,
                          const SoftwareWork &work)
{
    // Advance hardware emulation to the issuing cycle. A replay
    // retransmission can be accounted slightly after a transfer issued
    // earlier; clamp instead of rewinding.
    if (issue_cycle < lastCycle_)
        issue_cycle = lastCycle_;
    double emul = (issue_cycle - lastCycle_) / clockHz_;
    hwTime_ += emul;
    result_.hwEmulationSec += emul;
    lastCycle_ = issue_cycle;

    // Communication startup: a full handshake in step-and-compare mode;
    // a cheap streaming doorbell in non-blocking mode.
    double sync = platform_.tSyncSec *
                  (nonBlocking_ ? platform_.nonBlockSyncFactor : 1.0);
    hwTime_ += sync;
    result_.startupSec += sync;

    // Data transmission.
    double xmit = bytes / platform_.bwBytesPerSec;
    result_.transmitSec += xmit;

    double cost = swCost(work, bytes);
    result_.transfers += 1;
    result_.bytes += bytes;
    counters_.add(stat_.transfers);
    counters_.add(stat_.bytes, bytes);
    counters_.observe(stat_.queueDepth, inFlight_.size());

    if (!nonBlocking_) {
        // Step-and-compare: the emulator pauses for transmission and
        // until software finishes.
        hwTime_ += xmit + cost;
        result_.softwareSec += cost;
        swFree_ = hwTime_;
        return;
    }

    // Non-blocking: hardware, link and software form a pipeline.
    double arrival;
    if (platform_.hwPaysTransmission) {
        hwTime_ += xmit;
        arrival = hwTime_;
    } else {
        linkFree_ = std::max(linkFree_, hwTime_) + xmit;
        arrival = linkFree_;
    }
    swFree_ = std::max(swFree_, arrival) + cost;
    result_.softwareSec += cost;
    inFlight_.push_back(swFree_);

    // Bounded queue: backpressure stalls the hardware until the oldest
    // queued transfer has been drained by software.
    while (!inFlight_.empty() && inFlight_.front() <= hwTime_)
        inFlight_.pop_front();
    if (inFlight_.size() > platform_.queueDepth) {
        double resume = inFlight_.front();
        if (resume > hwTime_) {
            result_.stallSec += resume - hwTime_;
            hwTime_ = resume;
            counters_.add(stat_.stallTransfers);
        }
        inFlight_.pop_front();
    }
}

LinkResult
LinkSimulator::finish(u64 total_cycles)
{
    dth_assert(total_cycles >= lastCycle_, "cycle count went backwards");
    double emul = (total_cycles - lastCycle_) / clockHz_;
    hwTime_ += emul;
    result_.hwEmulationSec += emul;
    lastCycle_ = total_cycles;

    // Drain: the run ends when hardware, link and software are done.
    result_.totalSec = std::max({hwTime_, linkFree_, swFree_});
    return result_;
}

} // namespace dth::link
