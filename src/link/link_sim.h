/**
 * @file
 * Discrete timing simulator for the hardware/software link. Payload
 * bytes move through the real packers/checker elsewhere; this ledger
 * accounts for *time*: communication startup, data transmission and
 * software processing, in blocking (step-and-compare) or non-blocking
 * (speculative run-ahead with bounded queues and backpressure, §4.5)
 * mode, and attributes the total to the paper's three overhead stages
 * (Fig. 2).
 */

#ifndef DTH_LINK_LINK_SIM_H_
#define DTH_LINK_LINK_SIM_H_

#include <deque>

#include "link/platform.h"
#include "obs/stats.h"

namespace dth::link {

/** Timing attribution for one co-simulation run. */
struct LinkResult
{
    double totalSec = 0;
    double hwEmulationSec = 0; //!< pure DUT emulation time
    double startupSec = 0;     //!< N_invokes * T_sync
    double transmitSec = 0;    //!< N_bytes / BW
    double softwareSec = 0;    //!< REF + compare + parse (serial share)
    double stallSec = 0;       //!< backpressure stalls (non-blocking)
    double recoverySec = 0;    //!< fault recovery: timeouts, NAK turns,
                               //!< degraded blocking handshakes

    u64 transfers = 0;
    u64 bytes = 0;
    u64 errors = 0; //!< structural accounting errors (non-monotonic
                    //!< cycle counts clamped instead of aborting)

    double
    communicationSec() const
    {
        return totalSec - hwEmulationSec;
    }

    /** Fraction of total time spent on communication (paper's >98%). */
    double
    communicationFraction() const
    {
        return totalSec > 0 ? communicationSec() / totalSec : 0;
    }
};

/** Software work performed for one transfer (measured, not modeled). */
struct SoftwareWork
{
    u64 instrsStepped = 0;
    u64 eventsChecked = 0;
    u64 bytesParsed = 0;
};

/** Simulates link timing transfer by transfer. */
class LinkSimulator
{
  public:
    /**
     * @param platform link/host parameters
     * @param dut_clock_hz emulation clock for this DUT's size
     * @param non_blocking overlap software with hardware (bounded queue)
     */
    LinkSimulator(const Platform &platform, double dut_clock_hz,
                  bool non_blocking);

    /** Account one transfer issued at @p issue_cycle. */
    void onTransfer(u64 issue_cycle, size_t bytes,
                    const SoftwareWork &work);

    /** Account one link-level retransmission of @p bytes framed bytes
     *  (recovery path: the emulator is held while the frame repeats). */
    void onRetransmit(size_t bytes);

    /** Charge @p sec of recovery delay (retransmission timeout, NAK
     *  turnaround or degraded blocking handshake) to the hardware
     *  timeline. */
    void onRecoveryDelay(double sec);

    /** Finish the run after @p total_cycles and return the ledger. A
     *  @p total_cycles behind the last accounted transfer is a
     *  structural error: it is clamped and counted in link.errors /
     *  LinkResult::errors rather than aborting the run. */
    LinkResult finish(u64 total_cycles);

    obs::StatSheet &counters() { return counters_; }

  private:
    double swCost(const SoftwareWork &work, size_t bytes) const;

    Platform platform_;
    double clockHz_;
    bool nonBlocking_;

    double hwTime_ = 0;   //!< hardware-side timeline (s)
    double linkFree_ = 0; //!< DMA/streaming link stage free time (s)
    double swFree_ = 0;   //!< software pipeline free time (s)
    u64 lastCycle_ = 0;
    std::deque<double> inFlight_; //!< completion times of queued work

    LinkResult result_;

    obs::StatSheet counters_;
    struct
    {
        obs::StatId transfers;
        obs::StatId bytes;
        obs::StatId stallTransfers;
        obs::StatId errors;
        obs::HistId queueDepth;
    } stat_;
};

} // namespace dth::link

#endif // DTH_LINK_LINK_SIM_H_
