#include "link/platform.h"

#include <cmath>

namespace dth::link {

double
Platform::dutOnlyHz(double gates_millions) const
{
    if (gateScalingExp == 0.0)
        return dutClockHz;
    return dutClockHz *
           std::pow(referenceGatesM / gates_millions, gateScalingExp);
}

Platform
palladiumPlatform()
{
    Platform p;
    p.name = "Cadence Palladium";
    p.dutClockHz = 480e3; // paper Table 7: DUT-only 480 KHz
    p.gateScalingExp = 0.3;
    p.referenceGatesM = 57.6;
    p.tSyncSec = 26.0e-6;       // blocking DPI-C synchronization per call
    p.nonBlockSyncFactor = 0.05; // GFIFO doorbell instead of a full sync
    p.bwBytesPerSec = 80e6;
    p.hwPaysTransmission = false; // GFIFO streams over the internal link
    p.swPerTransferSec = 2.0e-6;
    p.swPerInstrSec = 0.15e-6;
    p.swPerEventSec = 1.2e-6;
    p.swPerByteSec = 4.0e-9;
    p.queueDepth = 64;
    return p;
}

Platform
fpgaPlatform()
{
    Platform p;
    p.name = "Xilinx VU19P FPGA";
    p.dutClockHz = 50e6; // paper Table 7: DUT-only 50 MHz
    p.gateScalingExp = 0.0; // frequency set by critical path, not size
    p.tSyncSec = 1.3e-6;    // PCIe doorbell/descriptor handshake
    p.nonBlockSyncFactor = 0.3;
    p.bwBytesPerSec = 6e9; // XDMA streaming
    p.hwPaysTransmission = false; // DMA engine streams independently
    p.swPerTransferSec = 0.3e-6;
    p.swPerInstrSec = 0.08e-6;
    p.swPerEventSec = 0.03e-6;
    p.swPerByteSec = 0.15e-9;
    p.queueDepth = 256;
    return p;
}

Platform
verilatorPlatform(double gates_millions, unsigned threads)
{
    Platform p;
    p.name = "Verilator";
    p.dutClockHz = verilatorHz(gates_millions, threads);
    p.gateScalingExp = 0.0; // caller passes the actual design size
    p.tSyncSec = 30e-9;     // DPI call in-process
    p.nonBlockSyncFactor = 1.0;
    p.bwBytesPerSec = 8e9; // memcpy
    p.hwPaysTransmission = true;
    p.swPerTransferSec = 0.05e-6;
    p.swPerInstrSec = 0.15e-6;
    p.swPerEventSec = 0.1e-6;
    p.swPerByteSec = 0.2e-9;
    p.queueDepth = 64;
    return p;
}

double
verilatorHz(double gates_millions, unsigned threads)
{
    // Calibrated so 16-thread Verilator on XiangShan-default (57.6 M
    // gates) runs at ~4 KHz, consistent with the paper's 119x/1945x
    // DiffTest-H speedups. Thread scaling is sublinear.
    const double c = 50200.0;
    return c * std::pow(static_cast<double>(threads), 0.55) /
           gates_millions;
}

} // namespace dth::link
