/**
 * @file
 * Platform models for the hardware/software interface, following the
 * paper's LogGP-style analytical model (§3, Eq. 1):
 *
 *   Overhead = N_invokes * T_sync + N_bytes / BW + T_software
 *
 * Presets are calibrated to the paper's measurements: Cadence Palladium
 * (DPI-C synchronization on every call, moderate bandwidth), a Xilinx
 * VU19P FPGA (PCIe/XDMA: expensive handshakes, high bandwidth), and the
 * software RTL-simulator reference point (Verilator).
 */

#ifndef DTH_LINK_PLATFORM_H_
#define DTH_LINK_PLATFORM_H_

#include <string>

#include "common/types.h"

namespace dth::link {

/** One hardware-accelerated verification platform. */
struct Platform
{
    std::string name;

    /** DUT-only emulation speed for the XiangShan-default scale (Hz). */
    double dutClockHz = 500e3;
    /** Exponent for scaling DUT speed with design size (0 = flat). */
    double gateScalingExp = 0.0;
    /** Reference design size for dutClockHz (million gates). */
    double referenceGatesM = 57.6;

    /** Per-invocation handshake/synchronization latency (s). */
    double tSyncSec = 8e-6;
    /**
     * Remaining fraction of tSync in non-blocking mode: streaming
     * primitives (Palladium GFIFO, XDMA descriptor rings) replace the
     * full blocking handshake with a cheap doorbell.
     */
    double nonBlockSyncFactor = 1.0;
    /** Link bandwidth (bytes/s). */
    double bwBytesPerSec = 100e6;
    /** Does the hardware side also spend the transmission time? When
     *  false, a DMA/streaming engine forms its own pipeline stage. */
    bool hwPaysTransmission = true;

    // Host-side software costs.
    double swPerTransferSec = 2e-6; //!< DPI dispatch per transfer
    double swPerInstrSec = 3e-6;    //!< REF step + per-instruction compare
    double swPerEventSec = 0.4e-6;  //!< per-event parse/compare
    double swPerByteSec = 2e-9;     //!< payload parsing

    /** In-flight transfers before backpressure (non-blocking mode). */
    unsigned queueDepth = 64;

    /** DUT-only speed for a design of @p gates_millions. */
    double dutOnlyHz(double gates_millions) const;
};

/** Cadence Palladium emulator. */
Platform palladiumPlatform();

/** Xilinx VU19P FPGA prototype (PCIe XDMA link). */
Platform fpgaPlatform();

/**
 * Software RTL simulation (Verilator/VCS): DUT and checker share one
 * process, so communication is a function call — DiffTest-H still runs
 * there (paper §5), the optimizations just have little to optimize.
 */
Platform verilatorPlatform(double gates_millions, unsigned threads = 16);

/** Software RTL simulation speed model (Verilator, N threads). */
double verilatorHz(double gates_millions, unsigned threads);

} // namespace dth::link

#endif // DTH_LINK_PLATFORM_H_
