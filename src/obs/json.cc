#include "obs/json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace dth::obs {

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

void
appendEscaped(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void
appendDouble(std::string &out, double v)
{
    // %.17g round-trips every finite double bit-exactly.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

std::string
snapshotToJson(const StatSnapshot &snap)
{
    std::string out;
    out += "{\n  \"schema\": \"";
    out += kSnapshotSchemaId;
    out += "\",\n  \"stats\": {";
    bool first = true;
    auto key = [&](const std::string &name) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendEscaped(out, name);
        out += ": ";
    };
    // Integer-kind and real stats share one sorted namespace: walk the
    // two ordered maps in merge order so the output is fully sorted.
    auto ii = snap.integers().begin();
    auto ri = snap.reals().begin();
    while (ii != snap.integers().end() || ri != snap.reals().end()) {
        bool take_int = ri == snap.reals().end() ||
                        (ii != snap.integers().end() &&
                         ii->first < ri->first);
        if (take_int) {
            key(ii->first);
            out += "{\"kind\": \"";
            out += statKindName(snap.kindOf(ii->first));
            out += "\", \"value\": ";
            appendU64(out, ii->second);
            out += "}";
            ++ii;
        } else {
            key(ri->first);
            out += "{\"kind\": \"real\", \"value\": ";
            appendDouble(out, ri->second);
            out += "}";
            ++ri;
        }
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"hists\": {";
    first = true;
    for (const auto &[name, h] : snap.hists()) {
        key(name);
        out += "{\"count\": ";
        appendU64(out, h.count);
        out += ", \"sum\": ";
        appendU64(out, h.sum);
        out += ", \"min\": ";
        appendU64(out, h.min);
        out += ", \"max\": ";
        appendU64(out, h.max);
        out += ", \"buckets\": [";
        for (unsigned b = 0; b < kHistBuckets; ++b) {
            if (b)
                out += ", ";
            appendU64(out, h.buckets[b]);
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

// ---------------------------------------------------------------------------
// Import: minimal recursive-descent parser
// ---------------------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    parse(JsonValue *out)
    {
        if (!value(out, 0))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    inline static constexpr int kMaxDepth = 32;

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    stringBody(std::string *out)
    {
        // Called with pos_ at the opening quote.
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'n': *out += '\n'; break;
              case 't': *out += '\t'; break;
              case 'r': *out += '\r'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Snapshot names are ASCII; keep non-ASCII escapes as '?'.
                *out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    number(JsonValue *out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eat_digits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eat_digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eat_digits();
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+')) {
                ++pos_;
            }
            size_t exp_start = pos_;
            eat_digits();
            if (pos_ == exp_start)
                return false;
        }
        if (!digits)
            return false;
        out->type = JsonValue::Type::Number;
        out->text.assign(text_.substr(start, pos_ - start));
        return true;
    }

    bool
    value(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return false;
        skipWs();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->type = JsonValue::Type::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string name;
                if (!stringBody(&name))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return false;
                ++pos_;
                JsonValue child;
                if (!value(&child, depth + 1))
                    return false;
                out->fields.emplace_back(std::move(name), std::move(child));
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out->type = JsonValue::Type::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue child;
                if (!value(&child, depth + 1))
                    return false;
                out->items.push_back(std::move(child));
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out->type = JsonValue::Type::String;
            return stringBody(&out->text);
        }
        if (c == 't') {
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out->type = JsonValue::Type::Null;
            return literal("null");
        }
        return number(out);
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::field(std::string_view name) const
{
    for (const auto &[key, val] : fields)
        if (key == name)
            return &val;
    return nullptr;
}

u64
JsonValue::asU64() const
{
    if (type != Type::Number)
        return 0;
    return std::strtoull(text.c_str(), nullptr, 10);
}

double
JsonValue::asDouble() const
{
    if (type != Type::Number)
        return 0.0;
    return std::strtod(text.c_str(), nullptr);
}

bool
parseJson(std::string_view text, JsonValue *out)
{
    JsonValue v;
    if (!Parser(text).parse(&v))
        return false;
    *out = std::move(v);
    return true;
}

// ---------------------------------------------------------------------------
// Snapshot import
// ---------------------------------------------------------------------------

bool
snapshotFromJson(StatSnapshot *snap, std::string_view text)
{
    JsonValue root;
    if (!parseJson(text, &root) || root.type != JsonValue::Type::Object)
        return false;
    const JsonValue *schema = root.field("schema");
    if (!schema || schema->type != JsonValue::Type::String ||
        schema->text != kSnapshotSchemaId) {
        return false;
    }

    StatSnapshot result;
    if (const JsonValue *stats = root.field("stats")) {
        if (stats->type != JsonValue::Type::Object)
            return false;
        for (const auto &[name, entry] : stats->fields) {
            if (entry.type != JsonValue::Type::Object)
                return false;
            const JsonValue *kind = entry.field("kind");
            const JsonValue *value = entry.field("value");
            if (!kind || kind->type != JsonValue::Type::String || !value ||
                value->type != JsonValue::Type::Number) {
                return false;
            }
            StatKind k;
            if (!statKindFromName(kind->text, &k))
                return false;
            if (k == StatKind::Real)
                result.setReal(name, value->asDouble());
            else
                result.setInt(name, k, value->asU64());
        }
    }
    if (const JsonValue *hists = root.field("hists")) {
        if (hists->type != JsonValue::Type::Object)
            return false;
        for (const auto &[name, entry] : hists->fields) {
            if (entry.type != JsonValue::Type::Object)
                return false;
            const JsonValue *count = entry.field("count");
            const JsonValue *sum = entry.field("sum");
            const JsonValue *min = entry.field("min");
            const JsonValue *max = entry.field("max");
            const JsonValue *buckets = entry.field("buckets");
            if (!count || !sum || !min || !max || !buckets ||
                buckets->type != JsonValue::Type::Array ||
                buckets->items.size() != kHistBuckets) {
                return false;
            }
            HistData h;
            h.count = count->asU64();
            h.sum = sum->asU64();
            h.min = min->asU64();
            h.max = max->asU64();
            for (unsigned b = 0; b < kHistBuckets; ++b)
                h.buckets[b] = buckets->items[b].asU64();
            result.setHist(name, h);
        }
    }
    *snap = std::move(result);
    return true;
}

bool
loadSnapshotFile(StatSnapshot *snap, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    bool read_ok = std::ferror(f) == 0;
    std::fclose(f);
    return read_ok && snapshotFromJson(snap, text);
}

bool
writeFile(const std::string &path, std::string_view contents)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
    return std::fclose(f) == 0 && written == contents.size();
}

} // namespace dth::obs
