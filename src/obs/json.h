/**
 * @file
 * JSON import/export for stat snapshots.
 *
 * The exporter writes a machine-readable snapshot with a stable key
 * order (std::map iteration), so two snapshots of the same run are
 * byte-identical and diffable; benches emit these as BENCH_obs.json
 * and `tools/dth_stats` pretty-prints/diffs them. The importer is a
 * deliberately small recursive-descent JSON parser — enough for the
 * exporter's own output plus hand-edited snapshots; it rejects, never
 * aborts, on malformed input.
 */

#ifndef DTH_OBS_JSON_H_
#define DTH_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/stats.h"

namespace dth::obs {

/** A parsed JSON value (import side only; the exporter prints directly). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    /** Number token text (u64 precision survives) or string contents. */
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    /** nullptr when absent or this is not an object. */
    const JsonValue *field(std::string_view name) const;

    u64 asU64() const;
    double asDouble() const;
};

/** Parse @p text; returns false (out untouched on failure) on error. */
bool parseJson(std::string_view text, JsonValue *out);

/** Current snapshot wire-format identifier. */
inline constexpr std::string_view kSnapshotSchemaId = "dth-obs-v1";

/** Serialize a snapshot: stable key order, versioned, round-trippable. */
std::string snapshotToJson(const StatSnapshot &snap);

/** Parse a snapshotToJson document. Returns false on malformed input
 *  or a wrong schema id; @p snap is cleared first. */
bool snapshotFromJson(StatSnapshot *snap, std::string_view text);

/** Load + parse a snapshot file; returns false on I/O or parse error. */
bool loadSnapshotFile(StatSnapshot *snap, const std::string &path);

/** Write @p contents to @p path; returns false on I/O error. */
bool writeFile(const std::string &path, std::string_view contents);

} // namespace dth::obs

#endif // DTH_OBS_JSON_H_
