#include "obs/stats.h"

#include <bit>

namespace dth::obs {

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Sum: return "sum";
      case StatKind::Max: return "max";
      case StatKind::Gauge: return "gauge";
      case StatKind::Real: return "real";
    }
    return "?";
}

bool
statKindFromName(std::string_view name, StatKind *out)
{
    for (StatKind k : {StatKind::Sum, StatKind::Max, StatKind::Gauge,
                       StatKind::Real}) {
        if (name == statKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// HistData
// ---------------------------------------------------------------------------

unsigned
HistData::bucketOf(u64 value)
{
    if (value == 0)
        return 0;
    unsigned width = static_cast<unsigned>(std::bit_width(value));
    return width < kHistBuckets ? width : kHistBuckets - 1;
}

void
HistData::merge(const HistData &other)
{
    if (other.count == 0)
        return;
    count += other.count;
    sum += other.sum;
    if (other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    for (unsigned b = 0; b < kHistBuckets; ++b)
        buckets[b] += other.buckets[b];
}

// ---------------------------------------------------------------------------
// StatSchema
// ---------------------------------------------------------------------------

StatSchema &
StatSchema::global()
{
    static StatSchema schema;
    return schema;
}

StatId
StatSchema::stat(std::string_view name, StatKind kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = statIds_.find(name);
    if (it != statIds_.end()) {
        dth_assert(stats_[it->second].kind == kind,
                   "stat '%.*s' re-registered as %s (was %s)",
                   static_cast<int>(name.size()), name.data(),
                   statKindName(kind),
                   statKindName(stats_[it->second].kind));
        return it->second;
    }
    StatId id = static_cast<StatId>(stats_.size());
    stats_.push_back(StatDesc{std::string(name), kind});
    statIds_.emplace(std::string(name), id);
    return id;
}

HistId
StatSchema::hist(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histIds_.find(name);
    if (it != histIds_.end())
        return it->second;
    HistId id = static_cast<HistId>(hists_.size());
    hists_.emplace_back(name);
    histIds_.emplace(std::string(name), id);
    return id;
}

StatId
StatSchema::findStat(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = statIds_.find(name);
    return it == statIds_.end() ? kInvalidStat : it->second;
}

HistId
StatSchema::findHist(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histIds_.find(name);
    return it == histIds_.end() ? kInvalidHist : it->second;
}

size_t
StatSchema::statCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.size();
}

size_t
StatSchema::histCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hists_.size();
}

StatDesc
StatSchema::statDesc(StatId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    dth_assert(id < stats_.size(), "stat id %u out of range", id);
    return stats_[id];
}

std::string
StatSchema::histName(HistId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    dth_assert(id < hists_.size(), "hist id %u out of range", id);
    return hists_[id];
}

// ---------------------------------------------------------------------------
// StatSnapshot
// ---------------------------------------------------------------------------

u64
StatSnapshot::get(std::string_view name) const
{
    auto it = ints_.find(name);
    return it == ints_.end() ? 0 : it->second;
}

double
StatSnapshot::getReal(std::string_view name) const
{
    auto it = reals_.find(name);
    return it == reals_.end() ? 0.0 : it->second;
}

bool
StatSnapshot::has(std::string_view name) const
{
    return kinds_.find(name) != kinds_.end();
}

StatKind
StatSnapshot::kindOf(std::string_view name) const
{
    auto it = kinds_.find(name);
    return it == kinds_.end() ? StatKind::Sum : it->second;
}

void
StatSnapshot::setInt(const std::string &name, StatKind kind, u64 value)
{
    dth_assert(kind != StatKind::Real, "setInt with real kind");
    ints_[name] = value;
    kinds_[name] = kind;
}

void
StatSnapshot::setReal(const std::string &name, double value)
{
    reals_[name] = value;
    kinds_[name] = StatKind::Real;
}

void
StatSnapshot::setHist(const std::string &name, const HistData &data)
{
    hists_[name] = data;
}

// ---------------------------------------------------------------------------
// StatSheet
// ---------------------------------------------------------------------------

void
StatSheet::growTo(size_t cells)
{
    if (cells_.size() >= cells)
        return;
    cells_.resize(cells, Cell{0});
    kinds_.resize(cells, kUnknownKind);
    touched_.resize(cells, 0);
}

StatId
StatSheet::intern(std::string_view name, StatKind kind)
{
    StatId id = schema_->stat(name, kind);
    growTo(id + 1);
    kinds_[id] = static_cast<u8>(kind);
    return id;
}

HistId
StatSheet::hist(std::string_view name)
{
    HistId id = schema_->hist(name);
    if (hists_.size() <= id)
        hists_.resize(id + 1);
    return id;
}

void
StatSheet::merge(const StatSheet &other)
{
    growTo(other.cells_.size());
    for (StatId id = 0; id < other.cells_.size(); ++id) {
        if (!other.touched_[id])
            continue;
        u8 kind = other.kinds_[id];
        dth_assert(kinds_[id] == kUnknownKind || kinds_[id] == kind,
                   "kind mismatch merging stat id %u", id);
        kinds_[id] = kind;
        touched_[id] = 1;
        switch (static_cast<StatKind>(kind)) {
          case StatKind::Sum:
            cells_[id].u += other.cells_[id].u;
            break;
          case StatKind::Max:
            if (other.cells_[id].u > cells_[id].u)
                cells_[id].u = other.cells_[id].u;
            break;
          case StatKind::Gauge:
            cells_[id].u = other.cells_[id].u;
            break;
          case StatKind::Real:
            cells_[id].d += other.cells_[id].d;
            break;
        }
    }
    if (hists_.size() < other.hists_.size())
        hists_.resize(other.hists_.size());
    for (HistId id = 0; id < other.hists_.size(); ++id)
        hists_[id].merge(other.hists_[id]);
}

void
StatSheet::reset()
{
    std::fill(cells_.begin(), cells_.end(), Cell{0});
    std::fill(touched_.begin(), touched_.end(), u8{0});
    std::fill(hists_.begin(), hists_.end(), HistData{});
}

u64
StatSheet::get(std::string_view name) const
{
    StatId id = schema_->findStat(name);
    if (id == kInvalidStat || id >= cells_.size() || !touched_[id])
        return 0;
    return cells_[id].u;
}

double
StatSheet::getReal(std::string_view name) const
{
    StatId id = schema_->findStat(name);
    if (id == kInvalidStat || id >= cells_.size() || !touched_[id])
        return 0.0;
    return cells_[id].d;
}

const HistData *
StatSheet::findHist(std::string_view name) const
{
    HistId id = schema_->findHist(name);
    if (id == kInvalidHist || id >= hists_.size())
        return nullptr;
    return &hists_[id];
}

void
applySnapshot(StatSheet *sheet, const StatSnapshot &snap)
{
    for (const auto &[name, value] : snap.integers()) {
        switch (snap.kindOf(name)) {
          case StatKind::Sum:
            sheet->add(sheet->sum(name), value);
            break;
          case StatKind::Max:
            sheet->trackMax(sheet->maxStat(name), value);
            break;
          case StatKind::Gauge:
            sheet->set(sheet->gauge(name), value);
            break;
          case StatKind::Real:
            dth_panic("integer stat '%s' carries real kind", name.c_str());
        }
    }
    for (const auto &[name, value] : snap.reals())
        sheet->addReal(sheet->real(name), value);
    for (const auto &[name, data] : snap.hists())
        sheet->mergeHist(sheet->hist(name), data);
}

bool
mergeSnapshots(StatSnapshot *out,
               const std::vector<const StatSnapshot *> &snaps,
               std::string *err)
{
    // Pre-validate kind agreement across the inputs: StatSchema treats a
    // kind conflict as a fatal programming error, but for file-sourced
    // snapshots it is an input error that must be reported, not an
    // abort.
    std::map<std::string, StatKind, std::less<>> kinds;
    for (const StatSnapshot *snap : snaps) {
        for (const auto &[name, value] : snap->integers()) {
            (void)value;
            StatKind kind = snap->kindOf(name);
            auto [it, inserted] = kinds.emplace(name, kind);
            if (!inserted && it->second != kind) {
                if (err) {
                    *err = "stat '" + name + "' declared as " +
                           statKindName(kind) + " and " +
                           statKindName(it->second);
                }
                return false;
            }
        }
    }

    // A private schema keeps foreign snapshot names out of the
    // process-global interner (and away from its kind assertions).
    StatSchema schema;
    StatSheet merged(schema);
    for (const StatSnapshot *snap : snaps) {
        StatSheet shard(schema);
        applySnapshot(&shard, *snap);
        merged.merge(shard);
    }
    *out = merged.snapshot();
    return true;
}

StatSnapshot
StatSheet::snapshot() const
{
    StatSnapshot snap;
    for (StatId id = 0; id < cells_.size(); ++id) {
        if (!touched_[id])
            continue;
        StatDesc desc = schema_->statDesc(id);
        if (static_cast<StatKind>(kinds_[id]) == StatKind::Real)
            snap.setReal(desc.name, cells_[id].d);
        else
            snap.setInt(desc.name, desc.kind, cells_[id].u);
    }
    for (HistId id = 0; id < hists_.size(); ++id) {
        if (hists_[id].count == 0)
            continue;
        snap.setHist(schema_->histName(id), hists_[id]);
    }
    return snap;
}

} // namespace dth::obs
