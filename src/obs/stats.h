/**
 * @file
 * Typed run-wide stat registry (paper §5: the tuning toolkit's
 * performance-evaluation support), replacing the string-keyed
 * PerfCounters map. Design goals, in order:
 *
 *  1. Nothing on the per-event/per-cycle hot path but an array index:
 *     names are interned once at component-construction time into
 *     integer StatIds; every increment afterwards is a bounds-checked
 *     vector write. No std::string construction, no map lookup, no
 *     allocation (tests/obs_test.cc proves this with a global
 *     allocation counter).
 *  2. Kind-correct merging by construction: every stat carries an
 *     explicit kind — Sum (adds), Max (high-water mark), Gauge
 *     (instantaneous, last writer wins) or Real (floating-point
 *     accumulator) — and StatSheet::merge combines each cell per its
 *     kind. The legacy PerfCounters::merge summed everything,
 *     silently corrupting max-tracked counters such as
 *     replay.buffered_bytes.
 *  3. Shardable: each component/thread owns a private StatSheet (the
 *     PR-1 producer/consumer split keeps hardware-side and
 *     software-side shards on their owning threads); merge order at
 *     the join is fixed, so merged snapshots are deterministic.
 *
 * Fixed-bucket log2 histograms (packet payload occupancy, fusion
 * depth, ring occupancy, reorder release lag) live in the same sheet
 * under a parallel HistId space.
 */

#ifndef DTH_OBS_STATS_H_
#define DTH_OBS_STATS_H_

#include <array>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace dth::obs {

/** How a stat combines when sheets merge. */
enum class StatKind : u8 {
    Sum,   //!< monotonic counter: merge adds
    Max,   //!< high-water mark: merge takes the maximum
    Gauge, //!< instantaneous value: merge takes the incoming value
    Real,  //!< floating-point accumulator: merge adds
};

/** Lower-case kind name ("sum", "max", "gauge", "real"). */
const char *statKindName(StatKind kind);

/** Parse a kind name; returns false if @p name is unknown. */
bool statKindFromName(std::string_view name, StatKind *out);

using StatId = u32;
using HistId = u32;
inline constexpr StatId kInvalidStat = 0xffffffffu;
inline constexpr HistId kInvalidHist = 0xffffffffu;

/** Log2 bucket count: bucket 0 holds value 0, bucket b holds values in
 *  [2^(b-1), 2^b - 1], the last bucket everything >= 2^(kHistBuckets-2). */
inline constexpr unsigned kHistBuckets = 16;

/** One fixed-bucket histogram: log2 buckets plus count/sum/min/max. */
struct HistData
{
    u64 count = 0;
    u64 sum = 0;
    u64 min = ~0ull; //!< meaningless until count > 0
    u64 max = 0;
    std::array<u64, kHistBuckets> buckets{};

    static unsigned bucketOf(u64 value);

    void
    observe(u64 value)
    {
        ++count;
        sum += value;
        if (value < min)
            min = value;
        if (value > max)
            max = value;
        ++buckets[bucketOf(value)];
    }

    void merge(const HistData &other);
    double mean() const { return count ? double(sum) / double(count) : 0; }

    bool operator==(const HistData &) const = default;
};

/** Name + kind of one registered stat. */
struct StatDesc
{
    std::string name;
    StatKind kind;
};

/**
 * Process-wide name -> id interner. All methods are mutex-guarded and
 * cold: components intern at construction time; the hot path never
 * touches the schema. Interning the same name twice returns the same
 * id; interning it with a different kind is a fatal error (the kind is
 * part of the contract).
 */
class StatSchema
{
  public:
    static StatSchema &global();

    StatId stat(std::string_view name, StatKind kind);
    HistId hist(std::string_view name);

    /** kInvalidStat / kInvalidHist when the name was never interned. */
    StatId findStat(std::string_view name) const;
    HistId findHist(std::string_view name) const;

    size_t statCount() const;
    size_t histCount() const;

    StatDesc statDesc(StatId id) const;
    std::string histName(HistId id) const;

  private:
    mutable std::mutex mu_;
    std::vector<StatDesc> stats_;
    std::map<std::string, StatId, std::less<>> statIds_;
    std::vector<std::string> hists_;
    std::map<std::string, HistId, std::less<>> histIds_;
};

/**
 * A materialized, name-keyed view of a sheet: the run-result /
 * exporter form. Ordered maps give a stable key order for the JSON
 * exporter and bit-exact comparability across runs. All access is
 * cold-path.
 */
class StatSnapshot
{
  public:
    u64 get(std::string_view name) const;
    double getReal(std::string_view name) const;

    /** Ratio of two integer stats; 0 when the denominator is 0. */
    double
    ratio(std::string_view num, std::string_view den) const
    {
        u64 d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    bool has(std::string_view name) const;
    /** Kind of @p name; Sum if absent (callers check has() first). */
    StatKind kindOf(std::string_view name) const;

    const std::map<std::string, u64, std::less<>> &integers() const
    {
        return ints_;
    }
    const std::map<std::string, double, std::less<>> &reals() const
    {
        return reals_;
    }
    const std::map<std::string, HistData, std::less<>> &hists() const
    {
        return hists_;
    }

    void setInt(const std::string &name, StatKind kind, u64 value);
    void setReal(const std::string &name, double value);
    void setHist(const std::string &name, const HistData &data);

    bool empty() const { return ints_.empty() && reals_.empty() &&
                                hists_.empty(); }

    bool operator==(const StatSnapshot &) const = default;

  private:
    std::map<std::string, u64, std::less<>> ints_;
    std::map<std::string, double, std::less<>> reals_;
    std::map<std::string, StatKind, std::less<>> kinds_;
    std::map<std::string, HistData, std::less<>> hists_;
};

/**
 * One shard of stat storage: a flat cell array indexed by StatId. Each
 * component (and each pipeline thread) owns its own sheet; merging is
 * kind-aware and deterministic. Hot-path mutators are inline array
 * writes.
 */
class StatSheet
{
  public:
    explicit StatSheet(StatSchema &schema = StatSchema::global())
        : schema_(&schema)
    {}

    // ---- registration (cold; component constructors) -------------------
    StatId sum(std::string_view name)
    {
        return intern(name, StatKind::Sum);
    }
    StatId maxStat(std::string_view name)
    {
        return intern(name, StatKind::Max);
    }
    StatId gauge(std::string_view name)
    {
        return intern(name, StatKind::Gauge);
    }
    StatId real(std::string_view name)
    {
        return intern(name, StatKind::Real);
    }
    HistId hist(std::string_view name);

    // ---- hot-path mutators (array writes, no strings, no maps) ---------
    void
    add(StatId id, u64 delta = 1)
    {
        touch(id, StatKind::Sum);
        cells_[id].u += delta;
    }

    void
    trackMax(StatId id, u64 value)
    {
        touch(id, StatKind::Max);
        if (value > cells_[id].u)
            cells_[id].u = value;
    }

    void
    set(StatId id, u64 value)
    {
        touch(id, StatKind::Gauge);
        cells_[id].u = value;
    }

    void
    addReal(StatId id, double delta)
    {
        touch(id, StatKind::Real);
        cells_[id].d += delta;
    }

    void
    observe(HistId id, u64 value)
    {
        dth_assert(id < hists_.size(), "hist id %u out of range", id);
        hists_[id].observe(value);
    }

    /** Fold a whole histogram into one of this sheet's (cold path;
     *  snapshot import and cross-session aggregation). */
    void
    mergeHist(HistId id, const HistData &data)
    {
        dth_assert(id < hists_.size(), "hist id %u out of range", id);
        hists_[id].merge(data);
    }

    // ---- hot-path reads -------------------------------------------------
    u64
    value(StatId id) const
    {
        return id < cells_.size() ? cells_[id].u : 0;
    }

    double
    realValue(StatId id) const
    {
        return id < cells_.size() ? cells_[id].d : 0.0;
    }

    // ---- shard combination (cold) ---------------------------------------
    /** Kind-aware merge: Sum/Real add, Max takes the maximum, Gauge
     *  takes the incoming value. */
    void merge(const StatSheet &other);

    /** Zero every cell and histogram, keeping capacity and interned ids
     *  (per-run reset of a reused sheet). */
    void reset();

    // ---- cold, string-keyed reads (tests, analysis, back-compat) -------
    u64 get(std::string_view name) const;
    double getReal(std::string_view name) const;

    double
    ratio(std::string_view num, std::string_view den) const
    {
        u64 d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** nullptr when the histogram was never interned. */
    const HistData *findHist(std::string_view name) const;

    /** Materialize every touched stat / populated histogram. */
    StatSnapshot snapshot() const;

    StatSchema &schema() const { return *schema_; }

  private:
    union Cell
    {
        u64 u;
        double d;
    };
    static_assert(sizeof(Cell) == 8, "cells are one machine word");

    inline constexpr static u8 kUnknownKind = 0xff;

    void
    touch(StatId id, StatKind kind)
    {
        dth_assert(id < cells_.size(), "stat id %u out of range", id);
        dth_assert(kinds_[id] == static_cast<u8>(kind),
                   "kind mismatch on stat id %u", id);
        touched_[id] = 1;
    }

    StatId intern(std::string_view name, StatKind kind);
    void growTo(size_t cells);

    StatSchema *schema_;
    std::vector<Cell> cells_;
    std::vector<u8> kinds_; //!< valid where interned-here or merged-in
    std::vector<u8> touched_;
    std::vector<HistData> hists_;
};

/**
 * Re-materialize a snapshot into @p sheet (names re-interned into the
 * sheet's schema, values applied through the kind-correct mutators), so
 * StatSheet::merge — the one kind-aware merge implementation — can
 * combine snapshots that came back from dth-obs-v1 files or other
 * sessions.
 */
void applySnapshot(StatSheet *sheet, const StatSnapshot &snap);

/**
 * Kind-aware merge of @p snaps in order: Sum and Real add, Max takes
 * the maximum, Gauge takes the last snapshot's value, histograms
 * combine bucket-wise. The combination itself is StatSheet::merge over
 * a private schema, so file merging can never disagree with how live
 * shards merge. Returns false (with @p err set) when two inputs
 * declare the same stat with different kinds.
 */
bool mergeSnapshots(StatSnapshot *out,
                    const std::vector<const StatSnapshot *> &snaps,
                    std::string *err);

} // namespace dth::obs

#endif // DTH_OBS_STATS_H_
