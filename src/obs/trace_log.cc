#include "obs/trace_log.h"

#include <cinttypes>
#include <cstdio>

namespace dth::obs {

void
TraceLog::start(std::string threadName, u32 tid, TraceClock::time_point epoch,
                size_t capacity)
{
    enabled_ = true;
    threadName_ = std::move(threadName);
    tid_ = tid;
    epoch_ = epoch;
    spans_.clear();
    spans_.reserve(capacity);
    dropped_ = 0;
}

void
TraceLog::clear()
{
    enabled_ = false;
    threadName_.clear();
    spans_.clear();
    spans_.shrink_to_fit();
    dropped_ = 0;
}

std::string
chromeTraceJson(const std::vector<const TraceLog *> &logs)
{
    std::string out;
    out += "{\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };
    char buf[256];
    sep();
    out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"args\": {\"name\": \"difftest-h\"}}";
    for (const TraceLog *log : logs) {
        sep();
        std::snprintf(buf, sizeof(buf),
                      "  {\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                      log->tid(), log->threadName().c_str());
        out += buf;
    }
    for (const TraceLog *log : logs) {
        for (const TraceSpan &span : log->spans()) {
            sep();
            // ts/dur are microseconds; keep ns resolution as a fraction.
            std::snprintf(
                buf, sizeof(buf),
                "  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %" PRIu64
                ".%03u, \"dur\": %" PRIu64 ".%03u, \"pid\": 1, \"tid\": %u}",
                span.name, span.beginNs / 1000,
                static_cast<unsigned>(span.beginNs % 1000),
                (span.endNs - span.beginNs) / 1000,
                static_cast<unsigned>((span.endNs - span.beginNs) % 1000),
                log->tid());
            out += buf;
        }
    }
    out += "\n]}\n";
    return out;
}

} // namespace dth::obs
