/**
 * @file
 * Chrome trace_event timeline capture for the host pipeline.
 *
 * Each pipeline thread owns one TraceLog; the serial driver owns a
 * single log. Spans are recorded as (static name, begin, end) pairs
 * relative to a run-wide epoch, so the producer and consumer timelines
 * line up in the viewer. Capture is off unless a log was started, and
 * the hot path then pays one clock read per span edge plus a vector
 * write into pre-reserved storage — no strings, no allocation until
 * the reserve is exhausted (further spans are counted as dropped, not
 * grown, to keep capture overhead bounded).
 *
 * writeChromeTrace() emits the JSON Array Format understood by
 * chrome://tracing and https://ui.perfetto.dev.
 */

#ifndef DTH_OBS_TRACE_LOG_H_
#define DTH_OBS_TRACE_LOG_H_

#include <chrono>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/stats.h"

namespace dth::obs {

using TraceClock = std::chrono::steady_clock;

/** One completed phase on one thread. @c name must be a string literal
 *  (or otherwise outlive the log). Times are ns since the log epoch. */
struct TraceSpan
{
    const char *name;
    u64 beginNs;
    u64 endNs;
};

/** Per-thread span recorder. Not thread-safe: one owner thread writes,
 *  and readers wait for that thread to finish (the pipeline join). */
class TraceLog
{
  public:
    /** Arm the log. @p capacity bounds memory; spans past it count as
     *  dropped. All logs of a run share @p epoch. */
    void start(std::string threadName, u32 tid, TraceClock::time_point epoch,
               size_t capacity);

    /** Disarm and release storage (per-run reset of a reused log). */
    void clear();

    bool enabled() const { return enabled_; }

    u64
    nowNs() const
    {
        return static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                TraceClock::now() - epoch_)
                .count());
    }

    void
    addSpan(const char *name, u64 beginNs, u64 endNs)
    {
        if (spans_.size() < spans_.capacity())
            spans_.push_back(TraceSpan{name, beginNs, endNs});
        else
            ++dropped_;
    }

    const std::string &threadName() const { return threadName_; }
    u32 tid() const { return tid_; }
    const std::vector<TraceSpan> &spans() const { return spans_; }
    u64 dropped() const { return dropped_; }

  private:
    bool enabled_ = false;
    std::string threadName_;
    u32 tid_ = 0;
    TraceClock::time_point epoch_{};
    std::vector<TraceSpan> spans_;
    u64 dropped_ = 0;
};

/**
 * RAII span: records [construction, destruction) into @p log when
 * capture is armed, otherwise costs one branch.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceLog &log, const char *name) : log_(log), name_(name)
    {
        if (log_.enabled())
            beginNs_ = log_.nowNs();
    }

    ~ScopedSpan()
    {
        if (log_.enabled())
            log_.addSpan(name_, beginNs_, log_.nowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceLog &log_;
    const char *name_;
    u64 beginNs_ = 0;
};

/** Serialize @p logs as Chrome trace_event JSON (ph:"X" spans plus
 *  thread_name metadata); timestamps in microseconds since the epoch. */
std::string chromeTraceJson(const std::vector<const TraceLog *> &logs);

} // namespace dth::obs

#endif // DTH_OBS_TRACE_LOG_H_
