#include "pack/muxtree.h"

namespace dth {

std::vector<unsigned>
prefixValidCounts(const std::vector<bool> &valid)
{
    std::vector<unsigned> counts(valid.size(), 0);
    unsigned running = 0;
    for (size_t i = 0; i < valid.size(); ++i) {
        counts[i] = running;
        if (valid[i])
            ++running;
    }
    return counts;
}

std::vector<unsigned>
compactValidIndices(const std::vector<bool> &valid)
{
    // Mirror the mux-tree selection rule: input i drives output k iff
    // valid[i] && prefix[i] == k.
    std::vector<unsigned> prefix = prefixValidCounts(valid);
    unsigned total = 0;
    for (bool v : valid)
        total += v ? 1 : 0;
    std::vector<unsigned> out(total, 0);
    for (size_t i = 0; i < valid.size(); ++i) {
        if (valid[i])
            out[prefix[i]] = static_cast<unsigned>(i);
    }
    return out;
}

} // namespace dth
