/**
 * @file
 * Type-level packing primitive (paper Fig. 7): select the K-th valid
 * entry out of N incoming same-type entries using per-entry prefix
 * counters, exactly as the hardware mux-tree does. The software model is
 * a faithful (if sequentialized) implementation of that parallel logic.
 */

#ifndef DTH_PACK_MUXTREE_H_
#define DTH_PACK_MUXTREE_H_

#include <vector>

#include "common/types.h"

namespace dth {

/**
 * For each input position i, the number of valid entries strictly before
 * i (the hardware's per-entry prefix counter).
 */
std::vector<unsigned> prefixValidCounts(const std::vector<bool> &valid);

/**
 * Compacted selection: output[k] is the input index of the k-th valid
 * entry; an input i is chosen as output k iff it is valid and exactly
 * k entries before it are valid.
 */
std::vector<unsigned> compactValidIndices(const std::vector<bool> &valid);

} // namespace dth

#endif // DTH_PACK_MUXTREE_H_
