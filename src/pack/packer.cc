#include "pack/packer.h"

#include <algorithm>

#include "common/logging.h"
#include "pack/muxtree.h"

namespace dth {

Packer::Packer()
{
    stat_.transfers = counters_.sum("pack.transfers");
    stat_.bytes = counters_.sum("pack.bytes");
    stat_.validBytes = counters_.sum("pack.valid_bytes");
    stat_.bubbleBytes = counters_.sum("pack.bubble_bytes");
    stat_.frames = counters_.sum("pack.frames");
    stat_.utilizationSum = counters_.real("pack.utilization_sum");
    stat_.utilizationSamples = counters_.sum("pack.utilization_samples");
    stat_.payloadBytes = counters_.hist("pack.payload_bytes");
}

void
Packer::countTransfer(size_t bytes)
{
    counters_.add(stat_.transfers);
    counters_.add(stat_.bytes, bytes);
    counters_.observe(stat_.payloadBytes, bytes);
}

// ---------------------------------------------------------------------------
// PerEventPacker: one DPI-style call per event.
// ---------------------------------------------------------------------------

void
PerEventPacker::packCycle(const CycleEvents &cycle,
                          std::vector<Transfer> &out)
{
    for (const Event &e : cycle.events) {
        ByteWriter w;
        w.reserve(2 + eventWireBytes(e));
        w.putU8(static_cast<u8>(e.type));
        w.putU8(e.core);
        writeEventBody(w, e);
        Transfer t;
        t.bytes = w.take();
        t.issueCycle = cycle.cycle;
        countTransfer(t.size());
        counters_.add(stat_.validBytes, t.size());
        out.push_back(std::move(t));
    }
}

namespace {

/**
 * Validated event reconstruction from untrusted bytes: the type id must
 * name a known wire type before eventInfo()/isVariableLength() may be
 * consulted (both panic on out-of-range ids), and the Fail-mode reader
 * must not have underrun. On failure @p out is left unchanged and
 * @p err describes the violation.
 */
bool
readEventChecked(ByteReader &r, unsigned type_id, u8 core,
                 std::vector<Event> &out, std::string *err)
{
    if (type_id >= kNumWireTypes) {
        *err = "unknown event type id " + std::to_string(type_id);
        return false;
    }
    out.push_back(readEventBody(r, static_cast<EventType>(type_id), core));
    if (r.failed()) {
        out.pop_back();
        *err = "event body truncated (type id " +
               std::to_string(type_id) + ")";
        return false;
    }
    return true;
}

} // namespace

bool
PerEventUnpacker::unpackInto(const Transfer &transfer,
                             std::vector<Event> &out)
{
    const size_t base = out.size();
    ByteReader r(transfer.bytes, ByteReader::OnUnderrun::Fail);
    u8 type_id = r.getU8();
    u8 core = r.getU8();
    if (r.failed())
        return fail("per-event transfer shorter than its header");
    std::string err;
    if (!readEventChecked(r, type_id, core, out, &err))
        return fail("per-event transfer: " + err);
    if (!r.atEnd()) {
        out.resize(base);
        return fail("trailing bytes in per-event transfer");
    }
    return succeed();
}

// ---------------------------------------------------------------------------
// FixedOffsetPacker: per-cycle frames with full-capacity regions.
//
// As in prior-work static packaging, presence is tracked per event
// *category* (a cycle with any commit carries the full control-flow and
// register-update regions, a cycle with any memory access the full
// memory-access regions, and so on); every enabled type of a present
// category occupies its full-capacity region, and invalid entries are
// transmitted as zero bubbles to preserve fixed offsets.
//
// Frame layout:
//   u32 frameLen, u64 presence bitmap (bit core*8+category)
//   per present (core, category), per enabled type in category:
//       u16 count, u16 capacity,
//       capacity x [u8 valid][u32 seq][u32 emit][u8 index][payload]
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kSlotHeader = 1 + kEventWireHeaderBytes; // valid + header

size_t
slotBytes(EventType type)
{
    return kSlotHeader + eventInfo(type).bytesPerEntry;
}

unsigned
categoryOf(unsigned type)
{
    return static_cast<unsigned>(eventInfo(type).category);
}

} // namespace

FixedOffsetPacker::FixedOffsetPacker(
    const std::array<bool, kNumEventTypes> &enabled, unsigned cores,
    unsigned packet_bytes)
    : enabled_(enabled), cores_(cores), packetBytes_(packet_bytes)
{
    dth_assert(cores_ >= 1 && cores_ <= 2, "1 or 2 cores supported");
}

void
FixedOffsetPacker::packCycle(const CycleEvents &cycle,
                             std::vector<Transfer> &out)
{
    if (cycle.events.empty())
        return;

    // Bucket events by (core, type), preserving order. The buckets are
    // member scratch: clear() keeps each bucket's capacity across calls.
    for (unsigned c = 0; c < cores_; ++c)
        for (auto &bucket : buckets_[c])
            bucket.clear();
    for (const Event &e : cycle.events) {
        dth_assert(e.core < cores_, "event from unknown core %u", e.core);
        dth_assert(static_cast<unsigned>(e.type) < kNumEventTypes &&
                       enabled_[static_cast<unsigned>(e.type)],
                   "event type %s not in fixed layout", e.info().name);
        buckets_[e.core][static_cast<unsigned>(e.type)].push_back(&e);
    }

    u64 presence = 0;
    for (unsigned c = 0; c < cores_; ++c)
        for (unsigned t = 0; t < kNumEventTypes; ++t)
            if (!buckets_[c][t].empty())
                presence |= 1ULL << (c * 8 + categoryOf(t));

    frame_.clear();
    ByteWriter w(&frame_);
    w.reserve(12 + cycle.totalBytes());
    w.putU32(0); // frameLen patched below
    w.putU64(presence);
    for (unsigned c = 0; c < cores_; ++c) {
        for (unsigned t = 0; t < kNumEventTypes; ++t) {
            if (!enabled_[t])
                continue;
            if (!(presence & (1ULL << (c * 8 + categoryOf(t)))))
                continue;
            const auto &bucket = buckets_[c][t];
            const EventTypeInfo &info = eventInfo(t);
            u16 count = static_cast<u16>(bucket.size());
            u16 capacity = std::max<u16>(count, info.entriesPerCore);
            w.putU16(count);
            w.putU16(capacity);
            for (unsigned s = 0; s < capacity; ++s) {
                if (s < count) {
                    w.putU8(1);
                    writeEventBody(w, *bucket[s]);
                    counters_.add(stat_.validBytes, slotBytes(info.type));
                } else {
                    w.putZeros(slotBytes(info.type)); // bubble
                    counters_.add(stat_.bubbleBytes, slotBytes(info.type));
                }
            }
        }
    }
    u32 len = static_cast<u32>(frame_.size());
    for (unsigned i = 0; i < 4; ++i)
        frame_[i] = static_cast<u8>(len >> (8 * i));
    counters_.add(stat_.frames);
    lastFrameCycle_ = cycle.cycle;
    emitFrameBytes(frame_, out);
}

void
FixedOffsetPacker::emitFrameBytes(const std::vector<u8> &frame,
                                  std::vector<Transfer> &out)
{
    pending_.insert(pending_.end(), frame.begin(), frame.end());
    while (pending_.size() >= packetBytes_) {
        Transfer t;
        t.bytes.assign(pending_.begin(), pending_.begin() + packetBytes_);
        t.issueCycle = lastFrameCycle_;
        pending_.erase(pending_.begin(), pending_.begin() + packetBytes_);
        countTransfer(t.size());
        out.push_back(std::move(t));
    }
}

void
FixedOffsetPacker::flush(std::vector<Transfer> &out)
{
    if (pending_.empty())
        return;
    Transfer t;
    t.bytes = std::move(pending_);
    t.issueCycle = lastFrameCycle_;
    pending_.clear();
    countTransfer(t.size());
    out.push_back(std::move(t));
}

FixedOffsetUnpacker::FixedOffsetUnpacker(
    const std::array<bool, kNumEventTypes> &enabled, unsigned cores)
    : enabled_(enabled), cores_(cores)
{}

bool
FixedOffsetUnpacker::unpackInto(const Transfer &transfer,
                                std::vector<Event> &events)
{
    const size_t base = events.size();
    // On any structural violation the carry buffer is poisoned too (the
    // frame boundary can no longer be trusted), so reset it: a fail()
    // return from here drops all partial state, and retrying with intact
    // bytes resynchronizes from a transfer boundary.
    auto reject = [&](std::string msg) {
        events.resize(base);
        carry_.clear();
        return fail(std::move(msg));
    };

    carry_.insert(carry_.end(), transfer.bytes.begin(),
                  transfer.bytes.end());
    while (carry_.size() >= 4) {
        u32 frame_len = 0;
        for (unsigned i = 0; i < 4; ++i)
            frame_len |= static_cast<u32>(carry_[i]) << (8 * i);
        if (frame_len < 4 + 8)
            return reject("fixed-offset frame length " +
                          std::to_string(frame_len) +
                          " shorter than its own header");
        if (carry_.size() < frame_len)
            break;
        ByteReader r(std::span<const u8>(carry_.data(), frame_len),
                     ByteReader::OnUnderrun::Fail);
        r.skip(4);
        u64 presence = r.getU64();
        for (unsigned c = 0; c < cores_; ++c) {
            for (unsigned t = 0; t < kNumEventTypes; ++t) {
                if (!enabled_[t])
                    continue;
                if (!(presence &
                      (1ULL << (c * 8 + categoryOf(t)))))
                    continue;
                u16 count = r.getU16();
                u16 capacity = r.getU16();
                if (r.failed() || count > capacity)
                    return reject("fixed-offset region header corrupt");
                for (unsigned s = 0; s < capacity; ++s) {
                    if (s < count) {
                        u8 valid = r.getU8();
                        if (r.failed() || valid != 1)
                            return reject("bad valid flag in "
                                          "fixed-offset slot");
                        std::string err;
                        if (!readEventChecked(r, t, static_cast<u8>(c),
                                              events, &err))
                            return reject("fixed-offset slot: " + err);
                    } else {
                        r.skip(slotBytes(static_cast<EventType>(t)));
                    }
                }
            }
        }
        if (r.failed() || !r.atEnd())
            return reject("fixed-offset frame length mismatch");
        carry_.erase(carry_.begin(), carry_.begin() + frame_len);
    }
    return succeed();
}

// ---------------------------------------------------------------------------
// BatchPacker: 3-level tight packing with metadata.
// ---------------------------------------------------------------------------

BatchPacker::BatchPacker(unsigned packet_bytes) : packetBytes_(packet_bytes)
{
    dth_assert(packet_bytes >= 64, "packet too small: %u", packet_bytes);
    // A packet never exceeds packetBytes_: size the construction buffers
    // once so steady-state packing reallocates neither.
    metas_.reserve(packet_bytes);
    payload_.reserve(packet_bytes);
}

size_t
BatchPacker::freeBytes() const
{
    size_t used = kBatchPacketHeaderBytes + metas_.size() + payload_.size();
    return used >= packetBytes_ ? 0 : packetBytes_ - used;
}

void
BatchPacker::emitPacket(std::vector<Transfer> &out)
{
    if (metas_.empty())
        return;
    ByteWriter w;
    w.reserve(kBatchPacketHeaderBytes + metas_.size() + payload_.size());
    w.putU16(static_cast<u16>(metas_.size() / kBatchMetaBytes));
    w.putU16(0);
    w.putU32(static_cast<u32>(payload_.size()));
    w.putBytes(metas_.data(), metas_.size());
    w.putBytes(payload_.data(), payload_.size());
    Transfer t;
    t.bytes = w.take();
    t.issueCycle = lastCycle_;
    countTransfer(t.size());
    counters_.add(stat_.validBytes, t.size());
    counters_.addReal(stat_.utilizationSum,
                      static_cast<double>(t.size()) / packetBytes_);
    counters_.add(stat_.utilizationSamples);
    out.push_back(std::move(t));
    metas_.clear();
    payload_.clear();
}

void
BatchPacker::packCycle(const CycleEvents &cycle, std::vector<Transfer> &out)
{
    lastCycle_ = cycle.cycle;

    // Level 1 (type-level): bucket the cycle's events by (type, core) in
    // order of first appearance. Within a bucket, relative order is the
    // mux-tree compaction order (emission order). Group slots are a
    // member pool: a reused slot keeps its pointer list's capacity.
    groupsUsed_ = 0;
    auto find_group = [&](EventType type, u8 core) -> Group & {
        for (size_t i = 0; i < groupsUsed_; ++i)
            if (groups_[i].type == type && groups_[i].core == core)
                return groups_[i];
        if (groupsUsed_ == groups_.size())
            groups_.emplace_back();
        Group &g = groups_[groupsUsed_++];
        g.type = type;
        g.core = core;
        g.events.clear();
        return g;
    };
    for (const Event &e : cycle.events)
        find_group(e.type, e.core).events.push_back(&e);

    // Level 2 (cycle-level) + level 3 (transmission-level): append each
    // group's entries; the region offset is implicitly the running sum of
    // preceding group lengths. Split at entry boundaries when the packet
    // fills, generating a continuation meta in the next packet.
    for (size_t gi = 0; gi < groupsUsed_; ++gi) {
        const Group &g = groups_[gi];
        size_t next = 0;
        while (next < g.events.size()) {
            size_t need =
                kBatchMetaBytes + eventWireBytes(*g.events[next]);
            if (freeBytes() < need) {
                emitPacket(out);
                if (freeBytes() < need) {
                    dth_panic("event too large for %u-byte packets: %s",
                              packetBytes_, g.events[next]->info().name);
                }
            }
            size_t meta_pos = metas_.size();
            ByteWriter meta(&metas_);
            meta.putU8(static_cast<u8>(g.type));
            meta.putU8(g.core);
            meta.putU16(0); // count patched below
            u16 count = 0;
            ByteWriter body(&payload_);
            while (next < g.events.size() &&
                   freeBytes() >= eventWireBytes(*g.events[next])) {
                writeEventBody(body, *g.events[next]);
                ++next;
                ++count;
            }
            metas_[meta_pos + 2] = static_cast<u8>(count);
            metas_[meta_pos + 3] = static_cast<u8>(count >> 8);
        }
    }

    // Emit the packet if it is (nearly) full; otherwise keep packing
    // subsequent cycles into the same packet.
    if (freeBytes() < kBatchMetaBytes + kEventWireHeaderBytes + 16)
        emitPacket(out);
}

void
BatchPacker::flush(std::vector<Transfer> &out)
{
    emitPacket(out);
}

bool
BatchUnpacker::unpackInto(const Transfer &transfer, std::vector<Event> &out)
{
    const size_t base = out.size();
    auto reject = [&](std::string msg) {
        out.resize(base);
        return fail(std::move(msg));
    };

    ByteReader r(transfer.bytes, ByteReader::OnUnderrun::Fail);
    u16 meta_count = r.getU16();
    r.skip(2);
    u32 payload_len = r.getU32();
    if (r.failed())
        return reject("batch packet shorter than its header");
    metas_.clear();
    metas_.reserve(meta_count);
    for (unsigned i = 0; i < meta_count; ++i) {
        Meta m;
        u8 type_id = r.getU8();
        m.core = r.getU8();
        m.count = r.getU16();
        if (r.failed())
            return reject("batch meta table truncated");
        if (type_id >= kNumWireTypes)
            return reject("batch meta names unknown event type id " +
                          std::to_string(type_id));
        m.type = static_cast<EventType>(type_id);
        metas_.push_back(m);
    }
    if (r.remaining() != payload_len)
        return reject("batch payload length mismatch: " +
                      std::to_string(r.remaining()) + " vs " +
                      std::to_string(payload_len));
    // Dynamic unpacking: each meta tells the parser which reconstruction
    // function to run and how many entries to consume; offsets are the
    // running sums of the preceding entries' lengths.
    for (const Meta &m : metas_) {
        for (unsigned i = 0; i < m.count; ++i) {
            std::string err;
            if (!readEventChecked(r, static_cast<unsigned>(m.type),
                                  m.core, out, &err))
                return reject("batch entry: " + err);
        }
    }
    if (!r.atEnd())
        return reject("trailing bytes in batch packet");
    return succeed();
}

} // namespace dth
