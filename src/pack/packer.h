/**
 * @file
 * Packing schemes for the hardware-software interface:
 *
 *  - PerEventPacker: the unoptimized DiffTest baseline — one DPI-style
 *    communication per verification event.
 *  - FixedOffsetPacker: prior-work packing (IBI-check/SBS-check style) —
 *    each event type present in a cycle occupies a fixed, full-capacity
 *    region; invalid entries are transmitted as padding bubbles.
 *  - BatchPacker: the paper's Batch — 3-level tight packing (type-level
 *    mux-tree compaction, cycle-level offset computation by prefix
 *    length sums, transmission-level packet filling with splits at
 *    entry boundaries) plus a metadata stream for dynamic unpacking.
 *
 * Every packer turns a stream of CycleEvents into Transfers; matching
 * unpackers reconstruct the event stream on the software side.
 */

#ifndef DTH_PACK_PACKER_H_
#define DTH_PACK_PACKER_H_

#include <array>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "pack/wire.h"

namespace dth {

/** Interface: CycleEvents in, Transfers out. */
class Packer
{
  public:
    virtual ~Packer() = default;

    /** Consume one cycle's events; append any completed transfers. */
    virtual void packCycle(const CycleEvents &cycle,
                           std::vector<Transfer> &out) = 0;

    /** Emit any buffered partial packet. */
    virtual void flush(std::vector<Transfer> &out) = 0;

    obs::StatSheet &counters() { return counters_; }
    const obs::StatSheet &counters() const { return counters_; }

  protected:
    Packer();

    /** Record one emitted transfer of @p bytes payload. */
    void countTransfer(size_t bytes);

    obs::StatSheet counters_;
    struct
    {
        obs::StatId transfers;
        obs::StatId bytes;
        obs::StatId validBytes;
        obs::StatId bubbleBytes;
        obs::StatId frames;
        obs::StatId utilizationSum;
        obs::StatId utilizationSamples;
        obs::HistId payloadBytes;
    } stat_;
};

/**
 * Software-side unpacker interface.
 *
 * Transfer bytes are externally-supplied input (they crossed the
 * hardware link), so parsers never abort on malformed data: every
 * structural violation — short reads, unknown type ids, bad valid
 * flags, length mismatches, trailing bytes — makes unpackInto() return
 * false with @p out unchanged and error() describing the problem, and
 * the caller decides (the resilient channel NAKs the frame; a trace
 * loader reports a bad file).
 */
class Unpacker
{
  public:
    virtual ~Unpacker() = default;

    /**
     * Parse one transfer, appending reconstructed events (in wire
     * order) to @p out. The hot path: callers reuse @p out across
     * transfers so no per-transfer vector is allocated.
     *
     * @return true on success; false on malformed input, with @p out
     *         rolled back to its length at entry and error() set.
     */
    [[nodiscard]] virtual bool unpackInto(const Transfer &transfer,
                                          std::vector<Event> &out) = 0;

    /** Why the last unpackInto() returned false (empty on success). */
    const std::string &error() const { return error_; }

    /** Convenience wrapper returning a fresh vector; panics on
     *  malformed input (trusted round-trip paths and tests only). */
    std::vector<Event>
    unpack(const Transfer &transfer)
    {
        std::vector<Event> out;
        bool ok = unpackInto(transfer, out);
        dth_assert(ok, "unpack of trusted transfer failed: %s",
                   error_.c_str());
        return out;
    }

  protected:
    /** Record @p message and return false (parser early-out idiom). */
    bool
    fail(std::string message)
    {
        error_ = std::move(message);
        return false;
    }

    bool
    succeed()
    {
        error_.clear();
        return true;
    }

    std::string error_;
};

/** Baseline: one transfer per event. */
class PerEventPacker : public Packer
{
  public:
    void packCycle(const CycleEvents &cycle,
                   std::vector<Transfer> &out) override;
    void flush(std::vector<Transfer> &out) override {
        (void)out;
    }
};

/** Unpacker for PerEventPacker transfers. */
class PerEventUnpacker : public Unpacker
{
  public:
    bool unpackInto(const Transfer &transfer,
                    std::vector<Event> &out) override;
};

/** Prior-work fixed-offset packing with padding bubbles. */
class FixedOffsetPacker : public Packer
{
  public:
    /**
     * @param enabled which event types the DUT monitors
     * @param cores number of cores (regions are per core)
     * @param packet_bytes transmission packet capacity
     */
    FixedOffsetPacker(const std::array<bool, kNumEventTypes> &enabled,
                      unsigned cores, unsigned packet_bytes = 4096);

    void packCycle(const CycleEvents &cycle,
                   std::vector<Transfer> &out) override;
    void flush(std::vector<Transfer> &out) override;

  private:
    void emitFrameBytes(const std::vector<u8> &frame,
                        std::vector<Transfer> &out);

    std::array<bool, kNumEventTypes> enabled_;
    unsigned cores_;
    unsigned packetBytes_;
    std::vector<u8> pending_;
    u64 lastFrameCycle_ = 0;
    // Per-call scratch, hoisted so packCycle allocates nothing steady
    // state: (core, type) buckets and the frame under construction.
    std::array<std::array<std::vector<const Event *>, kNumEventTypes>, 2>
        buckets_;
    std::vector<u8> frame_;
};

/** Unpacker for FixedOffsetPacker transfers. */
class FixedOffsetUnpacker : public Unpacker
{
  public:
    FixedOffsetUnpacker(const std::array<bool, kNumEventTypes> &enabled,
                        unsigned cores);

    bool unpackInto(const Transfer &transfer,
                    std::vector<Event> &out) override;

  private:
    std::array<bool, kNumEventTypes> enabled_;
    unsigned cores_;
    std::vector<u8> carry_; //!< partial frame carried across transfers
};

/** The paper's Batch: tight, metadata-guided packing. */
class BatchPacker : public Packer
{
  public:
    explicit BatchPacker(unsigned packet_bytes = 4096);

    void packCycle(const CycleEvents &cycle,
                   std::vector<Transfer> &out) override;
    void flush(std::vector<Transfer> &out) override;

    unsigned packetBytes() const { return packetBytes_; }

  private:
    struct Group
    {
        EventType type;
        u8 core;
        std::vector<const Event *> events;
    };

    void emitPacket(std::vector<Transfer> &out);
    size_t freeBytes() const;

    unsigned packetBytes_;
    // Current packet under construction: meta entries + payload bytes.
    std::vector<u8> metas_;
    std::vector<u8> payload_;
    u64 lastCycle_ = 0;
    // Per-call scratch, hoisted so the per-cycle grouping pass reuses
    // both the group table and each group's pointer list.
    std::vector<Group> groups_;
    size_t groupsUsed_ = 0;
};

/** Meta-guided dynamic unpacker for Batch packets. */
class BatchUnpacker : public Unpacker
{
  public:
    bool unpackInto(const Transfer &transfer,
                    std::vector<Event> &out) override;

  private:
    struct Meta
    {
        EventType type;
        u8 core;
        u16 count;
    };
    std::vector<Meta> metas_; //!< per-call scratch
};

// Batch packet layout constants.
inline constexpr size_t kBatchPacketHeaderBytes = 8; // metaCount, payloadLen
inline constexpr size_t kBatchMetaBytes = 4; // typeId, core, count(u16)

static_assert(kBatchPacketHeaderBytes ==
                  sizeof(u16) + sizeof(u16) + sizeof(u32),
              "batch header is metaCount(u16) + reserved(u16) + "
              "payloadLen(u32)");
static_assert(kBatchMetaBytes == sizeof(u8) + sizeof(u8) + sizeof(u16),
              "batch meta is typeId(u8) + core(u8) + count(u16)");

} // namespace dth

#endif // DTH_PACK_PACKER_H_
