/**
 * @file
 * On-wire encoding shared by all packing schemes: the Transfer (one
 * hardware-software communication invocation) and the per-event wire
 * header. The header carries the order tag (commit sequence number) so
 * the software side can restore the checking order after Squash's
 * order-decoupled transmission.
 */

#ifndef DTH_PACK_WIRE_H_
#define DTH_PACK_WIRE_H_

#include <vector>

#include "common/bytes.h"
#include "event/event.h"

namespace dth {

/** One hardware-to-software communication invocation. */
struct Transfer
{
    std::vector<u8> bytes;
    /** Hardware cycle at which the transfer was issued. */
    u64 issueCycle = 0;

    size_t size() const { return bytes.size(); }
};

/** Per-event wire header: u32 order tag, u32 emission index, u8 slot. */
inline constexpr size_t kEventWireHeaderBytes = 9;

/** Order tags travel as u32: a run is bounded to 2^32 commit seqs. */
inline constexpr unsigned kWireOrderTagBits = 32;

/** Length prefix carried by variable-length wire types. */
inline constexpr size_t kWireLengthPrefixBytes = 2;

static_assert(kEventWireHeaderBytes ==
                  sizeof(u32) + sizeof(u32) + sizeof(u8),
              "kEventWireHeaderBytes must match writeEventBody's header "
              "(order tag + emission index + slot)");
static_assert(kWireOrderTagBits == 8 * sizeof(u32),
              "order tags are serialized as u32");

/** Wire cost of one event under tight packing (header + payload;
 *  variable-length wire types carry an extra u16 length prefix). */
inline size_t
eventWireBytes(const Event &event)
{
    return kEventWireHeaderBytes +
           (isVariableLength(event.type) ? kWireLengthPrefixBytes : 0) +
           event.payload.size();
}

inline void
writeEventBody(ByteWriter &w, const Event &event)
{
    w.putU32(static_cast<u32>(event.commitSeq));
    w.putU32(static_cast<u32>(event.emitSeq));
    w.putU8(event.index);
    if (isVariableLength(event.type))
        w.putU16(static_cast<u16>(event.payload.size()));
    w.putBytes(event.payload.data(), event.payload.size());
}

inline Event
readEventBody(ByteReader &r, EventType type, u8 core)
{
    Event e;
    e.type = type;
    e.core = core;
    e.commitSeq = r.getU32();
    e.emitSeq = r.getU32();
    e.index = r.getU8();
    size_t len = isVariableLength(type) ? r.getU16()
                                        : eventInfo(type).bytesPerEntry;
    auto payload = r.getBytes(len);
    e.payload.assign(payload.begin(), payload.end());
    return e;
}

} // namespace dth

#endif // DTH_PACK_WIRE_H_
