#include "replay/buffer.h"

#include "common/logging.h"

namespace dth::replay {

ReplayBuffer::ReplayBuffer(unsigned cores, size_t capacity_events)
    : capacity_(capacity_events)
{
    rings_.resize(cores);
}

void
ReplayBuffer::record(const Event &event)
{
    dth_assert(event.core < rings_.size(), "event from unknown core %u",
               event.core);
    auto &ring = rings_[event.core];
    if (ring.size() >= capacity_) {
        ring.pop_front();
        counters_.add("replay.evictions");
    }
    ring.push_back(event);
    counters_.add("replay.recorded");
}

std::vector<Event>
ReplayBuffer::request(unsigned core, u64 first_seq, u64 last_seq,
                      bool *complete) const
{
    const auto &ring = rings_[core];
    std::vector<Event> out;
    bool saw_first = false;
    for (const Event &e : ring) {
        if (e.commitSeq < first_seq) {
            continue;
        }
        if (e.commitSeq > last_seq)
            continue; // token filtering: later events are irrelevant
        if (e.commitSeq == first_seq)
            saw_first = true;
        out.push_back(e);
    }
    // The range is complete if nothing below first_seq was evicted: the
    // oldest retained event must not be newer than the window start.
    bool intact = ring.empty() || ring.front().commitSeq <= first_seq ||
                  saw_first;
    if (complete)
        *complete = intact;
    return out;
}

void
ReplayBuffer::release(unsigned core, u64 seq)
{
    auto &ring = rings_[core];
    while (!ring.empty() && ring.front().commitSeq <= seq)
        ring.pop_front();
}

u64
ReplayBuffer::bufferedBytes() const
{
    u64 bytes = 0;
    for (const auto &ring : rings_)
        for (const Event &e : ring)
            bytes += e.wireBytes();
    return bytes;
}

} // namespace dth::replay
