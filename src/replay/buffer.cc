#include "replay/buffer.h"

#include "common/logging.h"

namespace dth::replay {

ReplayBuffer::ReplayBuffer(unsigned cores, size_t capacity_events)
    : capacity_(capacity_events)
{
    rings_.resize(cores);
    stat_.recorded = counters_.sum("replay.recorded");
    stat_.evictions = counters_.sum("replay.evictions");
    stat_.bufferedBytes = counters_.maxStat("replay.buffered_bytes");
    stat_.retransmitEvents = counters_.sum("replay.retransmit_events");
    stat_.retransmitBytes = counters_.sum("replay.retransmit_bytes");
}

void
ReplayBuffer::record(const Event &event)
{
    dth_assert(event.core < rings_.size(), "event from unknown core %u",
               event.core);
    auto &ring = rings_[event.core];
    if (ring.size() >= capacity_) {
        bytes_ -= ring.front().wireBytes();
        ring.pop_front();
        counters_.add(stat_.evictions);
    }
    bytes_ += event.wireBytes();
    ring.push_back(event);
    counters_.add(stat_.recorded);
    // True high-water mark of the buffer, kind Max: merging snapshots
    // keeps the maximum instead of summing (the old PerfCounters::merge
    // bug this registry exists to prevent).
    counters_.trackMax(stat_.bufferedBytes, bytes_);
}

std::vector<Event>
ReplayBuffer::request(unsigned core, u64 first_seq, u64 last_seq,
                      bool *complete) const
{
    const auto &ring = rings_[core];
    std::vector<Event> out;
    bool saw_first = false;
    for (const Event &e : ring) {
        if (e.commitSeq < first_seq) {
            continue;
        }
        if (e.commitSeq > last_seq)
            continue; // token filtering: later events are irrelevant
        if (e.commitSeq == first_seq)
            saw_first = true;
        out.push_back(e);
    }
    // The range is complete if nothing below first_seq was evicted: the
    // oldest retained event must not be newer than the window start.
    bool intact = ring.empty() || ring.front().commitSeq <= first_seq ||
                  saw_first;
    if (complete)
        *complete = intact;
    return out;
}

void
ReplayBuffer::countRetransmit(u64 events, u64 bytes)
{
    counters_.add(stat_.retransmitEvents, events);
    counters_.add(stat_.retransmitBytes, bytes);
}

void
ReplayBuffer::release(unsigned core, u64 seq)
{
    auto &ring = rings_[core];
    while (!ring.empty() && ring.front().commitSeq <= seq) {
        bytes_ -= ring.front().wireBytes();
        ring.pop_front();
    }
}

} // namespace dth::replay
