/**
 * @file
 * Hardware-side replay buffer (paper §4.4 "Range Determination"): the
 * original, unfused verification events are buffered before the
 * acceleration unit. Tokens — here the commit sequence numbers carried
 * by every event — let the software request retransmission of exactly
 * the window around a failure, while filtering out unrelated events
 * that arrived between the bug and the replay notification.
 */

#ifndef DTH_REPLAY_BUFFER_H_
#define DTH_REPLAY_BUFFER_H_

#include <deque>
#include <vector>

#include "event/event.h"
#include "obs/stats.h"

namespace dth::replay {

/** Per-core ring buffer of original (pre-fusion) events. */
class ReplayBuffer
{
  public:
    /**
     * @param cores number of DUT cores
     * @param capacity_events retained events per core (ring)
     */
    explicit ReplayBuffer(unsigned cores, size_t capacity_events = 16384);

    /** Record one original event (called before Squash processing). */
    void record(const Event &event);

    /**
     * Retransmission: all buffered events of @p core with
     * first_seq <= commitSeq <= last_seq, in original emission order.
     * Sets @p complete to false if the range was partially evicted.
     */
    std::vector<Event> request(unsigned core, u64 first_seq, u64 last_seq,
                               bool *complete) const;

    /** Account one retransmission of @p events events, @p bytes wire
     *  bytes (the driver calls this when it serves a replay request). */
    void countRetransmit(u64 events, u64 bytes);

    /** Drop events of @p core at or below @p seq (verified clean). */
    void release(unsigned core, u64 seq);

    size_t buffered(unsigned core) const { return rings_[core].size(); }
    u64 bufferedBytes() const { return bytes_; }

    obs::StatSheet &counters() { return counters_; }

  private:
    size_t capacity_;
    std::vector<std::deque<Event>> rings_;
    u64 bytes_ = 0; //!< total wire bytes currently buffered
    obs::StatSheet counters_;
    struct
    {
        obs::StatId recorded;
        obs::StatId evictions;
        obs::StatId bufferedBytes;
        obs::StatId retransmitEvents;
        obs::StatId retransmitBytes;
    } stat_;
};

} // namespace dth::replay

#endif // DTH_REPLAY_BUFFER_H_
