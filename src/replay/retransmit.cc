#include "replay/retransmit.h"

namespace dth::replay {

RetransmitBuffer::RetransmitBuffer(obs::StatSheet &sheet,
                                   size_t capacity_frames)
    : capacity_(capacity_frames ? capacity_frames : 1), sheet_(&sheet)
{
    stat_.recorded = sheet_->sum("link.retx.recorded");
    stat_.evictions = sheet_->sum("link.retx.evictions");
    stat_.bufferedBytes = sheet_->maxStat("link.retx.buffered_bytes");
    // Touch the window counters so they appear in every snapshot (the
    // schema gate diffs names, not values).
    sheet_->add(stat_.recorded, 0);
    sheet_->add(stat_.evictions, 0);
    sheet_->trackMax(stat_.bufferedBytes, 0);
}

void
RetransmitBuffer::record(u32 seq, const std::vector<u8> &wire)
{
    if (window_.size() >= capacity_) {
        bytes_ -= window_.front().wire.size();
        window_.pop_front();
        sheet_->add(stat_.evictions);
    }
    // Reuse the evicted slot's capacity when the deque churns at the
    // bound; a fresh slot otherwise.
    window_.emplace_back();
    Slot &slot = window_.back();
    slot.seq = seq;
    slot.wire = wire;
    bytes_ += wire.size();
    sheet_->add(stat_.recorded);
    sheet_->trackMax(stat_.bufferedBytes, bytes_);
}

const std::vector<u8> *
RetransmitBuffer::request(u32 seq) const
{
    // Token filtering as in ReplayBuffer::request: the window is ordered
    // by token, so scan from the back (NAKs target recent frames).
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->seq == seq)
            return &it->wire;
        if (static_cast<i32>(it->seq - seq) < 0)
            break; // passed the token: it was evicted
    }
    return nullptr;
}

void
RetransmitBuffer::release(u32 seq)
{
    while (!window_.empty() &&
           static_cast<i32>(window_.front().seq - seq) <= 0) {
        bytes_ -= window_.front().wire.size();
        window_.pop_front();
    }
}

} // namespace dth::replay
