/**
 * @file
 * Bounded link-level retransmit buffer, reusing the Replay token
 * machinery (replay/buffer.h): frames are recorded before transmission
 * under their sequence-number token, served back on a NAK or timeout
 * via request(), and released once the receiver's delivered prefix
 * passes them — exactly the record/request/release window protocol the
 * ReplayBuffer runs over commit sequence numbers, applied to framed
 * wire images instead of pre-fusion events.
 */

#ifndef DTH_REPLAY_RETRANSMIT_H_
#define DTH_REPLAY_RETRANSMIT_H_

#include <deque>
#include <vector>

#include "common/types.h"
#include "obs/stats.h"

namespace dth::replay {

/** Bounded window of framed packets awaiting acknowledgment. */
class RetransmitBuffer
{
  public:
    /**
     * @param sheet the owning component's stat sheet (retx.* counters)
     * @param capacity_frames retained un-acked frames (window bound)
     */
    explicit RetransmitBuffer(obs::StatSheet &sheet,
                              size_t capacity_frames = 1024);

    /** Record one framed packet under its sequence token before it is
     *  first transmitted. Tokens must be recorded in increasing order. */
    void record(u32 seq, const std::vector<u8> &wire);

    /** The framed bytes recorded under @p seq, or nullptr when the
     *  window no longer holds it (evicted: the fault is unrecoverable
     *  at the link level). */
    const std::vector<u8> *request(u32 seq) const;

    /** Drop every frame with sequence token <= @p seq (acknowledged). */
    void release(u32 seq);

    size_t buffered() const { return window_.size(); }
    u64 bufferedBytes() const { return bytes_; }
    size_t capacity() const { return capacity_; }

  private:
    struct Slot
    {
        u32 seq = 0;
        std::vector<u8> wire;
    };

    size_t capacity_;
    std::deque<Slot> window_;
    u64 bytes_ = 0;
    obs::StatSheet *sheet_;
    struct
    {
        obs::StatId recorded;
        obs::StatId evictions;
        obs::StatId bufferedBytes;
    } stat_;
};

} // namespace dth::replay

#endif // DTH_REPLAY_RETRANSMIT_H_
