#include "replay/undo_log.h"

#include <iterator>

#include "common/logging.h"

namespace dth::replay {

const char *
undoKindName(UndoKind kind)
{
    switch (kind) {
      case UndoKind::XReg: return "xreg";
      case UndoKind::FReg: return "freg";
      case UndoKind::VReg: return "vreg";
      case UndoKind::Csr: return "csr";
      case UndoKind::Mem: return "mem";
      case UndoKind::Pc: return "pc";
      case UndoKind::Reservation: return "reservation";
    }
    return "?";
}

std::span<const UndoKind>
UndoLog::recordedKinds()
{
    // One entry per StateObserver hook above; keep in sync with the
    // on*Write overrides and the revertToMark switch.
    static constexpr UndoKind kKinds[] = {
        UndoKind::XReg, UndoKind::FReg, UndoKind::VReg, UndoKind::Csr,
        UndoKind::Mem,  UndoKind::Pc,   UndoKind::Reservation,
    };
    static_assert(std::size(kKinds) == kNumUndoKinds,
                  "recordedKinds must enumerate every UndoKind");
    return kKinds;
}

void
UndoLog::onXRegWrite(u8 rd, u64 old_val)
{
    if (!reverting_)
        entries_.push_back({Kind::XReg, 0, rd, old_val, 0, 0});
}

void
UndoLog::onFRegWrite(u8 frd, u64 old_val)
{
    if (!reverting_)
        entries_.push_back({Kind::FReg, 0, frd, old_val, 0, 0});
}

void
UndoLog::onVRegWrite(u8 vrd, const u64 *old_lanes)
{
    if (!reverting_)
        entries_.push_back(
            {Kind::VReg, 0, vrd, 0, old_lanes[0], old_lanes[1]});
}

void
UndoLog::onCsrWrite(u16 addr, u64 old_val)
{
    if (!reverting_)
        entries_.push_back({Kind::Csr, 0, addr, old_val, 0, 0});
}

void
UndoLog::onMemWrite(u64 addr, unsigned nbytes, u64 old_val)
{
    if (!reverting_)
        entries_.push_back(
            {Kind::Mem, static_cast<u8>(nbytes), 0, addr, old_val, 0});
}

void
UndoLog::onPcWrite(u64 old_pc)
{
    if (!reverting_)
        entries_.push_back({Kind::Pc, 0, 0, old_pc, 0, 0});
}

void
UndoLog::onReservationWrite(u64 old_addr, bool old_valid)
{
    if (!reverting_)
        entries_.push_back({Kind::Reservation, 0,
                            static_cast<u16>(old_valid ? 1 : 0), old_addr,
                            0, 0});
}

void
UndoLog::mark()
{
    // Discard the older retained window; the just-finished window stays.
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<long>(markPos_));
    markPos_ = entries_.size();
}

void
UndoLog::revertToMark()
{
    reverting_ = true;
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const Entry &e = *it;
        switch (e.kind) {
          case Kind::XReg:
            core_.setXReg(e.id, e.a);
            break;
          case Kind::FReg:
            core_.setFReg(e.id, e.a);
            break;
          case Kind::VReg:
            core_.setVRegLane(e.id, 0, e.b);
            core_.setVRegLane(e.id, 1, e.c);
            break;
          case Kind::Csr:
            core_.writeCsr(e.id, e.a);
            break;
          case Kind::Mem:
            core_.bus().ram().write(e.a, e.nbytes, e.b);
            break;
          case Kind::Pc:
            core_.setPc(e.a);
            break;
          case Kind::Reservation:
            // Reservation state is internal; restoring it exactly is not
            // needed for replay because the SC outcome oracle overrides
            // the local reservation check.
            break;
        }
    }
    // Restore seqNo (mirrored by minstret) after CSR rollback; a halt
    // latched inside the rolled-back window is cleared as well.
    core_.restoreSeqFromMinstret();
    core_.clearHalted();
    entries_.clear();
    markPos_ = 0;
    reverting_ = false;
}

u64
UndoLog::bytesRetained() const
{
    return entries_.size() * sizeof(Entry);
}

} // namespace dth::replay
