/**
 * @file
 * Compensation-based REF checkpointing (paper §4.4 "Revert Reference
 * Model"): instead of snapshotting the whole REF at every checkpoint,
 * record only the old values of state mutated since the last checkpoint
 * and roll them back in reverse order on a mismatch.
 */

#ifndef DTH_REPLAY_UNDO_LOG_H_
#define DTH_REPLAY_UNDO_LOG_H_

#include <span>
#include <vector>

#include "riscv/core.h"

namespace dth::replay {

/**
 * The REF state domains the compensation log can capture and revert.
 * Every event type whose checking mutates REF state must map onto these
 * kinds — dth_lint proves that coverage against the analyzer's
 * per-event-type mutation model.
 */
enum class UndoKind : u8 { XReg, FReg, VReg, Csr, Mem, Pc, Reservation };

inline constexpr unsigned kNumUndoKinds = 7;

/** Printable undo-kind name (lint diagnostics). */
const char *undoKindName(UndoKind kind);

/** Records REF mutations and can revert them to the last mark. */
class UndoLog : public riscv::StateObserver
{
  public:
    explicit UndoLog(riscv::Core &core) : core_(core) {}

    // StateObserver: capture old values before each mutation.
    void onXRegWrite(u8 rd, u64 old_val) override;
    void onFRegWrite(u8 frd, u64 old_val) override;
    void onVRegWrite(u8 vrd, const u64 *old_lanes) override;
    void onCsrWrite(u16 addr, u64 old_val) override;
    void onMemWrite(u64 addr, unsigned nbytes, u64 old_val) override;
    void onPcWrite(u64 old_pc) override;
    void onReservationWrite(u64 old_addr, bool old_valid) override;

    /**
     * Advance the checkpoint by one verified window. The log retains the
     * last two windows: content checks belonging to window N can still
     * fail after window N's boundary has been verified, so the rollback
     * target is the start of the previous retained window.
     */
    void mark();

    /** Roll the core back across both retained windows (to the older
     *  checkpoint boundary). */
    void revertToMark();

    size_t entries() const { return entries_.size(); }
    u64 bytesRetained() const;

    /**
     * The state domains this log records through StateObserver hooks —
     * the Replay-coverage ground truth dth_lint checks event-type
     * mutation domains against.
     */
    static std::span<const UndoKind> recordedKinds();

  private:
    using Kind = UndoKind;

    struct Entry
    {
        Kind kind;
        u8 nbytes; // for Mem
        u16 id;    // reg index or CSR address
        u64 a;     // address / old value
        u64 b;     // old value / lane 0
        u64 c;     // lane 1
    };

    riscv::Core &core_;
    std::vector<Entry> entries_;
    /** Entry count at the most recent mark (start of current window). */
    size_t markPos_ = 0;
    bool reverting_ = false;
};

} // namespace dth::replay

#endif // DTH_REPLAY_UNDO_LOG_H_
