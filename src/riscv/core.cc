#include "riscv/core.h"

#include <bit>

#include "common/bits.h"
#include "common/logging.h"

namespace dth::riscv {

bool
ArchSnapshot::operator==(const ArchSnapshot &other) const
{
    auto csr_eq = [](const CsrFile &a, const CsrFile &b) {
        return a.mstatus == b.mstatus && a.mie == b.mie &&
               a.mipExternal == b.mipExternal && a.mtvec == b.mtvec &&
               a.mscratch == b.mscratch && a.mepc == b.mepc &&
               a.mcause == b.mcause && a.mtval == b.mtval &&
               a.minstret == b.minstret && a.satp == b.satp &&
               a.medeleg == b.medeleg && a.mideleg == b.mideleg &&
               a.stvec == b.stvec && a.sscratch == b.sscratch &&
               a.sepc == b.sepc && a.scause == b.scause &&
               a.stval == b.stval && a.fcsr == b.fcsr &&
               a.vstart == b.vstart && a.vxsat == b.vxsat &&
               a.vxrm == b.vxrm && a.vl == b.vl && a.vtype == b.vtype &&
               a.priv == b.priv;
    };
    return pc == other.pc && xregs == other.xregs && fregs == other.fregs &&
           vregs == other.vregs && csr_eq(csrs, other.csrs);
}

Core::Core(Bus &bus, const CoreConfig &config)
    : bus_(bus), config_(config), pc_(config.resetPc),
      rng_(config.rngSeed)
{
    csrs_.mhartid = config.hartId;
}

void
Core::reset()
{
    pc_ = config_.resetPc;
    xregs_.fill(0);
    fregs_.fill(0);
    for (auto &v : vregs_)
        v.fill(0);
    csrs_ = CsrFile{};
    csrs_.mhartid = config_.hartId;
    reservationValid_ = false;
    seqNo_ = 0;
    halted_ = false;
    haltCode_ = 0;
    externalInterrupt_ = false;
    forcedInterrupts_.clear();
    mmioFills_.clear();
    scOutcomes_.clear();
}

void
Core::notifyPc()
{
    if (observer_)
        observer_->onPcWrite(pc_);
}

void
Core::setXReg(unsigned i, u64 v)
{
    if (i == 0)
        return;
    if (observer_)
        observer_->onXRegWrite(static_cast<u8>(i), xregs_[i]);
    xregs_[i] = v;
}

void
Core::setFReg(unsigned i, u64 v)
{
    if (observer_)
        observer_->onFRegWrite(static_cast<u8>(i), fregs_[i]);
    fregs_[i] = v;
}

void
Core::setVRegLane(unsigned r, unsigned lane, u64 v)
{
    if (observer_)
        observer_->onVRegWrite(static_cast<u8>(r), vregs_[r].data());
    vregs_[r][lane] = v;
}

void
Core::setXRegTraced(u8 rd, u64 v, StepResult &r)
{
    if (rd != 0) {
        if (observer_)
            observer_->onXRegWrite(rd, xregs_[rd]);
        xregs_[rd] = v;
        r.rfWen = true;
        r.rd = rd;
        r.rdVal = v;
    }
}

u64
Core::effectiveMip() const
{
    u64 mip = csrs_.mipExternal;
    if (clint_) {
        if (clint_->timerPending())
            mip |= kIpMtip;
        if (clint_->softwarePending())
            mip |= kIpMsip;
    }
    if (externalInterrupt_)
        mip |= kIpMeip;
    return mip;
}

u64
Core::pendingInterrupt() const
{
    u64 pending = csrs_.mie & effectiveMip();
    if (!pending)
        return 0;
    // M-level interrupts (not delegated): enabled below M, or in M when
    // mstatus.MIE is set.
    bool m_enabled =
        csrs_.priv < kPrivM || (csrs_.mstatus & kMstatusMie);
    u64 m_pending = pending & ~csrs_.mideleg;
    if (m_enabled) {
        if (m_pending & kIpMeip)
            return kIntExternal;
        if (m_pending & kIpMsip)
            return kIntSoftware;
        if (m_pending & kIpMtip)
            return kIntTimer;
    }
    // Delegated (S-level) interrupts: enabled below S, or in S when
    // sstatus.SIE is set; never taken while in M.
    bool s_enabled = csrs_.priv < kPrivS ||
                     (csrs_.priv == kPrivS &&
                      (csrs_.mstatus & kMstatusSie));
    u64 s_pending = pending & csrs_.mideleg;
    if (csrs_.priv < kPrivM && s_enabled) {
        if (s_pending & kIpSeip)
            return kIntSExternal;
        if (s_pending & kIpSsip)
            return kIntSSoftware;
        if (s_pending & kIpStip)
            return kIntSTimer;
    }
    return 0;
}

void
Core::setExternalInterrupt(bool asserted)
{
    externalInterrupt_ = asserted;
}

void
Core::forceInterrupt(u64 cause)
{
    forcedInterrupts_.push_back(cause);
}

void
Core::pushMmioFill(u64 addr, u64 data)
{
    mmioFills_.push_back({addr, data});
}

void
Core::pushScOutcome(bool success)
{
    scOutcomes_.push_back(success);
}

void
Core::setPriv(u64 priv)
{
    if (observer_)
        observer_->onCsrWrite(kCsrPrivPseudo, csrs_.priv);
    csrs_.priv = priv;
}

void
Core::takeTrap(StepResult &r, u64 cause, u64 tval, bool interrupt)
{
    // Delegation: traps from S/U whose cause bit is set in
    // medeleg/mideleg are handled in S-mode.
    u64 deleg = interrupt ? csrs_.mideleg : csrs_.medeleg;
    bool to_s = csrs_.priv <= kPrivS && cause < 64 &&
                ((deleg >> cause) & 1);
    if (to_s) {
        writeCsrInternal(kCsrSepc, r.pc);
        writeCsrInternal(kCsrScause,
                         cause | (interrupt ? kInterruptFlag : 0));
        writeCsrInternal(kCsrStval, tval);
        u64 mstatus = csrs_.mstatus;
        // SPIE <- SIE, SIE <- 0, SPP <- (priv == S).
        mstatus = (mstatus & ~kMstatusSpie) |
                  ((mstatus & kMstatusSie) ? kMstatusSpie : 0);
        mstatus &= ~(kMstatusSie | kMstatusSpp);
        if (csrs_.priv == kPrivS)
            mstatus |= kMstatusSpp;
        writeCsrInternal(kCsrMstatus, mstatus);
        setPriv(kPrivS);
        r.nextPc = csrs_.stvec & ~3ULL;
    } else {
        writeCsrInternal(kCsrMepc, r.pc);
        writeCsrInternal(kCsrMcause,
                         cause | (interrupt ? kInterruptFlag : 0));
        writeCsrInternal(kCsrMtval, tval);
        u64 mstatus = csrs_.mstatus;
        // MPIE <- MIE, MIE <- 0, MPP <- priv.
        mstatus = (mstatus & ~kMstatusMpie) |
                  ((mstatus & kMstatusMie) ? kMstatusMpie : 0);
        mstatus &= ~(kMstatusMie | kMstatusMppMask);
        mstatus |= csrs_.priv << kMstatusMppShift;
        writeCsrInternal(kCsrMstatus, mstatus);
        setPriv(kPrivM);
        r.nextPc = csrs_.mtvec & ~3ULL;
    }
    if (interrupt) {
        r.interrupt = true;
    } else {
        r.exception = true;
    }
    r.cause = cause;
    r.tval = tval;
}

u64
Core::memLoad(u64 addr, unsigned nbytes, StepResult &r, bool sign_extend,
              unsigned sext_bits)
{
    MemAccessInfo &m =
        r.mem[std::min<size_t>(r.memCount, r.mem.size() - 1)];
    m.valid = true;
    m.store = false;
    m.addr = addr;
    m.sizeLog2 = static_cast<u8>(std::countr_zero(nbytes));
    u64 value;
    if (!bus_.isRam(addr)) {
        m.mmio = true;
        if (!mmioFills_.empty()) {
            MmioFill fill = mmioFills_.front();
            mmioFills_.pop_front();
            if (fill.addr != addr) {
                dth_warn("MMIO oracle addr mismatch: want %llx got %llx",
                         (unsigned long long)fill.addr,
                         (unsigned long long)addr);
            }
            value = fill.data & byteMask(nbytes);
        } else {
            BusAccess a = bus_.read(addr, nbytes);
            value = a.fault ? 0 : a.value;
        }
    } else {
        value = bus_.read(addr, nbytes).value;
    }
    if (sign_extend)
        value = static_cast<u64>(sext(value, sext_bits));
    m.data = value;
    if (r.memCount < r.mem.size())
        ++r.memCount;
    return value;
}

void
Core::memStore(u64 addr, unsigned nbytes, u64 value, StepResult &r)
{
    MemAccessInfo &m =
        r.mem[std::min<size_t>(r.memCount, r.mem.size() - 1)];
    m.valid = true;
    m.store = true;
    m.addr = addr;
    m.sizeLog2 = static_cast<u8>(std::countr_zero(nbytes));
    m.data = value & byteMask(nbytes);
    if (!bus_.isRam(addr)) {
        m.mmio = true;
        bus_.write(addr, nbytes, value); // discarded if unmapped (REF role)
    } else {
        if (observer_) {
            u64 old = bus_.ram().read(addr, nbytes);
            observer_->onMemWrite(addr, nbytes, old);
        }
        bus_.write(addr, nbytes, value);
    }
    if (r.memCount < r.mem.size())
        ++r.memCount;
}

void
Core::observedMemWrite(u64 addr, unsigned nbytes, u64 value)
{
    if (!bus_.isRam(addr))
        return;
    if (observer_) {
        u64 old = bus_.ram().read(addr, nbytes);
        observer_->onMemWrite(addr, nbytes, old);
    }
    bus_.write(addr, nbytes, value);
}

u64
Core::readCsr(u16 addr) const
{
    switch (addr) {
      case kCsrMstatus: return csrs_.mstatus;
      case kCsrMisa: return csrs_.misa;
      case kCsrMie: return csrs_.mie;
      case kCsrMip: return effectiveMip();
      case kCsrMtvec: return csrs_.mtvec;
      case kCsrMscratch: return csrs_.mscratch;
      case kCsrMepc: return csrs_.mepc;
      case kCsrMcause: return csrs_.mcause;
      case kCsrMtval: return csrs_.mtval;
      case kCsrMcycle: return csrs_.mcycle;
      case kCsrMinstret: return csrs_.minstret;
      case kCsrSatp: return csrs_.satp;
      case kCsrMedeleg: return csrs_.medeleg;
      case kCsrMideleg: return csrs_.mideleg;
      case kCsrStvec: return csrs_.stvec;
      case kCsrSscratch: return csrs_.sscratch;
      case kCsrSepc: return csrs_.sepc;
      case kCsrScause: return csrs_.scause;
      case kCsrStval: return csrs_.stval;
      case kCsrMhartid: return csrs_.mhartid;
      case kCsrSstatus: return csrs_.mstatus & kSstatusMask;
      case kCsrSie: return csrs_.mie & csrs_.mideleg;
      case kCsrSip: return effectiveMip() & csrs_.mideleg;
      case kCsrPrivPseudo: return csrs_.priv;
      case kCsrFcsr: return csrs_.fcsr;
      case kCsrFflags: return csrs_.fcsr & 0x1F;
      case kCsrFrm: return (csrs_.fcsr >> 5) & 7;
      case kCsrVstart: return csrs_.vstart;
      case kCsrVxsat: return csrs_.vxsat;
      case kCsrVxrm: return csrs_.vxrm;
      case kCsrVcsr: return (csrs_.vxrm << 1) | csrs_.vxsat;
      case kCsrVl: return csrs_.vl;
      case kCsrVtype: return csrs_.vtype;
      case kCsrVlenb: return kVlenBits / 8;
      default: return 0;
    }
}

void
Core::writeCsrInternal(u16 addr, u64 value)
{
    if (observer_)
        observer_->onCsrWrite(addr, readCsr(addr));
    switch (addr) {
      case kCsrMstatus: csrs_.mstatus = value; break;
      case kCsrMie: csrs_.mie = value; break;
      case kCsrMip: csrs_.mipExternal = value & kIpWritableMask; break;
      case kCsrSstatus:
        csrs_.mstatus = (csrs_.mstatus & ~kSstatusMask) |
                        (value & kSstatusMask);
        break;
      case kCsrSie:
        csrs_.mie = (csrs_.mie & ~csrs_.mideleg) |
                    (value & csrs_.mideleg);
        break;
      case kCsrSip:
        csrs_.mipExternal =
            (csrs_.mipExternal & ~(csrs_.mideleg & kIpWritableMask)) |
            (value & csrs_.mideleg & kIpWritableMask);
        break;
      case kCsrPrivPseudo: csrs_.priv = value & 3; break;
      case kCsrMtvec: csrs_.mtvec = value; break;
      case kCsrMscratch: csrs_.mscratch = value; break;
      case kCsrMepc: csrs_.mepc = value; break;
      case kCsrMcause: csrs_.mcause = value; break;
      case kCsrMtval: csrs_.mtval = value; break;
      case kCsrMcycle: csrs_.mcycle = value; break;
      case kCsrMinstret: csrs_.minstret = value; break;
      case kCsrSatp: csrs_.satp = value; break;
      case kCsrMedeleg: csrs_.medeleg = value; break;
      case kCsrMideleg: csrs_.mideleg = value; break;
      case kCsrStvec: csrs_.stvec = value; break;
      case kCsrSscratch: csrs_.sscratch = value; break;
      case kCsrSepc: csrs_.sepc = value; break;
      case kCsrScause: csrs_.scause = value; break;
      case kCsrStval: csrs_.stval = value; break;
      case kCsrFcsr: csrs_.fcsr = value & 0xFF; break;
      case kCsrFflags:
        csrs_.fcsr = (csrs_.fcsr & ~0x1FULL) | (value & 0x1F);
        break;
      case kCsrFrm:
        csrs_.fcsr = (csrs_.fcsr & ~0xE0ULL) | ((value & 7) << 5);
        break;
      case kCsrVstart: csrs_.vstart = value; break;
      case kCsrVxsat: csrs_.vxsat = value & 1; break;
      case kCsrVxrm: csrs_.vxrm = value & 3; break;
      case kCsrVl: csrs_.vl = value; break;
      case kCsrVtype: csrs_.vtype = value; break;
      default: break; // unimplemented CSRs read as zero, ignore writes
    }
}

void
Core::writeCsr(u16 addr, u64 value)
{
    writeCsrInternal(addr, value);
}

u64
Core::csrForOp(const DecodedInstr &d, StepResult &r)
{
    u64 old = readCsr(d.csr);
    u64 writeVal = old;
    bool doWrite = false;
    u64 src = (d.op >= Op::Csrrwi) ? static_cast<u64>(d.imm)
                                   : xregs_[d.rs1];
    switch (d.op) {
      case Op::Csrrw:
      case Op::Csrrwi:
        writeVal = src;
        doWrite = true;
        break;
      case Op::Csrrs:
      case Op::Csrrsi:
        writeVal = old | src;
        doWrite = d.rs1 != 0;
        break;
      case Op::Csrrc:
      case Op::Csrrci:
        writeVal = old & ~src;
        doWrite = d.rs1 != 0;
        break;
      default:
        dth_panic("not a CSR op");
    }
    if (doWrite) {
        writeCsrInternal(d.csr, writeVal);
        r.csrWen = true;
        r.csrAddr = d.csr;
        r.csrVal = readCsr(d.csr);
    }
    return old;
}

u64
Core::amoAccess(const DecodedInstr &d, StepResult &r)
{
    u64 addr = xregs_[d.rs1];
    bool word = d.op >= Op::LrW && d.op <= Op::AmoMaxuW &&
                (d.op == Op::LrW || d.op == Op::ScW ||
                 (d.op >= Op::AmoSwapW && d.op <= Op::AmoMaxuW));
    unsigned nbytes = word ? 4 : 8;
    u64 src = xregs_[d.rs2];

    if (d.op == Op::LrW || d.op == Op::LrD) {
        u64 v = memLoad(addr, nbytes, r, word, 32);
        if (observer_)
            observer_->onReservationWrite(reservationAddr_,
                                          reservationValid_);
        reservationValid_ = true;
        reservationAddr_ = addr;
        setXRegTraced(d.rd, v, r);
        r.mem[0].atomic = true;
        return v;
    }

    if (d.op == Op::ScW || d.op == Op::ScD) {
        bool success;
        if (!scOutcomes_.empty()) {
            success = scOutcomes_.front();
            scOutcomes_.pop_front();
        } else {
            success = reservationValid_ && reservationAddr_ == addr;
            if (success && config_.spuriousScFailRate > 0 &&
                rng_.chance(config_.spuriousScFailRate)) {
                success = false;
            }
        }
        if (observer_)
            observer_->onReservationWrite(reservationAddr_,
                                          reservationValid_);
        reservationValid_ = false;
        if (success)
            memStore(addr, nbytes, src, r);
        setXRegTraced(d.rd, success ? 0 : 1, r);
        r.scEvent = true;
        r.scSuccess = success;
        if (r.memCount > 0)
            r.mem[0].atomic = true;
        return 0;
    }

    // Read-modify-write AMOs.
    u64 loaded = memLoad(addr, nbytes, r, word, 32);
    r.mem[0].atomic = true;
    r.mem[0].loadedValue = loaded;
    u64 result = 0;
    i64 ls = static_cast<i64>(loaded);
    i64 ss = static_cast<i64>(word ? sext(src, 32) : src);
    switch (d.op) {
      case Op::AmoSwapW: case Op::AmoSwapD: result = src; break;
      case Op::AmoAddW: case Op::AmoAddD: result = loaded + src; break;
      case Op::AmoXorW: case Op::AmoXorD: result = loaded ^ src; break;
      case Op::AmoAndW: case Op::AmoAndD: result = loaded & src; break;
      case Op::AmoOrW: case Op::AmoOrD: result = loaded | src; break;
      case Op::AmoMinW: case Op::AmoMinD:
        result = ls < ss ? loaded : src;
        break;
      case Op::AmoMaxW: case Op::AmoMaxD:
        result = ls > ss ? loaded : src;
        break;
      case Op::AmoMinuW: case Op::AmoMinuD:
        result = (word ? (loaded & byteMask(4)) < (src & byteMask(4))
                       : loaded < src)
                     ? loaded
                     : src;
        break;
      case Op::AmoMaxuW: case Op::AmoMaxuD:
        result = (word ? (loaded & byteMask(4)) > (src & byteMask(4))
                       : loaded > src)
                     ? loaded
                     : src;
        break;
      default:
        dth_panic("not an AMO");
    }
    memStore(addr, nbytes, result, r);
    r.mem[1].atomic = true;
    setXRegTraced(d.rd, loaded, r);
    return loaded;
}

StepResult
Core::step()
{
    StepResult r;
    r.pc = pc_;
    if (halted_) {
        r.halted = true;
        r.haltCode = haltCode_;
        return r;
    }

    // Pending interrupts are taken between instructions; they do not
    // retire anything.
    u64 icause = 0;
    if (!forcedInterrupts_.empty()) {
        icause = forcedInterrupts_.front();
        forcedInterrupts_.pop_front();
    } else if (config_.autoInterrupts) {
        icause = pendingInterrupt();
    }
    if (icause) {
        takeTrap(r, icause, 0, true);
        notifyPc();
        pc_ = r.nextPc;
        return r;
    }

    u32 raw = static_cast<u32>(bus_.read(pc_, 4).value);
    r.instr = raw;
    DecodedInstr d = decode(raw);
    r.op = d.op;
    r.nextPc = pc_ + 4;

    execute(d, r);

    if (!r.interrupt) {
        r.retired = true;
        if (observer_)
            observer_->onCsrWrite(kCsrMinstret, csrs_.minstret);
        ++seqNo_;
        csrs_.minstret = seqNo_;
        r.seqNo = seqNo_;
    }
    notifyPc();
    pc_ = r.nextPc;
    return r;
}

StepResult
Core::execute(const DecodedInstr &d, StepResult &r)
{
    u64 rs1 = xregs_[d.rs1];
    u64 rs2 = xregs_[d.rs2];
    i64 s1 = static_cast<i64>(rs1);
    i64 s2 = static_cast<i64>(rs2);

    switch (d.op) {
      case Op::Lui: setXRegTraced(d.rd, static_cast<u64>(d.imm), r); break;
      case Op::Auipc:
        setXRegTraced(d.rd, r.pc + static_cast<u64>(d.imm), r);
        break;
      case Op::Jal:
        setXRegTraced(d.rd, r.pc + 4, r);
        r.nextPc = r.pc + static_cast<u64>(d.imm);
        break;
      case Op::Jalr: {
        u64 target = (rs1 + static_cast<u64>(d.imm)) & ~1ULL;
        setXRegTraced(d.rd, r.pc + 4, r);
        r.nextPc = target;
        break;
      }
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: {
        bool taken = false;
        switch (d.op) {
          case Op::Beq: taken = rs1 == rs2; break;
          case Op::Bne: taken = rs1 != rs2; break;
          case Op::Blt: taken = s1 < s2; break;
          case Op::Bge: taken = s1 >= s2; break;
          case Op::Bltu: taken = rs1 < rs2; break;
          case Op::Bgeu: taken = rs1 >= rs2; break;
          default: break;
        }
        r.isBranch = true;
        r.branchTaken = taken;
        if (taken)
            r.nextPc = r.pc + static_cast<u64>(d.imm);
        break;
      }
      case Op::Lb:
        setXRegTraced(d.rd,
                      memLoad(rs1 + d.imm, 1, r, true, 8), r);
        break;
      case Op::Lh:
        setXRegTraced(d.rd, memLoad(rs1 + d.imm, 2, r, true, 16), r);
        break;
      case Op::Lw:
        setXRegTraced(d.rd, memLoad(rs1 + d.imm, 4, r, true, 32), r);
        break;
      case Op::Ld:
        setXRegTraced(d.rd, memLoad(rs1 + d.imm, 8, r, false, 0), r);
        break;
      case Op::Lbu:
        setXRegTraced(d.rd, memLoad(rs1 + d.imm, 1, r, false, 0), r);
        break;
      case Op::Lhu:
        setXRegTraced(d.rd, memLoad(rs1 + d.imm, 2, r, false, 0), r);
        break;
      case Op::Lwu:
        setXRegTraced(d.rd, memLoad(rs1 + d.imm, 4, r, false, 0), r);
        break;
      case Op::Sb: memStore(rs1 + d.imm, 1, rs2, r); break;
      case Op::Sh: memStore(rs1 + d.imm, 2, rs2, r); break;
      case Op::Sw: memStore(rs1 + d.imm, 4, rs2, r); break;
      case Op::Sd: memStore(rs1 + d.imm, 8, rs2, r); break;
      case Op::Addi: setXRegTraced(d.rd, rs1 + d.imm, r); break;
      case Op::Slti:
        setXRegTraced(d.rd, s1 < d.imm ? 1 : 0, r);
        break;
      case Op::Sltiu:
        setXRegTraced(d.rd, rs1 < static_cast<u64>(d.imm) ? 1 : 0, r);
        break;
      case Op::Xori: setXRegTraced(d.rd, rs1 ^ d.imm, r); break;
      case Op::Ori: setXRegTraced(d.rd, rs1 | d.imm, r); break;
      case Op::Andi: setXRegTraced(d.rd, rs1 & d.imm, r); break;
      case Op::Slli: setXRegTraced(d.rd, rs1 << (d.imm & 63), r); break;
      case Op::Srli: setXRegTraced(d.rd, rs1 >> (d.imm & 63), r); break;
      case Op::Srai:
        setXRegTraced(d.rd, static_cast<u64>(s1 >> (d.imm & 63)), r);
        break;
      case Op::Addiw:
        setXRegTraced(d.rd, static_cast<u64>(sext(rs1 + d.imm, 32)), r);
        break;
      case Op::Slliw:
        setXRegTraced(d.rd,
                      static_cast<u64>(sext(rs1 << (d.imm & 31), 32)), r);
        break;
      case Op::Srliw:
        setXRegTraced(
            d.rd,
            static_cast<u64>(sext((rs1 & byteMask(4)) >> (d.imm & 31), 32)),
            r);
        break;
      case Op::Sraiw:
        setXRegTraced(
            d.rd,
            static_cast<u64>(static_cast<i64>(sext(rs1, 32)) >>
                             (d.imm & 31)),
            r);
        break;
      case Op::Add: setXRegTraced(d.rd, rs1 + rs2, r); break;
      case Op::Sub: setXRegTraced(d.rd, rs1 - rs2, r); break;
      case Op::Sll: setXRegTraced(d.rd, rs1 << (rs2 & 63), r); break;
      case Op::Slt: setXRegTraced(d.rd, s1 < s2 ? 1 : 0, r); break;
      case Op::Sltu: setXRegTraced(d.rd, rs1 < rs2 ? 1 : 0, r); break;
      case Op::Xor: setXRegTraced(d.rd, rs1 ^ rs2, r); break;
      case Op::Srl: setXRegTraced(d.rd, rs1 >> (rs2 & 63), r); break;
      case Op::Sra:
        setXRegTraced(d.rd, static_cast<u64>(s1 >> (rs2 & 63)), r);
        break;
      case Op::Or: setXRegTraced(d.rd, rs1 | rs2, r); break;
      case Op::And: setXRegTraced(d.rd, rs1 & rs2, r); break;
      case Op::Addw:
        setXRegTraced(d.rd, static_cast<u64>(sext(rs1 + rs2, 32)), r);
        break;
      case Op::Subw:
        setXRegTraced(d.rd, static_cast<u64>(sext(rs1 - rs2, 32)), r);
        break;
      case Op::Sllw:
        setXRegTraced(d.rd,
                      static_cast<u64>(sext(rs1 << (rs2 & 31), 32)), r);
        break;
      case Op::Srlw:
        setXRegTraced(
            d.rd,
            static_cast<u64>(sext((rs1 & byteMask(4)) >> (rs2 & 31), 32)),
            r);
        break;
      case Op::Sraw:
        setXRegTraced(
            d.rd,
            static_cast<u64>(static_cast<i64>(sext(rs1, 32)) >>
                             (rs2 & 31)),
            r);
        break;
      case Op::Fence:
        break;
      case Op::Mul: setXRegTraced(d.rd, rs1 * rs2, r); break;
      case Op::Mulh:
        setXRegTraced(
            d.rd,
            static_cast<u64>((static_cast<__int128>(s1) * s2) >> 64), r);
        break;
      case Op::Mulhsu:
        setXRegTraced(
            d.rd,
            static_cast<u64>(
                (static_cast<__int128>(s1) *
                 static_cast<unsigned __int128>(rs2)) >> 64),
            r);
        break;
      case Op::Mulhu:
        setXRegTraced(
            d.rd,
            static_cast<u64>((static_cast<unsigned __int128>(rs1) * rs2) >>
                             64),
            r);
        break;
      case Op::Div:
        if (rs2 == 0)
            setXRegTraced(d.rd, ~0ULL, r);
        else if (s1 == INT64_MIN && s2 == -1)
            setXRegTraced(d.rd, static_cast<u64>(INT64_MIN), r);
        else
            setXRegTraced(d.rd, static_cast<u64>(s1 / s2), r);
        break;
      case Op::Divu:
        setXRegTraced(d.rd, rs2 == 0 ? ~0ULL : rs1 / rs2, r);
        break;
      case Op::Rem:
        if (rs2 == 0)
            setXRegTraced(d.rd, rs1, r);
        else if (s1 == INT64_MIN && s2 == -1)
            setXRegTraced(d.rd, 0, r);
        else
            setXRegTraced(d.rd, static_cast<u64>(s1 % s2), r);
        break;
      case Op::Remu:
        setXRegTraced(d.rd, rs2 == 0 ? rs1 : rs1 % rs2, r);
        break;
      case Op::Mulw:
        setXRegTraced(d.rd, static_cast<u64>(sext(rs1 * rs2, 32)), r);
        break;
      case Op::Divw: {
        i64 a = sext(rs1, 32), b = sext(rs2, 32);
        u64 v;
        if (b == 0)
            v = ~0ULL;
        else if (a == INT32_MIN && b == -1)
            v = static_cast<u64>(sext(static_cast<u64>(INT32_MIN), 32));
        else
            v = static_cast<u64>(sext(static_cast<u64>(a / b), 32));
        setXRegTraced(d.rd, v, r);
        break;
      }
      case Op::Divuw: {
        u64 a = rs1 & byteMask(4), b = rs2 & byteMask(4);
        setXRegTraced(
            d.rd,
            b == 0 ? ~0ULL : static_cast<u64>(sext(a / b, 32)), r);
        break;
      }
      case Op::Remw: {
        i64 a = sext(rs1, 32), b = sext(rs2, 32);
        u64 v;
        if (b == 0)
            v = static_cast<u64>(sext(rs1, 32));
        else if (a == INT32_MIN && b == -1)
            v = 0;
        else
            v = static_cast<u64>(sext(static_cast<u64>(a % b), 32));
        setXRegTraced(d.rd, v, r);
        break;
      }
      case Op::Remuw: {
        u64 a = rs1 & byteMask(4), b = rs2 & byteMask(4);
        setXRegTraced(
            d.rd,
            b == 0 ? static_cast<u64>(sext(a, 32))
                   : static_cast<u64>(sext(a % b, 32)),
            r);
        break;
      }
      // Zba/Zbb bit manipulation.
      case Op::Sh1add: setXRegTraced(d.rd, rs2 + (rs1 << 1), r); break;
      case Op::Sh2add: setXRegTraced(d.rd, rs2 + (rs1 << 2), r); break;
      case Op::Sh3add: setXRegTraced(d.rd, rs2 + (rs1 << 3), r); break;
      case Op::AddUw:
        setXRegTraced(d.rd, rs2 + (rs1 & byteMask(4)), r);
        break;
      case Op::Andn: setXRegTraced(d.rd, rs1 & ~rs2, r); break;
      case Op::Orn: setXRegTraced(d.rd, rs1 | ~rs2, r); break;
      case Op::Xnor: setXRegTraced(d.rd, ~(rs1 ^ rs2), r); break;
      case Op::Clz:
        setXRegTraced(d.rd, static_cast<u64>(std::countl_zero(rs1)), r);
        break;
      case Op::Ctz:
        setXRegTraced(d.rd, static_cast<u64>(std::countr_zero(rs1)), r);
        break;
      case Op::Cpop:
        setXRegTraced(d.rd, static_cast<u64>(std::popcount(rs1)), r);
        break;
      case Op::Min:
        setXRegTraced(d.rd, s1 < s2 ? rs1 : rs2, r);
        break;
      case Op::Minu:
        setXRegTraced(d.rd, rs1 < rs2 ? rs1 : rs2, r);
        break;
      case Op::Max:
        setXRegTraced(d.rd, s1 > s2 ? rs1 : rs2, r);
        break;
      case Op::Maxu:
        setXRegTraced(d.rd, rs1 > rs2 ? rs1 : rs2, r);
        break;
      case Op::SextB:
        setXRegTraced(d.rd, static_cast<u64>(sext(rs1, 8)), r);
        break;
      case Op::SextH:
        setXRegTraced(d.rd, static_cast<u64>(sext(rs1, 16)), r);
        break;
      case Op::ZextH:
        setXRegTraced(d.rd, rs1 & byteMask(2), r);
        break;
      case Op::Rol:
        setXRegTraced(d.rd, std::rotl(rs1, static_cast<int>(rs2 & 63)),
                      r);
        break;
      case Op::Ror:
        setXRegTraced(d.rd, std::rotr(rs1, static_cast<int>(rs2 & 63)),
                      r);
        break;
      case Op::Rori:
        setXRegTraced(d.rd, std::rotr(rs1, static_cast<int>(d.imm & 63)),
                      r);
        break;
      case Op::Rev8:
        setXRegTraced(d.rd, __builtin_bswap64(rs1), r);
        break;
      case Op::OrcB: {
        u64 out = 0;
        for (unsigned i = 0; i < 8; ++i) {
            if ((rs1 >> (8 * i)) & 0xFF)
                out |= 0xFFULL << (8 * i);
        }
        setXRegTraced(d.rd, out, r);
        break;
      }
      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci: {
        u64 old = csrForOp(d, r);
        setXRegTraced(d.rd, old, r);
        break;
      }
      case Op::Ecall: {
        u64 cause = csrs_.priv == kPrivM
                        ? kCauseEcallM
                        : (csrs_.priv == kPrivS ? kCauseEcallS
                                                : kCauseEcallU);
        takeTrap(r, cause, 0, false);
        break;
      }
      case Op::Ebreak:
        // DiffTest "trap" convention: ebreak halts the workload with the
        // exit code in a0 (0 = GOOD TRAP).
        halted_ = true;
        haltCode_ = xregs_[10];
        r.halted = true;
        r.haltCode = haltCode_;
        break;
      case Op::Mret: {
        u64 mstatus = csrs_.mstatus;
        bool mpie = mstatus & kMstatusMpie;
        u64 mpp = (mstatus & kMstatusMppMask) >> kMstatusMppShift;
        mstatus = (mstatus & ~kMstatusMie) | (mpie ? kMstatusMie : 0);
        mstatus |= kMstatusMpie;
        mstatus &= ~kMstatusMppMask; // MPP <- U
        writeCsrInternal(kCsrMstatus, mstatus);
        setPriv(mpp == 2 ? kPrivM : mpp); // 2 is reserved
        r.nextPc = csrs_.mepc;
        break;
      }
      case Op::Sret: {
        u64 mstatus = csrs_.mstatus;
        bool spie = mstatus & kMstatusSpie;
        u64 spp = (mstatus & kMstatusSpp) ? kPrivS : kPrivU;
        mstatus = (mstatus & ~kMstatusSie) | (spie ? kMstatusSie : 0);
        mstatus |= kMstatusSpie;
        mstatus &= ~kMstatusSpp; // SPP <- U
        writeCsrInternal(kCsrMstatus, mstatus);
        setPriv(spp);
        r.nextPc = csrs_.sepc;
        break;
      }
      case Op::Wfi:
        break;
      case Op::LrW: case Op::LrD: case Op::ScW: case Op::ScD:
      case Op::AmoSwapW: case Op::AmoAddW: case Op::AmoXorW:
      case Op::AmoAndW: case Op::AmoOrW: case Op::AmoMinW:
      case Op::AmoMaxW: case Op::AmoMinuW: case Op::AmoMaxuW:
      case Op::AmoSwapD: case Op::AmoAddD: case Op::AmoXorD:
      case Op::AmoAndD: case Op::AmoOrD: case Op::AmoMinD:
      case Op::AmoMaxD: case Op::AmoMinuD: case Op::AmoMaxuD:
        amoAccess(d, r);
        break;
      case Op::Fld: {
        u64 v = memLoad(rs1 + d.imm, 8, r, false, 0);
        setFReg(d.rd, v);
        r.fpWen = true;
        r.frd = d.rd;
        r.frdVal = v;
        break;
      }
      case Op::Fsd:
        memStore(rs1 + d.imm, 8, fregs_[d.rs2], r);
        break;
      case Op::FaddD: case Op::FsubD: case Op::FmulD: {
        double a = std::bit_cast<double>(fregs_[d.rs1]);
        double b = std::bit_cast<double>(fregs_[d.rs2]);
        double out = d.op == Op::FaddD ? a + b
                     : d.op == Op::FsubD ? a - b
                                         : a * b;
        u64 v = std::bit_cast<u64>(out);
        setFReg(d.rd, v);
        r.fpWen = true;
        r.frd = d.rd;
        r.frdVal = v;
        break;
      }
      case Op::FmvXD:
        setXRegTraced(d.rd, fregs_[d.rs1], r);
        break;
      case Op::FmvDX:
        setFReg(d.rd, rs1);
        r.fpWen = true;
        r.frd = d.rd;
        r.frdVal = rs1;
        break;
      case Op::Vsetvli: {
        u64 vlmax = kVLanes64; // SEW=64, LMUL=1
        u64 avl;
        if (d.rs1 != 0)
            avl = rs1;
        else if (d.rd != 0)
            avl = vlmax;
        else
            avl = csrs_.vl;
        u64 vl = std::min(avl, vlmax);
        writeCsrInternal(kCsrVtype, static_cast<u64>(d.imm));
        writeCsrInternal(kCsrVl, vl);
        writeCsrInternal(kCsrVstart, 0);
        setXRegTraced(d.rd, vl, r);
        r.isVecConfig = true;
        break;
      }
      case Op::VaddVV: case Op::VxorVV: {
        // vd = vs2 op vs1 for the first vl 64-bit elements.
        std::array<u64, kVLanes64> out = vregs_[d.rd];
        for (unsigned i = 0; i < csrs_.vl && i < kVLanes64; ++i) {
            u64 a = vregs_[d.rs2][i];
            u64 b = vregs_[d.rs1][i];
            out[i] = d.op == Op::VaddVV ? a + b : (a ^ b);
        }
        if (observer_)
            observer_->onVRegWrite(d.rd, vregs_[d.rd].data());
        vregs_[d.rd] = out;
        r.vecWen = true;
        r.vrd = d.rd;
        r.vecVal = out;
        break;
      }
      case Op::Vle64: {
        std::array<u64, kVLanes64> out = vregs_[d.rd];
        for (unsigned i = 0; i < csrs_.vl && i < kVLanes64; ++i)
            out[i] = memLoad(rs1 + 8 * i, 8, r, false, 0);
        if (observer_)
            observer_->onVRegWrite(d.rd, vregs_[d.rd].data());
        vregs_[d.rd] = out;
        r.vecWen = true;
        r.vrd = d.rd;
        r.vecVal = out;
        break;
      }
      case Op::Vse64:
        for (unsigned i = 0; i < csrs_.vl && i < kVLanes64; ++i)
            memStore(rs1 + 8 * i, 8, vregs_[d.rd][i], r);
        break;
      case Op::Illegal:
        takeTrap(r, kCauseIllegalInstr, d.raw, false);
        break;
    }
    return r;
}

ArchSnapshot
Core::snapshot() const
{
    ArchSnapshot s;
    s.pc = pc_;
    s.xregs = xregs_;
    s.fregs = fregs_;
    s.vregs = vregs_;
    s.csrs = csrs_;
    return s;
}

void
Core::restore(const ArchSnapshot &snap)
{
    pc_ = snap.pc;
    xregs_ = snap.xregs;
    fregs_ = snap.fregs;
    vregs_ = snap.vregs;
    csrs_ = snap.csrs;
    seqNo_ = snap.csrs.minstret;
}

Soc::Soc(const CoreConfig &config, u64 ram_size)
    : bus(kRamBase, ram_size), uart(config.rngSeed ^ 0x5A5A),
      core(bus, config)
{
    bus.mapDevice(&uart, kUartBase, kUartSize);
    bus.mapDevice(&clint, kClintBase, kClintSize);
    core.attachClint(&clint);
}

} // namespace dth::riscv
