/**
 * @file
 * The RISC-V core: architectural state plus an instruction-at-a-time
 * step() executor. One instance serves as the golden reference model
 * (REF) on the software side; another, wrapped by the DUT model, is the
 * architectural backbone of the emulated processor.
 *
 * Three co-simulation hooks distinguish the two roles:
 *  - a StateObserver receives old values before every architectural
 *    mutation (Replay's compensation-log checkpointing, §4.4),
 *  - NDE oracles (MMIO values, SC outcomes, forced interrupts) let the
 *    checker synchronize DUT-specific non-determinism into the REF, and
 *  - autoInterrupts/spurious-SC settings give the DUT-side core its
 *    device-driven, microarchitecturally non-deterministic behaviour.
 */

#ifndef DTH_RISCV_CORE_H_
#define DTH_RISCV_CORE_H_

#include <array>
#include <deque>
#include <string>

#include "common/rng.h"
#include "riscv/devices.h"
#include "riscv/instr.h"
#include "riscv/mem.h"

namespace dth::riscv {

/** Receives old values before each architectural mutation. */
class StateObserver
{
  public:
    virtual ~StateObserver() = default;
    virtual void onXRegWrite(u8 rd, u64 old_val) = 0;
    virtual void onFRegWrite(u8 frd, u64 old_val) = 0;
    virtual void onVRegWrite(u8 vrd, const u64 *old_lanes) = 0;
    virtual void onCsrWrite(u16 addr, u64 old_val) = 0;
    virtual void onMemWrite(u64 addr, unsigned nbytes, u64 old_val) = 0;
    virtual void onPcWrite(u64 old_pc) = 0;
    virtual void onReservationWrite(u64 old_addr, bool old_valid) = 0;
};

/** Architectural CSR state (flat, machine-mode subset). */
struct CsrFile
{
    u64 mstatus = kMstatusMppMask; // boot in M-mode
    u64 misa = (1ULL << 63) | 0x141105; // RV64IMAFDV-ish
    u64 mie = 0;
    u64 mipExternal = 0; //!< software-controlled external/soft bits
    u64 mtvec = 0;
    u64 mscratch = 0;
    u64 mepc = 0;
    u64 mcause = 0;
    u64 mtval = 0;
    u64 mcycle = 0;
    u64 minstret = 0;
    u64 satp = 0;
    u64 medeleg = 0;
    u64 mideleg = 0;
    u64 stvec = 0;
    u64 sscratch = 0;
    u64 sepc = 0;
    u64 scause = 0;
    u64 stval = 0;
    u64 mhartid = 0;
    u64 fcsr = 0;
    u64 vstart = 0;
    u64 vxsat = 0;
    u64 vxrm = 0;
    u64 vl = 0;
    u64 vtype = 0;
    u64 priv = 3;
};

/** One memory access performed by a step. */
struct MemAccessInfo
{
    bool valid = false;
    bool store = false;
    bool mmio = false;
    bool atomic = false;
    u64 addr = 0;
    u8 sizeLog2 = 0;
    u64 data = 0;        //!< value loaded or stored
    u64 loadedValue = 0; //!< for AMOs: the value read before the update
};

/** Everything that happened during one step(), for event generation. */
struct StepResult
{
    bool retired = false; //!< an instruction committed (seqNo advanced)
    u64 pc = 0;
    u64 nextPc = 0;
    u32 instr = 0;
    u64 seqNo = 0; //!< global retired-instruction index (after retiring)
    Op op = Op::Illegal;

    bool rfWen = false;
    u8 rd = 0;
    u64 rdVal = 0;
    bool fpWen = false;
    u8 frd = 0;
    u64 frdVal = 0;
    bool vecWen = false;
    u8 vrd = 0;
    std::array<u64, kVLanes64> vecVal{};

    bool csrWen = false;
    u16 csrAddr = 0;
    u64 csrVal = 0;
    bool isVecConfig = false;

    std::array<MemAccessInfo, 2> mem{};
    u8 memCount = 0;

    bool isBranch = false;
    bool branchTaken = false;

    bool exception = false;
    bool interrupt = false;
    u64 cause = 0;
    u64 tval = 0;

    bool scEvent = false;
    bool scSuccess = false;

    bool halted = false;
    u64 haltCode = 0;
};

/** Snapshot of comparable architectural state (tests, snapshot baseline). */
struct ArchSnapshot
{
    u64 pc = 0;
    std::array<u64, 32> xregs{};
    std::array<u64, 32> fregs{};
    std::array<std::array<u64, kVLanes64>, kNumVregs> vregs{};
    CsrFile csrs;

    bool operator==(const ArchSnapshot &other) const;
};

/** Core configuration. */
struct CoreConfig
{
    u64 resetPc = kRamBase;
    /** DUT role: interrupts fire from the CLINT/external line. */
    bool autoInterrupts = false;
    /** DUT role: probability an SC fails despite a valid reservation. */
    double spuriousScFailRate = 0.0;
    u64 rngSeed = 0x5EED;
    u64 hartId = 0;
};

/** The RISC-V core. */
class Core
{
  public:
    Core(Bus &bus, const CoreConfig &config = {});

    /** Execute one instruction (or take one pending interrupt). */
    StepResult step();

    /** Reset architectural state (memory is left untouched). */
    void reset();

    // ---- Architectural state access ------------------------------------
    u64 pc() const { return pc_; }
    void setPc(u64 pc) { notifyPc(); pc_ = pc; }
    u64 xreg(unsigned i) const { return xregs_[i]; }
    void setXReg(unsigned i, u64 v);
    u64 freg(unsigned i) const { return fregs_[i]; }
    void setFReg(unsigned i, u64 v);
    u64 vregLane(unsigned r, unsigned lane) const { return vregs_[r][lane]; }
    void setVRegLane(unsigned r, unsigned lane, u64 v);
    const CsrFile &csrs() const { return csrs_; }
    u64 readCsr(u16 addr) const;
    void writeCsr(u16 addr, u64 value);
    u64 seqNo() const { return seqNo_; }
    bool halted() const { return halted_; }
    u64 haltCode() const { return haltCode_; }
    Bus &bus() { return bus_; }

    ArchSnapshot snapshot() const;
    void restore(const ArchSnapshot &snap);

    /** Re-derive seqNo from minstret after a compensation-log rollback. */
    void restoreSeqFromMinstret() { seqNo_ = csrs_.minstret; }

    /** Clear a halt latched inside a rolled-back window (Replay). */
    void clearHalted() { halted_ = false; haltCode_ = 0; }

    // ---- Co-simulation hooks -------------------------------------------
    /** Attach/detach the compensation-log observer (Replay). */
    void setObserver(StateObserver *observer) { observer_ = observer; }

    /** REF role: next MMIO load at @p addr must return @p data. */
    void pushMmioFill(u64 addr, u64 data);
    /** REF role: outcome of the next SC instruction. */
    void pushScOutcome(bool success);
    /** REF role: take this interrupt before executing the next step. */
    void forceInterrupt(u64 cause);
    /** True if an MMIO-fill oracle entry is queued. */
    bool hasMmioFill() const { return !mmioFills_.empty(); }

    /** Drop all queued NDE synchronization (Replay rollback: the
     *  retransmitted originals re-supply the window's oracles). */
    void
    clearOracles()
    {
        mmioFills_.clear();
        scOutcomes_.clear();
        forcedInterrupts_.clear();
    }

    /** DUT role: wire the CLINT whose mtip feeds the interrupt logic. */
    void attachClint(Clint *clint) { clint_ = clint; }
    /** DUT role: assert/deassert the external interrupt line. */
    void setExternalInterrupt(bool asserted);

    /** Direct memory-write that flows through the observer (checker sync
     *  of DUT store data into REF memory for skipped MMIO regions). */
    void observedMemWrite(u64 addr, unsigned nbytes, u64 value);

  private:
    struct MmioFill
    {
        u64 addr;
        u64 data;
    };

    StepResult execute(const DecodedInstr &d, StepResult &r);
    void takeTrap(StepResult &r, u64 cause, u64 tval, bool interrupt);
    void setPriv(u64 priv);
    u64 pendingInterrupt() const;
    u64 effectiveMip() const;

    u64 memLoad(u64 addr, unsigned nbytes, StepResult &r, bool sext_to,
                unsigned sext_bits);
    void memStore(u64 addr, unsigned nbytes, u64 value, StepResult &r);
    u64 amoAccess(const DecodedInstr &d, StepResult &r);

    void writeCsrInternal(u16 addr, u64 value);
    u64 csrForOp(const DecodedInstr &d, StepResult &r);

    void notifyPc();
    void setXRegTraced(u8 rd, u64 v, StepResult &r);

    Bus &bus_;
    CoreConfig config_;
    Clint *clint_ = nullptr;
    StateObserver *observer_ = nullptr;

    u64 pc_;
    std::array<u64, 32> xregs_{};
    std::array<u64, 32> fregs_{};
    std::array<std::array<u64, kVLanes64>, kNumVregs> vregs_{};
    CsrFile csrs_;

    bool reservationValid_ = false;
    u64 reservationAddr_ = 0;

    u64 seqNo_ = 0;
    bool halted_ = false;
    u64 haltCode_ = 0;

    bool externalInterrupt_ = false;
    std::deque<u64> forcedInterrupts_;
    std::deque<MmioFill> mmioFills_;
    std::deque<bool> scOutcomes_;
    Rng rng_;
};

/** Bundles a bus, devices and a core into a small SoC (DUT side). */
struct Soc
{
    explicit Soc(const CoreConfig &config = {}, u64 ram_size =
                 kDefaultRamSize);

    Bus bus;
    Uart uart;
    Clint clint;
    Core core;
};

} // namespace dth::riscv

#endif // DTH_RISCV_CORE_H_
