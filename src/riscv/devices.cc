#include "riscv/devices.h"

namespace dth::riscv {

u64
Uart::read(u64 offset, unsigned nbytes)
{
    (void)nbytes;
    switch (offset) {
      case kUartData:
        return 0;
      case kUartStatus:
        // Line status: TX-empty bit flickers with device-local jitter;
        // a software REF cannot predict it -> NDE.
        return 0x60 | (rng_.chance(0.25) ? 0x01 : 0x00);
      case kUartInput:
        // RX data: device-local, unpredictable to the REF.
        return rng_.nextBelow(128);
      default:
        return 0;
    }
}

void
Uart::write(u64 offset, unsigned nbytes, u64 value)
{
    (void)nbytes;
    if (offset == kUartData) {
        output_.push_back(static_cast<char>(value & 0xFF));
        ++bytesWritten_;
    }
}

u64
Clint::read(u64 offset, unsigned nbytes)
{
    (void)nbytes;
    switch (offset) {
      case kClintMsip:
        return msip_;
      case kClintMtimecmp:
        return mtimecmp_;
      case kClintMtime:
        return mtime_;
      default:
        return 0;
    }
}

void
Clint::write(u64 offset, unsigned nbytes, u64 value)
{
    (void)nbytes;
    switch (offset) {
      case kClintMsip:
        msip_ = value & 1;
        break;
      case kClintMtimecmp:
        mtimecmp_ = value;
        break;
      case kClintMtime:
        mtime_ = value;
        break;
      default:
        break;
    }
}

} // namespace dth::riscv
