/**
 * @file
 * MMIO devices: a 16550-flavoured UART and a CLINT (machine timer +
 * software interrupt). The UART status register deliberately depends on
 * device-local state the REF cannot reproduce — it is the canonical
 * source of MMIO non-determinism in the co-simulation.
 */

#ifndef DTH_RISCV_DEVICES_H_
#define DTH_RISCV_DEVICES_H_

#include <string>

#include "common/rng.h"
#include "riscv/mem.h"

namespace dth::riscv {

/** Minimal UART: output capture, status register with jittered readiness. */
class Uart : public Device
{
  public:
    explicit Uart(u64 seed = 1) : rng_(seed) {}

    const char *name() const override { return "uart"; }

    u64 read(u64 offset, unsigned nbytes) override;
    void write(u64 offset, unsigned nbytes, u64 value) override;

    const std::string &output() const { return output_; }
    u64 bytesWritten() const { return bytesWritten_; }

  private:
    std::string output_;
    u64 bytesWritten_ = 0;
    Rng rng_; //!< device-local jitter: the DUT-visible non-determinism
};

/** CLINT: mtime/mtimecmp/msip; raises the machine timer interrupt. */
class Clint : public Device
{
  public:
    Clint() = default;

    const char *name() const override { return "clint"; }

    u64 read(u64 offset, unsigned nbytes) override;
    void write(u64 offset, unsigned nbytes, u64 value) override;

    /** Advance mtime by @p ticks (called once per DUT cycle). */
    void tick(u64 ticks = 1) { mtime_ += ticks; }

    bool timerPending() const { return mtime_ >= mtimecmp_; }
    bool softwarePending() const { return msip_ != 0; }

    u64 mtime() const { return mtime_; }
    void setMtimecmp(u64 v) { mtimecmp_ = v; }

  private:
    u64 mtime_ = 0;
    u64 mtimecmp_ = ~0ULL;
    u64 msip_ = 0;
};

} // namespace dth::riscv

#endif // DTH_RISCV_DEVICES_H_
