/**
 * @file
 * RISC-V encoding constants: opcode fields, CSR addresses, cause codes,
 * and the memory map shared by the REF and the DUT model.
 */

#ifndef DTH_RISCV_ENCODING_H_
#define DTH_RISCV_ENCODING_H_

#include "common/types.h"

namespace dth::riscv {

// Major opcodes (bits [6:0]).
inline constexpr u32 kOpLui = 0x37;
inline constexpr u32 kOpAuipc = 0x17;
inline constexpr u32 kOpJal = 0x6F;
inline constexpr u32 kOpJalr = 0x67;
inline constexpr u32 kOpBranch = 0x63;
inline constexpr u32 kOpLoad = 0x03;
inline constexpr u32 kOpStore = 0x23;
inline constexpr u32 kOpImm = 0x13;
inline constexpr u32 kOpImm32 = 0x1B;
inline constexpr u32 kOpReg = 0x33;
inline constexpr u32 kOpReg32 = 0x3B;
inline constexpr u32 kOpMiscMem = 0x0F;
inline constexpr u32 kOpSystem = 0x73;
inline constexpr u32 kOpAmo = 0x2F;
inline constexpr u32 kOpLoadFp = 0x07;  //!< also vector loads
inline constexpr u32 kOpStoreFp = 0x27; //!< also vector stores
inline constexpr u32 kOpFp = 0x53;
inline constexpr u32 kOpVector = 0x57;

// CSR addresses (machine mode subset + F/V extension CSRs).
inline constexpr u16 kCsrFflags = 0x001;
inline constexpr u16 kCsrFrm = 0x002;
inline constexpr u16 kCsrFcsr = 0x003;
inline constexpr u16 kCsrVstart = 0x008;
inline constexpr u16 kCsrVxsat = 0x009;
inline constexpr u16 kCsrVxrm = 0x00A;
inline constexpr u16 kCsrVcsr = 0x00F;
inline constexpr u16 kCsrSstatus = 0x100;
inline constexpr u16 kCsrSie = 0x104;
inline constexpr u16 kCsrSip = 0x144;
inline constexpr u16 kCsrSatp = 0x180;
inline constexpr u16 kCsrMstatus = 0x300;
inline constexpr u16 kCsrMisa = 0x301;
inline constexpr u16 kCsrMedeleg = 0x302;
inline constexpr u16 kCsrMideleg = 0x303;
inline constexpr u16 kCsrMie = 0x304;
inline constexpr u16 kCsrMtvec = 0x305;
inline constexpr u16 kCsrMscratch = 0x340;
inline constexpr u16 kCsrMepc = 0x341;
inline constexpr u16 kCsrMcause = 0x342;
inline constexpr u16 kCsrMtval = 0x343;
inline constexpr u16 kCsrMip = 0x344;
inline constexpr u16 kCsrStvec = 0x105;
inline constexpr u16 kCsrSscratch = 0x140;
inline constexpr u16 kCsrSepc = 0x141;
inline constexpr u16 kCsrScause = 0x142;
inline constexpr u16 kCsrStval = 0x143;
inline constexpr u16 kCsrMcycle = 0xB00;
inline constexpr u16 kCsrMinstret = 0xB02;
inline constexpr u16 kCsrMhartid = 0xF14;
inline constexpr u16 kCsrVl = 0xC20;
inline constexpr u16 kCsrVtype = 0xC21;
inline constexpr u16 kCsrVlenb = 0xC22;
/** Internal pseudo-CSR: the privilege level, so the compensation log
 *  can record and restore privilege transitions uniformly. */
inline constexpr u16 kCsrPrivPseudo = 0xFFF;

// mstatus bits.
inline constexpr u64 kMstatusSie = 1ULL << 1;
inline constexpr u64 kMstatusMie = 1ULL << 3;
inline constexpr u64 kMstatusSpie = 1ULL << 5;
inline constexpr u64 kMstatusMpie = 1ULL << 7;
inline constexpr u64 kMstatusSpp = 1ULL << 8;
inline constexpr u64 kMstatusMppShift = 11;
inline constexpr u64 kMstatusMppMask = 3ULL << 11;
/** sstatus is a masked view of mstatus. */
inline constexpr u64 kSstatusMask =
    kMstatusSie | kMstatusSpie | kMstatusSpp;

// Privilege levels.
inline constexpr u64 kPrivU = 0;
inline constexpr u64 kPrivS = 1;
inline constexpr u64 kPrivM = 3;

// mip/mie bits.
inline constexpr u64 kIpSsip = 1ULL << 1;
inline constexpr u64 kIpMsip = 1ULL << 3;
inline constexpr u64 kIpStip = 1ULL << 5;
inline constexpr u64 kIpMtip = 1ULL << 7;
inline constexpr u64 kIpSeip = 1ULL << 9;
inline constexpr u64 kIpMeip = 1ULL << 11;
/** Bits software may set directly in mip/sip. */
inline constexpr u64 kIpWritableMask =
    kIpSsip | kIpMsip | kIpStip | kIpSeip | kIpMeip;

// Exception cause codes.
inline constexpr u64 kCauseIllegalInstr = 2;
inline constexpr u64 kCauseBreakpoint = 3;
inline constexpr u64 kCauseLoadMisaligned = 4;
inline constexpr u64 kCauseLoadFault = 5;
inline constexpr u64 kCauseStoreMisaligned = 6;
inline constexpr u64 kCauseStoreFault = 7;
inline constexpr u64 kCauseEcallU = 8;
inline constexpr u64 kCauseEcallS = 9;
inline constexpr u64 kCauseEcallM = 11;

// Interrupt cause codes (without the top bit).
inline constexpr u64 kIntSSoftware = 1;
inline constexpr u64 kIntSoftware = 3;
inline constexpr u64 kIntSTimer = 5;
inline constexpr u64 kIntTimer = 7;
inline constexpr u64 kIntSExternal = 9;
inline constexpr u64 kIntExternal = 11;
inline constexpr u64 kInterruptFlag = 1ULL << 63;

// Memory map (shared by REF and DUT).
inline constexpr u64 kRamBase = 0x80000000ULL;
inline constexpr u64 kDefaultRamSize = 64ULL << 20;
inline constexpr u64 kClintBase = 0x02000000ULL;
inline constexpr u64 kClintSize = 0x10000ULL;
inline constexpr u64 kUartBase = 0x10000000ULL;
inline constexpr u64 kUartSize = 0x1000ULL;

// CLINT register offsets.
inline constexpr u64 kClintMsip = 0x0;
inline constexpr u64 kClintMtimecmp = 0x4000;
inline constexpr u64 kClintMtime = 0xBFF8;

// UART register offsets (16550-flavoured subset).
inline constexpr u64 kUartData = 0x0;
inline constexpr u64 kUartStatus = 0x5;
inline constexpr u64 kUartInput = 0x8;

/** Vector configuration: VLEN=128, SEW=64, LMUL=1 only. */
inline constexpr unsigned kVlenBits = 128;
inline constexpr unsigned kVLanes64 = kVlenBits / 64;
inline constexpr unsigned kNumVregs = 32;

} // namespace dth::riscv

#endif // DTH_RISCV_ENCODING_H_
