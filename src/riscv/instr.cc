#include "riscv/instr.h"

#include "common/bits.h"
#include "riscv/encoding.h"

namespace dth::riscv {

namespace {

i64
immI(u32 raw)
{
    return sext(bits(raw, 31, 20), 12);
}

i64
immS(u32 raw)
{
    return sext((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
}

i64
immB(u32 raw)
{
    u64 v = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
            (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1);
    return sext(v, 13);
}

i64
immU(u32 raw)
{
    return sext(raw & 0xFFFFF000u, 32);
}

i64
immJ(u32 raw)
{
    u64 v = (bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
            (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1);
    return sext(v, 21);
}

Op
decodeBranch(u32 f3)
{
    switch (f3) {
      case 0: return Op::Beq;
      case 1: return Op::Bne;
      case 4: return Op::Blt;
      case 5: return Op::Bge;
      case 6: return Op::Bltu;
      case 7: return Op::Bgeu;
      default: return Op::Illegal;
    }
}

Op
decodeLoad(u32 f3)
{
    switch (f3) {
      case 0: return Op::Lb;
      case 1: return Op::Lh;
      case 2: return Op::Lw;
      case 3: return Op::Ld;
      case 4: return Op::Lbu;
      case 5: return Op::Lhu;
      case 6: return Op::Lwu;
      default: return Op::Illegal;
    }
}

Op
decodeStore(u32 f3)
{
    switch (f3) {
      case 0: return Op::Sb;
      case 1: return Op::Sh;
      case 2: return Op::Sw;
      case 3: return Op::Sd;
      default: return Op::Illegal;
    }
}

Op
decodeOpImm(u32 raw, u32 f3)
{
    u32 f6 = bits(raw, 31, 26);
    u32 imm12 = bits(raw, 31, 20);
    switch (f3) {
      case 0: return Op::Addi;
      case 2: return Op::Slti;
      case 3: return Op::Sltiu;
      case 4: return Op::Xori;
      case 6: return Op::Ori;
      case 7: return Op::Andi;
      case 1:
        if (f6 == 0)
            return Op::Slli;
        if (f6 == 0x18) { // Zbb unary family
            switch (bits(raw, 24, 20)) {
              case 0: return Op::Clz;
              case 1: return Op::Ctz;
              case 2: return Op::Cpop;
              case 4: return Op::SextB;
              case 5: return Op::SextH;
              default: return Op::Illegal;
            }
        }
        return Op::Illegal;
      case 5:
        if (f6 == 0)
            return Op::Srli;
        if (f6 == 0x10)
            return Op::Srai;
        if (imm12 == 0x6B8)
            return Op::Rev8;
        if (imm12 == 0x287)
            return Op::OrcB;
        if (f6 == 0x18)
            return Op::Rori;
        return Op::Illegal;
      default: return Op::Illegal;
    }
}

Op
decodeOpImm32(u32 raw, u32 f3)
{
    u32 f7 = bits(raw, 31, 25);
    switch (f3) {
      case 0: return Op::Addiw;
      case 1: return f7 == 0 ? Op::Slliw : Op::Illegal;
      case 5:
        if (f7 == 0)
            return Op::Srliw;
        if (f7 == 0x20)
            return Op::Sraiw;
        return Op::Illegal;
      default: return Op::Illegal;
    }
}

Op
decodeOpReg(u32 f3, u32 f7)
{
    if (f7 == 1) {
        switch (f3) {
          case 0: return Op::Mul;
          case 1: return Op::Mulh;
          case 2: return Op::Mulhsu;
          case 3: return Op::Mulhu;
          case 4: return Op::Div;
          case 5: return Op::Divu;
          case 6: return Op::Rem;
          case 7: return Op::Remu;
        }
    }
    // Zba shNadd and Zbb logic/minmax/rotate share the OP opcode.
    if (f7 == 0x10) {
        switch (f3) {
          case 2: return Op::Sh1add;
          case 4: return Op::Sh2add;
          case 6: return Op::Sh3add;
          default: return Op::Illegal;
        }
    }
    if (f7 == 0x05) {
        switch (f3) {
          case 4: return Op::Min;
          case 5: return Op::Minu;
          case 6: return Op::Max;
          case 7: return Op::Maxu;
          default: return Op::Illegal;
        }
    }
    if (f7 == 0x30) {
        switch (f3) {
          case 1: return Op::Rol;
          case 5: return Op::Ror;
          default: return Op::Illegal;
        }
    }
    switch (f3) {
      case 0:
        if (f7 == 0)
            return Op::Add;
        if (f7 == 0x20)
            return Op::Sub;
        return Op::Illegal;
      case 1: return f7 == 0 ? Op::Sll : Op::Illegal;
      case 2: return f7 == 0 ? Op::Slt : Op::Illegal;
      case 3: return f7 == 0 ? Op::Sltu : Op::Illegal;
      case 4:
        if (f7 == 0)
            return Op::Xor;
        if (f7 == 0x20)
            return Op::Xnor;
        return Op::Illegal;
      case 5:
        if (f7 == 0)
            return Op::Srl;
        if (f7 == 0x20)
            return Op::Sra;
        return Op::Illegal;
      case 6:
        if (f7 == 0)
            return Op::Or;
        if (f7 == 0x20)
            return Op::Orn;
        return Op::Illegal;
      case 7:
        if (f7 == 0)
            return Op::And;
        if (f7 == 0x20)
            return Op::Andn;
        return Op::Illegal;
      default: return Op::Illegal;
    }
}

Op
decodeOpReg32(u32 f3, u32 f7)
{
    if (f7 == 1) {
        switch (f3) {
          case 0: return Op::Mulw;
          case 4: return Op::Divw;
          case 5: return Op::Divuw;
          case 6: return Op::Remw;
          case 7: return Op::Remuw;
          default: return Op::Illegal;
        }
    }
    if (f7 == 0x04) { // Zba add.uw / Zbb zext.h
        if (f3 == 0)
            return Op::AddUw;
        if (f3 == 4)
            return Op::ZextH;
        return Op::Illegal;
    }
    switch (f3) {
      case 0:
        if (f7 == 0)
            return Op::Addw;
        if (f7 == 0x20)
            return Op::Subw;
        return Op::Illegal;
      case 1: return f7 == 0 ? Op::Sllw : Op::Illegal;
      case 5:
        if (f7 == 0)
            return Op::Srlw;
        if (f7 == 0x20)
            return Op::Sraw;
        return Op::Illegal;
      default: return Op::Illegal;
    }
}

Op
decodeAmo(u32 f3, u32 f5)
{
    bool w = f3 == 2;
    bool d = f3 == 3;
    if (!w && !d)
        return Op::Illegal;
    switch (f5) {
      case 0x02: return w ? Op::LrW : Op::LrD;
      case 0x03: return w ? Op::ScW : Op::ScD;
      case 0x01: return w ? Op::AmoSwapW : Op::AmoSwapD;
      case 0x00: return w ? Op::AmoAddW : Op::AmoAddD;
      case 0x04: return w ? Op::AmoXorW : Op::AmoXorD;
      case 0x0C: return w ? Op::AmoAndW : Op::AmoAndD;
      case 0x08: return w ? Op::AmoOrW : Op::AmoOrD;
      case 0x10: return w ? Op::AmoMinW : Op::AmoMinD;
      case 0x14: return w ? Op::AmoMaxW : Op::AmoMaxD;
      case 0x18: return w ? Op::AmoMinuW : Op::AmoMinuD;
      case 0x1C: return w ? Op::AmoMaxuW : Op::AmoMaxuD;
      default: return Op::Illegal;
    }
}

Op
decodeSystem(u32 raw, u32 f3)
{
    if (f3 == 0) {
        switch (bits(raw, 31, 20)) {
          case 0x000: return Op::Ecall;
          case 0x001: return Op::Ebreak;
          case 0x302: return Op::Mret;
          case 0x102: return Op::Sret;
          case 0x105: return Op::Wfi;
          default: return Op::Illegal;
        }
    }
    switch (f3) {
      case 1: return Op::Csrrw;
      case 2: return Op::Csrrs;
      case 3: return Op::Csrrc;
      case 5: return Op::Csrrwi;
      case 6: return Op::Csrrsi;
      case 7: return Op::Csrrci;
      default: return Op::Illegal;
    }
}

Op
decodeFp(u32 f7)
{
    switch (f7) {
      case 0x01: return Op::FaddD;
      case 0x05: return Op::FsubD;
      case 0x09: return Op::FmulD;
      case 0x71: return Op::FmvXD;
      case 0x79: return Op::FmvDX;
      default: return Op::Illegal;
    }
}

Op
decodeVector(u32 raw, u32 f3)
{
    if (f3 == 7)
        return bit(raw, 31) == 0 ? Op::Vsetvli : Op::Illegal;
    if (f3 == 0) { // OPIVV
        switch (bits(raw, 31, 26)) {
          case 0x00: return Op::VaddVV;
          case 0x0B: return Op::VxorVV;
          default: return Op::Illegal;
        }
    }
    return Op::Illegal;
}

} // namespace

DecodedInstr
decode(u32 raw)
{
    DecodedInstr d;
    d.raw = raw;
    d.rd = bits(raw, 11, 7);
    d.rs1 = bits(raw, 19, 15);
    d.rs2 = bits(raw, 24, 20);
    u32 opcode = bits(raw, 6, 0);
    u32 f3 = bits(raw, 14, 12);
    u32 f7 = bits(raw, 31, 25);

    switch (opcode) {
      case kOpLui:
        d.op = Op::Lui;
        d.imm = immU(raw);
        break;
      case kOpAuipc:
        d.op = Op::Auipc;
        d.imm = immU(raw);
        break;
      case kOpJal:
        d.op = Op::Jal;
        d.imm = immJ(raw);
        break;
      case kOpJalr:
        d.op = f3 == 0 ? Op::Jalr : Op::Illegal;
        d.imm = immI(raw);
        break;
      case kOpBranch:
        d.op = decodeBranch(f3);
        d.imm = immB(raw);
        break;
      case kOpLoad:
        d.op = decodeLoad(f3);
        d.imm = immI(raw);
        break;
      case kOpStore:
        d.op = decodeStore(f3);
        d.imm = immS(raw);
        break;
      case kOpImm:
        d.op = decodeOpImm(raw, f3);
        d.imm = (d.op == Op::Slli || d.op == Op::Srli ||
                 d.op == Op::Srai || d.op == Op::Rori)
                    ? static_cast<i64>(bits(raw, 25, 20))
                    : immI(raw);
        break;
      case kOpImm32:
        d.op = decodeOpImm32(raw, f3);
        d.imm = (d.op == Op::Addiw) ? immI(raw)
                                    : static_cast<i64>(bits(raw, 24, 20));
        break;
      case kOpReg:
        d.op = decodeOpReg(f3, f7);
        break;
      case kOpReg32:
        d.op = decodeOpReg32(f3, f7);
        break;
      case kOpMiscMem:
        d.op = Op::Fence;
        break;
      case kOpSystem:
        d.op = decodeSystem(raw, f3);
        d.csr = static_cast<u16>(bits(raw, 31, 20));
        d.imm = static_cast<i64>(d.rs1); // zimm for CSRxxI forms
        break;
      case kOpAmo:
        d.op = decodeAmo(f3, bits(raw, 31, 27));
        break;
      case kOpLoadFp:
        if (f3 == 3) {
            d.op = Op::Fld;
            d.imm = immI(raw);
        } else if (f3 == 7 && bits(raw, 28, 26) == 0) {
            d.op = Op::Vle64;
        } else {
            d.op = Op::Illegal;
        }
        break;
      case kOpStoreFp:
        if (f3 == 3) {
            d.op = Op::Fsd;
            d.imm = immS(raw);
        } else if (f3 == 7 && bits(raw, 28, 26) == 0) {
            d.op = Op::Vse64;
        } else {
            d.op = Op::Illegal;
        }
        break;
      case kOpFp:
        d.op = decodeFp(f7);
        break;
      case kOpVector:
        d.op = decodeVector(raw, f3);
        if (d.op == Op::Vsetvli)
            d.imm = static_cast<i64>(bits(raw, 30, 20)); // vtypei
        break;
      default:
        d.op = Op::Illegal;
        break;
    }
    return d;
}

bool
DecodedInstr::isLoad() const
{
    switch (op) {
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Ld:
      case Op::Lbu: case Op::Lhu: case Op::Lwu:
      case Op::Fld: case Op::Vle64:
        return true;
      default:
        return false;
    }
}

bool
DecodedInstr::isStore() const
{
    switch (op) {
      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Sd:
      case Op::Fsd: case Op::Vse64:
        return true;
      default:
        return false;
    }
}

bool
DecodedInstr::isAmo() const
{
    return op >= Op::LrW && op <= Op::AmoMaxuD;
}

bool
DecodedInstr::isBranch() const
{
    return op >= Op::Beq && op <= Op::Bgeu;
}

bool
DecodedInstr::isJump() const
{
    return op == Op::Jal || op == Op::Jalr;
}

bool
DecodedInstr::isCsrOp() const
{
    return op >= Op::Csrrw && op <= Op::Csrrci;
}

bool
DecodedInstr::isVector() const
{
    switch (op) {
      case Op::Vsetvli: case Op::VaddVV: case Op::VxorVV:
      case Op::Vle64: case Op::Vse64:
        return true;
      default:
        return false;
    }
}

bool
DecodedInstr::isFp() const
{
    switch (op) {
      case Op::Fld: case Op::Fsd: case Op::FaddD: case Op::FsubD:
      case Op::FmulD: case Op::FmvXD: case Op::FmvDX:
        return true;
      default:
        return false;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Illegal: return "illegal";
      case Op::Lui: return "lui";
      case Op::Auipc: return "auipc";
      case Op::Jal: return "jal";
      case Op::Jalr: return "jalr";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Bltu: return "bltu";
      case Op::Bgeu: return "bgeu";
      case Op::Lb: return "lb";
      case Op::Lh: return "lh";
      case Op::Lw: return "lw";
      case Op::Ld: return "ld";
      case Op::Lbu: return "lbu";
      case Op::Lhu: return "lhu";
      case Op::Lwu: return "lwu";
      case Op::Sb: return "sb";
      case Op::Sh: return "sh";
      case Op::Sw: return "sw";
      case Op::Sd: return "sd";
      case Op::Addi: return "addi";
      case Op::Slti: return "slti";
      case Op::Sltiu: return "sltiu";
      case Op::Xori: return "xori";
      case Op::Ori: return "ori";
      case Op::Andi: return "andi";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Addiw: return "addiw";
      case Op::Slliw: return "slliw";
      case Op::Srliw: return "srliw";
      case Op::Sraiw: return "sraiw";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Sll: return "sll";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Xor: return "xor";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Or: return "or";
      case Op::And: return "and";
      case Op::Addw: return "addw";
      case Op::Subw: return "subw";
      case Op::Sllw: return "sllw";
      case Op::Srlw: return "srlw";
      case Op::Sraw: return "sraw";
      case Op::Fence: return "fence";
      case Op::Mul: return "mul";
      case Op::Mulh: return "mulh";
      case Op::Mulhsu: return "mulhsu";
      case Op::Mulhu: return "mulhu";
      case Op::Div: return "div";
      case Op::Divu: return "divu";
      case Op::Rem: return "rem";
      case Op::Remu: return "remu";
      case Op::Mulw: return "mulw";
      case Op::Divw: return "divw";
      case Op::Divuw: return "divuw";
      case Op::Remw: return "remw";
      case Op::Remuw: return "remuw";
      case Op::Sh1add: return "sh1add";
      case Op::Sh2add: return "sh2add";
      case Op::Sh3add: return "sh3add";
      case Op::AddUw: return "add.uw";
      case Op::Andn: return "andn";
      case Op::Orn: return "orn";
      case Op::Xnor: return "xnor";
      case Op::Clz: return "clz";
      case Op::Ctz: return "ctz";
      case Op::Cpop: return "cpop";
      case Op::Min: return "min";
      case Op::Minu: return "minu";
      case Op::Max: return "max";
      case Op::Maxu: return "maxu";
      case Op::SextB: return "sext.b";
      case Op::SextH: return "sext.h";
      case Op::ZextH: return "zext.h";
      case Op::Rol: return "rol";
      case Op::Ror: return "ror";
      case Op::Rori: return "rori";
      case Op::Rev8: return "rev8";
      case Op::OrcB: return "orc.b";
      case Op::Csrrw: return "csrrw";
      case Op::Csrrs: return "csrrs";
      case Op::Csrrc: return "csrrc";
      case Op::Csrrwi: return "csrrwi";
      case Op::Csrrsi: return "csrrsi";
      case Op::Csrrci: return "csrrci";
      case Op::Ecall: return "ecall";
      case Op::Ebreak: return "ebreak";
      case Op::Mret: return "mret";
      case Op::Sret: return "sret";
      case Op::Wfi: return "wfi";
      case Op::LrW: return "lr.w";
      case Op::LrD: return "lr.d";
      case Op::ScW: return "sc.w";
      case Op::ScD: return "sc.d";
      case Op::AmoSwapW: return "amoswap.w";
      case Op::AmoAddW: return "amoadd.w";
      case Op::AmoXorW: return "amoxor.w";
      case Op::AmoAndW: return "amoand.w";
      case Op::AmoOrW: return "amoor.w";
      case Op::AmoMinW: return "amomin.w";
      case Op::AmoMaxW: return "amomax.w";
      case Op::AmoMinuW: return "amominu.w";
      case Op::AmoMaxuW: return "amomaxu.w";
      case Op::AmoSwapD: return "amoswap.d";
      case Op::AmoAddD: return "amoadd.d";
      case Op::AmoXorD: return "amoxor.d";
      case Op::AmoAndD: return "amoand.d";
      case Op::AmoOrD: return "amoor.d";
      case Op::AmoMinD: return "amomin.d";
      case Op::AmoMaxD: return "amomax.d";
      case Op::AmoMinuD: return "amominu.d";
      case Op::AmoMaxuD: return "amomaxu.d";
      case Op::Fld: return "fld";
      case Op::Fsd: return "fsd";
      case Op::FaddD: return "fadd.d";
      case Op::FsubD: return "fsub.d";
      case Op::FmulD: return "fmul.d";
      case Op::FmvXD: return "fmv.x.d";
      case Op::FmvDX: return "fmv.d.x";
      case Op::Vsetvli: return "vsetvli";
      case Op::VaddVV: return "vadd.vv";
      case Op::VxorVV: return "vxor.vv";
      case Op::Vle64: return "vle64.v";
      case Op::Vse64: return "vse64.v";
    }
    return "?";
}

} // namespace dth::riscv
