/**
 * @file
 * Instruction decoder: raw 32-bit encodings to a flat operation enum plus
 * extracted operands. Covers RV64IM, Zicsr, A (LR/SC + AMOs), a minimal
 * D subset, and a minimal V subset (vsetvli, vadd/vxor.vv, vle64/vse64).
 */

#ifndef DTH_RISCV_INSTR_H_
#define DTH_RISCV_INSTR_H_

#include "common/types.h"

namespace dth::riscv {

/** Flat operation enum; one value per executable operation. */
enum class Op : u8 {
    Illegal,
    // RV64I
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Ld, Lbu, Lhu, Lwu,
    Sb, Sh, Sw, Sd,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Addiw, Slliw, Srliw, Sraiw,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Addw, Subw, Sllw, Srlw, Sraw,
    Fence,
    // RV64M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Mulw, Divw, Divuw, Remw, Remuw,
    // Zba/Zbb bit-manipulation subset (XiangShan implements B)
    Sh1add, Sh2add, Sh3add, AddUw,
    Andn, Orn, Xnor, Clz, Ctz, Cpop, Min, Minu, Max, Maxu,
    SextB, SextH, ZextH, Rol, Ror, Rori, Rev8, OrcB,
    // Zicsr + privileged
    Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,
    Ecall, Ebreak, Mret, Sret, Wfi,
    // RV64A
    LrW, LrD, ScW, ScD,
    AmoSwapW, AmoAddW, AmoXorW, AmoAndW, AmoOrW,
    AmoMinW, AmoMaxW, AmoMinuW, AmoMaxuW,
    AmoSwapD, AmoAddD, AmoXorD, AmoAndD, AmoOrD,
    AmoMinD, AmoMaxD, AmoMinuD, AmoMaxuD,
    // D subset
    Fld, Fsd, FaddD, FsubD, FmulD, FmvXD, FmvDX,
    // V subset
    Vsetvli, VaddVV, VxorVV, Vle64, Vse64,
};

/** Decoded instruction: operation plus extracted fields. */
struct DecodedInstr
{
    Op op = Op::Illegal;
    u32 raw = 0;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i64 imm = 0;
    u16 csr = 0;

    bool isLoad() const;
    bool isStore() const;
    bool isAmo() const;
    bool isBranch() const;
    bool isJump() const;
    bool isCsrOp() const;
    bool isVector() const;
    bool isFp() const;
};

/** Decode one 32-bit instruction word. Never traps; returns Op::Illegal. */
DecodedInstr decode(u32 raw);

/** Printable mnemonic for an operation. */
const char *opName(Op op);

} // namespace dth::riscv

#endif // DTH_RISCV_INSTR_H_
