#include "riscv/mem.h"

#include <cstring>

#include "common/logging.h"

namespace dth::riscv {

PhysMem::Page &
PhysMem::page(u64 addr)
{
    u64 key = addr / kPageBytes;
    auto &slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const PhysMem::Page *
PhysMem::pageIfPresent(u64 addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

u64
PhysMem::read(u64 addr, unsigned nbytes) const
{
    dth_assert(nbytes <= 8, "bad access size %u", nbytes);
    u64 value = 0;
    for (unsigned i = 0; i < nbytes; ++i) {
        u64 a = addr + i;
        const Page *p = pageIfPresent(a);
        u8 byte = p ? (*p)[a % kPageBytes] : 0;
        value |= static_cast<u64>(byte) << (8 * i);
    }
    return value;
}

void
PhysMem::write(u64 addr, unsigned nbytes, u64 value)
{
    dth_assert(nbytes <= 8, "bad access size %u", nbytes);
    for (unsigned i = 0; i < nbytes; ++i) {
        u64 a = addr + i;
        page(a)[a % kPageBytes] = static_cast<u8>(value >> (8 * i));
    }
}

void
PhysMem::writeMasked(u64 addr, u64 value, u64 byte_mask8)
{
    for (unsigned i = 0; i < 8; ++i) {
        if (byte_mask8 & (1ULL << i)) {
            u64 a = addr + i;
            page(a)[a % kPageBytes] = static_cast<u8>(value >> (8 * i));
        }
    }
}

void
PhysMem::load(u64 addr, const u8 *data, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        u64 a = addr + i;
        page(a)[a % kPageBytes] = data[i];
    }
}

Bus::Bus(u64 ram_base, u64 ram_size) : ramBase_(ram_base), ramSize_(ram_size)
{}

void
Bus::mapDevice(Device *device, u64 base, u64 size)
{
    dth_assert(device != nullptr, "null device");
    devices_.push_back({base, size, device});
}

const Bus::Mapping *
Bus::findDevice(u64 addr) const
{
    for (const Mapping &m : devices_) {
        if (addr >= m.base && addr < m.base + m.size)
            return &m;
    }
    return nullptr;
}

bool
Bus::isRam(u64 addr) const
{
    return addr >= ramBase_ && addr < ramBase_ + ramSize_;
}

bool
Bus::isMmio(u64 addr) const
{
    return findDevice(addr) != nullptr;
}

BusAccess
Bus::read(u64 addr, unsigned nbytes)
{
    BusAccess result;
    if (isRam(addr)) {
        result.value = ram_.read(addr, nbytes);
        return result;
    }
    if (const Mapping *m = findDevice(addr)) {
        result.value = m->device->read(addr - m->base, nbytes);
        result.mmio = true;
        return result;
    }
    result.fault = true;
    return result;
}

BusAccess
Bus::write(u64 addr, unsigned nbytes, u64 value)
{
    BusAccess result;
    if (isRam(addr)) {
        ram_.write(addr, nbytes, value);
        return result;
    }
    if (const Mapping *m = findDevice(addr)) {
        m->device->write(addr - m->base, nbytes, value);
        result.mmio = true;
        return result;
    }
    result.fault = true;
    return result;
}

} // namespace dth::riscv
