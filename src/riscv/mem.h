/**
 * @file
 * Physical memory and the system bus. Memory is sparse (4 KiB pages
 * allocated on demand); the bus routes accesses either to RAM or to an
 * MMIO device and reports whether an access was MMIO — the property that
 * makes it a non-deterministic event for co-simulation.
 */

#ifndef DTH_RISCV_MEM_H_
#define DTH_RISCV_MEM_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "riscv/encoding.h"

namespace dth::riscv {

/** Sparse byte-addressable physical memory. */
class PhysMem
{
  public:
    static constexpr u64 kPageBytes = 4096;

    /** Read @p nbytes (1/2/4/8) little-endian from @p addr. */
    u64 read(u64 addr, unsigned nbytes) const;

    /** Write the low @p nbytes of @p value to @p addr. */
    void write(u64 addr, unsigned nbytes, u64 value);

    /** Write a masked 64-bit word: only bytes with mask bit set. */
    void writeMasked(u64 addr, u64 value, u64 byte_mask8);

    /** Bulk copy-in (program loading). */
    void load(u64 addr, const u8 *data, size_t n);

    /** Number of pages currently allocated. */
    size_t allocatedPages() const { return pages_.size(); }

  private:
    using Page = std::array<u8, kPageBytes>;

    Page &page(u64 addr);
    const Page *pageIfPresent(u64 addr) const;

    mutable std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

/** An MMIO device mapped into the physical address space. */
class Device
{
  public:
    virtual ~Device() = default;
    virtual const char *name() const = 0;
    /** Read @p nbytes at device-relative @p offset. */
    virtual u64 read(u64 offset, unsigned nbytes) = 0;
    /** Write @p value at device-relative @p offset. */
    virtual void write(u64 offset, unsigned nbytes, u64 value) = 0;
};

/** Result of a bus access. */
struct BusAccess
{
    u64 value = 0;
    bool mmio = false;
    bool fault = false;
};

/** Routes accesses to RAM or MMIO devices. */
class Bus
{
  public:
    explicit Bus(u64 ram_base = kRamBase, u64 ram_size = kDefaultRamSize);

    /** Map @p device at [base, base+size). Not owned. */
    void mapDevice(Device *device, u64 base, u64 size);

    BusAccess read(u64 addr, unsigned nbytes);
    BusAccess write(u64 addr, unsigned nbytes, u64 value);

    bool isMmio(u64 addr) const;
    bool isRam(u64 addr) const;

    PhysMem &ram() { return ram_; }
    const PhysMem &ram() const { return ram_; }

    u64 ramBase() const { return ramBase_; }
    u64 ramSize() const { return ramSize_; }

  private:
    struct Mapping
    {
        u64 base;
        u64 size;
        Device *device;
    };

    const Mapping *findDevice(u64 addr) const;

    u64 ramBase_;
    u64 ramSize_;
    PhysMem ram_;
    std::vector<Mapping> devices_;
};

} // namespace dth::riscv

#endif // DTH_RISCV_MEM_H_
