#include "squash/fused_views.h"

#include "common/bytes.h"
#include "common/logging.h"

namespace dth {

namespace {

u64
mix(u64 x)
{
    // splitmix64 finalizer: cheap, good diffusion for digest terms.
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

} // namespace

std::vector<u8>
diffSnapshot(EventType base_type, std::span<const u8> prev,
             std::span<const u8> cur)
{
    dth_assert(prev.size() == cur.size() && cur.size() % 8 == 0,
               "diff operands must be equal 8-byte-multiple sizes");
    size_t words = cur.size() / 8;
    size_t bitmap_bytes = (words + 7) / 8;

    ByteWriter w;
    w.putU8(static_cast<u8>(base_type));
    w.putU8(0);
    w.putU16(static_cast<u16>(words));
    std::vector<u8> bitmap(bitmap_bytes, 0);
    std::vector<u64> changed;
    for (size_t i = 0; i < words; ++i) {
        u64 p = loadU64(prev, i * 8);
        u64 c = loadU64(cur, i * 8);
        if (p != c) {
            bitmap[i / 8] |= static_cast<u8>(1u << (i % 8));
            changed.push_back(c);
        }
    }
    w.putU32(static_cast<u32>(changed.size()));
    w.putBytes(bitmap.data(), bitmap.size());
    for (u64 v : changed)
        w.putU64(v);
    return w.take();
}

EventType
diffBaseType(std::span<const u8> diff_payload)
{
    dth_assert(!diff_payload.empty(), "empty diff payload");
    return static_cast<EventType>(diff_payload[0]);
}

std::vector<u8>
completeSnapshot(std::span<const u8> prev, std::span<const u8> diff_payload,
                 EventType *base_type_out)
{
    ByteReader r(diff_payload);
    auto base_type = static_cast<EventType>(r.getU8());
    r.skip(1);
    u16 words = r.getU16();
    u32 changed_count = r.getU32();
    dth_assert(prev.size() == size_t(words) * 8,
               "snapshot size mismatch: have %zu want %u", prev.size(),
               words * 8);
    auto bitmap = r.getBytes((words + 7) / 8);
    std::vector<u8> out(prev.begin(), prev.end());
    u32 consumed = 0;
    for (size_t i = 0; i < words; ++i) {
        if (bitmap[i / 8] & (1u << (i % 8))) {
            storeU64(out, i * 8, r.getU64());
            ++consumed;
        }
    }
    dth_assert(consumed == changed_count, "diff word count mismatch");
    dth_assert(r.atEnd(), "trailing bytes in diff payload");
    if (base_type_out)
        *base_type_out = base_type;
    return out;
}

u64
commitDigestTerm(u64 pc, u64 instr, u64 rd_val)
{
    return mix(pc * 3 + instr * 5 + rd_val * 7 + 0x01);
}

u64
loadDigestTerm(u64 addr, u64 data, u64 seq)
{
    return mix(addr * 3 + data * 5 + seq * 7 + 0x02);
}

u64
storeDigestTerm(u64 addr, u64 data, u64 mask)
{
    return mix(addr * 3 + data * 5 + mask * 7 + 0x03);
}

u64
branchDigestTerm(u64 pc, u64 taken, u64 target)
{
    return mix(pc * 3 + taken * 5 + target * 7 + 0x04);
}

u64
vecDigestTerm(u64 vrd, u64 lane0, u64 lane1)
{
    return mix(vrd * 3 + lane0 * 5 + lane1 * 7 + 0x05);
}

} // namespace dth
