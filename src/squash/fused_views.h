/**
 * @file
 * Payload views and helpers for the Squash wire-level pseudo-types:
 * FusedCommit (a fused window of instruction commits), DiffState (a
 * differenced register-state snapshot) and FusedDigest (an order-
 * insensitive digest of a fused window of same-type events).
 */

#ifndef DTH_SQUASH_FUSED_VIEWS_H_
#define DTH_SQUASH_FUSED_VIEWS_H_

#include <vector>

#include "event/payloads.h"

namespace dth {

#define DTH_SQ_FIELD(name, offset)                                         \
    u64 name() const { return word(offset); }                              \
    void set_##name(u64 v) { setWord(offset, v); }

/** FusedCommit (48 B): the collective effect of `count` commits. */
class FusedCommitView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    static constexpr size_t kPayloadBytes = 48;
    static constexpr size_t kFieldsEndBytes = 48;
    DTH_SQ_FIELD(firstSeq, 0)
    DTH_SQ_FIELD(count, 8)
    DTH_SQ_FIELD(lastPc, 16)
    DTH_SQ_FIELD(nextPc, 24)
    DTH_SQ_FIELD(digest, 32)
    DTH_SQ_FIELD(flags, 40)

    u64 lastSeq() const { return firstSeq() + count() - 1; }
};

/** FusedDigest (32 B): digest over a window of one fusible type. */
class FusedDigestView : public PayloadView
{
  public:
    using PayloadView::PayloadView;
    static constexpr size_t kPayloadBytes = 32;
    static constexpr size_t kFieldsEndBytes = 28;
    /** Width of the count field (byte 26/27): bounds the fuse depth. */
    static constexpr unsigned kCountBits = 16;
    DTH_SQ_FIELD(digest, 0)
    DTH_SQ_FIELD(firstSeq, 8)
    DTH_SQ_FIELD(lastSeq, 16)

    u8 baseType() const { return byte(24); }
    void set_baseType(u8 v) { setByte(24, v); }

    u16
    count() const
    {
        return static_cast<u16>(byte(26)) |
               (static_cast<u16>(byte(27)) << 8);
    }

    void
    set_count(u16 v)
    {
        setByte(26, static_cast<u8>(v));
        setByte(27, static_cast<u8>(v >> 8));
    }
};

#undef DTH_SQ_FIELD

static_assert(FusedCommitView::kFieldsEndBytes <=
                  FusedCommitView::kPayloadBytes,
              "FusedCommit fields overflow");
static_assert(FusedDigestView::kFieldsEndBytes <=
                  FusedDigestView::kPayloadBytes,
              "FusedDigest fields overflow");

/**
 * DiffState layout (variable length):
 *   u8 baseType, u8 reserved, u16 wordCount (of the full snapshot),
 *   u32 changedCount, bitmap (ceil(wordCount/8) bytes),
 *   changedCount x u64 changed words.
 */
inline constexpr size_t kDiffStateFixedBytes = 8;

/** Encode `cur` as a difference against `prev` (8-byte granularity). */
std::vector<u8> diffSnapshot(EventType base_type, std::span<const u8> prev,
                             std::span<const u8> cur);

/** Apply a DiffState payload to `prev`, returning the full snapshot.
 *  @param base_type_out receives the snapshot's original event type. */
std::vector<u8> completeSnapshot(std::span<const u8> prev,
                                 std::span<const u8> diff_payload,
                                 EventType *base_type_out);

/** The snapshot type a DiffState payload encodes. */
EventType diffBaseType(std::span<const u8> diff_payload);

// ---------------------------------------------------------------------------
// Digest folding shared by the hardware Squash unit and the software
// checker: both sides fold the same per-event terms and compare.
// ---------------------------------------------------------------------------

/** Per-commit digest term. */
u64 commitDigestTerm(u64 pc, u64 instr, u64 rd_val);

/** Per-load digest term. */
u64 loadDigestTerm(u64 addr, u64 data, u64 seq);

/** Per-store digest term. */
u64 storeDigestTerm(u64 addr, u64 data, u64 mask);

/** Per-branch digest term. */
u64 branchDigestTerm(u64 pc, u64 taken, u64 target);

/** Per-vector-writeback digest term. */
u64 vecDigestTerm(u64 vrd, u64 lane0, u64 lane1);

} // namespace dth

#endif // DTH_SQUASH_FUSED_VIEWS_H_
