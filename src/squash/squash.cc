#include "squash/squash.h"

#include <algorithm>

#include "common/logging.h"

namespace dth {

namespace {

bool
isRegSnapshot(EventType t)
{
    return squashClassOf(t) == SquashClass::SnapshotReduce;
}

u64
auxDigestTerm(const Event &e)
{
    switch (e.type) {
      case EventType::LoadEvent: {
        LoadView v(e);
        return loadDigestTerm(v.paddr(), v.data(), v.seqNo());
      }
      case EventType::StoreEvent: {
        StoreView v(e);
        return storeDigestTerm(v.addr(), v.data(), v.mask());
      }
      case EventType::BranchEvent: {
        PayloadView v(e);
        return branchDigestTerm(v.word(0), v.word(8), v.word(16));
      }
      case EventType::VecWriteback: {
        PayloadView v(e);
        return vecDigestTerm(v.word(0), v.word(8), v.word(16));
      }
      case EventType::VtypeEvent: {
        VtypeView v(e);
        return branchDigestTerm(v.vtype(), v.vl(), v.seqNo());
      }
      default:
        dth_panic("no digest for %s", e.info().name);
    }
}

} // namespace

SquashClass
squashClassOf(EventType type)
{
    switch (type) {
      case EventType::ArchEvent:
      case EventType::LrScEvent:
      case EventType::MmioEvent:
      case EventType::AiaEvent:
      case EventType::UartIoEvent:
        return SquashClass::NdeAhead;
      case EventType::InstrCommit:
        return SquashClass::CommitFuse;
      case EventType::ArchIntRegState:
      case EventType::ArchFpRegState:
      case EventType::CsrState:
      case EventType::FpCsrState:
      case EventType::HCsrState:
      case EventType::DebugCsrState:
      case EventType::TriggerCsrState:
      case EventType::ArchVecRegState:
      case EventType::VecCsrState:
        return SquashClass::SnapshotReduce;
      case EventType::LoadEvent:
      case EventType::StoreEvent:
      case EventType::BranchEvent:
      case EventType::VecWriteback:
      case EventType::VtypeEvent:
        return SquashClass::AuxFuse;
      case EventType::Trap:
        return SquashClass::TrapFlush;
      default:
        return SquashClass::Passthrough;
    }
}

SquashUnit::SquashUnit(const SquashConfig &config) : config_(config)
{
    dth_assert(config_.maxFuse >= 1 && config_.maxFuse <= kMaxFuseDepth,
               "maxFuse must be in [1, %u], got %u", kMaxFuseDepth,
               config_.maxFuse);
    stat_.commitsAbsorbed = counters_.sum("squash.commits_absorbed");
    stat_.auxAbsorbed = counters_.sum("squash.aux_absorbed");
    stat_.diffBytesOut = counters_.sum("squash.diff_bytes_out");
    stat_.diffBytesIn = counters_.sum("squash.diff_bytes_in");
    stat_.flushes = counters_.sum("squash.flushes");
    for (unsigned r = 0; r < stat_.flushReason.size(); ++r) {
        stat_.flushReason[r] = counters_.sum(
            "squash.flush_reason_" + std::to_string(r));
    }
    stat_.ndeAhead = counters_.sum("squash.nde_ahead");
    stat_.snapshotsAbsorbed = counters_.sum("squash.snapshots_absorbed");
    stat_.passthrough = counters_.sum("squash.passthrough");
    stat_.fuseDepth = counters_.hist("squash.fuse_depth");
    cores_.resize(config_.cores);
    for (CoreState &cs : cores_) {
        for (unsigned t = 0; t < kNumEventTypes; ++t) {
            if (isRegSnapshot(static_cast<EventType>(t)))
                cs.lastSent[t].assign(eventInfo(t).bytesPerEntry, 0);
        }
    }
}

void
SquashUnit::absorbCommit(CoreState &cs, const Event &e)
{
    InstrCommitView v(e);
    if (!cs.active) {
        cs.active = true;
        cs.firstSeq = v.seqNo();
        cs.count = 0;
        cs.digest = 0;
    }
    ++cs.count;
    cs.lastPc = v.pc();
    cs.nextPc = v.nextPc();
    cs.digest ^= commitDigestTerm(v.pc(), v.instr(), v.rdVal());
    counters_.add(stat_.commitsAbsorbed);
}

void
SquashUnit::absorbAux(CoreState &cs, const Event &e)
{
    TypeWindow &w = cs.windows[static_cast<unsigned>(e.type)];
    if (!w.active) {
        w.active = true;
        w.digest = 0;
        w.count = 0;
        w.firstSeq = e.commitSeq;
    }
    w.digest ^= auxDigestTerm(e);
    w.lastSeq = e.commitSeq;
    ++w.count;
    counters_.add(stat_.auxAbsorbed);
}

void
SquashUnit::flushCore(u8 core, FlushReason reason, CycleEvents &out)
{
    CoreState &cs = cores_[core];
    // Digests and differenced snapshots are emitted BEFORE the
    // FusedCommit: the FusedCommit raises the software watermark to the
    // window end, so everything belonging to the window must precede it
    // on the wire (a packet split between them would otherwise let the
    // checker run past the snapshots before seeing them).
    for (unsigned t = 0; t < kNumEventTypes; ++t) {
        TypeWindow &w = cs.windows[t];
        if (w.active) {
            Event fd =
                Event::make(EventType::FusedDigest, core, 0, w.lastSeq);
            FusedDigestView v(fd);
            v.set_digest(w.digest);
            v.set_firstSeq(w.firstSeq);
            v.set_lastSeq(w.lastSeq);
            v.set_baseType(static_cast<u8>(t));
            v.set_count(w.count);
            out.events.push_back(std::move(fd));
            w.active = false;
        }
        if (cs.latest[t].has_value()) {
            Event snap = std::move(*cs.latest[t]);
            cs.latest[t].reset();
            if (config_.differencing) {
                Event diff = Event::make(EventType::DiffState, core, 0,
                                         snap.commitSeq);
                diff.payload = diffSnapshot(snap.type, cs.lastSent[t],
                                            snap.payload);
                counters_.add(stat_.diffBytesOut, diff.payload.size());
                counters_.add(stat_.diffBytesIn, snap.payload.size());
                cs.lastSent[t] = snap.payload;
                out.events.push_back(std::move(diff));
            } else {
                cs.lastSent[t] = snap.payload;
                out.events.push_back(std::move(snap));
            }
        }
    }

    if (cs.active) {
        Event fc = Event::make(EventType::FusedCommit, core, 0,
                               cs.firstSeq + cs.count - 1);
        FusedCommitView v(fc);
        v.set_firstSeq(cs.firstSeq);
        v.set_count(cs.count);
        v.set_lastPc(cs.lastPc);
        v.set_nextPc(cs.nextPc);
        v.set_digest(cs.digest);
        v.set_flags(static_cast<u64>(reason));
        out.events.push_back(std::move(fc));
        counters_.add(stat_.flushes);
        counters_.add(stat_.flushReason[static_cast<unsigned>(reason)]);
        counters_.observe(stat_.fuseDepth, cs.count);
        cs.active = false;
    }
}

void
SquashUnit::process(const CycleEvents &in, CycleEvents &out)
{
    out.events.clear();
    out.cycle = in.cycle;
    cycle_ = in.cycle;
    for (const Event &e : in.events) {
        switch (squashClassOf(e.type)) {
          case SquashClass::NdeAhead:
            if (config_.orderCoupled)
                flushCore(e.core, FlushReason::NdeBreak, out);
            counters_.add(stat_.ndeAhead);
            out.events.push_back(e);
            break;
          case SquashClass::CommitFuse: {
            CoreState &cs = cores_[e.core];
            absorbCommit(cs, e);
            if (cs.count >= config_.maxFuse)
                flushCore(e.core, FlushReason::WindowFull, out);
            break;
          }
          case SquashClass::SnapshotReduce:
            cores_[e.core].latest[static_cast<unsigned>(e.type)] = e;
            counters_.add(stat_.snapshotsAbsorbed);
            break;
          case SquashClass::AuxFuse:
            absorbAux(cores_[e.core], e);
            break;
          case SquashClass::TrapFlush:
            flushCore(e.core, FlushReason::Trap, out);
            out.events.push_back(e);
            break;
          case SquashClass::Passthrough:
            // Non-fusible deterministic events keep their tags.
            counters_.add(stat_.passthrough);
            out.events.push_back(e);
            break;
        }
    }
}

void
SquashUnit::finish(CycleEvents &out)
{
    out.events.clear();
    out.cycle = cycle_;
    for (unsigned c = 0; c < config_.cores; ++c)
        flushCore(static_cast<u8>(c), FlushReason::EndOfRun, out);
}

SquashCompleter::SquashCompleter(unsigned cores)
{
    lastSeen_.resize(cores);
    for (auto &per_core : lastSeen_) {
        for (unsigned t = 0; t < kNumEventTypes; ++t) {
            if (isRegSnapshot(static_cast<EventType>(t)))
                per_core[t].assign(eventInfo(t).bytesPerEntry, 0);
        }
    }
}

void
SquashCompleter::completeInPlace(Event &event)
{
    if (event.type == EventType::DiffState) {
        EventType base = diffBaseType(event.payload);
        auto &prev = lastSeen_[event.core][static_cast<unsigned>(base)];
        EventType decoded;
        std::vector<u8> full =
            completeSnapshot(prev, event.payload, &decoded);
        dth_assert(decoded == base, "diff base type mismatch");
        prev = full;
        event.type = base;
        event.payload = std::move(full);
        return;
    }
    if (isRegSnapshot(event.type)) {
        // Undiffed snapshot: record it as the new completion baseline.
        lastSeen_[event.core][static_cast<unsigned>(event.type)] =
            event.payload;
    }
}

Reorderer::Reorderer(unsigned cores)
{
    awaiting_.resize(cores);
    nextEmit_.assign(cores, 0);
    held_.resize(cores);
    watermark_.assign(cores, 0);
    releaseLagHist_ = counters_.hist("reorder.release_lag");
}

int
checkingPriority(const Event &event)
{
    // Within one order tag: NDE oracles first (the REF needs them before
    // it can execute the tagged instruction), then commits (stepping),
    // then content checks, then interrupts/traps, which apply strictly
    // after the tagged instruction.
    if (event.type == EventType::ArchEvent) {
        ArchEventView v(event);
        return v.isInterrupt() ? 3 : 2;
    }
    if (event.type == EventType::Trap)
        return 3;
    if (event.isNde())
        return 0;
    if (event.type == EventType::InstrCommit ||
        event.type == EventType::FusedCommit) {
        return 1;
    }
    return 2;
}

bool
checkingOrderLess(const Event &a, const Event &b)
{
    if (a.commitSeq != b.commitSeq)
        return a.commitSeq < b.commitSeq;
    return checkingPriority(a) < checkingPriority(b);
}

void
Reorderer::push(Event event)
{
    u8 core = event.core;
    dth_assert(core < held_.size(), "event from unknown core %u", core);
    // Stage 1: admit only the contiguous emission prefix.
    dth_assert(event.emitSeq >= nextEmit_[core] &&
                   awaiting_[core].count(event.emitSeq) == 0,
               "duplicate or replayed emission index %llu",
               (unsigned long long)event.emitSeq);
    awaiting_[core].emplace(event.emitSeq, std::move(event));
    admitReadyPrefix(core);
}

void
Reorderer::admitReadyPrefix(unsigned core)
{
    auto &waiting = awaiting_[core];
    while (!waiting.empty() && waiting.begin()->first == nextEmit_[core]) {
        Event e = std::move(waiting.begin()->second);
        waiting.erase(waiting.begin());
        ++nextEmit_[core];
        admit(std::move(e));
    }
}

void
Reorderer::admit(Event event)
{
    u8 core = event.core;
    u64 &wm = watermark_[core];
    switch (event.type) {
      case EventType::InstrCommit:
      case EventType::Trap:
        wm = std::max(wm, event.commitSeq);
        break;
      case EventType::FusedCommit: {
        FusedCommitView v(event);
        wm = std::max(wm, v.lastSeq());
        break;
      }
      default:
        break;
    }
    held_[core].push_back(Item{std::move(event), arrivalCounter_++});
}

void
Reorderer::releaseCoreInto(unsigned core, bool all, std::vector<Event> &out)
{
    // Sort the held buffer in place: releasable items first (ordered by
    // order tag, then application priority, then arrival), the held-back
    // remainder after them in arrival order. One sort, no per-call
    // scratch vectors — this runs once per transfer on the hot path.
    auto &held = held_[core];
    if (held.empty())
        return;
    u64 wm = watermark_[core];
    auto releasable = [&](const Item &item) {
        return all || item.event.commitSeq <= wm;
    };
    std::sort(held.begin(), held.end(),
              [&](const Item &a, const Item &b) {
                  bool ra = releasable(a), rb = releasable(b);
                  if (ra != rb)
                      return ra;
                  if (!ra) // held-back suffix keeps arrival order
                      return a.arrival < b.arrival;
                  if (a.event.commitSeq != b.event.commitSeq)
                      return a.event.commitSeq < b.event.commitSeq;
                  int pa = checkingPriority(a.event);
                  int pb = checkingPriority(b.event);
                  if (pa != pb)
                      return pa < pb;
                  return a.arrival < b.arrival;
              });
    auto first_kept = held.begin();
    while (first_kept != held.end() && releasable(*first_kept))
        ++first_kept;
    out.reserve(out.size() + (first_kept - held.begin()));
    for (auto it = held.begin(); it != first_kept; ++it) {
        // Release lag in arrivals: how long the reorder queue held this
        // event back. arrivalCounter_ is deterministic, so the histogram
        // is bit-identical across serial and threaded runs.
        counters_.observe(releaseLagHist_, arrivalCounter_ - it->arrival);
        out.push_back(std::move(it->event));
    }
    held.erase(held.begin(), first_kept);
}

void
Reorderer::drainInto(std::vector<Event> &out)
{
    for (unsigned c = 0; c < held_.size(); ++c)
        releaseCoreInto(c, false, out);
}

void
Reorderer::drainAllInto(std::vector<Event> &out)
{
    for (unsigned c = 0; c < held_.size(); ++c) {
        // End of stream: admit whatever is waiting, gaps included (a
        // stream truncated by a stopped run may have holes at the tail).
        for (auto &[idx, e] : awaiting_[c]) {
            nextEmit_[c] = idx + 1;
            admit(std::move(e));
        }
        awaiting_[c].clear();
        releaseCoreInto(c, true, out);
    }
}

size_t
Reorderer::pending() const
{
    size_t n = 0;
    for (const auto &held : held_)
        n += held.size();
    for (const auto &waiting : awaiting_)
        n += waiting.size();
    return n;
}

} // namespace dth
