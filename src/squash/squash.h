/**
 * @file
 * Squash: order-decoupled fusion and differencing (paper §4.3).
 *
 * Hardware side (SquashUnit): same-type verification events are fused
 * across instructions — instruction commits into a FusedCommit carrying
 * the final PC, count and a digest; other fusible streams (loads,
 * stores, branches, vector writebacks) into per-type FusedDigest
 * windows; register-state snapshots are reduced to the latest snapshot
 * per window and transmitted as XOR-style differences against the last
 * transmitted snapshot (DiffState). Non-deterministic events are NOT
 * fused: they are scheduled ahead immediately, carrying their order tag
 * (commit sequence number), so fusion never breaks on an NDE. The
 * order-coupled baseline (prior work, Fig. 8) instead flushes the fusion
 * window at every NDE.
 *
 * Software side (Completer/Reorderer): DiffState events are completed
 * from the previous snapshot, and the whole stream is reordered by order
 * tag so the checker sees the original checking order.
 */

#ifndef DTH_SQUASH_SQUASH_H_
#define DTH_SQUASH_SQUASH_H_

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "event/event.h"
#include "obs/stats.h"
#include "squash/fused_views.h"

namespace dth {

/**
 * Hard ceiling on the fusion-window depth. The FusedDigest count field
 * is 16 bits and the wire order tag 32 bits, so a window may never span
 * more entries than either can represent; dth_lint checks this bound
 * against both widths.
 */
inline constexpr unsigned kMaxFuseDepth = 4096;

/**
 * How the SquashUnit treats one event type (paper §4.3). The protocol
 * lint cross-checks this classification against the event table's
 * fusible/NDE flags: every fusible type must be fused (commit, snapshot
 * or aux path) and every NDE must be scheduled ahead, unfused.
 */
enum class SquashClass : u8 {
    NdeAhead,       //!< non-deterministic: sent immediately with its tag
    CommitFuse,     //!< InstrCommit: fused into FusedCommit
    SnapshotReduce, //!< register snapshot: latest-wins + differencing
    AuxFuse,        //!< fused into a per-type FusedDigest window
    TrapFlush,      //!< flushes the window, then passes through
    Passthrough,    //!< deterministic, unfused
};

/** The squash path events of @p type take (monitor types only). */
SquashClass squashClassOf(EventType type);

/** Squash configuration. */
struct SquashConfig
{
    /** Maximum commits fused into one FusedCommit (<= kMaxFuseDepth). */
    unsigned maxFuse = 32;
    /** Apply differencing to register-state snapshots. */
    bool differencing = true;
    /** Prior-work behaviour: NDEs break the fusion window (Fig. 8). */
    bool orderCoupled = false;
    unsigned cores = 1;
};

/** Why a fusion window was flushed (FusedCommit flags field). */
enum class FlushReason : u64 {
    WindowFull = 0,
    Trap = 1,
    NdeBreak = 2, //!< order-coupled baseline only
    EndOfRun = 3,
};

/** The hardware-side acceleration stage. */
class SquashUnit
{
  public:
    explicit SquashUnit(const SquashConfig &config);

    /**
     * Transform one cycle of monitor events into @p out (cleared
     * first); fused output may lag. The out-param form lets the driver
     * reuse one CycleEvents across cycles.
     */
    void process(const CycleEvents &in, CycleEvents &out);

    /** Convenience wrapper returning a fresh CycleEvents. */
    CycleEvents
    process(const CycleEvents &in)
    {
        CycleEvents out;
        process(in, out);
        return out;
    }

    /** Flush all open windows (end of simulation) into @p out. */
    void finish(CycleEvents &out);

    CycleEvents
    finish()
    {
        CycleEvents out;
        finish(out);
        return out;
    }

    obs::StatSheet &counters() { return counters_; }
    const SquashConfig &config() const { return config_; }

  private:
    struct TypeWindow
    {
        bool active = false;
        u64 digest = 0;
        u64 firstSeq = 0;
        u64 lastSeq = 0;
        u16 count = 0;
    };

    struct CoreState
    {
        // Commit fusion window.
        bool active = false;
        u64 firstSeq = 0;
        u64 count = 0;
        u64 lastPc = 0;
        u64 nextPc = 0;
        u64 digest = 0;
        // Auxiliary fusible streams, indexed by event type id.
        std::array<TypeWindow, kNumEventTypes> windows{};
        // Latest register-state snapshot per type within the window.
        std::array<std::optional<Event>, kNumEventTypes> latest{};
        // Last transmitted snapshot per type (differencing reference).
        std::array<std::vector<u8>, kNumEventTypes> lastSent{};
    };

    void absorbCommit(CoreState &cs, const Event &e);
    void absorbAux(CoreState &cs, const Event &e);
    void flushCore(u8 core, FlushReason reason, CycleEvents &out);

    SquashConfig config_;
    std::vector<CoreState> cores_;
    u64 cycle_ = 0;
    obs::StatSheet counters_;
    struct
    {
        obs::StatId commitsAbsorbed;
        obs::StatId auxAbsorbed;
        obs::StatId diffBytesOut;
        obs::StatId diffBytesIn;
        obs::StatId flushes;
        std::array<obs::StatId, 4> flushReason;
        obs::StatId ndeAhead;
        obs::StatId snapshotsAbsorbed;
        obs::StatId passthrough;
        obs::HistId fuseDepth;
    } stat_;
};

/** Software side: snapshot completion + order restoration. */
class SquashCompleter
{
  public:
    explicit SquashCompleter(unsigned cores = 1);

    /**
     * Complete one event in place: DiffState events are expanded to
     * their full snapshot (original type restored); everything else
     * passes through untouched. In-place completion avoids copying
     * every event once per transfer on the software hot path.
     */
    void completeInPlace(Event &event);

    /** Copying wrapper around completeInPlace. */
    Event
    complete(const Event &event)
    {
        Event out = event;
        completeInPlace(out);
        return out;
    }

  private:
    std::vector<std::array<std::vector<u8>, kNumEventTypes>> lastSeen_;
};

/**
 * Application priority within one order tag: NDE oracles must reach the
 * REF before it executes the tagged instruction (0), commits drive
 * stepping (1), content checks compare at the stepped position (2), and
 * interrupts/traps apply strictly after everything at their tag (3).
 */
int checkingPriority(const Event &event);

/** Total checking order: (order tag, application priority). */
bool checkingOrderLess(const Event &a, const Event &b);

/**
 * Per-core order restoration in two stages. Stage 1 re-establishes the
 * contiguous emission prefix using the per-event emission index (Batch
 * may permute a cycle into type groups and split them across packets;
 * an event is only admitted once everything emitted before it has
 * arrived). Stage 2 buffers admitted events and releases them sorted by
 * (order tag, application priority) once the watermark — driven by
 * InstrCommit/FusedCommit/Trap events in the admitted prefix — covers
 * them.
 */
class Reorderer
{
  public:
    explicit Reorderer(unsigned cores = 1);

    /** Enqueue one event from the unpacker/completer. */
    void push(Event event);

    /**
     * Pop all currently releasable events in checking order, appending
     * to @p out. Callers on the hot path reuse @p out across calls.
     */
    void drainInto(std::vector<Event> &out);

    /** Release everything regardless of watermark (end of stream). */
    void drainAllInto(std::vector<Event> &out);

    std::vector<Event>
    drain()
    {
        std::vector<Event> out;
        drainInto(out);
        return out;
    }

    std::vector<Event>
    drainAll()
    {
        std::vector<Event> out;
        drainAllInto(out);
        return out;
    }

    /** Events still held back (both stages). */
    size_t pending() const;

    obs::StatSheet &counters() { return counters_; }

  private:
    struct Item
    {
        Event event;
        u64 arrival;
    };

    void admit(Event event);
    void admitReadyPrefix(unsigned core);
    void releaseCoreInto(unsigned core, bool all, std::vector<Event> &out);

    // Stage 1: out-of-emission-order arrivals, keyed by emitSeq.
    std::vector<std::map<u64, Event>> awaiting_;
    std::vector<u64> nextEmit_;
    // Stage 2: admitted events awaiting watermark release.
    std::vector<std::vector<Item>> held_;
    std::vector<u64> watermark_;
    u64 arrivalCounter_ = 0;
    obs::StatSheet counters_;
    obs::HistId releaseLagHist_;
};

} // namespace dth

#endif // DTH_SQUASH_SQUASH_H_
