#include "tuning/analysis.h"

#include <algorithm>

#include "common/logging.h"

namespace dth::tuning {

TraceAnalysis
analyzeTrace(const DutTrace &trace)
{
    TraceAnalysis a;
    a.cycles = trace.cycles.size();
    // Previous payload per (type, core<=1) for repetitiveness.
    std::array<std::array<std::vector<u8>, 2>, kNumEventTypes> prev;
    for (const CycleEvents &ce : trace.cycles) {
        for (const Event &e : ce.events) {
            unsigned t = static_cast<unsigned>(e.type);
            if (t >= kNumEventTypes)
                continue;
            TypeStats &s = a.perType[t];
            ++s.count;
            s.bytes += e.payload.size();
            ++a.events;
            a.bytes += e.payload.size();
            if (e.core < 2) {
                std::vector<u8> &p = prev[t][e.core];
                if (p.size() == e.payload.size()) {
                    if (p == e.payload)
                        ++s.repeated;
                    size_t words = e.payload.size() / 8;
                    for (size_t w = 0; w < words; ++w) {
                        if (loadU64(p, w * 8) ==
                            loadU64(e.payload, w * 8))
                            ++s.unchangedWords;
                    }
                    s.totalWords += words;
                }
                p = e.payload;
            }
        }
    }
    return a;
}

std::string
TraceAnalysis::toCsv() const
{
    std::string out =
        "type,count,bytes,invocations_per_cycle,repeated,"
        "word_repetitiveness\n";
    for (unsigned t = 0; t < kNumEventTypes; ++t) {
        const TypeStats &s = perType[t];
        if (s.count == 0)
            continue;
        char line[256];
        std::snprintf(line, sizeof(line), "%s,%llu,%llu,%.5f,%llu,%.4f\n",
                      eventInfo(t).name, (unsigned long long)s.count,
                      (unsigned long long)s.bytes,
                      cycles ? static_cast<double>(s.count) / cycles : 0,
                      (unsigned long long)s.repeated, s.repetitiveness());
        out += line;
    }
    return out;
}

PipelineVolume
simulatePipeline(const DutTrace &trace, const SquashConfig &squash_config,
                 unsigned packet_bytes)
{
    SquashUnit squash(squash_config);
    BatchPacker packer(packet_bytes);
    std::vector<Transfer> transfers;
    PipelineVolume v;
    for (const CycleEvents &ce : trace.cycles) {
        CycleEvents squashed = squash.process(ce);
        packer.packCycle(squashed, transfers);
    }
    CycleEvents tail = squash.finish();
    packer.packCycle(tail, transfers);
    packer.flush(transfers);
    v.transfers = transfers.size();
    for (const Transfer &t : transfers)
        v.wireBytes += t.size();
    u64 flushes = squash.counters().get("squash.flushes");
    if (flushes)
        v.fusionRatio =
            static_cast<double>(
                squash.counters().get("squash.commits_absorbed")) /
            flushes;
    return v;
}

bool
verifyTrace(const DutTrace &trace, const workload::Program &program,
            unsigned cores, bool mmio_sync,
            checker::MismatchReport *first_mismatch)
{
    std::vector<std::unique_ptr<checker::CoreChecker>> checkers;
    for (unsigned c = 0; c < cores; ++c)
        checkers.push_back(std::make_unique<checker::CoreChecker>(
            c, program, mmio_sync));

    // The trace holds the original monitor stream in emission order, so
    // only checking-order sorting per core is needed.
    std::vector<Event> all;
    for (const CycleEvents &ce : trace.cycles)
        for (const Event &e : ce.events)
            all.push_back(e);
    std::stable_sort(all.begin(), all.end(),
                     [](const Event &x, const Event &y) {
                         if (x.core != y.core)
                             return x.core < y.core;
                         return checkingOrderLess(x, y);
                     });
    for (const Event &e : all) {
        if (e.core >= cores)
            continue;
        if (!checkers[e.core]->processEvent(e)) {
            if (first_mismatch)
                *first_mismatch = checkers[e.core]->report();
            return false;
        }
    }
    return true;
}

} // namespace dth::tuning
