/**
 * @file
 * Offline transmission analysis (paper §5: the toolkit's "SQL analysis
 * support"): per-type statistics over a recorded DUT trace — volume,
 * frequency and repetitiveness — used to explore fusion and
 * differencing strategies without re-running the DUT, plus a
 * trace-driven verification path and a pipeline replayer that measures
 * what a given Squash/Batch configuration would transmit.
 */

#ifndef DTH_TUNING_ANALYSIS_H_
#define DTH_TUNING_ANALYSIS_H_

#include <array>

#include "checker/checker.h"
#include "pack/packer.h"
#include "squash/squash.h"
#include "tuning/trace.h"
#include "workload/program.h"

namespace dth::tuning {

/** Per-event-type statistics over a trace. */
struct TypeStats
{
    u64 count = 0;
    u64 bytes = 0;
    /** Events whose payload equals the previous same-type payload. */
    u64 repeated = 0;
    /** 8-byte words unchanged vs the previous same-type payload. */
    u64 unchangedWords = 0;
    u64 totalWords = 0;

    double
    repetitiveness() const
    {
        return totalWords ? static_cast<double>(unchangedWords) /
                                totalWords
                          : 0;
    }
};

/** Full trace analysis report. */
struct TraceAnalysis
{
    std::array<TypeStats, kNumEventTypes> perType{};
    u64 cycles = 0;
    u64 events = 0;
    u64 bytes = 0;

    /** Render the per-type table as CSV (offline "SQL" backend). */
    std::string toCsv() const;
};

/** Analyze event volume/frequency/repetitiveness over a trace. */
TraceAnalysis analyzeTrace(const DutTrace &trace);

/** What a Squash+Batch configuration would transmit for this trace. */
struct PipelineVolume
{
    u64 transfers = 0;
    u64 wireBytes = 0;
    double fusionRatio = 0;
};

/** Replay the acceleration pipeline over a trace (no DUT, no checker). */
PipelineVolume simulatePipeline(const DutTrace &trace,
                                const SquashConfig &squash_config,
                                unsigned packet_bytes);

/**
 * Drive per-core checkers from a trace (iterative debugging: verify
 * without the DUT). Returns true if the whole trace checks clean.
 */
bool verifyTrace(const DutTrace &trace, const workload::Program &program,
                 unsigned cores, bool mmio_sync,
                 checker::MismatchReport *first_mismatch = nullptr);

} // namespace dth::tuning

#endif // DTH_TUNING_ANALYSIS_H_
