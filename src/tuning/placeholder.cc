// placeholder; real sources land with the tuning module
namespace dth {}
