#include "tuning/sweep.h"

#include "common/logging.h"

namespace dth::tuning {

const SweepRow &
SweepRunner::run(const std::string &label,
                 const cosim::CosimConfig &config)
{
    cosim::CoSimulator sim(config, program_);
    cosim::CosimResult result = sim.run(maxCycles_);
    if (!result.verified) {
        dth_fatal("sweep point '%s' failed verification: %s",
                  label.c_str(), result.mismatch.describe().c_str());
    }
    rows_.push_back(SweepRow{label, std::move(result)});
    return rows_.back();
}

TextTable
SweepRunner::table() const
{
    TextTable t({"Config", "Speed", "Comm share", "Bytes/cycle",
                 "Transfers/cycle", "Fusion"});
    for (const SweepRow &row : rows_) {
        const cosim::CosimResult &r = row.result;
        t.addRow({row.label, fmtHz(r.simSpeedHz),
                  fmtPercent(r.timing.communicationFraction()),
                  fmtDouble(r.bytesPerCycle, 0),
                  fmtDouble(r.invokesPerCycle, 3),
                  r.fusionRatio > 0 ? fmtDouble(r.fusionRatio, 1) : "-"});
    }
    return t;
}

std::string
SweepRunner::csv() const
{
    std::string out = "config,speed_hz,comm_fraction,bytes_per_cycle,"
                      "transfers_per_cycle,fusion_ratio\n";
    for (const SweepRow &row : rows_) {
        const cosim::CosimResult &r = row.result;
        char line[256];
        std::snprintf(line, sizeof(line), "%s,%.1f,%.4f,%.1f,%.4f,%.2f\n",
                      row.label.c_str(), r.simSpeedHz,
                      r.timing.communicationFraction(), r.bytesPerCycle,
                      r.invokesPerCycle, r.fusionRatio);
        out += line;
    }
    return out;
}

std::string
SweepRunner::bestBySpeed() const
{
    dth_assert(!rows_.empty(), "empty sweep");
    const SweepRow *best = &rows_.front();
    for (const SweepRow &row : rows_) {
        if (row.result.simSpeedHz > best->result.simSpeedHz)
            best = &row;
    }
    return best->label;
}

} // namespace dth::tuning
