/**
 * @file
 * Parameter-sweep helper for the tuning toolkit: run a set of labeled
 * co-simulation configurations over one workload and collect the
 * standard performance/communication metrics as a table or CSV, the way
 * the paper's evaluation sweeps DIFF_CONFIG options and Batch/Squash
 * parameters.
 */

#ifndef DTH_TUNING_SWEEP_H_
#define DTH_TUNING_SWEEP_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "cosim/cosim.h"
#include "workload/program.h"

namespace dth::tuning {

/** One sweep outcome. */
struct SweepRow
{
    std::string label;
    cosim::CosimResult result;
};

/** Runs labeled configurations over a fixed workload. */
class SweepRunner
{
  public:
    explicit SweepRunner(workload::Program program,
                         u64 max_cycles = 400000)
        : program_(std::move(program)), maxCycles_(max_cycles)
    {}

    /**
     * Run one configuration. Fails the run (fatal) on a verification
     * mismatch — sweeps are for healthy systems.
     */
    const SweepRow &run(const std::string &label,
                        const cosim::CosimConfig &config);

    const std::vector<SweepRow> &rows() const { return rows_; }

    /** Standard columns: speed, comm share, bytes/cycle, fusion ratio. */
    TextTable table() const;

    /** The same rows as CSV (offline analysis). */
    std::string csv() const;

    /** Label of the fastest configuration run so far. */
    std::string bestBySpeed() const;

  private:
    workload::Program program_;
    u64 maxCycles_;
    std::vector<SweepRow> rows_;
};

} // namespace dth::tuning

#endif // DTH_TUNING_SWEEP_H_
