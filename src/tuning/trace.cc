#include "tuning/trace.h"

#include <cstdio>

#include "common/bytes.h"
#include "common/logging.h"

namespace dth::tuning {

namespace {
constexpr u32 kMagic = 0x44544831; // "DTH1"
} // namespace

std::vector<u8>
encodeTrace(const DutTrace &trace)
{
    ByteWriter w;
    w.putU32(kMagic);
    w.putU16(static_cast<u16>(trace.workloadName.size()));
    w.putBytes(reinterpret_cast<const u8 *>(trace.workloadName.data()),
               trace.workloadName.size());
    w.putU64(trace.cycles.size());
    for (const CycleEvents &ce : trace.cycles) {
        w.putU64(ce.cycle);
        w.putU32(static_cast<u32>(ce.events.size()));
        for (const Event &e : ce.events) {
            w.putU8(static_cast<u8>(e.type));
            w.putU8(e.core);
            w.putU8(e.index);
            w.putU64(e.commitSeq);
            w.putU64(e.emitSeq);
            w.putU16(static_cast<u16>(e.payload.size()));
            w.putBytes(e.payload.data(), e.payload.size());
        }
    }
    return w.take();
}

// Minimum encoded sizes, used to cap reserve() calls: the cycle/event
// counts in the header are untrusted, so a corrupt file must not be
// able to demand more memory than its remaining bytes could encode.
namespace {
constexpr size_t kMinCycleBytes = 8 + 4;              // cycle + count
constexpr size_t kMinEventBytes = 1 + 1 + 1 + 8 + 8 + 2; // hdr, no payload
} // namespace

bool
decodeTrace(DutTrace *trace, std::span<const u8> bytes)
{
    // Fail-mode reader: trace files come from disk and may be truncated
    // or corrupt; a short read must return false, not abort the process.
    ByteReader r(bytes, ByteReader::OnUnderrun::Fail);
    if (r.getU32() != kMagic)
        return false;
    u16 name_len = r.getU16();
    auto name = r.getBytes(name_len);
    trace->workloadName.assign(name.begin(), name.end());
    u64 cycles = r.getU64();
    if (r.failed() || cycles > r.remaining() / kMinCycleBytes)
        return false;
    trace->cycles.clear();
    trace->cycles.reserve(cycles);
    for (u64 c = 0; c < cycles; ++c) {
        CycleEvents ce;
        ce.cycle = r.getU64();
        u32 count = r.getU32();
        if (r.failed() || count > r.remaining() / kMinEventBytes)
            return false;
        ce.events.reserve(count);
        for (u32 i = 0; i < count; ++i) {
            Event e;
            u8 type = r.getU8();
            if (type >= kNumEventTypes)
                return false;
            e.type = static_cast<EventType>(type);
            e.core = r.getU8();
            e.index = r.getU8();
            e.commitSeq = r.getU64();
            e.emitSeq = r.getU64();
            u16 len = r.getU16();
            auto payload = r.getBytes(len);
            if (r.failed())
                return false;
            e.payload.assign(payload.begin(), payload.end());
            ce.events.push_back(std::move(e));
        }
        trace->cycles.push_back(std::move(ce));
    }
    return r.ok() && r.atEnd();
}

bool
saveTrace(const DutTrace &trace, const std::string &path)
{
    std::vector<u8> bytes = encodeTrace(trace);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    return written == bytes.size();
}

bool
loadTrace(DutTrace *trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    if (std::fseek(f, 0, SEEK_END) != 0) {
        std::fclose(f);
        return false;
    }
    long size = std::ftell(f);
    if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
        std::fclose(f);
        return false;
    }
    std::vector<u8> bytes(static_cast<size_t>(size));
    size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (read != bytes.size())
        return false;
    return decodeTrace(trace, bytes);
}

} // namespace dth::tuning
