/**
 * @file
 * Iterative-debugging support (paper §5): DUT traces. The original
 * verification events captured from the DUT are dumped during a run;
 * the verification logic (Squash, Batch, checker) can then be driven
 * from the trace alone, without recompiling or re-executing the DUT.
 */

#ifndef DTH_TUNING_TRACE_H_
#define DTH_TUNING_TRACE_H_

#include <string>
#include <vector>

#include "event/event.h"

namespace dth::tuning {

/** An in-memory DUT trace: the monitor event stream, cycle by cycle. */
struct DutTrace
{
    std::string workloadName;
    std::vector<CycleEvents> cycles;

    u64
    totalEvents() const
    {
        u64 n = 0;
        for (const CycleEvents &ce : cycles)
            n += ce.count();
        return n;
    }

    u64
    totalBytes() const
    {
        u64 n = 0;
        for (const CycleEvents &ce : cycles)
            n += ce.totalBytes();
        return n;
    }
};

/** Serialize a trace to a file. Returns false on I/O failure. */
bool saveTrace(const DutTrace &trace, const std::string &path);

/** Load a trace dumped by saveTrace. Returns false on failure. */
bool loadTrace(DutTrace *trace, const std::string &path);

/** Serialize/deserialize to a byte buffer (tests, in-memory use). */
std::vector<u8> encodeTrace(const DutTrace &trace);
bool decodeTrace(DutTrace *trace, std::span<const u8> bytes);

} // namespace dth::tuning

#endif // DTH_TUNING_TRACE_H_
