#include "workload/asm.h"

#include "common/bits.h"
#include "common/logging.h"
#include "riscv/encoding.h"

namespace dth::workload {

using namespace dth::riscv;

u32
encR(u32 opcode, u8 rd, u32 f3, u8 rs1, u8 rs2, u32 f7)
{
    return opcode | (u32(rd) << 7) | (f3 << 12) | (u32(rs1) << 15) |
           (u32(rs2) << 20) | (f7 << 25);
}

u32
encI(u32 opcode, u8 rd, u32 f3, u8 rs1, i32 imm)
{
    dth_assert(imm >= -2048 && imm < 2048, "I-imm out of range: %d", imm);
    return opcode | (u32(rd) << 7) | (f3 << 12) | (u32(rs1) << 15) |
           (u32(imm & 0xFFF) << 20);
}

u32
encS(u32 opcode, u32 f3, u8 rs1, u8 rs2, i32 imm)
{
    dth_assert(imm >= -2048 && imm < 2048, "S-imm out of range: %d", imm);
    u32 u = static_cast<u32>(imm & 0xFFF);
    return opcode | ((u & 0x1F) << 7) | (f3 << 12) | (u32(rs1) << 15) |
           (u32(rs2) << 20) | ((u >> 5) << 25);
}

u32
encB(u32 opcode, u32 f3, u8 rs1, u8 rs2, i32 imm)
{
    dth_assert(imm >= -4096 && imm < 4096 && (imm & 1) == 0,
               "B-imm out of range: %d", imm);
    u32 u = static_cast<u32>(imm & 0x1FFF);
    return opcode | (((u >> 11) & 1) << 7) | (((u >> 1) & 0xF) << 8) |
           (f3 << 12) | (u32(rs1) << 15) | (u32(rs2) << 20) |
           (((u >> 5) & 0x3F) << 25) | (((u >> 12) & 1) << 31);
}

u32
encU(u32 opcode, u8 rd, i32 imm20)
{
    return opcode | (u32(rd) << 7) | (static_cast<u32>(imm20) << 12);
}

u32
encJ(u32 opcode, u8 rd, i32 imm)
{
    dth_assert(imm >= -(1 << 20) && imm < (1 << 20) && (imm & 1) == 0,
               "J-imm out of range: %d", imm);
    u32 u = static_cast<u32>(imm & 0x1FFFFF);
    return opcode | (u32(rd) << 7) | (((u >> 12) & 0xFF) << 12) |
           (((u >> 11) & 1) << 20) | (((u >> 1) & 0x3FF) << 21) |
           (((u >> 20) & 1) << 31);
}

u32 lui(u8 rd, i32 imm20) { return encU(kOpLui, rd, imm20 & 0xFFFFF); }
u32 auipc(u8 rd, i32 imm20) { return encU(kOpAuipc, rd, imm20 & 0xFFFFF); }
u32 jal(u8 rd, i32 offset) { return encJ(kOpJal, rd, offset); }
u32 jalr(u8 rd, u8 rs1, i32 imm) { return encI(kOpJalr, rd, 0, rs1, imm); }
u32 beq(u8 a, u8 b, i32 off) { return encB(kOpBranch, 0, a, b, off); }
u32 bne(u8 a, u8 b, i32 off) { return encB(kOpBranch, 1, a, b, off); }
u32 blt(u8 a, u8 b, i32 off) { return encB(kOpBranch, 4, a, b, off); }
u32 bge(u8 a, u8 b, i32 off) { return encB(kOpBranch, 5, a, b, off); }
u32 bltu(u8 a, u8 b, i32 off) { return encB(kOpBranch, 6, a, b, off); }
u32 bgeu(u8 a, u8 b, i32 off) { return encB(kOpBranch, 7, a, b, off); }
u32 lb(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 0, rs1, imm); }
u32 lh(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 1, rs1, imm); }
u32 lw(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 2, rs1, imm); }
u32 ld(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 3, rs1, imm); }
u32 lbu(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 4, rs1, imm); }
u32 lhu(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 5, rs1, imm); }
u32 lwu(u8 rd, u8 rs1, i32 imm) { return encI(kOpLoad, rd, 6, rs1, imm); }
u32 sb(u8 rs2, u8 rs1, i32 imm) { return encS(kOpStore, 0, rs1, rs2, imm); }
u32 sh(u8 rs2, u8 rs1, i32 imm) { return encS(kOpStore, 1, rs1, rs2, imm); }
u32 sw(u8 rs2, u8 rs1, i32 imm) { return encS(kOpStore, 2, rs1, rs2, imm); }
u32 sd(u8 rs2, u8 rs1, i32 imm) { return encS(kOpStore, 3, rs1, rs2, imm); }
u32 addi(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm, rd, 0, rs1, imm); }
u32 slti(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm, rd, 2, rs1, imm); }
u32 sltiu(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm, rd, 3, rs1, imm); }
u32 xori(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm, rd, 4, rs1, imm); }
u32 ori(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm, rd, 6, rs1, imm); }
u32 andi(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm, rd, 7, rs1, imm); }

u32
slli(u8 rd, u8 rs1, u32 shamt)
{
    return encR(kOpImm, rd, 1, rs1, static_cast<u8>(shamt & 0x1F),
                (shamt >> 5) & 1);
}

u32
srli(u8 rd, u8 rs1, u32 shamt)
{
    return encR(kOpImm, rd, 5, rs1, static_cast<u8>(shamt & 0x1F),
                (shamt >> 5) & 1);
}

u32
srai(u8 rd, u8 rs1, u32 shamt)
{
    return encR(kOpImm, rd, 5, rs1, static_cast<u8>(shamt & 0x1F),
                0x20 | ((shamt >> 5) & 1));
}

u32 addiw(u8 rd, u8 rs1, i32 imm) { return encI(kOpImm32, rd, 0, rs1, imm); }
u32 add(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 0, a, b, 0); }
u32 sub(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 0, a, b, 0x20); }
u32 sll(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 1, a, b, 0); }
u32 slt(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 2, a, b, 0); }
u32 sltu(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 3, a, b, 0); }
u32 xor_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 4, a, b, 0); }
u32 srl(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 5, a, b, 0); }
u32 sra(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 5, a, b, 0x20); }
u32 or_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 6, a, b, 0); }
u32 and_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 7, a, b, 0); }
u32 addw(u8 rd, u8 a, u8 b) { return encR(kOpReg32, rd, 0, a, b, 0); }
u32 subw(u8 rd, u8 a, u8 b) { return encR(kOpReg32, rd, 0, a, b, 0x20); }
u32 fence() { return encI(kOpMiscMem, 0, 0, 0, 0); }
u32 mul(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 0, a, b, 1); }
u32 mulh(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 1, a, b, 1); }
u32 div_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 4, a, b, 1); }
u32 divu(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 5, a, b, 1); }
u32 rem(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 6, a, b, 1); }
u32 remu(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 7, a, b, 1); }
u32 mulw(u8 rd, u8 a, u8 b) { return encR(kOpReg32, rd, 0, a, b, 1); }
u32 sh1add(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 2, a, b, 0x10); }
u32 sh2add(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 4, a, b, 0x10); }
u32 sh3add(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 6, a, b, 0x10); }
u32 adduw(u8 rd, u8 a, u8 b) { return encR(kOpReg32, rd, 0, a, b, 0x04); }
u32 andn(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 7, a, b, 0x20); }
u32 orn(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 6, a, b, 0x20); }
u32 xnor_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 4, a, b, 0x20); }
u32 clz(u8 rd, u8 a) { return encR(kOpImm, rd, 1, a, 0, 0x30); }
u32 ctz(u8 rd, u8 a) { return encR(kOpImm, rd, 1, a, 1, 0x30); }
u32 cpop(u8 rd, u8 a) { return encR(kOpImm, rd, 1, a, 2, 0x30); }
u32 min_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 4, a, b, 0x05); }
u32 minu(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 5, a, b, 0x05); }
u32 max_(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 6, a, b, 0x05); }
u32 maxu(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 7, a, b, 0x05); }
u32 sextb(u8 rd, u8 a) { return encR(kOpImm, rd, 1, a, 4, 0x30); }
u32 sexth(u8 rd, u8 a) { return encR(kOpImm, rd, 1, a, 5, 0x30); }
u32 zexth(u8 rd, u8 a) { return encR(kOpReg32, rd, 4, a, 0, 0x04); }
u32 rol(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 1, a, b, 0x30); }
u32 ror(u8 rd, u8 a, u8 b) { return encR(kOpReg, rd, 5, a, b, 0x30); }

u32
rori(u8 rd, u8 rs1, u32 shamt)
{
    return encR(kOpImm, rd, 5, rs1, static_cast<u8>(shamt & 0x1F),
                0x30 | ((shamt >> 5) & 1));
}

u32
rev8(u8 rd, u8 rs1)
{
    return kOpImm | (u32(rd) << 7) | (5u << 12) | (u32(rs1) << 15) |
           (0x6B8u << 20);
}

u32
orcb(u8 rd, u8 rs1)
{
    return kOpImm | (u32(rd) << 7) | (5u << 12) | (u32(rs1) << 15) |
           (0x287u << 20);
}

u32
csrrw(u8 rd, u16 csr, u8 rs1)
{
    return kOpSystem | (u32(rd) << 7) | (1u << 12) | (u32(rs1) << 15) |
           (u32(csr) << 20);
}

u32
csrrs(u8 rd, u16 csr, u8 rs1)
{
    return kOpSystem | (u32(rd) << 7) | (2u << 12) | (u32(rs1) << 15) |
           (u32(csr) << 20);
}

u32
csrrc(u8 rd, u16 csr, u8 rs1)
{
    return kOpSystem | (u32(rd) << 7) | (3u << 12) | (u32(rs1) << 15) |
           (u32(csr) << 20);
}

u32
csrrwi(u8 rd, u16 csr, u8 zimm)
{
    return kOpSystem | (u32(rd) << 7) | (5u << 12) | (u32(zimm) << 15) |
           (u32(csr) << 20);
}

u32
csrrsi(u8 rd, u16 csr, u8 zimm)
{
    return kOpSystem | (u32(rd) << 7) | (6u << 12) | (u32(zimm) << 15) |
           (u32(csr) << 20);
}

u32 ecall() { return kOpSystem; }
u32 ebreak() { return kOpSystem | (1u << 20); }
u32 mret() { return kOpSystem | (0x302u << 20); }
u32 sret() { return kOpSystem | (0x102u << 20); }
u32 wfi() { return kOpSystem | (0x105u << 20); }

u32
lrD(u8 rd, u8 rs1)
{
    return encR(kOpAmo, rd, 3, rs1, 0, 0x02u << 2);
}

u32
scD(u8 rd, u8 rs1, u8 rs2)
{
    return encR(kOpAmo, rd, 3, rs1, rs2, 0x03u << 2);
}

u32
amoaddD(u8 rd, u8 rs1, u8 rs2)
{
    return encR(kOpAmo, rd, 3, rs1, rs2, 0x00u << 2);
}

u32
amoswapD(u8 rd, u8 rs1, u8 rs2)
{
    return encR(kOpAmo, rd, 3, rs1, rs2, 0x01u << 2);
}

u32
amoorD(u8 rd, u8 rs1, u8 rs2)
{
    return encR(kOpAmo, rd, 3, rs1, rs2, 0x08u << 2);
}

u32
amoaddW(u8 rd, u8 rs1, u8 rs2)
{
    return encR(kOpAmo, rd, 2, rs1, rs2, 0x00u << 2);
}

u32 fld(u8 frd, u8 rs1, i32 imm) { return encI(kOpLoadFp, frd, 3, rs1, imm); }
u32 fsd(u8 f2, u8 rs1, i32 imm) { return encS(kOpStoreFp, 3, rs1, f2, imm); }
u32 faddD(u8 rd, u8 a, u8 b) { return encR(kOpFp, rd, 0, a, b, 0x01); }
u32 fsubD(u8 rd, u8 a, u8 b) { return encR(kOpFp, rd, 0, a, b, 0x05); }
u32 fmulD(u8 rd, u8 a, u8 b) { return encR(kOpFp, rd, 0, a, b, 0x09); }
u32 fmvDX(u8 frd, u8 rs1) { return encR(kOpFp, frd, 0, rs1, 0, 0x79); }
u32 fmvXD(u8 rd, u8 frs1) { return encR(kOpFp, rd, 0, frs1, 0, 0x71); }

u32
vsetvli(u8 rd, u8 rs1, u32 vtypei)
{
    return kOpVector | (u32(rd) << 7) | (7u << 12) | (u32(rs1) << 15) |
           ((vtypei & 0x7FF) << 20);
}

u32
vaddVV(u8 vd, u8 vs2, u8 vs1)
{
    return kOpVector | (u32(vd) << 7) | (0u << 12) | (u32(vs1) << 15) |
           (u32(vs2) << 20) | (1u << 25); // vm=1 (unmasked)
}

u32
vxorVV(u8 vd, u8 vs2, u8 vs1)
{
    return kOpVector | (u32(vd) << 7) | (0u << 12) | (u32(vs1) << 15) |
           (u32(vs2) << 20) | (1u << 25) | (0x0Bu << 26);
}

u32
vle64(u8 vd, u8 rs1)
{
    return kOpLoadFp | (u32(vd) << 7) | (7u << 12) | (u32(rs1) << 15) |
           (1u << 25); // vm=1, mop=0, lumop=0
}

u32
vse64(u8 vs3, u8 rs1)
{
    return kOpStoreFp | (u32(vs3) << 7) | (7u << 12) | (u32(rs1) << 15) |
           (1u << 25);
}

} // namespace dth::workload
