/**
 * @file
 * RV64 instruction encoders (a mini-assembler). Each function returns the
 * 32-bit encoding; the ProgramBuilder stitches encodings into programs
 * with label-based control flow.
 */

#ifndef DTH_WORKLOAD_ASM_H_
#define DTH_WORKLOAD_ASM_H_

#include "common/types.h"

namespace dth::workload {

// Register ABI aliases.
inline constexpr u8 kZero = 0, kRa = 1, kSp = 2, kGp = 3, kTp = 4;
inline constexpr u8 kT0 = 5, kT1 = 6, kT2 = 7;
inline constexpr u8 kS0 = 8, kS1 = 9;
inline constexpr u8 kA0 = 10, kA1 = 11, kA2 = 12, kA3 = 13, kA4 = 14,
                    kA5 = 15, kA6 = 16, kA7 = 17;
inline constexpr u8 kS2 = 18, kS3 = 19, kS4 = 20, kS5 = 21, kS6 = 22,
                    kS7 = 23, kS8 = 24, kS9 = 25, kS10 = 26, kS11 = 27;
inline constexpr u8 kT3 = 28, kT4 = 29, kT5 = 30, kT6 = 31;

// Instruction format packers.
u32 encR(u32 opcode, u8 rd, u32 f3, u8 rs1, u8 rs2, u32 f7);
u32 encI(u32 opcode, u8 rd, u32 f3, u8 rs1, i32 imm);
u32 encS(u32 opcode, u32 f3, u8 rs1, u8 rs2, i32 imm);
u32 encB(u32 opcode, u32 f3, u8 rs1, u8 rs2, i32 imm);
u32 encU(u32 opcode, u8 rd, i32 imm20);
u32 encJ(u32 opcode, u8 rd, i32 imm);

// RV64I.
u32 lui(u8 rd, i32 imm20);
u32 auipc(u8 rd, i32 imm20);
u32 jal(u8 rd, i32 offset);
u32 jalr(u8 rd, u8 rs1, i32 imm);
u32 beq(u8 rs1, u8 rs2, i32 offset);
u32 bne(u8 rs1, u8 rs2, i32 offset);
u32 blt(u8 rs1, u8 rs2, i32 offset);
u32 bge(u8 rs1, u8 rs2, i32 offset);
u32 bltu(u8 rs1, u8 rs2, i32 offset);
u32 bgeu(u8 rs1, u8 rs2, i32 offset);
u32 lb(u8 rd, u8 rs1, i32 imm);
u32 lh(u8 rd, u8 rs1, i32 imm);
u32 lw(u8 rd, u8 rs1, i32 imm);
u32 ld(u8 rd, u8 rs1, i32 imm);
u32 lbu(u8 rd, u8 rs1, i32 imm);
u32 lhu(u8 rd, u8 rs1, i32 imm);
u32 lwu(u8 rd, u8 rs1, i32 imm);
u32 sb(u8 rs2, u8 rs1, i32 imm);
u32 sh(u8 rs2, u8 rs1, i32 imm);
u32 sw(u8 rs2, u8 rs1, i32 imm);
u32 sd(u8 rs2, u8 rs1, i32 imm);
u32 addi(u8 rd, u8 rs1, i32 imm);
u32 slti(u8 rd, u8 rs1, i32 imm);
u32 sltiu(u8 rd, u8 rs1, i32 imm);
u32 xori(u8 rd, u8 rs1, i32 imm);
u32 ori(u8 rd, u8 rs1, i32 imm);
u32 andi(u8 rd, u8 rs1, i32 imm);
u32 slli(u8 rd, u8 rs1, u32 shamt);
u32 srli(u8 rd, u8 rs1, u32 shamt);
u32 srai(u8 rd, u8 rs1, u32 shamt);
u32 addiw(u8 rd, u8 rs1, i32 imm);
u32 add(u8 rd, u8 rs1, u8 rs2);
u32 sub(u8 rd, u8 rs1, u8 rs2);
u32 sll(u8 rd, u8 rs1, u8 rs2);
u32 slt(u8 rd, u8 rs1, u8 rs2);
u32 sltu(u8 rd, u8 rs1, u8 rs2);
u32 xor_(u8 rd, u8 rs1, u8 rs2);
u32 srl(u8 rd, u8 rs1, u8 rs2);
u32 sra(u8 rd, u8 rs1, u8 rs2);
u32 or_(u8 rd, u8 rs1, u8 rs2);
u32 and_(u8 rd, u8 rs1, u8 rs2);
u32 addw(u8 rd, u8 rs1, u8 rs2);
u32 subw(u8 rd, u8 rs1, u8 rs2);
u32 fence();
// RV64M.
u32 mul(u8 rd, u8 rs1, u8 rs2);
u32 mulh(u8 rd, u8 rs1, u8 rs2);
u32 div_(u8 rd, u8 rs1, u8 rs2);
u32 divu(u8 rd, u8 rs1, u8 rs2);
u32 rem(u8 rd, u8 rs1, u8 rs2);
u32 remu(u8 rd, u8 rs1, u8 rs2);
u32 mulw(u8 rd, u8 rs1, u8 rs2);
// Zba/Zbb.
u32 sh1add(u8 rd, u8 rs1, u8 rs2);
u32 sh2add(u8 rd, u8 rs1, u8 rs2);
u32 sh3add(u8 rd, u8 rs1, u8 rs2);
u32 adduw(u8 rd, u8 rs1, u8 rs2);
u32 andn(u8 rd, u8 rs1, u8 rs2);
u32 orn(u8 rd, u8 rs1, u8 rs2);
u32 xnor_(u8 rd, u8 rs1, u8 rs2);
u32 clz(u8 rd, u8 rs1);
u32 ctz(u8 rd, u8 rs1);
u32 cpop(u8 rd, u8 rs1);
u32 min_(u8 rd, u8 rs1, u8 rs2);
u32 minu(u8 rd, u8 rs1, u8 rs2);
u32 max_(u8 rd, u8 rs1, u8 rs2);
u32 maxu(u8 rd, u8 rs1, u8 rs2);
u32 sextb(u8 rd, u8 rs1);
u32 sexth(u8 rd, u8 rs1);
u32 zexth(u8 rd, u8 rs1);
u32 rol(u8 rd, u8 rs1, u8 rs2);
u32 ror(u8 rd, u8 rs1, u8 rs2);
u32 rori(u8 rd, u8 rs1, u32 shamt);
u32 rev8(u8 rd, u8 rs1);
u32 orcb(u8 rd, u8 rs1);
// Zicsr + privileged.
u32 csrrw(u8 rd, u16 csr, u8 rs1);
u32 csrrs(u8 rd, u16 csr, u8 rs1);
u32 csrrc(u8 rd, u16 csr, u8 rs1);
u32 csrrwi(u8 rd, u16 csr, u8 zimm);
u32 csrrsi(u8 rd, u16 csr, u8 zimm);
u32 ecall();
u32 ebreak();
u32 mret();
u32 sret();
u32 wfi();
// RV64A.
u32 lrD(u8 rd, u8 rs1);
u32 scD(u8 rd, u8 rs1, u8 rs2);
u32 amoaddD(u8 rd, u8 rs1, u8 rs2);
u32 amoswapD(u8 rd, u8 rs1, u8 rs2);
u32 amoorD(u8 rd, u8 rs1, u8 rs2);
u32 amoaddW(u8 rd, u8 rs1, u8 rs2);
// D subset.
u32 fld(u8 frd, u8 rs1, i32 imm);
u32 fsd(u8 frs2, u8 rs1, i32 imm);
u32 faddD(u8 frd, u8 frs1, u8 frs2);
u32 fsubD(u8 frd, u8 frs1, u8 frs2);
u32 fmulD(u8 frd, u8 frs1, u8 frs2);
u32 fmvDX(u8 frd, u8 rs1);
u32 fmvXD(u8 rd, u8 frs1);
// V subset.
u32 vsetvli(u8 rd, u8 rs1, u32 vtypei);
u32 vaddVV(u8 vd, u8 vs2, u8 vs1);
u32 vxorVV(u8 vd, u8 vs2, u8 vs1);
u32 vle64(u8 vd, u8 rs1);
u32 vse64(u8 vs3, u8 rs1);

} // namespace dth::workload

#endif // DTH_WORKLOAD_ASM_H_
