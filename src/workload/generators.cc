#include "workload/generators.h"

#include "common/rng.h"
#include "riscv/encoding.h"

namespace dth::workload {

using namespace dth::riscv;

namespace {

// Register conventions inside generated programs:
//   x5-x7, x9, x11-x15, x18-x19  data pool (randomly targeted)
//   x20 (s4)  data array base        x21 (s5)  UART base
//   x22 (s6)  loop counter           x23 (s7)  AMO cell address
//   x24 (s8)  FP staging address     x25 (s9)  vector staging address
//   x27-x31   reserved for the trap handler
constexpr u8 kDataRegs[] = {5, 6, 7, 9, 11, 12, 13, 14, 15, 18, 19};
constexpr u8 kArrayBase = 20;
constexpr u8 kUartReg = 21;
constexpr u8 kLoopCounter = 22;
constexpr u8 kAmoCell = 23;
constexpr u8 kFpStage = 24;
constexpr u8 kVecStage = 25;
// Memory-footprint sweep: the array base walks a large region so the
// cache models keep missing (realistic refill/TLB activity).
constexpr u8 kSweepOffset = 8;   // s0
constexpr u8 kSweepMask = 16;    // a6
constexpr u8 kSweepBase = 17;    // a7
// Supervisor-trap counter (S-mode workloads).
constexpr u8 kSCounter = 26;     // s10

constexpr u64 kDataAreaOffset = 0x100000; // 1 MiB above program text
constexpr u64 kSweepMaskValue = 0x7FFC0;  // ~512 KiB, line-aligned
constexpr i32 kSweepStride = 1984;

u8
pickReg(Rng &rng)
{
    return kDataRegs[rng.nextBelow(std::size(kDataRegs))];
}

/** Emit the machine trap handler; returns its label. The handler counts
 *  events in x27, reloads mtimecmp for timer interrupts (an MMIO load +
 *  store, both NDE paths), and skips the faulting instruction for
 *  exceptions. It may preempt S-mode code (including the supervisor
 *  handler), so it clobbers only x27, x29-x31 — disjoint from the
 *  supervisor handler's x26/x28. */
ProgramBuilder::Label
emitHandler(ProgramBuilder &b, u64 timer_interval)
{
    auto handler = b.newLabel();
    auto is_exception = b.newLabel();
    auto done = b.newLabel();

    b.bind(handler);
    b.emit(csrrs(29, kCsrMcause, kZero)); // x29 = mcause
    b.emit(addi(27, 27, 1));              // event counter
    b.emitBge(29, kZero, is_exception);   // sign bit set => interrupt

    // Interrupt path: mtimecmp = mtime + interval.
    b.li(30, kClintBase + kClintMtime);
    b.emit(ld(31, 30, 0)); // MMIO load (NDE)
    b.li(30, timer_interval);
    b.emit(add(31, 31, 30));
    b.li(30, kClintBase + kClintMtimecmp);
    b.emit(sd(31, 30, 0)); // MMIO store
    b.emitJal(kZero, done);

    // Exception path: skip the trapping instruction.
    b.bind(is_exception);
    b.emit(csrrs(31, kCsrMepc, kZero));
    b.emit(addi(31, 31, 4));
    b.emit(csrrw(kZero, kCsrMepc, 31));

    b.bind(done);
    b.emit(mret());
    return handler;
}

void
emitBodyInstr(ProgramBuilder &b, Rng &rng, const double *cdf,
              const WorkloadMix &)
{
    double roll = rng.nextDouble();
    unsigned kind = 0;
    while (roll >= cdf[kind])
        ++kind;

    u8 rd = pickReg(rng);
    u8 rs1 = pickReg(rng);
    u8 rs2 = pickReg(rng);
    switch (kind) {
      case 0: { // ALU (base + Zba/Zbb bit manipulation)
        switch (rng.nextBelow(16)) {
          case 0: b.emit(add(rd, rs1, rs2)); break;
          case 1: b.emit(sub(rd, rs1, rs2)); break;
          case 2: b.emit(xor_(rd, rs1, rs2)); break;
          case 3: b.emit(or_(rd, rs1, rs2)); break;
          case 4: b.emit(and_(rd, rs1, rs2)); break;
          case 5:
            b.emit(addi(rd, rs1,
                        static_cast<i32>(rng.nextRange(0, 4000)) - 2000));
            break;
          case 6: b.emit(slli(rd, rs1, rng.nextBelow(63) + 1)); break;
          case 7: b.emit(sltu(rd, rs1, rs2)); break;
          case 8: b.emit(sh2add(rd, rs1, rs2)); break;
          case 9: b.emit(andn(rd, rs1, rs2)); break;
          case 10: b.emit(cpop(rd, rs1)); break;
          case 11: b.emit(min_(rd, rs1, rs2)); break;
          case 12: b.emit(maxu(rd, rs1, rs2)); break;
          case 13: b.emit(ror(rd, rs1, rs2)); break;
          case 14: b.emit(rev8(rd, rs1)); break;
          default: b.emit(orcb(rd, rs1)); break;
        }
        break;
      }
      case 1: { // mul/div
        switch (rng.nextBelow(4)) {
          case 0: b.emit(mul(rd, rs1, rs2)); break;
          case 1: b.emit(mulh(rd, rs1, rs2)); break;
          case 2: b.emit(div_(rd, rs1, rs2)); break;
          default: b.emit(remu(rd, rs1, rs2)); break;
        }
        break;
      }
      case 2: { // load
        i32 offset = static_cast<i32>(rng.nextBelow(256)) * 8;
        switch (rng.nextBelow(4)) {
          case 0: b.emit(ld(rd, kArrayBase, offset)); break;
          case 1: b.emit(lw(rd, kArrayBase, offset)); break;
          case 2: b.emit(lbu(rd, kArrayBase, offset)); break;
          default: b.emit(lhu(rd, kArrayBase, offset)); break;
        }
        break;
      }
      case 3: { // store
        i32 offset = static_cast<i32>(rng.nextBelow(256)) * 8;
        switch (rng.nextBelow(3)) {
          case 0: b.emit(sd(rs1, kArrayBase, offset)); break;
          case 1: b.emit(sw(rs1, kArrayBase, offset)); break;
          default: b.emit(sb(rs1, kArrayBase, offset)); break;
        }
        break;
      }
      case 4: { // fp
        u8 fa = static_cast<u8>(rng.nextBelow(8));
        u8 fb = static_cast<u8>(rng.nextBelow(8));
        u8 fc = static_cast<u8>(rng.nextBelow(8));
        switch (rng.nextBelow(5)) {
          case 0: b.emit(fld(fa, kFpStage, 8 * (i32)rng.nextBelow(8)));
            break;
          case 1: b.emit(fsd(fa, kFpStage, 8 * (i32)rng.nextBelow(8)));
            break;
          case 2: b.emit(faddD(fa, fb, fc)); break;
          case 3: b.emit(fmulD(fa, fb, fc)); break;
          default: b.emit(fmvDX(fa, rs1)); break;
        }
        break;
      }
      case 5: { // vector
        u8 va = static_cast<u8>(rng.nextBelow(8));
        u8 vb = static_cast<u8>(rng.nextBelow(8));
        u8 vc = static_cast<u8>(rng.nextBelow(8));
        switch (rng.nextBelow(5)) {
          case 0: b.emit(vsetvli(rd, kZero, 0x018)); break; // e64,m1
          case 1: b.emit(vaddVV(va, vb, vc)); break;
          case 2: b.emit(vxorVV(va, vb, vc)); break;
          case 3: b.emit(vle64(va, kVecStage)); break;
          default: b.emit(vse64(va, kVecStage)); break;
        }
        break;
      }
      case 6: { // amo
        switch (rng.nextBelow(4)) {
          case 0: b.emit(amoaddD(rd, kAmoCell, rs1)); break;
          case 1: b.emit(amoswapD(rd, kAmoCell, rs1)); break;
          case 2: b.emit(amoorD(rd, kAmoCell, rs1)); break;
          default:
            // LR/SC pair: SC success is DUT-nondeterministic.
            b.emit(lrD(rd, kAmoCell));
            b.emit(scD(rd, kAmoCell, rs1));
            break;
        }
        break;
      }
      case 7: { // mmio
        if (rng.chance(0.5)) {
            b.emit(lbu(rd, kUartReg, static_cast<i32>(kUartStatus)));
        } else {
            b.emit(andi(rs1, rs1, 0x7F));
            b.emit(sb(rs1, kUartReg, static_cast<i32>(kUartData)));
        }
        break;
      }
      case 8: { // csr
        switch (rng.nextBelow(3)) {
          case 0: b.emit(csrrw(rd, kCsrMscratch, rs1)); break;
          case 1: b.emit(csrrs(rd, kCsrMscratch, kZero)); break;
          default: b.emit(csrrw(rd, kCsrSscratch, rs1)); break;
        }
        break;
      }
      case 9: { // short forward branch over one instruction
        auto skip = b.newLabel();
        if (rng.chance(0.5))
            b.emitBeq(rs1, rs2, skip);
        else
            b.emitBne(rs1, rs2, skip);
        b.emit(add(rd, rs1, rs2));
        b.bind(skip);
        break;
      }
      default: // ecall
        b.emit(ecall());
        break;
    }
}

} // namespace

Program
generate(const std::string &name, const WorkloadMix &mix,
         const WorkloadOptions &options)
{
    Rng rng(options.seed);
    ProgramBuilder b;

    auto setup = b.newLabel();
    b.emitJal(kZero, setup);
    auto handler = emitHandler(b, options.timerInterval);

    // Supervisor trap handler: count in x26, skip the trapping
    // instruction, sret. Its address is fixed once the M handler has
    // been emitted.
    u64 s_handler_addr = b.here();
    if (options.supervisorMode) {
        b.emit(addi(kSCounter, kSCounter, 1));
        b.emit(csrrs(28, kCsrSepc, kZero));
        b.emit(addi(28, 28, 4));
        b.emit(csrrw(kZero, kCsrSepc, 28));
        b.emit(sret());
    }

    b.bind(setup);
    // mtvec points at the handler, which starts right after the initial
    // jal, i.e. at base+4.
    (void)handler;
    b.li(28, kRamBase + 4);
    b.emit(csrrw(kZero, kCsrMtvec, 28));

    if (options.timerInterrupts) {
        b.li(28, kClintBase + kClintMtimecmp);
        b.li(29, options.timerInterval);
        b.emit(sd(29, 28, 0));
        b.li(28, kIpMtip | kIpMeip);
        b.emit(csrrw(kZero, kCsrMie, 28));
        // Supervisor workloads enable interrupts only at the mret into
        // S-mode (via MPIE); enabling them here would open a window
        // where a timer interrupt corrupts the entry sequence's mepc.
        if (!options.supervisorMode)
            b.emit(csrrsi(kZero, kCsrMstatus, 8)); // mstatus.MIE
    }

    // Pointer and data registers.
    b.li(kArrayBase, kRamBase + kDataAreaOffset);
    b.li(kSweepBase, kRamBase + kDataAreaOffset);
    b.li(kSweepMask, kSweepMaskValue);
    b.emit(addi(kSweepOffset, kZero, 0));
    b.li(kUartReg, kUartBase);
    b.li(kAmoCell, kRamBase + kDataAreaOffset + 0x10000);
    b.li(kFpStage, kRamBase + kDataAreaOffset + 0x20000);
    b.li(kVecStage, kRamBase + kDataAreaOffset + 0x30000);
    for (u8 reg : kDataRegs)
        b.li(reg, rng.next());
    b.emit(addi(27, kZero, 0)); // handler event counter
    if (mix.vec > 0)
        b.emit(vsetvli(28, kZero, 0x018));

    // Normalized CDF over instruction kinds.
    double weights[11] = {mix.alu, mix.mulDiv, mix.load, mix.store,
                          mix.fp, mix.vec, mix.amo, mix.mmio,
                          mix.csr, mix.branch, mix.ecall};
    double total = 0;
    for (double w : weights)
        total += w;
    double cdf[11];
    double acc = 0;
    for (unsigned i = 0; i < 11; ++i) {
        acc += weights[i] / total;
        cdf[i] = acc;
    }
    cdf[10] = 1.1; // guard

    b.li(kLoopCounter, options.iterations);

    if (options.supervisorMode) {
        // Delegate environment calls from S/U to the supervisor handler
        // and drop into S-mode for the main loop, as an OS boot does.
        b.li(28, s_handler_addr);
        b.emit(csrrw(kZero, kCsrStvec, 28));
        b.li(28, (1ULL << kCauseEcallU) | (1ULL << kCauseEcallS));
        b.emit(csrrw(kZero, kCsrMedeleg, 28));
        b.emit(addi(kSCounter, kZero, 0));
        // mstatus: MPP <- S, MPIE <- 1 so mret re-enables M interrupts.
        b.li(28, riscv::kMstatusMppMask);
        b.emit(csrrc(kZero, kCsrMstatus, 28));
        b.li(28, (1ULL << 11) | riscv::kMstatusMpie);
        b.emit(csrrs(kZero, kCsrMstatus, 28));
        // mepc <- the instruction after mret.
        b.emit(auipc(28, 0));
        b.emit(addi(28, 28, 16));
        b.emit(csrrw(kZero, kCsrMepc, 28));
        b.emit(mret());
    }

    auto loop = b.hereLabel();
    for (unsigned i = 0; i < options.bodyLength; ++i)
        emitBodyInstr(b, rng, cdf, mix);
    // Walk the array base across the footprint.
    b.emit(addi(kSweepOffset, kSweepOffset, kSweepStride));
    b.emit(and_(kSweepOffset, kSweepOffset, kSweepMask));
    b.emit(add(kArrayBase, kSweepBase, kSweepOffset));
    b.emit(addi(kLoopCounter, kLoopCounter, -1));
    b.emitBne(kLoopCounter, kZero, loop);

    b.emitHalt(0);
    return b.assemble(name);
}

Program
makeMicrobench(const WorkloadOptions &options)
{
    WorkloadMix mix;
    mix.alu = 0.45;
    mix.mulDiv = 0.10;
    mix.load = 0.20;
    mix.store = 0.12;
    mix.branch = 0.10;
    mix.csr = 0.03;
    return generate("microbench", mix, options);
}

Program
makeBootLike(const WorkloadOptions &options)
{
    WorkloadOptions opts = options;
    opts.timerInterrupts = true;
    opts.supervisorMode = true;
    WorkloadMix mix;
    mix.alu = 0.38;
    mix.mulDiv = 0.04;
    mix.load = 0.18;
    mix.store = 0.12;
    mix.amo = 0.04;
    mix.mmio = 0.10;
    mix.csr = 0.06;
    mix.branch = 0.075;
    mix.ecall = 0.005;
    return generate("linux-boot", mix, opts);
}

Program
makeComputeLike(const WorkloadOptions &options)
{
    WorkloadMix mix;
    mix.alu = 0.42;
    mix.mulDiv = 0.12;
    mix.load = 0.22;
    mix.store = 0.10;
    mix.fp = 0.06;
    mix.branch = 0.08;
    return generate("spec-like", mix, options);
}

Program
makeVectorLike(const WorkloadOptions &options)
{
    WorkloadMix mix;
    mix.alu = 0.30;
    mix.load = 0.12;
    mix.store = 0.08;
    mix.fp = 0.10;
    mix.vec = 0.32;
    mix.branch = 0.08;
    return generate("rvv-test", mix, options);
}

Program
makeIoHeavy(const WorkloadOptions &options)
{
    WorkloadOptions opts = options;
    opts.timerInterrupts = true;
    WorkloadMix mix;
    mix.alu = 0.30;
    mix.load = 0.10;
    mix.store = 0.06;
    mix.mmio = 0.44;
    mix.csr = 0.04;
    mix.branch = 0.05;
    mix.ecall = 0.01;
    return generate("io-heavy", mix, opts);
}

} // namespace dth::workload
