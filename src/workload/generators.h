/**
 * @file
 * Synthetic workload generators. Each generator emits a real RV64 program
 * (assembled by ProgramBuilder) whose instruction mix reproduces the
 * communication-relevant characteristics of the paper's benchmarks:
 * Linux boot (device interaction + frequent interrupts), SPEC-like
 * compute, RVV_TEST-like vector activity, and an I/O-heavy stressor.
 */

#ifndef DTH_WORKLOAD_GENERATORS_H_
#define DTH_WORKLOAD_GENERATORS_H_

#include "workload/program.h"

namespace dth::workload {

/** Instruction mix weights (normalized internally). */
struct WorkloadMix
{
    double alu = 1.0;
    double mulDiv = 0.0;
    double load = 0.0;
    double store = 0.0;
    double fp = 0.0;
    double vec = 0.0;
    double amo = 0.0;
    double mmio = 0.0; //!< UART loads/stores: NDE sources
    double csr = 0.0;
    double branch = 0.0;
    double ecall = 0.0;
};

/** Options shared by all generators. */
struct WorkloadOptions
{
    u64 seed = 42;
    /** Outer-loop iterations: total instructions ~ iterations * body. */
    unsigned iterations = 1000;
    /** Random instructions per loop body. */
    unsigned bodyLength = 64;
    /** Enable machine timer interrupts (CLINT-driven, NDE source). */
    bool timerInterrupts = false;
    /** mtimecmp reload interval in CLINT ticks (cycles). */
    u64 timerInterval = 5000;
    /**
     * Run the main loop in S-mode with ecalls delegated to a supervisor
     * handler (medeleg), as an OS boot does; timer interrupts still trap
     * to M and return to S.
     */
    bool supervisorMode = false;
};

/** Generate a program from an explicit mix. */
Program generate(const std::string &name, const WorkloadMix &mix,
                 const WorkloadOptions &options);

/** Short arithmetic/memory smoke workload ("microbench"). */
Program makeMicrobench(const WorkloadOptions &options);

/** Linux-boot-like: device MMIO, timer interrupts, ecalls, AMOs. */
Program makeBootLike(const WorkloadOptions &options);

/** SPEC-CPU-like: ALU/mul/div + streaming memory, almost no NDEs. */
Program makeComputeLike(const WorkloadOptions &options);

/** RVV_TEST-like: vector config/arith/memory plus scalar FP. */
Program makeVectorLike(const WorkloadOptions &options);

/** Pathological device-driver loop: MMIO-dominated (worst for fusion). */
Program makeIoHeavy(const WorkloadOptions &options);

} // namespace dth::workload

#endif // DTH_WORKLOAD_GENERATORS_H_
