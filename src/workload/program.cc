#include "workload/program.h"

#include "common/bits.h"
#include "common/logging.h"

namespace dth::workload {

void
ProgramBuilder::emit(u32 instr)
{
    words_.push_back(instr);
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelAddrs_.push_back(-1);
    return static_cast<Label>(labelAddrs_.size() - 1);
}

void
ProgramBuilder::bind(Label label)
{
    dth_assert(label < labelAddrs_.size(), "unknown label %u", label);
    dth_assert(labelAddrs_[label] < 0, "label %u bound twice", label);
    labelAddrs_[label] = static_cast<i64>(here());
}

ProgramBuilder::Label
ProgramBuilder::hereLabel()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
ProgramBuilder::emitBranchFixup(u32 funct3, u8 rs1, u8 rs2, Label target)
{
    fixups_.push_back({words_.size(), target, false, rs1, rs2, 0, funct3});
    words_.push_back(0); // placeholder
}

void
ProgramBuilder::emitBeq(u8 a, u8 b, Label t)
{
    emitBranchFixup(0, a, b, t);
}

void
ProgramBuilder::emitBne(u8 a, u8 b, Label t)
{
    emitBranchFixup(1, a, b, t);
}

void
ProgramBuilder::emitBlt(u8 a, u8 b, Label t)
{
    emitBranchFixup(4, a, b, t);
}

void
ProgramBuilder::emitBge(u8 a, u8 b, Label t)
{
    emitBranchFixup(5, a, b, t);
}

void
ProgramBuilder::emitBltu(u8 a, u8 b, Label t)
{
    emitBranchFixup(6, a, b, t);
}

void
ProgramBuilder::emitBgeu(u8 a, u8 b, Label t)
{
    emitBranchFixup(7, a, b, t);
}

void
ProgramBuilder::emitJal(u8 rd, Label target)
{
    fixups_.push_back({words_.size(), target, true, 0, 0, rd, 0});
    words_.push_back(0);
}

void
ProgramBuilder::li(u8 rd, u64 value)
{
    i64 v = static_cast<i64>(value);
    if (v >= -2048 && v < 2048) {
        emit(addi(rd, kZero, static_cast<i32>(v)));
        return;
    }
    if (v >= INT32_MIN && v <= INT32_MAX) {
        i32 lo = static_cast<i32>(sext(value & 0xFFF, 12));
        i32 hi = static_cast<i32>((v - lo) >> 12);
        emit(lui(rd, hi));
        if (lo != 0)
            emit(addiw(rd, rd, lo));
        return;
    }
    // Build the upper part recursively, then shift in the low 12 bits.
    i32 lo = static_cast<i32>(sext(value & 0xFFF, 12));
    li(rd, static_cast<u64>((v - lo) >> 12));
    emit(slli(rd, rd, 12));
    if (lo != 0)
        emit(addi(rd, rd, lo));
}

void
ProgramBuilder::emitHalt(u64 code)
{
    li(kA0, code);
    emit(ebreak());
}

Program
ProgramBuilder::assemble(std::string name) const
{
    std::vector<u32> words = words_;
    for (const Fixup &f : fixups_) {
        dth_assert(f.label < labelAddrs_.size() && labelAddrs_[f.label] >= 0,
                   "label %u never bound", f.label);
        i64 target = labelAddrs_[f.label];
        i64 pc = static_cast<i64>(base_) + static_cast<i64>(f.wordIndex) * 4;
        i32 offset = static_cast<i32>(target - pc);
        if (f.isJal)
            words[f.wordIndex] = jal(f.rd, offset);
        else
            words[f.wordIndex] =
                encB(riscv::kOpBranch, f.funct3, f.rs1, f.rs2, offset);
    }

    Program p;
    p.name = std::move(name);
    p.base = base_;
    p.image.resize(words.size() * 4);
    for (size_t i = 0; i < words.size(); ++i) {
        for (unsigned b = 0; b < 4; ++b)
            p.image[i * 4 + b] = static_cast<u8>(words[i] >> (8 * b));
    }
    return p;
}

} // namespace dth::workload
