/**
 * @file
 * ProgramBuilder: assembles encoder output into a loadable image with
 * label-based control flow (forward and backward branches/jumps) and a
 * li() pseudo-instruction for arbitrary 64-bit constants.
 */

#ifndef DTH_WORKLOAD_PROGRAM_H_
#define DTH_WORKLOAD_PROGRAM_H_

#include <functional>
#include <string>
#include <vector>

#include "riscv/encoding.h"
#include "workload/asm.h"

namespace dth::workload {

/** A fully assembled program image. */
struct Program
{
    std::string name;
    u64 base = riscv::kRamBase;
    std::vector<u8> image;

    u64 entry() const { return base; }
    size_t instrCount() const { return image.size() / 4; }
};

/** Builds a Program instruction by instruction. */
class ProgramBuilder
{
  public:
    /** Opaque label handle. */
    using Label = u32;

    explicit ProgramBuilder(u64 base = riscv::kRamBase) : base_(base) {}

    /** Append one encoded instruction. */
    void emit(u32 instr);

    /** Current emission address. */
    u64 here() const { return base_ + words_.size() * 4; }

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current address. */
    void bind(Label label);

    /** Create a label bound to the current address. */
    Label hereLabel();

    // Label-target control flow; fixed up at assemble() time.
    void emitBeq(u8 rs1, u8 rs2, Label target);
    void emitBne(u8 rs1, u8 rs2, Label target);
    void emitBlt(u8 rs1, u8 rs2, Label target);
    void emitBge(u8 rs1, u8 rs2, Label target);
    void emitBltu(u8 rs1, u8 rs2, Label target);
    void emitBgeu(u8 rs1, u8 rs2, Label target);
    void emitJal(u8 rd, Label target);

    /** Load an arbitrary 64-bit constant into @p rd (multi-instruction). */
    void li(u8 rd, u64 value);

    /** Exit the workload: a0 = @p code, then ebreak. */
    void emitHalt(u64 code = 0);

    /** Resolve fixups and produce the image. */
    Program assemble(std::string name) const;

  private:
    struct Fixup
    {
        size_t wordIndex;
        Label label;
        bool isJal;
        u8 rs1, rs2, rd;
        u32 funct3;
    };

    void emitBranchFixup(u32 funct3, u8 rs1, u8 rs2, Label target);

    u64 base_;
    std::vector<u32> words_;
    std::vector<i64> labelAddrs_; //!< -1 when unbound
    std::vector<Fixup> fixups_;
};

} // namespace dth::workload

#endif // DTH_WORKLOAD_PROGRAM_H_
