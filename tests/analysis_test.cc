/**
 * @file
 * Unit tests for the protocol-invariant static analyzer (dth_lint core).
 * The in-tree tables must pass the full catalogue; each seeded-violation
 * test mutates a ProtocolTables copy to plant exactly one invariant
 * violation class and asserts the analyzer reports that class and no
 * other.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/layout_audit.h"
#include "analysis/protocol_lint.h"
#include "link/channel.h"
#include "link/frame.h"
#include "pack/wire.h"
#include "squash/squash.h"

namespace dth::analysis {
namespace {

/** Assert a report contains findings of exactly one violation class. */
void
expectOnly(const LintReport &report, LintCheck check)
{
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(report.has(check)) << "expected a " << lintCheckName(check)
                                   << " finding";
    for (const LintFinding &f : report.findings) {
        EXPECT_EQ(static_cast<int>(f.check), static_cast<int>(check))
            << "unexpected extra " << lintCheckName(f.check)
            << " finding: " << f.message;
    }
    EXPECT_EQ(report.count(check), report.findings.size());
}

TEST(ProtocolLint, InTreeTablesPass)
{
    LintReport report = runProtocolLint(currentTables());
    for (const LintFinding &f : report.findings)
        ADD_FAILURE() << lintCheckName(f.check) << ": " << f.message;
    EXPECT_TRUE(report.passed());
    // The catalogue is substantial: a stub analyzer can't fake this.
    EXPECT_GT(report.checksRun, 200u);
    EXPECT_NE(report.summary().find("no violations"), std::string::npos);
}

TEST(ProtocolLint, SnapshotMatchesBuildConstants)
{
    ProtocolTables t = currentTables();
    EXPECT_EQ(t.numEventTypes, kNumEventTypes);
    EXPECT_EQ(t.numWireTypes, kNumWireTypes);
    EXPECT_EQ(t.events.size(), kNumWireTypes);
    EXPECT_EQ(t.eventWireHeaderBytes, kEventWireHeaderBytes);
    EXPECT_EQ(t.maxFuseDepth, kMaxFuseDepth);
    EXPECT_EQ(t.frameMagic, link::kFrameMagic);
    EXPECT_EQ(t.frameHeaderBytes, link::kFrameHeaderBytes);
    EXPECT_EQ(t.frameTrailerBytes, link::kFrameTrailerBytes);
    EXPECT_EQ(t.maxFramePayloadBytes, link::kMaxFramePayloadBytes);
    EXPECT_EQ(t.retxWindowFrames, link::kDefaultRetxWindowFrames);
    EXPECT_EQ(t.undoKinds.size(), replay::kNumUndoKinds);
    // One canonical mux slot per monitor type.
    EXPECT_EQ(t.muxSlots.size(), kNumEventTypes);
    for (unsigned i = 0; i < t.muxSlots.size(); ++i) {
        EXPECT_EQ(t.muxSlots[i].slot, i);
        EXPECT_EQ(t.muxSlots[i].typeId, i);
        EXPECT_EQ(t.muxSlots[i].lanes, t.events[i].entriesPerCore);
        EXPECT_EQ(t.muxSlots[i].widthBytes, t.events[i].bytesPerEntry);
    }
}

TEST(ProtocolLint, LayoutFactsCoverViewBackedTypes)
{
    auto facts = payloadLayoutFacts();
    EXPECT_GE(facts.size(), 25u);
    for (const LayoutFact &fact : facts) {
        EXPECT_LT(fact.typeId, kNumWireTypes);
        EXPECT_NE(fact.viewName, nullptr);
    }
    // Compile-time and runtime agree on the packet floor.
    EXPECT_EQ(maxFixedPayloadBytes(), VecRegView::kPayloadBytes);
}

// ---------------------------------------------------------------------------
// Seeded violation classes: each must be detected, and detected alone.
// ---------------------------------------------------------------------------

TEST(ProtocolLintSeeded, BadSerializedSize)
{
    ProtocolTables t = currentTables();
    // Shrink InstrCommit's declared size out from under its view (still
    // word-aligned so only the layout check can catch it).
    auto id = static_cast<unsigned>(EventType::InstrCommit);
    t.events[id].bytesPerEntry = InstrCommitView::kPayloadBytes - 8;
    // Keep the mux slot consistent with the (mutated) table so the size
    // lie is visible only against the typed view.
    t.muxSlots[id].widthBytes = t.events[id].bytesPerEntry;
    expectOnly(runProtocolLint(t), LintCheck::LayoutMismatch);
}

TEST(ProtocolLintSeeded, AliasedMuxSlot)
{
    ProtocolTables t = currentTables();
    // Route the Trap type onto the InstrCommit slot: two types now drive
    // one crossbar slot.
    t.muxSlots[static_cast<unsigned>(EventType::Trap)].slot =
        t.muxSlots[static_cast<unsigned>(EventType::InstrCommit)].slot;
    expectOnly(runProtocolLint(t), LintCheck::MuxSlotAlias);
}

TEST(ProtocolLintSeeded, FusibleNde)
{
    ProtocolTables t = currentTables();
    // Mark the LR/SC oracle fusible: fusing it would erase the order tag
    // the REF's SC-outcome synchronization depends on.
    auto id = static_cast<unsigned>(EventType::LrScEvent);
    ASSERT_TRUE(t.events[id].nde);
    t.events[id].fusible = true;
    expectOnly(runProtocolLint(t), LintCheck::FusibleNde);
}

TEST(ProtocolLintSeeded, MissingUndoKind)
{
    ProtocolTables t = currentTables();
    // Drop the reservation kind from the compensation log: LR/SC
    // checking (and commit stepping) could no longer be rolled back.
    std::erase(t.undoKinds, replay::UndoKind::Reservation);
    LintReport report = runProtocolLint(t);
    expectOnly(report, LintCheck::MissingUndoKind);
    // Reservation-state mutators: InstrCommit, FusedCommit, LrScEvent.
    EXPECT_EQ(report.count(LintCheck::MissingUndoKind), 3u);
    bool lrsc_named = std::any_of(
        report.findings.begin(), report.findings.end(),
        [](const LintFinding &f) {
            return f.typeId ==
                   static_cast<int>(EventType::LrScEvent);
        });
    EXPECT_TRUE(lrsc_named);
}

TEST(ProtocolLintSeeded, StaleHeaderConstant)
{
    ProtocolTables t = currentTables();
    // Pretend the per-event wire header shrank by one byte: the encode
    // probes must observe that the real encoder disagrees.
    t.eventWireHeaderBytes = kEventWireHeaderBytes - 1;
    LintReport report = runProtocolLint(t);
    expectOnly(report, LintCheck::StaleHeaderConstant);
    // Both the fixed-size and the variable-length probe see the drift.
    EXPECT_GE(report.count(LintCheck::StaleHeaderConstant), 2u);
}

// ---------------------------------------------------------------------------
// Additional seeded classes beyond the required five.
// ---------------------------------------------------------------------------

TEST(ProtocolLintSeeded, VariableLengthMonitorType)
{
    ProtocolTables t = currentTables();
    // A monitor type may never be variable-length; only wire
    // pseudo-types (DiffState) are. Runahead has no typed view, so the
    // size lie is invisible to the layout facts and only this check can
    // catch it.
    auto id = static_cast<unsigned>(EventType::RunaheadEvent);
    t.events[id].bytesPerEntry = 0;
    t.muxSlots[id].widthBytes = 0;
    expectOnly(runProtocolLint(t), LintCheck::VariableLengthMonitor);
}

TEST(ProtocolLintSeeded, FuseDepthOverflow)
{
    ProtocolTables t = currentTables();
    // A fuse window deeper than the FusedDigest count field can count.
    t.maxFuseDepth = (1u << t.digestCountBits) + 1;
    expectOnly(runProtocolLint(t), LintCheck::FuseDepthOverflow);
}

TEST(ProtocolLintSeeded, PacketBudgetTooSmall)
{
    ProtocolTables t = currentTables();
    // A packet budget below the largest event: the vector register file
    // snapshot could never be transmitted. Small enough that the Batch
    // encode probe is skipped rather than panicking in BatchPacker.
    t.packetBytes = 48;
    LintReport report = runProtocolLint(t);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(report.has(LintCheck::PacketBudget));
    for (const LintFinding &f : report.findings)
        EXPECT_EQ(f.check, LintCheck::PacketBudget) << f.message;
}

TEST(ProtocolLintSeeded, SquashClassMismatch)
{
    ProtocolTables t = currentTables();
    // Claim the branch stream is not fusible while the SquashUnit still
    // routes it through aux fusion.
    auto id = static_cast<unsigned>(EventType::BranchEvent);
    ASSERT_TRUE(t.events[id].fusible);
    t.events[id].fusible = false;
    expectOnly(runProtocolLint(t), LintCheck::SquashClassMismatch);
}

TEST(ProtocolLintSeeded, WireTypeCountDrift)
{
    ProtocolTables t = currentTables();
    // Snapshot claims fewer wire types than the build has rows for.
    t.numWireTypes = kNumWireTypes - 1;
    LintReport report = runProtocolLint(t);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(report.has(LintCheck::WireTypeCount));
}

TEST(ProtocolLintSeeded, FrameLayoutDrift)
{
    ProtocolTables t = currentTables();
    // Pretend the frame header shed its issue-cycle field: the snapshot
    // constant disagrees with the build AND the encode probe measures
    // the real encoder emitting more bytes than the constants predict.
    t.frameHeaderBytes -= 8;
    LintReport report = runProtocolLint(t);
    expectOnly(report, LintCheck::FrameLayoutMismatch);
    EXPECT_GE(report.count(LintCheck::FrameLayoutMismatch), 2u);
}

TEST(ProtocolLintSeeded, FrameMagicDrift)
{
    ProtocolTables t = currentTables();
    // A stale magic constant: the build check and the on-wire probe
    // must both flag it.
    t.frameMagic ^= 0x1;
    LintReport report = runProtocolLint(t);
    expectOnly(report, LintCheck::FrameLayoutMismatch);
    EXPECT_GE(report.count(LintCheck::FrameLayoutMismatch), 2u);
}

TEST(ProtocolLintSeeded, RetxWindowCannotHoldInFlightFrame)
{
    ProtocolTables t = currentTables();
    // A zero-frame retransmit window can never serve a NAK: the
    // stop-and-wait recovery protocol needs at least the one in-flight
    // frame retained.
    t.retxWindowFrames = 0;
    expectOnly(runProtocolLint(t), LintCheck::RetxWindowBounds);
}

TEST(ProtocolLintSeeded, FramePayloadBoundBelowPacketBudget)
{
    ProtocolTables t = currentTables();
    // A payload bound below the packet budget would make every full
    // packet indistinguishable from a corrupt length field.
    t.maxFramePayloadBytes = t.packetBytes - 1;
    expectOnly(runProtocolLint(t), LintCheck::RetxWindowBounds);
}

// The SquashUnit must reject configurations beyond the analyzed ceiling.
TEST(ProtocolLint, SquashRespectsFuseDepthCeiling)
{
    SquashConfig config;
    config.maxFuse = kMaxFuseDepth;
    SquashUnit unit(config); // must not assert
    EXPECT_DEATH(
        {
            SquashConfig bad;
            bad.maxFuse = kMaxFuseDepth + 1;
            SquashUnit over(bad);
        },
        "maxFuse");
}

} // namespace
} // namespace dth::analysis
