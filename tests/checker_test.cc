/**
 * @file
 * Unit tests for the ISA checker: hand-crafted event streams against a
 * tiny known program, covering commit compares, skip semantics, NDE
 * oracle synchronization, fused-window digest checks, and the software
 * half of Replay (rollback + reprocessing).
 */

#include <gtest/gtest.h>

#include "checker/checker.h"
#include "squash/squash.h"
#include "workload/program.h"

namespace dth::checker {
namespace {

using namespace dth::workload;
using namespace dth::riscv;

/** A tiny fixed program: x5=7; x6=9; x7=x5+x6; sd x7; halt(0). */
Program
tinyProgram()
{
    ProgramBuilder b;
    b.emit(addi(5, 0, 7));            // seq 1
    b.emit(addi(6, 0, 9));            // seq 2
    b.emit(add(7, 5, 6));             // seq 3
    b.li(28, kRamBase + 0x1000);      // seq 4 (single addi+lui? -> li)
    b.emit(sd(7, 28, 0));             // store
    b.emitHalt(0);
    return b.assemble("tiny");
}

/** Build the commit event for one expected step of the program. */
Event
commitFor(u64 seq, u64 pc, u32 instr, u8 rd, u64 rd_val, u64 next_pc)
{
    Event e = Event::make(EventType::InstrCommit, 0, 0, seq);
    InstrCommitView v(e);
    v.set_pc(pc);
    v.set_instr(instr);
    v.set_seqNo(seq);
    v.set_rd(rd);
    v.set_rfWen(rd != 0 ? 1 : 0);
    v.set_rdVal(rd_val);
    v.set_nextPc(next_pc);
    return e;
}

TEST(CoreChecker, AcceptsMatchingCommits)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    u64 base = kRamBase;
    EXPECT_TRUE(chk.processEvent(
        commitFor(1, base, addi(5, 0, 7), 5, 7, base + 4)));
    EXPECT_TRUE(chk.processEvent(
        commitFor(2, base + 4, addi(6, 0, 9), 6, 9, base + 8)));
    EXPECT_TRUE(chk.processEvent(
        commitFor(3, base + 8, add(7, 5, 6), 7, 16, base + 12)));
    EXPECT_FALSE(chk.failed());
    EXPECT_EQ(chk.refSeq(), 3u);
}

TEST(CoreChecker, RejectsWrongRdValue)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    u64 base = kRamBase;
    EXPECT_FALSE(chk.processEvent(
        commitFor(1, base, addi(5, 0, 7), 5, 8 /* wrong */, base + 4)));
    EXPECT_TRUE(chk.failed());
    EXPECT_EQ(chk.report().field, "rd-value");
    EXPECT_EQ(chk.report().expected, 7u);
    EXPECT_EQ(chk.report().actual, 8u);
    EXPECT_EQ(chk.report().component, "ROB/commit stage");
}

TEST(CoreChecker, RejectsWrongPc)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    EXPECT_FALSE(chk.processEvent(
        commitFor(1, kRamBase + 4, addi(5, 0, 7), 5, 7, kRamBase + 8)));
    EXPECT_EQ(chk.report().field, "pc");
}

TEST(CoreChecker, FailedCheckerRejectsEverything)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    ASSERT_FALSE(chk.processEvent(
        commitFor(1, kRamBase, addi(5, 0, 7), 5, 99, kRamBase + 4)));
    // Subsequent events are rejected without changing the report.
    MismatchReport first = chk.report();
    EXPECT_FALSE(chk.processEvent(
        commitFor(2, kRamBase + 4, addi(6, 0, 9), 6, 9, kRamBase + 8)));
    EXPECT_EQ(chk.report().seq, first.seq);
}

TEST(CoreChecker, SkipCopiesDutValue)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, /*mmio_sync=*/false);
    Event e = commitFor(1, kRamBase, addi(5, 0, 7), 5, 0xAB, kRamBase + 4);
    InstrCommitView(e).set_skip(1);
    EXPECT_TRUE(chk.processEvent(e)); // wrong value but skip => copy
    EXPECT_EQ(chk.ref().xreg(5), 0xABu);
}

TEST(CoreChecker, MmioOracleSynchronizesLoads)
{
    // Program: load from UART status, halt. The commit's rd value is
    // whatever the DUT observed; the MmioEvent makes the REF agree.
    ProgramBuilder b;
    b.li(5, kUartBase + kUartStatus); // 2 instrs (lui+addiw)
    b.emit(lbu(6, 5, 0));             // seq 3
    b.emitHalt(0);
    Program p = b.assemble("mmio");
    CoreChecker chk(0, p, true);

    Event mmio = Event::make(EventType::MmioEvent, 0, 0, 3);
    MmioView mv(mmio);
    mv.set_addr(kUartBase + kUartStatus);
    mv.set_data(0x61);
    mv.set_seqNo(3);
    mv.set_isLoad(1);
    EXPECT_TRUE(chk.processEvent(mmio));

    u64 pc = kRamBase + 8;
    EXPECT_TRUE(chk.processEvent(
        commitFor(3, pc, lbu(6, 5, 0), 6, 0x61, pc + 4)));
    EXPECT_EQ(chk.ref().xreg(6), 0x61u);
}

TEST(CoreChecker, ExceptionArchEventVerified)
{
    ProgramBuilder b;
    b.emit(auipc(28, 0));            // seq 1: x28 = base
    b.emit(addi(28, 28, 0x100));     // seq 2: handler address
    b.emit(csrrw(0, kCsrMtvec, 28)); // seq 3
    b.emit(ecall());                 // seq 4
    Program p = b.assemble("ecall");
    CoreChecker chk(0, p, true);

    u64 pc = kRamBase;
    EXPECT_TRUE(chk.processEvent(
        commitFor(1, pc, auipc(28, 0), 28, pc, pc + 4)));
    EXPECT_TRUE(chk.processEvent(commitFor(2, pc + 4, addi(28, 28, 0x100),
                                           28, pc + 0x100, pc + 8)));
    Event c3 = commitFor(3, pc + 8, csrrw(0, kCsrMtvec, 28), 0, 0,
                         pc + 12);
    EXPECT_TRUE(chk.processEvent(c3)) << chk.report().describe();
    // ecall: retires, redirects to mtvec.
    Event c4 = commitFor(4, pc + 12, 0x73 /*ecall*/, 0, 0, pc + 0x100);
    EXPECT_TRUE(chk.processEvent(c4)) << chk.report().describe();

    Event arch = Event::make(EventType::ArchEvent, 0, 0, 4);
    ArchEventView av(arch);
    av.set_kind(2);
    av.set_cause(kCauseEcallM);
    av.set_seqNo(4);
    EXPECT_TRUE(chk.processEvent(arch)) << chk.report().describe();
    EXPECT_EQ(chk.counters().get("checker.exceptions"), 1u);
}

TEST(CoreChecker, MissedExceptionIsFlagged)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    ASSERT_TRUE(chk.processEvent(
        commitFor(1, kRamBase, addi(5, 0, 7), 5, 7, kRamBase + 4)));
    Event arch = Event::make(EventType::ArchEvent, 0, 0, 1);
    ArchEventView av(arch);
    av.set_kind(2);
    av.set_cause(kCauseEcallM);
    av.set_seqNo(1);
    EXPECT_FALSE(chk.processEvent(arch));
    EXPECT_EQ(chk.report().field, "ref-missed-exception");
}

TEST(CoreChecker, FusedCommitDigestMatches)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    u64 base = kRamBase;
    // Build the fused window covering seqs 1..3 from known values.
    u64 digest = commitDigestTerm(base, addi(5, 0, 7), 7) ^
                 commitDigestTerm(base + 4, addi(6, 0, 9), 9) ^
                 commitDigestTerm(base + 8, add(7, 5, 6), 16);
    Event fc = Event::make(EventType::FusedCommit, 0, 0, 3);
    FusedCommitView v(fc);
    v.set_firstSeq(1);
    v.set_count(3);
    v.set_lastPc(base + 8);
    v.set_nextPc(base + 12);
    v.set_digest(digest);
    EXPECT_TRUE(chk.processEvent(fc)) << chk.report().describe();
    EXPECT_EQ(chk.refSeq(), 3u);
    // The checkpoint boundary lags one window (see lastMarkSeq()).
    EXPECT_EQ(chk.lastMarkSeq(), 0u);
}

TEST(CoreChecker, FusedCommitDigestMismatchReportsWindow)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    Event fc = Event::make(EventType::FusedCommit, 0, 0, 3);
    FusedCommitView v(fc);
    v.set_firstSeq(1);
    v.set_count(3);
    v.set_lastPc(kRamBase + 8);
    v.set_nextPc(kRamBase + 12);
    v.set_digest(0xBAD);
    EXPECT_FALSE(chk.processEvent(fc));
    EXPECT_TRUE(chk.report().fused);
    EXPECT_EQ(chk.report().windowFirstSeq, 1u);
    EXPECT_EQ(chk.report().windowLastSeq, 3u);
    EXPECT_EQ(chk.report().field, "fused-digest");
}

TEST(CoreChecker, ReplayLocalizesInsideFusedWindow)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    u64 base = kRamBase;
    // Fused digest corrupted -> fused-granularity failure.
    Event fc = Event::make(EventType::FusedCommit, 0, 0, 3);
    FusedCommitView v(fc);
    v.set_firstSeq(1);
    v.set_count(3);
    v.set_lastPc(base + 8);
    v.set_nextPc(base + 12);
    v.set_digest(0xBAD);
    ASSERT_FALSE(chk.processEvent(fc));

    // Replay the original per-instruction events, one of them wrong —
    // exactly what a WrongRdValue DUT bug looks like after rollback.
    std::vector<Event> originals;
    originals.push_back(
        commitFor(1, base, addi(5, 0, 7), 5, 7, base + 4));
    originals.push_back(
        commitFor(2, base + 4, addi(6, 0, 9), 6, 0xBAD, base + 8));
    originals.push_back(
        commitFor(3, base + 8, add(7, 5, 6), 7, 16, base + 12));
    EXPECT_TRUE(chk.replayOriginalEvents(originals));
    EXPECT_TRUE(chk.failed());
    EXPECT_TRUE(chk.report().replayed);
    EXPECT_EQ(chk.report().seq, 2u);
    EXPECT_EQ(chk.report().field, "rd-value");
}

TEST(CoreChecker, ReplayCleanWindowKeepsFusedReport)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    Event fc = Event::make(EventType::FusedCommit, 0, 0, 3);
    FusedCommitView v(fc);
    v.set_firstSeq(1);
    v.set_count(3);
    v.set_lastPc(kRamBase + 8);
    v.set_nextPc(kRamBase + 12);
    v.set_digest(0xBAD);
    ASSERT_FALSE(chk.processEvent(fc));

    std::vector<Event> originals;
    originals.push_back(
        commitFor(1, kRamBase, addi(5, 0, 7), 5, 7, kRamBase + 4));
    // Replay passes clean -> the corruption is in the fusion/transport
    // layer; the fused report is kept.
    EXPECT_FALSE(chk.replayOriginalEvents(originals));
    EXPECT_TRUE(chk.failed());
    EXPECT_TRUE(chk.report().fused);
}

TEST(CoreChecker, TrapVerification)
{
    ProgramBuilder b;
    b.emit(addi(10, 0, 0)); // a0 = 0
    b.emit(ebreak());
    Program p = b.assemble("trap");
    CoreChecker chk(0, p, true);
    ASSERT_TRUE(chk.processEvent(
        commitFor(1, kRamBase, addi(10, 0, 0), 10, 0, kRamBase + 4)));
    Event c2 = commitFor(2, kRamBase + 4, ebreak(), 0, 0, kRamBase + 8);
    ASSERT_TRUE(chk.processEvent(c2)) << chk.report().describe();
    Event trap = Event::make(EventType::Trap, 0, 0, 2);
    TrapView tv(trap);
    tv.set_hasTrap(1);
    tv.set_pc(kRamBase + 4);
    tv.set_code(0);
    EXPECT_TRUE(chk.processEvent(trap)) << chk.report().describe();
    EXPECT_TRUE(chk.sawGoodTrap());
}

TEST(CoreChecker, StoreContentCheck)
{
    Program p = tinyProgram();
    CoreChecker chk(0, p, true);
    // Step the REF through the whole store via a content event at the
    // right tag; the checker steps on demand. The li() pseudo expands
    // to 3 instructions, so the store retires as seq 7.
    Event store = Event::make(EventType::StoreEvent, 0, 0, 7);
    StoreView sv(store);
    sv.set_addr(kRamBase + 0x1000);
    sv.set_data(16);
    sv.set_mask(~0ULL);
    sv.set_seqNo(7);
    sv.set_size(3);
    EXPECT_TRUE(chk.processEvent(store)) << chk.report().describe();
    // Wrong data is rejected.
    Event bad = store;
    StoreView(bad).set_data(17);
    EXPECT_FALSE(chk.processEvent(bad));
    EXPECT_EQ(chk.report().field, "store-data");
    EXPECT_EQ(chk.report().component, "store queue");
}

} // namespace
} // namespace dth::checker
