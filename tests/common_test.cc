/**
 * @file
 * Tests for the common substrate: bit utilities, deterministic RNG,
 * byte streams and the table printer. (Stat-registry coverage lives in
 * obs_test.cc.)
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/table.h"

namespace dth {
namespace {

TEST(Bits, Extraction)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 16), 0xDEADu);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 0), 0xBEEFu);
    EXPECT_EQ(bits(0xFF, 3, 0), 0xFu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(bit(0x8, 3), 1u);
    EXPECT_EQ(bit(0x8, 2), 0u);
}

TEST(Bits, SignExtension)
{
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 0x7FF);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x80000000, 32), INT32_MIN);
    EXPECT_EQ(sext(0x7FFFFFFF, 32), INT32_MAX);
    EXPECT_EQ(sext(~0ULL, 64), -1);
}

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
}

TEST(Bits, ByteMask)
{
    EXPECT_EQ(byteMask(1), 0xFFu);
    EXPECT_EQ(byteMask(4), 0xFFFFFFFFu);
    EXPECT_EQ(byteMask(8), ~0ULL);
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespectBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(10), 10u);
        u64 v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Bytes, WriterReaderRoundTrip)
{
    ByteWriter w;
    w.putU8(0xAB);
    w.putU16(0x1234);
    w.putU32(0xDEADBEEF);
    w.putU64(0x0123456789ABCDEF);
    u8 raw[3] = {1, 2, 3};
    w.putBytes(raw, 3);
    w.putZeros(5);
    std::vector<u8> buf = w.take();

    ByteReader r(buf);
    EXPECT_EQ(r.getU8(), 0xAB);
    EXPECT_EQ(r.getU16(), 0x1234);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFu);
    auto bytes = r.getBytes(3);
    EXPECT_EQ(bytes[2], 3);
    r.skip(5);
    EXPECT_TRUE(r.atEnd());
}

TEST(Bytes, LittleEndianOnWire)
{
    ByteWriter w;
    w.putU32(0x11223344);
    EXPECT_EQ(w.bytes()[0], 0x44);
    EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(Bytes, UnderrunPanics)
{
    std::vector<u8> buf = {1, 2};
    ByteReader r(buf);
    EXPECT_DEATH(r.getU32(), "underrun");
}

TEST(Bytes, ExternalBufferWriter)
{
    std::vector<u8> sink;
    ByteWriter w(&sink);
    w.putU16(7);
    EXPECT_EQ(sink.size(), 2u);
}

TEST(Table, RenderAligned)
{
    TextTable t({"col", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRender)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, ArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Formatting, HumanReadable)
{
    EXPECT_EQ(fmtHz(478e3), "478.0 KHz");
    EXPECT_EQ(fmtHz(7.8e6), "7.80 MHz");
    EXPECT_EQ(fmtHz(12), "12.0 Hz");
    EXPECT_EQ(fmtPercent(0.984), "98.4%");
    EXPECT_EQ(fmtSeconds(39600), "11.0 h");
    EXPECT_EQ(fmtSeconds(5.2e6), "60.2 days");
    EXPECT_EQ(fmtSeconds(90), "1.5 min");
    EXPECT_EQ(fmtSeconds(0.01), "10.00 ms");
}

} // namespace
} // namespace dth
