/**
 * @file
 * Chaos variant of the cosim soak suite: end-to-end runs with link
 * fault injection enabled. The contract under test is the hard
 * requirement from DESIGN.md §9 — under any injected fault pattern the
 * recovered run's final verdict AND its checked-event stream are
 * bit-identical to the fault-free run's, in both the serial and the
 * threaded host runtimes; and when the fault budget is exhausted the
 * run ends in a structured degraded result, never an abort.
 */

#include <gtest/gtest.h>

#include "cosim/cosim.h"
#include "workload/generators.h"

namespace dth::cosim {
namespace {

workload::Program
chaosWorkload(u64 seed)
{
    workload::WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = 120 + seed % 41;
    opts.bodyLength = 32 + seed % 17;
    switch (seed % 3) {
      case 0: return workload::makeBootLike(opts);
      case 1: return workload::makeComputeLike(opts);
      default: return workload::makeIoHeavy(opts);
    }
}

/** FNV-1a digest over the checked-event stream, order-sensitive. */
struct EventDigest
{
    u64 hash = 0xCBF29CE484222325ull;
    u64 events = 0;

    void
    mix(u64 v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (i * 8)) & 0xFF;
            hash *= 0x100000001B3ull;
        }
    }

    void
    operator()(const Event &e)
    {
        ++events;
        mix(static_cast<u64>(e.type));
        mix(e.core);
        mix(e.index);
        mix(e.commitSeq);
        mix(e.emitSeq);
        for (u8 b : e.payload)
            mix(b);
    }
};

struct ChaosRun
{
    CosimResult result;
    u64 digest = 0;
    u64 checkedEvents = 0;
};

ChaosRun
runOnce(u64 seed, OptLevel level, bool chaos, unsigned host_threads,
        double rate = 0.04)
{
    workload::Program p = chaosWorkload(seed);
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(level);
    cfg.seed = seed * 17 + 3;
    cfg.hostThreads = host_threads;
    if (chaos) {
        // Same injector seed for every runtime: the fault pattern is a
        // pure function of (seed, transfer order).
        cfg.linkFaults = link::LinkFaultConfig::allKinds(rate, seed + 1);
    }
    CoSimulator sim(cfg, p);
    ChaosRun run;
    EventDigest digest;
    sim.setCheckedTap([&digest](const Event &e) { digest(e); });
    run.result = sim.run(3'000'000);
    run.digest = digest.hash;
    run.checkedEvents = digest.events;
    return run;
}

class ChaosEquivalence : public ::testing::TestWithParam<u64>
{};

TEST_P(ChaosEquivalence, RecoveredRunMatchesFaultFreeBitExactly)
{
    u64 seed = GetParam();
    for (OptLevel level : {OptLevel::Z, OptLevel::BNSD}) {
        ChaosRun clean = runOnce(seed, level, false, 0);
        ASSERT_TRUE(clean.result.verified)
            << "fault-free baseline failed: "
            << clean.result.mismatch.describe();
        ASSERT_TRUE(clean.result.goodTrap);

        ChaosRun serial = runOnce(seed, level, true, 0);
        ChaosRun threaded = runOnce(seed, level, true, 2);

        for (const ChaosRun *run : {&serial, &threaded}) {
            const CosimResult &r = run->result;
            // The whole point: faults were injected, recovery ran, and
            // the verdict plus the checked stream are bit-identical to
            // the fault-free run.
            ASSERT_LT(r.linkReport.degradeLevel, 2u)
                << r.linkReport.describe();
            EXPECT_GT(r.linkReport.faultsInjected, 0u)
                << "chaos run injected nothing; the test is vacuous";
            EXPECT_EQ(r.verified, clean.result.verified);
            EXPECT_EQ(r.goodTrap, clean.result.goodTrap);
            EXPECT_EQ(r.cycles, clean.result.cycles);
            EXPECT_EQ(r.instrs, clean.result.instrs);
            EXPECT_EQ(run->checkedEvents, clean.checkedEvents);
            EXPECT_EQ(run->digest, clean.digest)
                << "checked-event stream diverged under faults, seed "
                << seed << " level " << optLevelName(level);
        }

        // Serial and threaded chaos runs see the identical fault
        // pattern and recovery history.
        EXPECT_EQ(serial.result.linkReport.faultsInjected,
                  threaded.result.linkReport.faultsInjected);
        EXPECT_EQ(serial.result.linkReport.naksSent,
                  threaded.result.linkReport.naksSent);
        EXPECT_EQ(serial.result.linkReport.retxFrames,
                  threaded.result.linkReport.retxFrames);
        EXPECT_EQ(serial.result.linkReport.timeouts,
                  threaded.result.linkReport.timeouts);
        EXPECT_EQ(serial.result.linkReport.staleDiscards,
                  threaded.result.linkReport.staleDiscards);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosEquivalence,
                         ::testing::Values(11, 23, 37, 58));

TEST(ChaosDegradation, BudgetExhaustionYieldsStructuredFailure)
{
    // A hopeless link (every attempt stalls) exhausts the budget after
    // a handful of fallback deliveries. The run must end with a
    // structured degraded result: verified=false, degrade level 2, a
    // populated ChannelReport — and no abort.
    for (unsigned host_threads : {0u, 2u}) {
        workload::Program p = chaosWorkload(5);
        CosimConfig cfg;
        cfg.dut = dut::xsDefaultConfig();
        cfg.platform = link::palladiumPlatform();
        cfg.applyOptLevel(OptLevel::BNSD);
        cfg.seed = 99;
        cfg.hostThreads = host_threads;
        cfg.linkFaults.enabled = true;
        cfg.linkFaults.stallRate = 1.0;
        cfg.linkFaults.seed = 7;
        cfg.linkFaults.maxAttempts = 2;
        cfg.linkFaults.unrecoverableBudget = 3;
        CoSimulator sim(cfg, p);
        CosimResult r = sim.run(3'000'000);
        EXPECT_FALSE(r.verified) << "dead link must not verify";
        EXPECT_FALSE(r.goodTrap);
        EXPECT_TRUE(r.linkDegraded);
        EXPECT_EQ(r.linkDegradeLevel, 2u);
        EXPECT_TRUE(r.linkReport.failed());
        EXPECT_EQ(r.linkReport.unrecovered,
                  cfg.linkFaults.unrecoverableBudget + 1);
        EXPECT_EQ(r.linkReport.fallbacks, cfg.linkFaults.unrecoverableBudget);
        EXPECT_FALSE(r.linkReport.describe().empty());
    }
}

TEST(ChaosDegradation, FallbackWithinBudgetStillVerifies)
{
    // Stall bursts that exhaust maxAttempts but stay within the budget:
    // the degraded blocking handshake delivers intact frames, the run
    // verifies, and the result reports degrade level 1.
    workload::Program p = chaosWorkload(2);
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(OptLevel::BNSD);
    cfg.seed = 41;
    cfg.linkFaults.enabled = true;
    cfg.linkFaults.stallRate = 0.55; // ~30% of frames exhaust 2 attempts
    cfg.linkFaults.seed = 13;
    cfg.linkFaults.maxAttempts = 2;
    cfg.linkFaults.unrecoverableBudget = 1u << 20;
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(3'000'000);
    ASSERT_LT(r.linkReport.degradeLevel, 2u) << r.linkReport.describe();
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
    EXPECT_GT(r.linkReport.fallbacks, 0u)
        << "no fallback engaged; the test is vacuous";
    EXPECT_TRUE(r.linkDegraded);
    EXPECT_EQ(r.linkDegradeLevel, 1u);
}

TEST(ChaosStats, LinkCountersReachTheRunSnapshot)
{
    ChaosRun run = runOnce(11, OptLevel::BNSD, true, 0, 0.06);
    const auto &ints = run.result.counters.integers();
    ASSERT_TRUE(ints.count("link.frames"));
    EXPECT_GT(ints.at("link.frames"), 0);
    ASSERT_TRUE(ints.count("link.fault.injected"));
    EXPECT_GT(ints.at("link.fault.injected"), 0);
    // Schema is fault-independent: present even if never incremented.
    EXPECT_TRUE(ints.count("link.retx.unrecovered"));
    EXPECT_TRUE(ints.count("link.nak.sent"));
    EXPECT_TRUE(ints.count("link.degrade_level"));
    EXPECT_TRUE(run.result.counters.hists().count("link.retx.attempts"));
}

TEST(ChaosStats, FaultFreeRunsCarryZeroedLinkSchema)
{
    // With injection disabled the channel still frames everything, so
    // the schema and the frame counters are live but every fault
    // counter is zero.
    ChaosRun run = runOnce(11, OptLevel::BNSD, false, 0);
    ASSERT_TRUE(run.result.verified);
    const auto &ints = run.result.counters.integers();
    ASSERT_TRUE(ints.count("link.frames"));
    EXPECT_GT(ints.at("link.frames"), 0);
    EXPECT_EQ(ints.at("link.fault.injected"), 0);
    EXPECT_EQ(ints.at("link.nak.sent"), 0);
    EXPECT_EQ(ints.at("link.retx.frames"), 0);
    EXPECT_EQ(ints.at("link.degrade_level"), 0);
}

} // namespace
} // namespace dth::cosim
