/**
 * @file
 * Soak and integrity tests for the full pipeline: seed sweeps across
 * optimization levels, stressed packet sizes, the Verilator platform
 * preset, and wire-integrity checks (a corrupted transfer must never
 * pass silently).
 */

#include <gtest/gtest.h>

#include "cosim/cosim.h"
#include "pack/packer.h"
#include "tuning/analysis.h"
#include "workload/generators.h"

namespace dth::cosim {
namespace {

workload::Program
mixedWorkload(u64 seed)
{
    workload::WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = 150 + seed % 97;
    opts.bodyLength = 40 + seed % 31;
    switch (seed % 4) {
      case 0: return workload::makeBootLike(opts);
      case 1: return workload::makeComputeLike(opts);
      case 2: return workload::makeVectorLike(opts);
      default: return workload::makeIoHeavy(opts);
    }
}

class SoakTest : public ::testing::TestWithParam<u64>
{};

TEST_P(SoakTest, FullStackRunsCleanAcrossSeeds)
{
    u64 seed = GetParam();
    workload::Program p = mixedWorkload(seed);
    for (OptLevel level : {OptLevel::Z, OptLevel::BNSD}) {
        CosimConfig cfg;
        cfg.dut = (seed % 3 == 0) ? dut::xsDualConfig()
                                  : dut::xsDefaultConfig();
        cfg.platform = (seed % 2 == 0) ? link::palladiumPlatform()
                                       : link::fpgaPlatform();
        cfg.applyOptLevel(level);
        cfg.seed = seed * 31 + 7;
        CoSimulator sim(cfg, p);
        CosimResult r = sim.run(3'000'000);
        EXPECT_TRUE(r.verified)
            << "seed " << seed << " level " << optLevelName(level)
            << ": " << r.mismatch.describe();
        EXPECT_TRUE(r.goodTrap) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

TEST(CosimStress, TinyPacketsForceSplitsEverywhere)
{
    workload::Program p = mixedWorkload(3);
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(OptLevel::BNSD);
    cfg.packetBytes = 3000; // barely fits the largest event
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(3'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
}

TEST(CosimStress, ShallowFusionWindows)
{
    workload::Program p = mixedWorkload(0);
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(OptLevel::BNSD);
    cfg.maxFuse = 2;
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(3'000'000);
    EXPECT_TRUE(r.goodTrap) << r.mismatch.describe();
    EXPECT_NEAR(r.fusionRatio, 2.0, 0.2);
}

TEST(CosimStress, VerilatorPlatformPreset)
{
    workload::Program p = mixedWorkload(1);
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::verilatorPlatform(57.6, 16);
    cfg.applyOptLevel(OptLevel::BNSD);
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(3'000'000);
    EXPECT_TRUE(r.goodTrap) << r.mismatch.describe();
    // On a software simulator the DUT itself is the bottleneck: the
    // co-simulation runs within ~25% of the RTL-only speed.
    EXPECT_GT(r.simSpeedHz, 0.75 * link::verilatorHz(57.6, 16));
    EXPECT_LT(r.simSpeedHz, link::verilatorHz(57.6, 16) * 1.01);
}

TEST(CosimStress, ReplayDisabledStillDetects)
{
    workload::Program p = mixedWorkload(0);
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(OptLevel::BNSD);
    cfg.enableReplay = false;
    CoSimulator sim(cfg, p);
    dut::FaultSpec fault;
    fault.archetype = dut::BugArchetype::WrongRdValue;
    fault.triggerSeq = 3000;
    sim.armFault(fault);
    CosimResult r = sim.run(3'000'000);
    EXPECT_FALSE(r.verified);
    EXPECT_FALSE(r.replayRan);
    // Detection still happens, but only at fused granularity.
    EXPECT_FALSE(r.mismatch.replayed);
}

// ---------------------------------------------------------------------------
// Wire integrity: corruption in transit must never pass silently.
// ---------------------------------------------------------------------------

TEST(WireIntegrity, CorruptedPayloadByteIsDetectedByChecker)
{
    // Capture a clean monitor stream, corrupt one InstrCommit payload
    // byte inside a packed transfer, and verify the checking pipeline
    // reports a mismatch rather than passing.
    workload::WorkloadOptions opts;
    opts.seed = 4;
    opts.iterations = 100;
    opts.bodyLength = 32;
    workload::Program p = workload::makeComputeLike(opts);

    tuning::DutTrace trace;
    {
        CosimConfig cfg;
        cfg.dut = dut::xsDefaultConfig();
        cfg.platform = link::palladiumPlatform();
        cfg.applyOptLevel(OptLevel::Z);
        CoSimulator sim(cfg, p);
        sim.setMonitorTap([&trace](const CycleEvents &ce) {
            trace.cycles.push_back(ce);
        });
        ASSERT_TRUE(sim.run(2'000'000).goodTrap);
    }

    // Pack, corrupt, unpack, check.
    BatchPacker packer(4096);
    std::vector<Transfer> transfers;
    u64 emit = 0;
    for (CycleEvents &ce : trace.cycles) {
        for (Event &e : ce.events)
            e.emitSeq = emit++;
        packer.packCycle(ce, transfers);
    }
    packer.flush(transfers);
    ASSERT_GT(transfers.size(), 10u);
    // Flip the pc byte of the first commit event in a mid-stream packet
    // (reserved padding bytes are legitimately unchecked, so the test
    // targets a load-bearing field).
    bool corrupted = false;
    for (size_t ti = transfers.size() / 2;
         ti < transfers.size() && !corrupted; ++ti) {
        Transfer &victim = transfers[ti];
        ByteReader header(victim.bytes);
        u16 meta_count = header.getU16();
        // First meta: typeId at offset 8.
        size_t meta_base = 8;
        size_t payload_base = meta_base + meta_count * 4;
        if (victim.bytes[meta_base] ==
            static_cast<u8>(EventType::InstrCommit)) {
            // Event body: u32 seq, u32 emit, u8 index, payload(pc at 0).
            victim.bytes[payload_base + 9] ^= 0x04;
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted);

    BatchUnpacker unpacker;
    SquashCompleter completer(1);
    Reorderer reorderer(1);
    checker::CoreChecker chk(0, p, true);
    bool failed = false;
    for (const Transfer &t : transfers) {
        for (Event &e : unpacker.unpack(t))
            reorderer.push(completer.complete(e));
        for (Event &e : reorderer.drain()) {
            if (!chk.processEvent(e)) {
                failed = true;
                break;
            }
        }
        if (failed)
            break;
    }
    EXPECT_TRUE(failed) << "corrupted transfer passed verification";
}

TEST(WireIntegrity, TruncatedBatchPacketFailsGracefully)
{
    // Transfer bytes are externally-supplied input: a truncated packet
    // must be rejected with a structured error, never an abort, and the
    // output vector must be left untouched.
    BatchPacker packer(4096);
    CycleEvents ce;
    ce.cycle = 0;
    ce.events.push_back(Event::make(EventType::InstrCommit, 0, 0, 1));
    std::vector<Transfer> transfers;
    packer.packCycle(ce, transfers);
    packer.flush(transfers);
    ASSERT_EQ(transfers.size(), 1u);
    transfers[0].bytes.resize(transfers[0].bytes.size() - 10);
    BatchUnpacker unpacker;
    std::vector<Event> out;
    EXPECT_FALSE(unpacker.unpackInto(transfers[0], out));
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(unpacker.error().empty());
}

} // namespace
} // namespace dth::cosim
