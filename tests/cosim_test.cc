/**
 * @file
 * End-to-end co-simulation tests: every workload must verify clean
 * ("HIT GOOD TRAP") under every optimization level, injected bugs must
 * be detected, and Replay must restore instruction-level localization
 * after fusion.
 */

#include <gtest/gtest.h>

#include "cosim/cosim.h"
#include "workload/generators.h"

namespace dth::cosim {
namespace {

using dut::BugArchetype;
using dut::FaultSpec;
using workload::Program;
using workload::WorkloadOptions;

Program
workloadByName(const std::string &kind, u64 seed, unsigned iterations)
{
    WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = iterations;
    opts.bodyLength = 48;
    if (kind == "microbench")
        return workload::makeMicrobench(opts);
    if (kind == "boot")
        return workload::makeBootLike(opts);
    if (kind == "compute")
        return workload::makeComputeLike(opts);
    if (kind == "vector")
        return workload::makeVectorLike(opts);
    return workload::makeIoHeavy(opts);
}

const char *
optShortName(int level)
{
    switch (level) {
      case 0: return "Z";
      case 1: return "B";
      case 2: return "BN";
      default: return "BNSD";
    }
}

CosimConfig
makeConfig(OptLevel level, dut::DutConfig dut_config)
{
    CosimConfig cfg;
    cfg.dut = std::move(dut_config);
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(level);
    return cfg;
}

class OptLevelWorkloadTest
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{};

TEST_P(OptLevelWorkloadTest, RunsCleanToGoodTrap)
{
    auto [level_int, kind] = GetParam();
    auto level = static_cast<OptLevel>(level_int);
    Program p = workloadByName(kind, 42, 300);
    CosimConfig cfg = makeConfig(level, dut::xsDefaultConfig());
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(2'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap) << optLevelName(level) << "/" << kind;
    EXPECT_GT(r.instrs, 1000u);
    EXPECT_GT(r.simSpeedHz, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, OptLevelWorkloadTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values("microbench", "boot", "compute",
                                         "vector", "io")),
    [](const auto &info) {
        return std::string(optShortName(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param);
    });

TEST(Cosim, NutShellConfigRunsClean)
{
    Program p = workloadByName("boot", 7, 300);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, dut::nutshellConfig());
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(3'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
}

TEST(Cosim, XsMinimalWithSampledRegStateRunsClean)
{
    // The 2-wide configuration samples its register-state monitors at a
    // lower rate (regStateInterval=3): snapshots arrive with sparse
    // order tags and must still check exactly.
    Program p = workloadByName("boot", 8, 300);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, dut::xsMinimalConfig());
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(3'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
    EXPECT_GT(r.counters.get("checker.csr_states"), 100u);
}

TEST(Cosim, DualCoreRunsClean)
{
    Program p = workloadByName("boot", 9, 200);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, dut::xsDualConfig());
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(2'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
    EXPECT_GT(sim.dutModel().instrsRetired(1), 1000u);
}

TEST(Cosim, FixedOffsetPackingRunsClean)
{
    Program p = workloadByName("boot", 11, 200);
    CosimConfig cfg = makeConfig(OptLevel::B, dut::xsDefaultConfig());
    cfg.fixedOffsetPacking = true;
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(2'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
    EXPECT_GT(r.bubbleFraction, 0.2);
}

TEST(Cosim, OrderCoupledFusionRunsClean)
{
    Program p = workloadByName("io", 13, 200);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, dut::xsDefaultConfig());
    cfg.orderCoupledFusion = true;
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(2'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
}

TEST(Cosim, SquashImprovesfusionRatioOverOrderCoupled)
{
    Program p = workloadByName("io", 13, 300);
    CosimConfig decoupled = makeConfig(OptLevel::BNSD,
                                       dut::xsDefaultConfig());
    CosimConfig coupled = decoupled;
    coupled.orderCoupledFusion = true;
    CosimResult rd = CoSimulator(decoupled, p).run(2'000'000);
    CosimResult rc = CoSimulator(coupled, p).run(2'000'000);
    ASSERT_TRUE(rd.goodTrap);
    ASSERT_TRUE(rc.goodTrap);
    EXPECT_GT(rd.fusionRatio, 2.0 * rc.fusionRatio);
}

TEST(Cosim, BaselineTrafficMatchesPaperScale)
{
    // Paper §2.2: ~15 communications and ~1.2 KB per cycle on XiangShan.
    Program p = workloadByName("boot", 21, 300);
    CosimConfig cfg = makeConfig(OptLevel::Z, dut::xsDefaultConfig());
    CoSimulator sim(cfg, p);
    CosimResult r = sim.run(2'000'000);
    ASSERT_TRUE(r.goodTrap);
    EXPECT_GT(r.invokesPerCycle, 3.5);
    EXPECT_LT(r.invokesPerCycle, 30.0);
    EXPECT_GT(r.bytesPerCycle, 600.0);
    EXPECT_LT(r.bytesPerCycle, 2500.0);
}

TEST(Cosim, SquashReducesBytesDramatically)
{
    Program p = workloadByName("boot", 21, 300);
    CosimConfig base = makeConfig(OptLevel::BN, dut::xsDefaultConfig());
    CosimConfig full = makeConfig(OptLevel::BNSD, dut::xsDefaultConfig());
    CosimResult rb = CoSimulator(base, p).run(2'000'000);
    CosimResult rf = CoSimulator(full, p).run(2'000'000);
    ASSERT_TRUE(rb.goodTrap);
    ASSERT_TRUE(rf.goodTrap);
    EXPECT_LT(rf.bytesPerCycle, rb.bytesPerCycle / 5.0);
}

// ---------------------------------------------------------------------------
// Bug detection and Replay localization.
// ---------------------------------------------------------------------------

struct BugCase
{
    BugArchetype archetype;
    const char *workload;
};

class BugDetectionTest : public ::testing::TestWithParam<BugCase>
{};

TEST_P(BugDetectionTest, DetectedUnfused)
{
    const BugCase &bc = GetParam();
    Program p = workloadByName(bc.workload, 5, 2000);
    CosimConfig cfg = makeConfig(OptLevel::BN, dut::xsDefaultConfig());
    CoSimulator sim(cfg, p);
    FaultSpec fault;
    fault.archetype = bc.archetype;
    fault.triggerSeq = 5000;
    sim.armFault(fault);
    CosimResult r = sim.run(4'000'000);
    ASSERT_TRUE(sim.dutModel().faultOutcome().fired)
        << dut::bugArchetypeName(bc.archetype);
    EXPECT_FALSE(r.verified) << dut::bugArchetypeName(bc.archetype);
    EXPECT_GE(r.mismatch.seq, fault.triggerSeq);
}

TEST_P(BugDetectionTest, DetectedFusedAndLocalizedByReplay)
{
    const BugCase &bc = GetParam();
    Program p = workloadByName(bc.workload, 5, 2000);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, dut::xsDefaultConfig());
    CoSimulator sim(cfg, p);
    FaultSpec fault;
    fault.archetype = bc.archetype;
    fault.triggerSeq = 5000;
    sim.armFault(fault);
    CosimResult r = sim.run(4'000'000);
    const dut::FaultOutcome &outcome = sim.dutModel().faultOutcome();
    ASSERT_TRUE(outcome.fired) << dut::bugArchetypeName(bc.archetype);
    EXPECT_FALSE(r.verified) << dut::bugArchetypeName(bc.archetype);
    // Replay restores instruction-level detail: the reported failure
    // must sit at (or just after) the injection point, not at a fused
    // window boundary tens of instructions later.
    EXPECT_GE(r.mismatch.seq, outcome.firedSeq);
    EXPECT_FALSE(r.mismatch.fused) << r.mismatch.describe();
    if (r.replayRan) {
        EXPECT_TRUE(r.mismatch.replayed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Archetypes, BugDetectionTest,
    ::testing::Values(
        BugCase{BugArchetype::WrongRdValue, "boot"},
        BugCase{BugArchetype::CsrCorruption, "boot"},
        BugCase{BugArchetype::StoreDataCorruption, "boot"},
        BugCase{BugArchetype::RefillCorruption, "compute"},
        BugCase{BugArchetype::VectorLaneCorruption, "vector"},
        BugCase{BugArchetype::VtypeCorruption, "vector"},
        BugCase{BugArchetype::LostInterrupt, "boot"}),
    [](const auto &info) {
        std::string name = dut::bugArchetypeName(info.param.archetype);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(CosimReplay, WrongRdValueLocalizedToExactInstruction)
{
    Program p = workloadByName("compute", 3, 2000);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, dut::xsDefaultConfig());
    CoSimulator sim(cfg, p);
    FaultSpec fault;
    fault.archetype = BugArchetype::WrongRdValue;
    fault.triggerSeq = 9000;
    sim.armFault(fault);
    CosimResult r = sim.run(4'000'000);
    ASSERT_TRUE(sim.dutModel().faultOutcome().fired);
    ASSERT_FALSE(r.verified);
    ASSERT_TRUE(r.replayRan);
    EXPECT_TRUE(r.replayComplete);
    EXPECT_TRUE(r.mismatch.replayed);
    // Exact localization: the faulty instruction itself.
    EXPECT_EQ(r.mismatch.seq, sim.dutModel().faultOutcome().firedSeq);
    EXPECT_EQ(r.mismatch.field, "rd-value");
}

} // namespace
} // namespace dth::cosim
