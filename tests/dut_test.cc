/**
 * @file
 * Tests for the DUT model: configuration presets, monitor-stream
 * invariants (emission ordering, event gating, order tags), the
 * microarchitectural texture models, and the fault archetypes.
 */

#include <gtest/gtest.h>

#include "dut/dut.h"
#include "dut/texture.h"
#include "workload/generators.h"

namespace dth::dut {
namespace {

workload::Program
bootProgram(unsigned iterations = 200, u64 seed = 17)
{
    workload::WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = iterations;
    opts.bodyLength = 48;
    return workload::makeBootLike(opts);
}

TEST(DutConfig, PresetsMatchPaperTable4)
{
    auto ns = nutshellConfig();
    EXPECT_EQ(ns.cores, 1u);
    EXPECT_EQ(ns.commitWidth, 1u);
    EXPECT_EQ(ns.enabledEventTypes(), 6u);
    EXPECT_DOUBLE_EQ(ns.gatesMillions, 0.6);

    auto xsm = xsMinimalConfig();
    EXPECT_EQ(xsm.commitWidth, 2u);
    EXPECT_EQ(xsm.enabledEventTypes(), 32u);
    EXPECT_DOUBLE_EQ(xsm.gatesMillions, 39.4);

    auto xs = xsDefaultConfig();
    EXPECT_EQ(xs.commitWidth, 6u);
    EXPECT_DOUBLE_EQ(xs.gatesMillions, 57.6);

    auto dual = xsDualConfig();
    EXPECT_EQ(dual.cores, 2u);
    EXPECT_DOUBLE_EQ(dual.gatesMillions, 111.8);
}

TEST(DutModel, OnlyEnabledEventTypesAreEmitted)
{
    workload::Program p = bootProgram();
    DutModel dm(nutshellConfig(), p);
    while (!dm.done() && dm.cycles() < 200000) {
        CycleEvents ce = dm.cycle();
        for (const Event &e : ce.events)
            EXPECT_TRUE(nutshellConfig().enabled(e.type))
                << e.info().name;
    }
    EXPECT_TRUE(dm.done());
}

TEST(DutModel, CommitSeqTagsAreMonotonePerCore)
{
    workload::Program p = bootProgram();
    DutModel dm(xsDefaultConfig(), p);
    u64 last_commit_seq = 0;
    while (!dm.done() && dm.cycles() < 200000) {
        CycleEvents ce = dm.cycle();
        for (const Event &e : ce.events) {
            if (e.type == EventType::InstrCommit) {
                EXPECT_EQ(e.commitSeq, last_commit_seq + 1);
                last_commit_seq = e.commitSeq;
            }
        }
    }
}

TEST(DutModel, NdeEventsPrecedeTheirCommitInEmissionOrder)
{
    workload::Program p = bootProgram(400);
    DutModel dm(xsDefaultConfig(), p);
    while (!dm.done() && dm.cycles() < 400000) {
        CycleEvents ce = dm.cycle();
        // Within a cycle: any MmioEvent with tag k must appear before
        // the InstrCommit with seq k.
        std::map<u64, size_t> commit_pos;
        for (size_t i = 0; i < ce.events.size(); ++i)
            if (ce.events[i].type == EventType::InstrCommit)
                commit_pos[ce.events[i].commitSeq] = i;
        for (size_t i = 0; i < ce.events.size(); ++i) {
            const Event &e = ce.events[i];
            if (e.type == EventType::MmioEvent ||
                e.type == EventType::LrScEvent) {
                auto it = commit_pos.find(e.commitSeq);
                if (it != commit_pos.end()) {
                    EXPECT_LT(i, it->second) << e.describe();
                }
            }
        }
    }
}

TEST(DutModel, TrapEmittedExactlyOnceAtCompletion)
{
    workload::Program p = bootProgram();
    DutModel dm(xsDefaultConfig(), p);
    unsigned traps = 0;
    u64 code = 1;
    while (!dm.done() && dm.cycles() < 400000) {
        CycleEvents ce = dm.cycle();
        for (const Event &e : ce.events) {
            if (e.type == EventType::Trap) {
                ++traps;
                code = TrapView(e).code();
            }
        }
    }
    EXPECT_EQ(traps, 1u);
    EXPECT_EQ(code, 0u);
    // Once done, further cycles produce nothing.
    CycleEvents after = dm.cycle();
    EXPECT_TRUE(after.empty());
}

TEST(DutModel, DualCoreEmitsBothCores)
{
    workload::Program p = bootProgram();
    DutModel dm(xsDualConfig(), p);
    bool saw[2] = {false, false};
    while (!dm.done() && dm.cycles() < 400000) {
        CycleEvents ce = dm.cycle();
        for (const Event &e : ce.events)
            saw[e.core] = true;
    }
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
    EXPECT_GT(dm.instrsRetired(0), 1000u);
    EXPECT_GT(dm.instrsRetired(1), 1000u);
    EXPECT_EQ(dm.totalInstrsRetired(),
              dm.instrsRetired(0) + dm.instrsRetired(1));
}

TEST(DutModel, DeterministicEventStream)
{
    workload::Program p = bootProgram(60);
    DutModel a(xsDefaultConfig(), p, 99);
    DutModel b(xsDefaultConfig(), p, 99);
    for (int i = 0; i < 5000 && !a.done(); ++i) {
        CycleEvents ea = a.cycle();
        CycleEvents eb = b.cycle();
        ASSERT_EQ(ea.events.size(), eb.events.size()) << "cycle " << i;
        for (size_t j = 0; j < ea.events.size(); ++j)
            ASSERT_TRUE(ea.events[j] == eb.events[j]);
    }
}

TEST(DutModel, SeedChangesSchedule)
{
    workload::Program p = bootProgram(60);
    DutModel a(xsDefaultConfig(), p, 1);
    DutModel b(xsDefaultConfig(), p, 2);
    while (!a.done())
        a.cycle();
    while (!b.done())
        b.cycle();
    // Different commit schedules shift interrupt arrival (and thus the
    // handler invocation count), so only the cycle counts are compared.
    EXPECT_NE(a.cycles(), b.cycles());
    EXPECT_NEAR(static_cast<double>(a.instrsRetired(0)),
                static_cast<double>(b.instrsRetired(0)),
                0.05 * a.instrsRetired(0));
}

TEST(CacheModel, HitsAfterWarmup)
{
    CacheModel cache(16, 2);
    EXPECT_FALSE(cache.access(0x1000)); // cold miss
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1008)); // same line
    EXPECT_FALSE(cache.access(0x2000));
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.accesses(), 4u);
}

TEST(CacheModel, LruEviction)
{
    CacheModel cache(1, 2, 64); // one set, two ways
    cache.access(0x0000);
    cache.access(0x1000);
    cache.access(0x0000);       // refresh way 0
    EXPECT_FALSE(cache.access(0x2000)); // evicts 0x1000
    EXPECT_TRUE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x1000)); // was evicted
}

TEST(TlbModel, PageGranularity)
{
    TlbModel tlb(16);
    EXPECT_FALSE(tlb.access(0x80001000));
    EXPECT_TRUE(tlb.access(0x80001FFF)); // same page
    EXPECT_FALSE(tlb.access(0x80002000));
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(SbufferModel, FlushOnThresholdAndLineChange)
{
    SbufferModel sbuf(4);
    u64 line = 0;
    EXPECT_FALSE(sbuf.store(0x100, &line));
    EXPECT_FALSE(sbuf.store(0x108, &line));
    EXPECT_FALSE(sbuf.store(0x110, &line));
    EXPECT_TRUE(sbuf.store(0x118, &line)); // 4th store flushes
    EXPECT_EQ(line, 0x100u);
    // Line change flushes the pending line.
    EXPECT_FALSE(sbuf.store(0x200, &line));
    EXPECT_TRUE(sbuf.store(0x300, &line));
    EXPECT_EQ(line, 0x200u);
}

TEST(Faults, EveryArchetypeFiresOnSuitableWorkload)
{
    struct Case
    {
        BugArchetype archetype;
        bool vector;
        bool compute;
    } cases[] = {
        {BugArchetype::WrongRdValue, false, false},
        {BugArchetype::CsrCorruption, false, false},
        {BugArchetype::StoreDataCorruption, false, false},
        {BugArchetype::RefillCorruption, false, true},
        {BugArchetype::VectorLaneCorruption, true, false},
        {BugArchetype::VtypeCorruption, true, false},
        {BugArchetype::LostInterrupt, false, false},
    };
    for (const Case &c : cases) {
        workload::WorkloadOptions opts;
        opts.seed = 9;
        opts.iterations = 1500;
        opts.bodyLength = 48;
        workload::Program p =
            c.vector ? workload::makeVectorLike(opts)
                     : (c.compute ? workload::makeComputeLike(opts)
                                  : workload::makeBootLike(opts));
        DutModel dm(xsDefaultConfig(), p);
        FaultSpec fault;
        fault.archetype = c.archetype;
        fault.triggerSeq = 2000;
        dm.armFault(fault);
        while (!dm.done() && dm.cycles() < 500000)
            dm.cycle();
        EXPECT_TRUE(dm.faultOutcome().fired)
            << bugArchetypeName(c.archetype);
        EXPECT_GE(dm.faultOutcome().firedSeq, fault.triggerSeq)
            << bugArchetypeName(c.archetype);
    }
}

TEST(Faults, SecondArmPanics)
{
    workload::Program p = bootProgram(10);
    DutModel dm(xsDefaultConfig(), p);
    FaultSpec fault;
    fault.archetype = BugArchetype::WrongRdValue;
    dm.armFault(fault);
    EXPECT_DEATH(dm.armFault(fault), "one fault");
}

TEST(DutModel, RawVolumeScalesWithConfig)
{
    workload::Program p = bootProgram(150);
    auto volume = [&p](const DutConfig &cfg) {
        DutModel dm(cfg, p);
        u64 bytes = 0;
        while (!dm.done() && dm.cycles() < 400000) {
            CycleEvents ce = dm.cycle();
            bytes += ce.totalBytes();
        }
        return static_cast<double>(bytes) / dm.instrsRetired(0);
    };
    double ns = volume(nutshellConfig());
    double xsm = volume(xsMinimalConfig());
    double xs = volume(xsDefaultConfig());
    double dual = volume(xsDualConfig());
    // Paper Table 4 ordering: 93 < 692 < 1437 < 3025.
    EXPECT_LT(ns, xsm);
    EXPECT_LT(xsm, xs);
    EXPECT_LT(xs, dual);
    EXPECT_NEAR(dual / xs, 2.0, 0.25);
}

} // namespace
} // namespace dth::dut
