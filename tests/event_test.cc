/**
 * @file
 * Tests for the verification-event registry and typed payload views.
 */

#include <gtest/gtest.h>

#include "event/event.h"
#include "event/event_type.h"
#include "event/payloads.h"

namespace dth {
namespace {

TEST(EventRegistry, Has32Types)
{
    EXPECT_EQ(kNumEventTypes, 32u);
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        const EventTypeInfo &info = eventInfo(i);
        EXPECT_EQ(static_cast<unsigned>(info.type), i);
        EXPECT_NE(info.name, nullptr);
        EXPECT_GT(info.bytesPerEntry, 0u);
        EXPECT_GE(info.entriesPerCore, 1u);
        EXPECT_NE(info.component, nullptr);
    }
}

TEST(EventRegistry, CategoryCountsMatchPaperTable1)
{
    // Paper Table 1: 5 control flow, 9 register update, 3 memory access,
    // 6 memory hierarchy, 9 extensions.
    std::map<EventCategory, int> counts;
    for (unsigned i = 0; i < kNumEventTypes; ++i)
        counts[eventInfo(i).category]++;
    EXPECT_EQ(counts[EventCategory::ControlFlow], 5);
    EXPECT_EQ(counts[EventCategory::RegisterUpdate], 9);
    EXPECT_EQ(counts[EventCategory::MemoryAccess], 3);
    EXPECT_EQ(counts[EventCategory::MemoryHierarchy], 6);
    EXPECT_EQ(counts[EventCategory::Extension], 9);
}

TEST(EventRegistry, AggregateInterfaceMatchesPaperScale)
{
    // Paper §2.2: the 32-type DiffTest interface aggregates 11,496 bytes.
    u32 total = aggregateInterfaceBytes();
    EXPECT_GE(total, 11000u);
    EXPECT_LE(total, 12000u);
}

TEST(EventRegistry, StructuralSizeRangeIs170x)
{
    // Paper §4.2.1: event lengths differ by up to 170x.
    EXPECT_NEAR(structuralSizeRange(), 170.0, 10.0);
}

TEST(EventRegistry, NdeTypesAreTheSynchronizedOnes)
{
    EXPECT_TRUE(eventInfo(EventType::MmioEvent).nde);
    EXPECT_TRUE(eventInfo(EventType::ArchEvent).nde);
    EXPECT_TRUE(eventInfo(EventType::LrScEvent).nde);
    EXPECT_FALSE(eventInfo(EventType::InstrCommit).nde);
    EXPECT_FALSE(eventInfo(EventType::ArchIntRegState).nde);
}

TEST(EventRegistry, FusibleTypesIncludeCommitAndRegState)
{
    EXPECT_TRUE(eventInfo(EventType::InstrCommit).fusible);
    EXPECT_TRUE(eventInfo(EventType::ArchIntRegState).fusible);
    EXPECT_TRUE(eventInfo(EventType::CsrState).fusible);
    // NDEs must never be fusible: they carry order tags instead.
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        if (eventInfo(i).nde) {
            EXPECT_FALSE(eventInfo(i).fusible) << eventInfo(i).name;
        }
    }
}

TEST(Event, MakeAllocatesCorrectPayload)
{
    for (unsigned i = 0; i < kNumEventTypes; ++i) {
        Event e = Event::make(static_cast<EventType>(i), 1, 2, 77);
        EXPECT_EQ(e.payload.size(), eventInfo(i).bytesPerEntry);
        EXPECT_EQ(e.core, 1);
        EXPECT_EQ(e.index, 2);
        EXPECT_EQ(e.commitSeq, 77u);
    }
}

TEST(Event, EqualityComparesPayload)
{
    Event a = Event::make(EventType::InstrCommit);
    Event b = Event::make(EventType::InstrCommit);
    EXPECT_EQ(a, b);
    InstrCommitView(b).set_pc(0x80000000);
    EXPECT_FALSE(a == b);
}

TEST(PayloadViews, InstrCommitRoundTrip)
{
    Event e = Event::make(EventType::InstrCommit);
    InstrCommitView w(e);
    w.set_pc(0x80001234);
    w.set_instr(0x00A50533);
    w.set_rdVal(0xDEADBEEFCAFEF00D);
    w.set_seqNo(42);
    w.set_rd(10);
    w.set_rfWen(1);
    w.set_skip(1);
    w.set_nextPc(0x80001238);

    const Event &ce = e;
    InstrCommitView r(ce);
    EXPECT_EQ(r.pc(), 0x80001234u);
    EXPECT_EQ(r.instr(), 0x00A50533u);
    EXPECT_EQ(r.rdVal(), 0xDEADBEEFCAFEF00Du);
    EXPECT_EQ(r.seqNo(), 42u);
    EXPECT_EQ(r.rd(), 10);
    EXPECT_EQ(r.rfWen(), 1);
    EXPECT_EQ(r.skip(), 1);
    EXPECT_EQ(r.nextPc(), 0x80001238u);
}

TEST(PayloadViews, RegFileCoversAll32Slots)
{
    Event e = Event::make(EventType::ArchIntRegState);
    RegFileView w(e);
    for (unsigned i = 0; i < 32; ++i)
        w.setReg(i, 0x1000 + i);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(RegFileView(e).reg(i), 0x1000 + i);
}

TEST(PayloadViews, CsrStateNamedSlots)
{
    Event e = Event::make(EventType::CsrState);
    CsrStateView w(e);
    w.setCsr(CsrSlot::Mstatus, 0x1888);
    w.setCsr(CsrSlot::Mepc, 0x80000100);
    w.setSlot(CsrStateView::kSlots - 1, 0x5A);
    EXPECT_EQ(CsrStateView(e).csr(CsrSlot::Mstatus), 0x1888u);
    EXPECT_EQ(CsrStateView(e).csr(CsrSlot::Mepc), 0x80000100u);
    EXPECT_EQ(CsrStateView(e).slot(CsrStateView::kSlots - 1), 0x5Au);
}

TEST(PayloadViews, VecRegViewLanesDoNotOverlapHeader)
{
    Event e = Event::make(EventType::ArchVecRegState);
    VecRegView w(e);
    w.set_vl(2);
    w.set_vtype(0x18);
    for (unsigned r = 0; r < 32; ++r)
        for (unsigned l = 0; l < 8; ++l)
            w.setLane(r, l, r * 100 + l);
    EXPECT_EQ(w.vl(), 2u);
    EXPECT_EQ(w.vtype(), 0x18u);
    for (unsigned r = 0; r < 32; ++r)
        for (unsigned l = 0; l < 8; ++l)
            EXPECT_EQ(w.lane(r, l), r * 100 + l);
}

TEST(PayloadViews, OutOfBoundsReadPanics)
{
    Event e = Event::make(EventType::UartIoEvent); // 16 bytes
    PayloadView v(e);
    EXPECT_EQ(v.word(8), 0u);
    EXPECT_DEATH(v.word(9), "oob");
}

TEST(PayloadViews, WriteThroughReadOnlyViewPanics)
{
    const Event e = Event::make(EventType::Trap);
    TrapView v(e);
    EXPECT_DEATH(const_cast<TrapView &>(v).set_pc(1), "read-only");
}

TEST(CycleEvents, TotalBytes)
{
    CycleEvents ce;
    ce.events.push_back(Event::make(EventType::InstrCommit)); // 128
    ce.events.push_back(Event::make(EventType::FpCsrState));  // 16
    EXPECT_EQ(ce.totalBytes(), 144u);
    EXPECT_EQ(ce.count(), 2u);
}

} // namespace
} // namespace dth
