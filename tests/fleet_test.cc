/**
 * @file
 * Campaign fleet tests: spec construction (matrix expansion, JSON
 * loading, program sharing), per-job outcome classification against
 * real co-simulation runs, quarantine/retry recovery, the bounded
 * failure-artifact retention policy, cross-session stat aggregation,
 * and the headline determinism contract — a job's verdict and
 * checked-stream digest are identical run solo, on 1 worker, or in an
 * 8-job fleet on any worker count.
 *
 * FleetConcurrency.* runs many concurrent sessions over one shared
 * immutable SharedTables/program set and is part of the TSan CI gate.
 */

#include <gtest/gtest.h>

#include "fleet/campaign.h"
#include "fleet/report.h"
#include "fleet/scheduler.h"
#include "obs/json.h"

namespace {

using namespace dth;
using namespace dth::fleet;

/** A fast job on the default (XiangShan/Palladium/BNSD) config. */
JobSpec
smallJob(WorkloadKind kind, u64 seed, unsigned iterations = 150)
{
    JobSpec spec;
    spec.workload = kind;
    spec.workloadOptions.seed = seed;
    spec.workloadOptions.iterations = iterations;
    spec.workloadOptions.bodyLength = 32;
    return spec;
}

/** Link-fault knobs that collapse the channel (chaos-test recipe). */
void
collapseLink(JobSpec *spec)
{
    spec->config.linkFaults.enabled = true;
    spec->config.linkFaults.stallRate = 1.0;
    spec->config.linkFaults.maxAttempts = 2;
    spec->config.linkFaults.unrecoverableBudget = 3;
}

JobSpec
mismatchJob(u64 seed)
{
    JobSpec spec = smallJob(WorkloadKind::ComputeLike, seed, 400);
    spec.hasFault = true;
    spec.fault.archetype = dut::BugArchetype::WrongRdValue;
    spec.fault.triggerSeq = 2000;
    return spec;
}

// ---------------------------------------------------------------------------
// Campaign construction
// ---------------------------------------------------------------------------

TEST(Campaign, ExpandMatrixIsDeterministicWorkloadMajor)
{
    MatrixSpec spec;
    spec.workloads = {WorkloadKind::Microbench, WorkloadKind::IoHeavy};
    spec.seeds = {1, 2};
    spec.optLevels = {cosim::OptLevel::B, cosim::OptLevel::BNSD};
    Campaign campaign = expandMatrix(spec);
    ASSERT_EQ(campaign.jobs.size(), 8u);
    // Workload-major, then seed, then opt level; ids are positional.
    EXPECT_EQ(campaign.jobs[0].workload, WorkloadKind::Microbench);
    EXPECT_EQ(campaign.jobs[0].workloadOptions.seed, 1u);
    EXPECT_EQ(campaign.jobs[3].workloadOptions.seed, 2u);
    EXPECT_EQ(campaign.jobs[4].workload, WorkloadKind::IoHeavy);
    // Session seeds are decorrelated per matrix point but pure
    // functions of the spec.
    EXPECT_NE(campaign.jobs[0].config.seed, campaign.jobs[2].config.seed);
    Campaign again = expandMatrix(spec);
    for (size_t i = 0; i < campaign.jobs.size(); ++i) {
        EXPECT_EQ(campaign.jobs[i].name, again.jobs[i].name);
        EXPECT_EQ(campaign.jobs[i].config.seed, again.jobs[i].config.seed);
    }
}

TEST(Campaign, AddDerivesUniqueNames)
{
    Campaign campaign;
    campaign.add(smallJob(WorkloadKind::Microbench, 1));
    campaign.add(smallJob(WorkloadKind::Microbench, 2));
    EXPECT_FALSE(campaign.jobs[0].name.empty());
    EXPECT_NE(campaign.jobs[0].name, campaign.jobs[1].name);
}

TEST(Campaign, ProgramLibrarySharesIdenticalWorkloads)
{
    // Same workload point, different session config: one image.
    JobSpec a = smallJob(WorkloadKind::ComputeLike, 7);
    JobSpec b = a;
    b.config.seed ^= 0x1234;
    b.config.applyOptLevel(cosim::OptLevel::B);
    JobSpec c = smallJob(WorkloadKind::ComputeLike, 8);

    ProgramLibrary library;
    auto pa = library.get(a);
    auto pb = library.get(b);
    auto pc = library.get(c);
    EXPECT_EQ(pa.get(), pb.get());
    EXPECT_NE(pa.get(), pc.get());
    EXPECT_EQ(library.builds(), 2u);
    EXPECT_EQ(library.reuses(), 1u);
}

// ---------------------------------------------------------------------------
// JSON campaign specs
// ---------------------------------------------------------------------------

constexpr const char *kGoodSpec = R"({
  "schema": "dth-fleet-campaign-v1",
  "name": "smoke",
  "defaults": {"iterations": 150, "body_length": 32, "dut": "nutshell"},
  "matrix": {"workloads": ["microbench", "compute"], "seeds": [1, 2],
             "opt_levels": ["BNSD"]},
  "jobs": [
    {"name": "flaky", "workload": "boot", "seed": 3, "stall_rate": 1.0,
     "fault_max_attempts": 2, "fault_budget": 3,
     "max_retries": 1, "retry_fault_damping": 0.0},
    {"name": "tiny-budget", "workload": "compute", "seed": 4,
     "max_cycles": 2000}
  ]
})";

TEST(CampaignJson, ParsesMatrixDefaultsAndJobs)
{
    Campaign campaign;
    std::string err;
    ASSERT_TRUE(campaignFromJson(kGoodSpec, &campaign, &err)) << err;
    EXPECT_EQ(campaign.name, "smoke");
    ASSERT_EQ(campaign.jobs.size(), 6u);
    for (const JobSpec &job : campaign.jobs) {
        EXPECT_EQ(job.workloadOptions.iterations, 150u);
        EXPECT_EQ(job.config.dut.name, dut::nutshellConfig().name);
    }
    const JobSpec &flaky = campaign.jobs[4];
    EXPECT_EQ(flaky.name, "flaky");
    EXPECT_EQ(flaky.workload, WorkloadKind::BootLike);
    EXPECT_TRUE(flaky.config.linkFaults.enabled);
    EXPECT_EQ(flaky.config.linkFaults.stallRate, 1.0);
    EXPECT_EQ(flaky.maxRetries, 1u);
    EXPECT_EQ(flaky.retryFaultDamping, 0.0);
    EXPECT_EQ(campaign.jobs[5].maxCycles, 2000u);
    // Distinct matrix seeds decorrelate the per-session run seed.
    EXPECT_NE(campaign.jobs[0].config.seed, campaign.jobs[1].config.seed);
}

TEST(CampaignJson, RejectsMalformedSpecs)
{
    Campaign campaign;
    std::string err;
    EXPECT_FALSE(campaignFromJson("not json", &campaign, &err));
    EXPECT_FALSE(campaignFromJson("{\"schema\": \"nope\"}", &campaign,
                                  &err));
    EXPECT_FALSE(campaignFromJson(
        R"({"schema": "dth-fleet-campaign-v1"})", &campaign, &err));
    EXPECT_NE(err.find("no jobs"), std::string::npos) << err;
    EXPECT_FALSE(campaignFromJson(
        R"({"schema": "dth-fleet-campaign-v1",
            "jobs": [{"workload": "quantum"}]})",
        &campaign, &err));
    EXPECT_NE(err.find("unknown workload"), std::string::npos) << err;
    EXPECT_FALSE(campaignFromJson(
        R"({"schema": "dth-fleet-campaign-v1",
            "jobs": [{"name": "a", "frobnicate": 1}]})",
        &campaign, &err));
    EXPECT_NE(err.find("unknown job field"), std::string::npos) << err;
    EXPECT_FALSE(campaignFromJson(
        R"({"schema": "dth-fleet-campaign-v1",
            "jobs": [{"name": "dup"}, {"name": "dup"}]})",
        &campaign, &err));
    EXPECT_NE(err.find("duplicate job name"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Outcome classification on real sessions
// ---------------------------------------------------------------------------

TEST(FleetOutcome, CleanJobPasses)
{
    JobResult r = runJobSolo(smallJob(WorkloadKind::ComputeLike, 5));
    EXPECT_EQ(r.outcome, JobOutcome::Passed);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_FALSE(r.recovered);
    EXPECT_GT(r.checkedEvents, 1000u);
    EXPECT_EQ(r.artifacts, nullptr);
    EXPECT_TRUE(r.counters.has("dut.instrs"));
}

TEST(FleetOutcome, ArmedFaultFailsWithArtifacts)
{
    JobResult r = runJobSolo(mismatchJob(5));
    EXPECT_EQ(r.outcome, JobOutcome::Failed);
    ASSERT_NE(r.artifacts, nullptr);
    EXPECT_FALSE(r.artifacts->mismatch.empty());
    // BNSD runs detect at fused granularity and localize via Replay.
    EXPECT_TRUE(r.replayRan);
    EXPECT_FALSE(r.artifacts->replayTranscript.empty());
}

TEST(FleetOutcome, CycleBudgetExhaustionTimesOut)
{
    JobSpec spec = smallJob(WorkloadKind::ComputeLike, 5);
    spec.maxCycles = 2000; // far below the ~10k the job needs
    JobResult r = runJobSolo(spec);
    EXPECT_EQ(r.outcome, JobOutcome::TimedOut);
    EXPECT_FALSE(r.wallTimedOut) << "cycle budget, not the wall net";
    EXPECT_EQ(r.cycles, spec.maxCycles);
    ASSERT_NE(r.artifacts, nullptr);
    EXPECT_TRUE(r.artifacts->mismatch.empty());
}

TEST(FleetOutcome, LinkCollapseDegrades)
{
    JobSpec spec = smallJob(WorkloadKind::Microbench, 5);
    collapseLink(&spec);
    JobResult r = runJobSolo(spec);
    EXPECT_EQ(r.outcome, JobOutcome::Degraded);
    EXPECT_EQ(r.linkDegradeLevel, 2u);
    EXPECT_GT(r.faultsInjected, 0u);
    ASSERT_NE(r.artifacts, nullptr);
    EXPECT_NE(r.artifacts->linkReport.find("degrade level 2"),
              std::string::npos);
}

TEST(FleetOutcome, QuarantineRetryRecovers)
{
    // Attempt 0 collapses the link; damping 0 makes every retry
    // fault-free, so the job must recover on attempt 1 — a pure
    // function of the spec (the fleet path is compared below).
    JobSpec spec = smallJob(WorkloadKind::Microbench, 5);
    collapseLink(&spec);
    spec.maxRetries = 2;
    spec.retryFaultDamping = 0.0;
    JobResult solo = runJobSolo(spec);
    EXPECT_EQ(solo.outcome, JobOutcome::Passed);
    EXPECT_EQ(solo.attempts, 2u);
    EXPECT_TRUE(solo.recovered);
    EXPECT_EQ(solo.artifacts, nullptr);

    Campaign campaign;
    campaign.name = "retry";
    campaign.add(spec);
    FleetConfig fc;
    fc.workers = 2;
    CampaignResult fleet = FleetScheduler(fc).run(campaign);
    EXPECT_EQ(fleet.jobs[0].outcome, JobOutcome::Passed);
    EXPECT_EQ(fleet.jobs[0].attempts, 2u);
    EXPECT_TRUE(fleet.jobs[0].recovered);
    EXPECT_EQ(fleet.jobs[0].digest, solo.digest);
    EXPECT_EQ(fleet.aggregate.get("fleet.quarantined"), 1u);
    EXPECT_EQ(fleet.aggregate.get("fleet.retries"), 1u);
    EXPECT_EQ(fleet.aggregate.get("fleet.recovered"), 1u);
    EXPECT_EQ(fleet.aggregate.get("fleet.attempts"), 2u);
}

TEST(FleetOutcome, RetriesExhaustedStaysDegraded)
{
    JobSpec spec = smallJob(WorkloadKind::Microbench, 5);
    collapseLink(&spec);
    spec.maxRetries = 1;
    spec.retryFaultDamping = 1.0; // retries as hostile as attempt 0
    JobResult r = runJobSolo(spec);
    EXPECT_EQ(r.outcome, JobOutcome::Degraded);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_FALSE(r.recovered);
}

// ---------------------------------------------------------------------------
// The determinism contract
// ---------------------------------------------------------------------------

/** Mixed campaign: clean jobs, a retry-recovery job, a cycle-budget
 *  timeout and an armed-fault mismatch. */
Campaign
mixedCampaign()
{
    Campaign campaign;
    campaign.name = "mixed";
    campaign.add(smallJob(WorkloadKind::Microbench, 1));
    campaign.add(smallJob(WorkloadKind::ComputeLike, 2));
    campaign.add(smallJob(WorkloadKind::VectorLike, 3));
    campaign.add(smallJob(WorkloadKind::IoHeavy, 4));
    campaign.add(smallJob(WorkloadKind::BootLike, 5));
    JobSpec flaky = smallJob(WorkloadKind::Microbench, 6);
    collapseLink(&flaky);
    flaky.maxRetries = 2;
    flaky.retryFaultDamping = 0.0;
    flaky.name = "flaky";
    campaign.add(std::move(flaky));
    JobSpec slow = smallJob(WorkloadKind::ComputeLike, 7);
    slow.maxCycles = 2000;
    slow.name = "tiny-budget";
    campaign.add(std::move(slow));
    JobSpec buggy = mismatchJob(8);
    buggy.name = "buggy";
    campaign.add(std::move(buggy));
    return campaign;
}

TEST(FleetDeterminism, SoloAndEveryWorkerCountAgree)
{
    Campaign campaign = mixedCampaign();
    std::vector<JobResult> solo;
    for (size_t i = 0; i < campaign.jobs.size(); ++i)
        solo.push_back(runJobSolo(campaign.jobs[i],
                                  static_cast<unsigned>(i)));

    std::string report;
    u64 digest = 0;
    for (unsigned workers : {1u, 2u, 4u}) {
        FleetConfig fc;
        fc.workers = workers;
        CampaignResult r = FleetScheduler(fc).run(campaign);
        ASSERT_EQ(r.jobs.size(), solo.size());
        for (size_t i = 0; i < solo.size(); ++i) {
            SCOPED_TRACE(campaign.jobs[i].name + " @" +
                         std::to_string(workers) + " workers");
            EXPECT_EQ(r.jobs[i].outcome, solo[i].outcome);
            EXPECT_EQ(r.jobs[i].digest, solo[i].digest);
            EXPECT_EQ(r.jobs[i].checkedEvents, solo[i].checkedEvents);
            EXPECT_EQ(r.jobs[i].cycles, solo[i].cycles);
            EXPECT_EQ(r.jobs[i].instrs, solo[i].instrs);
            EXPECT_EQ(r.jobs[i].attempts, solo[i].attempts);
            EXPECT_EQ(r.jobs[i].recovered, solo[i].recovered);
            EXPECT_EQ(r.jobs[i].linkDegradeLevel,
                      solo[i].linkDegradeLevel);
        }
        // The default report and the filtered aggregate are
        // byte/bit-identical across worker counts.
        std::string this_report = campaignReportJson(r);
        u64 this_digest = aggregateDigest(r.aggregate);
        if (report.empty()) {
            report = this_report;
            digest = this_digest;
        } else {
            EXPECT_EQ(this_report, report);
            EXPECT_EQ(this_digest, digest);
        }
    }
}

// ---------------------------------------------------------------------------
// Retention, aggregation, reporting
// ---------------------------------------------------------------------------

TEST(FleetRetention, LowestJobIdsKeepArtifacts)
{
    Campaign campaign;
    campaign.name = "failures";
    for (u64 seed = 1; seed <= 5; ++seed)
        campaign.add(mismatchJob(seed));
    FleetConfig fc;
    fc.workers = 4; // completion order is scheduling-dependent
    fc.maxRetainedFailures = 2;
    CampaignResult r = FleetScheduler(fc).run(campaign);
    EXPECT_EQ(r.count(JobOutcome::Failed), 5u);
    for (const JobResult &job : r.jobs) {
        if (job.id < 2)
            EXPECT_NE(job.artifacts, nullptr) << job.id;
        else
            EXPECT_EQ(job.artifacts, nullptr) << job.id;
    }
    EXPECT_EQ(r.aggregate.get("fleet.failure_artifacts_retained"), 2u);
    EXPECT_EQ(r.aggregate.get("fleet.failure_artifacts_dropped"), 3u);
}

TEST(FleetAggregate, MergesJobCountersKindAware)
{
    Campaign campaign;
    campaign.name = "agg";
    for (u64 seed = 1; seed <= 4; ++seed)
        campaign.add(smallJob(WorkloadKind::ComputeLike, seed));
    FleetConfig fc;
    fc.workers = 2;
    CampaignResult r = FleetScheduler(fc).run(campaign);
    ASSERT_TRUE(r.allPassed());
    EXPECT_EQ(r.aggregate.get("fleet.jobs"), 4u);
    EXPECT_EQ(r.aggregate.get("fleet.jobs_passed"), 4u);
    EXPECT_EQ(r.aggregate.get("fleet.workers"), 2u);
    // Sum kinds accumulate across sessions.
    u64 instrs = 0;
    for (const JobResult &job : r.jobs)
        instrs += job.counters.get("dut.instrs");
    EXPECT_GT(instrs, 0u);
    EXPECT_EQ(r.aggregate.get("dut.instrs"), instrs);
    // One image, built once, reused thrice (distinct seeds: rebuilt).
    EXPECT_EQ(r.aggregate.get("fleet.programs_built"), 4u);
    auto it = r.aggregate.hists().find("fleet.job_cycles");
    ASSERT_NE(it, r.aggregate.hists().end());
    EXPECT_EQ(it->second.count, 4u);
}

TEST(FleetReport, FiltersWallClockFromDeterministicAggregate)
{
    Campaign campaign;
    campaign.name = "filter";
    campaign.add(smallJob(WorkloadKind::Microbench, 1));
    FleetConfig fc;
    fc.workers = 2;
    CampaignResult r = FleetScheduler(fc).run(campaign);
    ASSERT_TRUE(r.aggregate.has("fleet.steals"));
    ASSERT_TRUE(r.aggregate.has("host.threads"));
    obs::StatSnapshot det = deterministicAggregate(r.aggregate);
    EXPECT_FALSE(det.has("fleet.steals"));
    EXPECT_FALSE(det.has("fleet.workers"));
    EXPECT_FALSE(det.has("host.threads"));
    EXPECT_TRUE(det.reals().empty());
    EXPECT_TRUE(det.has("fleet.jobs"));
    EXPECT_EQ(det.hists().count("fleet.queue_latency_us"), 0u);
    EXPECT_EQ(det.hists().count("fleet.job_cycles"), 1u);
}

TEST(FleetReport, JsonCarriesVerdictsAndFailures)
{
    Campaign campaign;
    campaign.name = "report";
    campaign.add(smallJob(WorkloadKind::Microbench, 1));
    campaign.add(mismatchJob(2));
    FleetConfig fc;
    fc.workers = 1;
    CampaignResult r = FleetScheduler(fc).run(campaign);
    std::string json = campaignReportJson(r);
    EXPECT_NE(json.find("\"schema\": \"dth-fleet-report-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"passed\""), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"failures\""), std::string::npos);
    EXPECT_EQ(json.find("\"timing\""), std::string::npos);
    // The report is valid JSON by the obs parser's standards.
    obs::JsonValue parsed;
    ASSERT_TRUE(obs::parseJson(json, &parsed));
    EXPECT_EQ(parsed.field("counts")->field("passed")->asU64(), 1u);
    EXPECT_EQ(parsed.field("counts")->field("failed")->asU64(), 1u);
    ReportOptions with_timing;
    with_timing.includeTiming = true;
    std::string timed = campaignReportJson(r, with_timing);
    EXPECT_NE(timed.find("\"timing\""), std::string::npos);
    ASSERT_TRUE(obs::parseJson(timed, &parsed));
}

// ---------------------------------------------------------------------------
// Concurrency over shared immutable state (TSan gate)
// ---------------------------------------------------------------------------

TEST(FleetConcurrency, ParallelSessionsShareTablesAndPrograms)
{
    // 8 concurrent sessions over 2 distinct program images and one
    // SharedTables snapshot; the scheduler asserts the tables' digest
    // is unchanged at teardown.
    Campaign campaign;
    campaign.name = "concurrent";
    for (unsigned i = 0; i < 8; ++i) {
        JobSpec spec = smallJob(i % 2 == 0 ? WorkloadKind::Microbench
                                           : WorkloadKind::ComputeLike,
                                /*seed=*/1 + i % 2);
        spec.config.seed ^= i * 0x9E3779B97F4A7C15ull;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "job%u", i);
        spec.name = buf;
        campaign.add(std::move(spec));
    }
    FleetConfig fc;
    fc.workers = 4;
    fc.captureTimeline = true;
    CampaignResult r = FleetScheduler(fc).run(campaign);
    EXPECT_TRUE(r.allPassed()) << r.summary();
    EXPECT_NE(r.tablesDigest, 0u);
    EXPECT_NE(r.timelineJson.find("fleet_worker0"), std::string::npos);
    // Two images server all eight sessions.
    EXPECT_EQ(r.aggregate.get("fleet.programs_built"), 2u);
    EXPECT_EQ(r.aggregate.get("fleet.programs_reused"), 6u);
}

TEST(FleetConcurrency, UnsharedTablesStillRun)
{
    Campaign campaign;
    campaign.add(smallJob(WorkloadKind::Microbench, 1));
    FleetConfig fc;
    fc.workers = 2;
    fc.shareTables = false;
    CampaignResult r = FleetScheduler(fc).run(campaign);
    EXPECT_TRUE(r.allPassed());
    EXPECT_EQ(r.tablesDigest, 0u);
}

} // namespace
