/**
 * @file
 * Tests for the resilient transport layer: CRC32 vectors, frame
 * round-trips, sequence tracking, the exhaustive corruption fuzz suite
 * (every single-bit flip and every truncation must yield a FaultReport,
 * never an abort), the deterministic fault injector, the retransmit
 * window, and the ResilientChannel recovery ladder end to end.
 */

#include <gtest/gtest.h>

#include "link/channel.h"
#include "link/fault_injector.h"
#include "link/frame.h"
#include "replay/retransmit.h"

namespace dth::link {
namespace {

Transfer
makeTransfer(size_t bytes, u64 issue_cycle, u8 fill = 0)
{
    Transfer t;
    t.issueCycle = issue_cycle;
    t.bytes.resize(bytes);
    for (size_t i = 0; i < bytes; ++i)
        t.bytes[i] = static_cast<u8>(fill + i * 7 + (i >> 3));
    return t;
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVectors)
{
    // The IEEE 802.3 check value every CRC-32 implementation must hit.
    const char *check = "123456789";
    std::span<const u8> data(reinterpret_cast<const u8 *>(check), 9);
    EXPECT_EQ(crc32(data), 0xCBF43926u);
    EXPECT_EQ(crc32({}), 0u);
    std::vector<u8> zeros(32, 0);
    std::vector<u8> ones(32, 0xFF);
    EXPECT_NE(crc32(zeros), crc32(ones));
}

TEST(Crc32, SensitiveToEveryBit)
{
    std::vector<u8> data(64);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 13);
    u32 base = crc32(data);
    for (size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        EXPECT_NE(crc32(data), base) << "bit " << bit << " not detected";
        data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripPreservesPayloadAndCycle)
{
    Transfer in = makeTransfer(137, 0x0123456789ABCDEFull);
    std::vector<u8> wire;
    FrameEncoder::encodeAs(in, 42, wire);
    EXPECT_EQ(wire.size(), in.bytes.size() + kFrameOverheadBytes);

    Transfer out;
    u32 seq = 0;
    FaultReport rep = FrameDecoder::decodeFrame(wire, out, &seq);
    EXPECT_TRUE(rep.ok()) << rep.describe();
    EXPECT_EQ(seq, 42u);
    EXPECT_EQ(out.issueCycle, in.issueCycle);
    EXPECT_EQ(out.bytes, in.bytes);
}

TEST(Frame, EmptyPayloadRoundTrips)
{
    Transfer in = makeTransfer(0, 7);
    std::vector<u8> wire;
    FrameEncoder::encodeAs(in, 0, wire);
    EXPECT_EQ(wire.size(), kFrameOverheadBytes);
    Transfer out;
    EXPECT_TRUE(FrameDecoder::decodeFrame(wire, out, nullptr).ok());
    EXPECT_TRUE(out.bytes.empty());
}

TEST(Frame, EncoderStampsConsecutiveSequences)
{
    FrameEncoder enc;
    std::vector<u8> wire;
    Transfer t = makeTransfer(8, 1);
    for (u32 i = 0; i < 5; ++i) {
        wire.clear();
        EXPECT_EQ(enc.encode(t, wire), i);
    }
    EXPECT_EQ(enc.nextSeq(), 5u);
}

TEST(Frame, SequenceTrackingClassifiesGapAndStale)
{
    FrameEncoder enc;
    FrameDecoder dec;
    Transfer t = makeTransfer(16, 3);
    std::vector<u8> f0, f1, f2;
    FrameEncoder::encodeAs(t, 0, f0);
    FrameEncoder::encodeAs(t, 1, f1);
    FrameEncoder::encodeAs(t, 2, f2);

    Transfer out;
    EXPECT_TRUE(dec.accept(f0, out).ok());
    EXPECT_EQ(dec.expectedSeq(), 1u);
    // Skipping ahead is a gap (frames lost), and does not advance the
    // delivered prefix.
    EXPECT_EQ(dec.accept(f2, out).fault, FrameFault::SeqGap);
    EXPECT_EQ(dec.expectedSeq(), 1u);
    // Replaying an already-delivered frame is stale.
    EXPECT_EQ(dec.accept(f0, out).fault, FrameFault::SeqStale);
    // In-order delivery resumes.
    EXPECT_TRUE(dec.accept(f1, out).ok());
    EXPECT_TRUE(dec.accept(f2, out).ok());
    EXPECT_EQ(dec.delivered(), 3u);
}

TEST(Frame, OversizedDeclaredLengthRejected)
{
    Transfer in = makeTransfer(32, 1);
    std::vector<u8> wire;
    FrameEncoder::encodeAs(in, 0, wire);
    // Corrupt the length field to a huge value and fix nothing else: the
    // decoder must classify (length check fires before any allocation).
    wire[8] = 0xFF;
    wire[9] = 0xFF;
    wire[10] = 0xFF;
    wire[11] = 0xFF;
    Transfer out;
    FaultReport rep = FrameDecoder::decodeFrame(wire, out, nullptr);
    EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------------------------------
// Exhaustive corruption fuzz: never aborts, every corruption detected.
// ---------------------------------------------------------------------------

TEST(FrameFuzz, EverySingleBitFlipIsDetected)
{
    Transfer in = makeTransfer(96, 0xDEADBEEFull);
    std::vector<u8> wire;
    FrameEncoder::encodeAs(in, 7, wire);
    Transfer out;
    for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
        wire[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        FaultReport rep = FrameDecoder::decodeFrame(wire, out, nullptr);
        EXPECT_FALSE(rep.ok())
            << "flip of bit " << bit << " passed undetected";
        wire[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
    // The pristine frame still decodes after all that restoring.
    EXPECT_TRUE(FrameDecoder::decodeFrame(wire, out, nullptr).ok());
}

TEST(FrameFuzz, EveryTruncationLengthIsDetected)
{
    Transfer in = makeTransfer(64, 11);
    std::vector<u8> wire;
    FrameEncoder::encodeAs(in, 3, wire);
    Transfer out;
    for (size_t len = 0; len < wire.size(); ++len) {
        std::span<const u8> cut(wire.data(), len);
        FaultReport rep = FrameDecoder::decodeFrame(cut, out, nullptr);
        EXPECT_FALSE(rep.ok())
            << "truncation to " << len << " bytes passed undetected";
    }
}

TEST(FrameFuzz, RandomGarbageNeverAbortsAndNeverPasses)
{
    // Arbitrary byte soup — including buffers that happen to start with
    // the magic — must always yield a classification, never an abort.
    Rng rng(0xF00DF00Dull);
    Transfer out;
    for (unsigned trial = 0; trial < 2000; ++trial) {
        std::vector<u8> junk(rng.nextBelow(256));
        for (u8 &b : junk)
            b = static_cast<u8>(rng.next());
        if (trial % 4 == 0 && junk.size() >= 4) {
            junk[0] = static_cast<u8>(kFrameMagic);
            junk[1] = static_cast<u8>(kFrameMagic >> 8);
            junk[2] = static_cast<u8>(kFrameMagic >> 16);
            junk[3] = static_cast<u8>(kFrameMagic >> 24);
        }
        FaultReport rep = FrameDecoder::decodeFrame(junk, out, nullptr);
        // A random 32-bit CRC collision has probability 2^-32 per trial;
        // with 2000 trials a pass would be a bug, not luck.
        EXPECT_FALSE(rep.ok()) << "random garbage passed, trial " << trial;
        EXPECT_FALSE(rep.describe().empty());
    }
}

// ---------------------------------------------------------------------------
// Fault injector determinism
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameFaultPattern)
{
    LinkFaultConfig cfg = LinkFaultConfig::allKinds(0.2, 99);
    LinkFaultInjector a(cfg), b(cfg);
    std::vector<u8> base(40, 0x5A);
    for (unsigned i = 0; i < 500; ++i) {
        std::vector<u8> wa = base, wb = base;
        Injection ia = a.mangle(wa);
        Injection ib = b.mangle(wb);
        EXPECT_EQ(ia.dropped, ib.dropped);
        EXPECT_EQ(ia.stalled, ib.stalled);
        EXPECT_EQ(ia.reordered, ib.reordered);
        EXPECT_EQ(ia.duplicated, ib.duplicated);
        EXPECT_EQ(ia.bitFlips, ib.bitFlips);
        EXPECT_EQ(ia.truncatedTo, ib.truncatedTo);
        EXPECT_EQ(wa, wb);
    }
}

TEST(FaultInjector, DisabledInjectorNeverTouchesTheWire)
{
    LinkFaultConfig cfg;
    cfg.enabled = false;
    LinkFaultInjector inj(cfg);
    std::vector<u8> wire(64, 0xA5);
    std::vector<u8> orig = wire;
    for (unsigned i = 0; i < 100; ++i) {
        Injection in = inj.mangle(wire);
        EXPECT_FALSE(in.any());
    }
    EXPECT_EQ(wire, orig);
}

TEST(FaultInjector, AllKindsEventuallyFireEveryKind)
{
    LinkFaultConfig cfg = LinkFaultConfig::allKinds(0.3, 1234);
    LinkFaultInjector inj(cfg);
    unsigned drops = 0, stalls = 0, reorders = 0, dups = 0, flips = 0,
             truncs = 0;
    std::vector<u8> base(80, 0x11);
    for (unsigned i = 0; i < 2000; ++i) {
        std::vector<u8> wire = base;
        Injection in = inj.mangle(wire);
        drops += in.dropped;
        stalls += in.stalled;
        reorders += in.reordered;
        dups += in.duplicated;
        flips += in.bitFlips > 0;
        truncs += in.truncatedTo > 0;
    }
    EXPECT_GT(drops, 0u);
    EXPECT_GT(stalls, 0u);
    EXPECT_GT(reorders, 0u);
    EXPECT_GT(dups, 0u);
    EXPECT_GT(flips, 0u);
    EXPECT_GT(truncs, 0u);
}

// ---------------------------------------------------------------------------
// Retransmit window
// ---------------------------------------------------------------------------

TEST(RetransmitBuffer, RecordRequestRelease)
{
    obs::StatSheet sheet;
    replay::RetransmitBuffer buf(sheet, 8);
    std::vector<u8> w0{1, 2, 3}, w1{4, 5};
    buf.record(0, w0);
    buf.record(1, w1);
    EXPECT_EQ(buf.buffered(), 2u);
    EXPECT_EQ(buf.bufferedBytes(), 5u);
    ASSERT_NE(buf.request(0), nullptr);
    EXPECT_EQ(*buf.request(0), w0);
    ASSERT_NE(buf.request(1), nullptr);
    EXPECT_EQ(buf.request(2), nullptr);
    buf.release(0);
    EXPECT_EQ(buf.request(0), nullptr);
    ASSERT_NE(buf.request(1), nullptr);
    buf.release(1);
    EXPECT_EQ(buf.buffered(), 0u);
    EXPECT_EQ(buf.bufferedBytes(), 0u);
}

TEST(RetransmitBuffer, EvictsOldestAtCapacity)
{
    obs::StatSheet sheet;
    replay::RetransmitBuffer buf(sheet, 4);
    std::vector<u8> w{9};
    for (u32 seq = 0; seq < 6; ++seq)
        buf.record(seq, w);
    EXPECT_EQ(buf.buffered(), 4u);
    EXPECT_EQ(buf.request(0), nullptr); // evicted
    EXPECT_EQ(buf.request(1), nullptr); // evicted
    EXPECT_NE(buf.request(2), nullptr);
    EXPECT_NE(buf.request(5), nullptr);
}

// ---------------------------------------------------------------------------
// ResilientChannel: the recovery ladder end to end.
// ---------------------------------------------------------------------------

TEST(ResilientChannel, FaultFreeChannelIsTransparent)
{
    LinkFaultConfig cfg; // disabled
    ResilientChannel ch(cfg, nullptr);
    for (u64 i = 0; i < 50; ++i) {
        Transfer in = makeTransfer(20 + i, i * 100);
        Transfer out;
        ASSERT_TRUE(ch.transmit(in, out));
        EXPECT_EQ(out.bytes, in.bytes);
        EXPECT_EQ(out.issueCycle, in.issueCycle);
    }
    ChannelReport rep = ch.report();
    EXPECT_EQ(rep.degradeLevel, 0u);
    EXPECT_EQ(rep.frames, 50u);
    EXPECT_EQ(rep.faultsInjected, 0u);
    EXPECT_EQ(rep.retxFrames, 0u);
}

TEST(ResilientChannel, RecoversBitIdenticalUnderChaos)
{
    // Moderate rates of every fault kind: recovery must deliver every
    // transfer bit-identically, and must actually have recovered
    // something (otherwise the test is vacuous).
    LinkFaultConfig cfg = LinkFaultConfig::allKinds(0.08, 4242);
    ResilientChannel ch(cfg, nullptr);
    u64 delivered = 0;
    for (u64 i = 0; i < 400; ++i) {
        Transfer in = makeTransfer(16 + i % 64, i);
        Transfer out;
        ASSERT_TRUE(ch.transmit(in, out)) << ch.report().describe();
        EXPECT_EQ(out.bytes, in.bytes) << "transfer " << i;
        EXPECT_EQ(out.issueCycle, in.issueCycle);
        ++delivered;
    }
    ChannelReport rep = ch.report();
    EXPECT_EQ(delivered, 400u);
    EXPECT_GT(rep.faultsInjected, 0u);
    EXPECT_GT(rep.retxFrames + rep.naksSent + rep.timeouts, 0u);
    EXPECT_LT(rep.degradeLevel, 2u) << rep.describe();
}

TEST(ResilientChannel, ChaosPatternIsSeedDeterministic)
{
    LinkFaultConfig cfg = LinkFaultConfig::allKinds(0.1, 777);
    ResilientChannel a(cfg, nullptr), b(cfg, nullptr);
    for (u64 i = 0; i < 200; ++i) {
        Transfer in = makeTransfer(24, i);
        Transfer oa, ob;
        ASSERT_TRUE(a.transmit(in, oa));
        ASSERT_TRUE(b.transmit(in, ob));
    }
    ChannelReport ra = a.report(), rb = b.report();
    EXPECT_EQ(ra.faultsInjected, rb.faultsInjected);
    EXPECT_EQ(ra.naksSent, rb.naksSent);
    EXPECT_EQ(ra.retxFrames, rb.retxFrames);
    EXPECT_EQ(ra.timeouts, rb.timeouts);
    EXPECT_EQ(ra.staleDiscards, rb.staleDiscards);
}

TEST(ResilientChannel, RetransmissionsChargeTheTimingModel)
{
    Platform p;
    p.name = "test";
    p.dutClockHz = 1e6;
    p.tSyncSec = 1e-6;
    p.bwBytesPerSec = 1e8;
    p.swPerTransferSec = 1e-6;
    p.queueDepth = 4;
    LinkSimulator sim(p, 1e6, /*non_blocking=*/false);
    LinkFaultConfig cfg = LinkFaultConfig::allKinds(0.15, 31337);
    ResilientChannel ch(cfg, &sim);
    for (u64 i = 0; i < 200; ++i) {
        Transfer in = makeTransfer(64, i);
        Transfer out;
        ASSERT_TRUE(ch.transmit(in, out));
        sim.onTransfer(i, in.bytes.size(), SoftwareWork{});
    }
    LinkResult r = sim.finish(200);
    ChannelReport rep = ch.report();
    ASSERT_GT(rep.retxFrames + rep.timeouts + rep.fallbacks, 0u);
    EXPECT_GT(r.recoverySec, 0.0);
}

TEST(ResilientChannel, StallStormFallsBackThenDelivers)
{
    // 100% stall: every attempt times out, so each transfer exhausts
    // maxAttempts and is served by the degraded blocking handshake
    // (degrade level 1) — intact — until the budget runs out.
    LinkFaultConfig cfg;
    cfg.enabled = true;
    cfg.stallRate = 1.0;
    cfg.seed = 5;
    cfg.maxAttempts = 3;
    cfg.unrecoverableBudget = 2;
    ResilientChannel ch(cfg, nullptr);

    Transfer in = makeTransfer(32, 9);
    Transfer out;
    // Budget covers two fallback deliveries.
    ASSERT_TRUE(ch.transmit(in, out));
    EXPECT_EQ(out.bytes, in.bytes);
    EXPECT_EQ(ch.degradeLevel(), 1u);
    ASSERT_TRUE(ch.transmit(in, out));
    EXPECT_EQ(out.bytes, in.bytes);
    ChannelReport rep = ch.report();
    EXPECT_EQ(rep.fallbacks, 2u);
    EXPECT_EQ(rep.unrecovered, 2u);

    // The third unrecoverable fault exceeds the budget: structured
    // failure, not an abort, and the channel stays dead.
    EXPECT_FALSE(ch.transmit(in, out));
    EXPECT_TRUE(ch.failed());
    EXPECT_EQ(ch.degradeLevel(), 2u);
    EXPECT_TRUE(ch.report().failed());
    EXPECT_FALSE(ch.transmit(in, out)); // dead channel stays dead
    EXPECT_FALSE(ch.report().describe().empty());
}

TEST(ResilientChannel, CountersMatchReport)
{
    LinkFaultConfig cfg = LinkFaultConfig::allKinds(0.1, 2024);
    ResilientChannel ch(cfg, nullptr);
    for (u64 i = 0; i < 100; ++i) {
        Transfer in = makeTransfer(40, i);
        Transfer out;
        ASSERT_TRUE(ch.transmit(in, out));
    }
    ChannelReport rep = ch.report();
    obs::StatSnapshot snap = ch.counters().snapshot();
    EXPECT_EQ(snap.integers().at("link.frames"), static_cast<i64>(rep.frames));
    EXPECT_EQ(snap.integers().at("link.fault.injected"),
              static_cast<i64>(rep.faultsInjected));
    EXPECT_EQ(snap.integers().at("link.nak.sent"),
              static_cast<i64>(rep.naksSent));
    EXPECT_EQ(snap.integers().at("link.retx.frames"),
              static_cast<i64>(rep.retxFrames));
    // The schema is fault-independent: every link.* stat is present even
    // for counters this run never incremented.
    EXPECT_TRUE(snap.integers().count("link.retx.unrecovered"));
    EXPECT_TRUE(snap.integers().count("link.fault.reorder"));
    EXPECT_TRUE(snap.integers().count("link.degrade_level"));
}

} // namespace
} // namespace dth::link
