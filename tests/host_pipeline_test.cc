/**
 * @file
 * Threaded host runtime tests: SpscRing unit and two-thread stress
 * coverage, plus the bit-determinism contract — a hostThreads=2 run must
 * produce a CosimResult identical to the serial run for the same seed
 * (fields, mismatch report, checker outcomes and every counter except
 * the wall-clock host.* telemetry), including under fault injection.
 *
 * scripts/ci.sh additionally builds this binary under ThreadSanitizer.
 */

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/spsc_ring.h"
#include "cosim/cosim.h"
#include "workload/generators.h"

namespace dth::cosim {
namespace {

using dut::BugArchetype;
using dut::FaultSpec;
using workload::Program;
using workload::WorkloadOptions;

// ---- SpscRing ----------------------------------------------------------

TEST(SpscRing, RoundsCapacityToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
    EXPECT_EQ(SpscRing<int>(300).capacity(), 512u);
}

TEST(SpscRing, PushPopSingleThread)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.tryFront(), nullptr);
    for (int i = 0; i < 4; ++i) {
        int *slot = ring.tryBeginPush();
        ASSERT_NE(slot, nullptr);
        *slot = i;
        ring.commitPush();
    }
    // Full: backpressure.
    EXPECT_EQ(ring.tryBeginPush(), nullptr);
    for (int i = 0; i < 4; ++i) {
        int *front = ring.tryFront();
        ASSERT_NE(front, nullptr);
        EXPECT_EQ(*front, i);
        ring.pop();
    }
    EXPECT_EQ(ring.tryFront(), nullptr);
    EXPECT_FALSE(ring.drained());
    ring.close();
    EXPECT_TRUE(ring.drained());
}

TEST(SpscRing, SlotsAreReusedInPlace)
{
    SpscRing<std::vector<int>> ring(2);
    for (int lap = 0; lap < 6; ++lap) {
        std::vector<int> *slot = ring.tryBeginPush();
        ASSERT_NE(slot, nullptr);
        if (lap >= 4) {
            // After one full lap the slot keeps its previous capacity.
            EXPECT_GE(slot->capacity(), 100u);
        }
        slot->clear();
        slot->resize(100, lap);
        ring.commitPush();
        ASSERT_NE(ring.tryFront(), nullptr);
        EXPECT_EQ(ring.tryFront()->front(), lap);
        ring.pop();
    }
}

TEST(SpscRing, TwoThreadStressKeepsOrderAndContent)
{
    constexpr int kItems = 200000;
    SpscRing<int> ring(64);
    std::thread producer([&] {
        for (int i = 0; i < kItems; ++i) {
            int *slot;
            spscWait([&] { return (slot = ring.tryBeginPush()) != nullptr; },
                     [] { return false; });
            *slot = i;
            ring.commitPush();
        }
        ring.close();
    });
    long long sum = 0;
    int expected = 0;
    bool in_order = true;
    for (;;) {
        int *front;
        bool got = spscWait(
            [&] { return (front = ring.tryFront()) != nullptr; },
            [&] { return ring.drained(); });
        if (!got)
            break;
        in_order = in_order && (*front == expected++);
        sum += *front;
        ring.pop();
    }
    producer.join();
    EXPECT_TRUE(in_order);
    EXPECT_EQ(expected, kItems);
    EXPECT_EQ(sum, (long long)kItems * (kItems - 1) / 2);
}

// ---- serial vs threaded bit-determinism --------------------------------

Program
workloadByName(const std::string &kind, u64 seed, unsigned iterations)
{
    WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = iterations;
    opts.bodyLength = 48;
    if (kind == "microbench")
        return workload::makeMicrobench(opts);
    if (kind == "boot")
        return workload::makeBootLike(opts);
    if (kind == "compute")
        return workload::makeComputeLike(opts);
    if (kind == "vector")
        return workload::makeVectorLike(opts);
    return workload::makeIoHeavy(opts);
}

bool
isHostCounter(const std::string &name)
{
    return name.rfind("host.", 0) == 0;
}

const char *
optShortName(int level)
{
    switch (level) {
      case 0: return "Z";
      case 1: return "B";
      case 2: return "BN";
      default: return "BNSD";
    }
}

void
expectSameResult(const CosimResult &serial, const CosimResult &threaded)
{
    EXPECT_EQ(serial.verified, threaded.verified);
    EXPECT_EQ(serial.goodTrap, threaded.goodTrap);
    EXPECT_EQ(serial.cycles, threaded.cycles);
    EXPECT_EQ(serial.instrs, threaded.instrs);
    EXPECT_EQ(serial.simSpeedHz, threaded.simSpeedHz);
    EXPECT_EQ(serial.replayRan, threaded.replayRan);
    EXPECT_EQ(serial.replayComplete, threaded.replayComplete);

    EXPECT_EQ(serial.timing.totalSec, threaded.timing.totalSec);
    EXPECT_EQ(serial.timing.hwEmulationSec, threaded.timing.hwEmulationSec);
    EXPECT_EQ(serial.timing.startupSec, threaded.timing.startupSec);
    EXPECT_EQ(serial.timing.transmitSec, threaded.timing.transmitSec);
    EXPECT_EQ(serial.timing.softwareSec, threaded.timing.softwareSec);
    EXPECT_EQ(serial.timing.stallSec, threaded.timing.stallSec);
    EXPECT_EQ(serial.timing.transfers, threaded.timing.transfers);
    EXPECT_EQ(serial.timing.bytes, threaded.timing.bytes);

    EXPECT_EQ(serial.mismatch.valid, threaded.mismatch.valid);
    EXPECT_EQ(serial.mismatch.core, threaded.mismatch.core);
    EXPECT_EQ(serial.mismatch.seq, threaded.mismatch.seq);
    EXPECT_EQ(serial.mismatch.refPc, threaded.mismatch.refPc);
    EXPECT_EQ(serial.mismatch.eventType, threaded.mismatch.eventType);
    EXPECT_EQ(serial.mismatch.field, threaded.mismatch.field);
    EXPECT_EQ(serial.mismatch.expected, threaded.mismatch.expected);
    EXPECT_EQ(serial.mismatch.actual, threaded.mismatch.actual);
    EXPECT_EQ(serial.mismatch.component, threaded.mismatch.component);
    EXPECT_EQ(serial.mismatch.fused, threaded.mismatch.fused);
    EXPECT_EQ(serial.mismatch.replayed, threaded.mismatch.replayed);

    EXPECT_EQ(serial.invokesPerCycle, threaded.invokesPerCycle);
    EXPECT_EQ(serial.bytesPerCycle, threaded.bytesPerCycle);
    EXPECT_EQ(serial.rawBytesPerInstr, threaded.rawBytesPerInstr);
    EXPECT_EQ(serial.fusionRatio, threaded.fusionRatio);
    EXPECT_EQ(serial.bubbleFraction, threaded.bubbleFraction);
    EXPECT_EQ(serial.packetUtilization, threaded.packetUtilization);

    // Every counter must match bit-for-bit except the wall-clock host.*
    // telemetry (the documented exception). Compare both directions so a
    // key present on one side only is also a failure.
    for (const auto &[name, value] : serial.counters.integers()) {
        if (isHostCounter(name))
            continue;
        EXPECT_EQ(value, threaded.counters.get(name)) << name;
    }
    for (const auto &[name, value] : threaded.counters.integers()) {
        if (isHostCounter(name))
            continue;
        EXPECT_EQ(serial.counters.get(name), value) << name;
    }
    for (const auto &[name, value] : serial.counters.reals()) {
        if (isHostCounter(name))
            continue;
        EXPECT_EQ(value, threaded.counters.getReal(name)) << name;
    }
    for (const auto &[name, value] : threaded.counters.reals()) {
        if (isHostCounter(name))
            continue;
        EXPECT_EQ(serial.counters.getReal(name), value) << name;
    }
    for (const auto &[name, hist] : serial.counters.hists()) {
        if (isHostCounter(name))
            continue;
        auto it = threaded.counters.hists().find(name);
        if (it == threaded.counters.hists().end()) {
            ADD_FAILURE() << "histogram missing on threaded side: " << name;
            continue;
        }
        EXPECT_EQ(hist, it->second) << name;
    }
    for (const auto &[name, hist] : threaded.counters.hists()) {
        (void)hist;
        if (!isHostCounter(name) &&
            serial.counters.hists().find(name) ==
                serial.counters.hists().end()) {
            ADD_FAILURE() << "histogram missing on serial side: " << name;
        }
    }
}

CosimConfig
makeConfig(OptLevel level, unsigned host_threads)
{
    CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(level);
    cfg.hostThreads = host_threads;
    return cfg;
}

CosimResult
runOnce(OptLevel level, const char *kind, unsigned host_threads,
        const FaultSpec *fault = nullptr)
{
    Program p = workloadByName(kind, 42, 300);
    CosimConfig cfg = makeConfig(level, host_threads);
    CoSimulator sim(cfg, p);
    if (fault)
        sim.armFault(*fault);
    return sim.run(2'000'000);
}

class ThreadedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{};

TEST_P(ThreadedEquivalenceTest, ThreadedMatchesSerialBitForBit)
{
    auto [level_int, kind] = GetParam();
    auto level = static_cast<OptLevel>(level_int);
    CosimResult serial = runOnce(level, kind, 0);
    CosimResult threaded = runOnce(level, kind, 2);
    ASSERT_TRUE(serial.goodTrap);
    expectSameResult(serial, threaded);
    EXPECT_EQ(threaded.counters.get("host.threads"), 2u);
    EXPECT_GT(threaded.counters.get("host.hw_bundles"), 0u);
    EXPECT_EQ(threaded.counters.get("host.hw_bundles"),
              threaded.counters.get("host.sw_bundles"));
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, ThreadedEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values("microbench", "boot", "compute",
                                         "vector", "io")),
    [](const auto &info) {
        return std::string(optShortName(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param);
    });

TEST(ThreadedEquivalence, FaultInjectionMatchesSerial)
{
    // A mismatch stops the serial driver at the cycle that emitted the
    // fatal transfer while the threaded producer has run ahead; the
    // snapshot protocol must still yield identical results, including
    // the replay-refined mismatch report and the replay counters.
    FaultSpec fault;
    fault.archetype = BugArchetype::WrongRdValue;
    fault.triggerSeq = 5000;
    CosimResult serial = runOnce(OptLevel::BNSD, "boot", 0, &fault);
    CosimResult threaded = runOnce(OptLevel::BNSD, "boot", 2, &fault);
    ASSERT_FALSE(serial.verified);
    ASSERT_TRUE(serial.mismatch.valid);
    EXPECT_TRUE(serial.replayRan);
    expectSameResult(serial, threaded);
}

TEST(ThreadedEquivalence, FaultInjectionWithoutSquashMatchesSerial)
{
    // Exercises the copy-before-stamp originals path (no Squash).
    FaultSpec fault;
    fault.archetype = BugArchetype::WrongRdValue;
    fault.triggerSeq = 5000;
    CosimResult serial = runOnce(OptLevel::BN, "boot", 0, &fault);
    CosimResult threaded = runOnce(OptLevel::BN, "boot", 2, &fault);
    ASSERT_FALSE(serial.verified);
    expectSameResult(serial, threaded);
}

TEST(ThreadedEquivalence, ThreadedRunsAreDeterministic)
{
    CosimResult a = runOnce(OptLevel::BNSD, "compute", 2);
    CosimResult b = runOnce(OptLevel::BNSD, "compute", 2);
    expectSameResult(a, b);
}

// Regression: host telemetry accumulated across run() invocations of a
// reused CoSimulator — the second threaded run reported host.threads = 4,
// the third 6, and the wall-clock accumulators kept growing. Every run
// must start from a clean host sheet.
TEST(ThreadedEquivalence, RepeatedRunsResetHostTelemetry)
{
    Program p = workloadByName("microbench", 42, 100);
    CosimConfig cfg = makeConfig(OptLevel::BNSD, 2);
    CoSimulator sim(cfg, p);
    u64 prev_bundles = 0;
    for (int run = 0; run < 3; ++run) {
        CosimResult r = sim.run(2'000'000);
        EXPECT_EQ(r.counters.get("host.threads"), 2u) << "run " << run;
        u64 bundles = r.counters.get("host.hw_bundles");
        EXPECT_GT(bundles, 0u);
        // Later runs find the DUT already trapped, so they hand off fewer
        // bundles; an accumulating sheet would instead keep growing.
        if (run > 0) {
            EXPECT_LE(bundles, prev_bundles) << "run " << run;
        }
        prev_bundles = bundles;
    }

    CosimConfig serial_cfg = makeConfig(OptLevel::BNSD, 0);
    CoSimulator serial_sim(serial_cfg, p);
    for (int run = 0; run < 2; ++run) {
        CosimResult r = serial_sim.run(2'000'000);
        EXPECT_EQ(r.counters.get("host.threads"), 1u) << "run " << run;
    }
}

TEST(ThreadedEquivalence, TinyQueueDepthStillMatches)
{
    // Depth 2 maximizes backpressure interleavings.
    Program p = workloadByName("microbench", 42, 300);
    CosimConfig serial_cfg = makeConfig(OptLevel::BNSD, 0);
    CosimConfig tiny_cfg = makeConfig(OptLevel::BNSD, 2);
    tiny_cfg.hostQueueDepth = 2;
    CoSimulator serial_sim(serial_cfg, p);
    CoSimulator tiny_sim(tiny_cfg, p);
    CosimResult serial = serial_sim.run(2'000'000);
    CosimResult threaded = tiny_sim.run(2'000'000);
    ASSERT_TRUE(serial.goodTrap);
    expectSameResult(serial, threaded);
    EXPECT_GT(threaded.counters.get("host.hw_waits"), 0u);
}

// ---- stat registry under threads ---------------------------------------
// This suite runs in the ThreadSanitizer CI job alongside the ring tests:
// concurrent interning against one schema plus the shard-then-merge
// pattern the producer/consumer pipeline uses must be race-free and
// deterministic.

TEST(StatRegistry, ConcurrentInterningIsConsistent)
{
    obs::StatSchema schema;
    constexpr int kThreads = 8;
    constexpr int kNames = 64;
    std::vector<std::vector<obs::StatId>> ids(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ids[t].reserve(kNames);
            for (int n = 0; n < kNames; ++n) {
                std::string name = "race.stat_" + std::to_string(n);
                ids[t].push_back(
                    schema.stat(name, obs::StatKind::Sum));
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Every thread resolved every name to the same id.
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t], ids[0]);
    EXPECT_EQ(schema.statCount(), (size_t)kNames);
}

TEST(StatRegistry, PerThreadShardsMergeDeterministically)
{
    obs::StatSchema schema;
    constexpr int kThreads = 4;
    constexpr u64 kIncrements = 50000;
    std::vector<obs::StatSheet> shards(kThreads, obs::StatSheet(schema));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            obs::StatSheet &sheet = shards[t];
            obs::StatId events = sheet.sum("shard.events");
            obs::StatId peak = sheet.maxStat("shard.peak");
            obs::HistId h = sheet.hist("shard.depth");
            for (u64 i = 0; i < kIncrements; ++i) {
                sheet.add(events);
                sheet.trackMax(peak, t * kIncrements + i);
                sheet.observe(h, i & 0xff);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    obs::StatSheet merged(schema);
    for (const obs::StatSheet &shard : shards)
        merged.merge(shard);
    EXPECT_EQ(merged.get("shard.events"), kThreads * kIncrements);
    EXPECT_EQ(merged.get("shard.peak"), kThreads * kIncrements - 1);
    EXPECT_EQ(merged.findHist("shard.depth")->count,
              kThreads * kIncrements);
}

} // namespace
} // namespace dth::cosim
