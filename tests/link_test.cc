/**
 * @file
 * Tests for the link timing model: Eq. 1 attribution, blocking vs
 * non-blocking overlap, backpressure, and platform preset sanity.
 */

#include <gtest/gtest.h>

#include "area/area.h"
#include "link/link_sim.h"

namespace dth::link {
namespace {

Platform
simplePlatform()
{
    Platform p;
    p.name = "test";
    p.dutClockHz = 1e6;
    p.tSyncSec = 1e-6;
    p.bwBytesPerSec = 1e8;
    p.hwPaysTransmission = true;
    p.swPerTransferSec = 1e-6;
    p.swPerInstrSec = 0;
    p.swPerEventSec = 0;
    p.swPerByteSec = 0;
    p.queueDepth = 4;
    return p;
}

TEST(LinkSim, BlockingMatchesEquation1)
{
    // Overhead = N_invokes * T_sync + N_bytes / BW + T_software (Eq. 1).
    Platform p = simplePlatform();
    LinkSimulator sim(p, 1e6, /*non_blocking=*/false);
    for (u64 i = 0; i < 10; ++i)
        sim.onTransfer(i * 100, 1000, SoftwareWork{});
    LinkResult r = sim.finish(1000);
    double expected_emul = 1000 / 1e6;
    double expected_startup = 10 * 1e-6;
    double expected_xmit = 10 * 1000 / 1e8;
    double expected_sw = 10 * 1e-6;
    EXPECT_NEAR(r.hwEmulationSec, expected_emul, 1e-12);
    EXPECT_NEAR(r.startupSec, expected_startup, 1e-12);
    EXPECT_NEAR(r.transmitSec, expected_xmit, 1e-12);
    EXPECT_NEAR(r.softwareSec, expected_sw, 1e-12);
    EXPECT_NEAR(r.totalSec,
                expected_emul + expected_startup + expected_xmit +
                    expected_sw,
                1e-12);
    EXPECT_EQ(r.transfers, 10u);
    EXPECT_EQ(r.bytes, 10000u);
}

TEST(LinkSim, NonBlockingHidesSoftwareTime)
{
    Platform p = simplePlatform();
    p.swPerTransferSec = 0.5e-6; // software faster than hardware
    LinkSimulator blocking(p, 1e6, false);
    LinkSimulator overlap(p, 1e6, true);
    for (u64 i = 0; i < 100; ++i) {
        blocking.onTransfer(i * 10, 200, SoftwareWork{});
        overlap.onTransfer(i * 10, 200, SoftwareWork{});
    }
    LinkResult rb = blocking.finish(1000);
    LinkResult ro = overlap.finish(1000);
    EXPECT_LT(ro.totalSec, rb.totalSec);
    // All software time hidden: total == hw-side time.
    EXPECT_NEAR(ro.totalSec,
                ro.hwEmulationSec + ro.startupSec + ro.transmitSec, 1e-9);
}

TEST(LinkSim, NonBlockingBackpressureStallsWhenSoftwareIsSlow)
{
    Platform p = simplePlatform();
    p.swPerTransferSec = 50e-6; // software much slower than hardware
    p.queueDepth = 2;
    LinkSimulator sim(p, 1e6, true);
    for (u64 i = 0; i < 50; ++i)
        sim.onTransfer(i, 100, SoftwareWork{});
    LinkResult r = sim.finish(50);
    EXPECT_GT(r.stallSec, 0.0);
    // Throughput converges to the software rate.
    EXPECT_GT(r.totalSec, 45 * 50e-6);
}

TEST(LinkSim, SoftwareWorkScalesCost)
{
    Platform p = simplePlatform();
    p.swPerInstrSec = 1e-6;
    p.swPerEventSec = 1e-7;
    p.swPerByteSec = 1e-9;
    LinkSimulator sim(p, 1e6, false);
    SoftwareWork w;
    w.instrsStepped = 10;
    w.eventsChecked = 100;
    w.bytesParsed = 1000;
    sim.onTransfer(0, 1000, w);
    LinkResult r = sim.finish(0);
    EXPECT_NEAR(r.softwareSec, 1e-6 + 10e-6 + 10e-6 + 1e-6, 1e-12);
}

TEST(LinkSim, NonMonotonicCycleCountIsAStructuredError)
{
    // A total cycle count behind the last transfer's issue cycle is a
    // caller bug (or corrupted telemetry), but it is externally-supplied
    // data: finish() must clamp, count it in link.errors and surface it
    // in the result — never abort.
    Platform p = simplePlatform();
    LinkSimulator sim(p, 1e6, /*non_blocking=*/false);
    sim.onTransfer(500, 100, SoftwareWork{});
    LinkResult r = sim.finish(200); // behind issue cycle 500
    EXPECT_EQ(r.errors, 1u);
    // Clamped to the last issue cycle, so the attribution stays sane.
    EXPECT_NEAR(r.hwEmulationSec, 500 / 1e6, 1e-12);
    EXPECT_GT(r.totalSec, 0.0);
    obs::StatSnapshot snap = sim.counters().snapshot();
    EXPECT_EQ(snap.integers().at("link.errors"), 1);

    // A clean run reports zero errors (and the stat is still present).
    LinkSimulator ok(p, 1e6, false);
    ok.onTransfer(10, 100, SoftwareWork{});
    LinkResult ro = ok.finish(1000);
    EXPECT_EQ(ro.errors, 0u);
    EXPECT_EQ(ok.counters().snapshot().integers().at("link.errors"), 0);
}

TEST(LinkSim, RecoveryChargesAccumulate)
{
    Platform p = simplePlatform();
    LinkSimulator sim(p, 1e6, /*non_blocking=*/false);
    sim.onTransfer(0, 1000, SoftwareWork{});
    sim.onRetransmit(1000);      // one full retransmission
    sim.onRecoveryDelay(25e-6);  // one NAK/timeout wait
    LinkResult r = sim.finish(100);
    double xmit = 1000 / 1e8;
    EXPECT_NEAR(r.recoverySec, xmit + 25e-6, 1e-12);
    // Retransmission also shows up in the transmit-time attribution.
    EXPECT_NEAR(r.transmitSec, 2 * xmit, 1e-12);
}

TEST(LinkSim, CommunicationFraction)
{
    Platform p = simplePlatform();
    LinkSimulator sim(p, 1e6, false);
    sim.onTransfer(0, 100, SoftwareWork{});
    LinkResult r = sim.finish(1000);
    EXPECT_GT(r.communicationFraction(), 0.0);
    EXPECT_LT(r.communicationFraction(), 1.0);
    EXPECT_NEAR(r.communicationSec() + r.hwEmulationSec, r.totalSec,
                1e-12);
}

TEST(Platforms, PresetSanity)
{
    Platform pal = palladiumPlatform();
    Platform fpga = fpgaPlatform();
    // Paper Table 7: DUT-only 480 KHz (Palladium) and 50 MHz (FPGA).
    EXPECT_NEAR(pal.dutOnlyHz(57.6), 480e3, 1);
    EXPECT_NEAR(fpga.dutOnlyHz(57.6), 50e6, 1);
    // Paper Fig. 2: FPGA has costlier startup relative to its cycle but
    // far more bandwidth than the emulator's internal link.
    EXPECT_GT(fpga.bwBytesPerSec, pal.bwBytesPerSec * 5);
    // Smaller designs emulate faster on Palladium.
    EXPECT_GT(pal.dutOnlyHz(0.6), pal.dutOnlyHz(57.6));
}

TEST(Platforms, VerilatorModel)
{
    // ~4 KHz for XiangShan-default at 16 threads (119x under 478 KHz).
    double v16 = verilatorHz(57.6, 16);
    EXPECT_GT(v16, 3e3);
    EXPECT_LT(v16, 6e3);
    EXPECT_GT(verilatorHz(0.6, 16), v16);       // smaller design faster
    EXPECT_GT(v16, verilatorHz(57.6, 1));       // threads help
    EXPECT_LT(v16, 16 * verilatorHz(57.6, 1));  // sublinearly
}

TEST(Area, CalibratedToPaperFig15)
{
    using namespace dth::area;
    auto xs = dut::xsDefaultConfig();
    AreaEstimate without = estimateArea(xs, false);
    AreaEstimate with = estimateArea(xs, true);
    // Paper: ~6% without Batch, ~25% (max 26%) with Batch.
    EXPECT_NEAR(without.overheadFraction(), 0.06, 0.02);
    EXPECT_NEAR(with.overheadFraction(), 0.25, 0.06);
    EXPECT_EQ(probesPerCore(xs), 128u); // paper §6.4: 128 probes/core
}

TEST(Area, ScalesWithCoresAndWidth)
{
    using namespace dth::area;
    auto dual = dut::xsDualConfig();
    auto single = dut::xsDefaultConfig();
    AreaEstimate ad = estimateArea(dual, true);
    AreaEstimate as = estimateArea(single, true);
    EXPECT_NEAR(ad.difftestGatesM(), 2 * as.difftestGatesM(), 0.01);
    auto minimal = dut::xsMinimalConfig();
    EXPECT_LT(estimateArea(minimal, true).difftestGatesM(),
              as.difftestGatesM());
}

} // namespace
} // namespace dth::link
