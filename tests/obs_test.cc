/**
 * @file
 * Typed stat registry tests: kind-aware merging (the regression that
 * motivated the registry — the legacy string-keyed merge summed
 * max-tracked counters), log2 histograms, JSON snapshot round-trips,
 * malformed-input rejection, and an allocation counter proving the
 * per-event mutators never touch the heap.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/stats.h"

// ---- global allocation counter --------------------------------------------
// This TU owns its test binary, so overriding the global allocator here is
// safe. Counting is gated so gtest's own bookkeeping stays invisible.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

// GCC cannot see that the replacement operator new above is malloc-based
// and flags the free() as a new/free mismatch; it is not.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace dth::obs {
namespace {

// Private schema per fixture: test stats must not leak into the global
// schema the simulator components use.
class ObsTest : public ::testing::Test
{
  protected:
    StatSchema schema_;
};

// ---- kind-aware merge ------------------------------------------------------

TEST_F(ObsTest, MergeIsKindAware)
{
    StatSheet a(schema_), b(schema_);
    StatId sum = a.sum("t.sum");
    StatId mx = a.maxStat("t.max");
    StatId gauge = a.gauge("t.gauge");
    StatId real = a.real("t.real");
    b.sum("t.sum");
    b.maxStat("t.max");
    b.gauge("t.gauge");
    b.real("t.real");

    a.add(sum, 5);
    a.trackMax(mx, 100);
    a.set(gauge, 7);
    a.addReal(real, 0.5);
    b.add(sum, 3);
    b.trackMax(mx, 70);
    b.set(gauge, 9);
    b.addReal(real, 0.25);

    a.merge(b);
    EXPECT_EQ(a.get("t.sum"), 8u);
    // The legacy PerfCounters::merge summed every integer counter, so a
    // high-water mark like replay.buffered_bytes came out as 170 here.
    EXPECT_EQ(a.get("t.max"), 100u);
    EXPECT_EQ(a.get("t.gauge"), 9u); // last writer (incoming) wins
    EXPECT_DOUBLE_EQ(a.getReal("t.real"), 0.75);
}

TEST_F(ObsTest, MergeIntoUntouchedSheetAdoptsKinds)
{
    StatSheet src(schema_);
    StatId mx = src.maxStat("t.hiwater");
    src.trackMax(mx, 42);

    // dst never interned anything; merge must adopt the source's kinds so
    // a second merge still maxes instead of summing.
    StatSheet dst(schema_);
    dst.merge(src);
    dst.merge(src);
    EXPECT_EQ(dst.get("t.hiwater"), 42u);
}

TEST_F(ObsTest, MergeSkipsUntouchedStats)
{
    StatSheet a(schema_), b(schema_);
    a.gauge("t.g");
    StatId g = b.gauge("t.g");
    b.set(g, 3);
    b.merge(a); // a never wrote t.g; the gauge must not be zeroed
    EXPECT_EQ(b.get("t.g"), 3u);
}

TEST_F(ObsTest, ResetClearsValuesKeepsIds)
{
    StatSheet s(schema_);
    StatId sum = s.sum("t.s");
    HistId h = s.hist("t.h");
    s.add(sum, 9);
    s.observe(h, 4);
    s.reset();
    EXPECT_EQ(s.get("t.s"), 0u);
    EXPECT_TRUE(s.snapshot().empty());
    s.add(sum, 2);
    s.observe(h, 1);
    EXPECT_EQ(s.get("t.s"), 2u);
    EXPECT_EQ(s.findHist("t.h")->count, 1u);
}

TEST_F(ObsTest, SchemaInterningIsIdempotentAndKindChecked)
{
    StatId first = schema_.stat("t.a", StatKind::Sum);
    EXPECT_EQ(schema_.stat("t.a", StatKind::Sum), first);
    EXPECT_EQ(schema_.findStat("t.a"), first);
    EXPECT_EQ(schema_.findStat("t.unknown"), kInvalidStat);
    EXPECT_EQ(schema_.statDesc(first).kind, StatKind::Sum);
}

// Ports the old tests/common_test.cc Counters coverage onto snapshots.
TEST_F(ObsTest, SnapshotGetRatio)
{
    StatSheet s(schema_);
    StatId hits = s.sum("t.hits");
    StatId total = s.sum("t.total");
    s.add(hits, 3);
    s.add(total, 12);
    StatSnapshot snap = s.snapshot();
    EXPECT_EQ(snap.get("t.hits"), 3u);
    EXPECT_EQ(snap.get("t.absent"), 0u);
    EXPECT_DOUBLE_EQ(snap.ratio("t.hits", "t.total"), 0.25);
    EXPECT_DOUBLE_EQ(snap.ratio("t.hits", "t.absent"), 0.0);
    EXPECT_TRUE(snap.has("t.hits"));
    EXPECT_FALSE(snap.has("t.absent"));
}

// ---- histograms ------------------------------------------------------------

TEST(HistData, BucketOf)
{
    EXPECT_EQ(HistData::bucketOf(0), 0u);
    EXPECT_EQ(HistData::bucketOf(1), 1u);
    EXPECT_EQ(HistData::bucketOf(2), 2u);
    EXPECT_EQ(HistData::bucketOf(3), 2u);
    EXPECT_EQ(HistData::bucketOf(4), 3u);
    EXPECT_EQ(HistData::bucketOf((1u << 13) + 1), 14u);
    EXPECT_EQ(HistData::bucketOf(1u << 14), 15u);
    EXPECT_EQ(HistData::bucketOf(~0ull), kHistBuckets - 1);
}

TEST(HistData, ObserveAndMerge)
{
    HistData a;
    a.observe(0);
    a.observe(5);
    a.observe(4096);
    EXPECT_EQ(a.count, 3u);
    EXPECT_EQ(a.sum, 4101u);
    EXPECT_EQ(a.min, 0u);
    EXPECT_EQ(a.max, 4096u);
    EXPECT_DOUBLE_EQ(a.mean(), 4101.0 / 3.0);

    HistData b;
    b.observe(2);
    a.merge(b);
    EXPECT_EQ(a.count, 4u);
    EXPECT_EQ(a.buckets[HistData::bucketOf(2)], 1u);

    // Merging an empty histogram must not clobber min.
    HistData empty;
    a.merge(empty);
    EXPECT_EQ(a.min, 0u);
}

// ---- JSON round trip -------------------------------------------------------

TEST_F(ObsTest, JsonRoundTrip)
{
    StatSheet s(schema_);
    s.add(s.sum("t.sum"), 123456789012345ull);
    s.trackMax(s.maxStat("t.max"), 7);
    s.set(s.gauge("t.gauge"), 2);
    s.addReal(s.real("t.real"), 0.125);
    HistId h = s.hist("t.hist");
    s.observe(h, 0);
    s.observe(h, 1000);

    StatSnapshot snap = s.snapshot();
    std::string json = snapshotToJson(snap);
    StatSnapshot parsed;
    ASSERT_TRUE(snapshotFromJson(&parsed, json));
    EXPECT_EQ(parsed, snap);
    // Re-serialization is byte-identical (stable key order).
    EXPECT_EQ(snapshotToJson(parsed), json);
}

TEST(ObsJson, RejectsMalformedInput)
{
    StatSnapshot snap;
    EXPECT_FALSE(snapshotFromJson(&snap, ""));
    EXPECT_FALSE(snapshotFromJson(&snap, "not json"));
    EXPECT_FALSE(snapshotFromJson(&snap, "{\"schema\":\"wrong-id\"}"));
    EXPECT_FALSE(snapshotFromJson(
        &snap, "{\"schema\":\"dth-obs-v1\",\"stats\":{\"x\":"
               "{\"kind\":\"bogus\",\"value\":1}}}"));
    // Truncations of a valid document must fail cleanly, never abort.
    std::string good = "{\"schema\":\"dth-obs-v1\",\"stats\":{\"a\":"
                       "{\"kind\":\"sum\",\"value\":3}},\"hists\":{}}";
    ASSERT_TRUE(snapshotFromJson(&snap, good));
    for (size_t len = 0; len < good.size(); ++len)
        EXPECT_FALSE(snapshotFromJson(&snap, good.substr(0, len))) << len;
    // Deeply nested input trips the recursion cap instead of the stack.
    std::string deep(1000, '[');
    EXPECT_FALSE(snapshotFromJson(&snap, deep));
}

TEST(ObsJson, U64PrecisionSurvives)
{
    StatSnapshot snap;
    snap.setInt("t.big", StatKind::Sum, ~0ull);
    StatSnapshot parsed;
    ASSERT_TRUE(snapshotFromJson(&parsed, snapshotToJson(snap)));
    EXPECT_EQ(parsed.get("t.big"), ~0ull);
}

// ---- hot-path allocation freedom -------------------------------------------

TEST_F(ObsTest, HotPathMutatorsDoNotAllocate)
{
    StatSheet s(schema_);
    StatId sum = s.sum("t.sum");
    StatId mx = s.maxStat("t.max");
    StatId gauge = s.gauge("t.gauge");
    StatId real = s.real("t.real");
    HistId h = s.hist("t.hist");

    g_allocs.store(0);
    g_count_allocs.store(true);
    for (u64 i = 0; i < 100000; ++i) {
        s.add(sum, 2);
        s.trackMax(mx, i);
        s.set(gauge, i);
        s.addReal(real, 0.5);
        s.observe(h, i & 0xfff);
        (void)s.value(sum);
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_allocs.load(), 0u);
    EXPECT_EQ(s.get("t.sum"), 200000u);
}

// ---- snapshot-level merging (cross-session aggregation) --------------------

TEST_F(ObsTest, MergeSnapshotsFollowsKindRules)
{
    // Two "sessions" materialized to snapshots (the fleet/file form).
    StatSheet a(schema_), b(schema_);
    StatId sum = a.sum("t.sum"), mx = a.maxStat("t.max");
    StatId gauge = a.gauge("t.gauge"), real = a.real("t.real");
    HistId h = a.hist("t.hist");
    a.add(sum, 10);
    a.trackMax(mx, 7);
    a.set(gauge, 1);
    a.addReal(real, 0.5);
    a.observe(h, 2);
    b.add(b.sum("t.sum"), 5);
    b.trackMax(b.maxStat("t.max"), 3);
    b.set(b.gauge("t.gauge"), 9);
    b.addReal(b.real("t.real"), 0.25);
    b.observe(b.hist("t.hist"), 200);
    b.add(b.sum("t.only_b"), 1);

    StatSnapshot merged;
    std::string err;
    std::vector<const StatSnapshot *> parts;
    StatSnapshot sa = a.snapshot(), sb = b.snapshot();
    parts = {&sa, &sb};
    ASSERT_TRUE(mergeSnapshots(&merged, parts, &err)) << err;
    EXPECT_EQ(merged.get("t.sum"), 15u);
    EXPECT_EQ(merged.get("t.max"), 7u);
    EXPECT_EQ(merged.get("t.gauge"), 9u) << "gauge: last snapshot wins";
    EXPECT_DOUBLE_EQ(merged.getReal("t.real"), 0.75);
    EXPECT_EQ(merged.get("t.only_b"), 1u);
    const auto it = merged.hists().find("t.hist");
    ASSERT_NE(it, merged.hists().end());
    EXPECT_EQ(it->second.count, 2u);
    EXPECT_EQ(it->second.max, 200u);
    // Merge order decides the gauge: reversed inputs keep a's value.
    parts = {&sb, &sa};
    ASSERT_TRUE(mergeSnapshots(&merged, parts, &err)) << err;
    EXPECT_EQ(merged.get("t.gauge"), 1u);
}

TEST_F(ObsTest, MergeSnapshotsRejectsKindConflicts)
{
    StatSnapshot a, b;
    a.setInt("t.stat", StatKind::Sum, 1);
    b.setInt("t.stat", StatKind::Max, 2);
    StatSnapshot merged;
    std::string err;
    std::vector<const StatSnapshot *> parts{&a, &b};
    EXPECT_FALSE(mergeSnapshots(&merged, parts, &err));
    EXPECT_NE(err.find("t.stat"), std::string::npos) << err;
}

TEST_F(ObsTest, ApplySnapshotRoundTripsThroughSheet)
{
    StatSheet src(schema_);
    src.add(src.sum("t.sum"), 42);
    src.set(src.gauge("t.gauge"), 3);
    src.observe(src.hist("t.hist"), 8);
    StatSnapshot snap = src.snapshot();
    StatSheet dst(schema_);
    applySnapshot(&dst, snap);
    EXPECT_EQ(dst.snapshot(), snap);
}

// Merging shards is also steady-state allocation-free once the
// destination has seen the source layout (the per-bundle snapshotHw
// path in the threaded pipeline relies on this).
TEST_F(ObsTest, ResetAndMergeDoNotAllocateSteadyState)
{
    StatSheet src(schema_), dst(schema_);
    StatId sum = src.sum("t.sum");
    HistId h = src.hist("t.hist");
    src.add(sum, 1);
    src.observe(h, 3);
    dst.merge(src); // first merge may grow dst
    g_allocs.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 10000; ++i) {
        dst.reset();
        dst.merge(src);
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_allocs.load(), 0u);
    EXPECT_EQ(dst.get("t.sum"), 1u);
}

} // namespace
} // namespace dth::obs
