/**
 * @file
 * Tests for the packing schemes: mux-tree selection (paper Fig. 7),
 * pack/unpack roundtrip properties for all three packers, bubble
 * accounting in the fixed-offset baseline, and Batch packet utilization.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pack/muxtree.h"
#include "pack/packer.h"

namespace dth {
namespace {

TEST(MuxTree, PrefixCounts)
{
    std::vector<bool> valid = {true, false, true, true, false, true};
    auto prefix = prefixValidCounts(valid);
    EXPECT_EQ(prefix, (std::vector<unsigned>{0, 1, 1, 2, 3, 3}));
}

TEST(MuxTree, CompactionSelectsKthValid)
{
    std::vector<bool> valid = {false, true, false, true, true, false};
    auto out = compactValidIndices(valid);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 3u);
    EXPECT_EQ(out[2], 4u);
}

TEST(MuxTree, EmptyAndFull)
{
    EXPECT_TRUE(compactValidIndices({false, false}).empty());
    auto all = compactValidIndices({true, true, true});
    EXPECT_EQ(all, (std::vector<unsigned>{0, 1, 2}));
}

TEST(MuxTree, PropertyCompactionPreservesOrderAndCount)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<bool> valid(rng.nextRange(1, 64));
        unsigned expect = 0;
        for (size_t i = 0; i < valid.size(); ++i) {
            valid[i] = rng.chance(0.4);
            expect += valid[i] ? 1 : 0;
        }
        auto out = compactValidIndices(valid);
        ASSERT_EQ(out.size(), expect);
        for (size_t k = 0; k + 1 < out.size(); ++k)
            EXPECT_LT(out[k], out[k + 1]);
        for (unsigned idx : out)
            EXPECT_TRUE(valid[idx]);
    }
}

// ---------------------------------------------------------------------------
// Random event streams for roundtrip properties.
// ---------------------------------------------------------------------------

Event
randomEvent(Rng &rng, unsigned cores, u64 seq, u64 emit)
{
    auto type = static_cast<EventType>(rng.nextBelow(kNumEventTypes));
    Event e = Event::make(type, static_cast<u8>(rng.nextBelow(cores)),
                          static_cast<u8>(rng.nextBelow(6)), seq);
    e.emitSeq = emit;
    for (auto &b : e.payload)
        b = static_cast<u8>(rng.next());
    return e;
}

std::vector<CycleEvents>
randomStream(Rng &rng, unsigned cycles, unsigned cores)
{
    std::vector<CycleEvents> stream;
    u64 seq = 0;
    u64 emit = 0;
    for (unsigned c = 0; c < cycles; ++c) {
        CycleEvents ce;
        ce.cycle = c;
        unsigned n = static_cast<unsigned>(rng.nextBelow(12));
        for (unsigned i = 0; i < n; ++i) {
            seq += rng.nextBelow(3);
            ce.events.push_back(randomEvent(rng, cores, seq, emit++));
        }
        stream.push_back(std::move(ce));
    }
    return stream;
}

/** Multiset equality plus per-(type,core) relative order preservation. */
void
expectSameEvents(const std::vector<Event> &original,
                 const std::vector<Event> &unpacked)
{
    ASSERT_EQ(original.size(), unpacked.size());
    // Per (type, core) order must be preserved exactly.
    for (unsigned t = 0; t < kNumEventTypes; ++t) {
        for (unsigned c = 0; c < 2; ++c) {
            std::vector<const Event *> a, b;
            for (const Event &e : original)
                if (static_cast<unsigned>(e.type) == t && e.core == c)
                    a.push_back(&e);
            for (const Event &e : unpacked)
                if (static_cast<unsigned>(e.type) == t && e.core == c)
                    b.push_back(&e);
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i)
                EXPECT_TRUE(*a[i] == *b[i])
                    << eventInfo(t).name << " entry " << i;
        }
    }
}

class PackerRoundTripTest : public ::testing::TestWithParam<u64>
{};

TEST_P(PackerRoundTripTest, PerEvent)
{
    Rng rng(GetParam());
    auto stream = randomStream(rng, 50, 2);
    PerEventPacker packer;
    PerEventUnpacker unpacker;
    std::vector<Event> original, unpacked;
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream) {
        for (const Event &e : ce.events)
            original.push_back(e);
        packer.packCycle(ce, transfers);
    }
    packer.flush(transfers);
    for (const Transfer &t : transfers)
        for (Event &e : unpacker.unpack(t))
            unpacked.push_back(std::move(e));
    // Per-event transport preserves total order exactly.
    ASSERT_EQ(original.size(), unpacked.size());
    for (size_t i = 0; i < original.size(); ++i)
        EXPECT_TRUE(original[i] == unpacked[i]) << i;
}

TEST_P(PackerRoundTripTest, Batch)
{
    Rng rng(GetParam() ^ 0xBA7C4);
    auto stream = randomStream(rng, 80, 2);
    BatchPacker packer(4096);
    BatchUnpacker unpacker;
    std::vector<Event> original, unpacked;
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream) {
        for (const Event &e : ce.events)
            original.push_back(e);
        packer.packCycle(ce, transfers);
    }
    packer.flush(transfers);
    for (const Transfer &t : transfers) {
        EXPECT_LE(t.size(), 4096u);
        for (Event &e : unpacker.unpack(t))
            unpacked.push_back(std::move(e));
    }
    expectSameEvents(original, unpacked);
}

TEST_P(PackerRoundTripTest, BatchSmallPackets)
{
    // Tiny packets force many entry-boundary splits; the largest event
    // (2720 B) must still fit.
    Rng rng(GetParam() ^ 0x5417);
    auto stream = randomStream(rng, 40, 1);
    BatchPacker packer(3000);
    BatchUnpacker unpacker;
    std::vector<Event> original, unpacked;
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream) {
        for (const Event &e : ce.events)
            original.push_back(e);
        packer.packCycle(ce, transfers);
    }
    packer.flush(transfers);
    for (const Transfer &t : transfers)
        for (Event &e : unpacker.unpack(t))
            unpacked.push_back(std::move(e));
    expectSameEvents(original, unpacked);
}

TEST_P(PackerRoundTripTest, FixedOffset)
{
    Rng rng(GetParam() ^ 0xF1CED);
    auto stream = randomStream(rng, 50, 2);
    std::array<bool, kNumEventTypes> enabled{};
    enabled.fill(true);
    FixedOffsetPacker packer(enabled, 2, 4096);
    FixedOffsetUnpacker unpacker(enabled, 2);
    std::vector<Event> original, unpacked;
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream) {
        for (const Event &e : ce.events)
            original.push_back(e);
        packer.packCycle(ce, transfers);
    }
    packer.flush(transfers);
    for (const Transfer &t : transfers)
        for (Event &e : unpacker.unpack(t))
            unpacked.push_back(std::move(e));
    expectSameEvents(original, unpacked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackerRoundTripTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(BatchPacker, VariableLengthEventsRoundTrip)
{
    BatchPacker packer(4096);
    BatchUnpacker unpacker;
    CycleEvents ce;
    ce.cycle = 0;
    Rng rng(4);
    for (unsigned i = 0; i < 10; ++i) {
        Event e;
        e.type = EventType::DiffState;
        e.core = 0;
        e.commitSeq = i;
        e.emitSeq = i;
        e.payload.resize(rng.nextRange(8, 400));
        for (auto &b : e.payload)
            b = static_cast<u8>(rng.next());
        ce.events.push_back(std::move(e));
    }
    std::vector<Transfer> transfers;
    packer.packCycle(ce, transfers);
    packer.flush(transfers);
    std::vector<Event> unpacked;
    for (const Transfer &t : transfers)
        for (Event &e : unpacker.unpack(t))
            unpacked.push_back(std::move(e));
    ASSERT_EQ(unpacked.size(), ce.events.size());
    for (size_t i = 0; i < unpacked.size(); ++i)
        EXPECT_TRUE(unpacked[i] == ce.events[i]) << i;
}

TEST(BatchPacker, TightPackingHasNoBubbles)
{
    Rng rng(5);
    auto stream = randomStream(rng, 60, 1);
    BatchPacker packer(4096);
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream)
        packer.packCycle(ce, transfers);
    packer.flush(transfers);
    EXPECT_EQ(packer.counters().get("pack.bubble_bytes"), 0u);
    EXPECT_GT(packer.counters().get("pack.transfers"), 0u);
}

TEST(BatchPacker, UtilizationIsHighForFullPackets)
{
    Rng rng(6);
    auto stream = randomStream(rng, 400, 2);
    BatchPacker packer(4096);
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream)
        packer.packCycle(ce, transfers);
    // Exclude the trailing partial packet from the check.
    double util = packer.counters().getReal("pack.utilization_sum") /
                  packer.counters().get("pack.utilization_samples");
    EXPECT_GT(util, 0.80);
}

TEST(FixedOffsetPacker, BubblesDominateSparseCycles)
{
    // One valid commit out of six slots: five slots transmitted as
    // padding (the paper's >60% bubble observation).
    std::array<bool, kNumEventTypes> enabled{};
    enabled.fill(true);
    FixedOffsetPacker packer(enabled, 1, 4096);
    CycleEvents ce;
    ce.cycle = 0;
    ce.events.push_back(Event::make(EventType::InstrCommit, 0, 0, 1));
    std::vector<Transfer> transfers;
    packer.packCycle(ce, transfers);
    packer.flush(transfers);
    u64 bubbles = packer.counters().get("pack.bubble_bytes");
    u64 valid = packer.counters().get("pack.valid_bytes");
    EXPECT_GT(bubbles, 3 * valid);
}

TEST(FixedOffsetPacker, OverflowBeyondCapacityIsCarried)
{
    // 10 TLB events with entriesPerCore 8: capacity grows, nothing lost.
    std::array<bool, kNumEventTypes> enabled{};
    enabled.fill(true);
    FixedOffsetPacker packer(enabled, 1, 65536);
    FixedOffsetUnpacker unpacker(enabled, 1);
    CycleEvents ce;
    ce.cycle = 0;
    for (unsigned i = 0; i < 10; ++i) {
        Event e = Event::make(EventType::L1TlbEvent, 0, 0, i);
        e.emitSeq = i;
        ce.events.push_back(std::move(e));
    }
    std::vector<Transfer> transfers;
    packer.packCycle(ce, transfers);
    packer.flush(transfers);
    size_t n = 0;
    for (const Transfer &t : transfers)
        n += unpacker.unpack(t).size();
    EXPECT_EQ(n, 10u);
}

TEST(Wire, EventWireBytesMatchesSerialization)
{
    Rng rng(9);
    for (unsigned t = 0; t < kNumEventTypes; ++t) {
        Event e = Event::make(static_cast<EventType>(t), 0, 1, 5);
        e.emitSeq = 9;
        ByteWriter w;
        writeEventBody(w, e);
        EXPECT_EQ(w.size(), eventWireBytes(e)) << eventInfo(t).name;
        ByteReader r(w.bytes());
        Event back = readEventBody(r, e.type, e.core);
        EXPECT_TRUE(back == e) << eventInfo(t).name;
    }
}

} // namespace
} // namespace dth
