/**
 * @file
 * End-to-end properties of the acceleration pipeline, independent of
 * the DUT/checker: random monitor-like streams are pushed through
 * SquashUnit -> BatchPacker -> (wire) -> BatchUnpacker ->
 * SquashCompleter -> Reorderer, and structural invariants are asserted:
 * conservation (every commit is covered by exactly one fused window,
 * every NDE delivered exactly once), order restoration (released events
 * sorted by checking order), and snapshot completion correctness (the
 * reconstructed snapshot equals the last original snapshot of its
 * window, byte for byte).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pack/packer.h"
#include "squash/squash.h"

namespace dth {
namespace {

struct SyntheticStream
{
    std::vector<CycleEvents> cycles;
    u64 commits = 0;
    u64 ndes = 0;
    std::vector<std::vector<u8>> snapshots; //!< every emitted IntReg state
};

SyntheticStream
makeStream(Rng &rng, unsigned num_cycles)
{
    SyntheticStream s;
    u64 seq = 0;
    std::array<u64, 32> regs{};
    for (unsigned c = 0; c < num_cycles; ++c) {
        CycleEvents ce;
        ce.cycle = c;
        unsigned commits = static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned k = 0; k < commits; ++k) {
            ++seq;
            if (rng.chance(0.15)) {
                Event nde = Event::make(EventType::MmioEvent, 0, 0, seq);
                MmioView v(nde);
                v.set_addr(0x10000000 + seq);
                v.set_data(rng.next());
                v.set_seqNo(seq);
                v.set_isLoad(1);
                ce.events.push_back(std::move(nde));
                ++s.ndes;
            }
            Event commit =
                Event::make(EventType::InstrCommit, 0,
                            static_cast<u8>(k), seq);
            InstrCommitView v(commit);
            v.set_pc(0x80000000 + seq * 4);
            v.set_instr(0x13);
            v.set_seqNo(seq);
            v.set_nextPc(0x80000000 + seq * 4 + 4);
            regs[rng.nextBelow(31) + 1] = rng.next();
            v.set_rdVal(regs[5]);
            ce.events.push_back(std::move(commit));
            ++s.commits;
        }
        if (commits > 0) {
            Event snap =
                Event::make(EventType::ArchIntRegState, 0, 0, seq);
            RegFileView rv(snap);
            for (unsigned i = 0; i < 32; ++i)
                rv.setReg(i, regs[i]);
            s.snapshots.push_back(snap.payload);
            ce.events.push_back(std::move(snap));
        }
        s.cycles.push_back(std::move(ce));
    }
    return s;
}

class PipelinePropertyTest : public ::testing::TestWithParam<u64>
{};

TEST_P(PipelinePropertyTest, ConservationOrderAndCompletion)
{
    Rng rng(GetParam());
    SyntheticStream stream = makeStream(rng, 300);

    SquashConfig sc;
    sc.maxFuse = 1 + static_cast<unsigned>(rng.nextBelow(48));
    SquashUnit squash(sc);
    BatchPacker packer(3000 + static_cast<unsigned>(rng.nextBelow(8)) *
                                  1024);
    BatchUnpacker unpacker;
    SquashCompleter completer(1);
    Reorderer reorderer(1);

    u64 emit = 0;
    std::vector<Transfer> transfers;
    for (const CycleEvents &ce : stream.cycles) {
        CycleEvents out = squash.process(ce);
        for (Event &e : out.events)
            e.emitSeq = emit++;
        packer.packCycle(out, transfers);
    }
    CycleEvents tail = squash.finish();
    for (Event &e : tail.events)
        e.emitSeq = emit++;
    packer.packCycle(tail, transfers);
    packer.flush(transfers);

    std::vector<Event> released;
    for (const Transfer &t : transfers) {
        for (Event &e : unpacker.unpack(t))
            reorderer.push(completer.complete(e));
        for (Event &e : reorderer.drain())
            released.push_back(std::move(e));
    }
    for (Event &e : reorderer.drainAll())
        released.push_back(std::move(e));
    EXPECT_EQ(reorderer.pending(), 0u);

    // (a) Checking order is restored.
    for (size_t i = 0; i + 1 < released.size(); ++i) {
        EXPECT_FALSE(checkingOrderLess(released[i + 1], released[i]))
            << "out of order at " << i;
    }

    // (b) Conservation: fused windows tile the commit sequence exactly;
    // NDEs arrive exactly once, before their covering window closes.
    u64 covered = 0;
    u64 next_first = 1;
    u64 ndes_seen = 0;
    std::vector<std::vector<u8>> snapshots_seen;
    for (const Event &e : released) {
        switch (e.type) {
          case EventType::FusedCommit: {
            FusedCommitView v(e);
            EXPECT_EQ(v.firstSeq(), next_first);
            EXPECT_LE(v.count(), sc.maxFuse);
            covered += v.count();
            next_first = v.lastSeq() + 1;
            break;
          }
          case EventType::MmioEvent:
            ++ndes_seen;
            // Everything at this NDE's tag or earlier must already be
            // covered once the window containing it closes; here we
            // check the NDE precedes that closure.
            EXPECT_GE(e.commitSeq, covered);
            break;
          case EventType::ArchIntRegState:
            snapshots_seen.push_back(e.payload);
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(covered, stream.commits);
    EXPECT_EQ(ndes_seen, stream.ndes);

    // (c) Completion: every released snapshot must be byte-identical to
    // SOME original snapshot (the latest of its window), and the final
    // one must equal the final original state.
    for (const auto &seen : snapshots_seen) {
        bool found = false;
        for (const auto &orig : stream.snapshots)
            found |= orig == seen;
        EXPECT_TRUE(found) << "reconstructed snapshot not in originals";
    }
    ASSERT_FALSE(snapshots_seen.empty());
    EXPECT_EQ(snapshots_seen.back(), stream.snapshots.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
} // namespace dth
