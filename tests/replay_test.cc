/**
 * @file
 * Tests for the Replay substrate: compensation-log revert properties
 * (random programs, revert == snapshot restore) and the token-managed
 * hardware replay buffer.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "replay/buffer.h"
#include "replay/undo_log.h"
#include "workload/generators.h"

namespace dth::replay {
namespace {

using namespace dth::riscv;
using namespace dth::workload;

TEST(UndoLog, RevertRestoresRegistersAndPc)
{
    Soc soc;
    ProgramBuilder b;
    b.li(5, 111);
    b.li(6, 222);
    b.emit(add(7, 5, 6));
    b.emitHalt(0);
    Program p = b.assemble("t");
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());

    UndoLog log(soc.core);
    soc.core.setObserver(&log);
    log.mark();
    ArchSnapshot before = soc.core.snapshot();
    for (int i = 0; i < 3; ++i)
        soc.core.step();
    EXPECT_FALSE(before == soc.core.snapshot());
    log.revertToMark();
    EXPECT_TRUE(before == soc.core.snapshot());
    EXPECT_EQ(soc.core.seqNo(), 0u);
}

TEST(UndoLog, RevertRestoresMemory)
{
    Soc soc;
    ProgramBuilder b;
    b.li(5, kRamBase + 0x4000);
    b.li(6, 0xAABB);
    b.emit(sd(6, 5, 0));
    b.emit(sd(6, 5, 8));
    b.emitHalt(0);
    Program p = b.assemble("t");
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    soc.bus.ram().write(kRamBase + 0x4000, 8, 0x1234);

    UndoLog log(soc.core);
    soc.core.setObserver(&log);
    log.mark();
    while (!soc.core.halted())
        soc.core.step();
    EXPECT_EQ(soc.bus.ram().read(kRamBase + 0x4000, 8), 0xAABBu);
    log.revertToMark();
    EXPECT_EQ(soc.bus.ram().read(kRamBase + 0x4000, 8), 0x1234u);
    EXPECT_EQ(soc.bus.ram().read(kRamBase + 0x4008, 8), 0u);
    EXPECT_FALSE(soc.core.halted());
}

TEST(UndoLog, MarkRetainsTwoWindows)
{
    // revertToMark() must restore the state at the *older* of the last
    // two marks (content checks can fail after a boundary was marked).
    Soc soc;
    ProgramBuilder b;
    for (int i = 0; i < 10; ++i)
        b.emit(addi(5, 5, 1));
    b.emitHalt(0);
    Program p = b.assemble("t");
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());

    UndoLog log(soc.core);
    soc.core.setObserver(&log);
    soc.core.step();
    soc.core.step();
    log.mark(); // boundary A: x5 == 2
    ArchSnapshot at_a = soc.core.snapshot();
    soc.core.step();
    soc.core.step();
    log.mark(); // boundary B: x5 == 4; log still covers A..now
    soc.core.step();
    log.revertToMark();
    EXPECT_TRUE(at_a == soc.core.snapshot());
}

TEST(UndoLog, PropertyRevertEqualsSnapshotOnRandomPrograms)
{
    for (u64 seed : {1u, 2u, 3u, 4u, 5u}) {
        WorkloadOptions opts;
        opts.seed = seed;
        opts.iterations = 4;
        opts.bodyLength = 40;
        Program p = makeBootLike(opts);
        Soc soc(CoreConfig{.resetPc = p.base, .autoInterrupts = true});
        soc.bus.ram().load(p.base, p.image.data(), p.image.size());
        UndoLog log(soc.core);
        soc.core.setObserver(&log);

        Rng rng(seed * 77);
        // Advance a random amount, mark, advance, revert, compare.
        u64 warmup = rng.nextRange(10, 120);
        for (u64 i = 0; i < warmup && !soc.core.halted(); ++i) {
            soc.core.step();
            soc.clint.tick();
        }
        log.mark();
        log.mark(); // make the younger window the revert target
        ArchSnapshot snap = soc.core.snapshot();
        u64 run = rng.nextRange(10, 200);
        for (u64 i = 0; i < run && !soc.core.halted(); ++i) {
            soc.core.step();
            soc.clint.tick();
        }
        log.revertToMark();
        EXPECT_TRUE(snap == soc.core.snapshot()) << "seed " << seed;
    }
}

TEST(ReplayBuffer, RequestReturnsWindowInOrder)
{
    ReplayBuffer buf(1, 100);
    for (u64 seq = 1; seq <= 20; ++seq) {
        Event e = Event::make(EventType::InstrCommit, 0, 0, seq);
        buf.record(e);
    }
    bool complete = false;
    auto window = buf.request(0, 5, 9, &complete);
    EXPECT_TRUE(complete);
    ASSERT_EQ(window.size(), 5u);
    for (u64 i = 0; i < window.size(); ++i)
        EXPECT_EQ(window[i].commitSeq, 5 + i);
}

TEST(ReplayBuffer, TokenFilteringDropsLaterEvents)
{
    // Events that arrive between the bug and the replay notification are
    // filtered out by their tokens (paper §4.4).
    ReplayBuffer buf(1, 100);
    for (u64 seq = 1; seq <= 50; ++seq)
        buf.record(Event::make(EventType::InstrCommit, 0, 0, seq));
    bool complete = false;
    auto window = buf.request(0, 10, 12, &complete);
    EXPECT_TRUE(complete);
    EXPECT_EQ(window.size(), 3u);
}

TEST(ReplayBuffer, EvictionMarksIncompleteRanges)
{
    ReplayBuffer buf(1, 8);
    for (u64 seq = 1; seq <= 32; ++seq)
        buf.record(Event::make(EventType::InstrCommit, 0, 0, seq));
    bool complete = true;
    auto window = buf.request(0, 1, 8, &complete);
    EXPECT_FALSE(complete);
    EXPECT_TRUE(window.empty());
    EXPECT_GT(buf.counters().get("replay.evictions"), 0u);
}

TEST(ReplayBuffer, ReleaseDropsVerifiedPrefix)
{
    ReplayBuffer buf(1, 100);
    for (u64 seq = 1; seq <= 20; ++seq)
        buf.record(Event::make(EventType::InstrCommit, 0, 0, seq));
    buf.release(0, 10);
    EXPECT_EQ(buf.buffered(0), 10u);
    bool complete = true;
    auto window = buf.request(0, 5, 9, &complete);
    EXPECT_TRUE(window.empty());
    EXPECT_FALSE(complete);
}

TEST(ReplayBuffer, MultiCoreRingsAreIndependent)
{
    ReplayBuffer buf(2, 100);
    buf.record(Event::make(EventType::InstrCommit, 0, 0, 1));
    buf.record(Event::make(EventType::InstrCommit, 1, 0, 1));
    buf.record(Event::make(EventType::InstrCommit, 1, 0, 2));
    EXPECT_EQ(buf.buffered(0), 1u);
    EXPECT_EQ(buf.buffered(1), 2u);
    EXPECT_GT(buf.bufferedBytes(), 0u);
}

} // namespace
} // namespace dth::replay
