/**
 * @file
 * Encoder/decoder roundtrip properties: every mini-assembler encoding
 * must decode back to the same operation and operand fields, across
 * randomized registers and immediates.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/bits.h"
#include "common/rng.h"
#include "riscv/encoding.h"
#include "riscv/instr.h"
#include "workload/asm.h"

namespace dth::riscv {
namespace {

using namespace dth::workload;

TEST(AsmRoundTrip, RTypeOps)
{
    Rng rng(3);
    struct Case
    {
        u32 (*enc)(u8, u8, u8);
        Op op;
    } cases[] = {
        {add, Op::Add},       {sub, Op::Sub},   {sll, Op::Sll},
        {slt, Op::Slt},       {sltu, Op::Sltu}, {xor_, Op::Xor},
        {srl, Op::Srl},       {sra, Op::Sra},   {or_, Op::Or},
        {and_, Op::And},      {addw, Op::Addw}, {subw, Op::Subw},
        {mul, Op::Mul},       {mulh, Op::Mulh}, {div_, Op::Div},
        {divu, Op::Divu},     {rem, Op::Rem},   {remu, Op::Remu},
        {mulw, Op::Mulw},
    };
    for (const Case &c : cases) {
        for (int trial = 0; trial < 20; ++trial) {
            u8 rd = static_cast<u8>(rng.nextBelow(32));
            u8 rs1 = static_cast<u8>(rng.nextBelow(32));
            u8 rs2 = static_cast<u8>(rng.nextBelow(32));
            DecodedInstr d = decode(c.enc(rd, rs1, rs2));
            EXPECT_EQ(d.op, c.op) << opName(c.op);
            EXPECT_EQ(d.rd, rd);
            EXPECT_EQ(d.rs1, rs1);
            EXPECT_EQ(d.rs2, rs2);
        }
    }
}

TEST(AsmRoundTrip, ITypeImmediates)
{
    Rng rng(5);
    struct Case
    {
        u32 (*enc)(u8, u8, i32);
        Op op;
    } cases[] = {
        {addi, Op::Addi},   {slti, Op::Slti}, {sltiu, Op::Sltiu},
        {xori, Op::Xori},   {ori, Op::Ori},   {andi, Op::Andi},
        {addiw, Op::Addiw}, {jalr, Op::Jalr}, {lb, Op::Lb},
        {lh, Op::Lh},       {lw, Op::Lw},     {ld, Op::Ld},
        {lbu, Op::Lbu},     {lhu, Op::Lhu},   {lwu, Op::Lwu},
    };
    for (const Case &c : cases) {
        for (int trial = 0; trial < 20; ++trial) {
            u8 rd = static_cast<u8>(rng.nextBelow(32));
            u8 rs1 = static_cast<u8>(rng.nextBelow(32));
            i32 imm = static_cast<i32>(rng.nextRange(0, 4095)) - 2048;
            DecodedInstr d = decode(c.enc(rd, rs1, imm));
            EXPECT_EQ(d.op, c.op) << opName(c.op);
            EXPECT_EQ(d.rd, rd);
            EXPECT_EQ(d.rs1, rs1);
            EXPECT_EQ(d.imm, imm) << opName(c.op) << " imm " << imm;
        }
    }
}

TEST(AsmRoundTrip, StoreImmediates)
{
    Rng rng(7);
    struct Case
    {
        u32 (*enc)(u8, u8, i32);
        Op op;
    } cases[] = {
        {sb, Op::Sb}, {sh, Op::Sh}, {sw, Op::Sw}, {sd, Op::Sd},
    };
    for (const Case &c : cases) {
        for (int trial = 0; trial < 20; ++trial) {
            u8 rs2 = static_cast<u8>(rng.nextBelow(32));
            u8 rs1 = static_cast<u8>(rng.nextBelow(32));
            i32 imm = static_cast<i32>(rng.nextRange(0, 4095)) - 2048;
            DecodedInstr d = decode(c.enc(rs2, rs1, imm));
            EXPECT_EQ(d.op, c.op);
            EXPECT_EQ(d.rs1, rs1);
            EXPECT_EQ(d.rs2, rs2);
            EXPECT_EQ(d.imm, imm);
        }
    }
}

TEST(AsmRoundTrip, BranchOffsets)
{
    Rng rng(9);
    struct Case
    {
        u32 (*enc)(u8, u8, i32);
        Op op;
    } cases[] = {
        {beq, Op::Beq},   {bne, Op::Bne},   {blt, Op::Blt},
        {bge, Op::Bge},   {bltu, Op::Bltu}, {bgeu, Op::Bgeu},
    };
    for (const Case &c : cases) {
        for (int trial = 0; trial < 30; ++trial) {
            u8 rs1 = static_cast<u8>(rng.nextBelow(32));
            u8 rs2 = static_cast<u8>(rng.nextBelow(32));
            i32 off =
                (static_cast<i32>(rng.nextRange(0, 4094)) - 2048) & ~1;
            DecodedInstr d = decode(c.enc(rs1, rs2, off));
            EXPECT_EQ(d.op, c.op);
            EXPECT_EQ(d.imm, off) << opName(c.op);
        }
    }
}

TEST(AsmRoundTrip, JalFullRange)
{
    Rng rng(11);
    for (int trial = 0; trial < 100; ++trial) {
        u8 rd = static_cast<u8>(rng.nextBelow(32));
        i32 off = (static_cast<i32>(rng.nextRange(0, (1u << 21) - 2)) -
                   (1 << 20)) &
                  ~1;
        DecodedInstr d = decode(jal(rd, off));
        EXPECT_EQ(d.op, Op::Jal);
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.imm, off);
    }
}

TEST(AsmRoundTrip, UTypeAndShifts)
{
    DecodedInstr d = decode(lui(7, 0xABCDE));
    EXPECT_EQ(d.op, Op::Lui);
    EXPECT_EQ(d.imm, static_cast<i64>(sext(0xABCDEULL << 12, 32)));
    d = decode(auipc(3, 0x12345));
    EXPECT_EQ(d.op, Op::Auipc);

    for (u32 shamt : {0u, 1u, 31u, 32u, 63u}) {
        EXPECT_EQ(decode(slli(1, 2, shamt)).imm,
                  static_cast<i64>(shamt));
        EXPECT_EQ(decode(srli(1, 2, shamt)).imm,
                  static_cast<i64>(shamt));
        EXPECT_EQ(decode(srai(1, 2, shamt)).imm,
                  static_cast<i64>(shamt));
        EXPECT_EQ(decode(srai(1, 2, shamt)).op, Op::Srai);
    }
}

TEST(AsmRoundTrip, CsrOps)
{
    for (u16 csr : {kCsrMstatus, kCsrMtvec, kCsrMscratch, kCsrMepc,
                    kCsrSatp, kCsrFcsr, kCsrVl}) {
        EXPECT_EQ(decode(csrrw(5, csr, 6)).csr, csr);
        EXPECT_EQ(decode(csrrw(5, csr, 6)).op, Op::Csrrw);
        EXPECT_EQ(decode(csrrs(5, csr, 6)).op, Op::Csrrs);
        EXPECT_EQ(decode(csrrc(5, csr, 6)).op, Op::Csrrc);
        EXPECT_EQ(decode(csrrwi(5, csr, 9)).op, Op::Csrrwi);
        EXPECT_EQ(decode(csrrwi(5, csr, 9)).imm, 9);
        EXPECT_EQ(decode(csrrsi(5, csr, 9)).op, Op::Csrrsi);
    }
}

TEST(AsmRoundTrip, AmoAndSystem)
{
    EXPECT_EQ(decode(lrD(1, 2)).op, Op::LrD);
    EXPECT_EQ(decode(scD(1, 2, 3)).op, Op::ScD);
    EXPECT_EQ(decode(amoaddD(1, 2, 3)).op, Op::AmoAddD);
    EXPECT_EQ(decode(amoswapD(1, 2, 3)).op, Op::AmoSwapD);
    EXPECT_EQ(decode(amoorD(1, 2, 3)).op, Op::AmoOrD);
    EXPECT_EQ(decode(amoaddW(1, 2, 3)).op, Op::AmoAddW);
    EXPECT_EQ(decode(ecall()).op, Op::Ecall);
    EXPECT_EQ(decode(ebreak()).op, Op::Ebreak);
    EXPECT_EQ(decode(mret()).op, Op::Mret);
    EXPECT_EQ(decode(wfi()).op, Op::Wfi);
    EXPECT_EQ(decode(fence()).op, Op::Fence);
}

TEST(AsmRoundTrip, FpAndVector)
{
    EXPECT_EQ(decode(fld(3, 4, 16)).op, Op::Fld);
    EXPECT_EQ(decode(fld(3, 4, 16)).imm, 16);
    EXPECT_EQ(decode(fsd(3, 4, -8)).op, Op::Fsd);
    EXPECT_EQ(decode(faddD(1, 2, 3)).op, Op::FaddD);
    EXPECT_EQ(decode(fsubD(1, 2, 3)).op, Op::FsubD);
    EXPECT_EQ(decode(fmulD(1, 2, 3)).op, Op::FmulD);
    EXPECT_EQ(decode(fmvDX(1, 2)).op, Op::FmvDX);
    EXPECT_EQ(decode(fmvXD(1, 2)).op, Op::FmvXD);
    EXPECT_EQ(decode(vsetvli(1, 2, 0x18)).op, Op::Vsetvli);
    EXPECT_EQ(decode(vsetvli(1, 2, 0x18)).imm, 0x18);
    EXPECT_EQ(decode(vaddVV(4, 5, 6)).op, Op::VaddVV);
    EXPECT_EQ(decode(vaddVV(4, 5, 6)).rd, 4);
    EXPECT_EQ(decode(vaddVV(4, 5, 6)).rs2, 5);
    EXPECT_EQ(decode(vaddVV(4, 5, 6)).rs1, 6);
    EXPECT_EQ(decode(vxorVV(4, 5, 6)).op, Op::VxorVV);
    EXPECT_EQ(decode(vle64(7, 8)).op, Op::Vle64);
    EXPECT_EQ(decode(vse64(7, 8)).op, Op::Vse64);
}

TEST(AsmRoundTrip, ClassificationPredicates)
{
    EXPECT_TRUE(decode(ld(1, 2, 0)).isLoad());
    EXPECT_TRUE(decode(fld(1, 2, 0)).isLoad());
    EXPECT_TRUE(decode(vle64(1, 2)).isLoad());
    EXPECT_TRUE(decode(sd(1, 2, 0)).isStore());
    EXPECT_TRUE(decode(vse64(1, 2)).isStore());
    EXPECT_TRUE(decode(amoaddD(1, 2, 3)).isAmo());
    EXPECT_TRUE(decode(beq(1, 2, 8)).isBranch());
    EXPECT_TRUE(decode(jal(1, 8)).isJump());
    EXPECT_TRUE(decode(csrrw(1, 0x300, 2)).isCsrOp());
    EXPECT_TRUE(decode(vaddVV(1, 2, 3)).isVector());
    EXPECT_TRUE(decode(faddD(1, 2, 3)).isFp());
    EXPECT_FALSE(decode(add(1, 2, 3)).isLoad());
}

TEST(Decode, OpNamesAreUnique)
{
    // Every op has a distinct printable mnemonic (guards the big
    // switch against copy-paste slips).
    std::set<std::string> names;
    for (unsigned i = 0; i <= static_cast<unsigned>(Op::Vse64); ++i) {
        const char *n = opName(static_cast<Op>(i));
        ASSERT_NE(n, nullptr);
        EXPECT_NE(std::string(n), "?") << i;
        EXPECT_TRUE(names.insert(n).second) << n;
    }
}

} // namespace
} // namespace dth::riscv
