/**
 * @file
 * Zba/Zbb bit-manipulation extension: decode roundtrips and execution
 * semantics, cross-checked against C++ <bit> reference implementations
 * on random operands.
 */

#include <bit>
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "riscv/core.h"
#include "workload/program.h"

namespace dth::riscv {
namespace {

using namespace dth::workload;

TEST(BitmanipDecode, RoundTrips)
{
    EXPECT_EQ(decode(sh1add(1, 2, 3)).op, Op::Sh1add);
    EXPECT_EQ(decode(sh2add(1, 2, 3)).op, Op::Sh2add);
    EXPECT_EQ(decode(sh3add(1, 2, 3)).op, Op::Sh3add);
    EXPECT_EQ(decode(adduw(1, 2, 3)).op, Op::AddUw);
    EXPECT_EQ(decode(andn(1, 2, 3)).op, Op::Andn);
    EXPECT_EQ(decode(orn(1, 2, 3)).op, Op::Orn);
    EXPECT_EQ(decode(xnor_(1, 2, 3)).op, Op::Xnor);
    EXPECT_EQ(decode(clz(1, 2)).op, Op::Clz);
    EXPECT_EQ(decode(ctz(1, 2)).op, Op::Ctz);
    EXPECT_EQ(decode(cpop(1, 2)).op, Op::Cpop);
    EXPECT_EQ(decode(min_(1, 2, 3)).op, Op::Min);
    EXPECT_EQ(decode(minu(1, 2, 3)).op, Op::Minu);
    EXPECT_EQ(decode(max_(1, 2, 3)).op, Op::Max);
    EXPECT_EQ(decode(maxu(1, 2, 3)).op, Op::Maxu);
    EXPECT_EQ(decode(sextb(1, 2)).op, Op::SextB);
    EXPECT_EQ(decode(sexth(1, 2)).op, Op::SextH);
    EXPECT_EQ(decode(zexth(1, 2)).op, Op::ZextH);
    EXPECT_EQ(decode(rol(1, 2, 3)).op, Op::Rol);
    EXPECT_EQ(decode(ror(1, 2, 3)).op, Op::Ror);
    EXPECT_EQ(decode(rori(1, 2, 45)).op, Op::Rori);
    EXPECT_EQ(decode(rori(1, 2, 45)).imm, 45);
    EXPECT_EQ(decode(rev8(1, 2)).op, Op::Rev8);
    EXPECT_EQ(decode(orcb(1, 2)).op, Op::OrcB);
    // Base ops still decode (no aliasing with the new funct7 spaces).
    EXPECT_EQ(decode(add(1, 2, 3)).op, Op::Add);
    EXPECT_EQ(decode(sub(1, 2, 3)).op, Op::Sub);
    EXPECT_EQ(decode(srai(1, 2, 7)).op, Op::Srai);
    EXPECT_EQ(decode(slli(1, 2, 7)).op, Op::Slli);
}

/** Execute a single two-operand instruction and return x7. */
u64
exec2(u32 instr, u64 a, u64 b)
{
    Soc soc;
    std::vector<u8> bytes;
    for (u32 w : {instr, ebreak()})
        for (unsigned i = 0; i < 4; ++i)
            bytes.push_back(static_cast<u8>(w >> (8 * i)));
    soc.bus.ram().load(kRamBase, bytes.data(), bytes.size());
    soc.core.setXReg(5, a);
    soc.core.setXReg(6, b);
    soc.core.step();
    return soc.core.xreg(7);
}

TEST(BitmanipExec, ShiftAdds)
{
    EXPECT_EQ(exec2(sh1add(7, 5, 6), 3, 100), 106u);
    EXPECT_EQ(exec2(sh2add(7, 5, 6), 3, 100), 112u);
    EXPECT_EQ(exec2(sh3add(7, 5, 6), 3, 100), 124u);
    EXPECT_EQ(exec2(adduw(7, 5, 6), 0xFFFFFFFF00000001ULL, 10), 11u);
}

TEST(BitmanipExec, LogicAndCounts)
{
    EXPECT_EQ(exec2(andn(7, 5, 6), 0xFF, 0x0F), 0xF0u);
    EXPECT_EQ(exec2(orn(7, 5, 6), 0x0F, ~0xFFULL), 0xFFu);
    EXPECT_EQ(exec2(xnor_(7, 5, 6), 0xAA, 0xFF), ~0x55ULL);
    EXPECT_EQ(exec2(clz(7, 5), 0, 0), 64u);
    EXPECT_EQ(exec2(clz(7, 5), 1, 0), 63u);
    EXPECT_EQ(exec2(ctz(7, 5), 0x8, 0), 3u);
    EXPECT_EQ(exec2(cpop(7, 5), 0xF0F0, 0), 8u);
}

TEST(BitmanipExec, MinMaxAndExtensions)
{
    EXPECT_EQ(exec2(min_(7, 5, 6), static_cast<u64>(-5), 3),
              static_cast<u64>(-5));
    EXPECT_EQ(exec2(minu(7, 5, 6), static_cast<u64>(-5), 3), 3u);
    EXPECT_EQ(exec2(max_(7, 5, 6), static_cast<u64>(-5), 3), 3u);
    EXPECT_EQ(exec2(maxu(7, 5, 6), static_cast<u64>(-5), 3),
              static_cast<u64>(-5));
    EXPECT_EQ(exec2(sextb(7, 5), 0x80, 0), static_cast<u64>(-128));
    EXPECT_EQ(exec2(sexth(7, 5), 0x8000, 0),
              static_cast<u64>(sext(0x8000, 16)));
    EXPECT_EQ(exec2(zexth(7, 5), 0xFFFF'FFFF, 0), 0xFFFFu);
}

TEST(BitmanipExec, RotatesAndByteOps)
{
    EXPECT_EQ(exec2(rol(7, 5, 6), 0x1, 4), 0x10u);
    EXPECT_EQ(exec2(ror(7, 5, 6), 0x10, 4), 0x1u);
    EXPECT_EQ(exec2(rori(7, 5, 4), 0x10, 0), 0x1u);
    EXPECT_EQ(exec2(rev8(7, 5), 0x0102030405060708ULL, 0),
              0x0807060504030201ULL);
    EXPECT_EQ(exec2(orcb(7, 5), 0x0100000000000002ULL, 0),
              0xFF000000000000FFULL);
}

TEST(BitmanipExec, PropertyAgainstStdBit)
{
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        u64 a = rng.next();
        u64 b = rng.next();
        EXPECT_EQ(exec2(clz(7, 5), a, 0),
                  static_cast<u64>(std::countl_zero(a)));
        EXPECT_EQ(exec2(cpop(7, 5), a, 0),
                  static_cast<u64>(std::popcount(a)));
        EXPECT_EQ(exec2(rol(7, 5, 6), a, b),
                  std::rotl(a, static_cast<int>(b & 63)));
        EXPECT_EQ(exec2(andn(7, 5, 6), a, b), a & ~b);
        EXPECT_EQ(exec2(sh3add(7, 5, 6), a, b), b + (a << 3));
    }
}

} // namespace
} // namespace dth::riscv
