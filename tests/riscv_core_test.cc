/**
 * @file
 * Tests for the RISC-V substrate: decoder, executor semantics, traps,
 * interrupts, NDE oracles, and the state-observer hook.
 */

#include <gtest/gtest.h>

#include "riscv/core.h"
#include "workload/program.h"

namespace dth::riscv {
namespace {

using namespace dth::workload;

/** Load raw words at the reset pc and return a ready Soc. */
class CoreTest : public ::testing::Test
{
  protected:
    void
    loadWords(std::initializer_list<u32> words)
    {
        std::vector<u8> bytes;
        for (u32 w : words)
            for (unsigned b = 0; b < 4; ++b)
                bytes.push_back(static_cast<u8>(w >> (8 * b)));
        soc_.bus.ram().load(kRamBase, bytes.data(), bytes.size());
    }

    void
    loadProgram(const Program &p)
    {
        soc_.bus.ram().load(p.base, p.image.data(), p.image.size());
    }

    /** Step until halt or the step limit; returns steps taken. */
    u64
    run(u64 max_steps = 100000)
    {
        u64 steps = 0;
        while (!soc_.core.halted() && steps < max_steps) {
            soc_.core.step();
            soc_.clint.tick();
            ++steps;
        }
        return steps;
    }

    Soc soc_;
};

TEST(Decode, BasicForms)
{
    EXPECT_EQ(decode(addi(1, 2, -5)).op, Op::Addi);
    EXPECT_EQ(decode(addi(1, 2, -5)).imm, -5);
    EXPECT_EQ(decode(lui(3, 0x12345)).op, Op::Lui);
    EXPECT_EQ(decode(jal(1, -2048)).imm, -2048);
    EXPECT_EQ(decode(beq(1, 2, 16)).imm, 16);
    EXPECT_EQ(decode(ld(5, 6, 1024)).op, Op::Ld);
    EXPECT_EQ(decode(sd(5, 6, -8)).imm, -8);
    EXPECT_EQ(decode(mul(1, 2, 3)).op, Op::Mul);
    EXPECT_EQ(decode(csrrw(1, kCsrMscratch, 2)).csr, kCsrMscratch);
    EXPECT_EQ(decode(ecall()).op, Op::Ecall);
    EXPECT_EQ(decode(ebreak()).op, Op::Ebreak);
    EXPECT_EQ(decode(mret()).op, Op::Mret);
    EXPECT_EQ(decode(lrD(1, 2)).op, Op::LrD);
    EXPECT_EQ(decode(scD(1, 2, 3)).op, Op::ScD);
    EXPECT_EQ(decode(amoaddD(1, 2, 3)).op, Op::AmoAddD);
    EXPECT_EQ(decode(fld(1, 2, 16)).op, Op::Fld);
    EXPECT_EQ(decode(faddD(1, 2, 3)).op, Op::FaddD);
    EXPECT_EQ(decode(vsetvli(1, 0, 0x18)).op, Op::Vsetvli);
    EXPECT_EQ(decode(vaddVV(1, 2, 3)).op, Op::VaddVV);
    EXPECT_EQ(decode(vle64(1, 2)).op, Op::Vle64);
    EXPECT_EQ(decode(0xFFFFFFFF).op, Op::Illegal);
    EXPECT_EQ(decode(0).op, Op::Illegal);
}

TEST(Decode, ShiftImmediates64Bit)
{
    EXPECT_EQ(decode(slli(1, 2, 45)).op, Op::Slli);
    EXPECT_EQ(decode(slli(1, 2, 45)).imm, 45);
    EXPECT_EQ(decode(srai(1, 2, 63)).op, Op::Srai);
    EXPECT_EQ(decode(srai(1, 2, 63)).imm, 63);
}

TEST_F(CoreTest, ArithmeticAndBranching)
{
    // x5 = 7; x6 = 9; x7 = x5 + x6; halt(0) if x7 == 16 else halt(1).
    loadWords({
        addi(5, 0, 7),
        addi(6, 0, 9),
        add(7, 5, 6),
        addi(8, 0, 16),
        beq(7, 8, 12),  // -> good
        addi(10, 0, 1), // bad path
        ebreak(),
        addi(10, 0, 0), // good path
        ebreak(),
    });
    run();
    EXPECT_TRUE(soc_.core.halted());
    EXPECT_EQ(soc_.core.haltCode(), 0u);
    EXPECT_EQ(soc_.core.xreg(7), 16u);
}

TEST_F(CoreTest, LoadStoreRoundTrip)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x1000);
    b.li(6, 0x1122334455667788);
    b.emit(sd(6, 5, 0));
    b.emit(ld(7, 5, 0));
    b.emit(lw(8, 5, 0));  // sign-extended low word
    b.emit(lwu(9, 5, 0)); // zero-extended
    b.emit(lbu(11, 5, 7));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(7), 0x1122334455667788u);
    EXPECT_EQ(soc_.core.xreg(8), 0x55667788u);
    EXPECT_EQ(soc_.core.xreg(9), 0x55667788u);
    EXPECT_EQ(soc_.core.xreg(11), 0x11u);
}

TEST_F(CoreTest, SignExtendingLoads)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x1000);
    b.li(6, 0xFFFFFFFFFFFFFF80); // -128
    b.emit(sb(6, 5, 0));
    b.emit(lb(7, 5, 0));
    b.emit(lbu(8, 5, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(7), static_cast<u64>(-128));
    EXPECT_EQ(soc_.core.xreg(8), 0x80u);
}

TEST_F(CoreTest, MulDivEdgeCases)
{
    ProgramBuilder b;
    b.li(5, static_cast<u64>(INT64_MIN));
    b.li(6, static_cast<u64>(-1));
    b.emit(div_(7, 5, 6));  // overflow -> INT64_MIN
    b.emit(rem(8, 5, 6));   // overflow -> 0
    b.emit(div_(9, 5, 0));  // div by zero -> -1
    b.emit(remu(11, 5, 0)); // rem by zero -> dividend
    b.emit(mulh(12, 5, 6));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(7), static_cast<u64>(INT64_MIN));
    EXPECT_EQ(soc_.core.xreg(8), 0u);
    EXPECT_EQ(soc_.core.xreg(9), ~0ULL);
    EXPECT_EQ(soc_.core.xreg(11), static_cast<u64>(INT64_MIN));
}

TEST_F(CoreTest, CsrReadWrite)
{
    ProgramBuilder b;
    b.li(5, 0xABCD);
    b.emit(csrrw(0, kCsrMscratch, 5));
    b.emit(csrrs(6, kCsrMscratch, 0));
    b.emit(csrrwi(7, kCsrMscratch, 9)); // old -> x7, mscratch = 9
    b.emit(csrrs(8, kCsrMscratch, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(6), 0xABCDu);
    EXPECT_EQ(soc_.core.xreg(7), 0xABCDu);
    EXPECT_EQ(soc_.core.xreg(8), 9u);
}

TEST_F(CoreTest, EcallTrapsToHandlerAndReturns)
{
    ProgramBuilder b;
    auto setup = b.newLabel();
    b.emitJal(0, setup);
    // Handler at base+4: skip faulting instruction, count in x27.
    b.emit(addi(27, 27, 1));
    b.emit(csrrs(28, kCsrMepc, 0));
    b.emit(addi(28, 28, 4));
    b.emit(csrrw(0, kCsrMepc, 28));
    b.emit(mret());
    b.bind(setup);
    b.li(28, kRamBase + 4);
    b.emit(csrrw(0, kCsrMtvec, 28));
    b.emit(ecall());
    b.emit(ecall());
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_TRUE(soc_.core.halted());
    EXPECT_EQ(soc_.core.xreg(27), 2u);
    EXPECT_EQ(soc_.core.csrs().mcause, kCauseEcallM);
}

TEST_F(CoreTest, IllegalInstructionTrap)
{
    ProgramBuilder b;
    auto setup = b.newLabel();
    b.emitJal(0, setup);
    b.emit(addi(27, 27, 1));
    b.emit(csrrs(28, kCsrMepc, 0));
    b.emit(addi(28, 28, 4));
    b.emit(csrrw(0, kCsrMepc, 28));
    b.emit(mret());
    b.bind(setup);
    b.li(28, kRamBase + 4);
    b.emit(csrrw(0, kCsrMtvec, 28));
    b.emit(0xFFFFFFFF); // illegal
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(27), 1u);
    EXPECT_EQ(soc_.core.csrs().mcause, kCauseIllegalInstr);
    EXPECT_EQ(soc_.core.csrs().mtval, 0xFFFFFFFFu);
}

TEST_F(CoreTest, TimerInterruptFiresWithAutoInterrupts)
{
    Soc soc(CoreConfig{.resetPc = kRamBase, .autoInterrupts = true});
    ProgramBuilder b;
    auto setup = b.newLabel();
    b.emitJal(0, setup);
    // Handler: count, push mtimecmp far out, mret.
    b.emit(addi(27, 27, 1));
    b.li(28, kClintBase + kClintMtimecmp);
    b.li(29, 1000000);
    b.emit(sd(29, 28, 0));
    b.emit(mret());
    b.bind(setup);
    b.li(28, kRamBase + 4);
    b.emit(csrrw(0, kCsrMtvec, 28));
    b.li(28, kClintBase + kClintMtimecmp);
    b.li(29, 50);
    b.emit(sd(29, 28, 0));
    b.li(28, kIpMtip);
    b.emit(csrrw(0, kCsrMie, 28));
    b.emit(csrrsi(0, kCsrMstatus, 8));
    auto loop = b.hereLabel();
    b.emit(addi(5, 5, 1));
    b.li(6, 400);
    b.emitBlt(5, 6, loop);
    b.emitHalt(0);
    Program p = b.assemble("t");
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    u64 steps = 0;
    while (!soc.core.halted() && steps < 100000) {
        soc.core.step();
        soc.clint.tick();
        ++steps;
    }
    EXPECT_TRUE(soc.core.halted());
    EXPECT_GE(soc.core.xreg(27), 1u);
    EXPECT_EQ(soc.core.csrs().mcause, kIntTimer | kInterruptFlag);
}

TEST_F(CoreTest, ForcedInterruptWithoutAutoInterrupts)
{
    // REF role: no CLINT-driven interrupts, but forceInterrupt() works.
    ProgramBuilder b;
    auto setup = b.newLabel();
    b.emitJal(0, setup);
    b.emit(addi(27, 27, 1));
    b.emit(mret());
    b.bind(setup);
    b.li(28, kRamBase + 4);
    b.emit(csrrw(0, kCsrMtvec, 28));
    b.emit(addi(5, 0, 1));
    b.emit(addi(5, 5, 1));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));

    // Execute setup manually, then force the interrupt.
    while (soc_.core.xreg(5) != 1)
        soc_.core.step();
    soc_.core.forceInterrupt(kIntExternal | kInterruptFlag);
    StepResult r = soc_.core.step();
    EXPECT_TRUE(r.interrupt);
    EXPECT_FALSE(r.retired);
    run();
    EXPECT_EQ(soc_.core.xreg(27), 1u);
}

TEST_F(CoreTest, MmioOracleOverridesDeviceRead)
{
    ProgramBuilder b;
    b.li(5, kUartBase + kUartStatus);
    b.emit(lbu(6, 5, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    soc_.core.pushMmioFill(kUartBase + kUartStatus, 0x61);
    run();
    EXPECT_EQ(soc_.core.xreg(6), 0x61u);
}

TEST_F(CoreTest, UartOutputCaptured)
{
    ProgramBuilder b;
    b.li(5, kUartBase);
    b.li(6, 'H');
    b.emit(sb(6, 5, 0));
    b.li(6, 'i');
    b.emit(sb(6, 5, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.uart.output(), "Hi");
}

TEST_F(CoreTest, LrScSuccessAndFailure)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x2000);
    b.li(6, 77);
    b.emit(lrD(7, 5));
    b.emit(scD(8, 5, 6)); // success: x8 = 0
    b.emit(scD(9, 5, 6)); // no reservation: x9 = 1
    b.emit(ld(11, 5, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(8), 0u);
    EXPECT_EQ(soc_.core.xreg(9), 1u);
    EXPECT_EQ(soc_.core.xreg(11), 77u);
}

TEST_F(CoreTest, ScOracleForcesOutcome)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x2000);
    b.li(6, 77);
    b.emit(lrD(7, 5));
    b.emit(scD(8, 5, 6));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    soc_.core.pushScOutcome(false); // DUT says: spurious failure
    run();
    EXPECT_EQ(soc_.core.xreg(8), 1u);
    EXPECT_EQ(soc_.bus.ram().read(kRamBase + 0x2000, 8), 0u);
}

TEST_F(CoreTest, AmoAddReturnsOldValue)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x2000);
    b.li(6, 5);
    b.emit(sd(6, 5, 0));
    b.li(7, 3);
    b.emit(amoaddD(8, 5, 7));
    b.emit(ld(9, 5, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(8), 5u);
    EXPECT_EQ(soc_.core.xreg(9), 8u);
}

TEST_F(CoreTest, FpAddRoundTrip)
{
    ProgramBuilder b;
    b.li(5, std::bit_cast<u64>(1.5));
    b.li(6, std::bit_cast<u64>(2.25));
    b.emit(fmvDX(1, 5));
    b.emit(fmvDX(2, 6));
    b.emit(faddD(3, 1, 2));
    b.emit(fmvXD(7, 3));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(std::bit_cast<double>(soc_.core.xreg(7)), 3.75);
}

TEST_F(CoreTest, VectorAddAndMemory)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x3000);
    b.li(6, 100);
    b.emit(sd(6, 5, 0));
    b.li(6, 200);
    b.emit(sd(6, 5, 8));
    b.emit(vsetvli(7, 0, 0x18)); // vl = vlmax = 2
    b.emit(vle64(1, 5));
    b.emit(vaddVV(2, 1, 1)); // v2 = v1 + v1
    b.li(5, kRamBase + 0x3100);
    b.emit(vse64(2, 5));
    b.emit(ld(8, 5, 0));
    b.emit(ld(9, 5, 8));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    run();
    EXPECT_EQ(soc_.core.xreg(7), 2u); // vl
    EXPECT_EQ(soc_.core.xreg(8), 200u);
    EXPECT_EQ(soc_.core.xreg(9), 400u);
}

TEST_F(CoreTest, StepResultReportsRetirementAndWrites)
{
    loadWords({addi(5, 0, 7)});
    StepResult r = soc_.core.step();
    EXPECT_TRUE(r.retired);
    EXPECT_TRUE(r.rfWen);
    EXPECT_EQ(r.rd, 5);
    EXPECT_EQ(r.rdVal, 7u);
    EXPECT_EQ(r.seqNo, 1u);
    EXPECT_EQ(r.nextPc, kRamBase + 4);
}

TEST_F(CoreTest, X0IsNeverWritten)
{
    loadWords({addi(0, 0, 7), ebreak()});
    StepResult r = soc_.core.step();
    EXPECT_FALSE(r.rfWen);
    EXPECT_EQ(soc_.core.xreg(0), 0u);
}

TEST_F(CoreTest, SnapshotRestoreRoundTrip)
{
    loadWords({addi(5, 0, 7), addi(6, 0, 8), add(7, 5, 6), ebreak()});
    soc_.core.step();
    ArchSnapshot snap = soc_.core.snapshot();
    soc_.core.step();
    soc_.core.step();
    EXPECT_FALSE(snap == soc_.core.snapshot());
    soc_.core.restore(snap);
    EXPECT_TRUE(snap == soc_.core.snapshot());
    EXPECT_EQ(soc_.core.seqNo(), 1u);
}

/** Records observer callbacks for verification. */
class CountingObserver : public StateObserver
{
  public:
    int xregWrites = 0, csrWrites = 0, memWrites = 0, pcWrites = 0;
    void onXRegWrite(u8, u64) override { ++xregWrites; }
    void onFRegWrite(u8, u64) override {}
    void onVRegWrite(u8, const u64 *) override {}
    void onCsrWrite(u16, u64) override { ++csrWrites; }
    void onMemWrite(u64, unsigned, u64) override { ++memWrites; }
    void onPcWrite(u64) override { ++pcWrites; }
    void onReservationWrite(u64, bool) override {}
};

TEST_F(CoreTest, ObserverSeesAllMutations)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x1000); // several instructions
    b.li(6, 1);
    b.emit(sd(6, 5, 0));
    b.emitHalt(0);
    loadProgram(b.assemble("t"));
    CountingObserver obs;
    soc_.core.setObserver(&obs);
    run();
    EXPECT_GE(obs.xregWrites, 3);
    EXPECT_EQ(obs.memWrites, 1);
    EXPECT_GE(obs.pcWrites, 4);
    EXPECT_GE(obs.csrWrites, 4); // minstret per retired instruction
}

TEST_F(CoreTest, MinstretTracksRetirement)
{
    loadWords({addi(5, 0, 1), addi(5, 0, 2), ebreak()});
    run();
    EXPECT_EQ(soc_.core.csrs().minstret, soc_.core.seqNo());
    EXPECT_EQ(soc_.core.seqNo(), 3u);
}

} // namespace
} // namespace dth::riscv
