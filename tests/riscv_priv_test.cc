/**
 * @file
 * Privileged-architecture behaviour: interrupt gating by mstatus.MIE
 * and mie, trap CSR effects, mret state restoration, interrupt
 * priority, and W-form AMO sign extension.
 */

#include <gtest/gtest.h>

#include "riscv/core.h"
#include "workload/program.h"

namespace dth::riscv {
namespace {

using namespace dth::workload;

Program
loopProgram()
{
    ProgramBuilder b;
    auto setup = b.newLabel();
    b.emitJal(0, setup);
    // Handler: count in x27, bump mtimecmp, mret.
    b.emit(addi(27, 27, 1));
    b.li(28, kClintBase + kClintMtimecmp);
    b.li(29, 1u << 30);
    b.emit(sd(29, 28, 0));
    b.emit(mret());
    b.bind(setup);
    b.li(28, kRamBase + 4);
    b.emit(csrrw(0, kCsrMtvec, 28));
    auto loop = b.hereLabel();
    b.emit(addi(5, 5, 1));
    b.li(6, 100000);
    b.emitBlt(5, 6, loop);
    b.emitHalt(0);
    return b.assemble("loop");
}

struct Runner
{
    explicit Runner(const Program &p, bool auto_irq = true)
        : soc(CoreConfig{.resetPc = p.base, .autoInterrupts = auto_irq})
    {
        soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    }

    u64
    run(u64 steps)
    {
        u64 n = 0;
        while (!soc.core.halted() && n < steps) {
            soc.core.step();
            soc.clint.tick();
            ++n;
        }
        return n;
    }

    Soc soc;
};

TEST(Interrupts, MaskedWhenMieBitClear)
{
    Program p = loopProgram();
    Runner r(p);
    // Timer fires immediately, but mie.MTIE was never set.
    r.soc.clint.setMtimecmp(10);
    r.run(2000);
    EXPECT_EQ(r.soc.core.xreg(27), 0u);
}

TEST(Interrupts, MaskedWhenGlobalMieClear)
{
    Program p = loopProgram();
    Runner r(p);
    r.soc.clint.setMtimecmp(10);
    r.soc.core.writeCsr(kCsrMie, kIpMtip);
    // mstatus.MIE stays 0 -> no interrupt.
    r.run(2000);
    EXPECT_EQ(r.soc.core.xreg(27), 0u);
}

TEST(Interrupts, DeliveredWhenEnabled)
{
    Program p = loopProgram();
    Runner r(p);
    r.soc.clint.setMtimecmp(50);
    r.soc.core.writeCsr(kCsrMie, kIpMtip);
    r.soc.core.writeCsr(kCsrMstatus,
                        r.soc.core.csrs().mstatus | kMstatusMie);
    r.run(5000);
    EXPECT_GE(r.soc.core.xreg(27), 1u);
}

TEST(Interrupts, TrapDisablesAndMretRestoresMie)
{
    Program p = loopProgram();
    Runner r(p, false);
    r.soc.core.writeCsr(kCsrMstatus,
                        r.soc.core.csrs().mstatus | kMstatusMie);
    // Skip setup (3 steps: jal + li(2) + csrw = 4 steps).
    for (int i = 0; i < 5; ++i)
        r.soc.core.step();
    r.soc.core.forceInterrupt(kIntTimer);
    StepResult s = r.soc.core.step();
    ASSERT_TRUE(s.interrupt);
    // Inside the trap: MIE clear, MPIE set.
    EXPECT_EQ(r.soc.core.csrs().mstatus & kMstatusMie, 0u);
    EXPECT_NE(r.soc.core.csrs().mstatus & kMstatusMpie, 0u);
    EXPECT_EQ(r.soc.core.csrs().mepc, s.pc);
    EXPECT_EQ(r.soc.core.csrs().mcause, kIntTimer | kInterruptFlag);
    // Run the handler to mret; MIE must come back.
    u64 guard = 0;
    while (r.soc.core.pc() != r.soc.core.csrs().mepc && ++guard < 100)
        r.soc.core.step();
    EXPECT_NE(r.soc.core.csrs().mstatus & kMstatusMie, 0u);
}

TEST(Interrupts, ExternalBeatsTimerPriority)
{
    Program p = loopProgram();
    Runner r(p);
    r.soc.clint.setMtimecmp(0); // timer pending immediately
    r.soc.core.setExternalInterrupt(true);
    r.soc.core.writeCsr(kCsrMie, kIpMtip | kIpMeip);
    r.soc.core.writeCsr(kCsrMstatus,
                        r.soc.core.csrs().mstatus | kMstatusMie);
    StepResult s;
    u64 guard = 0;
    do {
        s = r.soc.core.step();
    } while (!s.interrupt && ++guard < 100);
    ASSERT_TRUE(s.interrupt);
    EXPECT_EQ(s.cause, kIntExternal);
}

TEST(Amo, WordFormsSignExtend)
{
    ProgramBuilder b;
    b.li(5, kRamBase + 0x2000);
    b.li(6, 0xFFFFFFFF); // stored word: -1 as i32
    b.emit(sw(6, 5, 0));
    b.li(7, 1);
    b.emit(amoaddW(8, 5, 7)); // x8 = old value sign-extended
    b.emit(lw(9, 5, 0));      // result wrapped to 0
    b.emitHalt(0);
    Program p = b.assemble("amow");
    Runner r(p, false);
    r.run(100);
    EXPECT_EQ(r.soc.core.xreg(8), ~0ULL); // sext(-1)
    EXPECT_EQ(r.soc.core.xreg(9), 0u);
}

TEST(Csr, MipReflectsClintState)
{
    Program p = loopProgram();
    Runner r(p);
    EXPECT_EQ(r.soc.core.readCsr(kCsrMip) & kIpMtip, 0u);
    r.soc.clint.setMtimecmp(0);
    r.soc.clint.tick();
    EXPECT_NE(r.soc.core.readCsr(kCsrMip) & kIpMtip, 0u);
    r.soc.core.setExternalInterrupt(true);
    EXPECT_NE(r.soc.core.readCsr(kCsrMip) & kIpMeip, 0u);
}

TEST(Csr, FcsrSubfieldAliases)
{
    Program p = loopProgram();
    Runner r(p, false);
    r.soc.core.writeCsr(kCsrFcsr, 0xFF);
    EXPECT_EQ(r.soc.core.readCsr(kCsrFflags), 0x1Fu);
    EXPECT_EQ(r.soc.core.readCsr(kCsrFrm), 0x7u);
    r.soc.core.writeCsr(kCsrFrm, 0x3);
    EXPECT_EQ(r.soc.core.readCsr(kCsrFcsr) >> 5, 0x3u);
    r.soc.core.writeCsr(kCsrFflags, 0);
    EXPECT_EQ(r.soc.core.readCsr(kCsrFcsr) & 0x1F, 0u);
}

TEST(Csr, VlenbIsReadOnlyConstant)
{
    Program p = loopProgram();
    Runner r(p, false);
    EXPECT_EQ(r.soc.core.readCsr(kCsrVlenb), kVlenBits / 8);
}

TEST(Wfi, ActsAsNop)
{
    ProgramBuilder b;
    b.emit(wfi());
    b.emit(addi(5, 0, 1));
    b.emitHalt(0);
    Program p = b.assemble("wfi");
    Runner r(p, false);
    r.run(10);
    EXPECT_TRUE(r.soc.core.halted());
    EXPECT_EQ(r.soc.core.xreg(5), 1u);
}

} // namespace
} // namespace dth::riscv
