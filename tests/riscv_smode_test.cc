/**
 * @file
 * Supervisor-mode tests: trap delegation via medeleg/mideleg, sret,
 * sstatus/sie/sip views, privilege tracking in ecall causes, and the
 * supervisor workload running clean under full co-simulation.
 */

#include <gtest/gtest.h>

#include "cosim/cosim.h"
#include "riscv/core.h"
#include "workload/generators.h"

namespace dth::riscv {
namespace {

using namespace dth::workload;

struct Rig
{
    explicit Rig(const Program &p)
        : soc(CoreConfig{.resetPc = p.base})
    {
        soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    }

    void
    run(u64 steps = 100000)
    {
        u64 n = 0;
        while (!soc.core.halted() && n++ < steps)
            soc.core.step();
    }

    Soc soc;
};

/** Program skeleton: M handler at base+4, S handler next, then main. */
struct SupervisorProgram
{
    Program program;
    u64 sHandlerAddr = 0;
};

SupervisorProgram
buildSupervisorEcall()
{
    ProgramBuilder b;
    auto setup = b.newLabel();
    b.emitJal(kZero, setup);
    // M handler: count in x27, skip instruction, mret.
    b.emit(addi(27, 27, 1));
    b.emit(csrrs(31, kCsrMepc, kZero));
    b.emit(addi(31, 31, 4));
    b.emit(csrrw(kZero, kCsrMepc, 31));
    b.emit(mret());
    u64 s_handler = b.here();
    // S handler: count in x26, skip instruction, sret.
    b.emit(addi(26, 26, 1));
    b.emit(csrrs(28, kCsrSepc, kZero));
    b.emit(addi(28, 28, 4));
    b.emit(csrrw(kZero, kCsrSepc, 28));
    b.emit(sret());

    b.bind(setup);
    b.li(28, kRamBase + 4);
    b.emit(csrrw(kZero, kCsrMtvec, 28));
    b.li(28, s_handler);
    b.emit(csrrw(kZero, kCsrStvec, 28));
    b.li(28, (1ULL << kCauseEcallS) | (1ULL << kCauseEcallU));
    b.emit(csrrw(kZero, kCsrMedeleg, 28));
    // Enter S-mode.
    b.li(28, kMstatusMppMask);
    b.emit(csrrc(kZero, kCsrMstatus, 28));
    b.li(28, 1ULL << 11); // MPP = S
    b.emit(csrrs(kZero, kCsrMstatus, 28));
    b.emit(auipc(28, 0));
    b.emit(addi(28, 28, 16));
    b.emit(csrrw(kZero, kCsrMepc, 28));
    b.emit(mret());
    // S-mode main: two ecalls, then halt.
    b.emit(ecall());
    b.emit(ecall());
    b.emitHalt(0);
    SupervisorProgram sp;
    sp.sHandlerAddr = s_handler;
    sp.program = b.assemble("smode");
    return sp;
}

TEST(SMode, DelegatedEcallReachesSupervisorHandler)
{
    SupervisorProgram sp = buildSupervisorEcall();
    Rig rig(sp.program);
    rig.run();
    ASSERT_TRUE(rig.soc.core.halted());
    EXPECT_EQ(rig.soc.core.xreg(26), 2u); // both ecalls to S handler
    EXPECT_EQ(rig.soc.core.xreg(27), 0u); // M handler never entered
    EXPECT_EQ(rig.soc.core.csrs().scause, kCauseEcallS);
    EXPECT_EQ(rig.soc.core.csrs().priv, kPrivS);
}

TEST(SMode, UndelegatedEcallStillGoesToM)
{
    SupervisorProgram sp = buildSupervisorEcall();
    Rig rig(sp.program);
    // Clear the delegation the program sets up: run to S-mode entry,
    // then clear medeleg behind its back.
    while (rig.soc.core.csrs().priv == kPrivM && !rig.soc.core.halted())
        rig.soc.core.step();
    rig.soc.core.writeCsr(kCsrMedeleg, 0);
    rig.run();
    ASSERT_TRUE(rig.soc.core.halted());
    EXPECT_EQ(rig.soc.core.xreg(26), 0u);
    EXPECT_EQ(rig.soc.core.xreg(27), 2u);
    EXPECT_EQ(rig.soc.core.csrs().mcause, kCauseEcallS);
}

TEST(SMode, TrapFromSModeRecordsSppAndSretRestores)
{
    SupervisorProgram sp = buildSupervisorEcall();
    Rig rig(sp.program);
    // Step until inside the S handler (priv stays S, scause set).
    while (rig.soc.core.csrs().scause == 0 && !rig.soc.core.halted())
        rig.soc.core.step();
    EXPECT_EQ(rig.soc.core.csrs().priv, kPrivS);
    EXPECT_NE(rig.soc.core.csrs().mstatus & kMstatusSpp, 0u);
    rig.run();
    EXPECT_TRUE(rig.soc.core.halted());
}

TEST(SMode, SstatusIsMaskedViewOfMstatus)
{
    SupervisorProgram sp = buildSupervisorEcall();
    Rig rig(sp.program);
    rig.soc.core.writeCsr(kCsrMstatus,
                          kMstatusMie | kMstatusSie | kMstatusSpp);
    u64 sstatus = rig.soc.core.readCsr(kCsrSstatus);
    EXPECT_EQ(sstatus, kMstatusSie | kMstatusSpp); // MIE filtered out
    rig.soc.core.writeCsr(kCsrSstatus, 0);
    // Clearing via sstatus must not touch M bits.
    EXPECT_NE(rig.soc.core.csrs().mstatus & kMstatusMie, 0u);
    EXPECT_EQ(rig.soc.core.csrs().mstatus & kMstatusSie, 0u);
}

TEST(SMode, SieSipAreGatedByMideleg)
{
    SupervisorProgram sp = buildSupervisorEcall();
    Rig rig(sp.program);
    rig.soc.core.writeCsr(kCsrMideleg, kIpStip);
    rig.soc.core.writeCsr(kCsrSie, kIpStip | kIpMtip);
    // Only the delegated bit is writable through sie.
    EXPECT_EQ(rig.soc.core.readCsr(kCsrSie), kIpStip);
    EXPECT_EQ(rig.soc.core.csrs().mie & kIpMtip, 0u);
    rig.soc.core.writeCsr(kCsrSip, kIpStip);
    EXPECT_EQ(rig.soc.core.readCsr(kCsrSip) & kIpStip, kIpStip);
}

TEST(SMode, DelegatedTimerInterruptTrapsToS)
{
    SupervisorProgram sp = buildSupervisorEcall();
    Rig rig(sp.program);
    // Enter S-mode first.
    while (rig.soc.core.csrs().priv == kPrivM && !rig.soc.core.halted())
        rig.soc.core.step();
    ASSERT_EQ(rig.soc.core.csrs().priv, kPrivS);
    // Delegate the supervisor timer interrupt and raise it.
    rig.soc.core.writeCsr(kCsrMideleg, kIpStip);
    rig.soc.core.writeCsr(kCsrMie, kIpStip);
    rig.soc.core.writeCsr(kCsrSstatus, kMstatusSie);
    rig.soc.core.writeCsr(kCsrSip, kIpStip);
    // autoInterrupts is off in this rig; force the delegated cause the
    // way the checker does and confirm it lands in the S handler.
    rig.soc.core.forceInterrupt(kIntSTimer);
    StepResult r = rig.soc.core.step();
    ASSERT_TRUE(r.interrupt);
    EXPECT_EQ(rig.soc.core.csrs().scause,
              kIntSTimer | kInterruptFlag);
    EXPECT_EQ(rig.soc.core.pc(), sp.sHandlerAddr);
    EXPECT_EQ(rig.soc.core.csrs().priv, kPrivS);
}

TEST(SMode, EcallCauseTracksPrivilege)
{
    // In M-mode an ecall reports cause 11.
    ProgramBuilder b;
    b.li(28, kRamBase + 0x200);
    b.emit(csrrw(kZero, kCsrMtvec, 28));
    b.emit(ecall());
    Program p = b.assemble("m-ecall");
    Rig rig(p);
    for (int i = 0; i < 5; ++i)
        rig.soc.core.step();
    EXPECT_EQ(rig.soc.core.csrs().mcause, kCauseEcallM);
}

TEST(SMode, SupervisorBootWorkloadVerifiesUnderFullCosim)
{
    // The headline integration: the S-mode boot-like workload (ecalls
    // delegated to S, timer interrupts to M, priv transitions in every
    // CsrState snapshot) verifies clean with all optimizations on.
    WorkloadOptions opts;
    opts.seed = 12;
    opts.iterations = 400;
    opts.bodyLength = 48;
    Program p = makeBootLike(opts); // supervisorMode = true inside
    cosim::CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);
    cosim::CoSimulator sim(cfg, p);
    cosim::CosimResult r = sim.run(3'000'000);
    EXPECT_TRUE(r.verified) << r.mismatch.describe();
    EXPECT_TRUE(r.goodTrap);
    // The run genuinely exercised S-mode.
    EXPECT_EQ(sim.dutModel().core(0).csrs().priv, kPrivS);
}

} // namespace
} // namespace dth::riscv
