/**
 * @file
 * Tests for Squash: differencing roundtrip properties, fusion windows,
 * order-decoupled vs order-coupled NDE handling, and the two-stage
 * Reorderer (emission-prefix restoration + watermark release).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "squash/squash.h"

namespace dth {
namespace {

std::vector<u8>
randomSnapshot(Rng &rng, size_t words)
{
    std::vector<u8> s(words * 8);
    for (auto &b : s)
        b = static_cast<u8>(rng.next());
    return s;
}

TEST(Differencing, RoundTripProperty)
{
    Rng rng(11);
    for (int trial = 0; trial < 100; ++trial) {
        size_t words = rng.nextRange(1, 64);
        std::vector<u8> prev = randomSnapshot(rng, words);
        std::vector<u8> cur = prev;
        // Mutate a random subset of words.
        unsigned changes = static_cast<unsigned>(rng.nextBelow(words + 1));
        for (unsigned i = 0; i < changes; ++i)
            storeU64(cur, rng.nextBelow(words) * 8, rng.next());
        auto diff =
            diffSnapshot(EventType::ArchIntRegState, prev, cur);
        EventType base;
        auto restored = completeSnapshot(prev, diff, &base);
        EXPECT_EQ(base, EventType::ArchIntRegState);
        EXPECT_EQ(restored, cur);
    }
}

TEST(Differencing, UnchangedSnapshotDiffIsTiny)
{
    Rng rng(12);
    std::vector<u8> snap = randomSnapshot(rng, 121); // CsrState size
    auto diff = diffSnapshot(EventType::CsrState, snap, snap);
    // Header + bitmap only; no payload words.
    EXPECT_LE(diff.size(), kDiffStateFixedBytes + 16 + 8);
    EventType base;
    EXPECT_EQ(completeSnapshot(snap, diff, &base), snap);
}

TEST(Differencing, SingleWordChangeIsCompact)
{
    Rng rng(13);
    std::vector<u8> prev = randomSnapshot(rng, 32);
    std::vector<u8> cur = prev;
    storeU64(cur, 8 * 7, 0xDEAD);
    auto diff = diffSnapshot(EventType::ArchIntRegState, prev, cur);
    EXPECT_LE(diff.size(), kDiffStateFixedBytes + 4 + 8);
}

TEST(DigestTerms, DistinctKindsProduceDistinctTerms)
{
    EXPECT_NE(commitDigestTerm(1, 2, 3), loadDigestTerm(1, 2, 3));
    EXPECT_NE(loadDigestTerm(1, 2, 3), storeDigestTerm(1, 2, 3));
    EXPECT_NE(storeDigestTerm(1, 2, 3), branchDigestTerm(1, 2, 3));
    EXPECT_NE(branchDigestTerm(1, 2, 3), vecDigestTerm(1, 2, 3));
}

TEST(DigestTerms, SensitiveToEveryArgument)
{
    u64 base = commitDigestTerm(0x80000000, 0x13, 7);
    EXPECT_NE(base, commitDigestTerm(0x80000004, 0x13, 7));
    EXPECT_NE(base, commitDigestTerm(0x80000000, 0x17, 7));
    EXPECT_NE(base, commitDigestTerm(0x80000000, 0x13, 8));
}

// ---------------------------------------------------------------------------
// SquashUnit fusion behaviour.
// ---------------------------------------------------------------------------

Event
makeCommit(u64 seq, u64 pc, u8 core = 0)
{
    Event e = Event::make(EventType::InstrCommit, core, 0, seq);
    InstrCommitView v(e);
    v.set_pc(pc);
    v.set_instr(0x13);
    v.set_seqNo(seq);
    v.set_nextPc(pc + 4);
    return e;
}

Event
makeMmio(u64 seq, u8 core = 0)
{
    Event e = Event::make(EventType::MmioEvent, core, 0, seq);
    MmioView v(e);
    v.set_addr(0x10000005);
    v.set_data(0x60);
    v.set_seqNo(seq);
    v.set_isLoad(1);
    return e;
}

SquashConfig
squashConfig(unsigned max_fuse, bool order_coupled)
{
    SquashConfig sc;
    sc.maxFuse = max_fuse;
    sc.orderCoupled = order_coupled;
    return sc;
}

TEST(SquashUnit, FusesUpToMaxFuse)
{
    SquashUnit unit(squashConfig(8, false));
    std::vector<Event> out;
    for (u64 seq = 1; seq <= 16; ++seq) {
        CycleEvents ce;
        ce.cycle = seq;
        ce.events.push_back(makeCommit(seq, 0x1000 + seq * 4));
        CycleEvents o = unit.process(ce);
        for (Event &e : o.events)
            out.push_back(std::move(e));
    }
    ASSERT_EQ(out.size(), 2u);
    FusedCommitView v0(out[0]);
    EXPECT_EQ(v0.firstSeq(), 1u);
    EXPECT_EQ(v0.count(), 8u);
    FusedCommitView v1(out[1]);
    EXPECT_EQ(v1.firstSeq(), 9u);
    EXPECT_EQ(v1.lastSeq(), 16u);
    EXPECT_EQ(unit.counters().get("squash.flushes"), 2u);
    EXPECT_EQ(unit.counters().get("squash.commits_absorbed"), 16u);
}

TEST(SquashUnit, NdeDoesNotBreakFusionWhenDecoupled)
{
    SquashUnit unit(squashConfig(8, false));
    std::vector<Event> out;
    for (u64 seq = 1; seq <= 8; ++seq) {
        CycleEvents ce;
        ce.cycle = seq;
        if (seq == 4)
            ce.events.push_back(makeMmio(4));
        ce.events.push_back(makeCommit(seq, 0x1000 + seq * 4));
        CycleEvents o = unit.process(ce);
        for (Event &e : o.events)
            out.push_back(std::move(e));
    }
    // MMIO scheduled ahead; exactly one full fused window.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, EventType::MmioEvent);
    EXPECT_EQ(out[1].type, EventType::FusedCommit);
    EXPECT_EQ(FusedCommitView(out[1]).count(), 8u);
}

TEST(SquashUnit, NdeBreaksFusionWhenOrderCoupled)
{
    SquashUnit unit(squashConfig(8, true));
    std::vector<Event> out;
    for (u64 seq = 1; seq <= 8; ++seq) {
        CycleEvents ce;
        ce.cycle = seq;
        if (seq == 4)
            ce.events.push_back(makeMmio(4));
        ce.events.push_back(makeCommit(seq, 0x1000 + seq * 4));
        CycleEvents o = unit.process(ce);
        for (Event &e : o.events)
            out.push_back(std::move(e));
    }
    CycleEvents tail = unit.finish();
    for (Event &e : tail.events)
        out.push_back(std::move(e));
    // The NDE forced an early flush: two FusedCommits (3 + 5 commits).
    std::vector<u64> counts;
    for (const Event &e : out)
        if (e.type == EventType::FusedCommit)
            counts.push_back(FusedCommitView(e).count());
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 3u);
    EXPECT_EQ(counts[1], 5u);
}

TEST(SquashUnit, SnapshotsReducedToLatestAndDiffed)
{
    SquashUnit unit(squashConfig(8, false));
    std::vector<Event> out;
    for (u64 seq = 1; seq <= 8; ++seq) {
        CycleEvents ce;
        ce.cycle = seq;
        ce.events.push_back(makeCommit(seq, 0x1000 + seq * 4));
        Event snap = Event::make(EventType::ArchIntRegState, 0, 0, seq);
        RegFileView rv(snap);
        rv.setReg(5, seq); // one register changes each cycle
        ce.events.push_back(std::move(snap));
        CycleEvents o = unit.process(ce);
        for (Event &e : o.events)
            out.push_back(std::move(e));
    }
    // The flush fires while absorbing commit 8, before cycle 8's
    // snapshot arrives: the window carries the latest snapshot seen so
    // far (seq 7); snapshot 8 travels with the end-of-run flush.
    CycleEvents tail = unit.finish();
    for (Event &e : tail.events)
        out.push_back(std::move(e));
    std::vector<u64> restored;
    SquashCompleter completer(1);
    for (const Event &e : out) {
        if (e.type == EventType::DiffState) {
            Event full = completer.complete(e);
            EXPECT_EQ(full.type, EventType::ArchIntRegState);
            restored.push_back(RegFileView(full).reg(5));
        }
    }
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_EQ(restored[0], 7u);
    EXPECT_EQ(restored[1], 8u);
}

TEST(SquashUnit, TrapFlushesWindow)
{
    SquashUnit unit(squashConfig(32, false));
    CycleEvents ce;
    ce.cycle = 1;
    ce.events.push_back(makeCommit(1, 0x1000));
    ce.events.push_back(makeCommit(2, 0x1004));
    Event trap = Event::make(EventType::Trap, 0, 0, 2);
    TrapView(trap).set_hasTrap(1);
    ce.events.push_back(std::move(trap));
    CycleEvents o = unit.process(ce);
    ASSERT_EQ(o.events.size(), 2u);
    EXPECT_EQ(o.events[0].type, EventType::FusedCommit);
    EXPECT_EQ(FusedCommitView(o.events[0]).count(), 2u);
    EXPECT_EQ(o.events[1].type, EventType::Trap);
}

TEST(SquashUnit, AuxEventsBecomeDigests)
{
    SquashUnit unit(squashConfig(4, false));
    u64 expected = 0;
    std::vector<Event> out;
    for (u64 seq = 1; seq <= 4; ++seq) {
        CycleEvents ce;
        ce.cycle = seq;
        Event load = Event::make(EventType::LoadEvent, 0, 0, seq);
        LoadView lv(load);
        lv.set_paddr(0x80000000 + seq * 8);
        lv.set_data(seq * 1000);
        lv.set_seqNo(seq);
        expected ^= loadDigestTerm(0x80000000 + seq * 8, seq * 1000, seq);
        ce.events.push_back(std::move(load));
        ce.events.push_back(makeCommit(seq, 0x1000 + 4 * seq));
        CycleEvents o = unit.process(ce);
        for (Event &e : o.events)
            out.push_back(std::move(e));
    }
    bool found = false;
    for (const Event &e : out) {
        if (e.type == EventType::FusedDigest) {
            FusedDigestView v(e);
            if (v.baseType() ==
                static_cast<u8>(EventType::LoadEvent)) {
                found = true;
                EXPECT_EQ(v.digest(), expected);
                EXPECT_EQ(v.count(), 4u);
                EXPECT_EQ(v.firstSeq(), 1u);
                EXPECT_EQ(v.lastSeq(), 4u);
            }
        }
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Reorderer.
// ---------------------------------------------------------------------------

Event
taggedEvent(EventType type, u64 seq, u64 emit, u8 core = 0)
{
    Event e = Event::make(type, core, 0, seq);
    e.emitSeq = emit;
    if (type == EventType::InstrCommit)
        InstrCommitView(e).set_seqNo(seq);
    return e;
}

TEST(Reorderer, HoldsUntilWatermark)
{
    Reorderer ro(1);
    ro.push(taggedEvent(EventType::L1DRefill, 5, 0));
    EXPECT_TRUE(ro.drain().empty());
    ro.push(taggedEvent(EventType::InstrCommit, 5, 1));
    auto out = ro.drain();
    ASSERT_EQ(out.size(), 2u);
    // Commit (priority 1) precedes content (priority 2) at equal seq.
    EXPECT_EQ(out[0].type, EventType::InstrCommit);
    EXPECT_EQ(out[1].type, EventType::L1DRefill);
}

TEST(Reorderer, NdePrecedesCommitAtSameTag)
{
    Reorderer ro(1);
    ro.push(taggedEvent(EventType::InstrCommit, 3, 0));
    ro.push(taggedEvent(EventType::MmioEvent, 3, 1));
    auto out = ro.drain();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, EventType::MmioEvent);
    EXPECT_EQ(out[1].type, EventType::InstrCommit);
}

TEST(Reorderer, InterruptSortsAfterEverythingAtItsTag)
{
    Reorderer ro(1);
    Event irq = taggedEvent(EventType::ArchEvent, 3, 0);
    ArchEventView(irq).set_kind(1);
    ro.push(std::move(irq));
    ro.push(taggedEvent(EventType::InstrCommit, 3, 1));
    ro.push(taggedEvent(EventType::LoadEvent, 3, 2));
    auto out = ro.drain();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].type, EventType::InstrCommit);
    EXPECT_EQ(out[1].type, EventType::LoadEvent);
    EXPECT_EQ(out[2].type, EventType::ArchEvent);
}

TEST(Reorderer, EmissionPrefixGatesRelease)
{
    // The commit (emit index 1) arrives before the MMIO event (emit
    // index 0): nothing may be released until the gap is filled.
    Reorderer ro(1);
    ro.push(taggedEvent(EventType::InstrCommit, 3, 1));
    EXPECT_TRUE(ro.drain().empty());
    EXPECT_EQ(ro.pending(), 1u);
    ro.push(taggedEvent(EventType::MmioEvent, 3, 0));
    auto out = ro.drain();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, EventType::MmioEvent);
}

TEST(Reorderer, FusedCommitRaisesWatermarkToWindowEnd)
{
    Reorderer ro(1);
    ro.push(taggedEvent(EventType::L1DRefill, 10, 0));
    ro.push(taggedEvent(EventType::MmioEvent, 28, 1));
    Event fc = Event::make(EventType::FusedCommit, 0, 0, 32);
    FusedCommitView v(fc);
    v.set_firstSeq(1);
    v.set_count(32);
    fc.emitSeq = 2;
    ro.push(std::move(fc));
    auto out = ro.drain();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].type, EventType::L1DRefill);  // seq 10
    EXPECT_EQ(out[1].type, EventType::MmioEvent);  // seq 28
    EXPECT_EQ(out[2].type, EventType::FusedCommit); // seq 32
}

TEST(Reorderer, PerCoreIndependence)
{
    Reorderer ro(2);
    ro.push(taggedEvent(EventType::L1DRefill, 5, 0, 1));
    ro.push(taggedEvent(EventType::InstrCommit, 7, 0, 0));
    auto out = ro.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].core, 0);
    ro.push(taggedEvent(EventType::InstrCommit, 5, 1, 1));
    out = ro.drain();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].core, 1);
}

TEST(Reorderer, DrainAllReleasesEverything)
{
    Reorderer ro(1);
    ro.push(taggedEvent(EventType::L1DRefill, 100, 5)); // emission gap
    EXPECT_TRUE(ro.drain().empty());
    auto out = ro.drainAll();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(ro.pending(), 0u);
}

TEST(Reorderer, PropertyReleasedInCheckingOrder)
{
    Rng rng(21);
    for (int trial = 0; trial < 50; ++trial) {
        Reorderer ro(1);
        // Build a plausible emission stream, then permute within small
        // windows (as Batch grouping does).
        std::vector<Event> emitted;
        u64 seq = 0;
        for (unsigned i = 0; i < 60; ++i) {
            seq += 1;
            if (rng.chance(0.2))
                emitted.push_back(
                    taggedEvent(EventType::MmioEvent, seq, 0));
            emitted.push_back(
                taggedEvent(EventType::InstrCommit, seq, 0));
            if (rng.chance(0.3))
                emitted.push_back(
                    taggedEvent(EventType::L1DRefill, seq, 0));
        }
        for (u64 i = 0; i < emitted.size(); ++i)
            emitted[i].emitSeq = i;
        // Permute within windows of 8.
        std::vector<Event> arrival = emitted;
        for (size_t base = 0; base + 8 <= arrival.size(); base += 8)
            for (size_t i = 0; i < 8; ++i)
                std::swap(arrival[base + i],
                          arrival[base + rng.nextBelow(8)]);
        std::vector<Event> released;
        for (Event &e : arrival) {
            ro.push(std::move(e));
            for (Event &r : ro.drain())
                released.push_back(std::move(r));
        }
        for (Event &r : ro.drainAll())
            released.push_back(std::move(r));
        ASSERT_EQ(released.size(), emitted.size());
        // Released sequence must be sorted by checking order.
        for (size_t i = 0; i + 1 < released.size(); ++i) {
            EXPECT_FALSE(checkingOrderLess(released[i + 1], released[i]))
                << "at " << i;
        }
    }
}

} // namespace
} // namespace dth
