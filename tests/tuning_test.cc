/**
 * @file
 * Tests for the tuning toolkit: trace encode/decode roundtrip, trace
 * capture from a live run, trace-driven verification (iterative
 * debugging without the DUT), offline analysis, and pipeline volume
 * simulation.
 */

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "cosim/cosim.h"
#include "tuning/analysis.h"
#include "tuning/sweep.h"
#include "tuning/trace.h"
#include "workload/generators.h"

namespace dth::tuning {
namespace {

workload::Program
bootProgram(unsigned iterations = 300)
{
    workload::WorkloadOptions opts;
    opts.seed = 31;
    opts.iterations = iterations;
    opts.bodyLength = 48;
    return workload::makeBootLike(opts);
}

DutTrace
captureTrace(const workload::Program &program)
{
    cosim::CosimConfig cfg;
    cfg.dut = dut::xsDefaultConfig();
    cfg.platform = link::palladiumPlatform();
    cfg.applyOptLevel(cosim::OptLevel::BNSD);
    cosim::CoSimulator sim(cfg, program);
    DutTrace trace;
    trace.workloadName = program.name;
    sim.setMonitorTap([&trace](const CycleEvents &ce) {
        trace.cycles.push_back(ce);
    });
    cosim::CosimResult r = sim.run(2'000'000);
    EXPECT_TRUE(r.goodTrap);
    return trace;
}

TEST(Trace, EncodeDecodeRoundTrip)
{
    workload::Program p = bootProgram(50);
    DutTrace trace = captureTrace(p);
    std::vector<u8> bytes = encodeTrace(trace);
    DutTrace back;
    ASSERT_TRUE(decodeTrace(&back, bytes));
    ASSERT_EQ(back.cycles.size(), trace.cycles.size());
    EXPECT_EQ(back.workloadName, trace.workloadName);
    for (size_t c = 0; c < trace.cycles.size(); ++c) {
        ASSERT_EQ(back.cycles[c].events.size(),
                  trace.cycles[c].events.size());
        for (size_t i = 0; i < trace.cycles[c].events.size(); ++i)
            EXPECT_TRUE(back.cycles[c].events[i] ==
                        trace.cycles[c].events[i]);
    }
}

TEST(Trace, SaveLoadFile)
{
    workload::Program p = bootProgram(30);
    DutTrace trace = captureTrace(p);
    std::string path = ::testing::TempDir() + "dth_trace_test.bin";
    ASSERT_TRUE(saveTrace(trace, path));
    DutTrace back;
    ASSERT_TRUE(loadTrace(&back, path));
    EXPECT_EQ(back.totalEvents(), trace.totalEvents());
    EXPECT_EQ(back.totalBytes(), trace.totalBytes());
    std::remove(path.c_str());
}

TEST(Trace, DecodeRejectsGarbage)
{
    DutTrace t;
    std::vector<u8> garbage = {1, 2, 3, 4, 5};
    EXPECT_FALSE(decodeTrace(&t, garbage));
}

// Regression: decodeTrace used a panicking ByteReader, so a trace file
// truncated at an unlucky offset aborted the whole process instead of
// returning false. Every proper prefix of a valid encoding must decode
// to a clean failure.
TEST(Trace, DecodeRejectsEveryTruncation)
{
    workload::Program p = bootProgram(10);
    DutTrace trace = captureTrace(p);
    std::vector<u8> bytes = encodeTrace(trace);
    ASSERT_GT(bytes.size(), 16u);
    for (size_t len = 0; len < bytes.size(); ++len) {
        DutTrace t;
        std::span<const u8> prefix(bytes.data(), len);
        EXPECT_FALSE(decodeTrace(&t, prefix)) << "prefix length " << len;
    }
    DutTrace t;
    EXPECT_TRUE(decodeTrace(&t, bytes));
    // Trailing junk is also a malformed file, not a partial success.
    bytes.push_back(0);
    EXPECT_FALSE(decodeTrace(&t, bytes));
}

// Regression: the header's cycle/event counts were trusted and fed
// straight into reserve(), so 24 corrupt bytes could demand petabytes.
TEST(Trace, DecodeCapsUntrustedCounts)
{
    ByteWriter w;
    w.putU32(0x44544831); // kMagic
    w.putU16(0);          // empty workload name
    w.putU64(~0ull);      // absurd cycle count, no cycle payload
    DutTrace t;
    EXPECT_FALSE(decodeTrace(&t, w.bytes()));

    ByteWriter w2;
    w2.putU32(0x44544831);
    w2.putU16(0);
    w2.putU64(1);    // one cycle...
    w2.putU64(7);    // cycle number
    w2.putU32(~0u);  // ...claiming 4G events
    DutTrace t2;
    EXPECT_FALSE(decodeTrace(&t2, w2.bytes()));
}

TEST(Trace, DecodeRejectsBadEventType)
{
    ByteWriter w;
    w.putU32(0x44544831);
    w.putU16(0);
    w.putU64(1); // one cycle
    w.putU64(3); // cycle number
    w.putU32(1); // one event
    w.putU8(0xee);  // invalid EventType
    w.putZeros(32); // plausible-looking tail (clears the size caps)
    DutTrace t;
    EXPECT_FALSE(decodeTrace(&t, w.bytes()));
}

// Deterministic fuzz-ish loop: single-byte corruptions of a real
// encoding must either decode (the flip hit a don't-care byte such as a
// payload body) or fail cleanly — never crash or abort.
TEST(Trace, DecodeSurvivesByteFlips)
{
    workload::Program p = bootProgram(10);
    DutTrace trace = captureTrace(p);
    std::vector<u8> bytes = encodeTrace(trace);
    u64 rng = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 2000; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        size_t pos = (rng >> 24) % bytes.size();
        u8 flip = static_cast<u8>(1u << ((rng >> 8) % 8));
        std::vector<u8> mutated = bytes;
        mutated[pos] ^= flip;
        DutTrace t;
        (void)decodeTrace(&t, mutated);
    }
}

TEST(Trace, LoadMissingFileFails)
{
    DutTrace t;
    EXPECT_FALSE(loadTrace(&t, "/nonexistent/dir/trace.bin"));
}

TEST(Analysis, VerifyTraceWithoutDut)
{
    workload::Program p = bootProgram(200);
    DutTrace trace = captureTrace(p);
    checker::MismatchReport report;
    EXPECT_TRUE(verifyTrace(trace, p, 1, true, &report))
        << report.describe();
}

TEST(Analysis, VerifyTraceDetectsTamperedEvent)
{
    workload::Program p = bootProgram(100);
    DutTrace trace = captureTrace(p);
    // Corrupt one commit's rd value mid-trace.
    bool tampered = false;
    for (size_t c = trace.cycles.size() / 2;
         c < trace.cycles.size() && !tampered; ++c) {
        for (Event &e : trace.cycles[c].events) {
            if (e.type == EventType::InstrCommit) {
                InstrCommitView v(e);
                if (v.rfWen()) {
                    v.set_rdVal(v.rdVal() ^ 0x40);
                    tampered = true;
                    break;
                }
            }
        }
    }
    ASSERT_TRUE(tampered);
    checker::MismatchReport report;
    EXPECT_FALSE(verifyTrace(trace, p, 1, true, &report));
    EXPECT_EQ(report.field, "rd-value");
}

TEST(Analysis, PerTypeStatsAndCsv)
{
    workload::Program p = bootProgram(200);
    DutTrace trace = captureTrace(p);
    TraceAnalysis a = analyzeTrace(trace);
    EXPECT_EQ(a.cycles, trace.cycles.size());
    EXPECT_EQ(a.events, trace.totalEvents());
    EXPECT_EQ(a.bytes, trace.totalBytes());
    // The CSR snapshot barely changes between commit cycles: high word
    // repetitiveness is exactly what motivates differencing (§4.3.1).
    const TypeStats &csr =
        a.perType[static_cast<unsigned>(EventType::CsrState)];
    ASSERT_GT(csr.count, 0u);
    EXPECT_GT(csr.repetitiveness(), 0.9);
    std::string csv = a.toCsv();
    EXPECT_NE(csv.find("csr_state"), std::string::npos);
    EXPECT_NE(csv.find("instr_commit"), std::string::npos);
}

TEST(Analysis, PipelineVolumeMatchesSquashBenefit)
{
    workload::Program p = bootProgram(200);
    DutTrace trace = captureTrace(p);
    SquashConfig with;
    with.maxFuse = 32;
    SquashConfig coupled = with;
    coupled.orderCoupled = true;
    PipelineVolume decoupled_v = simulatePipeline(trace, with, 4096);
    PipelineVolume coupled_v = simulatePipeline(trace, coupled, 4096);
    EXPECT_GT(decoupled_v.fusionRatio, coupled_v.fusionRatio);
    EXPECT_LE(decoupled_v.wireBytes, coupled_v.wireBytes);
    EXPECT_LT(decoupled_v.wireBytes, trace.totalBytes() / 4);
}

TEST(Sweep, RunsLabeledConfigsAndRanksThem)
{
    workload::Program p = bootProgram(120);
    SweepRunner sweep(p, 400000);
    for (auto level : {cosim::OptLevel::Z, cosim::OptLevel::BNSD}) {
        cosim::CosimConfig cfg;
        cfg.dut = dut::xsDefaultConfig();
        cfg.platform = link::palladiumPlatform();
        cfg.applyOptLevel(level);
        sweep.run(level == cosim::OptLevel::Z ? "baseline" : "full", cfg);
    }
    ASSERT_EQ(sweep.rows().size(), 2u);
    EXPECT_EQ(sweep.bestBySpeed(), "full");
    std::string csv = sweep.csv();
    EXPECT_NE(csv.find("baseline,"), std::string::npos);
    EXPECT_NE(csv.find("full,"), std::string::npos);
    EXPECT_EQ(sweep.table().rows(), 2u);
}

} // namespace
} // namespace dth::tuning
