/**
 * @file
 * Tests for the mini-assembler, ProgramBuilder and workload generators:
 * every generated workload must run to a good trap on the SoC.
 */

#include <gtest/gtest.h>

#include "riscv/core.h"
#include "workload/generators.h"

namespace dth::workload {
namespace {

using namespace dth::riscv;

struct RunOutcome
{
    bool halted = false;
    u64 haltCode = 0;
    u64 steps = 0;
    u64 retired = 0;
    u64 interrupts = 0;
    u64 mmioLoads = 0;
};

RunOutcome
runOnSoc(const Program &p, u64 max_steps = 2000000, bool auto_irq = true)
{
    Soc soc(CoreConfig{.resetPc = p.base, .autoInterrupts = auto_irq});
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    RunOutcome out;
    while (!soc.core.halted() && out.steps < max_steps) {
        StepResult r = soc.core.step();
        soc.clint.tick();
        ++out.steps;
        if (r.retired)
            ++out.retired;
        if (r.interrupt)
            ++out.interrupts;
        for (unsigned i = 0; i < r.memCount; ++i)
            if (r.mem[i].valid && r.mem[i].mmio && !r.mem[i].store)
                ++out.mmioLoads;
    }
    out.halted = soc.core.halted();
    out.haltCode = soc.core.haltCode();
    return out;
}

TEST(ProgramBuilder, LiCoversFullRange)
{
    const u64 values[] = {0,
                          1,
                          2047,
                          2048,
                          0x7FFFFFFF,
                          0x80000000,
                          0xFFFFFFFF,
                          0x123456789ABCDEF0,
                          ~0ULL,
                          0x8000000000000000,
                          0xFFFFFFFF80000000};
    for (u64 v : values) {
        ProgramBuilder b;
        b.li(5, v);
        b.emitHalt(0);
        Program p = b.assemble("li");
        Soc soc;
        soc.bus.ram().load(p.base, p.image.data(), p.image.size());
        while (!soc.core.halted())
            soc.core.step();
        EXPECT_EQ(soc.core.xreg(5), v) << std::hex << v;
    }
}

TEST(ProgramBuilder, ForwardAndBackwardLabels)
{
    ProgramBuilder b;
    // for (x5 = 0; x5 != 10; ++x5) {}
    b.emit(addi(5, 0, 0));
    auto loop = b.hereLabel();
    b.emit(addi(5, 5, 1));
    b.li(6, 10);
    b.emitBne(5, 6, loop);
    auto end = b.newLabel();
    b.emitJal(0, end);
    b.emit(addi(5, 0, 99)); // skipped
    b.bind(end);
    b.emitHalt(0);
    Program p = b.assemble("labels");
    Soc soc;
    soc.bus.ram().load(p.base, p.image.data(), p.image.size());
    u64 guard = 0;
    while (!soc.core.halted() && ++guard < 1000)
        soc.core.step();
    EXPECT_TRUE(soc.core.halted());
    EXPECT_EQ(soc.core.xreg(5), 10u);
}

TEST(ProgramBuilder, UnboundLabelPanics)
{
    ProgramBuilder b;
    auto l = b.newLabel();
    b.emitJal(0, l);
    EXPECT_DEATH(b.assemble("bad"), "never bound");
}

class GeneratorTest
    : public ::testing::TestWithParam<std::tuple<const char *, u64>>
{};

TEST_P(GeneratorTest, RunsToGoodTrap)
{
    auto [kind, seed] = GetParam();
    WorkloadOptions opts;
    opts.seed = seed;
    opts.iterations = 200;
    opts.bodyLength = 48;
    Program p;
    std::string k = kind;
    if (k == "microbench")
        p = makeMicrobench(opts);
    else if (k == "boot")
        p = makeBootLike(opts);
    else if (k == "compute")
        p = makeComputeLike(opts);
    else if (k == "vector")
        p = makeVectorLike(opts);
    else
        p = makeIoHeavy(opts);

    RunOutcome out = runOnSoc(p);
    EXPECT_TRUE(out.halted) << k << " seed " << seed;
    EXPECT_EQ(out.haltCode, 0u) << k;
    EXPECT_GT(out.retired, opts.iterations * 10ull) << k;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GeneratorTest,
    ::testing::Combine(::testing::Values("microbench", "boot", "compute",
                                         "vector", "io"),
                       ::testing::Values(1u, 7u, 42u, 1234u)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Generators, BootLikeTakesInterruptsAndMmio)
{
    WorkloadOptions opts;
    opts.seed = 3;
    opts.iterations = 400;
    opts.timerInterval = 2000;
    Program p = makeBootLike(opts);
    RunOutcome out = runOnSoc(p);
    EXPECT_TRUE(out.halted);
    EXPECT_GT(out.interrupts, 0u);
    EXPECT_GT(out.mmioLoads, 0u);
}

TEST(Generators, ComputeLikeHasNoMmio)
{
    WorkloadOptions opts;
    opts.seed = 3;
    opts.iterations = 100;
    Program p = makeComputeLike(opts);
    RunOutcome out = runOnSoc(p);
    EXPECT_TRUE(out.halted);
    EXPECT_EQ(out.interrupts, 0u);
    EXPECT_EQ(out.mmioLoads, 0u);
}

TEST(Generators, DeterministicAcrossRuns)
{
    WorkloadOptions opts;
    opts.seed = 99;
    opts.iterations = 10;
    Program a = makeBootLike(opts);
    Program b = makeBootLike(opts);
    EXPECT_EQ(a.image, b.image);
    opts.seed = 100;
    Program c = makeBootLike(opts);
    EXPECT_NE(a.image, c.image);
}

TEST(Generators, IoHeavyHasHigherMmioDensityThanBoot)
{
    WorkloadOptions opts;
    opts.seed = 5;
    opts.iterations = 200;
    RunOutcome io = runOnSoc(makeIoHeavy(opts));
    RunOutcome boot = runOnSoc(makeBootLike(opts));
    ASSERT_TRUE(io.halted);
    ASSERT_TRUE(boot.halted);
    double io_rate = double(io.mmioLoads) / io.retired;
    double boot_rate = double(boot.mmioLoads) / boot.retired;
    EXPECT_GT(io_rate, boot_rate);
}

} // namespace
} // namespace dth::workload
