/**
 * @file
 * dth_fleet: run a verification campaign across a worker fleet.
 *
 *   dth_fleet --demo                      built-in 16-job demo matrix
 *   dth_fleet --spec FILE                 dth-fleet-campaign-v1 JSON
 *
 * options:
 *   --workers N      concurrent sessions (default 4)
 *   --report FILE    write the dth-fleet-report-v1 JSON (deterministic:
 *                    byte-identical across worker counts)
 *   --stats FILE     write the aggregated campaign snapshot (dth-obs-v1;
 *                    viewable/mergable with dth_stats)
 *   --trace FILE     write a Chrome trace_event timeline of the fleet
 *   --timing         include the wall-clock section in the report
 *   --retain N       failure-artifact retention cap (default 32)
 *   --quiet          suppress the per-job table
 *
 * exit status: 0 every job passed, 1 some job did not, 2 usage or spec
 * error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/table.h"
#include "fleet/campaign.h"
#include "fleet/report.h"
#include "fleet/scheduler.h"
#include "obs/json.h"

namespace {

using namespace dth;
using namespace dth::fleet;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--demo | --spec FILE] [--workers N] [--report FILE]\n"
        "       [--stats FILE] [--trace FILE] [--timing] [--retain N]\n"
        "       [--quiet]\n"
        "  Run a verification campaign (workload x seed x config jobs)\n"
        "  across a work-stealing worker fleet and aggregate the\n"
        "  results. --spec takes a dth-fleet-campaign-v1 JSON file;\n"
        "  --demo runs the built-in 16-job matrix.\n",
        argv0);
}

/** The built-in demo: 4 workloads x 2 seeds x 2 opt levels = 16 jobs. */
Campaign
demoCampaign()
{
    MatrixSpec spec;
    spec.name = "demo";
    spec.workloads = {WorkloadKind::Microbench, WorkloadKind::ComputeLike,
                      WorkloadKind::VectorLike, WorkloadKind::IoHeavy};
    spec.seeds = {1, 2};
    spec.optLevels = {cosim::OptLevel::BN, cosim::OptLevel::BNSD};
    spec.base.workloadOptions.iterations = 300;
    spec.base.workloadOptions.bodyLength = 48;
    return expandMatrix(spec);
}

bool
readWholeFile(const char *path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *spec_path = nullptr;
    const char *report_path = nullptr;
    const char *stats_path = nullptr;
    const char *trace_path = nullptr;
    bool demo = false;
    bool timing = false;
    bool quiet = false;
    FleetConfig fleet;
    fleet.workers = 4;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "dth_fleet: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "-h") || !std::strcmp(argv[i], "--help")) {
            usage(argv[0]);
            return 0;
        } else if (!std::strcmp(argv[i], "--demo")) {
            demo = true;
        } else if (!std::strcmp(argv[i], "--spec")) {
            spec_path = value("--spec");
        } else if (!std::strcmp(argv[i], "--workers")) {
            fleet.workers =
                static_cast<unsigned>(std::atoi(value("--workers")));
            if (fleet.workers < 1) {
                std::fprintf(stderr,
                             "dth_fleet: --workers must be >= 1\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--retain")) {
            fleet.maxRetainedFailures =
                static_cast<size_t>(std::atoi(value("--retain")));
        } else if (!std::strcmp(argv[i], "--report")) {
            report_path = value("--report");
        } else if (!std::strcmp(argv[i], "--stats")) {
            stats_path = value("--stats");
        } else if (!std::strcmp(argv[i], "--trace")) {
            trace_path = value("--trace");
        } else if (!std::strcmp(argv[i], "--timing")) {
            timing = true;
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else {
            std::fprintf(stderr, "dth_fleet: unknown option %s\n",
                         argv[i]);
            usage(argv[0]);
            return 2;
        }
    }
    if (demo == (spec_path != nullptr)) {
        std::fprintf(stderr,
                     "dth_fleet: exactly one of --demo / --spec\n");
        usage(argv[0]);
        return 2;
    }

    Campaign campaign;
    if (demo) {
        campaign = demoCampaign();
    } else {
        std::string text;
        if (!readWholeFile(spec_path, &text)) {
            std::fprintf(stderr, "dth_fleet: cannot read %s\n",
                         spec_path);
            return 2;
        }
        std::string err;
        if (!campaignFromJson(text, &campaign, &err)) {
            std::fprintf(stderr, "dth_fleet: bad spec %s: %s\n",
                         spec_path, err.c_str());
            return 2;
        }
    }

    fleet.captureTimeline = trace_path != nullptr;
    FleetScheduler scheduler(fleet);
    CampaignResult result = scheduler.run(campaign);

    if (!quiet) {
        TextTable t({"id", "job", "outcome", "attempts", "cycles",
                     "instrs", "digest"});
        for (const JobResult &job : result.jobs) {
            char id[16], attempts[16], cycles[24], instrs[24], digest[24];
            std::snprintf(id, sizeof(id), "%u", job.id);
            std::snprintf(attempts, sizeof(attempts), "%u%s",
                          job.attempts, job.recovered ? "*" : "");
            std::snprintf(cycles, sizeof(cycles), "%llu",
                          (unsigned long long)job.cycles);
            std::snprintf(instrs, sizeof(instrs), "%llu",
                          (unsigned long long)job.instrs);
            std::snprintf(digest, sizeof(digest), "%016llx",
                          (unsigned long long)job.digest);
            t.addRow({id, job.name, jobOutcomeName(job.outcome),
                      attempts, cycles, instrs, digest});
        }
        t.print();
        std::printf("(* = recovered after quarantine/retry)\n");
    }
    std::printf("%s\n", result.summary().c_str());

    bool io_ok = true;
    if (report_path) {
        ReportOptions opts;
        opts.includeTiming = timing;
        io_ok &= obs::writeFile(report_path,
                                campaignReportJson(result, opts));
    }
    if (stats_path)
        io_ok &= obs::writeFile(stats_path,
                                obs::snapshotToJson(result.aggregate));
    if (trace_path)
        io_ok &= obs::writeFile(trace_path, result.timelineJson);
    if (!io_ok) {
        std::fprintf(stderr, "dth_fleet: failed writing output files\n");
        return 2;
    }
    return result.allPassed() ? 0 : 1;
}
