/**
 * @file
 * dth_lint: protocol-invariant static analyzer CLI. Captures the in-tree
 * metadata tables (event-type table, wire/Batch constants, mux-tree slot
 * assignment, Squash classification, Replay undo coverage) and proves
 * the full invariant catalogue over them before any simulation runs.
 * Exits 0 iff no invariant is violated, so CI can use it as a blocking
 * gate; --verbose prints the audited layout facts as well.
 */

#include <cstdio>
#include <cstring>

#include "analysis/layout_audit.h"
#include "analysis/protocol_lint.h"

namespace {

void
usage(const char *argv0)
{
    std::printf("usage: %s [-v|--verbose] [-h|--help]\n", argv0);
    std::printf("  Prove the DiffTest-H protocol invariants over the\n"
                "  in-tree metadata tables. Exit 1 on any violation.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dth;
    using namespace dth::analysis;

    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "-v") ||
            !std::strcmp(argv[i], "--verbose")) {
            verbose = true;
        } else if (!std::strcmp(argv[i], "-h") ||
                   !std::strcmp(argv[i], "--help")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "dth_lint: unknown option '%s'\n",
                         argv[i]);
            usage(argv[0]);
            return 2;
        }
    }

    ProtocolTables tables = currentTables();
    if (verbose) {
        std::printf("dth_lint: %u monitor types, %u wire types, "
                    "%zu B event header, %zu B batch header, "
                    "%zu B batch meta, %u B packets, fuse depth <= %u\n",
                    tables.numEventTypes, tables.numWireTypes,
                    tables.eventWireHeaderBytes,
                    tables.batchPacketHeaderBytes, tables.batchMetaBytes,
                    tables.packetBytes, tables.maxFuseDepth);
        for (const LayoutFact &fact : payloadLayoutFacts()) {
            std::printf("  type %2u %-18s %4zu B via %s\n", fact.typeId,
                        tables.events[fact.typeId].name, fact.viewBytes,
                        fact.viewName);
        }
    }

    LintReport report = runProtocolLint(tables);
    for (const LintFinding &f : report.findings) {
        if (f.typeId >= 0) {
            std::fprintf(stderr, "dth_lint: [%s] type %d: %s\n",
                         lintCheckName(f.check), f.typeId,
                         f.message.c_str());
        } else {
            std::fprintf(stderr, "dth_lint: [%s] %s\n",
                         lintCheckName(f.check), f.message.c_str());
        }
    }
    std::printf("%s\n", report.summary().c_str());
    return report.passed() ? 0 : 1;
}
