/**
 * @file
 * dth_stats: stat-snapshot viewer for the dth-obs-v1 JSON files that
 * benches and the tuning toolkit emit (e.g. bench/BENCH_obs.json).
 *
 *   dth_stats FILE             pretty-print one snapshot
 *   dth_stats --diff A B       tabulate differing stats; exit 0 when
 *                              identical, 2 when they differ
 *   dth_stats --schema FILE    print the snapshot's schema (sorted
 *                              "stat <name> <kind>" / "hist <name>"
 *                              lines) — wall-clock-independent, so CI
 *                              diffs it against a checked-in golden
 *                              file to catch schema drift
 *   dth_stats --merge A B...   kind-aware merge of two or more
 *                              snapshots (Sum/Real add, Max maxes,
 *                              Gauge last-wins, histograms combine) —
 *                              the same obs::mergeSnapshots the fleet
 *                              scheduler aggregates campaigns with;
 *                              merged dth-obs-v1 JSON on stdout
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/json.h"
#include "obs/stats.h"

namespace {

using namespace dth;
using namespace dth::obs;

void
usage(const char *argv0)
{
    std::printf("usage: %s FILE | --diff A B | --schema FILE "
                "| --merge A B [C...]\n",
                argv0);
    std::printf(
        "  Pretty-print, diff, schema-dump or merge dth-obs-v1 stats\n"
        "  snapshots. --diff exits 0 when identical, 2 when not.\n"
        "  --merge combines snapshots kind-aware (sum/real add, max\n"
        "  maxes, gauge last-wins, hists combine) to stdout.\n");
}

bool
load(StatSnapshot *snap, const char *path)
{
    if (!loadSnapshotFile(snap, path)) {
        std::fprintf(stderr, "dth_stats: cannot parse %s\n", path);
        return false;
    }
    return true;
}

std::string
fmtU64(u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    return buf;
}

std::string
fmtReal(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

int
printSnapshot(const char *path)
{
    StatSnapshot snap;
    if (!load(&snap, path))
        return 1;
    TextTable stats({"stat", "kind", "value"});
    for (const auto &[name, value] : snap.integers())
        stats.addRow({name, statKindName(snap.kindOf(name)), fmtU64(value)});
    for (const auto &[name, value] : snap.reals())
        stats.addRow({name, "real", fmtReal(value)});
    stats.print();
    if (!snap.hists().empty()) {
        std::printf("\n");
        TextTable hists({"histogram", "count", "mean", "min", "max"});
        for (const auto &[name, h] : snap.hists()) {
            hists.addRow({name, fmtU64(h.count), fmtReal(h.mean()),
                          fmtU64(h.min), fmtU64(h.max)});
        }
        hists.print();
    }
    return 0;
}

int
diffSnapshots(const char *path_a, const char *path_b)
{
    StatSnapshot a, b;
    if (!load(&a, path_a) || !load(&b, path_b))
        return 1;
    if (a == b) {
        std::printf("identical\n");
        return 0;
    }
    TextTable t({"stat", "a", "b"});
    auto row = [&](const std::string &name, const std::string &va,
                   const std::string &vb) {
        if (va != vb)
            t.addRow({name, va, vb});
    };
    auto present = [](bool has, std::string v) {
        return has ? v : std::string("(absent)");
    };
    for (const auto &[name, value] : a.integers()) {
        row(name, fmtU64(value),
            present(b.has(name), fmtU64(b.get(name))));
    }
    for (const auto &[name, value] : b.integers()) {
        if (!a.has(name))
            t.addRow({name, "(absent)", fmtU64(value)});
    }
    for (const auto &[name, value] : a.reals()) {
        row(name, fmtReal(value),
            present(b.has(name), fmtReal(b.getReal(name))));
    }
    for (const auto &[name, value] : b.reals()) {
        if (!a.has(name))
            t.addRow({name, "(absent)", fmtReal(value)});
    }
    for (const auto &[name, h] : a.hists()) {
        auto it = b.hists().find(name);
        if (it == b.hists().end()) {
            t.addRow({name + " (hist)", fmtU64(h.count) + " samples",
                      "(absent)"});
        } else if (!(h == it->second)) {
            t.addRow({name + " (hist)",
                      fmtU64(h.count) + " x mean " + fmtReal(h.mean()),
                      fmtU64(it->second.count) + " x mean " +
                          fmtReal(it->second.mean())});
        }
    }
    for (const auto &[name, h] : b.hists()) {
        if (a.hists().find(name) == a.hists().end()) {
            t.addRow({name + " (hist)", "(absent)",
                      fmtU64(h.count) + " samples"});
        }
    }
    t.print();
    return 2;
}

int
printSchema(const char *path)
{
    StatSnapshot snap;
    if (!load(&snap, path))
        return 1;
    // Names and kinds only — no values — so the output is stable across
    // runs and machines; this is what the CI schema gate diffs.
    for (const auto &[name, value] : snap.integers()) {
        (void)value;
        std::printf("stat %s %s\n", name.c_str(),
                    statKindName(snap.kindOf(name)));
    }
    for (const auto &[name, value] : snap.reals()) {
        (void)value;
        std::printf("stat %s real\n", name.c_str());
    }
    for (const auto &[name, h] : snap.hists()) {
        (void)h;
        std::printf("hist %s\n", name.c_str());
    }
    return 0;
}

int
mergeFiles(int count, char **paths)
{
    std::vector<StatSnapshot> inputs(count);
    std::vector<const StatSnapshot *> parts;
    for (int i = 0; i < count; ++i) {
        if (!load(&inputs[i], paths[i]))
            return 1;
        parts.push_back(&inputs[i]);
    }
    StatSnapshot merged;
    std::string err;
    if (!mergeSnapshots(&merged, parts, &err)) {
        std::fprintf(stderr, "dth_stats: merge failed: %s\n",
                     err.c_str());
        return 2;
    }
    std::fputs(snapshotToJson(merged).c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && (!std::strcmp(argv[1], "-h") ||
                      !std::strcmp(argv[1], "--help"))) {
        usage(argv[0]);
        return 0;
    }
    if (argc == 2)
        return printSnapshot(argv[1]);
    if (argc == 3 && !std::strcmp(argv[1], "--schema"))
        return printSchema(argv[2]);
    if (argc == 4 && !std::strcmp(argv[1], "--diff"))
        return diffSnapshots(argv[2], argv[3]);
    if (argc >= 4 && !std::strcmp(argv[1], "--merge"))
        return mergeFiles(argc - 2, argv + 2);
    usage(argv[0]);
    return 1;
}
